// A fixed-capacity, allocation-free callable for simulator events.
//
// EventQueue::schedule used to take a std::function<void()>; any capture
// list larger than the library's small-object buffer (16 bytes on
// libstdc++) heap-allocated on every schedule — one malloc/free pair per
// retransmit timer, per worm-holding retry closure, per saturating-app
// poll. InlineAction stores the callable in a 64-byte in-place buffer
// instead, sized for the largest hot-path capture (this + a shared_ptr +
// a couple of scalars), so steady-state scheduling never touches the
// allocator. Callables that genuinely exceed the buffer (rare, setup-time
// composites) fall back to the heap transparently rather than failing to
// compile — the invariant protected here is "no allocation in steady
// state", not "no allocation ever".
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace wormcast {

/// Move-only void() callable with a 64-byte inline buffer.
class InlineAction {
 public:
  static constexpr std::size_t kInlineBytes = 64;

  InlineAction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineAction> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineAction(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for
                         // std::function at every schedule() call site
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      *reinterpret_cast<void**>(buf_) = new Fn(std::forward<F>(f));
      ops_ = &heap_ops<Fn>;
    }
  }

  InlineAction(InlineAction&& other) noexcept { move_from(other); }
  InlineAction& operator=(InlineAction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InlineAction(const InlineAction&) = delete;
  InlineAction& operator=(const InlineAction&) = delete;
  ~InlineAction() { reset(); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buf_); }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  /// Manual vtable: one static instance per stored callable type.
  struct Ops {
    void (*invoke)(void* buf);
    /// Moves the callable from `src` into `dst` and destroys the source.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* buf);
  };

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](void* buf) { (*std::launder(reinterpret_cast<Fn*>(buf)))(); },
      [](void* dst, void* src) {
        Fn* from = std::launder(reinterpret_cast<Fn*>(src));
        ::new (dst) Fn(std::move(*from));
        from->~Fn();
      },
      [](void* buf) { std::launder(reinterpret_cast<Fn*>(buf))->~Fn(); }};

  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](void* buf) { (**reinterpret_cast<Fn**>(buf))(); },
      [](void* dst, void* src) {
        *reinterpret_cast<void**>(dst) = *reinterpret_cast<void**>(src);
      },
      [](void* buf) { delete *reinterpret_cast<Fn**>(buf); }};

  void move_from(InlineAction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace wormcast
