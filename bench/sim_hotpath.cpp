// Simulation hot-path benchmark: how fast does the simulator itself run?
//
// Times the Figure-12-scale end-to-end scenario (8 hosts saturating a
// 4-switch Myrinet with 8 KB multicast packets) twice — once with the
// burst-mode channel fast path, once forced per-byte — and reports
// events/second, simulated bytes per wall-second, the event-queue peak
// size, and the wall-clock speedup of burst mode. The two runs produce
// bit-for-bit identical simulation results (pinned by the
// burst_equivalence ctest); only the event count and wall time differ.
//
// CI runs `--quick` as a smoke test and archives BENCH_sim_hotpath.json.
#include <chrono>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "myrinet_testbed.h"

using namespace wormcast;

namespace {

struct Timed {
  bench::TestbedResult result;
  double wall_ms = 0.0;
};

Timed timed_run(std::int64_t packet, Time span, bool burst,
                bool tracing = false) {
  const auto t0 = std::chrono::steady_clock::now();
  Timed t;
  t.result = bench::run_testbed(/*senders=*/8, packet, span, burst, tracing);
  const auto t1 = std::chrono::steady_clock::now();
  t.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  return t;
}

void report(const char* mode, const Timed& t, bench::JsonBench& json,
            bool burst, bool tracing = false) {
  const double wall_s = t.wall_ms / 1000.0;
  const double events_per_s =
      wall_s > 0 ? static_cast<double>(t.result.events_dispatched) / wall_s : 0;
  const double bytes_per_s =
      wall_s > 0 ? static_cast<double>(t.result.bytes_on_wire) / wall_s : 0;
  std::printf("%s,%.1f,%lld,%.3g,%lld,%.3g,%lld,%.1f\n", mode, t.wall_ms,
              static_cast<long long>(t.result.events_dispatched), events_per_s,
              static_cast<long long>(t.result.bytes_on_wire), bytes_per_s,
              static_cast<long long>(t.result.event_queue_peak),
              t.result.throughput_mbps);
  std::fflush(stdout);
  json.add_row({{"burst", burst ? 1.0 : 0.0},
                {"tracing", tracing ? 1.0 : 0.0},
                {"wall_ms", t.wall_ms},
                {"events", static_cast<double>(t.result.events_dispatched)},
                {"events_per_sec", events_per_s},
                {"sim_bytes", static_cast<double>(t.result.bytes_on_wire)},
                {"sim_bytes_per_wall_sec", bytes_per_s},
                {"event_queue_peak",
                 static_cast<double>(t.result.event_queue_peak)},
                {"throughput_mbps", t.result.throughput_mbps}});
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const Time span = quick ? 600'000 : 3'000'000;
  const std::int64_t packet = 8 * 1024;

  std::printf("# Simulation hot path: fig12-scale all-send run (8 hosts, "
              "%lld-byte packets, %lld byte-times)\n",
              static_cast<long long>(packet), static_cast<long long>(span));
  bench::print_header("mode", {"wall_ms", "events", "events_per_sec",
                               "sim_bytes", "sim_bytes_per_wall_sec",
                               "event_queue_peak", "throughput_mbps"});
  bench::JsonBench json("sim_hotpath");

  const Timed burst = timed_run(packet, span, /*burst=*/true);
  report("burst", burst, json, true);
  const Timed per_byte = timed_run(packet, span, /*burst=*/false);
  report("per_byte", per_byte, json, false);
  // Overhead guard: the same burst run with the flight recorder on. The
  // runtime-disabled path (the two runs above) must stay within noise of
  // PR 3; the enabled path's cost is reported so regressions are visible.
  const Timed traced = timed_run(packet, span, /*burst=*/true,
                                 /*tracing=*/true);
  report("burst_traced", traced, json, true, true);

  const double speedup =
      burst.wall_ms > 0 ? per_byte.wall_ms / burst.wall_ms : 0.0;
  const double event_ratio =
      burst.result.events_dispatched > 0
          ? static_cast<double>(per_byte.result.events_dispatched) /
                static_cast<double>(burst.result.events_dispatched)
          : 0.0;
  const double tracing_overhead =
      burst.wall_ms > 0 ? traced.wall_ms / burst.wall_ms : 0.0;
  std::printf("# burst speedup: %.2fx wall clock, %.2fx fewer events\n",
              speedup, event_ratio);
  std::printf("# tracing overhead: %.2fx wall clock, %lld events recorded\n",
              tracing_overhead,
              static_cast<long long>(traced.result.trace_events));
  if (burst.result.throughput_mbps != per_byte.result.throughput_mbps)
    std::printf("# WARNING: modes disagree on throughput — burst bug!\n");
  if (burst.result.throughput_mbps != traced.result.throughput_mbps)
    std::printf("# WARNING: tracing changed the results — observer bug!\n");
  json.add_row({{"speedup_wall", speedup},
                {"event_ratio", event_ratio},
                {"tracing_overhead_wall", tracing_overhead},
                {"trace_events",
                 static_cast<double>(traced.result.trace_events)},
                {"trace_dropped",
                 static_cast<double>(traced.result.trace_dropped)}});
  json.set_counters(traced.result.counters);
  json.write();
  return 0;
}
