#include "net/switch_mcast.h"

namespace wormcast {

// McastEngine is an abstract hook; the concrete SwitchMcastEngine lives in
// switch_mcast_engine.cpp. This translation unit anchors the vtable.

}  // namespace wormcast
