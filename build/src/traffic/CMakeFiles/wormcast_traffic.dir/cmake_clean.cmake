file(REMOVE_RECURSE
  "CMakeFiles/wormcast_traffic.dir/generator.cpp.o"
  "CMakeFiles/wormcast_traffic.dir/generator.cpp.o.d"
  "CMakeFiles/wormcast_traffic.dir/groups.cpp.o"
  "CMakeFiles/wormcast_traffic.dir/groups.cpp.o.d"
  "libwormcast_traffic.a"
  "libwormcast_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wormcast_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
