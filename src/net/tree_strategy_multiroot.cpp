#include <algorithm>
#include <limits>
#include <stdexcept>

#include "net/mcast_route_builder.h"
#include "net/tree_strategy_impl.h"

namespace wormcast::detail {

MultiRootStrategy::MultiRootStrategy(const TreeStrategyConfig& cfg,
                                     const Topology& topo,
                                     const UpDownRouting& base,
                                     const UpDownOptions& base_opts)
    : TreeStrategy(topo, base) {
  // Candidate 0 is always the general routing's root (so primary_routing()
  // matches the single-root baseline for broadcasts and unknown groups);
  // the rest are the remaining switches by descending degree, id on ties —
  // the same centrality preference the Autonet-style root election uses.
  std::vector<NodeId> others;
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    if (topo.node(n).kind != NodeKind::kSwitch) continue;
    if (n == base.root()) continue;
    others.push_back(n);
  }
  std::sort(others.begin(), others.end(), [&](NodeId a, NodeId b) {
    const std::size_t da = topo.node(a).ports.size();
    const std::size_t db = topo.node(b).ports.size();
    return da != db ? da > db : a < b;
  });
  const int k = std::clamp(cfg.candidate_roots, 1,
                           static_cast<int>(topo.num_switches()));
  roots_.push_back(base.root());
  for (const NodeId n : others) {
    if (static_cast<int>(roots_.size()) >= k) break;
    roots_.push_back(n);
  }
  routings_.reserve(roots_.size());
  for (const NodeId r : roots_) {
    UpDownOptions opts = base_opts;
    opts.root = r;
    opts.tree_links_only = true;
    routings_.push_back(std::make_unique<UpDownRouting>(topo, opts));
  }
}

const UpDownRouting& MultiRootStrategy::group_routing(GroupId g) const {
  return *routings_[assignment(g)];
}

std::size_t MultiRootStrategy::assignment(GroupId g) const {
  const auto it = assignment_.find(g);
  return it == assignment_.end() ? 0 : it->second;
}

std::size_t MultiRootStrategy::best_root(
    const std::vector<HostId>& members) const {
  std::size_t best = 0;
  std::int64_t best_sum = std::numeric_limits<std::int64_t>::max();
  for (std::size_t i = 0; i < routings_.size(); ++i) {
    std::int64_t sum = 0;
    bool reachable = true;
    for (const HostId m : members) {
      const int lv = routings_[i]->level(topo_.switch_of_host(m));
      if (lv < 0) {
        reachable = false;
        break;
      }
      sum += lv;
    }
    if (!reachable) continue;
    if (sum < best_sum) {
      best_sum = sum;
      best = i;
    }
  }
  return best;
}

void MultiRootStrategy::plan_group(GroupId g,
                                   const std::vector<HostId>& members) {
  members_[g] = members;
  assignment_[g] = best_root(members);
}

McastPlan MultiRootStrategy::plan_multicast(
    GroupId g, HostId src, const std::vector<HostId>& dests) const {
  const UpDownRouting& routing = group_routing(g);
  McastPlan plan;
  McastPartition part;
  for (const HostId d : dests)
    if (d != src) part.dests.push_back(d);
  part.branches = build_mcast_branches(routing, src, dests);
  plan.partitions.push_back(std::move(part));
  ++worms_planned_;
  return plan;
}

void MultiRootStrategy::fail_link(LinkId l) {
  for (auto& r : routings_) r->fail_link(l);
  // Depth sums shifted: every group gets a fresh assignment (each group's
  // choice is independent, so map iteration order doesn't matter).
  for (const auto& [g, members] : members_) assignment_[g] = best_root(members);
}

void MultiRootStrategy::on_root_migrated(NodeId new_root) {
  // Only the primary tree follows the general routing's root; the other
  // candidates keep spreading load from their own anchors.
  roots_[0] = new_root;
  routings_[0]->set_root(new_root);
  for (const auto& [g, members] : members_) assignment_[g] = best_root(members);
}

}  // namespace wormcast::detail
