// Workload generation (Section 7.1).
//
// Per host: Poisson worm generation; geometrically distributed lengths
// (mean 400 bytes in the paper); each generated worm is a multicast with
// probability `multicast_fraction` when the host belongs to at least one
// group, choosing uniformly among the host's groups; unicast destinations
// are uniform over the other hosts. The offered load is the output-link
// utilization per host: mean inter-arrival = mean_worm_len / offered_load.
#pragma once

#include <functional>
#include <vector>

#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/types.h"
#include "traffic/groups.h"

namespace wormcast {

struct TrafficConfig {
  double offered_load = 0.05;   // bytes per byte-time per host (= utilization)
  double mean_worm_len = 400.0;
  std::int64_t min_worm_len = 16;
  std::int64_t max_worm_len = 9 * 1024;  // Myrinet's LANai worm cap
  double multicast_fraction = 0.10;
};

/// One application send request.
struct Demand {
  HostId src = kNoHost;
  bool multicast = false;
  GroupId group = kNoGroup;  // multicast only
  HostId dst = kNoHost;      // unicast only
  std::int64_t length = 0;   // payload bytes
};

class TrafficGenerator {
 public:
  using Sink = std::function<void(const Demand&)>;

  TrafficGenerator(Simulator& sim, TrafficConfig config,
                   std::vector<MulticastGroupSpec> groups, int n_hosts,
                   RandomStream rng, Sink sink);

  /// Starts all host processes; generation ceases after `until`.
  void start(Time until);

  [[nodiscard]] std::int64_t demands_issued() const { return issued_; }

 private:
  void schedule_next(HostId h);
  void fire(HostId h);

  Simulator& sim_;
  TrafficConfig config_;
  std::vector<MulticastGroupSpec> groups_;
  std::vector<std::vector<GroupId>> groups_of_host_;
  int n_hosts_;
  std::vector<RandomStream> rngs_;  // one stream per host
  Sink sink_;
  Time until_ = 0;
  std::int64_t issued_ = 0;
};

}  // namespace wormcast
