# Empty compiler generated dependencies file for ablation_updown.
# This may be replaced when dependencies are built.
