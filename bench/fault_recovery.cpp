// Loss-recovery sweep: delivered fraction and tail latency vs injected
// link loss on the Section 8.2 testbed, for the Hamiltonian circuit and
// rooted-tree reservation schemes.
//
// Worm kills and control-worm loss are applied at the same per-link rate;
// senders recover via ACK timeouts with capped exponential backoff and a
// bounded retry budget. Expected shape: delivered fraction starts at 1.0
// and decays monotonically as loss grows (retry budget exhaustion), while
// p99 per-destination latency climbs as more deliveries need one or more
// timeout+retransmit rounds.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "net/topologies.h"

using namespace wormcast;

namespace {

struct Point {
  double delivered = 0.0;  // completed / created
  double p99 = 0.0;        // per-destination mcast latency
  bool has_p99 = false;    // false: no mcast delivery was sampled
  double retx_per_msg = 0.0;
};

Point run_lossy(Scheme scheme, double loss, Time measure, std::uint64_t seed) {
  ExperimentConfig cfg = bench::sim_defaults(scheme, 0.05, 0.3, seed);
  cfg.protocol.ack_timeout = 20'000;
  cfg.protocol.retry_backoff = 2'000;
  cfg.protocol.retry_jitter = 1'000;
  cfg.protocol.max_attempts = 8;
  cfg.faults.worm_kill_rate = loss;
  cfg.faults.ctrl_loss_rate = loss;
  MulticastGroupSpec group;
  group.id = 0;
  for (HostId h = 0; h < 8; ++h) group.members.push_back(h);
  Network net(make_myrinet_testbed(), {group}, cfg);
  bench::arm_watchdog(net);
  net.run(/*warmup=*/2'000, measure, /*drain_cap=*/500'000);
  const Network::Summary s = net.summary();
  Point p;
  if (s.messages > 0) {
    p.delivered = static_cast<double>(s.messages_completed) /
                  static_cast<double>(s.messages);
    p.retx_per_msg =
        static_cast<double>(s.retransmits) / static_cast<double>(s.messages);
  }
  p.has_p99 = net.metrics().mcast_latency().count() > 0;
  p.p99 = net.metrics().mcast_latency().percentile(99.0);
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const Time measure = quick ? 200'000 : 1'500'000;

  std::printf("# Loss recovery on the 8-host testbed: delivered fraction and "
              "p99 latency vs per-link fault rate\n");
  std::printf("# (worm kill + ctrl loss at equal rates; ack_timeout=20k, "
              "max_attempts=8)\n");
  bench::print_header("loss_rate",
                      {"circuit_delivered", "circuit_p99", "circuit_retx",
                       "tree_delivered", "tree_p99", "tree_retx"});
  const std::vector<double> rates =
      quick ? std::vector<double>{0.0, 0.05, 0.10}
            : std::vector<double>{0.0, 0.01, 0.02, 0.05, 0.10, 0.15};
  bench::JsonBench json("fault_recovery");
  for (const double rate : rates) {
    const Point circuit = run_lossy(Scheme::kHamiltonianSF, rate, measure, 7);
    const Point tree = run_lossy(Scheme::kTreeSF, rate, measure, 7);
    std::printf("%.2f,%.4f,%.0f,%.2f,%.4f,%.0f,%.2f\n", rate,
                circuit.delivered, circuit.p99, circuit.retx_per_msg,
                tree.delivered, tree.p99, tree.retx_per_msg);
    std::fflush(stdout);
    json.add_row({{"loss_rate", rate},
                  {"circuit_delivered", circuit.delivered},
                  {"circuit_p99", bench::opt(circuit.p99, circuit.has_p99)},
                  {"circuit_retx", circuit.retx_per_msg},
                  {"tree_delivered", tree.delivered},
                  {"tree_p99", bench::opt(tree.p99, tree.has_p99)},
                  {"tree_retx", tree.retx_per_msg}});
  }
  json.write();
  return 0;
}
