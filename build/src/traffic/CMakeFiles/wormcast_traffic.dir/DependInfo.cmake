
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traffic/generator.cpp" "src/traffic/CMakeFiles/wormcast_traffic.dir/generator.cpp.o" "gcc" "src/traffic/CMakeFiles/wormcast_traffic.dir/generator.cpp.o.d"
  "/root/repo/src/traffic/groups.cpp" "src/traffic/CMakeFiles/wormcast_traffic.dir/groups.cpp.o" "gcc" "src/traffic/CMakeFiles/wormcast_traffic.dir/groups.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/wormcast_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
