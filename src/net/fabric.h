// The runtime fabric: channels and switches instantiated from a Topology.
#pragma once

#include <memory>
#include <vector>

#include "net/channel.h"
#include "net/switch_rt.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "sim/types.h"

namespace wormcast {

struct FabricConfig {
  SwitchConfig sw;
  /// Burst-mode channel hot path (bit-for-bit identical results; per-byte
  /// mode exists for the determinism-equivalence suite and debugging).
  bool burst_channels = true;
};

/// Executor assignment for a sharded run: which executor (index into
/// `sims`) owns each node. sims[0] is the protocol-plane executor (hosts,
/// adapters, protocols); switches are banded across the rest. A channel is
/// owned by its *transmitter* node's executor; when the receiver lives
/// elsewhere the channel is put in cross-executor mode over `bus`.
struct ShardPlan {
  std::vector<Simulator*> sims;  // executor index -> simulator
  std::vector<int> node_exec;    // NodeId -> executor index
  ShardBus* bus = nullptr;
};

/// Owns every channel and switch of the network. Host adapters plug into
/// their attachment channels: they attach a ByteFeed to host_tx_channel()
/// and install an RxSink on host_rx_channel().
class Fabric {
 public:
  /// `plan`, when non-null, places each channel and switch on its owning
  /// executor's simulator and wires cross-executor channels to the bus.
  /// `sim` stays the protocol-plane (executor 0) simulator either way.
  Fabric(Simulator& sim, const Topology& topo, FabricConfig config = {},
         const ShardPlan* plan = nullptr);
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;
  ~Fabric();

  [[nodiscard]] Simulator& sim() { return sim_; }
  [[nodiscard]] const Topology& topology() const { return topo_; }
  [[nodiscard]] const FabricConfig& config() const { return config_; }

  /// Channel carrying bytes from host `h` into its switch.
  [[nodiscard]] Channel& host_tx_channel(HostId h);
  /// Channel carrying bytes from the switch down to host `h`.
  [[nodiscard]] Channel& host_rx_channel(HostId h);

  [[nodiscard]] SwitchRt& switch_at(NodeId node);

  /// Directed channel over link `l` transmitting out of node `from`.
  [[nodiscard]] Channel& channel_from(LinkId l, NodeId from);

  /// Installs a switch-level multicast engine on every switch.
  void install_mcast_engine(McastEngine* engine);

  /// Installs the experiment's fault injector on every channel.
  void install_fault_injector(FaultInjector* faults);

  /// Publishes the initial burst budget of every cross-executor channel.
  /// Call once all sinks are attached (host adapters plug in after
  /// construction) and before the first window runs.
  void publish_cross_budgets();

  /// Sum of slack-buffer overflow events across switches (must stay 0).
  [[nodiscard]] std::int64_t total_overflows() const;

  /// Estimated resident bytes for the whole fabric — every channel
  /// direction plus every switch and its ports (memory audit,
  /// mem_fabric_bytes). Capacity-based and deterministic.
  [[nodiscard]] std::size_t heap_bytes_estimate() const;

  /// Total bytes transmitted on all switch-to-switch channels (for
  /// utilization metrics).
  [[nodiscard]] std::int64_t fabric_bytes_sent() const;

  /// Total bytes transmitted out of all host adapters. The paper's
  /// "offered load" axis is this per host per byte-time (output-link
  /// utilization, which includes forwarded multicast copies).
  [[nodiscard]] std::int64_t host_egress_bytes() const;

  /// Bytes transmitted out of node `n` across all its ports: the
  /// forwarding-load signal for root-utilization metrics and the
  /// load-aware tree strategy's probe.
  [[nodiscard]] std::int64_t node_egress_bytes(NodeId n) const;

  /// Total bytes swallowed by injected faults across all channels (link
  /// outages, control drops, the cut portion of truncated worms). Kept
  /// separate from bytes_sent so utilization never counts lost bytes.
  [[nodiscard]] std::int64_t total_bytes_swallowed() const;

 private:
  Simulator& sim_;
  const Topology& topo_;
  FabricConfig config_;
  // Two directed channels per link: index 2*l (a->b) and 2*l+1 (b->a).
  std::vector<std::unique_ptr<Channel>> channels_;
  std::vector<std::unique_ptr<SwitchRt>> switches_;  // by NodeId; null for hosts
};

}  // namespace wormcast
