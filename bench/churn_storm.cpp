// Membership churn under chaos: dynamic join/leave/rejoin driven through
// the bounded membership coordinator while scripted fault patterns
// (flapping links, correlated multi-link outages, partition-then-heal,
// rolling host outages) batter the fabric, on the Section 8.2 testbed.
//
// Sweep: churn rate (mean gap between membership ops) x overlapping group
// count x chaos pattern. Reported per point: the join shed rate (overload
// degradation), join latency percentiles (request -> applied, null when no
// join completed), coordinator queue high-water mark, delivered fraction,
// and the lost-forever count — which must be ZERO: every message either
// completes, or is explicitly written off as disrupted by a repair/settle
// sweep. Any point with lost > 0 fails the bench (exit 1) even without
// --check.
//
// Sweep points run on a SweepRunner pool (--jobs N) with per-point seeds;
// all chaos windows and churn draws are deterministic per point, so CSV,
// JSON, and --check verdicts are bit-identical at any job count.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "chaos/chaos_schedule.h"
#include "chaos/churn_engine.h"
#include "net/topologies.h"

using namespace wormcast;

namespace {

constexpr std::uint64_t kBaseSeed = 23;
constexpr Time kWarmup = 2'000;

struct Combo {
  int n_groups;
  bool storm;  // false: flapping links only; true: the full storm
  const char* name;
};

constexpr Combo kCombos[] = {
    {2, false, "g2_flaps"},
    {2, true, "g2_storm"},
    {4, false, "g4_flaps"},
    {4, true, "g4_storm"},
};
constexpr std::size_t kNumCombos = std::size(kCombos);

struct Point {
  double shed_rate = 0.0;   // shed events per join intent
  double join_mean = -1.0;  // request -> applied (byte-times)
  double join_p95 = -1.0;
  bool joins_measured = false;
  double queue_peak = 0.0;
  double delivered = 0.0;  // completed / created
  double lost = 0.0;       // outstanding after drain: MUST be zero
  double rejoins = 0.0;
  double leaves = 0.0;
  double flap_windows = 0.0;
};

Point run_point(const Combo& combo, Time gap, Time measure, std::uint64_t seed,
                TreeStrategyKind strategy, std::size_t trace_cap,
                bench::CheckCollector& checks, std::size_t slot,
                std::string label) {
  // Circuit scheme at a load both the splice-in and the hop-window patch
  // paths see steady traffic; recovery + suspicion on so the chaos is
  // survivable and leave-no-suspect is checked against a live detector.
  ExperimentConfig cfg = bench::sim_defaults(Scheme::kHamiltonianSF, 0.02,
                                             1.0, seed);
  cfg.tree.kind = strategy;
  cfg.protocol.ack_timeout = 10'000;
  cfg.protocol.retry_backoff = 2'000;
  cfg.protocol.retry_jitter = 1'000;
  cfg.protocol.max_attempts = 10;
  cfg.protocol.suspicion_timeout = 60'000;
  // A deliberately slow coordinator so the storm actually sheds: four
  // queue slots drained one per 20k byte-times — slower than the fastest
  // churn gaps, so the queue saturates and joins shed/retry while leaves
  // (never shed) keep flowing through.
  cfg.membership.queue_limit = 4;
  cfg.membership.op_cost = 20'000;
  // Overlapping ring-window groups covering every host: host h belongs to
  // the windows containing it, so no host ever falls back to plain
  // unicast traffic (which has no retransmission path — a flap-swallowed
  // unicast would be lost by design, drowning the churn signal this
  // bench gates on).
  std::vector<MulticastGroupSpec> groups;
  for (int g = 0; g < combo.n_groups; ++g) {
    MulticastGroupSpec spec;
    spec.id = g;
    const int start = g * (8 / combo.n_groups);
    for (int k = 0; k < 5; ++k)
      spec.members.push_back(static_cast<HostId>((start + k) % 8));
    groups.push_back(std::move(spec));
  }
  Network net(make_myrinet_testbed(), groups, cfg);
  if (checks.enabled()) net.enable_tracing(trace_cap);
  bench::arm_watchdog(net);

  // Chaos: flap windows stay well under the suspicion timeout, so a live
  // peer behind a flapping link retries through it instead of being
  // accused; the storm adds a correlated burst, a healed partition, and
  // rolling (leave + rejoin) host outages on top.
  ChaosSchedule chaos(net, RandomStream::seed_mix(seed, 0xC4A05));
  chaos.flap_random_links(combo.storm ? 3 : 2, kWarmup + measure / 10,
                          kWarmup + (9 * measure) / 10, 6'000, 25'000);
  if (combo.storm) {
    chaos.correlated_link_outage(3, kWarmup + measure / 3, 20'000);
    chaos.partition_then_heal(kWarmup + (2 * measure) / 3, 25'000);
    chaos.rolling_host_outages({1, 4}, kWarmup + measure / 4, 30'000,
                               40'000);
  }

  std::vector<GroupId> group_ids;
  group_ids.reserve(groups.size());
  for (const MulticastGroupSpec& g : groups) group_ids.push_back(g.id);
  ChurnConfig churn;
  churn.mean_gap = gap;
  churn.from = kWarmup;
  churn.until = kWarmup + measure;
  ChurnEngine engine(net, group_ids, churn,
                     RandomStream(RandomStream::seed_mix(seed, 0x4C42)));
  engine.start();

  net.run(kWarmup, measure, /*drain_cap=*/600'000);
  checks.collect(slot, net, std::move(label));

  const Network::Summary s = net.summary();
  if (s.outstanding > 0) {
    std::fprintf(stderr, "churn_storm: %lld message(s) lost forever:\n%s",
                 static_cast<long long>(s.outstanding),
                 net.debug_report().c_str());
    for (const auto& ctx : net.metrics().outstanding_messages())
      std::fprintf(stderr,
                   "  msg=%llu group=%d origin=%d created=%lld reached=%d/%d\n",
                   static_cast<unsigned long long>(ctx->message_id),
                   ctx->group, ctx->origin,
                   static_cast<long long>(ctx->created_at),
                   ctx->destinations_reached, ctx->destinations_total);
  }
  Point p;
  if (s.joins_requested > 0)
    p.shed_rate = static_cast<double>(s.joins_shed) /
                  static_cast<double>(s.joins_requested);
  p.joins_measured = s.join_samples > 0;
  if (p.joins_measured) {
    p.join_mean = s.join_latency_mean;
    p.join_p95 = s.join_latency_p95;
  }
  p.queue_peak = static_cast<double>(s.membership_queue_peak);
  if (s.messages > 0)
    p.delivered = static_cast<double>(s.messages_completed) /
                  static_cast<double>(s.messages);
  p.lost = static_cast<double>(s.outstanding);
  p.rejoins = static_cast<double>(s.rejoins);
  p.leaves = static_cast<double>(s.leaves);
  p.flap_windows = static_cast<double>(s.flap_windows);
  return p;
}

struct Merged {
  RunningStat shed_rate;
  RunningStat join_mean;  // over reps that applied at least one join
  RunningStat join_p95;
  RunningStat queue_peak;
  RunningStat delivered;
  RunningStat lost;
  RunningStat rejoins;
  RunningStat leaves;
  RunningStat flap_windows;
};

Merged merge_reps(const std::vector<Point>& reps) {
  Merged m;
  for (const Point& p : reps) {
    const auto one = [](double v) {
      RunningStat s;
      s.add(v);
      return s;
    };
    m.shed_rate.merge(one(p.shed_rate));
    m.queue_peak.merge(one(p.queue_peak));
    m.delivered.merge(one(p.delivered));
    m.lost.merge(one(p.lost));
    m.rejoins.merge(one(p.rejoins));
    m.leaves.merge(one(p.leaves));
    m.flap_windows.merge(one(p.flap_windows));
    if (p.joins_measured) {
      m.join_mean.merge(one(p.join_mean));
      m.join_p95.merge(one(p.join_p95));
    }
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  const Time measure = args.quick ? 300'000 : 800'000;

  std::printf("# Membership churn under chaos schedules on the 8-host "
              "testbed (circuit scheme, %s trees)\n",
              tree_strategy_name(args.strategy));
  std::printf("# (coordinator queue=4 slots @ 20k/op; suspicion=60k; flaps "
              "6k down / 25k up; %d rep(s)/point; lost must be 0)\n",
              args.reps);
  std::vector<std::string> cols;
  for (const Combo& c : kCombos) {
    cols.push_back(std::string(c.name) + "_shed_rate");
    cols.push_back(std::string(c.name) + "_join_p95");
    cols.push_back(std::string(c.name) + "_lost");
  }
  bench::print_header("churn_gap", cols);
  const std::vector<Time> gaps = args.quick
                                     ? std::vector<Time>{15'000}
                                     : std::vector<Time>{30'000, 15'000, 7'500};

  const std::size_t reps = static_cast<std::size_t>(args.reps);
  const std::size_t n_tasks = gaps.size() * kNumCombos * reps;
  std::vector<Point> raw(n_tasks);
  bench::JsonBench json("churn_storm");
  json.resize_rows(gaps.size());
  bench::CheckCollector checks(args.check);
  checks.resize(n_tasks);
  const harness::WallTimer sweep;
  harness::SweepRunner pool(args.jobs);
  const auto walls = pool.run_indexed(n_tasks, [&](std::size_t i) {
    const std::size_t point = i / reps;
    const std::size_t rep = i % reps;
    const Time gap = gaps[point / kNumCombos];
    const Combo& combo = kCombos[point % kNumCombos];
    char label[96];
    std::snprintf(label, sizeof label, "gap=%lld combo=%s rep=%zu",
                  static_cast<long long>(gap), combo.name, rep);
    raw[i] = run_point(combo, gap, measure,
                       harness::point_seed(kBaseSeed, rep), args.strategy,
                       args.trace_cap, checks, i, label);
  });

  bool lost_any = false;
  for (std::size_t r = 0; r < gaps.size(); ++r) {
    std::printf("%lld", static_cast<long long>(gaps[r]));
    bench::JsonBench::Row cells{{"churn_gap", static_cast<double>(gaps[r])}};
    for (std::size_t c = 0; c < kNumCombos; ++c) {
      const std::size_t point = r * kNumCombos + c;
      const std::vector<Point> rep_points(
          raw.begin() + static_cast<std::ptrdiff_t>(point * reps),
          raw.begin() + static_cast<std::ptrdiff_t>((point + 1) * reps));
      const Merged m = merge_reps(rep_points);
      if (m.lost.mean() > 0.0) lost_any = true;
      std::printf(",%.4f,%.0f,%.0f", m.shed_rate.mean(),
                  m.join_p95.count() > 0 ? m.join_p95.mean() : -1.0,
                  m.lost.mean());
      const std::string n = kCombos[c].name;
      cells.push_back({n + "_shed_rate", m.shed_rate.mean()});
      cells.push_back({n + "_join_latency_mean",
                       bench::opt(m.join_mean.mean(), m.join_mean.count() > 0)});
      cells.push_back({n + "_join_latency_p95",
                       bench::opt(m.join_p95.mean(), m.join_p95.count() > 0)});
      cells.push_back({n + "_queue_peak", m.queue_peak.mean()});
      cells.push_back({n + "_delivered", m.delivered.mean()});
      cells.push_back({n + "_lost", m.lost.mean()});
      cells.push_back({n + "_rejoins", m.rejoins.mean()});
      cells.push_back({n + "_leaves", m.leaves.mean()});
      cells.push_back({n + "_flap_windows", m.flap_windows.mean()});
    }
    std::printf("\n");
    json.set_row(r, cells);
  }
  std::fflush(stdout);
  bench::stamp_sweep_meta(json, pool, walls, sweep);
  json.set_meta("reps", static_cast<double>(args.reps));
  json.set_meta("strategy", static_cast<double>(args.strategy));
  if (lost_any)
    std::fprintf(stderr,
                 "churn_storm: FAIL -- lost-forever payloads detected "
                 "(outstanding after drain); every send must complete or be "
                 "explicitly shed\n");
  const int check_rc = checks.finalize(&json);
  json.write();
  return lost_any ? 1 : check_rc;
}
