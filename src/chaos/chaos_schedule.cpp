#include "chaos/chaos_schedule.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

namespace wormcast {

namespace {

bool is_switch(const Topology& topo, NodeId n) {
  return topo.node(n).kind == NodeKind::kSwitch;
}

/// Links whose loss degrades but does not isolate: both endpoints are
/// switches. Falls back to every link on single-switch topologies.
std::vector<LinkId> fabric_links(const Topology& topo) {
  std::vector<LinkId> out;
  for (LinkId l = 0; l < topo.num_links(); ++l) {
    const TopoLink& link = topo.link(l);
    if (is_switch(topo, link.node_a) && is_switch(topo, link.node_b))
      out.push_back(l);
  }
  if (out.empty()) {
    out.resize(static_cast<std::size_t>(topo.num_links()));
    for (LinkId l = 0; l < topo.num_links(); ++l)
      out[static_cast<std::size_t>(l)] = l;
  }
  return out;
}

}  // namespace

int ChaosSchedule::flap_random_links(int n, Time from, Time until,
                                     Time mean_down, Time mean_up) {
  std::vector<LinkId> candidates = fabric_links(net_.topology());
  rng_.shuffle(candidates);
  const auto count = std::min<std::size_t>(static_cast<std::size_t>(n),
                                           candidates.size());
  int windows = 0;
  for (std::size_t i = 0; i < count; ++i)
    windows += net_.flap_link(candidates[i], from, until, mean_down, mean_up);
  return windows;
}

int ChaosSchedule::correlated_link_outage(int n, Time at, Time span) {
  const Topology& topo = net_.topology();
  // The shared cause is one switch: collect switches by descending degree
  // and pick keyed-uniform among those able to lose `n` links (or, when
  // none can, the best-connected one).
  std::vector<NodeId> switches;
  for (NodeId node = 0; node < topo.num_nodes(); ++node)
    if (is_switch(topo, node)) switches.push_back(node);
  if (switches.empty()) return 0;
  std::vector<NodeId> able;
  for (const NodeId s : switches)
    if (static_cast<int>(topo.node(s).ports.size()) >= n) able.push_back(s);
  const NodeId victim =
      !able.empty()
          ? rng_.pick(able)
          : *std::max_element(switches.begin(), switches.end(),
                              [&](NodeId a, NodeId b) {
                                return topo.node(a).ports.size() <
                                       topo.node(b).ports.size();
                              });
  std::vector<LinkId> links;
  for (const TopoPort& port : topo.node(victim).ports)
    if (port.link != kNoLink) links.push_back(port.link);
  rng_.shuffle(links);
  const auto count =
      std::min<std::size_t>(static_cast<std::size_t>(n), links.size());
  for (std::size_t i = 0; i < count; ++i) {
    const TopoLink& link = topo.link(links[i]);
    // One shared window across the whole burst: that simultaneity is the
    // point (and the stress repair/retry must absorb at once).
    net_.faults().schedule_outage(
        &net_.fabric().channel_from(links[i], link.node_a), at, at + span);
    net_.faults().schedule_outage(
        &net_.fabric().channel_from(links[i], link.node_b), at, at + span);
  }
  return static_cast<int>(count);
}

int ChaosSchedule::rolling_host_outages(const std::vector<HostId>& hosts,
                                        Time from, Time stagger, Time dwell) {
  int pairs = 0;
  Time t = from;
  for (const HostId h : hosts) {
    for (const GroupId g : net_.tables().groups_containing(h)) {
      net_.request_leave(g, h, t);
      net_.request_join(g, h, t + dwell);
      ++pairs;
    }
    t += stagger;
  }
  return pairs;
}

int ChaosSchedule::partition_then_heal(Time at, Time span) {
  const Topology& topo = net_.topology();
  // Halve the switch graph by BFS from the up/down root: the first half
  // discovered is side A, and every switch-switch link crossing the cut
  // goes down for [at, at + span). Hosts stay attached to their switch,
  // so each side keeps working internally until the heal.
  std::vector<std::vector<NodeId>> adj(
      static_cast<std::size_t>(topo.num_nodes()));
  std::vector<LinkId> fabric = fabric_links(topo);
  for (const LinkId l : fabric) {
    const TopoLink& link = topo.link(l);
    if (!is_switch(topo, link.node_a) || !is_switch(topo, link.node_b))
      continue;
    adj[static_cast<std::size_t>(link.node_a)].push_back(link.node_b);
    adj[static_cast<std::size_t>(link.node_b)].push_back(link.node_a);
  }
  const int half = std::max(1, topo.num_switches() / 2);
  std::unordered_set<NodeId> side_a;
  std::deque<NodeId> frontier{net_.routing().root()};
  while (!frontier.empty() && static_cast<int>(side_a.size()) < half) {
    const NodeId s = frontier.front();
    frontier.pop_front();
    if (!side_a.insert(s).second) continue;
    for (const NodeId peer : adj[static_cast<std::size_t>(s)])
      if (side_a.count(peer) == 0) frontier.push_back(peer);
  }
  int cut = 0;
  for (const LinkId l : fabric) {
    const TopoLink& link = topo.link(l);
    if (!is_switch(topo, link.node_a) || !is_switch(topo, link.node_b))
      continue;
    if ((side_a.count(link.node_a) > 0) == (side_a.count(link.node_b) > 0))
      continue;
    net_.faults().schedule_outage(
        &net_.fabric().channel_from(l, link.node_a), at, at + span);
    net_.faults().schedule_outage(
        &net_.fabric().channel_from(l, link.node_b), at, at + span);
    ++cut;
  }
  return cut;
}

}  // namespace wormcast
