#include "net/topology.h"

#include <queue>
#include <stdexcept>

namespace wormcast {

NodeId Topology::add_switch(std::string name) {
  const auto id = static_cast<NodeId>(nodes_.size());
  TopoNode n;
  n.kind = NodeKind::kSwitch;
  n.name = name.empty() ? "sw" + std::to_string(id) : std::move(name);
  nodes_.push_back(std::move(n));
  return id;
}

NodeId Topology::add_host(std::string name) {
  const auto id = static_cast<NodeId>(nodes_.size());
  const auto host = static_cast<HostId>(host_nodes_.size());
  TopoNode n;
  n.kind = NodeKind::kHost;
  n.host = host;
  n.name = name.empty() ? "h" + std::to_string(host) : std::move(name);
  nodes_.push_back(std::move(n));
  host_nodes_.push_back(id);
  return id;
}

LinkId Topology::connect(NodeId a, NodeId b, Time delay) {
  if (a == b) throw std::logic_error("self-link");
  if (delay < 1) throw std::logic_error("link delay must be >= 1 byte-time");
  const auto id = static_cast<LinkId>(links_.size());
  TopoLink l;
  l.node_a = a;
  l.port_a = static_cast<PortId>(nodes_[a].ports.size());
  l.node_b = b;
  l.port_b = static_cast<PortId>(nodes_[b].ports.size());
  l.delay = delay;
  nodes_[a].ports.push_back(TopoPort{id});
  nodes_[b].ports.push_back(TopoPort{id});
  links_.push_back(l);
  return id;
}

NodeId Topology::switch_of_host(HostId h) const {
  const NodeId hn = node_of_host(h);
  const TopoNode& n = nodes_[hn];
  if (n.ports.size() != 1) throw std::logic_error("host must have one port");
  return peer(n.ports[0].link, hn);
}

std::vector<HostId> Topology::all_hosts() const {
  std::vector<HostId> out(host_nodes_.size());
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = static_cast<HostId>(i);
  return out;
}

NodeId Topology::peer(LinkId l, NodeId from) const {
  const TopoLink& lk = links_[l];
  if (lk.node_a == from) return lk.node_b;
  if (lk.node_b == from) return lk.node_a;
  throw std::logic_error("peer(): node not an endpoint of link");
}

PortId Topology::port_on(LinkId l, NodeId from) const {
  const TopoLink& lk = links_[l];
  if (lk.node_a == from) return lk.port_a;
  if (lk.node_b == from) return lk.port_b;
  throw std::logic_error("port_on(): node not an endpoint of link");
}

NodeId Topology::neighbor_via(NodeId from, PortId port) const {
  return peer(link_at(from, port), from);
}

void Topology::validate() const {
  for (NodeId n = 0; n < num_nodes(); ++n) {
    const TopoNode& node = nodes_[n];
    if (node.kind == NodeKind::kHost) {
      if (node.ports.size() != 1)
        throw std::logic_error("host " + node.name + " must have exactly one port");
      const NodeId sw = peer(node.ports[0].link, n);
      if (nodes_[sw].kind != NodeKind::kSwitch)
        throw std::logic_error("host " + node.name + " must attach to a switch");
    }
    for (std::size_t p = 0; p < node.ports.size(); ++p) {
      const TopoLink& lk = links_[node.ports[p].link];
      const bool ok = (lk.node_a == n && lk.port_a == static_cast<PortId>(p)) ||
                      (lk.node_b == n && lk.port_b == static_cast<PortId>(p));
      if (!ok) throw std::logic_error("inconsistent link/port wiring");
    }
  }
  if (num_nodes() == 0) return;
  // Connectivity.
  std::vector<bool> seen(static_cast<std::size_t>(num_nodes()), false);
  std::queue<NodeId> frontier;
  frontier.push(0);
  seen[0] = true;
  int count = 0;
  while (!frontier.empty()) {
    const NodeId n = frontier.front();
    frontier.pop();
    ++count;
    for (const TopoPort& p : nodes_[n].ports) {
      const NodeId m = peer(p.link, n);
      if (!seen[m]) {
        seen[m] = true;
        frontier.push(m);
      }
    }
  }
  if (count != num_nodes()) throw std::logic_error("topology is disconnected");
}

}  // namespace wormcast
