// Experiment metric collection.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/worm.h"
#include "sim/stats.h"
#include "sim/types.h"

namespace wormcast {

/// Aggregates the observations the paper's figures are built from:
/// per-destination multicast latency (Figures 10 and 11 plot its average),
/// whole-group completion latency, unicast latency, delivered payload
/// (throughput), loss, and protocol-event counters.
///
/// Warmup handling: samples are recorded only for messages *created* at or
/// after the measurement window start.
class Metrics {
 public:
  /// Messages created before this time are excluded from samples.
  void set_window_start(Time t) { window_start_ = t; }
  [[nodiscard]] Time window_start() const { return window_start_; }

  std::shared_ptr<MessageContext> create_message(HostId origin, GroupId group,
                                                 std::int64_t payload,
                                                 int destinations, Time now);

  /// One destination got the payload. Returns true if this completed the
  /// message (all destinations reached).
  bool on_delivered(const std::shared_ptr<MessageContext>& ctx, HostId member,
                    Time now);

  /// Loss accounting (adapter input-buffer drops, Figure 13).
  void on_mcast_drop() { ++mcast_drops_; }
  void on_nack() { ++nacks_; }
  void on_retransmit() { ++retransmits_; }
  void on_relay() { ++relays_; }

  // Loss-recovery accounting (fault-injection experiments).
  void on_ack_timeout() { ++ack_timeouts_; }
  void on_duplicate() { ++duplicates_suppressed_; }
  /// A send exhausted max_attempts: the message is abandoned, not merely
  /// late, so it stops counting as outstanding (the run can drain).
  void on_delivery_failed(const std::shared_ptr<MessageContext>& ctx);
  void on_confirmation(const std::shared_ptr<MessageContext>& ctx, Time now);

  // Membership-churn accounting (join/leave/rejoin + overload shedding).
  void on_join_requested() { ++joins_requested_; }
  void on_join_applied(Time latency, bool rejoin) {
    ++joins_applied_;
    if (rejoin) ++rejoins_;
    join_latency_.add(static_cast<double>(latency));
  }
  /// A join was shed under overload; `final_shed` means its retry budget is
  /// exhausted and the request will never be applied.
  void on_join_shed(bool final_shed) {
    ++joins_shed_;
    if (final_shed) ++joins_abandoned_;
  }
  void on_leave_applied() { ++leaves_; }

  // Failure-detection & repair accounting.
  void on_suspicion(Time now) { ++suspicions_; last_suspicion_ = now; }
  void on_repair(Time now) { ++repairs_; last_repair_ = now; }
  void on_send_rerouted() { ++sends_rerouted_; }
  void on_link_failed() { ++links_failed_; }
  /// The message can no longer complete (its originator crashed, or a hop
  /// copy died inside the dead member): it stops counting as outstanding
  /// and is tallied as disrupted. Idempotent per message.
  void abandon_message(const std::shared_ptr<MessageContext>& ctx);
  /// A destination crashed before receiving this message: shrink the
  /// destination set so the survivors' deliveries can still complete it.
  /// Completion by shrink adds no latency sample (there was no delivery).
  /// Returns true if the message is now complete.
  bool shrink_destinations(const std::shared_ptr<MessageContext>& ctx, Time now);
  /// Snapshot of the not-yet-finished messages (repair-time triage).
  [[nodiscard]] std::vector<std::shared_ptr<MessageContext>> outstanding_messages()
      const;
  [[nodiscard]] bool is_outstanding(std::uint64_t message_id) const {
    return outstanding_.count(message_id) != 0;
  }

  /// Delivery order audit trail: per host, the (group, message) sequence
  /// observed; the total-ordering tests compare these across members.
  void record_order(HostId host, GroupId group, std::uint64_t message_id);
  [[nodiscard]] const std::vector<std::uint64_t>* order_of(HostId host,
                                                           GroupId group) const;

  [[nodiscard]] const SampleSet& mcast_latency() const { return mcast_latency_; }
  [[nodiscard]] const SampleSet& mcast_completion() const {
    return mcast_completion_;
  }
  [[nodiscard]] const SampleSet& unicast_latency() const {
    return unicast_latency_;
  }
  [[nodiscard]] std::int64_t mcast_drops() const { return mcast_drops_; }
  [[nodiscard]] std::int64_t nacks() const { return nacks_; }
  [[nodiscard]] std::int64_t retransmits() const { return retransmits_; }
  [[nodiscard]] std::int64_t relays() const { return relays_; }
  [[nodiscard]] std::int64_t ack_timeouts() const { return ack_timeouts_; }
  [[nodiscard]] std::int64_t duplicates_suppressed() const {
    return duplicates_suppressed_;
  }
  [[nodiscard]] std::int64_t deliveries_failed() const {
    return deliveries_failed_;
  }
  [[nodiscard]] std::int64_t suspicions() const { return suspicions_; }
  [[nodiscard]] std::int64_t repairs() const { return repairs_; }
  [[nodiscard]] std::int64_t sends_rerouted() const { return sends_rerouted_; }
  [[nodiscard]] std::int64_t messages_disrupted() const {
    return messages_disrupted_;
  }
  [[nodiscard]] std::int64_t links_failed() const { return links_failed_; }
  [[nodiscard]] const SampleSet& join_latency() const { return join_latency_; }
  [[nodiscard]] std::int64_t joins_requested() const { return joins_requested_; }
  [[nodiscard]] std::int64_t joins_applied() const { return joins_applied_; }
  [[nodiscard]] std::int64_t joins_shed() const { return joins_shed_; }
  [[nodiscard]] std::int64_t joins_abandoned() const { return joins_abandoned_; }
  [[nodiscard]] std::int64_t rejoins() const { return rejoins_; }
  [[nodiscard]] std::int64_t leaves() const { return leaves_; }
  [[nodiscard]] Time last_suspicion_time() const { return last_suspicion_; }
  [[nodiscard]] Time last_repair_time() const { return last_repair_; }
  [[nodiscard]] std::int64_t messages_created() const { return created_; }
  [[nodiscard]] std::int64_t messages_completed() const { return completed_; }
  [[nodiscard]] std::int64_t payload_delivered() const { return payload_delivered_; }

  /// Messages not yet fully delivered.
  [[nodiscard]] std::int64_t outstanding() const {
    return static_cast<std::int64_t>(outstanding_.size());
  }
  /// Age of the oldest unfinished message; 0 when none. The livelock /
  /// buffer-deadlock detector for the ablation benches.
  [[nodiscard]] Time oldest_outstanding_age(Time now) const;

  /// Time the most recent message completed (0 if none yet).
  [[nodiscard]] Time last_completion_time() const { return last_completion_; }

  /// Fires whenever a message stops being outstanding for any reason —
  /// completion, delivery failure, abandonment, or completion by
  /// destination shrink. The Network's send gate drains on it.
  void set_message_closed_hook(
      std::function<void(const std::shared_ptr<MessageContext>&)> hook) {
    message_closed_hook_ = std::move(hook);
  }

 private:
  Time window_start_ = 0;
  std::uint64_t next_id_ = 1;
  SampleSet mcast_latency_;
  SampleSet mcast_completion_;
  SampleSet unicast_latency_;
  std::int64_t mcast_drops_ = 0;
  std::int64_t nacks_ = 0;
  std::int64_t retransmits_ = 0;
  std::int64_t relays_ = 0;
  std::int64_t ack_timeouts_ = 0;
  std::int64_t duplicates_suppressed_ = 0;
  std::int64_t deliveries_failed_ = 0;
  std::int64_t created_ = 0;
  std::int64_t completed_ = 0;
  std::int64_t payload_delivered_ = 0;
  std::int64_t suspicions_ = 0;
  std::int64_t repairs_ = 0;
  std::int64_t sends_rerouted_ = 0;
  std::int64_t messages_disrupted_ = 0;
  std::int64_t links_failed_ = 0;
  SampleSet join_latency_;
  std::int64_t joins_requested_ = 0;
  std::int64_t joins_applied_ = 0;
  std::int64_t joins_shed_ = 0;
  std::int64_t joins_abandoned_ = 0;
  std::int64_t rejoins_ = 0;
  std::int64_t leaves_ = 0;
  Time last_completion_ = 0;
  Time last_suspicion_ = 0;
  Time last_repair_ = 0;
  // Live contexts so repair can triage in-flight messages, not just ages.
  std::unordered_map<std::uint64_t, std::shared_ptr<MessageContext>> outstanding_;
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> orders_;
  std::function<void(const std::shared_ptr<MessageContext>&)>
      message_closed_hook_;
};

}  // namespace wormcast
