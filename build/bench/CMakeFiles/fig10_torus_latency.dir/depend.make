# Empty dependencies file for fig10_torus_latency.
# This may be replaced when dependencies are built.
