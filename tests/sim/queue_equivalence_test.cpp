// Queue-equivalence suite: the calendar queue and the flat binary heap
// implement the same total order (time, late, insertion sequence), so an
// entire experiment must produce bit-identical results under either kind.
// These tests pin that on full simulations — the Section 8 testbed (heavy
// same-tick traffic, adapter timers, channel pumps) and a random-traffic
// torus sweep point (Poisson generators, retransmit timers, heavy
// cancellation) — so any divergence in firing order shows up as a
// macroscopic metric diff, not a subtle drift.
#include <gtest/gtest.h>

#include "myrinet_testbed.h"
#include "net/topologies.h"
#include "sim/random.h"
#include "traffic/groups.h"

namespace wormcast {
namespace {

bench::TestbedResult run_testbed_with(EventQueueKind kind, Time inject_period,
                                      int torus) {
  bench::TestbedOptions opts;
  opts.senders = torus > 0 ? torus * torus : 8;
  opts.packet_size = 1024;
  opts.span = torus > 0 ? 200'000 : 300'000;
  opts.queue = kind;
  opts.inject_period = inject_period;
  opts.torus = torus;
  opts.group_size = torus > 0 ? 4 : 0;
  return bench::run_testbed(opts);
}

void expect_identical(const bench::TestbedResult& a,
                      const bench::TestbedResult& b) {
  // Same firing order means the simulations are the same run: every
  // deterministic observable matches exactly, including the event count
  // and the app-poll count (unlike fast-forward, the queue kind does not
  // change which events exist).
  EXPECT_EQ(a.throughput_mbps, b.throughput_mbps);
  EXPECT_EQ(a.loss_rate, b.loss_rate);
  EXPECT_EQ(a.bytes_on_wire, b.bytes_on_wire);
  EXPECT_EQ(a.events_dispatched, b.events_dispatched);
  EXPECT_EQ(a.app_polls, b.app_polls);
  EXPECT_EQ(a.pool_fresh, b.pool_fresh);
  EXPECT_EQ(a.pool_reused, b.pool_reused);
}

TEST(QueueEquivalence, SaturatingTestbedIsBitIdentical) {
  const auto heap = run_testbed_with(EventQueueKind::kHeap,
                                     /*inject_period=*/0, /*torus=*/0);
  const auto cal = run_testbed_with(EventQueueKind::kCalendar,
                                    /*inject_period=*/0, /*torus=*/0);
  expect_identical(heap, cal);
  EXPECT_GT(heap.bytes_on_wire, 0);
}

TEST(QueueEquivalence, RateLimitedTorusIsBitIdentical) {
  // The hot-path bench's scale shape in miniature: a 4x4 torus of mostly
  // idle hosts sending to disjoint 4-host groups (fast-forward on, so the
  // drain-wake path and deadline jumps run under both queue kinds).
  const auto heap = run_testbed_with(EventQueueKind::kHeap,
                                     /*inject_period=*/40'000, /*torus=*/4);
  const auto cal = run_testbed_with(EventQueueKind::kCalendar,
                                    /*inject_period=*/40'000, /*torus=*/4);
  expect_identical(heap, cal);
  EXPECT_GT(heap.bytes_on_wire, 0);
}

double run_random_traffic(EventQueueKind kind, Scheme scheme,
                          double* utilization) {
  RandomStream group_rng(900);
  auto groups = make_random_groups(10, 10, 64, group_rng);
  ExperimentConfig cfg = bench::sim_defaults(scheme, 0.05, 0.10, 1);
  cfg.engine.queue = kind;
  Network net(make_torus(8, 8), std::move(groups), cfg);
  net.run(/*warmup=*/20'000, /*measure=*/60'000, /*drain_cap=*/100'000);
  const auto s = net.summary();
  *utilization = s.measured_utilization;
  return s.mcast_latency_mean;
}

TEST(QueueEquivalence, RandomTrafficSweepPointIsBitIdentical) {
  // Poisson arrivals + geometric worm lengths + retransmit timers: the
  // cancel-heavy workload where a queue-order bug would skew latency.
  for (const Scheme scheme :
       {Scheme::kHamiltonianSF, Scheme::kTreeBroadcast}) {
    double util_heap = 0.0;
    double util_cal = 0.0;
    const double lat_heap =
        run_random_traffic(EventQueueKind::kHeap, scheme, &util_heap);
    const double lat_cal =
        run_random_traffic(EventQueueKind::kCalendar, scheme, &util_cal);
    EXPECT_EQ(lat_heap, lat_cal);
    EXPECT_EQ(util_heap, util_cal);
    EXPECT_GT(util_heap, 0.0);
  }
}

}  // namespace
}  // namespace wormcast
