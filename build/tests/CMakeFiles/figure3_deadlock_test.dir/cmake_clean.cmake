file(REMOVE_RECURSE
  "CMakeFiles/figure3_deadlock_test.dir/net/figure3_deadlock_test.cpp.o"
  "CMakeFiles/figure3_deadlock_test.dir/net/figure3_deadlock_test.cpp.o.d"
  "figure3_deadlock_test"
  "figure3_deadlock_test.pdb"
  "figure3_deadlock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure3_deadlock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
