// Membership-churn workload driver: a Poisson stream of voluntary
// leave/join/rejoin requests against a Network's membership coordinator.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/network.h"
#include "sim/random.h"

namespace wormcast {

struct ChurnConfig {
  /// Mean byte-times between churn operations (exponential gaps). 0
  /// disables the engine.
  Time mean_gap = 0;
  /// Operations are issued in [from, until).
  Time from = 0;
  Time until = 0;
  /// Probability an operation is a leave (otherwise a join attempt). The
  /// engine keeps groups between min_members and the full host set, so
  /// the realized mix self-balances around the bias.
  double leave_bias = 0.5;
  /// Probability a join re-admits a member the engine previously made
  /// leave (a *rejoin*, exercising the dedup-epoch path) rather than a
  /// never-member host.
  double rejoin_bias = 0.75;
  /// Never shrink a group below this size with engine-issued leaves.
  int min_members = 2;
};

/// Drives churn dynamically: each tick inspects the *current* tables
/// (membership may have shifted under repairs and earlier churn), picks a
/// group and an eligible host from its own RandomStream, and submits the
/// request through Network::request_join/request_leave. One engine per
/// Network with a seed forked from the point seed keeps every sweep point
/// independent and --jobs invariant; within a run the draw order is the
/// deterministic event order.
class ChurnEngine {
 public:
  ChurnEngine(Network& net, std::vector<GroupId> groups, ChurnConfig config,
              RandomStream rng);

  /// Schedules the first tick; call once before Network::run.
  void start();

  [[nodiscard]] std::int64_t ops_issued() const { return ops_issued_; }

 private:
  void tick();
  void issue_leave(GroupId g);
  void issue_join(GroupId g);

  Network& net_;
  std::vector<GroupId> groups_;
  ChurnConfig config_;
  RandomStream rng_;
  /// Hosts this engine made leave each group, newest last: the rejoin
  /// pool. (Hosts removed by the failure detector never enter it — a
  /// crashed host cannot come back.)
  std::unordered_map<GroupId, std::vector<HostId>> parked_;
  std::int64_t ops_issued_ = 0;
};

}  // namespace wormcast
