# Empty compiler generated dependencies file for fig13_packet_loss.
# This may be replaced when dependencies are built.
