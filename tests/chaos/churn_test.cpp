// Dynamic membership under load: join splice-in with the view floor,
// voluntary leave as a clean (suspicion-free) departure, rejoin with a
// fresh dedup epoch, shed-under-overload degradation of the bounded
// membership coordinator, flap recovery with zero lost payloads, and
// bit-identical replay of a full churn + chaos schedule.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/chaos_schedule.h"
#include "chaos/churn_engine.h"
#include "core/network.h"
#include "net/topologies.h"
#include "sim/random.h"

namespace wormcast {
namespace {

ExperimentConfig churn_config(Scheme scheme) {
  ExperimentConfig cfg;
  cfg.protocol.scheme = scheme;
  cfg.protocol.ack_timeout = 8'000;
  cfg.protocol.retry_backoff = 2'000;
  cfg.protocol.retry_jitter = 1'000;
  cfg.protocol.max_attempts = 10;
  cfg.protocol.suspicion_timeout = 60'000;
  cfg.protocol.pool_bytes = 128 * 1024;
  cfg.seed = 42;
  return cfg;
}

void inject_group_mcast(Network& net, GroupId group, HostId src,
                        std::int64_t length) {
  Demand d;
  d.src = src;
  d.multicast = true;
  d.group = group;
  d.length = length;
  net.inject(d);
}

/// Exactly-once at every surviving member of `group`.
void expect_exactly_once(Network& net, GroupId group) {
  for (HostId h = 0; h < net.num_hosts(); ++h) {
    const auto* order = net.metrics().order_of(h, group);
    if (order == nullptr) continue;
    std::set<std::uint64_t> distinct(order->begin(), order->end());
    EXPECT_EQ(order->size(), distinct.size())
        << "duplicate delivery at host " << h << " group " << group;
  }
}

class ChurnSchemeTest : public ::testing::TestWithParam<Scheme> {};

// A joiner spliced in mid-experiment receives exactly the messages
// originated after its join (the view floor), while the incumbents keep
// receiving everything.
TEST_P(ChurnSchemeTest, JoinSpliceDeliversOnlyPostJoinTraffic) {
  MulticastGroupSpec g0{0, {0, 1, 2, 3}};
  Network net(make_myrinet_testbed(), {g0}, churn_config(GetParam()));
  for (int i = 0; i < 5; ++i) inject_group_mcast(net, 0, i % 4, 300);
  net.run_until(60'000);  // pre-join traffic fully drained
  ASSERT_EQ(net.metrics().outstanding(), 0);

  net.request_join(0, 5, 60'000);
  net.run_until(100'000);  // join applied (one op through the queue)
  ASSERT_TRUE(net.tables().is_member(0, 5));
  EXPECT_TRUE(net.tables().tree(0).contains(5));
  EXPECT_EQ(net.tables().circuit(0).order(),
            (std::vector<HostId>{0, 1, 2, 3, 5}));

  for (int i = 0; i < 6; ++i) {
    const HostId src = static_cast<HostId>(i % 4);
    net.sim().at(100'000 + i * 2'000,
                 [&net, src] { inject_group_mcast(net, 0, src, 300); });
  }
  net.run_to_quiescence();

  const Network::Summary s = net.summary();
  EXPECT_EQ(s.joins_requested, 1);
  EXPECT_EQ(s.joins_applied, 1);
  EXPECT_EQ(s.joins_shed, 0);
  EXPECT_EQ(s.messages_completed, 11);
  EXPECT_EQ(net.metrics().outstanding(), 0) << net.debug_report();
  // The view floor: the joiner saw the 6 post-join messages, nothing else.
  const auto* joiner_order = net.metrics().order_of(5, 0);
  ASSERT_NE(joiner_order, nullptr);
  EXPECT_EQ(joiner_order->size(), 6u);
  // Incumbents saw all 11 (minus their own originations).
  const auto* h1_order = net.metrics().order_of(1, 0);
  ASSERT_NE(h1_order, nullptr);
  EXPECT_GE(h1_order->size(), 8u);
  expect_exactly_once(net, 0);
}

// A voluntary leave is a clean departure: no suspicion, no repair-grace
// burn, no removed host — and the whole causal history passes the
// expectation pack, including leave-no-suspect against a live detector.
TEST_P(ChurnSchemeTest, VoluntaryLeaveProducesNoSuspicion) {
  MulticastGroupSpec g0{0, {0, 1, 2, 3, 4, 5}};
  Network net(make_myrinet_testbed(), {g0}, churn_config(GetParam()));
  net.enable_tracing(std::size_t{1} << 18);
  for (int i = 0; i < 16; ++i) {
    const HostId src = static_cast<HostId>(i % 6);
    net.sim().at(1'000 + i * 2'000,
                 [&net, src] { inject_group_mcast(net, 0, src, 300); });
  }
  net.request_leave(0, 4, 12'000);  // mid-flight departure
  net.run_to_quiescence();

  const Network::Summary s = net.summary();
  EXPECT_EQ(s.leaves, 1);
  EXPECT_EQ(s.suspicions, 0) << "a clean leave must not look like a crash";
  EXPECT_EQ(s.hosts_removed, 0);
  EXPECT_FALSE(net.tables().is_member(0, 4));
  EXPECT_EQ(net.metrics().outstanding(), 0) << net.debug_report();
  expect_exactly_once(net, 0);

  const check::CheckReport rep = net.check_expectations();
  EXPECT_TRUE(rep.ok()) << rep.format();
  EXPECT_GT(rep.obligations, 0);
}

// Leave then rejoin: the member is readmitted, its dedup epoch advances
// (the rejoin-fresh-dedup rule sees the reset), and post-rejoin traffic
// reaches it exactly once.
TEST_P(ChurnSchemeTest, RejoinReadmitsWithFreshDedupEpoch) {
  MulticastGroupSpec g0{0, {0, 1, 2, 3, 4}};
  Network net(make_myrinet_testbed(), {g0}, churn_config(GetParam()));
  net.enable_tracing(std::size_t{1} << 18);
  for (int i = 0; i < 4; ++i) inject_group_mcast(net, 0, i, 300);
  net.request_leave(0, 4, 30'000);
  net.request_join(0, 4, 90'000);  // well after the leave settled
  for (int i = 0; i < 4; ++i) {
    const HostId src = static_cast<HostId>(i);
    net.sim().at(140'000 + i * 2'000,
                 [&net, src] { inject_group_mcast(net, 0, src, 300); });
  }
  net.run_to_quiescence();

  const Network::Summary s = net.summary();
  EXPECT_EQ(s.leaves, 1);
  EXPECT_EQ(s.joins_applied, 1);
  EXPECT_EQ(s.rejoins, 1) << "a returning ex-member must count as a rejoin";
  EXPECT_TRUE(net.tables().is_member(0, 4));
  EXPECT_EQ(net.metrics().outstanding(), 0) << net.debug_report();
  expect_exactly_once(net, 0);

  // The trace carries the rejoin and its same-site dedup reset, and the
  // whole history (incl. rejoin-fresh-dedup) judges clean.
  bool saw_rejoin = false;
  bool saw_reset = false;
  for (const TraceEvent& e : net.sim().tracer().snapshot()) {
    if (e.type == TraceEventType::kProtoRejoin && e.node == 4) saw_rejoin = true;
    if (e.type == TraceEventType::kProtoDedupReset && e.node == 4)
      saw_reset = true;
  }
  EXPECT_TRUE(saw_rejoin);
  EXPECT_TRUE(saw_reset);
  const check::CheckReport rep = net.check_expectations();
  EXPECT_TRUE(rep.ok()) << rep.format();
}

INSTANTIATE_TEST_SUITE_P(Schemes, ChurnSchemeTest,
                         ::testing::Values(Scheme::kHamiltonianSF,
                                           Scheme::kTreeSF),
                         [](const ::testing::TestParamInfo<Scheme>& param) {
                           std::string s = scheme_name(param.param);
                           for (char& c : s)
                             if (c == '-') c = '_';
                           return s;
                         });

// Graceful degradation: a one-slot coordinator hit by a burst of joins
// sheds the overflow with capped retries instead of growing the queue,
// and every shed is explicit (the join-grace expectation holds).
TEST(ChurnOverload, BoundedQueueShedsJoinBurst) {
  ExperimentConfig cfg = churn_config(Scheme::kHamiltonianSF);
  cfg.membership.queue_limit = 1;
  cfg.membership.op_cost = 30'000;  // slow drain: the burst must shed
  cfg.membership.max_join_attempts = 2;
  cfg.membership.retry_backoff = 5'000;
  cfg.membership.retry_jitter = 2'000;
  MulticastGroupSpec g0{0, {0, 1}};
  Network net(make_myrinet_testbed(), {g0}, cfg);
  net.enable_tracing(std::size_t{1} << 18);
  for (HostId h = 2; h < 8; ++h) net.request_join(0, h, 1'000);
  net.run_to_quiescence();

  const Network::Summary s = net.summary();
  EXPECT_EQ(s.joins_requested, 6);
  EXPECT_GT(s.joins_shed, 0) << "the burst never overloaded the queue";
  EXPECT_GT(s.joins_abandoned, 0)
      << "attempts must cap out, not retry forever";
  EXPECT_LE(s.membership_queue_peak, 1);
  EXPECT_EQ(s.joins_applied + s.joins_abandoned, 6)
      << "every join intent must resolve: applied or finally shed";
  const check::CheckReport rep = net.check_expectations();
  EXPECT_TRUE(rep.ok()) << rep.format();
}

// Satellite regression: a flapping link is a *transient* fault cycle —
// every down window is followed by recovery, routing never recomputes,
// and no payload is lost across any number of cycles.
TEST(ChurnChaos, FlappingLinkRecoversEveryWindowZeroLost) {
  Topology topo = make_myrinet_testbed();
  LinkId victim = kNoLink;
  for (LinkId l = 0; l < topo.num_links(); ++l) {
    const TopoLink& link = topo.link(l);
    if (topo.node(link.node_a).kind == NodeKind::kSwitch &&
        topo.node(link.node_b).kind == NodeKind::kSwitch) {
      victim = l;
      break;
    }
  }
  ASSERT_NE(victim, kNoLink);

  Network net(std::move(topo), {make_full_group(8)},
              churn_config(Scheme::kHamiltonianSF));
  const int windows = net.flap_link(victim, 5'000, 120'000, 6'000, 20'000);
  EXPECT_GT(windows, 1) << "the flap must cycle, not fail once";
  for (int i = 0; i < 20; ++i) {
    const HostId src = static_cast<HostId>((i * 3) % 8);
    net.sim().at(1'000 + i * 4'000,
                 [&net, src] { inject_group_mcast(net, 0, src, 300); });
  }
  net.run_to_quiescence();

  const Network::Summary s = net.summary();
  // Unlike fail_link, a flap never declares the link dead to routing.
  EXPECT_TRUE(net.routing().link_alive(victim));
  EXPECT_EQ(s.links_failed, 0);
  // Both directions of the link flap on the shared schedule, so the
  // injector counts each window twice (once per channel).
  EXPECT_EQ(s.flap_windows, 2 * windows);
  EXPECT_EQ(s.messages_completed, 20) << "payloads lost across flap cycles";
  EXPECT_EQ(net.metrics().outstanding(), 0) << net.debug_report();
  EXPECT_EQ(s.hosts_removed, 0)
      << "a flap shorter than suspicion must not get anyone killed";
  expect_exactly_once(net, 0);
}

// A full churn + chaos schedule replays bit-identically: same seed, same
// verdict, same delivery orders, same membership arithmetic.
TEST(ChurnChaos, ScheduleReplaysBitIdentically) {
  const auto run_once = [] {
    ExperimentConfig cfg = churn_config(Scheme::kHamiltonianSF);
    cfg.traffic.offered_load = 0.02;
    cfg.traffic.mean_worm_len = 300.0;
    cfg.traffic.multicast_fraction = 1.0;
    cfg.membership.queue_limit = 4;
    cfg.membership.op_cost = 10'000;
    MulticastGroupSpec g0{0, {0, 1, 2, 3, 4, 5, 6, 7}};
    Network net(make_myrinet_testbed(), {g0}, cfg);
    ChaosSchedule chaos(net, RandomStream::seed_mix(42, 0xC4A05));
    chaos.flap_random_links(2, 10'000, 150'000, 6'000, 25'000);
    ChurnConfig churn;
    churn.mean_gap = 12'000;
    churn.from = 5'000;
    churn.until = 160'000;
    ChurnEngine engine(net, {0}, churn,
                       RandomStream(RandomStream::seed_mix(42, 0x4C42)));
    engine.start();
    net.run(2'000, 170'000, /*drain_cap=*/400'000);

    const Network::Summary s = net.summary();
    std::ostringstream digest;
    digest << s.messages << ' ' << s.messages_completed << ' '
           << s.retransmits << ' ' << s.joins_requested << ' '
           << s.joins_applied << ' ' << s.joins_shed << ' ' << s.rejoins
           << ' ' << s.leaves << ' ' << s.membership_queue_peak << ' '
           << s.flap_windows << ' ' << engine.ops_issued() << '\n';
    for (HostId h = 0; h < net.num_hosts(); ++h) {
      const auto* order = net.metrics().order_of(h, 0);
      if (order == nullptr) continue;
      digest << h << ':';
      for (const std::uint64_t id : *order) digest << ' ' << id;
      digest << '\n';
    }
    return digest.str();
  };
  const std::string first = run_once();
  EXPECT_GT(first.size(), 20u);
  EXPECT_EQ(first, run_once());
}

}  // namespace
}  // namespace wormcast
