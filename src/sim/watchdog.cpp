#include "sim/watchdog.h"

#include <cassert>
#include <cstdio>
#include <utility>

#include "sim/trace_export.h"

namespace wormcast {

DeadlockWatchdog::DeadlockWatchdog(Simulator& sim, Time check_interval,
                                   OutstandingFn outstanding, OnDeadlock on_deadlock)
    : sim_(sim),
      interval_(check_interval),
      outstanding_(std::move(outstanding)),
      on_deadlock_(std::move(on_deadlock)) {
  assert(interval_ > 0);
}

void DeadlockWatchdog::arm() {
  last_progress_ = read_progress();
  sim_.after(interval_, [this] { check(); });
}

void DeadlockWatchdog::check() {
  if (detected_) return;
  const std::int64_t progress = read_progress();
  if (progress == last_progress_ && outstanding_() > 0) {
    detected_ = true;
    detection_time_ = sim_.now();
    if (diagnostics_) {
      report_ = diagnostics_();
      // The flight recorder explains *how* the run wedged: append the last
      // decisions (grants, holds, STOP/GO, timer fires) to the state dump.
      report_ += format_trace_tail(sim_.tracer());
      std::fprintf(stderr, "wormcast watchdog: stall at t=%lld\n%s",
                   static_cast<long long>(detection_time_), report_.c_str());
    }
    if (on_deadlock_) on_deadlock_();
    return;
  }
  last_progress_ = progress;
  sim_.after(interval_, [this] { check(); });
}

}  // namespace wormcast
