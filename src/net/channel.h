// One direction of a full-duplex link, at byte granularity.
//
// The transmitter end pulls bytes from a ByteFeed (a switch crossbar
// connection or a host adapter's transmit engine) at one byte per
// byte-time while not STOPped. Bytes arrive at the receiver end after the
// link's propagation delay and are handed to an RxSink (a switch input
// port's slack buffer or a host adapter's receive engine). STOP/GO control
// symbols (Figure 1) travel against the data flow with the same propagation
// delay; they are modeled out of band (Myrinet interleaves them in the byte
// stream; the bandwidth cost is negligible).
//
// Burst mode (the simulation hot path): when the transmitter is un-STOPped,
// the worm's fault classification is already decided, and the receiver's
// slack buffer provably cannot cross a STOP/GO threshold, the channel moves
// a whole run of contiguous body bytes in ONE pump event and ONE delivery
// event instead of one pair per byte. A burst taken at time t stands for
// per-byte transmissions at t, t+1, ..., t+n-1; the delivery carries the
// same logical arrival times, and every consumer is rate-limited to one
// byte per byte-time starting at the first arrival, so nothing downstream
// can observe the difference — results are bit-for-bit identical to
// per-byte stepping (the determinism-equivalence suite pins this). Head
// bytes, tail bytes, STOP/GO transitions, and truncation boundaries always
// step per-byte.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>

#include "net/worm.h"
#include "sim/lazy_deque.h"
#include "sim/fault_injector.h"
#include "sim/shard.h"
#include "sim/simulator.h"
#include "sim/types.h"

namespace wormcast {

/// One byte as granted by a ByteFeed.
struct TxByte {
  bool head = false;               // first byte of a worm on this channel
  bool tail = false;               // last byte of the worm on this channel
  WormPtr worm;                    // set on head only
  std::int64_t wire_len = 0;       // set on head only: bytes on this channel
};

/// Supplies bytes to a Channel's transmitter. Implemented by switch
/// crossbar connections and adapter transmit engines.
class ByteFeed {
 public:
  virtual ~ByteFeed() = default;
  /// True if a byte can be sent right now.
  [[nodiscard]] virtual bool byte_available() const = 0;
  /// Takes the next byte. Called only when byte_available().
  virtual TxByte take_byte() = 0;
  /// Called by the channel after the feed's tail byte has been accepted;
  /// the feed is detached before this call (safe to re-attach a new feed).
  virtual void on_tail_sent() = 0;

  // --- burst extensions (default: per-byte only) -----------------------------

  /// Upper bound on plain body bytes (no head, no tail) the feed can commit
  /// to consecutive sends at now, now+1, ... — bytes it *guarantees* will be
  /// available at those logical times even if some have not logically
  /// arrived yet (contiguous runs arrive at exactly one byte per byte-time,
  /// so one arrived byte plus a physically buffered run is committable in
  /// full). 0 means step per-byte.
  [[nodiscard]] virtual std::int64_t burst_available() const { return 0; }

  /// Takes up to `max` plain body bytes at once (1 <= result <= max).
  /// Called only when burst_available() > 0 with max <= burst_available().
  virtual std::int64_t take_bytes(std::int64_t max) {
    (void)max;
    return 0;  // feeds that never advertise a burst are never asked
  }

  /// When byte_available() is false *only because* physically buffered
  /// bytes have not logically arrived yet, the time at which the next one
  /// does (the channel self-schedules a pump there — no kick will come).
  /// kTimeNever when a kick will announce the next byte instead.
  [[nodiscard]] virtual Time next_byte_time() const { return kTimeNever; }
};

/// Consumes bytes at a Channel's receiver. Implemented by switch input
/// ports and adapter receive engines.
class RxSink {
 public:
  virtual ~RxSink() = default;
  /// First byte of a worm. `wire_len` is the total bytes this channel will
  /// deliver for it (including this one and the trailer). `tail` marks a
  /// single-byte worm — head and trailer in one byte, as a zero-body
  /// interrupt-scheme multicast fragment produces — whose reception is
  /// complete with this call (no on_body follows).
  virtual void on_head(const WormPtr& worm, std::int64_t wire_len,
                       bool tail) = 0;
  /// Every subsequent byte; `tail` marks the last one.
  virtual void on_body(bool tail) = 0;

  // --- burst extensions (default: per-byte only) -----------------------------

  /// How many more bytes the sink can absorb — beyond everything already
  /// in flight toward it — without any possibility of a STOP/GO transition.
  /// The channel never lets (in-flight + burst) exceed this, so a burst
  /// delivery can never move a flow-control signal. 0 disables bursts.
  [[nodiscard]] virtual std::int64_t rx_burst_budget() const { return 0; }

  /// `n` body bytes delivered in one event: the first arrives now, the rest
  /// at logical times now+1 .. now+n-1 (the sink's availability accounting
  /// must respect that). The channel always delivers tails per-byte, so
  /// `tail` is false today; the parameter keeps the signature future-proof.
  virtual void on_body_burst(std::int64_t n, bool tail) {
    for (std::int64_t i = 1; i < n; ++i) on_body(false);
    on_body(tail);
  }
};

/// A directed byte pipe with propagation delay and STOP/GO backpressure.
class Channel {
 public:
  Channel(Simulator& sim, Time delay) : sim_(sim), delay_(delay) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  [[nodiscard]] Time delay() const { return delay_; }

  /// Attaches the transmit-side byte source. The channel pulls from it
  /// until it yields a tail byte, at which point the feed is detached.
  /// Only one feed may be attached at a time.
  void attach_feed(ByteFeed* feed);
  [[nodiscard]] bool feed_attached() const { return feed_ != nullptr; }

  /// Signals that the attached feed may have bytes available again.
  void kick();

  /// Detaches the feed without a tail (a multicast branch releasing a port
  /// on which it has not yet sent anything). Precondition: attached.
  void detach_feed();

  /// Sets the receiver; must be done before any traffic flows.
  void set_sink(RxSink* sink) { sink_ = sink; }

  /// Attaches the experiment's fault injector (null = lossless). Consulted
  /// once per worm head; a worm the injector condemns is truncated (data)
  /// or swallowed whole (control / outage). The feed side is unaffected:
  /// the transmitter still drains its bytes and sees on_tail_sent, exactly
  /// as if a real link had corrupted the worm downstream of it.
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }

  /// Enables/disables the burst fast path (results are identical either
  /// way; per-byte mode exists for the equivalence suite and debugging).
  void set_burst_enabled(bool on) { burst_ = on; }
  [[nodiscard]] bool burst_enabled() const { return burst_; }

  /// Names this channel's trace track: the (node, port) of its transmitter
  /// end. Set once at fabric wiring; purely observational (wormtrace).
  void set_trace_id(std::int32_t node, std::int32_t port) {
    trace_node_ = node;
    trace_port_ = port;
  }

  /// Puts the channel in cross-executor mode (sharded engine): the
  /// transmitter end (feed, pump, send counters) keeps running on `sim_`'s
  /// executor `tx_exec`, while the sink lives on `rx_sim`'s executor
  /// `rx_exec`. Deliveries and STOP/GO signals become timestamped boundary
  /// messages on `bus` instead of same-queue events; burst admission is
  /// gated by a budget republished from the sink at window barriers (see
  /// publish_rx_budget). Precondition: delay() >= the engine's lookahead
  /// window, which is what guarantees every posted message lands strictly
  /// after the window that emitted it. Call once, before traffic flows.
  void set_cross_executor(ShardBus* bus, int tx_exec, int rx_exec,
                          Simulator* rx_sim);
  [[nodiscard]] bool cross_executor() const { return bus_ != nullptr; }

  /// Single-threaded barrier hook: recomputes the burst budget from the
  /// sink's current state minus the bytes committed but not yet landed.
  /// Called once at setup and re-enqueued (via the bus) whenever a
  /// delivery lands, so a quiet channel costs nothing per window.
  void publish_rx_budget();

  /// Receiver-side flow control: schedule a STOP (GO) to take effect at the
  /// transmitter after the propagation delay.
  void signal_stop();
  void signal_go();
  [[nodiscard]] bool tx_stopped() const { return stopped_; }

  /// Bytes *delivered* to the receiver by now (link utilization
  /// accounting). Bytes a fault swallowed do not count — a dead link must
  /// not inflate measured utilization; see bytes_swallowed(). A burst
  /// committed at t counts one byte per logical send time, so reading this
  /// mid-burst matches per-byte stepping exactly.
  [[nodiscard]] std::int64_t bytes_sent() const;

  /// Bytes swallowed by faults (link outages, control drops, the cut
  /// portion of truncated worms) instead of delivered.
  [[nodiscard]] std::int64_t bytes_swallowed() const;

  /// Estimated resident bytes for this channel direction (memory audit):
  /// the object itself plus its in-flight window, which only costs once
  /// the channel has actually carried a byte.
  [[nodiscard]] std::size_t heap_bytes_estimate() const {
    return sizeof(Channel) + in_flight_.heap_bytes_estimate();
  }

 private:
  struct InFlight {
    bool head = false;
    bool tail = false;
    WormPtr worm;               // head only
    std::int64_t wire_len = 0;  // head only
    std::int64_t count = 1;     // >1: a burst of plain body bytes
  };

  /// Per-worm fault classification, decided at the head byte.
  enum class FaultMode : std::uint8_t {
    kNone,      // deliver every byte
    kTruncate,  // deliver fault_pass_left_ bytes, synthesize a tail, swallow
    kSwallow,   // deliver nothing (control loss / link outage)
  };

  void pump();
  void schedule_pump();
  bool try_burst();
  void deliver_front();
  void classify_fault(const TxByte& b);
  /// Cross-executor delivery: the run is carried by value in the posted
  /// closure (no shared deque), landing on the RX executor at send+delay.
  void post_delivery(InFlight b);
  void deliver_remote(const InFlight& b);

  Simulator& sim_;
  Time delay_;
  ByteFeed* feed_ = nullptr;
  RxSink* sink_ = nullptr;
  FaultInjector* faults_ = nullptr;
  bool stopped_ = false;
  bool burst_ = true;
  bool pump_scheduled_ = false;
  /// Logical send time of the newest committed byte; a burst at t commits
  /// sends through t+n-1, so this can sit in the future.
  Time last_send_ = -1;
  std::int64_t bytes_sent_ = 0;
  std::int64_t bytes_swallowed_ = 0;
  /// True when the newest committed run was swallowed (tells bytes_sent /
  /// bytes_swallowed which counter the not-yet-logically-sent tail of the
  /// run belongs to).
  bool last_run_swallowed_ = false;
  std::int64_t in_flight_bytes_ = 0;  // delivered-but-not-landed bytes
  LazyDeque<InFlight> in_flight_;
  FaultMode fault_mode_ = FaultMode::kNone;
  std::int64_t fault_pass_left_ = 0;  // kTruncate: bytes still delivered
  /// Set at the head byte: bursts are legal for this worm (switch-level
  /// multicast worms always step per-byte — the replication engine paces
  /// branches byte-by-byte).
  bool burst_ok_ = false;
  // Trace track identity (transmitter end) and the current worm's id for
  // head/tail span pairing; maintained only while tracing is enabled.
  std::int32_t trace_node_ = -1;
  std::int32_t trace_port_ = -1;
  std::uint64_t trace_worm_ = 0;

  // --- cross-executor mode (sharded engine; null bus_ = classic) ------------
  ShardBus* bus_ = nullptr;
  Simulator* rx_sim_ = nullptr;  // the sink's executor clock
  std::int32_t tx_exec_ = 0;
  std::int32_t rx_exec_ = 0;
  /// Conservative burst budget: sink headroom published at the last
  /// barrier, decremented per committed byte during the window. The
  /// per-byte path also decrements (and may drive it negative — legal:
  /// per-byte flow control works through the delayed STOP/GO signals, not
  /// the budget), so the barrier refresh needs no TX-side scan.
  std::int64_t budget_left_ = 0;
  std::int64_t tx_committed_ = 0;   // TX thread only (+ barriers)
  std::int64_t rx_delivered_ = 0;   // RX thread only (+ barriers)
  bool rx_dirty_ = false;           // republish already enqueued (RX thread)
};

}  // namespace wormcast
