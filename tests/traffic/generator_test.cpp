#include "traffic/generator.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace wormcast {
namespace {

struct Collected {
  std::vector<Demand> demands;
};

TEST(TrafficGenerator, OfferedLoadMatchesConfiguredRate) {
  Simulator sim;
  TrafficConfig cfg;
  cfg.offered_load = 0.05;
  cfg.mean_worm_len = 400.0;
  cfg.multicast_fraction = 0.0;
  Collected got;
  TrafficGenerator gen(sim, cfg, {}, 8, RandomStream(1),
                       [&](const Demand& d) { got.demands.push_back(d); });
  const Time span = 2'000'000;
  gen.start(span);
  sim.run();
  double bytes = 0;
  for (const auto& d : got.demands) bytes += static_cast<double>(d.length);
  const double rate = bytes / static_cast<double>(span) / 8.0;
  EXPECT_NEAR(rate, 0.05, 0.005);
}

TEST(TrafficGenerator, WormLengthsHaveConfiguredMeanAndBounds) {
  Simulator sim;
  TrafficConfig cfg;
  cfg.offered_load = 0.2;
  cfg.mean_worm_len = 400.0;
  cfg.min_worm_len = 16;
  cfg.max_worm_len = 9 * 1024;
  Collected got;
  TrafficGenerator gen(sim, cfg, {}, 4, RandomStream(2),
                       [&](const Demand& d) { got.demands.push_back(d); });
  gen.start(1'000'000);
  sim.run();
  ASSERT_GT(got.demands.size(), 300u);
  double total = 0;
  for (const auto& d : got.demands) {
    EXPECT_GE(d.length, 16);
    EXPECT_LE(d.length, 9 * 1024);
    total += static_cast<double>(d.length);
  }
  EXPECT_NEAR(total / static_cast<double>(got.demands.size()), 400.0, 40.0);
}

TEST(TrafficGenerator, MulticastFractionRespected) {
  Simulator sim;
  TrafficConfig cfg;
  cfg.offered_load = 0.2;
  cfg.multicast_fraction = 0.25;
  MulticastGroupSpec g0{0, {0, 1, 2}};
  MulticastGroupSpec g1{1, {1, 2, 3}};
  Collected got;
  TrafficGenerator gen(sim, cfg, {g0, g1}, 4, RandomStream(3),
                       [&](const Demand& d) { got.demands.push_back(d); });
  gen.start(800'000);
  sim.run();
  int mcast = 0;
  for (const auto& d : got.demands) {
    if (d.multicast) {
      ++mcast;
      // Only groups the source belongs to.
      if (d.group == 0) EXPECT_LE(d.src, 2);
      if (d.group == 1) EXPECT_GE(d.src, 1);
    } else {
      EXPECT_NE(d.dst, d.src);
    }
  }
  const double frac = static_cast<double>(mcast) /
                      static_cast<double>(got.demands.size());
  EXPECT_NEAR(frac, 0.25, 0.04);
}

TEST(TrafficGenerator, HostsOutsideAllGroupsNeverMulticast) {
  Simulator sim;
  TrafficConfig cfg;
  cfg.offered_load = 0.2;
  cfg.multicast_fraction = 0.9;
  MulticastGroupSpec g{0, {0, 1}};
  Collected got;
  TrafficGenerator gen(sim, cfg, {g}, 4, RandomStream(4),
                       [&](const Demand& d) { got.demands.push_back(d); });
  gen.start(400'000);
  sim.run();
  for (const auto& d : got.demands)
    if (d.src >= 2) EXPECT_FALSE(d.multicast);
}

TEST(TrafficGenerator, DeterministicForSameSeed) {
  auto run = [] {
    Simulator sim;
    TrafficConfig cfg;
    cfg.offered_load = 0.1;
    Collected got;
    TrafficGenerator gen(sim, cfg, {}, 4, RandomStream(9),
                         [&](const Demand& d) { got.demands.push_back(d); });
    gen.start(200'000);
    sim.run();
    return got.demands;
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].src, b[i].src);
    EXPECT_EQ(a[i].length, b[i].length);
    EXPECT_EQ(a[i].multicast, b[i].multicast);
  }
}

TEST(TrafficGenerator, StopsAtHorizon) {
  Simulator sim;
  TrafficConfig cfg;
  cfg.offered_load = 0.1;
  std::int64_t count = 0;
  TrafficGenerator gen(sim, cfg, {}, 2, RandomStream(5),
                       [&](const Demand&) { ++count; });
  gen.start(50'000);
  sim.run();
  EXPECT_LE(sim.now(), 50'000);
  EXPECT_EQ(gen.demands_issued(), count);
  EXPECT_GT(count, 0);
}

}  // namespace
}  // namespace wormcast
