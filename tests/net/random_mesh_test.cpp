// make_random_mesh: simple-graph guarantees (no self or duplicate links),
// the requested-degree cap near the complete graph, and keyed-draw
// determinism — the mesh is a pure function of the stream's seed no matter
// how many draws the caller consumed before the call (required for --jobs
// replay, where worker threads interleave stream use).
#include <gtest/gtest.h>

#include <set>
#include <utility>
#include <vector>

#include "net/topologies.h"
#include "net/updown.h"
#include "sim/random.h"

namespace wormcast {
namespace {

/// All switch-to-switch links as normalized endpoint pairs.
std::vector<std::pair<NodeId, NodeId>> switch_links(const Topology& t) {
  std::vector<std::pair<NodeId, NodeId>> out;
  for (LinkId l = 0; l < t.num_links(); ++l) {
    const TopoLink& tl = t.link(l);
    if (t.node(tl.node_a).kind != NodeKind::kSwitch ||
        t.node(tl.node_b).kind != NodeKind::kSwitch)
      continue;
    out.emplace_back(std::min(tl.node_a, tl.node_b),
                     std::max(tl.node_a, tl.node_b));
  }
  return out;
}

TEST(RandomMesh, SimpleGraphNoSelfOrDuplicateLinks) {
  RandomStream rng(11);
  const Topology t = make_random_mesh(16, 3.5, rng);
  const auto links = switch_links(t);
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const auto& [a, b] : links) {
    EXPECT_NE(a, b) << "self link";
    EXPECT_TRUE(seen.insert({a, b}).second) << "duplicate link " << a << "-" << b;
  }
  EXPECT_EQ(t.num_hosts(), 16);
}

TEST(RandomMesh, HonoursRequestedAverageDegree) {
  RandomStream rng(12);
  const Topology t = make_random_mesh(16, 3.0, rng);
  // target = degree * n / 2 switch-switch links.
  EXPECT_EQ(switch_links(t).size(), 24u);
}

TEST(RandomMesh, AbsurdDegreeCapsAtCompleteGraph) {
  RandomStream rng(13);
  const Topology t = make_random_mesh(8, 100.0, rng);
  // Must terminate (no endless rejection sampling) and stop at K8.
  EXPECT_EQ(switch_links(t).size(), 28u);
}

TEST(RandomMesh, ConnectedAndRoutable) {
  RandomStream rng(14);
  const Topology t = make_random_mesh(12, 2.5, rng);
  const UpDownRouting r(t);
  for (NodeId n = 0; n < t.num_nodes(); ++n)
    EXPECT_GE(r.level(n), 0) << "node " << n << " unreachable";
  for (HostId h = 1; h < t.num_hosts(); ++h)
    EXPECT_GE(r.route(0, h).size(), 1u);
}

TEST(RandomMesh, KeyedDrawsIgnorePriorStreamConsumption) {
  RandomStream fresh(77);
  const Topology a = make_random_mesh(16, 3.0, fresh);

  RandomStream consumed(77);
  for (int i = 0; i < 1000; ++i) (void)consumed.uniform(0, 1 << 20);
  const Topology b = make_random_mesh(16, 3.0, consumed);

  ASSERT_EQ(a.num_links(), b.num_links());
  EXPECT_EQ(switch_links(a), switch_links(b));
}

TEST(RandomMesh, DifferentSeedsDifferentMeshes) {
  RandomStream r1(1), r2(2);
  const Topology a = make_random_mesh(16, 3.0, r1);
  const Topology b = make_random_mesh(16, 3.0, r2);
  EXPECT_NE(switch_links(a), switch_links(b));
}

}  // namespace
}  // namespace wormcast
