#include "traffic/groups.h"

#include <stdexcept>

namespace wormcast {

std::vector<MulticastGroupSpec> make_random_groups(int n_groups, int group_size,
                                                   int n_hosts,
                                                   RandomStream& rng) {
  if (group_size > n_hosts)
    throw std::invalid_argument("group larger than host population");
  std::vector<MulticastGroupSpec> out;
  out.reserve(static_cast<std::size_t>(n_groups));
  for (GroupId g = 0; g < n_groups; ++g) {
    // Partial Fisher-Yates over the host list: first `group_size` entries.
    std::vector<HostId> pool(static_cast<std::size_t>(n_hosts));
    for (int h = 0; h < n_hosts; ++h) pool[static_cast<std::size_t>(h)] = h;
    MulticastGroupSpec spec;
    spec.id = g;
    for (int i = 0; i < group_size; ++i) {
      const auto j = static_cast<std::size_t>(rng.uniform(i, n_hosts - 1));
      std::swap(pool[static_cast<std::size_t>(i)], pool[j]);
      spec.members.push_back(pool[static_cast<std::size_t>(i)]);
    }
    out.push_back(std::move(spec));
  }
  return out;
}

MulticastGroupSpec make_full_group(int n_hosts, GroupId id) {
  MulticastGroupSpec spec;
  spec.id = id;
  for (HostId h = 0; h < n_hosts; ++h) spec.members.push_back(h);
  return spec;
}

}  // namespace wormcast
