#include <algorithm>
#include <array>
#include <limits>
#include <queue>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "net/mcast_route_builder.h"
#include "net/tree_strategy_impl.h"

namespace wormcast::detail {

namespace {

constexpr std::int64_t kUnreached = std::numeric_limits<std::int64_t>::max();

/// Static component of the per-switch detour penalty: `cap_hops` extra hops
/// per port a switch falls short of the fabric's maximum switch degree
/// (low-degree switches have the least multicast port capacity to spare).
std::vector<std::int64_t> static_penalties(const Topology& topo, int cap_hops) {
  std::vector<std::int64_t> out(static_cast<std::size_t>(topo.num_nodes()), 0);
  std::size_t max_degree = 0;
  for (NodeId n = 0; n < topo.num_nodes(); ++n)
    if (topo.node(n).kind == NodeKind::kSwitch)
      max_degree = std::max(max_degree, topo.node(n).ports.size());
  for (NodeId n = 0; n < topo.num_nodes(); ++n) {
    if (topo.node(n).kind != NodeKind::kSwitch) continue;
    out[n] = static_cast<std::int64_t>(cap_hops) *
             static_cast<std::int64_t>(max_degree - topo.node(n).ports.size());
  }
  return out;
}

}  // namespace

LoadAwareStrategy::LoadAwareStrategy(const TreeStrategyConfig& cfg,
                                     const Topology& topo,
                                     const UpDownRouting& base,
                                     const UpDownOptions& base_opts)
    : TreeStrategy(topo, base),
      load_penalty_hops_(std::max(0, cfg.load_penalty_hops)),
      capacity_penalty_hops_(std::max(0, cfg.capacity_penalty_hops)),
      tree_(std::make_unique<UpDownRouting>(topo,
                                            owned_tree_opts(base, base_opts))) {
  recompute_static_penalties();
}

void LoadAwareStrategy::recompute_static_penalties() {
  penalty_ = static_penalties(topo_, capacity_penalty_hops_);
}

void LoadAwareStrategy::plan_group(GroupId g, const std::vector<HostId>& members) {
  (void)members;
  // Membership changed: every cached plan for this group may now cover the
  // wrong destination set.
  for (auto it = plan_cache_.begin(); it != plan_cache_.end();) {
    if ((it->first >> 32) == static_cast<std::uint32_t>(g))
      it = plan_cache_.erase(it);
    else
      ++it;
  }
}

int LoadAwareStrategy::attach_cost(GroupId g, HostId parent,
                                   HostId child) const {
  (void)g;
  // Attaching `child` under `parent` makes parent's switch a forwarding
  // (and potential branch) point: charge its detour penalty on top of the
  // plain hop distance.
  const std::int64_t cost =
      base_routing_.hop_count(parent, child) +
      penalty_[static_cast<std::size_t>(topo_.switch_of_host(parent))];
  return static_cast<int>(std::min<std::int64_t>(
      cost, std::numeric_limits<int>::max()));
}

void LoadAwareStrategy::fail_link(LinkId l) {
  tree_->fail_link(l);
  plan_cache_.clear();
}

void LoadAwareStrategy::on_root_migrated(NodeId new_root) {
  tree_->set_root(new_root);
  plan_cache_.clear();
}

bool LoadAwareStrategy::replan() {
  ++replans_;
  std::vector<std::int64_t> next = static_penalties(topo_, capacity_penalty_hops_);
  if (probe_ && load_penalty_hops_ > 0) {
    // Scale the observed-load term so the hottest switch pays the full
    // configured penalty and cooler switches scale down linearly (rounded
    // to nearest hop — small asymmetries shouldn't perturb routes).
    std::vector<std::int64_t> load(next.size(), 0);
    std::int64_t max_load = 0;
    for (NodeId n = 0; n < topo_.num_nodes(); ++n) {
      if (topo_.node(n).kind != NodeKind::kSwitch) continue;
      load[n] = std::max<std::int64_t>(0, probe_(n));
      max_load = std::max(max_load, load[n]);
    }
    if (max_load > 0) {
      for (NodeId n = 0; n < topo_.num_nodes(); ++n) {
        if (topo_.node(n).kind != NodeKind::kSwitch) continue;
        next[n] += (static_cast<std::int64_t>(load_penalty_hops_) * load[n] +
                    max_load / 2) /
                   max_load;
      }
    }
  }
  const bool changed = next != penalty_;
  if (changed) {
    penalty_ = std::move(next);
    plan_cache_.clear();
  }
  return changed;
}

std::vector<std::pair<HostId, std::vector<PortId>>>
LoadAwareStrategy::penalized_paths(HostId src, GroupId g,
                                   const std::vector<HostId>& dests) const {
  (void)g;
  const NodeId src_sw = topo_.switch_of_host(src);
  const auto n_nodes = static_cast<std::size_t>(topo_.num_nodes());

  // Dijkstra over (switch, phase) where phase 0 = may still go up and
  // phase 1 = has gone down, exactly the legality state of the plain BFS in
  // UpDownRouting::shortest_legal_path, but with edge weight
  // 1 + penalty(next switch). Legality rides the *general* routing's
  // labels: load-aware worms use the full up/down graph, not just the
  // spanning tree. The queue orders ties by (node, phase), and strict-<
  // relaxation with port-ordered neighbour scans pins one deterministic
  // predecessor per state.
  struct Pred {
    NodeId node = kNoNode;
    int phase = -1;
    LinkId link = kNoLink;
  };
  std::vector<std::array<std::int64_t, 2>> dist(n_nodes,
                                                {kUnreached, kUnreached});
  std::vector<std::array<Pred, 2>> pred(n_nodes);
  using QItem = std::tuple<std::int64_t, NodeId, int>;
  std::priority_queue<QItem, std::vector<QItem>, std::greater<QItem>> frontier;
  dist[src_sw][0] = 0;
  frontier.push({0, src_sw, 0});
  while (!frontier.empty()) {
    const auto [d, n, ph] = frontier.top();
    frontier.pop();
    if (d != dist[n][ph]) continue;  // stale entry
    for (const TopoPort& p : topo_.node(n).ports) {
      const LinkId l = p.link;
      if (!base_routing_.link_alive(l) || base_routing_.up_end(l) == kNoNode)
        continue;
      const NodeId m = topo_.peer(l, n);
      if (topo_.node(m).kind != NodeKind::kSwitch) continue;
      const bool up = base_routing_.is_up_traversal(l, n);
      if (up && ph == 1) continue;  // down->up is illegal
      const int nph = up ? 0 : 1;
      const std::int64_t nd = d + 1 + penalty_[m];
      if (nd < dist[m][nph]) {
        dist[m][nph] = nd;
        pred[m][nph] = Pred{n, ph, l};
        frontier.push({nd, m, nph});
      }
    }
  }

  std::vector<std::pair<HostId, std::vector<PortId>>> out;
  out.reserve(dests.size());
  for (const HostId dst : dests) {
    if (dst == src) continue;
    const NodeId to_sw = topo_.switch_of_host(dst);
    int end_phase = dist[to_sw][0] <= dist[to_sw][1] ? 0 : 1;
    if (to_sw == src_sw) end_phase = 0;
    if (dist[to_sw][end_phase] == kUnreached)
      throw std::logic_error("no legal up/down path");
    std::vector<LinkId> links;
    NodeId n = to_sw;
    int ph = end_phase;
    while (!(n == src_sw && ph == 0)) {
      const Pred& pr = pred[n][ph];
      links.push_back(pr.link);
      n = pr.node;
      ph = pr.phase;
    }
    std::reverse(links.begin(), links.end());
    std::vector<PortId> ports;
    ports.reserve(links.size() + 1);
    NodeId at = src_sw;
    for (const LinkId l : links) {
      ports.push_back(topo_.port_on(l, at));
      at = topo_.peer(l, at);
    }
    const TopoNode& dest_node = topo_.node(topo_.node_of_host(dst));
    ports.push_back(topo_.port_on(dest_node.ports[0].link, to_sw));
    out.push_back({dst, std::move(ports)});
  }
  return out;
}

McastPlan LoadAwareStrategy::plan_multicast(
    GroupId g, HostId src, const std::vector<HostId>& dests) const {
  std::vector<HostId> want;
  want.reserve(dests.size());
  for (const HostId d : dests)
    if (d != src) want.push_back(d);
  if (want.empty())
    throw std::invalid_argument("multicast with no destinations");
  std::sort(want.begin(), want.end());

  const std::uint64_t key = plan_key(g, src);
  if (const auto it = plan_cache_.find(key); it != plan_cache_.end()) {
    std::vector<HostId> have;
    for (const McastPartition& part : it->second.partitions)
      have.insert(have.end(), part.dests.begin(), part.dests.end());
    std::sort(have.begin(), have.end());
    if (have == want) {
      worms_planned_ +=
          static_cast<std::int64_t>(it->second.partitions.size());
      return it->second;
    }
  }

  const auto penalized = penalized_paths(src, g, want);
  std::vector<HostPath> paths;
  paths.reserve(penalized.size());
  for (const auto& [host, ports] : penalized)
    paths.push_back(HostPath{host, ports});
  McastPlan plan;
  McastPartition part;
  part.dests = want;
  part.branches = merge_host_paths(paths);
  plan.partitions.push_back(std::move(part));
  ++worms_planned_;
  plan_cache_[key] = plan;
  return plan;
}

}  // namespace wormcast::detail
