file(REMOVE_RECURSE
  "CMakeFiles/wormcast_sim.dir/event_queue.cpp.o"
  "CMakeFiles/wormcast_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/wormcast_sim.dir/random.cpp.o"
  "CMakeFiles/wormcast_sim.dir/random.cpp.o.d"
  "CMakeFiles/wormcast_sim.dir/simulator.cpp.o"
  "CMakeFiles/wormcast_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/wormcast_sim.dir/stats.cpp.o"
  "CMakeFiles/wormcast_sim.dir/stats.cpp.o.d"
  "CMakeFiles/wormcast_sim.dir/watchdog.cpp.o"
  "CMakeFiles/wormcast_sim.dir/watchdog.cpp.o.d"
  "libwormcast_sim.a"
  "libwormcast_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wormcast_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
