#include "core/metrics.h"

#include <gtest/gtest.h>

namespace wormcast {
namespace {

TEST(Metrics, MessageLifecycle) {
  Metrics m;
  auto ctx = m.create_message(0, 1, 400, 3, 100);
  EXPECT_EQ(m.messages_created(), 1);
  EXPECT_EQ(m.outstanding(), 1);
  EXPECT_FALSE(m.on_delivered(ctx, 1, 200));
  EXPECT_FALSE(m.on_delivered(ctx, 2, 300));
  EXPECT_TRUE(m.on_delivered(ctx, 3, 500));
  EXPECT_EQ(m.outstanding(), 0);
  EXPECT_EQ(m.messages_completed(), 1);
  EXPECT_EQ(m.last_completion_time(), 500);
  // Per-destination latencies: 100, 200, 400.
  EXPECT_EQ(m.mcast_latency().count(), 3);
  EXPECT_NEAR(m.mcast_latency().mean(), (100 + 200 + 400) / 3.0, 1e-9);
  // Completion latency is the last delivery's.
  EXPECT_EQ(m.mcast_completion().count(), 1);
  EXPECT_DOUBLE_EQ(m.mcast_completion().mean(), 400.0);
}

TEST(Metrics, ZeroDestinationMessagesCompleteImmediately) {
  Metrics m;
  m.create_message(0, 1, 100, 0, 50);
  EXPECT_EQ(m.outstanding(), 0);
  EXPECT_EQ(m.messages_completed(), 1);
}

TEST(Metrics, WarmupWindowExcludesEarlyMessages) {
  Metrics m;
  m.set_window_start(1000);
  auto early = m.create_message(0, kNoGroup, 100, 1, 500);
  auto late = m.create_message(0, kNoGroup, 100, 1, 1500);
  m.on_delivered(early, 1, 1200);  // created before the window
  m.on_delivered(late, 1, 1700);
  EXPECT_EQ(m.unicast_latency().count(), 1);
  EXPECT_DOUBLE_EQ(m.unicast_latency().mean(), 200.0);
  EXPECT_EQ(m.payload_delivered(), 100);  // windowed
}

TEST(Metrics, UnicastAndMulticastLatenciesSeparated) {
  Metrics m;
  auto uni = m.create_message(0, kNoGroup, 10, 1, 0);
  auto mc = m.create_message(0, 2, 10, 1, 0);
  m.on_delivered(uni, 1, 10);
  m.on_delivered(mc, 1, 30);
  EXPECT_EQ(m.unicast_latency().count(), 1);
  EXPECT_EQ(m.mcast_latency().count(), 1);
  EXPECT_DOUBLE_EQ(m.unicast_latency().mean(), 10.0);
  EXPECT_DOUBLE_EQ(m.mcast_latency().mean(), 30.0);
}

TEST(Metrics, OldestOutstandingAge) {
  Metrics m;
  EXPECT_EQ(m.oldest_outstanding_age(1000), 0);
  auto a = m.create_message(0, 1, 10, 1, 100);
  m.create_message(0, 1, 10, 1, 400);
  EXPECT_EQ(m.oldest_outstanding_age(1000), 900);
  m.on_delivered(a, 1, 500);
  EXPECT_EQ(m.oldest_outstanding_age(1000), 600);
}

TEST(Metrics, OrderRecordsPerHostPerGroup) {
  Metrics m;
  m.record_order(1, 0, 10);
  m.record_order(1, 0, 11);
  m.record_order(2, 0, 11);
  m.record_order(1, 1, 99);
  ASSERT_NE(m.order_of(1, 0), nullptr);
  EXPECT_EQ(*m.order_of(1, 0), (std::vector<std::uint64_t>{10, 11}));
  EXPECT_EQ(*m.order_of(2, 0), (std::vector<std::uint64_t>{11}));
  EXPECT_EQ(*m.order_of(1, 1), (std::vector<std::uint64_t>{99}));
  EXPECT_EQ(m.order_of(3, 0), nullptr);
}

TEST(Metrics, EventCounters) {
  Metrics m;
  m.on_nack();
  m.on_nack();
  m.on_retransmit();
  m.on_relay();
  m.on_mcast_drop();
  EXPECT_EQ(m.nacks(), 2);
  EXPECT_EQ(m.retransmits(), 1);
  EXPECT_EQ(m.relays(), 1);
  EXPECT_EQ(m.mcast_drops(), 1);
}

TEST(Metrics, MessageIdsAreUnique) {
  Metrics m;
  auto a = m.create_message(0, 1, 10, 1, 0);
  auto b = m.create_message(1, 2, 10, 1, 0);
  EXPECT_NE(a->message_id, b->message_id);
}

}  // namespace
}  // namespace wormcast
