// Byte-level channel mechanics: line rate, propagation delay, framing,
// STOP/GO timing (Figure 1 semantics).
#include "net/channel.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace wormcast {
namespace {

/// Feeds a single worm of `len` bytes.
class OneWormFeed final : public ByteFeed {
 public:
  OneWormFeed(WormPtr worm, std::int64_t len) : worm_(std::move(worm)), len_(len) {}

  [[nodiscard]] bool byte_available() const override { return sent_ < len_; }
  TxByte take_byte() override {
    TxByte b;
    b.head = sent_ == 0;
    if (b.head) {
      b.worm = worm_;
      b.wire_len = len_;
    }
    ++sent_;
    b.tail = sent_ == len_;
    return b;
  }
  void on_tail_sent() override { tail_sent_ = true; }

  [[nodiscard]] std::int64_t sent() const { return sent_; }
  [[nodiscard]] bool tail_sent() const { return tail_sent_; }

 private:
  WormPtr worm_;
  std::int64_t len_;
  std::int64_t sent_ = 0;
  bool tail_sent_ = false;
};

/// Records arrival times of every byte.
class RecordSink final : public RxSink {
 public:
  explicit RecordSink(Simulator& sim) : sim_(sim) {}
  void on_head(const WormPtr& worm, std::int64_t wire_len) override {
    head_worm = worm;
    head_len = wire_len;
    times.push_back(sim_.now());
  }
  void on_body(bool tail) override {
    times.push_back(sim_.now());
    if (tail) tail_at = sim_.now();
  }

  Simulator& sim_;
  WormPtr head_worm;
  std::int64_t head_len = 0;
  std::vector<Time> times;
  Time tail_at = kTimeNever;
};

WormPtr worm_of(std::int64_t payload) {
  auto w = std::make_shared<Worm>();
  w->payload = payload;
  return w;
}

TEST(Channel, DeliversAtLineRateAfterPropagation) {
  Simulator sim;
  Channel ch(sim, /*delay=*/7);
  RecordSink sink(sim);
  ch.set_sink(&sink);
  OneWormFeed feed(worm_of(9), 10);
  ch.attach_feed(&feed);
  sim.run();
  ASSERT_EQ(sink.times.size(), 10u);
  EXPECT_EQ(sink.times.front(), 7);   // head: sent at 0, +7 propagation
  EXPECT_EQ(sink.times.back(), 16);   // one byte per byte-time thereafter
  for (std::size_t i = 1; i < sink.times.size(); ++i)
    EXPECT_EQ(sink.times[i] - sink.times[i - 1], 1);
  EXPECT_EQ(sink.head_len, 10);
  EXPECT_TRUE(feed.tail_sent());
  EXPECT_EQ(ch.bytes_sent(), 10);
}

TEST(Channel, StopHaltsSenderAfterPropagationDelay) {
  Simulator sim;
  Channel ch(sim, 5);
  RecordSink sink(sim);
  ch.set_sink(&sink);
  OneWormFeed feed(worm_of(99), 100);
  ch.attach_feed(&feed);
  // Receiver signals STOP at t=10; it takes effect at the sender at t=15,
  // before the t=15 byte goes out (control symbols win same-time ties).
  sim.at(10, [&] { ch.signal_stop(); });
  sim.run_until(40);
  // Sender sent bytes at t=0..14 (15 bytes), then froze.
  EXPECT_EQ(feed.sent(), 15);
  EXPECT_TRUE(ch.tx_stopped());
  // GO at 50 (arrives 55) resumes transmission.
  sim.at(50, [&] { ch.signal_go(); });
  sim.run();
  EXPECT_EQ(feed.sent(), 100);
  EXPECT_EQ(sink.times.size(), 100u);
}

TEST(Channel, BytesInFlightStillArriveAfterStop) {
  Simulator sim;
  Channel ch(sim, 5);
  RecordSink sink(sim);
  ch.set_sink(&sink);
  OneWormFeed feed(worm_of(50), 51);
  ch.attach_feed(&feed);
  sim.at(10, [&] { ch.signal_stop(); });
  sim.run_until(30);
  // All bytes sent before the freeze (t<=14) arrive by t=19.
  EXPECT_EQ(sink.times.size(), 15u);
  EXPECT_EQ(sink.times.back(), 19);
}

TEST(Channel, KickAfterFeedStarvationResumes) {
  Simulator sim;
  Channel ch(sim, 3);
  RecordSink sink(sim);
  ch.set_sink(&sink);

  // Feed that has a gap: bytes 0-4 available immediately, 5-9 at t=100.
  class GappyFeed final : public ByteFeed {
   public:
    explicit GappyFeed(WormPtr w) : worm_(std::move(w)) {}
    bool byte_available() const override {
      return sent_ < available_;
    }
    TxByte take_byte() override {
      TxByte b;
      b.head = sent_ == 0;
      if (b.head) {
        b.worm = worm_;
        b.wire_len = 10;
      }
      ++sent_;
      b.tail = sent_ == 10;
      return b;
    }
    void on_tail_sent() override {}
    WormPtr worm_;
    std::int64_t sent_ = 0;
    std::int64_t available_ = 5;
  } feed{worm_of(9)};

  ch.attach_feed(&feed);
  sim.at(100, [&] {
    feed.available_ = 10;
    ch.kick();
  });
  sim.run();
  ASSERT_EQ(sink.times.size(), 10u);
  EXPECT_EQ(sink.times[4], 7);    // fifth byte: sent t=4, +3
  EXPECT_EQ(sink.times[5], 103);  // resumed at t=100
}

TEST(Channel, SequentialWormsKeepOneByteSpacing) {
  Simulator sim;
  Channel ch(sim, 4);
  RecordSink sink(sim);
  ch.set_sink(&sink);
  OneWormFeed first(worm_of(3), 4);
  OneWormFeed second(worm_of(3), 4);
  ch.attach_feed(&first);
  // Attach the second feed just after the first's tail went out at t=3.
  sim.at(4, [&] { ch.attach_feed(&second); });
  sim.run();
  ASSERT_EQ(sink.times.size(), 8u);
  // Second worm's head leaves at t=4 (line rate respected across worms).
  EXPECT_EQ(sink.times[4], 8);
}

TEST(Channel, DetachFeedStopsTransmissionSilently) {
  Simulator sim;
  Channel ch(sim, 2);
  RecordSink sink(sim);
  ch.set_sink(&sink);
  OneWormFeed feed(worm_of(99), 100);
  ch.attach_feed(&feed);
  sim.run_until(10);
  ch.detach_feed();
  sim.run_until(200);
  EXPECT_FALSE(ch.feed_attached());
  EXPECT_LT(sink.times.size(), 100u);
  EXPECT_FALSE(feed.tail_sent());
}

}  // namespace
}  // namespace wormcast
