# Empty dependencies file for ablation_deadlock.
# This may be replaced when dependencies are built.
