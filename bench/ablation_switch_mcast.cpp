// Ablation D: switch-level vs host-adapter multicasting.
//
// Section 3 argues switch-level replication gives the lowest latency (no
// per-member store-and-forward) at the price of switch complexity and
// tree-restricted routing; Section 9 singles out broadcast as the case
// worth the complexity. This bench compares, on an idle 8x8 torus:
//   - one multicast to an 8-member group under every host-adapter scheme
//     and under fabric replication (scheme (a)); and
//   - one full broadcast (63 destinations) via repeated unicast, the tree
//     schemes, and the root-flood fabric broadcast.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "net/topologies.h"
#include "traffic/groups.h"

using namespace wormcast;

namespace {

constexpr std::int64_t kPayload = 1024;

double host_scheme_latency(Scheme scheme, const MulticastGroupSpec& group,
                           HostId src) {
  ExperimentConfig cfg;
  cfg.protocol.scheme = scheme;
  cfg.routing.tree_links_only = true;  // same routing budget for fairness
  Network net(make_torus(8, 8), {group}, cfg);
  Demand d;
  d.src = src;
  d.multicast = true;
  d.group = group.id;
  d.length = kPayload;
  net.inject(d);
  net.run_to_quiescence();
  return net.metrics().mcast_completion().mean();
}

double fabric_mcast_latency(const MulticastGroupSpec& group, HostId src) {
  ExperimentConfig cfg;
  cfg.routing.tree_links_only = true;
  Network net(make_torus(8, 8), {group}, cfg);
  net.send_switch_multicast(src, group.id, kPayload);
  net.run_to_quiescence();
  return net.metrics().mcast_completion().mean();
}

double fabric_broadcast_latency(HostId src) {
  ExperimentConfig cfg;
  cfg.routing.tree_links_only = true;
  Network net(make_torus(8, 8), {}, cfg);
  net.send_switch_broadcast(src, kPayload);
  net.run_to_quiescence();
  return net.metrics().mcast_completion().mean();
}

}  // namespace

int main(int, char**) {
  std::printf("# Ablation D: switch-level (fabric) vs host-adapter "
              "multicast; completion latency (byte-times), 1 KB, idle 8x8 "
              "torus\n");

  MulticastGroupSpec group;
  group.id = 0;
  group.members = {3, 9, 17, 22, 30, 41, 50, 61};
  const HostId src = 17;

  std::printf("\nmulticast to 8 members\n");
  std::printf("scheme,completion_latency\n");
  for (const Scheme s :
       {Scheme::kRepeatedUnicast, Scheme::kHamiltonianSF,
        Scheme::kHamiltonianCT, Scheme::kTreeSF, Scheme::kTreeBroadcast}) {
    std::printf("%s,%.0f\n", scheme_name(s), host_scheme_latency(s, group, src));
  }
  std::printf("switch-fabric-tree,%.0f\n", fabric_mcast_latency(group, src));

  std::printf("\nbroadcast to all 64 hosts\n");
  std::printf("scheme,completion_latency\n");
  MulticastGroupSpec everyone = make_full_group(64);
  for (const Scheme s : {Scheme::kRepeatedUnicast, Scheme::kTreeSF,
                         Scheme::kTreeBroadcast}) {
    std::printf("%s,%.0f\n", scheme_name(s),
                host_scheme_latency(s, everyone, src));
  }
  std::printf("switch-fabric-flood,%.0f\n", fabric_broadcast_latency(src));
  return 0;
}
