// Self-timed microbenchmarks of the simulator's hot paths: event queue
// operations (both queue kinds), up/down route computation (fresh and
// arena-reusing), multicast route encoding, and byte-level end-to-end
// channel throughput. Useful when tuning the engine; not part of the
// paper reproduction.
//
// Each benchmark body runs once as warm-up, then repeats until a minimum
// timed window has accumulated; the CSV/JSON report the mean ns per
// operation and the derived items/second. All columns are wall-derived,
// so the CI perf gate treats them as informational (see
// tools/perf_gate.py) — this bench exists for humans tuning the engine,
// and for the BENCH_micro_benchmarks.json trail it leaves behind.
#include <chrono>
#include <cstdio>
#include <functional>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "core/network.h"
#include "net/mcast_route_builder.h"
#include "net/topologies.h"
#include "sim/event_queue.h"
#include "sim/random.h"

using namespace wormcast;

namespace {

template <typename T>
inline void do_not_optimize(const T& value) {
  asm volatile("" : : "g"(&value) : "memory");
}

struct Micro {
  double ns_per_op = 0.0;
  double items_per_sec = 0.0;
};

/// Runs `body` (one "operation" of `items` items) until `min_ms` of wall
/// time has accumulated, after one discarded warm-up call.
template <typename F>
Micro run_micro(F&& body, std::int64_t items, double min_ms) {
  body();  // warm-up, untimed
  std::int64_t iters = 0;
  double total_ms = 0.0;
  while (total_ms < min_ms) {
    const auto t0 = std::chrono::steady_clock::now();
    body();
    const auto t1 = std::chrono::steady_clock::now();
    total_ms += std::chrono::duration<double, std::milli>(t1 - t0).count();
    ++iters;
  }
  Micro m;
  m.ns_per_op = total_ms * 1e6 / static_cast<double>(iters);
  m.items_per_sec =
      static_cast<double>(items) * static_cast<double>(iters) /
      (total_ms / 1000.0);
  return m;
}

void queue_schedule_dispatch(EventQueueKind kind) {
  EventQueue q(kind);
  int fired = 0;
  for (int i = 0; i < 1024; ++i)
    q.schedule(i % 97, [&fired] { ++fired; });
  while (!q.empty()) q.pop().action();
  do_not_optimize(fired);
}

void queue_cancel_heavy(EventQueueKind kind) {
  EventQueue q(kind);
  std::vector<EventHandle> handles;
  handles.reserve(1024);
  for (int i = 0; i < 1024; ++i) handles.push_back(q.schedule(i, [] {}));
  for (std::size_t i = 0; i < handles.size(); i += 2) q.cancel(handles[i]);
  while (!q.empty()) q.pop().action();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  const double min_ms = args.quick ? 20.0 : 200.0;

  std::printf("# Engine microbenchmarks (self-timed, window >= %.0f ms "
              "per benchmark)\n", min_ms);
  bench::print_header("benchmark", {"ns_per_op", "items_per_sec"});
  bench::JsonBench json("micro_benchmarks");

  struct Case {
    const char* name;
    std::function<void()> body;
    std::int64_t items;  // per operation, for the items/sec column
  };
  const Topology torus = make_torus(8, 8);
  const UpDownRouting routing(torus);
  UpDownOptions tree_opts;
  tree_opts.tree_links_only = true;
  const UpDownRouting tree_routing(torus, tree_opts);
  std::vector<HostId> dests;
  for (HostId h = 1; h < 64; h += 4) dests.push_back(h);
  const auto branches = build_mcast_branches(tree_routing, 0, dests);

  const std::vector<Case> cases = {
      {"event_queue_schedule_dispatch_calendar",
       [] { queue_schedule_dispatch(EventQueueKind::kCalendar); }, 1024},
      {"event_queue_schedule_dispatch_heap",
       [] { queue_schedule_dispatch(EventQueueKind::kHeap); }, 1024},
      {"event_queue_cancel_heavy_calendar",
       [] { queue_cancel_heavy(EventQueueKind::kCalendar); }, 1024},
      {"event_queue_cancel_heavy_heap",
       [] { queue_cancel_heavy(EventQueueKind::kHeap); }, 1024},
      {"updown_route_fresh",
       [&routing] {
         HostId src = 0, dst = 1;
         for (int i = 0; i < 256; ++i) {
           do_not_optimize(routing.route(src, dst));
           dst = static_cast<HostId>((dst + 7) % 64);
           if (dst == src) dst = static_cast<HostId>((dst + 1) % 64);
           src = static_cast<HostId>((src + 13) % 64);
           if (dst == src) src = static_cast<HostId>((src + 1) % 64);
         }
       },
       256},
      {"updown_route_into_reused",
       [&routing] {
         // The worm-arena path: route_into() copy-assigns into a recycled
         // SourceRoute, reusing its port-vector capacity.
         SourceRoute out;
         HostId src = 0, dst = 1;
         for (int i = 0; i < 256; ++i) {
           routing.route_into(src, dst, out);
           do_not_optimize(out);
           dst = static_cast<HostId>((dst + 7) % 64);
           if (dst == src) dst = static_cast<HostId>((dst + 1) % 64);
           src = static_cast<HostId>((src + 13) % 64);
           if (dst == src) src = static_cast<HostId>((src + 1) % 64);
         }
       },
       256},
      {"mcast_route_encode_split",
       [&branches] {
         const auto enc = EncodedMcastRoute::encode(branches);
         do_not_optimize(enc.split());
       },
       1},
      {"simulated_byte_throughput_16k",
       [] {
         // End-to-end cost of simulating one payload byte across the full
         // stack (network construction included; dominated by the run).
         ExperimentConfig cfg;
         cfg.protocol.scheme = Scheme::kHamiltonianSF;
         Network net(make_line(3), {}, cfg);
         Demand d;
         d.src = 0;
         d.dst = 2;
         d.length = 16 * 1024;
         net.inject(d);
         net.run_to_quiescence();
         do_not_optimize(net.metrics().messages_completed());
       },
       16 * 1024},
  };

  json.resize_rows(cases.size());
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const Micro m = run_micro(cases[i].body, cases[i].items, min_ms);
    std::printf("%s,%.1f,%.3g\n", cases[i].name, m.ns_per_op,
                m.items_per_sec);
    std::fflush(stdout);
    json.set_row(i, {{"ns_per_op", m.ns_per_op},
                     {"items_per_sec", m.items_per_sec}});
  }
  json.set_meta("min_ms", min_ms);
  json.write();
  return 0;
}
