# Empty dependencies file for wormcast_sim.
# This may be replaced when dependencies are built.
