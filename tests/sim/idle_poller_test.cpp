#include "sim/idle_poller.h"

#include <gtest/gtest.h>

#include <vector>

#include "myrinet_testbed.h"
#include "sim/simulator.h"

namespace wormcast {
namespace {

using Mode = IdlePoller::Mode;

// --- grid semantics on a bare simulator --------------------------------

TEST(IdlePoller, LegacyPollsEveryPeriodRegardlessOfBound) {
  Simulator sim;
  std::vector<Time> at;
  IdlePoller p(sim, 100, 50, Mode::kLegacy,
               [&] {
                 at.push_back(sim.now());
                 return kTimeNever;  // legacy ignores the bound
               },
               /*stop_at=*/300);
  p.start();
  sim.run();
  EXPECT_EQ(at, (std::vector<Time>{100, 150, 200, 250, 300}));
}

TEST(IdlePoller, FastForwardParksOnNeverAndWakeReArmsStrictlyAfter) {
  Simulator sim;
  std::vector<Time> at;
  IdlePoller p(sim, 100, 50, Mode::kFastForward,
               [&] {
                 at.push_back(sim.now());
                 return kTimeNever;
               },
               /*stop_at=*/1000);
  p.start();
  // An event at t=220 unblocks the condition: the first naive poll that
  // could observe the new state is the grid point strictly after 220.
  sim.at(220, [&] { p.wake(); });
  sim.run();
  EXPECT_EQ(at, (std::vector<Time>{100, 250}));
  EXPECT_TRUE(p.parked());
}

TEST(IdlePoller, WakeExactlyOnGridPointSkipsToNext) {
  Simulator sim;
  std::vector<Time> at;
  IdlePoller p(sim, 100, 50, Mode::kFastForward,
               [&] {
                 at.push_back(sim.now());
                 return kTimeNever;
               },
               /*stop_at=*/1000);
  p.start();
  // Waking AT a grid point must arm the NEXT one: a naive poll queued at
  // t=150 was inserted before the waking event and fired ahead of it,
  // still seeing the old state.
  sim.at(150, [&] { p.wake(); });
  sim.run();
  EXPECT_EQ(at, (std::vector<Time>{100, 200}));
}

TEST(IdlePoller, FastForwardJumpsToFirstGridPointAtOrAfterBound) {
  Simulator sim;
  std::vector<Time> at;
  IdlePoller p(sim, 100, 50, Mode::kFastForward,
               [&]() -> Time {
                 at.push_back(sim.now());
                 // Deadline at 430: first grid point >= 430 is 450 (a naive
                 // poll at exactly the deadline sees it as passed).
                 return sim.now() == 100 ? Time{430} : kTimeNever;
               },
               /*stop_at=*/1000);
  p.start();
  sim.run();
  EXPECT_EQ(at, (std::vector<Time>{100, 450}));
}

TEST(IdlePoller, BoundOnGridPointIsTakenExactly) {
  Simulator sim;
  std::vector<Time> at;
  IdlePoller p(sim, 100, 50, Mode::kFastForward,
               [&]() -> Time {
                 at.push_back(sim.now());
                 return sim.now() == 100 ? Time{400} : kTimeNever;
               },
               /*stop_at=*/1000);
  p.start();
  sim.run();
  EXPECT_EQ(at, (std::vector<Time>{100, 400}));
}

TEST(IdlePoller, StaleBoundMeansPollNextPeriod) {
  Simulator sim;
  std::vector<Time> at;
  IdlePoller p(sim, 100, 50, Mode::kFastForward,
               [&]() -> Time {
                 at.push_back(sim.now());
                 // A bound at or below now: condition was true but there may
                 // be more work; keep polling on the plain grid.
                 return at.size() < 3 ? sim.now() : kTimeNever;
               },
               /*stop_at=*/1000);
  p.start();
  sim.run();
  EXPECT_EQ(at, (std::vector<Time>{100, 150, 200}));
}

TEST(IdlePoller, WakeWhileArmedIsANoOp) {
  Simulator sim;
  std::vector<Time> at;
  IdlePoller p(sim, 100, 50, Mode::kFastForward,
               [&]() -> Time {
                 at.push_back(sim.now());
                 return sim.now() == 100 ? Time{300} : kTimeNever;
               },
               /*stop_at=*/1000);
  p.start();
  // The poller is armed for t=300 off a valid bound; a wake at 120 must
  // not add an extra poll or move the armed one.
  sim.at(120, [&] { p.wake(); });
  sim.run();
  EXPECT_EQ(at, (std::vector<Time>{100, 300}));
}

TEST(IdlePoller, StopAtBoundsBothArmsAndWakes) {
  Simulator sim;
  int polls = 0;
  IdlePoller p(sim, 100, 50, Mode::kFastForward,
               [&] {
                 ++polls;
                 return kTimeNever;
               },
               /*stop_at=*/120);
  p.start();
  sim.at(130, [&] { p.wake(); });  // next grid point 150 > stop_at: ignored
  sim.run();
  EXPECT_EQ(polls, 1);
  EXPECT_EQ(p.polls(), 1);
}

TEST(IdlePoller, StopCancelsPendingPoll) {
  Simulator sim;
  int polls = 0;
  IdlePoller p(sim, 100, 50, Mode::kLegacy, [&] {
    ++polls;
    return kTimeNever;
  });
  p.start();
  sim.at(160, [&] { p.stop(); });
  sim.run_until(500);
  EXPECT_EQ(polls, 2);  // 100 and 150; the 200 poll was cancelled
}

// --- observable equivalence on the full testbed ------------------------
//
// Fast-forward must change how fast the simulation runs, never what it
// computes: identical throughput, loss, wire bytes, and worm-pool traffic
// versus legacy polling — while actually skipping idle polls. Covers both
// application shapes: saturating (park-until-drain-wake) and rate-limited
// (deadline jumps).

bench::TestbedResult run_mode(bool fast_forward, Time inject_period) {
  bench::TestbedOptions opts;
  opts.senders = 8;
  opts.packet_size = 1024;
  opts.span = 300'000;
  opts.fast_forward = fast_forward;
  opts.inject_period = inject_period;
  return bench::run_testbed(opts);
}

void expect_same_physics(const bench::TestbedResult& a,
                         const bench::TestbedResult& b) {
  EXPECT_EQ(a.throughput_mbps, b.throughput_mbps);
  EXPECT_EQ(a.loss_rate, b.loss_rate);
  EXPECT_EQ(a.bytes_on_wire, b.bytes_on_wire);
  EXPECT_EQ(a.pool_fresh, b.pool_fresh);
  EXPECT_EQ(a.pool_reused, b.pool_reused);
}

TEST(IdlePollerEquivalence, SaturatingTestbedMatchesLegacy) {
  const auto legacy = run_mode(/*fast_forward=*/false, /*inject_period=*/0);
  const auto ff = run_mode(/*fast_forward=*/true, /*inject_period=*/0);
  expect_same_physics(legacy, ff);
  EXPECT_GT(legacy.bytes_on_wire, 0);
  // Fast-forward must have skipped at least some idle polls.
  EXPECT_LT(ff.app_polls, legacy.app_polls);
}

TEST(IdlePollerEquivalence, RateLimitedTestbedMatchesLegacy) {
  // Lightly loaded: one packet per 50k byte-times; the body parks on the
  // in-flight packet and deadline-jumps between sends.
  const auto legacy = run_mode(/*fast_forward=*/false, /*inject_period=*/50'000);
  const auto ff = run_mode(/*fast_forward=*/true, /*inject_period=*/50'000);
  expect_same_physics(legacy, ff);
  EXPECT_GT(legacy.bytes_on_wire, 0);
  // In the at-rest shape nearly every poll is idle: the reduction is large,
  // not marginal.
  EXPECT_LT(ff.app_polls * 10, legacy.app_polls);
}

}  // namespace
}  // namespace wormcast
