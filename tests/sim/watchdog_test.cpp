#include "sim/watchdog.h"

#include <gtest/gtest.h>

namespace wormcast {
namespace {

TEST(DeadlockWatchdog, DetectsStallWithOutstandingWork) {
  Simulator sim;
  std::int64_t outstanding = 1;
  bool alarmed = false;
  DeadlockWatchdog dog(
      sim, 100, [&] { return outstanding; }, [&] { alarmed = true; });
  dog.arm();
  // No progress ever happens.
  sim.run_until(1000);
  EXPECT_TRUE(dog.deadlock_detected());
  EXPECT_TRUE(alarmed);
  EXPECT_LE(dog.detection_time(), 200);
}

TEST(DeadlockWatchdog, QuiescenceIsNotDeadlock) {
  Simulator sim;
  bool alarmed = false;
  DeadlockWatchdog dog(
      sim, 100, [] { return 0; }, [&] { alarmed = true; });
  dog.arm();
  sim.run_until(1000);
  EXPECT_FALSE(dog.deadlock_detected());
  EXPECT_FALSE(alarmed);
}

TEST(DeadlockWatchdog, ProgressSuppressesAlarm) {
  Simulator sim;
  bool alarmed = false;
  DeadlockWatchdog dog(
      sim, 100, [] { return 5; }, [&] { alarmed = true; });
  dog.arm();
  // Keep making progress every 50 byte-times.
  for (Time t = 50; t <= 2000; t += 50)
    sim.at(t, [&sim] { sim.note_progress(); });
  sim.run_until(2000);
  EXPECT_FALSE(dog.deadlock_detected());
  EXPECT_FALSE(alarmed);
}

TEST(DeadlockWatchdog, CapturesDiagnosticsAtDetection) {
  Simulator sim;
  int dumps = 0;
  DeadlockWatchdog dog(
      sim, 100, [] { return 1; }, [] {});
  dog.set_diagnostics([&] {
    ++dumps;
    return std::string("host 0: tasks=1 pool_used=64\n");
  });
  dog.arm();
  sim.run_until(1000);
  ASSERT_TRUE(dog.deadlock_detected());
  EXPECT_EQ(dumps, 1) << "diagnostics must run exactly once, at detection";
  EXPECT_EQ(dog.report(), "host 0: tasks=1 pool_used=64\n");
}

TEST(DeadlockWatchdog, ReportIncludesTraceTailWhenTracerArmed) {
  Simulator sim;
  sim.tracer().enable(64);
  sim.at(40, [&sim] {
    WORMTRACE(sim, kArbGrant, 2, 1, 7, 0);
    (void)sim;  // WORMTRACE compiles out under WORMCAST_TRACE=OFF
  });
  DeadlockWatchdog dog(
      sim, 100, [] { return 1; }, [] {});
  dog.set_diagnostics([] { return std::string("host state\n"); });
  dog.arm();
  sim.run_until(1000);
  ASSERT_TRUE(dog.deadlock_detected());
  EXPECT_NE(dog.report().find("host state"), std::string::npos);
#ifndef WORMCAST_TRACE_DISABLED
  // The flight-recorder tail rides along with the state dump.
  EXPECT_NE(dog.report().find("trace tail (last 1 of 1 recorded):"),
            std::string::npos);
  EXPECT_NE(dog.report().find("arb.grant worm=7"), std::string::npos);
#endif
}

TEST(DeadlockWatchdog, NoDiagnosticsWithoutStall) {
  Simulator sim;
  int dumps = 0;
  DeadlockWatchdog dog(
      sim, 100, [] { return 0; }, [] {});
  dog.set_diagnostics([&] {
    ++dumps;
    return std::string("unused");
  });
  dog.arm();
  sim.run_until(1000);
  EXPECT_EQ(dumps, 0);
  EXPECT_TRUE(dog.report().empty());
}

TEST(DeadlockWatchdog, DetectsStallAfterProgressStops) {
  Simulator sim;
  bool alarmed = false;
  DeadlockWatchdog dog(
      sim, 100, [] { return 1; }, [&] { alarmed = true; });
  dog.arm();
  for (Time t = 10; t <= 500; t += 10)
    sim.at(t, [&sim] { sim.note_progress(); });
  sim.run_until(5000);
  EXPECT_TRUE(alarmed);
  EXPECT_GE(dog.detection_time(), 500);
  EXPECT_LE(dog.detection_time(), 800);
}

}  // namespace
}  // namespace wormcast
