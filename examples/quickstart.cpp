// Quickstart: build a wormhole LAN, form a multicast group, and compare
// the paper's delivery schemes on a single message and under load.
//
//   $ ./quickstart
//
// Walks through the public API: topology generators, ExperimentConfig,
// direct injection, traffic-driven runs, and the metrics summary.
#include <cstdio>

#include "core/network.h"
#include "net/topologies.h"
#include "traffic/groups.h"

using namespace wormcast;

namespace {

void one_message_demo(Scheme scheme) {
  // A 4x4 torus of switches, one host per switch — a small machine-room
  // Myrinet. One multicast group of six members.
  MulticastGroupSpec group;
  group.id = 0;
  group.members = {1, 3, 6, 9, 12, 15};

  ExperimentConfig cfg;
  cfg.protocol.scheme = scheme;

  Network net(make_torus(4, 4), {group}, cfg);

  // Host 6 multicasts 1 KB to the group.
  Demand d;
  d.src = 6;
  d.multicast = true;
  d.group = 0;
  d.length = 1024;
  net.inject(d);
  net.run_to_quiescence();

  std::printf("  %-18s per-destination latency: mean %6.0f bt, max %6.0f bt, "
              "completion %6.0f bt\n",
              scheme_name(scheme), net.metrics().mcast_latency().mean(),
              net.metrics().mcast_latency().stat().max(),
              net.metrics().mcast_completion().mean());
}

void loaded_demo(Scheme scheme) {
  RandomStream rng(7);
  auto groups = make_random_groups(4, 6, 16, rng);
  ExperimentConfig cfg;
  cfg.protocol.scheme = scheme;
  cfg.traffic.offered_load = 0.05;
  cfg.traffic.multicast_fraction = 0.15;
  Network net(make_torus(4, 4), groups, cfg);
  net.run(/*warmup=*/20'000, /*measure=*/150'000);
  const auto s = net.summary();
  std::printf("  %-18s util %.3f  mcast %6.0f bt  unicast %5.0f bt  "
              "nacks %lld  outstanding %lld\n",
              scheme_name(scheme), s.measured_utilization,
              s.mcast_latency_mean, s.unicast_latency_mean,
              static_cast<long long>(s.nacks),
              static_cast<long long>(s.outstanding));
}

}  // namespace

int main() {
  std::printf("wormcast quickstart\n");
  std::printf("===================\n\n");
  std::printf("One 1 KB multicast to 6 members on an idle 4x4 torus "
              "(latency in byte-times; 1 bt = 12.5 ns at 640 Mb/s):\n");
  for (const Scheme s :
       {Scheme::kRepeatedUnicast, Scheme::kHamiltonianSF,
        Scheme::kHamiltonianCT, Scheme::kTreeSF, Scheme::kTreeBroadcast,
        Scheme::kCentralizedCredit})
    one_message_demo(s);

  std::printf("\nUnder Poisson load (offered 0.05, 15%% multicast):\n");
  for (const Scheme s : {Scheme::kRepeatedUnicast, Scheme::kHamiltonianSF,
                         Scheme::kHamiltonianCT, Scheme::kTreeBroadcast})
    loaded_demo(s);

  std::printf("\nSwitch-level broadcast (fabric replication through the "
              "up/down tree):\n");
  {
    ExperimentConfig cfg;
    cfg.routing.tree_links_only = true;
    Network net(make_torus(4, 4), {}, cfg);
    net.send_switch_broadcast(/*src=*/5, /*payload=*/1024);
    net.run_to_quiescence();
    std::printf("  broadcast to %d hosts: mean latency %.0f bt\n",
                net.num_hosts() - 1, net.metrics().mcast_latency().mean());
  }
  return 0;
}
