// Pluggable tree strategies: plan invariants every strategy must satisfy
// (partition cover, branch-walk destination sets, up/down legality,
// cache invalidation on link death), strategy-specific structure, and the
// network's multicast admission gate — overlapping trees serialize FIFO,
// node-disjoint trees dispatch concurrently, and the scheme (b) burst that
// used to deadlock without the gate drains to zero outstanding.
#include "net/tree_strategy.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "core/network.h"
#include "net/topologies.h"
#include "net/tree_strategy_impl.h"
#include "sim/random.h"

namespace wormcast {
namespace {

Topology make_topo(int which) {
  RandomStream rng(4242);
  switch (which) {
    case 0: return make_torus(4, 4);
    case 1: return make_bidir_shufflenet(2, 3);
    default: return make_random_mesh(12, 3.0, rng);
  }
}

TreeStrategyConfig make_cfg(TreeStrategyKind kind) {
  TreeStrategyConfig cfg;
  cfg.kind = kind;
  cfg.max_worms = 3;
  cfg.candidate_roots = 3;
  return cfg;
}

/// Walks one branch tree from `at`, collecting every node it touches and
/// every destination host it terminates at, and checking the up/down rule
/// (never up after down) along each root-to-leaf path under `r`.
void walk_branch(const Topology& t, const UpDownRouting& r, NodeId at,
                 const McastRouteTree& tree, bool gone_down,
                 std::set<NodeId>* nodes, std::multiset<HostId>* hosts) {
  const LinkId l = t.link_at(at, tree.port);
  const NodeId next = t.neighbor_via(at, tree.port);
  nodes->insert(next);
  if (t.node(next).kind == NodeKind::kHost) {
    EXPECT_TRUE(tree.children.empty()) << "host leaf with children";
    hosts->insert(t.node(next).host);
    return;
  }
  const bool up = r.is_up_traversal(l, at);
  EXPECT_FALSE(up && gone_down) << "up traversal after down in branch";
  for (const McastRouteTree& child : tree.children)
    walk_branch(t, r, next, child, gone_down || !up, nodes, hosts);
}

class TreeStrategyPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TreeStrategyPropertyTest, PlansCoverLegallyAndDisjointly) {
  const auto kind = static_cast<TreeStrategyKind>(std::get<0>(GetParam()));
  const Topology topo = make_topo(std::get<1>(GetParam()));
  const UpDownRouting base(topo);
  const auto strategy =
      make_tree_strategy(make_cfg(kind), topo, base, UpDownOptions());

  // Every 2nd host is a member; plan from three different sources.
  std::vector<HostId> members;
  for (HostId h = 0; h < topo.num_hosts(); h += 2) members.push_back(h);
  const GroupId g = 0;
  strategy->plan_group(g, members);

  for (const HostId src : {members[0], members[1], members.back()}) {
    const McastPlan plan = strategy->plan_multicast(g, src, members);
    ASSERT_FALSE(plan.partitions.empty());
    const UpDownRouting& r = strategy->group_routing(g);
    std::multiset<HostId> reached;
    for (const McastPartition& part : plan.partitions) {
      std::set<NodeId> nodes;
      std::multiset<HostId> part_hosts;
      for (const McastRouteTree& br : part.branches)
        walk_branch(topo, r, topo.switch_of_host(src), br, false, &nodes,
                    &part_hosts);
      // The partition's branches terminate at exactly its stated dests.
      const std::multiset<HostId> stated(part.dests.begin(), part.dests.end());
      EXPECT_EQ(part_hosts, stated);
      reached.insert(part_hosts.begin(), part_hosts.end());
    }
    // Partitions are host-disjoint and together cover members \ {src}.
    std::multiset<HostId> want;
    for (const HostId h : members)
      if (h != src) want.insert(h);
    EXPECT_EQ(reached, want) << "strategy " << strategy->name();
  }
}

TEST_P(TreeStrategyPropertyTest, LinkDeathInvalidatesCachedPlans) {
  const auto kind = static_cast<TreeStrategyKind>(std::get<0>(GetParam()));
  const Topology topo = make_topo(std::get<1>(GetParam()));
  UpDownRouting base(topo);
  const auto strategy =
      make_tree_strategy(make_cfg(kind), topo, base, UpDownOptions());

  std::vector<HostId> members;
  for (HostId h = 0; h < topo.num_hosts(); h += 3) members.push_back(h);
  const GroupId g = 0;
  strategy->plan_group(g, members);
  const HostId src = members[0];
  const McastPlan before = strategy->plan_multicast(g, src, members);

  // Fail a switch-to-switch link the old plan used (if it only used host
  // links the topology is a star and there is nothing to invalidate).
  LinkId victim = kNoLink;
  std::set<NodeId> nodes;
  std::multiset<HostId> hosts;
  for (const McastPartition& part : before.partitions)
    for (const McastRouteTree& br : part.branches)
      walk_branch(topo, strategy->group_routing(g), topo.switch_of_host(src),
                  br, false, &nodes, &hosts);
  for (LinkId l = 0; l < topo.num_links() && victim == kNoLink; ++l) {
    const TopoLink& tl = topo.link(l);
    if (topo.node(tl.node_a).kind != NodeKind::kSwitch ||
        topo.node(tl.node_b).kind != NodeKind::kSwitch)
      continue;
    if (nodes.count(tl.node_a) > 0 && nodes.count(tl.node_b) > 0)
      victim = l;
  }
  if (victim == kNoLink) GTEST_SKIP() << "plan uses no switch-switch link";

  base.fail_link(victim);
  strategy->fail_link(victim);
  strategy->plan_group(g, members);  // as Network does after repair
  const McastPlan after = strategy->plan_multicast(g, src, members);

  // The new plan is complete, legal, and never crosses the dead link.
  std::multiset<HostId> reached;
  for (const McastPartition& part : after.partitions) {
    std::set<NodeId> n2;
    std::multiset<HostId> h2;
    for (const McastRouteTree& br : part.branches)
      walk_branch(topo, strategy->group_routing(g), topo.switch_of_host(src),
                  br, false, &n2, &h2);
    reached.insert(h2.begin(), h2.end());
    std::function<void(NodeId, const McastRouteTree&)> no_dead =
        [&](NodeId at, const McastRouteTree& tr) {
          EXPECT_NE(topo.link_at(at, tr.port), victim) << "plan uses dead link";
          const NodeId next = topo.neighbor_via(at, tr.port);
          for (const McastRouteTree& c : tr.children) no_dead(next, c);
        };
    for (const McastRouteTree& br : part.branches)
      no_dead(topo.switch_of_host(src), br);
  }
  std::multiset<HostId> want;
  for (const HostId h : members)
    if (h != src) want.insert(h);
  EXPECT_EQ(reached, want);
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategiesAllTopologies, TreeStrategyPropertyTest,
    ::testing::Combine(::testing::Range(0, kNumTreeStrategies),
                       ::testing::Range(0, 3)));

TEST(TreeStrategyStructure, SingleRootEmitsOneOnTreeWorm) {
  const Topology topo = make_torus(4, 4);
  const UpDownRouting base(topo);
  const auto s = make_tree_strategy(make_cfg(TreeStrategyKind::kSingleRoot),
                                    topo, base, UpDownOptions());
  const std::vector<HostId> members{0, 3, 7, 11, 14};
  const McastPlan plan = s->plan_multicast(0, 0, members);
  ASSERT_EQ(plan.partitions.size(), 1u);
  EXPECT_EQ(s->plan_orientation(0), 0);
  // Every traversed link lies on the strategy routing's spanning tree.
  const UpDownRouting& r = s->group_routing(0);
  std::function<void(NodeId, const McastRouteTree&)> on_tree =
      [&](NodeId at, const McastRouteTree& tr) {
        EXPECT_TRUE(r.on_tree(topo.link_at(at, tr.port)));
        const NodeId next = topo.neighbor_via(at, tr.port);
        for (const McastRouteTree& c : tr.children) on_tree(next, c);
      };
  for (const McastRouteTree& br : plan.partitions[0].branches)
    on_tree(topo.switch_of_host(0), br);
}

TEST(TreeStrategyStructure, PartitionMergeHonoursWormBudget) {
  const Topology topo = make_torus(4, 4);
  const UpDownRouting base(topo);
  TreeStrategyConfig cfg = make_cfg(TreeStrategyKind::kPartitionMerge);
  cfg.max_worms = 2;
  const auto s = make_tree_strategy(cfg, topo, base, UpDownOptions());
  std::vector<HostId> members;
  for (HostId h = 0; h < topo.num_hosts(); ++h) members.push_back(h);
  const McastPlan plan = s->plan_multicast(0, 0, members);
  EXPECT_LE(plan.partitions.size(), 2u);
  EXPECT_GE(plan.partitions.size(), 1u);
}

TEST(TreeStrategyStructure, MultiRootAssignsDepthMinimizingCandidate) {
  const Topology topo = make_torus(4, 4);
  const UpDownRouting base(topo);
  TreeStrategyConfig cfg = make_cfg(TreeStrategyKind::kMultiRoot);
  const auto s = make_tree_strategy(cfg, topo, base, UpDownOptions());
  auto* mr = dynamic_cast<detail::MultiRootStrategy*>(s.get());
  ASSERT_NE(mr, nullptr);
  ASSERT_EQ(mr->candidate_roots().size(), 3u);
  // Candidate 0 is the base root, shared with every single-root strategy.
  EXPECT_EQ(mr->candidate_roots()[0], base.root());
  const std::vector<HostId> members{1, 2, 5, 6};
  mr->plan_group(7, members);
  const std::size_t pick = mr->assignment(7);
  EXPECT_EQ(mr->plan_orientation(7), static_cast<int>(pick));
  EXPECT_EQ(mr->group_routing(7).root(), mr->candidate_roots()[pick]);
  // Unknown groups ride candidate 0.
  EXPECT_EQ(mr->assignment(99), 0u);
}

ExperimentConfig gate_cfg(TreeStrategyKind kind) {
  ExperimentConfig cfg;
  cfg.switch_mcast.scheme = SwitchMcastScheme::kInterrupt;
  cfg.tree.kind = kind;
  return cfg;
}

TEST(McastAdmissionGate, DisjointTreesDispatchConcurrently) {
  // Line of 4 switches, root = sw1: the {h0,h1} tree and the {h2,h3} tree
  // share no node, so both dispatch immediately; a {h1,h2} multicast
  // overlaps both and must queue until they close.
  std::vector<MulticastGroupSpec> groups(3);
  groups[0].id = 0, groups[0].members = {0, 1};
  groups[1].id = 1, groups[1].members = {2, 3};
  groups[2].id = 2, groups[2].members = {1, 2};
  Network net(make_line(4), groups, gate_cfg(TreeStrategyKind::kSingleRoot));
  auto a = net.send_switch_multicast(0, 0, 500);
  auto b = net.send_switch_multicast(2, 1, 500);
  EXPECT_EQ(net.mcast_gate_depth(), 0u) << "disjoint trees must not queue";
  auto c = net.send_switch_multicast(1, 2, 500);
  EXPECT_EQ(net.mcast_gate_depth(), 1u) << "overlapping tree must queue";
  net.run_to_quiescence();
  EXPECT_EQ(net.mcast_gate_depth(), 0u);
  EXPECT_EQ(a->destinations_reached, 1);
  EXPECT_EQ(b->destinations_reached, 1);
  EXPECT_EQ(c->destinations_reached, 1);
  EXPECT_EQ(net.metrics().outstanding(), 0);
}

TEST(McastAdmissionGate, OverlappingSendsSerializeAndAllComplete) {
  // Same group from three members: every tree contains the root, so the
  // gate degenerates to the paper's full scheme (b) serialization.
  MulticastGroupSpec group;
  group.id = 0;
  group.members = {0, 3, 5, 8};
  Network net(make_torus(3, 3), {group}, gate_cfg(TreeStrategyKind::kSingleRoot));
  auto a = net.send_switch_multicast(0, 0, 400);
  auto b = net.send_switch_multicast(3, 0, 400);
  auto c = net.send_switch_multicast(5, 0, 400);
  EXPECT_EQ(net.mcast_gate_depth(), 2u);
  net.run_to_quiescence();
  for (const auto& ctx : {a, b, c}) EXPECT_EQ(ctx->destinations_reached, 3);
  EXPECT_EQ(net.metrics().outstanding(), 0);
  EXPECT_EQ(net.mcast_gate_depth(), 0u);
}

class GateStrategyTest : public ::testing::TestWithParam<int> {};

TEST_P(GateStrategyTest, ConcurrentBurstDrainsUnderInterruptScheme) {
  // Regression for the scheme (b) port-claim/backpressure deadlock: a
  // burst of overlapping multicasts from many sources used to wedge in
  // claim_pending <-> tx_stopped cycles before the admission gate.
  const auto kind = static_cast<TreeStrategyKind>(GetParam());
  std::vector<MulticastGroupSpec> groups(4);
  for (int g = 0; g < 4; ++g) {
    groups[static_cast<std::size_t>(g)].id = g;
    for (int k = 0; k < 8; ++k)
      groups[static_cast<std::size_t>(g)].members.push_back(
          static_cast<HostId>((g * 3 + k * 2) % 16));
  }
  Network net(make_torus(4, 4), groups, gate_cfg(kind));
  std::vector<std::shared_ptr<MessageContext>> ctxs;
  for (int g = 0; g < 4; ++g)
    for (int s = 0; s < 3; ++s)
      ctxs.push_back(net.send_switch_multicast(
          groups[static_cast<std::size_t>(g)].members[static_cast<std::size_t>(s)],
          g, 600));
  net.run_to_quiescence();
  EXPECT_EQ(net.metrics().outstanding(), 0);
  EXPECT_EQ(net.mcast_gate_depth(), 0u);
  for (const auto& ctx : ctxs)
    EXPECT_EQ(ctx->destinations_reached, ctx->destinations_total);
}

TEST_P(GateStrategyTest, SurvivesMemberDeathAndRootMigration) {
  const auto kind = static_cast<TreeStrategyKind>(GetParam());
  MulticastGroupSpec group;
  group.id = 0;
  group.members = {0, 2, 5, 7, 10, 13};
  Network net(make_torus(4, 4), {group}, gate_cfg(kind));
  auto first = net.send_switch_multicast(0, 0, 300);
  net.run_to_quiescence();
  EXPECT_EQ(first->destinations_reached, 5);

  net.declare_host_dead(7);
  auto second = net.send_switch_multicast(2, 0, 300);
  net.run_to_quiescence();
  EXPECT_EQ(second->destinations_reached, 4) << "dead member still targeted";

  // Migrate the root and multicast again: strategies must follow the new
  // orientation without stale cached plans.
  const NodeId new_root = net.topology().switch_of_host(13);
  net.migrate_root(new_root, net.sim().now() + 10);
  net.run_until(net.sim().now() + 50'000);
  auto third = net.send_switch_multicast(5, 0, 300);
  net.run_to_quiescence();
  EXPECT_EQ(third->destinations_reached, 4);
  EXPECT_EQ(net.metrics().outstanding(), 0);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, GateStrategyTest,
                         ::testing::Range(0, kNumTreeStrategies));

TEST(TreeStrategyConfigTest, NamesRoundTripAndParse) {
  for (int k = 0; k < kNumTreeStrategies; ++k) {
    const auto kind = static_cast<TreeStrategyKind>(k);
    TreeStrategyKind parsed;
    ASSERT_TRUE(parse_tree_strategy(tree_strategy_name(kind), &parsed));
    EXPECT_EQ(parsed, kind);
  }
  TreeStrategyKind out;
  EXPECT_FALSE(parse_tree_strategy("no-such-strategy", &out));
}

TEST(TreeStrategyConfigTest, PerGroupOverridesDispatch) {
  const Topology topo = make_torus(4, 4);
  const UpDownRouting base(topo);
  TreeStrategyConfig cfg = make_cfg(TreeStrategyKind::kSingleRoot);
  cfg.per_group.emplace_back(1, TreeStrategyKind::kPartitionMerge);
  const auto s = make_tree_strategy(cfg, topo, base, UpDownOptions());
  std::vector<HostId> members;
  for (HostId h = 0; h < 16; ++h) members.push_back(h);
  s->plan_group(0, members);
  s->plan_group(1, members);
  // Group 0 rides the default single worm; group 1 may split.
  EXPECT_EQ(s->plan_multicast(0, 0, members).partitions.size(), 1u);
  EXPECT_GE(s->plan_multicast(1, 0, members).partitions.size(), 1u);
  EXPECT_LE(s->plan_multicast(1, 0, members).partitions.size(), 3u);
}

}  // namespace
}  // namespace wormcast
