file(REMOVE_RECURSE
  "CMakeFiles/end_to_end_test.dir/core/end_to_end_test.cpp.o"
  "CMakeFiles/end_to_end_test.dir/core/end_to_end_test.cpp.o.d"
  "end_to_end_test"
  "end_to_end_test.pdb"
  "end_to_end_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/end_to_end_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
