// Host-adapter multicast buffer pool with deadlock-prevention classes.
//
// Section 4 of the paper: each adapter's forwarding memory (LANai SRAM,
// optionally extended into a host DMA buffer as in [VLB96]) is divided into
// two classes. A multicast worm reserves class 0 space while it propagates
// from lower to higher host IDs and class 1 space after the single ID-order
// reversal (Hamiltonian wrap-around; tree descent after the climb to the
// root). Requests then always point to a higher host ID or a higher buffer
// class, so reservation waits cannot form a cycle (Figure 7).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace wormcast {

class BufferPool {
 public:
  /// Strictly partitions `total_bytes` across `n_classes` classes.
  BufferPool(std::int64_t total_bytes, int n_classes);

  /// Unpartitioned pool (reservation classes disabled — the ablation
  /// configuration); every class maps onto one shared region.
  static BufferPool unpartitioned(std::int64_t total_bytes);

  [[nodiscard]] int n_classes() const { return static_cast<int>(capacity_.size()); }
  [[nodiscard]] std::int64_t capacity(int cls) const { return capacity_[index(cls)]; }
  [[nodiscard]] std::int64_t used(int cls) const { return used_[index(cls)]; }
  [[nodiscard]] std::int64_t free_in(int cls) const {
    return capacity_[index(cls)] - used_[index(cls)];
  }

  /// Reserves `bytes` in `cls`; false (and no change) if it does not fit.
  [[nodiscard]] bool try_reserve(int cls, std::int64_t bytes);
  void release(int cls, std::int64_t bytes);

  [[nodiscard]] std::int64_t total_used() const;

 private:
  explicit BufferPool(std::int64_t total_bytes);  // unpartitioned

  [[nodiscard]] std::size_t index(int cls) const {
    if (shared_) return 0;
    if (cls < 0 || cls >= n_classes())
      throw std::out_of_range("buffer class out of range");
    return static_cast<std::size_t>(cls);
  }

  bool shared_ = false;
  std::vector<std::int64_t> capacity_;
  std::vector<std::int64_t> used_;
};

}  // namespace wormcast
