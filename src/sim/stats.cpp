#include "sim/stats.h"

#include <cassert>
#include <cmath>

namespace wormcast {

void RunningStat::add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void RunningStat::merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double SampleSet::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  // Clamp rather than assert: an out-of-range p (a sweep knob gone wrong,
  // NDEBUG consumers) must not index past the sample vector.
  p = std::clamp(p, 0.0, 100.0);
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo =
      std::min(static_cast<std::size_t>(rank), samples_.size() - 1);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

}  // namespace wormcast
