// Per-group multicast structures (Sections 5 and 6).
//
// Hamiltonian circuit: members ordered by increasing host ID; the multicast
// propagates low-to-high with a single wrap-around (the one ID-order
// reversal the two-buffer-class rule allows).
//
// Rooted tree: the root is the lowest-ID member and every child has a
// higher ID than its parent. We build the cheapest such tree greedily:
// members are inserted in increasing ID order and each attaches to the
// already-inserted member with the smallest unicast hop count (ties to the
// lowest ID; fanout capped), so the parent always carries a lower ID.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "net/tree_strategy.h"
#include "net/updown.h"
#include "sim/types.h"
#include "traffic/groups.h"

namespace wormcast {

/// Hamiltonian circuit over one group's members.
class CircuitTable {
 public:
  CircuitTable() = default;
  explicit CircuitTable(std::vector<HostId> members);  // any order; sorted

  [[nodiscard]] const std::vector<HostId>& order() const { return order_; }
  [[nodiscard]] int size() const { return static_cast<int>(order_.size()); }
  [[nodiscard]] HostId lowest() const { return order_.front(); }
  [[nodiscard]] HostId highest() const { return order_.back(); }
  [[nodiscard]] bool contains(HostId h) const;
  /// Successor on the circuit (wraps highest -> lowest).
  [[nodiscard]] HostId next(HostId h) const;
  /// Total unicast hop count around the circuit (Figure 8's cost metric).
  [[nodiscard]] int circuit_hop_length(const UpDownRouting& routing) const;

  /// Splices a dead member out: its predecessor re-links directly to its
  /// successor. Because the circuit is the sorted member list, erasing one
  /// element preserves ascending-ID order with the single wrap reversal, so
  /// the two-buffer-class rule of Section 5 keeps holding on the repaired
  /// circuit. Returns false if `h` was not a member.
  bool remove(HostId h);

  /// Splices a joining member in at its sorted position (the inverse of
  /// remove: ascending-ID order, and hence the single wrap reversal, is
  /// preserved by construction). Returns the joiner's new predecessor —
  /// the member whose successor changed — or kNoHost if `h` was already
  /// a member.
  HostId insert(HostId h);

  /// The first member with an ID above `h`, wrapping to the lowest.
  /// Unlike next(), `h` need not be a member: an ex-member still relaying
  /// in-flight traffic after its voluntary leave uses this to keep the
  /// chain alive when its downstream stop departs too.
  [[nodiscard]] HostId successor_of(HostId h) const;

  /// Estimated resident bytes (memory audit).
  [[nodiscard]] std::size_t heap_bytes_estimate() const {
    return order_.capacity() * sizeof(HostId);
  }

 private:
  std::vector<HostId> order_;  // ascending IDs
};

/// Rooted multicast tree over one group's members (Figure 9).
class TreeTable {
 public:
  /// Cost of attaching `child` (second argument) under `parent` (first);
  /// the greedy construction minimizes it per insertion. The plain metric
  /// is the unicast hop count; tree strategies substitute their own (e.g.
  /// load-penalized) metric via GroupTables.
  using EdgeCost = std::function<int(HostId, HostId)>;

  TreeTable() = default;
  /// Builds the ID-ordered greedy tree. `max_fanout` caps children per
  /// node (0 = unlimited).
  TreeTable(std::vector<HostId> members, const EdgeCost& cost,
            int max_fanout = 0);
  /// Convenience: edge cost = `routing`'s unicast hop count.
  TreeTable(std::vector<HostId> members, const UpDownRouting& routing,
            int max_fanout = 0);

  [[nodiscard]] HostId root() const { return root_; }
  [[nodiscard]] int size() const { return static_cast<int>(members_.size()); }
  [[nodiscard]] const std::vector<HostId>& members() const { return members_; }
  [[nodiscard]] bool contains(HostId h) const;
  /// kNoHost for the root.
  [[nodiscard]] HostId parent(HostId h) const;
  /// Ascending-ID children list.
  [[nodiscard]] const std::vector<HostId>& children(HostId h) const;
  /// Depth of the tree (root = 0).
  [[nodiscard]] int depth() const;

  struct RemovalResult {
    bool removed = false;
    bool root_promoted = false;
    int subtrees_reparented = 0;
    /// Each orphaned subtree root and the surviving member that adopted it.
    std::vector<std::pair<HostId, HostId>> reattached;  // (orphan, parent)
  };
  /// Removes a dead member in place. Its orphaned children (whole subtrees)
  /// re-attach greedily to the surviving member with a lower ID, spare
  /// fanout and the smallest hop count (cap relaxed if every candidate is
  /// full), so the parent-ID < child-ID invariant survives repair. If the
  /// root died, the lowest surviving ID — necessarily one of the root's own
  /// children — is promoted in place.
  RemovalResult remove_member(HostId h, const EdgeCost& cost, int max_fanout);
  RemovalResult remove_member(HostId h, const UpDownRouting& routing,
                              int max_fanout);

  struct AddResult {
    bool added = false;
    /// The joiner's ID undercut the old root's: it was adopted as the new
    /// root with the old root as its only child (the one shape that keeps
    /// parent-ID < child-ID without re-parenting anyone else).
    bool became_root = false;
    HostId parent = kNoHost;  // the joiner's parent (kNoHost when root)
  };
  /// Attaches a joining member in place using the construction rule: greedy
  /// min-hop parent among lower-ID members with fanout slack (cap relaxed
  /// only when every candidate is full). A joiner below the current root
  /// becomes the new root instead. No existing edge moves either way.
  AddResult add_member(HostId h, const EdgeCost& cost, int max_fanout);
  AddResult add_member(HostId h, const UpDownRouting& routing, int max_fanout);

  /// Estimated resident bytes (memory audit): member list plus the
  /// parent/children maps, using the usual ~32-byte hash-node overhead.
  [[nodiscard]] std::size_t heap_bytes_estimate() const {
    std::size_t bytes = members_.capacity() * sizeof(HostId) +
                        parent_.size() * (sizeof(std::pair<HostId, HostId>) + 32) +
                        parent_.bucket_count() * sizeof(void*) +
                        children_.bucket_count() * sizeof(void*);
    for (const auto& [h, kids] : children_)
      bytes += sizeof(std::pair<HostId, std::vector<HostId>>) + 32 +
               kids.capacity() * sizeof(HostId);
    return bytes;
  }

 private:
  HostId root_ = kNoHost;
  std::vector<HostId> members_;  // ascending
  std::unordered_map<HostId, HostId> parent_;
  std::unordered_map<HostId, std::vector<HostId>> children_;
};

/// All groups' circuits and trees, built once per experiment and repaired
/// in place when the failure detector declares a member dead.
class GroupTables {
 public:
  /// `strategy`, when given, supplies the per-group tree attach-cost metric
  /// (TreeStrategy::attach_cost); it must outlive the tables. Without one,
  /// the metric is `routing`'s unicast hop count (the paper's rule).
  GroupTables(const std::vector<MulticastGroupSpec>& specs,
              const UpDownRouting& routing, int max_tree_fanout = 0,
              const TreeStrategy* strategy = nullptr);

  [[nodiscard]] const CircuitTable& circuit(GroupId g) const;
  [[nodiscard]] const TreeTable& tree(GroupId g) const;
  [[nodiscard]] bool is_member(GroupId g, HostId h) const;
  [[nodiscard]] int group_size(GroupId g) const;

  [[nodiscard]] std::vector<GroupId> groups_containing(HostId h) const;

  /// One orphaned subtree adopted during a repair: protocols use this to
  /// know which *new* children need copies of in-flight messages (and only
  /// those — a child missing from a task's sends usually means the message
  /// arrived *from* it).
  struct Reattachment {
    GroupId group = kNoGroup;
    HostId orphan = kNoHost;
    HostId new_parent = kNoHost;
  };

  struct RepairStats {
    int circuits_spliced = 0;
    int subtrees_reparented = 0;
    int roots_promoted = 0;
    std::vector<Reattachment> reattachments;
  };
  /// Splices `h` out of every circuit and tree it belongs to. Groups where
  /// `h` is the sole member are left intact (nothing to repair; no sender
  /// survives to use them). Every protocol instance shares these tables by
  /// reference, so one call heals the whole network.
  RepairStats remove_member(HostId h);

  /// Splices `h` out of one group only — the voluntary-leave path. Same
  /// in-place circuit splice and orphan re-adoption as a failure repair,
  /// but scoped to `g` (a leave is per-group; a crash is per-host). A
  /// sole-member group is left intact, like remove_member.
  RepairStats remove_member_from(GroupId g, HostId h);

  struct JoinResult {
    bool joined = false;       // false: already a member (idempotent no-op)
    bool became_root = false;  // tree adopted the joiner as its new root
    HostId tree_parent = kNoHost;
    HostId circuit_pred = kNoHost;  // member whose circuit successor changed
  };
  /// Splices `h` into group `g`'s circuit (sorted position) and tree
  /// (greedy attach, or new-root adoption when `h` undercuts the root).
  /// Incremental: no other member's circuit successor or tree parent
  /// changes, except the old root gaining a parent on adoption.
  JoinResult add_member(GroupId g, HostId h);

 private:
  /// The attach-cost metric for group `g` (strategy-supplied or plain hop
  /// count). The returned callable borrows `this`: use-and-drop only.
  [[nodiscard]] TreeTable::EdgeCost edge_cost(GroupId g) const;

  const UpDownRouting& routing_;
  int max_tree_fanout_ = 0;
  const TreeStrategy* strategy_ = nullptr;
  std::unordered_map<GroupId, CircuitTable> circuits_;
  std::unordered_map<GroupId, TreeTable> trees_;

 public:
  /// Estimated resident bytes across every group's circuit and tree
  /// (memory audit, mem_tables_bytes).
  [[nodiscard]] std::size_t heap_bytes_estimate() const {
    std::size_t bytes = sizeof(GroupTables) +
                        circuits_.bucket_count() * sizeof(void*) +
                        trees_.bucket_count() * sizeof(void*);
    for (const auto& [g, c] : circuits_)
      bytes += sizeof(std::pair<GroupId, CircuitTable>) + 32 +
               c.heap_bytes_estimate();
    for (const auto& [g, t] : trees_)
      bytes += sizeof(std::pair<GroupId, TreeTable>) + 32 +
               t.heap_bytes_estimate();
    return bytes;
  }
};

}  // namespace wormcast
