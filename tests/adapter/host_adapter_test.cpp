// Host adapter mechanics: transmit queueing and overheads, control-worm
// priority, reception accept/drop, cut-through pacing.
#include "adapter/host_adapter.h"

#include <gtest/gtest.h>

#include "net/fabric.h"
#include "net/topologies.h"
#include "net/updown.h"

namespace wormcast {
namespace {

WormPtr make_worm(const UpDownRouting& routing, HostId src, HostId dst,
                  std::int64_t payload, WormKind kind = WormKind::kData) {
  auto w = std::make_shared<Worm>();
  w->kind = kind;
  w->src = src;
  w->dst = dst;
  w->payload = payload;
  w->route = routing.route(src, dst);
  w->message = std::make_shared<MessageContext>();
  return w;
}

class RecordingClient final : public AdapterClient {
 public:
  explicit RecordingClient(Simulator& sim) : sim_(sim) {}
  RxDecision on_rx_head(const WormPtr& worm,
                        const std::shared_ptr<RxProgress>& rx) override {
    last_rx = rx;
    head_times.push_back(sim_.now());
    return accept_next ? RxDecision::kAccept : RxDecision::kDrop;
  }
  void on_rx_complete(const WormPtr& worm, std::int64_t payload) override {
    completed.push_back(worm);
    completed_payload.push_back(payload);
  }
  void on_tx_done(const WormPtr& worm) override { tx_done.push_back(worm); }

  Simulator& sim_;
  bool accept_next = true;
  std::shared_ptr<RxProgress> last_rx;
  std::vector<Time> head_times;
  std::vector<WormPtr> completed;
  std::vector<std::int64_t> completed_payload;
  std::vector<WormPtr> tx_done;
};

class AdapterTest : public ::testing::Test {
 protected:
  AdapterTest()
      : topo_(make_star(3)),
        fabric_(sim_, topo_),
        routing_(topo_),
        a0_(sim_, fabric_, 0),
        a1_(sim_, fabric_, 1),
        a2_(sim_, fabric_, 2),
        c0_(sim_),
        c1_(sim_),
        c2_(sim_) {
    a0_.set_client(&c0_);
    a1_.set_client(&c1_);
    a2_.set_client(&c2_);
  }

  Simulator sim_;
  Topology topo_;
  Fabric fabric_;
  UpDownRouting routing_;
  HostAdapter a0_, a1_, a2_;
  RecordingClient c0_, c1_, c2_;
};

TEST_F(AdapterTest, SendDeliversWithTxOverhead) {
  a0_.send(make_worm(routing_, 0, 1, 100));
  sim_.run();
  ASSERT_EQ(c1_.completed.size(), 1u);
  EXPECT_EQ(c1_.completed_payload[0], 100);
  EXPECT_EQ(a1_.payload_bytes_received(), 100);
  EXPECT_EQ(a0_.worms_sent(), 1);
  // tx_overhead (16) + wire (1 route + 100 + 1) + 2x propagation (5+5).
  EXPECT_GE(sim_.now(), 16 + 102 + 10);
  ASSERT_EQ(c0_.tx_done.size(), 1u);
}

TEST_F(AdapterTest, ControlWormsJumpTheQueue) {
  a0_.send(make_worm(routing_, 0, 1, 800));
  a0_.send(make_worm(routing_, 0, 2, 500));             // queued data
  a0_.send_control(make_worm(routing_, 0, 2, 8, WormKind::kAck));  // queued control
  sim_.run();
  // The ACK (to host 2) must arrive before the 500-byte data worm.
  ASSERT_EQ(c2_.completed.size(), 2u);
  EXPECT_EQ(c2_.completed[0]->kind, WormKind::kAck);
  EXPECT_EQ(c2_.completed[1]->kind, WormKind::kData);
  EXPECT_EQ(a2_.control_received(), 1);
  EXPECT_EQ(a2_.worms_received(), 1);
}

TEST_F(AdapterTest, DroppedWormIsCountedAndNotDelivered) {
  c1_.accept_next = false;
  a0_.send(make_worm(routing_, 0, 1, 300));
  sim_.run();
  EXPECT_EQ(a1_.worms_dropped(), 1);
  EXPECT_EQ(a1_.worms_received(), 0);
  EXPECT_TRUE(c1_.completed.empty());
  // The link still drained the whole worm (no backpressure into fabric).
  EXPECT_EQ(fabric_.total_overflows(), 0);
}

TEST_F(AdapterTest, CutThroughForwardsWhileReceiving) {
  // Host 1 forwards to host 2 while still receiving from host 0.
  class ForwardingClient final : public AdapterClient {
   public:
    ForwardingClient(HostAdapter& self, const UpDownRouting& routing)
        : self_(self), routing_(routing) {}
    RxDecision on_rx_head(const WormPtr& worm,
                          const std::shared_ptr<RxProgress>& rx) override {
      if (worm->payload > 100) {  // only forward the big data worm
        auto copy = make_worm(routing_, 1, 2, worm->payload);
        self_.send_cut_through(std::move(copy), rx);
      }
      return RxDecision::kAccept;
    }
    void on_rx_complete(const WormPtr&, std::int64_t) override {}
    void on_tx_done(const WormPtr&) override {}
    HostAdapter& self_;
    const UpDownRouting& routing_;
  } fwd{a1_, routing_};
  a1_.set_client(&fwd);

  a0_.send(make_worm(routing_, 0, 1, 2000));
  sim_.run();
  ASSERT_EQ(c2_.completed.size(), 1u);
  EXPECT_EQ(c2_.completed_payload[0], 2000);
  // Cut-through: end-to-end completion well under two full transmissions
  // plus overheads (store-and-forward would exceed 2 x 2002).
  EXPECT_LT(sim_.now(), 2 * 2002);
}

TEST_F(AdapterTest, QueuedOwnOriginationsCountsOnlyOwnData) {
  a0_.send(make_worm(routing_, 0, 1, 5000));
  auto forwarded = make_worm(routing_, 0, 2, 400);
  McastHeader h;
  h.origin = 2;  // a copy this host forwards for someone else
  forwarded->mcast = h;
  a0_.send(std::move(forwarded));
  EXPECT_EQ(a0_.queued_own_originations(), 1u);
  EXPECT_EQ(a0_.tx_queue_depth(), 1u);  // one queued behind the active one
  sim_.run();
  EXPECT_EQ(a0_.queued_own_originations(), 0u);
}

TEST_F(AdapterTest, RxProgressTracksPayloadAndCompletion) {
  a0_.send(make_worm(routing_, 0, 1, 600));
  sim_.run_until(200);
  ASSERT_NE(c1_.last_rx, nullptr);
  EXPECT_GT(c1_.last_rx->payload_received, 0);
  EXPECT_LT(c1_.last_rx->payload_received, 600);
  EXPECT_FALSE(c1_.last_rx->complete);
  auto rx = c1_.last_rx;
  sim_.run();
  EXPECT_EQ(rx->payload_received, 600);
  EXPECT_TRUE(rx->complete);
}

TEST_F(AdapterTest, BackToBackSendsAreSerializedWithGaps) {
  for (int i = 0; i < 3; ++i) a0_.send(make_worm(routing_, 0, 1, 100));
  sim_.run();
  EXPECT_EQ(a1_.worms_received(), 3);
  // 3 x (overhead 16 + wire 102) at minimum.
  EXPECT_GE(sim_.now(), 3 * (16 + 102));
}

}  // namespace
}  // namespace wormcast
