// End-to-end loss recovery under injected faults: worm kills, ACK/NACK
// loss, adapter RX drops and link outages on the Section 8.2 testbed, with
// the ack_timeout / dedup / bounded-retry machinery doing the repair.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/network.h"
#include "net/topologies.h"

namespace wormcast {
namespace {

constexpr GroupId kGroup = 0;

MulticastGroupSpec all_hosts_group(int n) {
  MulticastGroupSpec group;
  group.id = kGroup;
  for (HostId h = 0; h < n; ++h) group.members.push_back(h);
  return group;
}

ExperimentConfig recovery_config(Scheme scheme) {
  ExperimentConfig cfg;
  cfg.protocol.scheme = scheme;
  cfg.protocol.ack_timeout = 20'000;
  cfg.protocol.retry_backoff = 2'000;
  cfg.protocol.retry_jitter = 1'000;
  // Ample pool so faults, not reservations, dominate the experiment.
  cfg.protocol.pool_bytes = 128 * 1024;
  cfg.seed = 42;
  return cfg;
}

void inject_multicasts(Network& net, int count, std::int64_t length) {
  for (int i = 0; i < count; ++i) {
    Demand d;
    d.src = static_cast<HostId>((i * 3) % net.num_hosts());
    d.multicast = true;
    d.group = kGroup;
    d.length = length;
    net.inject(d);
  }
}

/// Every message delivered exactly once to every member, every pool back to
/// zero, no task or un-ACKed send left behind.
void expect_fully_recovered(Network& net, int n_messages) {
  const int dests = net.num_hosts() - 1;
  EXPECT_EQ(net.metrics().messages_completed(), n_messages)
      << net.debug_report();
  EXPECT_EQ(net.metrics().outstanding(), 0);
  EXPECT_EQ(net.summary().deliveries_failed, 0);
  EXPECT_EQ(net.metrics().mcast_latency().count(), n_messages * dests);
  for (HostId h = 0; h < net.num_hosts(); ++h) {
    EXPECT_EQ(net.protocol(h).pool().total_used(), 0) << "host " << h;
    EXPECT_EQ(net.protocol(h).active_tasks(), 0u) << "host " << h;
    EXPECT_TRUE(net.adapter(h).tx_idle()) << "host " << h;
    // Exactly-once at each member: the delivery-order audit saw every
    // message id once (Metrics::on_delivered would also assert on a dup).
    const auto* order = net.metrics().order_of(h, kGroup);
    std::set<std::uint64_t> distinct;
    std::size_t deliveries = 0;
    if (order != nullptr) {
      distinct.insert(order->begin(), order->end());
      deliveries = order->size();
    }
    EXPECT_EQ(deliveries, distinct.size()) << "duplicate delivery at " << h;
  }
  EXPECT_EQ(net.fabric().total_overflows(), 0);
}

class FaultRecoveryTest : public ::testing::TestWithParam<Scheme> {};

// The acceptance scenario: >= 5% worm-kill and ACK-loss on every link of
// the 8-host Myrinet testbed; unbounded retries must deliver everything
// exactly once and drain every buffer.
TEST_P(FaultRecoveryTest, LossyLinksEventuallyDeliverExactlyOnce) {
  ExperimentConfig cfg = recovery_config(GetParam());
  cfg.faults.worm_kill_rate = 0.05;
  cfg.faults.ctrl_loss_rate = 0.05;
  Network net(make_myrinet_testbed(), {all_hosts_group(8)}, cfg);
  inject_multicasts(net, 20, 512);
  net.run_to_quiescence();
  EXPECT_GT(net.summary().faults_injected, 0);
  expect_fully_recovered(net, 20);
}

TEST_P(FaultRecoveryTest, AdapterRxDropsAreRecovered) {
  ExperimentConfig cfg = recovery_config(GetParam());
  cfg.faults.rx_drop_rate = 0.10;
  Network net(make_myrinet_testbed(), {all_hosts_group(8)}, cfg);
  inject_multicasts(net, 10, 300);
  net.run_to_quiescence();
  EXPECT_GT(net.summary().faults_injected, 0);
  expect_fully_recovered(net, 10);
}

// Pure control-plane loss: data always arrives, so recovery shows up as
// re-ACKed duplicates, never as extra deliveries.
TEST_P(FaultRecoveryTest, LostAcksAreReAckedNotRedelivered) {
  ExperimentConfig cfg = recovery_config(GetParam());
  cfg.faults.ctrl_loss_rate = 0.25;
  Network net(make_myrinet_testbed(), {all_hosts_group(8)}, cfg);
  inject_multicasts(net, 12, 256);
  net.run_to_quiescence();
  const Network::Summary s = net.summary();
  EXPECT_GT(s.faults_injected, 0);
  EXPECT_GT(s.ack_timeouts, 0);
  EXPECT_GT(s.duplicates_suppressed, 0);
  expect_fully_recovered(net, 12);
}

TEST_P(FaultRecoveryTest, TransientLinkOutageHealsAfterItEnds) {
  ExperimentConfig cfg = recovery_config(GetParam());
  Network net(make_myrinet_testbed(), {all_hosts_group(8)}, cfg);
  // Every link dead for the first 30k byte-times; traffic injected during
  // the blackout must be delivered once the links come back.
  net.faults().schedule_outage(nullptr, 0, 30'000);
  inject_multicasts(net, 5, 200);
  net.run_to_quiescence();
  EXPECT_GT(net.faults().outage_drops(), 0);
  expect_fully_recovered(net, 5);
}

INSTANTIATE_TEST_SUITE_P(ReservationSchemes, FaultRecoveryTest,
                         ::testing::Values(Scheme::kHamiltonianSF,
                                           Scheme::kHamiltonianCT,
                                           Scheme::kTreeSF, Scheme::kTreeCT),
                         [](const ::testing::TestParamInfo<Scheme>& info) {
                           std::string s = scheme_name(info.param);
                           for (char& c : s)
                             if (c == '-') c = '_';
                           return s;
                         });

// A single forced ACK loss, fully deterministic: the sender times out, the
// receiver recognizes the retransmitted copy and re-ACKs from its dedup
// memory without delivering it twice.
TEST(FaultRecovery, ForcedAckLossIsDeduplicated) {
  ExperimentConfig cfg = recovery_config(Scheme::kHamiltonianSF);
  cfg.protocol.retry_jitter = 0;
  Network net(make_myrinet_testbed(), {all_hosts_group(8)}, cfg);
  net.faults().force_drop_control(1);
  inject_multicasts(net, 1, 400);
  net.run_to_quiescence();
  const Network::Summary s = net.summary();
  EXPECT_EQ(s.faults_injected, 1);
  EXPECT_GE(s.ack_timeouts, 1);
  EXPECT_GE(s.duplicates_suppressed, 1);
  expect_fully_recovered(net, 1);
}

// A single forced worm kill: the truncated stub is discarded wherever it
// lands, the reservation it briefly held drains, and the timeout delivers
// a fresh copy.
TEST(FaultRecovery, ForcedWormKillIsRetransmitted) {
  ExperimentConfig cfg = recovery_config(Scheme::kHamiltonianSF);
  cfg.protocol.retry_jitter = 0;
  Network net(make_myrinet_testbed(), {all_hosts_group(8)}, cfg);
  net.faults().force_kill_data(1);
  inject_multicasts(net, 1, 400);
  net.run_to_quiescence();
  EXPECT_EQ(net.summary().faults_injected, 1);
  EXPECT_GE(net.summary().ack_timeouts, 1);
  expect_fully_recovered(net, 1);
}

// Bounded retries: with every link permanently dead, max_attempts stops the
// retry loop, the reservation-less originator task drains, and the message
// is abandoned (counted, not leaked).
TEST(FaultRecovery, BoundedRetriesGiveUpCleanly) {
  ExperimentConfig cfg = recovery_config(Scheme::kHamiltonianSF);
  cfg.protocol.max_attempts = 3;
  cfg.protocol.retry_jitter = 0;
  Network net(make_myrinet_testbed(), {all_hosts_group(8)}, cfg);
  net.faults().schedule_outage(nullptr, 0, kTimeNever);
  inject_multicasts(net, 2, 200);
  net.run_to_quiescence();
  const Network::Summary s = net.summary();
  EXPECT_GE(s.deliveries_failed, 2);
  EXPECT_EQ(s.outstanding, 0) << "abandoned messages must not stay outstanding";
  EXPECT_EQ(net.metrics().messages_completed(), 0);
  for (HostId h = 0; h < net.num_hosts(); ++h) {
    EXPECT_EQ(net.protocol(h).pool().total_used(), 0) << "host " << h;
    EXPECT_EQ(net.protocol(h).active_tasks(), 0u) << "host " << h;
  }
}

// Loss without recovery wedges the run (the lossless protocol has no
// timers to notice); the attached watchdog must detect the stall and dump
// the per-host diagnostics naming what was stuck.
TEST(FaultRecovery, WatchdogDumpsDiagnosticsOnStall) {
  ExperimentConfig cfg;  // ack_timeout left 0: no recovery
  cfg.protocol.scheme = Scheme::kHamiltonianSF;
  Network net(make_myrinet_testbed(), {all_hosts_group(8)}, cfg);
  DeadlockWatchdog& dog = net.attach_watchdog(50'000);
  net.faults().force_kill_data(1);
  inject_multicasts(net, 1, 400);
  net.run_until(500'000);
  ASSERT_TRUE(dog.deadlock_detected());
  EXPECT_NE(dog.report().find("outstanding=1"), std::string::npos)
      << dog.report();
  EXPECT_NE(dog.report().find("host 0:"), std::string::npos) << dog.report();
}

// The zero-fault configuration must behave exactly like the lossless
// fabric: recovery arms timers but none may fire.
TEST(FaultRecovery, NoFaultsMeansNoTimeoutsOrDuplicates) {
  ExperimentConfig cfg = recovery_config(Scheme::kTreeSF);
  Network net(make_myrinet_testbed(), {all_hosts_group(8)}, cfg);
  inject_multicasts(net, 10, 256);
  net.run_to_quiescence();
  const Network::Summary s = net.summary();
  EXPECT_EQ(s.faults_injected, 0);
  EXPECT_EQ(s.ack_timeouts, 0);
  EXPECT_EQ(s.duplicates_suppressed, 0);
  EXPECT_EQ(s.retransmits, 0);
  expect_fully_recovered(net, 10);
}

}  // namespace
}  // namespace wormcast
