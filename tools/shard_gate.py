#!/usr/bin/env python3
"""CI shard-determinism gate: diff BENCH_*.json across --shards counts.

The sharded in-run engine (core/network.h, EngineConfig::shards) promises
bit-identical *physics* at any executor count: every throughput, loss,
byte, poll and check-verdict metric must match the --shards 1 run exactly.
This gate runs after the same bench has been executed at several shard
counts and diffs the JSON outputs.

What is exempt (the shard-variant telemetry denylist — each entry is
*expected* to move with the executor count, and why):

  wall / per_sec / _ms      host wall-clock, never deterministic anywhere
  speedup / overhead /      ratios of walls or event counts from the
    *_ratio                   same run
  events / events_dispatched  the engine dispatches extra window-barrier
                              and budget-republication events per executor
  event_queue_peak          the sum of per-executor queue peaks is not the
                              peak of the single merged queue
  pool_fresh / pool_reused  worm arenas are per-executor; recycling
                              locality changes with the partition
  trace_events* / trace_dropped*  the flight recorder is a per-executor
                              ring; extra engine events shift wrap points
  mem_*                     the memory audit counts per-executor queues,
                              rings and arenas, which scale with shards

Everything else — including the check_* verdict counts in meta — must be
bit-identical, because a mismatch means the parallel engine changed what
the simulation computed, not just how fast.

Usage:
  tools/shard_gate.py REF.json OTHER.json [OTHER2.json ...]

REF is conventionally the --shards 1 output. Exit 0 = identical physics;
1 = divergence (delta table on stdout).
"""

import json
import re
import sys

SHARD_VARIANT_PAT = re.compile(
    r"(wall|per_sec|ns_per_op|_ms$|speedup|overhead|_ratio$"
    r"|^events$|events_dispatched|event_queue_peak"
    r"|pool_fresh|pool_reused|trace_events|trace_dropped|^mem_)"
)
# Meta is mostly run-shape (jobs, walls); only the checker verdicts are
# physics.
META_PHYSICS_PAT = re.compile(r"^check_")


def skip(name):
    return SHARD_VARIANT_PAT.search(name) is not None


def diff_cells(where, ref_cells, got_cells, failures):
    for name in sorted(set(ref_cells) | set(got_cells)):
        if skip(name):
            continue
        ref, got = ref_cells.get(name), got_cells.get(name)
        if ref != got:
            failures.append((where, name, ref, got))


def main():
    if len(sys.argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    paths = sys.argv[1:]
    docs = []
    for p in paths:
        with open(p) as f:
            docs.append(json.load(f))
    ref = docs[0]

    failures = []
    for p, got in zip(paths[1:], docs[1:]):
        if got.get("bench") != ref.get("bench"):
            failures.append((p, "bench", ref.get("bench"), got.get("bench")))
            continue
        ref_rows = ref.get("rows", [])
        got_rows = got.get("rows", [])
        if len(ref_rows) != len(got_rows):
            failures.append((p, "row count", len(ref_rows), len(got_rows)))
            continue
        for i, (rr, gr) in enumerate(zip(ref_rows, got_rows)):
            diff_cells(f"{p} row {i}", rr, gr, failures)
        diff_cells(f"{p} counters", ref.get("counters", {}),
                   got.get("counters", {}), failures)
        ref_meta = {k: v for k, v in ref.get("meta", {}).items()
                    if META_PHYSICS_PAT.match(k)}
        got_meta = {k: v for k, v in got.get("meta", {}).items()
                    if META_PHYSICS_PAT.match(k)}
        diff_cells(f"{p} meta", ref_meta, got_meta, failures)

    if failures:
        print(f"shard_gate: FAIL ({len(failures)} deltas vs {paths[0]})")
        for where, name, ref_v, got_v in failures:
            print(f"  {where}: {name}: {ref_v!r} != {got_v!r}")
        print("shard_gate: the sharded engine changed the simulation's "
              "physics — this is a determinism bug, not a perf delta.")
        return 1
    print(f"shard_gate: OK ({len(paths) - 1} run(s) bit-identical to "
          f"{paths[0]} outside the telemetry denylist)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
