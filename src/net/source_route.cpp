#include "net/source_route.h"

#include <cassert>
#include <stdexcept>

namespace wormcast {

std::string SourceRoute::to_string() const {
  std::string out;
  for (const PortId p : ports_) {
    if (!out.empty()) out += '.';
    out += std::to_string(p);
  }
  return out;
}

// --- EncodedMcastRoute ------------------------------------------------------
//
// Wire grammar (a precise formalization of Figure 2; see header):
//   routelist := branch* END
//   branch    := PORT PTR_LO PTR_HI bytes[PTR]
// where bytes[PTR] is the encoded routelist of the branch's subtree, or
// empty when the branch is a leaf (the port leads to a destination host).
// The paper draws single-byte pointers and elides them on leaves; we use a
// fixed 2-byte pointer so that arbitrarily large trees (e.g. broadcast on a
// 64-switch torus) remain encodable. Semantics are unchanged.

void EncodedMcastRoute::encode_level(const std::vector<McastRouteTree>& branches,
                                     std::vector<std::uint8_t>& out) {
  for (const McastRouteTree& b : branches) {
    if (b.port < 0 || b.port > kMaxEncodablePort)
      throw std::invalid_argument("mcast route: port out of encodable range");
    out.push_back(static_cast<std::uint8_t>(b.port));
    const std::size_t ptr_pos = out.size();
    out.push_back(0);  // pointer placeholder (lo)
    out.push_back(0);  // pointer placeholder (hi)
    if (!b.children.empty()) {
      encode_level(b.children, out);
      out.push_back(kRouteEndMarker);
    }
    const std::size_t sub_len = out.size() - (ptr_pos + 2);
    if (sub_len > 0xFFFF)
      throw std::invalid_argument("mcast route: subtree exceeds pointer range");
    out[ptr_pos] = static_cast<std::uint8_t>(sub_len & 0xFF);
    out[ptr_pos + 1] = static_cast<std::uint8_t>(sub_len >> 8);
  }
}

EncodedMcastRoute EncodedMcastRoute::encode(
    const std::vector<McastRouteTree>& branches) {
  if (branches.empty())
    throw std::invalid_argument("mcast route: empty branch list");
  std::vector<std::uint8_t> bytes;
  encode_level(branches, bytes);
  bytes.push_back(kRouteEndMarker);
  return EncodedMcastRoute(std::move(bytes));
}

bool EncodedMcastRoute::empty() const {
  return bytes_.empty() ||
         (bytes_.size() == 1 && bytes_[0] == kRouteEndMarker);
}

std::vector<McastBranch> EncodedMcastRoute::split() const {
  std::vector<McastBranch> out;
  std::size_t i = 0;
  const auto need = [&](std::size_t n) {
    if (i + n > bytes_.size())
      throw std::invalid_argument("mcast route: truncated encoding");
  };
  for (;;) {
    need(1);
    const std::uint8_t b = bytes_[i++];
    if (b == kRouteEndMarker) break;
    need(2);
    const std::size_t sub_len =
        static_cast<std::size_t>(bytes_[i]) |
        (static_cast<std::size_t>(bytes_[i + 1]) << 8);
    i += 2;
    need(sub_len);
    McastBranch br;
    br.port = static_cast<PortId>(b);
    br.subroute = EncodedMcastRoute(std::vector<std::uint8_t>(
        bytes_.begin() + static_cast<std::ptrdiff_t>(i),
        bytes_.begin() + static_cast<std::ptrdiff_t>(i + sub_len)));
    i += sub_len;
    out.push_back(std::move(br));
  }
  if (i != bytes_.size())
    throw std::invalid_argument("mcast route: trailing bytes after end marker");
  return out;
}

std::vector<McastRouteTree> EncodedMcastRoute::decode() const {
  std::vector<McastRouteTree> out;
  for (const McastBranch& br : split()) {
    McastRouteTree node;
    node.port = br.port;
    if (!br.subroute.bytes_.empty()) node.children = br.subroute.decode();
    out.push_back(std::move(node));
  }
  return out;
}

std::string EncodedMcastRoute::to_string() const {
  std::string out;
  for (const std::uint8_t b : bytes_) {
    if (!out.empty()) out += ' ';
    out += (b == kRouteEndMarker) ? "E" : std::to_string(b);
  }
  return out;
}

}  // namespace wormcast
