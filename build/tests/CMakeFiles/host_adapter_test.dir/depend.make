# Empty dependencies file for host_adapter_test.
# This may be replaced when dependencies are built.
