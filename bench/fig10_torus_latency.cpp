// Figure 10: average multicast latency vs offered load on an 8x8 torus.
//
// Paper setup (Section 7.1): 64 hosts, 10 multicast groups of 10 random
// members, multicast proportion 0.10, Poisson arrivals, geometric worm
// lengths with mean 400 bytes. The x-axis is the *output-link utilization
// per host*, which includes the forwarded multicast copies (with group
// size 10 and proportion 0.10 the transmitted traffic is ~1.8x the
// generated traffic); we sweep the generation-rate knob and report the
// measured utilization like the paper does. Three schemes: Hamiltonian
// circuit store-and-forward, Hamiltonian circuit cut-through, rooted tree
// store-and-forward.
//
// Expected shape (paper): tree < Hamiltonian-S&F everywhere; Hamiltonian
// cut-through is lowest at light load and loses its edge at heavier load
// (converging to S&F); latencies blow up approaching saturation
// (~0.11-0.12 utilization).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "net/topologies.h"
#include "sim/random.h"
#include "traffic/groups.h"

using namespace wormcast;

namespace {

struct Point {
  double utilization = 0.0;
  double latency = 0.0;
};

Point run_point(Scheme scheme, double gen_load, std::uint64_t seed, Time warmup,
                Time measure) {
  RandomStream group_rng(900 + seed);  // same groups for all schemes/loads
  auto groups = make_random_groups(10, 10, 64, group_rng);
  ExperimentConfig cfg = bench::sim_defaults(scheme, gen_load, 0.10, seed);
  Network net(make_torus(8, 8), std::move(groups), cfg);
  net.run(warmup, measure, /*drain_cap=*/100'000);
  const auto s = net.summary();
  return Point{s.measured_utilization, s.mcast_latency_mean};
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const Time warmup = quick ? 20'000 : 50'000;
  const Time measure = quick ? 60'000 : 200'000;

  std::printf("# Figure 10: average multicast latency (byte-times) vs offered "
              "load, 8x8 torus\n");
  std::printf("# 10 groups x 10 members, multicast proportion 0.10, mean worm "
              "400 B\n");
  std::printf("# columns: per-scheme (measured output-link utilization, "
              "latency)\n");
  bench::print_header("gen_load",
                      {"util_hc_sf", "lat_hc_sf", "util_hc_ct", "lat_hc_ct",
                       "util_tree", "lat_tree"});
  const std::vector<double> loads =
      quick ? std::vector<double>{0.025, 0.045, 0.06}
            : std::vector<double>{0.022, 0.028, 0.034, 0.040, 0.046,
                                  0.052, 0.058, 0.062, 0.066};
  for (const double load : loads) {
    const Point sf = run_point(Scheme::kHamiltonianSF, load, 1, warmup, measure);
    const Point ct = run_point(Scheme::kHamiltonianCT, load, 1, warmup, measure);
    // The paper's "rooted tree" curve is the broadcast-on-tree variant
    // (Section 6's lower-latency alternative; store-and-forward at each
    // member, two buffer classes, no total ordering).
    const Point tr = run_point(Scheme::kTreeBroadcast, load, 1, warmup, measure);
    std::printf("%.3f,%.3f,%.0f,%.3f,%.0f,%.3f,%.0f\n", load, sf.utilization,
                sf.latency, ct.utilization, ct.latency, tr.utilization,
                tr.latency);
    std::fflush(stdout);
  }
  return 0;
}
