#include "traffic/groups.h"

#include <gtest/gtest.h>

#include <set>

namespace wormcast {
namespace {

TEST(Groups, RandomGroupsHaveDistinctMembersInRange) {
  RandomStream rng(1);
  const auto groups = make_random_groups(10, 10, 64, rng);
  ASSERT_EQ(groups.size(), 10u);
  for (const auto& g : groups) {
    EXPECT_EQ(g.members.size(), 10u);
    std::set<HostId> uniq(g.members.begin(), g.members.end());
    EXPECT_EQ(uniq.size(), 10u);
    for (const HostId m : g.members) {
      EXPECT_GE(m, 0);
      EXPECT_LT(m, 64);
    }
  }
  EXPECT_EQ(groups[0].id, 0);
  EXPECT_EQ(groups[9].id, 9);
}

TEST(Groups, GroupOfAllHosts) {
  RandomStream rng(2);
  const auto groups = make_random_groups(1, 8, 8, rng);
  std::set<HostId> uniq(groups[0].members.begin(), groups[0].members.end());
  EXPECT_EQ(uniq.size(), 8u);
}

TEST(Groups, OversizedGroupThrows) {
  RandomStream rng(3);
  EXPECT_THROW(make_random_groups(1, 9, 8, rng), std::invalid_argument);
}

TEST(Groups, DeterministicForSameSeed) {
  RandomStream a(7);
  RandomStream b(7);
  const auto ga = make_random_groups(5, 6, 24, a);
  const auto gb = make_random_groups(5, 6, 24, b);
  for (std::size_t i = 0; i < ga.size(); ++i)
    EXPECT_EQ(ga[i].members, gb[i].members);
}

TEST(Groups, FullGroupCoversEveryHost) {
  const auto g = make_full_group(8, 3);
  EXPECT_EQ(g.id, 3);
  ASSERT_EQ(g.members.size(), 8u);
  for (HostId h = 0; h < 8; ++h) EXPECT_EQ(g.members[h], h);
}

}  // namespace
}  // namespace wormcast
