# Empty dependencies file for credit_scheme_test.
# This may be replaced when dependencies are built.
