#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <random>
#include <tuple>
#include <vector>

namespace wormcast {
namespace {

// Every test runs against both pending-event structures: the flat binary
// heap and the bucketed calendar queue implement the same total order
// (time, late, insertion sequence), so the whole contract must hold for
// either kind.
class EventQueueTest : public ::testing::TestWithParam<EventQueueKind> {
 protected:
  EventQueue make() { return EventQueue(GetParam()); }
};

INSTANTIATE_TEST_SUITE_P(AllKinds, EventQueueTest,
                         ::testing::Values(EventQueueKind::kCalendar,
                                           EventQueueKind::kHeap),
                         [](const auto& param_info) {
                           return std::string(to_string(param_info.param));
                         });

TEST_P(EventQueueTest, FiresInTimeOrder) {
  EventQueue q = make();
  std::vector<int> fired;
  q.schedule(30, [&] { fired.push_back(3); });
  q.schedule(10, [&] { fired.push_back(1); });
  q.schedule(20, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST_P(EventQueueTest, EqualTimesFireInInsertionOrder) {
  EventQueue q = make();
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) q.schedule(5, [&fired, i] { fired.push_back(i); });
  while (!q.empty()) q.pop().action();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST_P(EventQueueTest, LateClassFiresAfterEverySameTimeNormalEvent) {
  EventQueue q = make();
  std::vector<int> fired;
  // Late event inserted FIRST still fires after all same-time normal
  // events; a later time beats both classes.
  q.schedule(5, [&] { fired.push_back(90); }, /*late=*/true);
  q.schedule(5, [&] { fired.push_back(1); });
  q.schedule(5, [&] { fired.push_back(91); }, /*late=*/true);
  q.schedule(5, [&] { fired.push_back(2); });
  q.schedule(6, [&] { fired.push_back(100); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 90, 91, 100}));
}

TEST_P(EventQueueTest, NextTimeReportsEarliestLiveEvent) {
  EventQueue q = make();
  EXPECT_EQ(q.next_time(), kTimeNever);
  auto h = q.schedule(7, [] {});
  q.schedule(9, [] {});
  EXPECT_EQ(q.next_time(), 7);
  q.cancel(h);
  EXPECT_EQ(q.next_time(), 9);
}

TEST_P(EventQueueTest, CancelPreventsExecution) {
  EventQueue q = make();
  bool ran = false;
  auto h = q.schedule(1, [&] { ran = true; });
  q.cancel(h);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST_P(EventQueueTest, CancelTwiceIsHarmless) {
  EventQueue q = make();
  auto h = q.schedule(1, [] {});
  q.cancel(h);
  q.cancel(h);
  EXPECT_TRUE(q.empty());
}

TEST_P(EventQueueTest, CancelAfterFireIsHarmless) {
  EventQueue q = make();
  auto h = q.schedule(1, [] {});
  q.pop().action();
  q.cancel(h);  // must not corrupt later events
  bool ran = false;
  q.schedule(2, [&] { ran = true; });
  q.pop().action();
  EXPECT_TRUE(ran);
}

TEST_P(EventQueueTest, DefaultHandleIsInvalidAndIgnored) {
  EventQueue q = make();
  EventHandle h;
  EXPECT_FALSE(h.valid());
  q.cancel(h);
  EXPECT_TRUE(q.empty());
}

TEST_P(EventQueueTest, SizeCountsLiveEventsOnly) {
  EventQueue q = make();
  auto a = q.schedule(1, [] {});
  q.schedule(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
}

TEST_P(EventQueueTest, InterleavedCancelAndPop) {
  EventQueue q = make();
  std::vector<int> fired;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 100; ++i)
    handles.push_back(q.schedule(i, [&fired, i] { fired.push_back(i); }));
  for (int i = 0; i < 100; i += 2) q.cancel(handles[static_cast<std::size_t>(i)]);
  while (!q.empty()) q.pop().action();
  ASSERT_EQ(fired.size(), 50u);
  for (std::size_t i = 0; i < fired.size(); ++i)
    EXPECT_EQ(fired[i], static_cast<int>(2 * i + 1));
}

TEST_P(EventQueueTest, StaleHandleAfterSlotReuseIsIgnored) {
  EventQueue q = make();
  // Fire an event, then schedule a new one: the new event reuses the old
  // slot (LIFO free list), so the stale handle must not be able to kill it.
  auto stale = q.schedule(1, [] {});
  q.pop().action();
  bool ran = false;
  q.schedule(2, [&] { ran = true; });
  q.cancel(stale);
  ASSERT_FALSE(q.empty());
  q.pop().action();
  EXPECT_TRUE(ran);
}

TEST_P(EventQueueTest, StaleHandleAfterCancelAndReuseIsIgnored) {
  EventQueue q = make();
  auto stale = q.schedule(1, [] {});
  q.cancel(stale);
  bool ran = false;
  q.schedule(2, [&] { ran = true; });
  q.cancel(stale);  // slot was reused by the new event; must be a no-op
  ASSERT_EQ(q.size(), 1u);
  q.pop().action();
  EXPECT_TRUE(ran);
}

TEST_P(EventQueueTest, MassCancellationCompacts) {
  EventQueue q = make();
  std::vector<EventHandle> handles;
  // One far-future survivor keeps the head live while thousands of nearer
  // timers get cancelled (the retransmit-timer pattern).
  bool survivor_ran = false;
  q.schedule(1'000'000, [&] { survivor_ran = true; });
  for (int i = 0; i < 4096; ++i)
    handles.push_back(q.schedule(100 + i, [] {}));
  for (auto& h : handles) q.cancel(h);
  // Compaction bounds parked dead entries to at most half the structure.
  EXPECT_LE(q.cancelled_in_heap() * 2, q.size() + q.cancelled_in_heap());
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.next_time(), 1'000'000);
  q.pop().action();
  EXPECT_TRUE(survivor_ran);
  EXPECT_TRUE(q.empty());
}

TEST_P(EventQueueTest, PeakSizeTracksHighWaterMark) {
  EventQueue q = make();
  std::vector<EventHandle> handles;
  for (int i = 0; i < 64; ++i) handles.push_back(q.schedule(i, [] {}));
  for (int i = 0; i < 32; ++i) q.pop().action();
  EXPECT_EQ(q.peak_size(), 64u);
  q.schedule(1000, [] {});
  EXPECT_EQ(q.peak_size(), 64u);  // never reached 65 live at once
}

// Regression: a cancelled entry parked mid-structure must stay dead even
// after its slot is reused by a newer event. Without a generation check on
// the parked entry, the stale entry pops as if live (firing a cancelled
// action) and retires the reused slot, silently dropping the newer event.
TEST_P(EventQueueTest, ParkedCancelledEntrySurvivesSlotReuse) {
  EventQueue q = make();
  bool cancelled_ran = false;
  bool replacement_ran = false;
  q.schedule(5, [] {});  // live head keeps the cancelled entry parked
  auto doomed = q.schedule(10, [&] { cancelled_ran = true; });
  q.cancel(doomed);  // not the head: entry stays parked
  // Reuses the slot just freed by the cancel.
  q.schedule(20, [&] { replacement_ran = true; });
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().action();
  EXPECT_FALSE(cancelled_ran);
  EXPECT_TRUE(replacement_ran);
}

TEST_P(EventQueueTest, NextTimeIsStableAcrossRepeatedCalls) {
  EventQueue q = make();
  auto a = q.schedule(5, [] {});
  q.schedule(8, [] {});
  q.cancel(a);
  // next_time() is a pure read; calling it many times must not change state.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(q.next_time(), 8);
  EXPECT_EQ(q.size(), 1u);
}

// Slot generations are 64-bit. A 32-bit generation wraps after 2^32
// retire/reuse cycles of one slot, at which point a hoarded stale handle
// aliases a live event and cancel() kills it. 2^32 cycles is reachable in
// hours of simulation; 2^64 is not. The handle must carry the full width.
static_assert(sizeof(EventHandle) >= sizeof(std::uint32_t) + sizeof(std::uint64_t),
              "EventHandle must hold a 32-bit slot and a 64-bit generation");

TEST_P(EventQueueTest, HoardedStaleHandleStaysDeadAcrossHeavySlotReuse) {
  EventQueue q = make();
  // Cycle one slot through many generations while hoarding the first
  // handle; the stale handle must never become able to cancel the current
  // occupant. (A full 2^32 wrap is impractical in a unit test; the
  // static_assert above pins the width, this pins the per-cycle behavior.)
  auto hoarded = q.schedule(1, [] {});
  q.pop().action();
  for (int i = 0; i < 100'000; ++i) {
    auto h = q.schedule(i, [] {});
    q.cancel(h);
  }
  bool ran = false;
  q.schedule(7, [&] { ran = true; });
  q.cancel(hoarded);
  ASSERT_EQ(q.size(), 1u);
  q.pop().action();
  EXPECT_TRUE(ran);
}

// An action fired from pop() may re-enter the queue: scheduling at the
// current time must land after every already-pending same-time event
// (higher insertion sequence), and the accounting (size, next_time) must
// stay coherent mid-dispatch.
TEST_P(EventQueueTest, ReentrantScheduleDuringPop) {
  EventQueue q = make();
  std::vector<int> fired;
  q.schedule(10, [&] {
    fired.push_back(1);
    q.schedule(10, [&] { fired.push_back(3); });  // same tick, new seq
    q.schedule(15, [&] { fired.push_back(4); });
    q.schedule(10, [&] { fired.push_back(100); }, /*late=*/false);
  });
  q.schedule(10, [&] { fired.push_back(2); });
  while (!q.empty()) {
    auto p = q.pop();
    p.action();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3, 100, 4}));
}

// Randomized differential test: drive the queue with a mixed
// schedule/cancel/pop workload (including re-entrant schedules from inside
// fired actions) and check the fired sequence against a std::multimap
// reference ordered by the documented key (time, late, seq). Exercises
// compaction, calendar resizes, and head-cache maintenance under churn.
TEST_P(EventQueueTest, RandomizedStressMatchesReferenceModel) {
  EventQueue q = make();
  std::mt19937_64 rng(0xC0FFEE);
  using Key = std::tuple<Time, bool, std::uint64_t>;  // (time, late, seq)
  std::map<Key, int> reference;                       // key is unique per event
  std::vector<std::pair<EventHandle, Key>> outstanding;
  std::uint64_t next_seq = 0;
  Time now = 0;
  int next_id = 0;
  int fired_ok = 0;

  auto do_schedule = [&](Time at, bool late) {
    const int id = next_id++;
    const Key key{at, late, next_seq++};
    EventHandle h = q.schedule(
        at,
        [&, id, key] {
          // Differential check at fire time: the reference's earliest
          // pending event must be exactly this one.
          ASSERT_FALSE(reference.empty());
          EXPECT_EQ(reference.begin()->second, id);
          EXPECT_EQ(reference.begin()->first, key);
          reference.erase(reference.begin());
          ++fired_ok;
        },
        late);
    reference.emplace(key, id);
    outstanding.emplace_back(h, key);
  };

  for (int step = 0; step < 30'000; ++step) {
    const auto roll = rng() % 100;
    if (roll < 55 || q.empty()) {
      // Schedule at or after `now` (popping advances the clock; scheduling
      // in the past would be a simulator bug, not a queue workload).
      const Time at = now + static_cast<Time>(rng() % 1024);
      do_schedule(at, (rng() % 8) == 0);
    } else if (roll < 75 && !outstanding.empty()) {
      // Cancel a random outstanding handle (may already be fired/stale —
      // the reference only drops it if still pending).
      const std::size_t i = rng() % outstanding.size();
      q.cancel(outstanding[i].first);
      reference.erase(outstanding[i].second);
      outstanding.erase(outstanding.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ASSERT_EQ(q.size(), reference.size());
      ASSERT_EQ(q.next_time(), std::get<0>(reference.begin()->first));
      auto p = q.pop();
      now = p.time;
      // Occasionally re-enter: schedule from inside the fired action.
      if ((rng() % 16) == 0) {
        p.action();
        do_schedule(now, false);
      } else {
        p.action();
      }
    }
  }
  while (!q.empty()) {
    ASSERT_EQ(q.size(), reference.size());
    q.pop().action();
  }
  EXPECT_TRUE(reference.empty());
  EXPECT_GT(fired_ok, 1000);
}

// Cancel-heavy randomized sweep: forces repeated compactions and verifies
// the live/dead accounting never drifts (size() + cancelled_in_heap() is
// exactly the parked population, and survivors all fire).
TEST_P(EventQueueTest, RandomizedCancelHeavyAccounting) {
  EventQueue q = make();
  std::mt19937_64 rng(42);
  int expected_survivors = 0;
  int fired = 0;
  for (int round = 0; round < 50; ++round) {
    std::vector<EventHandle> doomed;
    for (int i = 0; i < 400; ++i) {
      const Time at = static_cast<Time>(round * 10'000 + (rng() % 5000));
      if ((rng() % 10) == 0) {
        q.schedule(at, [&fired] { ++fired; });
        ++expected_survivors;
      } else {
        doomed.push_back(q.schedule(at, [] {
          FAIL() << "cancelled event fired";
        }));
      }
    }
    for (auto& h : doomed) q.cancel(h);
    // Compaction invariant: parked dead entries never exceed live ones
    // once the cancel burst is over.
    EXPECT_LE(q.cancelled_in_heap(), q.size() + 1);
  }
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, expected_survivors);
}

}  // namespace
}  // namespace wormcast
