// The Figure 3 scenario: a switch-level multicast and a unicast deadlock
// each other when multicast worms may leave the up/down spanning tree and
// blocked branches idle-fill their paths (scheme (a) without the
// tree-only restriction). Schemes (b) and (c) resolve the same scenario.
//
// Topology (switches A..E, one host each where needed):
//
//     mx - A --- B          multicast from mx: branch 1 A->B->E->b,
//          |     |                             branch 2 A->C->D->d
//          C --- D --- E - b
//          |               (D--E long link so the unicast arrives at E
//          u               after the multicast has claimed E->b)
//
// The unicast u->b takes C->D->E->b. It wins C->D, so multicast branch 2
// waits at A... the multicast's branch 1 reaches E first and claims E->b,
// idling because branch 2 is blocked. The unicast then blocks on E->b:
// a cycle — permanent deadlock under pure IDLE-fill.
#include <gtest/gtest.h>

#include "core/network.h"
#include "net/source_route.h"

namespace wormcast {
namespace {

struct Figure3 {
  Topology topo;
  NodeId A, B, C, D, E;
  HostId mx = 0, u = 1, b = 2, d = 3;  // host ids by add order

  Figure3() {
    A = topo.add_switch("A");
    B = topo.add_switch("B");
    C = topo.add_switch("C");
    D = topo.add_switch("D");
    E = topo.add_switch("E");
    topo.connect(A, B, 5);
    topo.connect(B, E, 5);
    topo.connect(A, C, 40);  // branch 2 reaches C late
    topo.connect(C, D, 5);
    topo.connect(D, E, 60);  // the unicast reaches E late
    // Hosts: mx@A, u@C, b@E, d@D (ids in this order).
    topo.connect(topo.add_host("mx"), A, 5);
    topo.connect(topo.add_host("u"), C, 5);
    topo.connect(topo.add_host("b"), E, 5);
    topo.connect(topo.add_host("d"), D, 5);
    topo.validate();
  }

  /// Hand-encoded multicast route using the crosslink path (off the
  /// up/down spanning tree — the Figure 3 premise).
  EncodedMcastRoute mcast_route() const {
    const auto port = [&](NodeId from, NodeId to) {
      for (std::size_t p = 0; p < topo.node(from).ports.size(); ++p)
        if (topo.peer(topo.node(from).ports[p].link, from) == to)
          return static_cast<PortId>(p);
      throw std::logic_error("no such edge");
    };
    McastRouteTree branch1{
        port(A, B), {{port(B, E), {{port(E, topo.node_of_host(b)), {}}}}}};
    McastRouteTree branch2{
        port(A, C), {{port(C, D), {{port(D, topo.node_of_host(d)), {}}}}}};
    return EncodedMcastRoute::encode({branch1, branch2});
  }
};

std::shared_ptr<MessageContext> inject_figure3(Network& net, const Figure3& f) {
  // The unicast u->b goes first and wins the C->D link.
  Demand uni;
  uni.src = f.u;
  uni.dst = f.b;
  uni.length = 3000;
  net.inject(uni);

  // The multicast follows immediately on the hand-encoded crosslink tree.
  auto ctx = net.metrics().create_message(f.mx, 0, 2000, 2, net.sim().now());
  auto worm = std::make_shared<Worm>();
  worm->id = ctx->message_id;
  worm->kind = WormKind::kSwitchMcast;
  worm->src = f.mx;
  worm->payload = 2000;
  worm->header = 0;
  worm->mcast_route = f.mcast_route();
  worm->message = ctx;
  net.adapter(f.mx).send(worm);
  return ctx;
}

ExperimentConfig fig3_config(SwitchMcastScheme scheme) {
  ExperimentConfig cfg;
  cfg.switch_mcast.scheme = scheme;
  cfg.switch_mcast.idle_flush_threshold = 128;
  cfg.switch_mcast.interrupt_check = 32;
  cfg.routing.root = 0;  // root at A; D--E and A--C become crosslinks
  return cfg;
}

TEST(Figure3, IdleFillDeadlocksOffTheSpanningTree) {
  Figure3 f;
  Network net(f.topo, {}, fig3_config(SwitchMcastScheme::kIdleFill));
  auto ctx = inject_figure3(net, f);
  net.run_until(2'000'000);
  // Permanent deadlock: the simulation went quiescent with both the
  // multicast and the unicast undelivered.
  EXPECT_TRUE(net.sim().idle());
  EXPECT_LT(ctx->destinations_reached, 2);
  EXPECT_GT(net.metrics().outstanding(), 0);
}

TEST(Figure3, InterruptSchemeRecovers) {
  Figure3 f;
  Network net(f.topo, {},
              fig3_config(SwitchMcastScheme::kInterrupt));
  auto ctx = inject_figure3(net, f);
  net.run_until(2'000'000);
  EXPECT_EQ(ctx->destinations_reached, 2);
  EXPECT_EQ(net.metrics().outstanding(), 0);
  // Recovery happened by fragmenting: the blocked-branch interrupt ended
  // the first fragment, releasing E->b for the unicast.
  EXPECT_GT(net.switch_mcast_engine().fragments_sent(), 2);
}

TEST(Figure3, FlushUnicastSchemeRecovers) {
  Figure3 f;
  Network net(f.topo, {},
              fig3_config(SwitchMcastScheme::kFlushUnicast));
  auto ctx = inject_figure3(net, f);
  net.run_until(2'000'000);
  EXPECT_EQ(ctx->destinations_reached, 2);
  EXPECT_EQ(net.metrics().outstanding(), 0);
  // Recovery happened by flushing the unicast and retransmitting it.
  EXPECT_GE(net.switch_mcast_engine().unicasts_flushed(), 1);
  EXPECT_GE(net.metrics().retransmits(), 1);
}

}  // namespace
}  // namespace wormcast
