# Empty compiler generated dependencies file for ablation_switch_mcast.
# This may be replaced when dependencies are built.
