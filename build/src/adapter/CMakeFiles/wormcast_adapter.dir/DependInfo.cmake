
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adapter/buffer_pool.cpp" "src/adapter/CMakeFiles/wormcast_adapter.dir/buffer_pool.cpp.o" "gcc" "src/adapter/CMakeFiles/wormcast_adapter.dir/buffer_pool.cpp.o.d"
  "/root/repo/src/adapter/host_adapter.cpp" "src/adapter/CMakeFiles/wormcast_adapter.dir/host_adapter.cpp.o" "gcc" "src/adapter/CMakeFiles/wormcast_adapter.dir/host_adapter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/wormcast_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wormcast_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
