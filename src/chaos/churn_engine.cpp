#include "chaos/churn_engine.h"

#include <utility>

namespace wormcast {

ChurnEngine::ChurnEngine(Network& net, std::vector<GroupId> groups,
                         ChurnConfig config, RandomStream rng)
    : net_(net),
      groups_(std::move(groups)),
      config_(config),
      rng_(std::move(rng)) {}

void ChurnEngine::start() {
  if (config_.mean_gap <= 0 || groups_.empty() ||
      config_.until <= config_.from)
    return;
  const Time first =
      config_.from + rng_.exp_interval(static_cast<double>(config_.mean_gap));
  net_.sim().at(first, [this] { tick(); });
}

void ChurnEngine::tick() {
  if (net_.sim().now() >= config_.until) return;
  const GroupId g = rng_.pick(groups_);
  // Draw both decisions every tick so the stream consumed is independent
  // of which branch ends up eligible (steadier sequences under replay).
  const bool leave = rng_.chance(config_.leave_bias);
  if (leave) {
    issue_leave(g);
  } else {
    issue_join(g);
  }
  net_.sim().after(rng_.exp_interval(static_cast<double>(config_.mean_gap)),
                   [this] { tick(); });
}

void ChurnEngine::issue_leave(GroupId g) {
  const CircuitTable& circuit = net_.tables().circuit(g);
  if (circuit.size() <= config_.min_members) return;
  std::vector<HostId> eligible;
  for (const HostId h : circuit.order())
    if (!net_.host_removed(h) && !net_.faults().host_dead(h))
      eligible.push_back(h);
  if (static_cast<int>(eligible.size()) <= config_.min_members) return;
  const HostId h = rng_.pick(eligible);
  net_.request_leave(g, h, net_.sim().now());
  parked_[g].push_back(h);
  ++ops_issued_;
}

void ChurnEngine::issue_join(GroupId g) {
  std::vector<HostId>& parked = parked_[g];
  // Crashed hosts never come back; purge them from the rejoin pool.
  std::erase_if(parked, [this](HostId h) {
    return net_.host_removed(h) || net_.faults().host_dead(h);
  });
  HostId h = kNoHost;
  if (!parked.empty() && rng_.chance(config_.rejoin_bias)) {
    const auto idx = static_cast<std::size_t>(
        rng_.keyed_uniform(0, static_cast<std::int64_t>(parked.size()) - 1,
                           0xC0FFEEull, static_cast<std::uint64_t>(g),
                           static_cast<std::uint64_t>(parked.size())));
    h = parked[idx];
    parked.erase(parked.begin() + static_cast<std::ptrdiff_t>(idx));
  } else {
    std::vector<HostId> outsiders;
    for (HostId cand = 0; cand < net_.num_hosts(); ++cand)
      if (!net_.tables().is_member(g, cand) && !net_.host_removed(cand) &&
          !net_.faults().host_dead(cand))
        outsiders.push_back(cand);
    if (outsiders.empty()) return;
    h = rng_.pick(outsiders);
  }
  net_.request_join(g, h, net_.sim().now());
  ++ops_issued_;
}

}  // namespace wormcast
