// Shared harness for the Section 8.2 measurement reproduction
// (Figures 12 and 13): a simulated 4-switch / 8-host Myrinet running the
// Hamiltonian-circuit implementation *as deployed* — store-and-forward at
// every host, no reservation protocol (worms that do not fit in the input
// buffer are silently dropped), retransmission disabled.
//
// Calibration: the measured single-sender curve saturates near 120 Mb/s at
// 8 KB packets on 70 MHz SPARCstation 5 hosts. At 640 Mb/s line rate the
// per-packet adapter/driver processing cost that produces that curve is
// ~35,000 byte-times (~440 us), which also reproduces the ~20 Mb/s point
// at 1 KB. We model it as the adapter's per-worm transmit overhead.
#pragma once

#include <cstdint>
#include <string>

#include "bench_util.h"
#include "core/network.h"
#include "net/topologies.h"
#include "traffic/groups.h"

namespace wormcast::bench {

inline constexpr Time kLanaiPacketOverhead = 35'000;  // byte-times (~440 us)
inline constexpr std::int64_t kLanaiBufferBytes = 25 * 1024;  // Section 4

/// Bytes/byte-time -> Mb/s at Myrinet's 640 Mb/s line rate.
inline double to_mbps(double bytes_per_bt) { return bytes_per_bt * 640.0; }

struct TestbedResult {
  double throughput_mbps = 0.0;  // received payload rate per host
  double loss_rate = 0.0;        // input-buffer drops / arrivals, per host
  // Simulator hot-path counters (bench/sim_hotpath.cpp).
  std::int64_t events_dispatched = 0;
  std::int64_t event_queue_peak = 0;
  std::int64_t bytes_on_wire = 0;  // bytes delivered across every channel
  // Flight-recorder stats (zero when tracing was off).
  std::int64_t trace_events = 0;   // total recorded (including overwritten)
  std::int64_t trace_dropped = 0;  // overwritten by ring wrap
  // Uniform counter dump for JsonBench::set_counters.
  std::vector<std::pair<std::string, double>> counters;
};

/// Runs the testbed with `senders` hosts multicasting `packet_size`-byte
/// packets as fast as the adapter accepts them, for `span` byte-times.
/// `burst_channels` toggles the channel burst fast path (results are
/// identical either way; the hot-path bench times both). With `tracing`
/// on (or a non-empty `trace_out`) the flight recorder runs for the whole
/// span with a ring of `trace_cap` events (--trace-cap; the default ring
/// drops tens of thousands of events on a full fig12 run — size it to the
/// span when the whole flight history matters); `trace_out` additionally
/// exports Chrome trace-event JSON.
inline TestbedResult run_testbed(int senders, std::int64_t packet_size,
                                 Time span, bool burst_channels = true,
                                 bool tracing = false,
                                 const std::string& trace_out = {},
                                 std::size_t trace_cap =
                                     Tracer::kDefaultCapacity,
                                 CheckCollector* checks = nullptr,
                                 std::size_t check_slot = 0,
                                 std::string check_label = {}) {
  ExperimentConfig cfg;
  cfg.fabric.burst_channels = burst_channels;
  cfg.protocol.scheme = Scheme::kHamiltonianSF;
  cfg.protocol.reservation = false;   // the Section 8 implementation
  cfg.protocol.buffer_classes = false;
  cfg.protocol.pool_bytes = kLanaiBufferBytes;
  // The control program manages fixed-size receive buffers rather than a
  // byte-exact pool: a small packet still occupies a whole slot.
  cfg.protocol.input_slot_bytes = 4 * 1024;
  cfg.adapter.tx_overhead = kLanaiPacketOverhead;
  cfg.traffic.offered_load = 1e-9;  // generator idle; we inject directly

  auto group = make_full_group(8);
  Network net(make_myrinet_testbed(), {group}, cfg);
  const bool checking = checks != nullptr && checks->enabled();
  if (tracing || checking || !trace_out.empty()) net.enable_tracing(trace_cap);

  // Saturating applications: top up each sender whenever its adapter's
  // transmit queue has drained ("sent as many packets as possible").
  const Time poll = 512;
  for (HostId h = 0; h < senders; ++h) {
    auto pump = std::make_shared<std::function<void()>>();
    *pump = [&net, h, packet_size, span, poll, pump]() {
      if (net.sim().now() >= span) return;
      // Send the next packet as soon as the previous own packet has left
      // the card (the host send buffer frees); own packets then compete
      // with forwarded traffic for the adapter engine, which is what
      // overflows the input buffer in the all-send case.
      if (net.adapter(h).queued_own_originations() == 0) {
        Demand d;
        d.src = h;
        d.multicast = true;
        d.group = 0;
        d.length = packet_size;
        net.inject(d);
      }
      net.sim().after(poll, *pump);
    };
    net.sim().after(poll, *pump);
  }

  // Bounded run (run_until below), so the watchdog is safe to arm: a
  // wedged configuration explains itself instead of burning the span.
  arm_watchdog(net, 200'000);

  const Time warmup = span / 5;
  net.metrics().set_window_start(warmup);
  std::vector<std::int64_t> rx_at_warmup(8, 0);
  std::vector<std::int64_t> drop_at_warmup(8, 0);
  std::vector<std::int64_t> recv_at_warmup(8, 0);
  net.sim().at(warmup, [&] {
    for (HostId h = 0; h < 8; ++h) {
      rx_at_warmup[h] = net.adapter(h).payload_bytes_received();
      drop_at_warmup[h] = net.adapter(h).worms_dropped();
      recv_at_warmup[h] = net.adapter(h).worms_received();
    }
  });
  net.run_until(span);
  if (checking) checks->collect(check_slot, net, std::move(check_label));

  TestbedResult out;
  double rx_total = 0.0;
  double drops = 0.0;
  double arrivals = 0.0;
  int receivers = 0;
  for (HostId h = 0; h < 8; ++h) {
    const double rx = static_cast<double>(
        net.adapter(h).payload_bytes_received() - rx_at_warmup[h]);
    const double dr =
        static_cast<double>(net.adapter(h).worms_dropped() - drop_at_warmup[h]);
    const double ac = static_cast<double>(net.adapter(h).worms_received() -
                                          recv_at_warmup[h]);
    // In the single-sender case the sender itself receives nothing; average
    // over the hosts that are actual receivers, as the paper does.
    if (senders == 1 && h == 0) continue;
    ++receivers;
    rx_total += rx;
    drops += dr;
    arrivals += dr + ac;
  }
  const double window = static_cast<double>(span - warmup);
  out.throughput_mbps = to_mbps(rx_total / window / receivers);
  out.loss_rate = arrivals > 0.0 ? drops / arrivals : 0.0;
  out.events_dispatched = net.sim().events_dispatched();
  out.event_queue_peak = net.sim().event_queue_peak();
  out.bytes_on_wire = net.fabric().fabric_bytes_sent();
  out.trace_events = net.sim().tracer().recorded();
  out.trace_dropped = net.sim().tracer().dropped();
  CounterRegistry reg;
  net.register_counters(reg);
  out.counters = reg.snapshot();
  if (!trace_out.empty()) {
    if (net.write_trace(trace_out))
      std::fprintf(stderr, "# wrote %s (%lld events)\n", trace_out.c_str(),
                   static_cast<long long>(out.trace_events));
    else
      std::fprintf(stderr, "# could not write %s\n", trace_out.c_str());
  }
  return out;
}

}  // namespace wormcast::bench
