// The unit of transfer in a wormhole network.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "net/source_route.h"
#include "sim/types.h"

namespace wormcast {

/// What a worm carries. Control worms (ACK/NACK) are tiny unicast worms
/// used by the host-adapter implicit-reservation protocol (Section 4).
enum class WormKind : std::uint8_t {
  kData,         // unicast payload, or one hop of a host-adapter multicast
  kAck,          // reservation accepted by the successor adapter
  kNack,         // reservation refused; sender retransmits after timeout
  kSwitchMcast,  // switch-level multicast worm (Section 3; tree-encoded route)
  kProbe,        // failure-detector liveness probe (crash-stop detection)
  kProbeAck      // probe response; receipt refreshes the sender's suspicion clock
};

/// Control operations of the [VLB96] centralized credit scheme.
enum class CreditOp : std::uint8_t {
  kNone,     // an ordinary worm
  kRequest,  // source -> manager: credits for one multicast, please
  kGrant,    // manager -> source: go ahead (sequenced)
  kToken,    // the circulating credit-gathering token
};

/// Multicast metadata carried in the worm header by the host-adapter
/// schemes (Sections 4-6).
struct McastHeader {
  GroupId group = kNoGroup;
  /// Remaining retransmissions on the Hamiltonian circuit; the originator
  /// initializes it and each member decrements it (Section 5).
  int hops_remaining = 0;
  /// Buffer class to reserve at the next adapter: 0 before the host-ID
  /// order reversal, 1 after (Section 4, Figure 7).
  int buffer_class = 0;
  /// Identifies the logical multicast message across all of its hop copies.
  std::uint64_t message_id = 0;
  /// Host that created the logical message.
  HostId origin = kNoHost;
  /// Sequence number stamped by the serializing host when total ordering is
  /// enabled (lowest-ID member on the circuit; root on the tree).
  std::int64_t seq = -1;
  /// True while the message is being relayed to the serializer (lowest-ID /
  /// root) and the multicast proper has not started yet.
  bool relay_phase = false;
  /// Credit-scheme control operation, if any.
  CreditOp credit = CreditOp::kNone;
};

/// Shared bookkeeping for one logical message (unicast or multicast),
/// common to every hop copy; the metric collectors hang observations off
/// this. Copies hold it by shared_ptr.
struct MessageContext {
  std::uint64_t message_id = 0;
  HostId origin = kNoHost;
  GroupId group = kNoGroup;  // kNoGroup for unicast
  /// Destination of a plain unicast (kNoHost for multicasts); lets the
  /// repair layer abandon unicasts addressed to a crash-stopped host.
  HostId unicast_dst = kNoHost;
  Time created_at = 0;       // when the application generated the message
  std::int64_t payload = 0;
  int destinations_total = 0;
  int destinations_reached = 0;
};

/// One worm on the wire: a single fabric traversal from a source adapter to
/// a destination adapter (host-adapter multicasting re-wraps the payload in
/// a fresh worm for each hop of the circuit/tree).
///
/// Wire-length accounting: at injection the worm occupies
///   route bytes + header bytes + payload + 1 trailer (checksum)
/// bytes on the link; every switch strips one route byte and appends a
/// recomputed checksum, for a net loss of one byte per hop (Section 2).
struct Worm {
  WormId id = 0;
  WormKind kind = WormKind::kData;
  HostId src = kNoHost;
  HostId dst = kNoHost;  // for kSwitchMcast this is kNoHost (tree route)

  std::int64_t payload = 0;  // application bytes
  std::int64_t header = 0;   // protocol header bytes beyond the route

  SourceRoute route;               // unicast path (kData/kAck/kNack)
  EncodedMcastRoute mcast_route;   // tree route (kSwitchMcast only)
  std::size_t route_offset = 0;    // next route byte to consume (unicast)

  /// Switch-level *broadcast* (Section 3, last paragraph): the worm climbs
  /// `route` to the up/down root, then a broadcast marker makes every
  /// switch flood it down the spanning tree's down links.
  bool broadcast_flood = false;

  /// Set when a unicast worm has been flushed by a multicast-IDLE port
  /// (Section 3, scheme (c)): every holder discards its bytes and the
  /// source retransmits after a random timeout.
  bool flushed = false;

  /// Set by the fault injector when a link killed this worm mid-flight:
  /// the channel synthesized the tail early, so fewer than the declared
  /// wire-length bytes will arrive. Receivers detect the shortfall, discard
  /// the stub, and rely on the sender's ACK timeout to retransmit.
  bool truncated = false;

  std::optional<McastHeader> mcast;
  std::shared_ptr<MessageContext> message;
  /// The credit-gathering token's per-host collected counts (the token's
  /// "payload"; hosts add their freed credits as it passes).
  std::shared_ptr<std::vector<std::int64_t>> token_counts;

  Time created_at = 0;   // logical message creation time
  Time injected_at = 0;  // when this copy's head entered the fabric

  /// Restores the just-constructed state while keeping the route buffers'
  /// capacities, so RecyclePool<Worm> can hand this object out again
  /// without reallocating (see sim/arena.h).
  void recycle() {
    id = 0;
    kind = WormKind::kData;
    src = kNoHost;
    dst = kNoHost;
    payload = 0;
    header = 0;
    route.clear();
    mcast_route.clear();
    route_offset = 0;
    broadcast_flood = false;
    flushed = false;
    truncated = false;
    mcast.reset();
    message.reset();
    token_counts.reset();
    created_at = 0;
    injected_at = 0;
  }

  /// Wire length of this copy at injection (before any stripping).
  /// Broadcast floods carry a unicast climb route plus one broadcast
  /// marker byte consumed at the flood point.
  [[nodiscard]] std::int64_t initial_wire_length() const {
    std::int64_t route_bytes;
    if (kind == WormKind::kSwitchMcast)
      route_bytes = broadcast_flood
                        ? static_cast<std::int64_t>(route.size()) + 1
                        : static_cast<std::int64_t>(mcast_route.size_bytes());
    else
      route_bytes = static_cast<std::int64_t>(route.size());
    return route_bytes + header + payload + 1;
  }
};

using WormPtr = std::shared_ptr<Worm>;

}  // namespace wormcast
