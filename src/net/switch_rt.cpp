#include "net/switch_rt.h"

#include <cassert>
#include <stdexcept>

#include "net/switch_mcast.h"
#include "net/topology.h"

namespace wormcast {

InPort::InPort(SwitchRt& sw, PortId port) : sw_(sw), port_(port) {}

void InPort::on_head(const WormPtr& worm, std::int64_t wire_len) {
  assert(wire_len >= 2 && "worm must carry at least payload + trailer");
  rx_queue_.push_back(RxWorm{worm, wire_len, 1, false});
  ++buffered_;
  if (buffered_ > sw_.slack_capacity(port_)) sw_.note_overflow();
  check_stop();
  if (rx_queue_.size() == 1) begin_routing();
}

void InPort::on_body(bool tail) {
  assert(!rx_queue_.empty());
  RxWorm& rx = rx_queue_.back();
  ++rx.received;
  if (tail) rx.tail_seen = true;
  if (rx.discard) {
    // Flushed worm: swallow the byte. When fully drained and it is still
    // the front, retire it.
    if (tail && &rx == &rx_queue_.front()) {
      rx_queue_.pop_front();
      if (!rx_queue_.empty()) begin_routing();
    }
    return;
  }
  ++buffered_;
  if (buffered_ > sw_.slack_capacity(port_)) sw_.note_overflow();
  check_stop();
  if (connected_ && &rx == &rx_queue_.front()) {
    sw_.out_port(out_port_).channel->kick();
  } else if (mcast_active_ && &rx == &rx_queue_.front()) {
    sw_.mcast_engine()->on_input_bytes(*this);
  }
}

void InPort::begin_routing() {
  assert(!rx_queue_.empty() && !rx_queue_.front().routed);
  sw_.sim().after(sw_.config().routing_latency, [this] { do_route(); });
}

void InPort::do_route() {
  assert(!rx_queue_.empty());
  RxWorm& front = rx_queue_.front();
  assert(!front.routed);
  front.routed = true;
  // The route byte is consumed (stripped) by the routing decision.
  --buffered_;
  after_byte_removed();

  if (front.worm->kind == WormKind::kSwitchMcast &&
      front.worm->route_offset >= front.worm->route.size()) {
    // Tree-encoded multicast, or a broadcast worm that has finished its
    // climb to the flood point: hand over to the multicast engine.
    McastEngine* engine = sw_.mcast_engine();
    if (engine == nullptr)
      throw std::logic_error("switch-level multicast worm but no engine installed");
    mcast_active_ = true;
    engine->start(*this);
    return;
  }

  // Unicast forwarding (also the climb phase of a broadcast worm).
  const SourceRoute& route = front.worm->route;
  assert(front.worm->route_offset < route.size() && "source route exhausted");
  const PortId out = route.at(front.worm->route_offset++);
  assert(out >= 0 && out < static_cast<PortId>(sw_.n_ports()));
  sw_.request_output(*this, out);
}

bool InPort::byte_available() const {
  if (!connected_ || rx_queue_.empty()) return false;
  return front_available() > 0;
}

std::int64_t InPort::front_available() const {
  const RxWorm& front = rx_queue_.front();
  return (front.received - 1) - forwarded_;
}

TxByte InPort::take_byte() {
  assert(byte_available());
  RxWorm& front = rx_queue_.front();
  TxByte b;
  b.head = (forwarded_ == 0);
  if (b.head) {
    b.worm = front.worm;
    b.wire_len = front.wire_len - 1;  // route byte stripped at this switch
  }
  ++forwarded_;
  // Framing is tail-driven: the incoming tail symbol is authoritative (the
  // declared wire length is advisory — scheme (b) fragments end early).
  b.tail = front.tail_seen && (forwarded_ == front.received - 1);
  --buffered_;
  after_byte_removed();
  sw_.out_port(out_port_).last_data_byte = sw_.sim().now();
  return b;
}

void InPort::on_tail_sent() {
  assert(connected_ && !rx_queue_.empty());
  assert(rx_queue_.front().tail_seen);
  rx_queue_.pop_front();
  connected_ = false;
  const PortId done = out_port_;
  out_port_ = kNoPort;
  forwarded_ = 0;
  sw_.release_output(done);
  if (!rx_queue_.empty()) begin_routing();
}

void InPort::granted(PortId out_port) {
  assert(!connected_);
  connected_ = true;
  out_port_ = out_port;
  forwarded_ = 0;
}

void InPort::mcast_consume() {
  --buffered_;
  after_byte_removed();
}

void InPort::flush_front() {
  assert(!rx_queue_.empty());
  RxWorm& front = rx_queue_.front();
  assert(front.routed && !connected_ && !mcast_active_ &&
         "can only flush a worm waiting for an output");
  front.worm->flushed = true;
  // Drop the bytes already buffered; the rest of the worm drains out of the
  // network as it arrives and is swallowed byte by byte.
  const std::int64_t held = front.received - 1;  // route byte already consumed
  buffered_ -= held;
  after_byte_removed();
  if (front.tail_seen) {
    rx_queue_.pop_front();
    if (!rx_queue_.empty()) begin_routing();
  } else {
    front.discard = true;
  }
}

void InPort::mcast_finish_front() {
  assert(mcast_active_ && !rx_queue_.empty());
  rx_queue_.pop_front();
  mcast_active_ = false;
  if (!rx_queue_.empty()) begin_routing();
}

void InPort::after_byte_removed() {
  if (stop_sent_ && buffered_ <= sw_.config().go_threshold) {
    stop_sent_ = false;
    sw_.in_channel(port_)->signal_go();
  }
}

void InPort::check_stop() {
  if (!stop_sent_ && buffered_ >= sw_.config().stop_threshold) {
    stop_sent_ = true;
    sw_.in_channel(port_)->signal_stop();
  }
}

// --- SwitchRt ---------------------------------------------------------------

SwitchRt::SwitchRt(Simulator& sim, NodeId node, int n_ports, SwitchConfig config)
    : sim_(sim), node_(node), config_(config) {
  if (config_.go_threshold >= config_.stop_threshold)
    throw std::logic_error("GO threshold must be below STOP threshold");
  in_ports_.reserve(static_cast<std::size_t>(n_ports));
  for (PortId p = 0; p < n_ports; ++p)
    in_ports_.push_back(std::make_unique<InPort>(*this, p));
  out_ports_.resize(static_cast<std::size_t>(n_ports));
  in_channels_.resize(static_cast<std::size_t>(n_ports), nullptr);
}

SwitchRt::~SwitchRt() = default;

void SwitchRt::set_channels(PortId p, Channel* in, Channel* out) {
  in_channels_[p] = in;
  out_ports_[p].channel = out;
  in->set_sink(in_ports_[p].get());
}

RxSink* SwitchRt::sink(PortId p) { return in_ports_[p].get(); }

void SwitchRt::request_output(InPort& in, PortId out) {
  OutPort& op = out_ports_[out];
  if (!op.busy && !op.held_by_mcast) {
    op.busy = true;
    in.granted(out);
    op.channel->attach_feed(&in);
    return;
  }
  if (op.held_by_mcast && mcast_engine_ != nullptr &&
      mcast_engine_->maybe_flush_unicast(*this, in, out)) {
    return;  // the unicast was flushed; nothing to queue
  }
  op.waiters.push_back(&in);
}

void SwitchRt::grant_next(PortId out) {
  OutPort& op = out_ports_[out];
  if (op.busy || op.held_by_mcast) return;
  // Multicast branches re-acquire first (they resume an in-flight worm).
  if (!op.mcast_waiters.empty()) {
    auto claim = std::move(op.mcast_waiters.front());
    op.mcast_waiters.pop_front();
    op.held_by_mcast = true;
    claim();
    return;
  }
  if (op.waiters.empty()) return;
  InPort* next = op.waiters.front();
  op.waiters.pop_front();
  op.busy = true;
  next->granted(out);
  op.channel->attach_feed(next);
}

void SwitchRt::release_output(PortId out) {
  OutPort& op = out_ports_[out];
  assert(op.busy);
  op.busy = false;
  grant_next(out);
}

bool SwitchRt::claim_output_for_mcast(PortId out, std::function<void()> on_free) {
  OutPort& op = out_ports_[out];
  if (!op.busy && !op.held_by_mcast) {
    op.held_by_mcast = true;
    return true;
  }
  op.mcast_waiters.push_back(std::move(on_free));
  return false;
}

void SwitchRt::release_mcast_output(PortId out) {
  OutPort& op = out_ports_[out];
  assert(op.held_by_mcast);
  op.held_by_mcast = false;
  grant_next(out);
}

bool SwitchRt::cancel_request(InPort& in, PortId out) {
  auto& waiters = out_ports_[out].waiters;
  for (auto it = waiters.begin(); it != waiters.end(); ++it) {
    if (*it == &in) {
      waiters.erase(it);
      return true;
    }
  }
  return false;
}

std::int64_t SwitchRt::slack_capacity(PortId p) const {
  const Channel* in = in_channels_[p];
  const Time delay = in != nullptr ? in->delay() : kDefaultLinkDelay;
  return config_.stop_threshold + 2 * delay + 4;
}

}  // namespace wormcast
