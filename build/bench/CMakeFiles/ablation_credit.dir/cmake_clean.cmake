file(REMOVE_RECURSE
  "CMakeFiles/ablation_credit.dir/ablation_credit.cpp.o"
  "CMakeFiles/ablation_credit.dir/ablation_credit.cpp.o.d"
  "ablation_credit"
  "ablation_credit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_credit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
