// Multicast IP interoperation (Section 8.1).
//
// Class D (224.0.0.0/4) addresses map onto the 8-bit Myrinet multicast
// group space by taking the low eight bits; group 255 is the broadcast
// address. Several IP groups may share a Myrinet group (the receiving IP
// layer filters), so the fabric-level group must be the union of all IP
// groups with common low bits.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "sim/types.h"

namespace wormcast {

/// True for class D (multicast) IPv4 addresses: 224.0.0.0 - 239.255.255.255.
[[nodiscard]] constexpr bool is_class_d(std::uint32_t ip) {
  return (ip >> 28) == 0xE;
}

/// Maps a class D address to its Myrinet multicast group (the low 8 bits).
/// Throws std::invalid_argument for non-multicast addresses.
[[nodiscard]] inline GroupId myrinet_group_of(std::uint32_t class_d_ip) {
  if (!is_class_d(class_d_ip))
    throw std::invalid_argument("not a class D multicast address");
  return static_cast<GroupId>(class_d_ip & 0xFF);
}

/// True when two IP multicast groups collide onto one Myrinet group and
/// the receiving IP layers must filter.
[[nodiscard]] inline bool groups_collide(std::uint32_t ip_a, std::uint32_t ip_b) {
  return ip_a != ip_b && myrinet_group_of(ip_a) == myrinet_group_of(ip_b);
}

/// Builds a dotted-quad class D address helper for tests/examples.
[[nodiscard]] constexpr std::uint32_t ipv4(std::uint8_t a, std::uint8_t b,
                                           std::uint8_t c, std::uint8_t d) {
  return (static_cast<std::uint32_t>(a) << 24) |
         (static_cast<std::uint32_t>(b) << 16) |
         (static_cast<std::uint32_t>(c) << 8) | d;
}

}  // namespace wormcast
