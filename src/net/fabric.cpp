#include "net/fabric.h"

#include <cassert>

#include "net/switch_mcast.h"

namespace wormcast {

Fabric::Fabric(Simulator& sim, const Topology& topo, FabricConfig config,
               const ShardPlan* plan)
    : sim_(sim), topo_(topo), config_(config) {
  topo_.validate();
  // Every component is built on its owning executor's simulator: a channel
  // on its transmitter node's, a switch on its own node's. Without a plan
  // everything lands on `sim_` and the fabric is the classic single-queue
  // one, code path for code path.
  const auto exec_of = [&](NodeId n) {
    return plan != nullptr ? plan->node_exec[static_cast<std::size_t>(n)] : 0;
  };
  const auto sim_of = [&](NodeId n) -> Simulator& {
    return plan != nullptr
               ? *plan->sims[static_cast<std::size_t>(exec_of(n))]
               : sim_;
  };
  channels_.reserve(static_cast<std::size_t>(topo_.num_links()) * 2);
  for (LinkId l = 0; l < topo_.num_links(); ++l) {
    const TopoLink& lk = topo_.link(l);
    const Time d = lk.delay;
    channels_.push_back(std::make_unique<Channel>(sim_of(lk.node_a), d));
    channels_.push_back(std::make_unique<Channel>(sim_of(lk.node_b), d));
    const int ea = exec_of(lk.node_a);
    const int eb = exec_of(lk.node_b);
    if (ea != eb) {
      Channel& ab = *channels_[static_cast<std::size_t>(l) * 2];
      Channel& ba = *channels_[static_cast<std::size_t>(l) * 2 + 1];
      ab.set_cross_executor(plan->bus, ea, eb,
                            plan->sims[static_cast<std::size_t>(eb)]);
      ba.set_cross_executor(plan->bus, eb, ea,
                            plan->sims[static_cast<std::size_t>(ea)]);
    }
  }
  for (auto& ch : channels_) ch->set_burst_enabled(config_.burst_channels);
  // Trace track identity: every channel is named by its transmitter end
  // (node, port) — switch output ports and host uplinks alike.
  for (NodeId n = 0; n < topo_.num_nodes(); ++n) {
    const TopoNode& node = topo_.node(n);
    for (PortId p = 0; p < static_cast<PortId>(node.ports.size()); ++p)
      channel_from(node.ports[p].link, n).set_trace_id(n, p);
  }
  switches_.resize(static_cast<std::size_t>(topo_.num_nodes()));
  for (NodeId n = 0; n < topo_.num_nodes(); ++n) {
    const TopoNode& node = topo_.node(n);
    if (node.kind != NodeKind::kSwitch) continue;
    switches_[n] = std::make_unique<SwitchRt>(
        sim_of(n), n, static_cast<int>(node.ports.size()), config_.sw);
    for (PortId p = 0; p < static_cast<PortId>(node.ports.size()); ++p) {
      const LinkId l = node.ports[p].link;
      Channel& out = channel_from(l, n);
      Channel& in = channel_from(l, topo_.peer(l, n));
      switches_[n]->set_channels(p, &in, &out);
    }
  }
}

Fabric::~Fabric() = default;

Channel& Fabric::channel_from(LinkId l, NodeId from) {
  const TopoLink& lk = topo_.link(l);
  if (lk.node_a == from) return *channels_[static_cast<std::size_t>(l) * 2];
  assert(lk.node_b == from);
  return *channels_[static_cast<std::size_t>(l) * 2 + 1];
}

Channel& Fabric::host_tx_channel(HostId h) {
  const NodeId hn = topo_.node_of_host(h);
  return channel_from(topo_.node(hn).ports[0].link, hn);
}

Channel& Fabric::host_rx_channel(HostId h) {
  const NodeId hn = topo_.node_of_host(h);
  const LinkId l = topo_.node(hn).ports[0].link;
  return channel_from(l, topo_.peer(l, hn));
}

SwitchRt& Fabric::switch_at(NodeId node) {
  assert(switches_[node] != nullptr && "node is not a switch");
  return *switches_[node];
}

void Fabric::install_mcast_engine(McastEngine* engine) {
  for (auto& sw : switches_)
    if (sw) sw->set_mcast_engine(engine);
}

void Fabric::install_fault_injector(FaultInjector* faults) {
  for (auto& ch : channels_) ch->set_fault_injector(faults);
}

void Fabric::publish_cross_budgets() {
  for (auto& ch : channels_)
    if (ch->cross_executor()) ch->publish_rx_budget();
}

std::int64_t Fabric::total_overflows() const {
  std::int64_t total = 0;
  for (const auto& sw : switches_)
    if (sw) total += sw->overflows();
  return total;
}

std::int64_t Fabric::host_egress_bytes() const {
  std::int64_t total = 0;
  for (HostId h = 0; h < topo_.num_hosts(); ++h) {
    const NodeId hn = topo_.node_of_host(h);
    const LinkId l = topo_.node(hn).ports[0].link;
    const TopoLink& lk = topo_.link(l);
    const std::size_t idx =
        static_cast<std::size_t>(l) * 2 + (lk.node_a == hn ? 0 : 1);
    total += channels_[idx]->bytes_sent();
  }
  return total;
}

std::int64_t Fabric::node_egress_bytes(NodeId n) const {
  std::int64_t total = 0;
  const TopoNode& node = topo_.node(n);
  for (const TopoPort& p : node.ports) {
    const TopoLink& lk = topo_.link(p.link);
    const std::size_t idx =
        static_cast<std::size_t>(p.link) * 2 + (lk.node_a == n ? 0 : 1);
    total += channels_[idx]->bytes_sent();
  }
  return total;
}

std::int64_t Fabric::fabric_bytes_sent() const {
  std::int64_t total = 0;
  for (const auto& ch : channels_) total += ch->bytes_sent();
  return total;
}

std::int64_t Fabric::total_bytes_swallowed() const {
  std::int64_t total = 0;
  for (const auto& ch : channels_) total += ch->bytes_swallowed();
  return total;
}

std::size_t Fabric::heap_bytes_estimate() const {
  std::size_t bytes = sizeof(Fabric) +
                      channels_.capacity() * sizeof(std::unique_ptr<Channel>) +
                      switches_.capacity() * sizeof(std::unique_ptr<SwitchRt>);
  for (const auto& ch : channels_) bytes += ch->heap_bytes_estimate();
  for (const auto& sw : switches_)
    if (sw) bytes += sw->heap_bytes_estimate();
  return bytes;
}

}  // namespace wormcast
