// Google-benchmark microbenchmarks of the simulator's hot paths: event
// queue operations, byte-level channel throughput, up/down route
// computation, and multicast route encoding. Useful when tuning the
// engine; not part of the paper reproduction.
#include <benchmark/benchmark.h>

#include "core/network.h"
#include "net/mcast_route_builder.h"
#include "net/topologies.h"
#include "sim/event_queue.h"
#include "sim/random.h"

namespace wormcast {
namespace {

void BM_EventQueueScheduleDispatch(benchmark::State& state) {
  for (auto _ : state) {
    EventQueue q;
    int fired = 0;
    for (int i = 0; i < 1024; ++i)
      q.schedule(i % 97, [&fired] { ++fired; });
    while (!q.empty()) q.pop().action();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueScheduleDispatch);

void BM_EventQueueCancelHeavy(benchmark::State& state) {
  for (auto _ : state) {
    EventQueue q;
    std::vector<EventHandle> handles;
    handles.reserve(1024);
    for (int i = 0; i < 1024; ++i) handles.push_back(q.schedule(i, [] {}));
    for (std::size_t i = 0; i < handles.size(); i += 2) q.cancel(handles[i]);
    while (!q.empty()) q.pop().action();
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EventQueueCancelHeavy);

void BM_UpDownRouteComputation(benchmark::State& state) {
  const Topology topo = make_torus(8, 8);
  const UpDownRouting routing(topo);
  HostId src = 0;
  HostId dst = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing.route(src, dst));
    dst = static_cast<HostId>((dst + 7) % 64);
    if (dst == src) dst = static_cast<HostId>((dst + 1) % 64);
    src = static_cast<HostId>((src + 13) % 64);
    if (dst == src) src = static_cast<HostId>((src + 1) % 64);
  }
}
BENCHMARK(BM_UpDownRouteComputation);

void BM_McastRouteEncodeSplit(benchmark::State& state) {
  const Topology topo = make_torus(8, 8);
  UpDownOptions opts;
  opts.tree_links_only = true;
  const UpDownRouting routing(topo, opts);
  std::vector<HostId> dests;
  for (HostId h = 1; h < 64; h += 4) dests.push_back(h);
  const auto branches = build_mcast_branches(routing, 0, dests);
  for (auto _ : state) {
    const auto enc = EncodedMcastRoute::encode(branches);
    benchmark::DoNotOptimize(enc.split());
  }
}
BENCHMARK(BM_McastRouteEncodeSplit);

void BM_SimulatedByteThroughput(benchmark::State& state) {
  // End-to-end cost of simulating one payload byte across the full stack.
  for (auto _ : state) {
    state.PauseTiming();
    ExperimentConfig cfg;
    cfg.protocol.scheme = Scheme::kHamiltonianSF;
    Network net(make_line(3), {}, cfg);
    Demand d;
    d.src = 0;
    d.dst = 2;
    d.length = 16 * 1024;
    state.ResumeTiming();
    net.inject(d);
    net.run_to_quiescence();
    benchmark::DoNotOptimize(net.metrics().messages_completed());
  }
  state.SetBytesProcessed(state.iterations() * 16 * 1024);
}
BENCHMARK(BM_SimulatedByteThroughput)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wormcast

BENCHMARK_MAIN();
