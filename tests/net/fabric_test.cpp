#include "net/fabric.h"

#include <gtest/gtest.h>

#include "net/topologies.h"

namespace wormcast {
namespace {

TEST(Fabric, ChannelsAreDirectedPerLink) {
  Simulator sim;
  const Topology topo = make_line(2);
  Fabric fabric(sim, topo);
  const TopoLink& lk = topo.link(0);
  Channel& ab = fabric.channel_from(0, lk.node_a);
  Channel& ba = fabric.channel_from(0, lk.node_b);
  EXPECT_NE(&ab, &ba);
  EXPECT_EQ(ab.delay(), lk.delay);
}

TEST(Fabric, HostChannelsMatchAttachment) {
  Simulator sim;
  const Topology topo = make_star(3);
  Fabric fabric(sim, topo);
  for (HostId h = 0; h < 3; ++h) {
    Channel& tx = fabric.host_tx_channel(h);
    Channel& rx = fabric.host_rx_channel(h);
    EXPECT_NE(&tx, &rx);
    EXPECT_FALSE(tx.feed_attached());
  }
}

TEST(Fabric, SwitchAtRejectsHosts) {
  Simulator sim;
  const Topology topo = make_star(2);
  Fabric fabric(sim, topo);
  EXPECT_NO_THROW(fabric.switch_at(0));  // the hub
  // Host nodes have no switch runtime; accessing one is a programming
  // error caught by assert in debug — only verify the happy path here.
  SwitchRt& hub = fabric.switch_at(0);
  EXPECT_EQ(hub.n_ports(), 2);
}

TEST(Fabric, CountersStartAtZero) {
  Simulator sim;
  const Topology topo = make_torus(2, 2);
  Fabric fabric(sim, topo);
  EXPECT_EQ(fabric.total_overflows(), 0);
  EXPECT_EQ(fabric.fabric_bytes_sent(), 0);
  EXPECT_EQ(fabric.host_egress_bytes(), 0);
}

TEST(Fabric, ValidatesTopologyOnConstruction) {
  Simulator sim;
  Topology bad;
  bad.add_switch();
  bad.add_switch();  // disconnected
  EXPECT_THROW(Fabric(sim, bad), std::logic_error);
}

}  // namespace
}  // namespace wormcast
