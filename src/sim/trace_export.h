// Exporters for the wormtrace flight recorder.
//
// chrome_trace_json renders events as Chrome trace-event JSON: one thread
// ("track") per switch port / channel / adapter / host, paired events
// (worm head/tail, tx start/done, fragment open/close) as complete-event
// spans, everything else as thread-scoped instants. The output loads
// directly in Perfetto (ui.perfetto.dev) or chrome://tracing; byte-times
// are written as microseconds, so 1 us on screen = 1 byte-time.
#pragma once

#include <string>
#include <vector>

#include "sim/trace.h"

namespace wormcast {

/// Renders an event stream (oldest first, e.g. Tracer::snapshot()) as a
/// Chrome trace-event JSON document.
///
/// Spans whose closer never appeared — the worm was still in flight at the
/// recording horizon, or the ring overwrote the closer — are emitted with
/// an explicit `"unterminated": 1` arg instead of only a synthetic end
/// time, so consumers (and the wormcheck reconstructor) can tell "still in
/// flight" from "observed to finish".
[[nodiscard]] std::string chrome_trace_json(
    const std::vector<TraceEvent>& events);

/// One trace event as the human-readable line used by format_trace_tail
/// and by wormcheck violation reports: "t=<t> <track> <name> [worm=w] arg=a".
[[nodiscard]] std::string format_trace_line(const TraceEvent& e);

/// Writes the tracer's ring as Chrome trace JSON. Returns false (and says
/// why on stderr) when the file cannot be written.
bool write_chrome_trace(const Tracer& tracer, const std::string& path);

/// Human-readable dump of the last `last_n` ring events, one per line —
/// what the deadlock watchdog appends to debug_report so a stalled run
/// shows the decisions leading up to the wedge. Empty when nothing was
/// recorded.
[[nodiscard]] std::string format_trace_tail(const Tracer& tracer,
                                            std::size_t last_n = 64);

}  // namespace wormcast
