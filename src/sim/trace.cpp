#include "sim/trace.h"

#include <algorithm>

namespace wormcast {

const char* trace_event_name(TraceEventType type) {
  switch (type) {
    case TraceEventType::kChanStop: return "chan.stop";
    case TraceEventType::kChanGo: return "chan.go";
    case TraceEventType::kChanHead: return "worm";
    case TraceEventType::kChanTail: return "chan.tail";
    case TraceEventType::kChanBurst: return "chan.burst";
    case TraceEventType::kChanSwallow: return "chan.swallow";
    case TraceEventType::kArbGrant: return "arb.grant";
    case TraceEventType::kMcastHold: return "mcast.hold";
    case TraceEventType::kMcastFragOpen: return "mcast.fragment";
    case TraceEventType::kMcastFragClose: return "mcast.frag_close";
    case TraceEventType::kMcastIdleFlush: return "mcast.idle_flush";
    case TraceEventType::kMcastStart: return "mcast.connection";
    case TraceEventType::kMcastInterrupt: return "mcast.interrupt";
    case TraceEventType::kMcastFinish: return "mcast.finish";
    case TraceEventType::kAdpTxStart: return "adp.tx";
    case TraceEventType::kAdpTxDone: return "adp.tx_done";
    case TraceEventType::kAdpRxHead: return "adp.rx";
    case TraceEventType::kAdpRxDone: return "adp.rx_done";
    case TraceEventType::kAdpRxDrop: return "adp.rx_drop";
    case TraceEventType::kAdpRxTruncated: return "adp.rx_truncated";
    case TraceEventType::kProtoReserve: return "proto.reserve";
    case TraceEventType::kProtoAckSent: return "proto.ack";
    case TraceEventType::kProtoNackSent: return "proto.nack";
    case TraceEventType::kProtoAckTimeout: return "proto.ack_timeout";
    case TraceEventType::kProtoRetransmit: return "proto.retransmit";
    case TraceEventType::kProtoSendFailed: return "proto.send_failed";
    case TraceEventType::kProtoDuplicate: return "proto.duplicate";
    case TraceEventType::kProtoSuspect: return "proto.suspect";
    case TraceEventType::kProtoProbe: return "proto.probe";
    case TraceEventType::kProtoRepair: return "proto.repair";
    case TraceEventType::kProtoDeliver: return "proto.deliver";
    case TraceEventType::kProtoRelease: return "proto.release";
    case TraceEventType::kProtoCrash: return "proto.crash";
    case TraceEventType::kProtoJoinRequest: return "proto.join_req";
    case TraceEventType::kProtoJoinApplied: return "proto.join";
    case TraceEventType::kProtoJoinShed: return "proto.join_shed";
    case TraceEventType::kProtoLeave: return "proto.leave";
    case TraceEventType::kProtoRejoin: return "proto.rejoin";
    case TraceEventType::kProtoDedupReset: return "proto.dedup_reset";
  }
  return "unknown";
}

TraceTrack trace_track_of(TraceEventType type) {
  switch (type) {
    case TraceEventType::kChanStop:
    case TraceEventType::kChanGo:
    case TraceEventType::kChanHead:
    case TraceEventType::kChanTail:
    case TraceEventType::kChanBurst:
    case TraceEventType::kChanSwallow:
      return TraceTrack::kChannel;
    case TraceEventType::kArbGrant:
    case TraceEventType::kMcastHold:
    case TraceEventType::kMcastFragOpen:
    case TraceEventType::kMcastFragClose:
    case TraceEventType::kMcastIdleFlush:
      return TraceTrack::kSwitchOut;
    case TraceEventType::kMcastStart:
    case TraceEventType::kMcastInterrupt:
    case TraceEventType::kMcastFinish:
      return TraceTrack::kSwitchIn;
    case TraceEventType::kAdpTxStart:
    case TraceEventType::kAdpTxDone:
    case TraceEventType::kAdpRxHead:
    case TraceEventType::kAdpRxDone:
    case TraceEventType::kAdpRxDrop:
    case TraceEventType::kAdpRxTruncated:
      return TraceTrack::kAdapter;
    case TraceEventType::kProtoReserve:
    case TraceEventType::kProtoAckSent:
    case TraceEventType::kProtoNackSent:
    case TraceEventType::kProtoAckTimeout:
    case TraceEventType::kProtoRetransmit:
    case TraceEventType::kProtoSendFailed:
    case TraceEventType::kProtoDuplicate:
    case TraceEventType::kProtoSuspect:
    case TraceEventType::kProtoProbe:
    case TraceEventType::kProtoRepair:
    case TraceEventType::kProtoDeliver:
    case TraceEventType::kProtoRelease:
    case TraceEventType::kProtoCrash:
    case TraceEventType::kProtoJoinRequest:
    case TraceEventType::kProtoJoinApplied:
    case TraceEventType::kProtoJoinShed:
    case TraceEventType::kProtoLeave:
    case TraceEventType::kProtoRejoin:
    case TraceEventType::kProtoDedupReset:
      return TraceTrack::kHost;
  }
  return TraceTrack::kHost;
}

void Tracer::enable(std::size_t capacity) {
  std::size_t cap = 16;
  while (cap < capacity) cap <<= 1;
  if (cap != ring_.size()) {
    ring_.assign(cap, TraceEvent{});
    total_ = 0;
  }
  mask_ = cap - 1;
  enabled_ = true;
}

std::vector<TraceEvent> Tracer::snapshot(std::size_t last_n) const {
  const auto held = static_cast<std::size_t>(
      std::min<std::int64_t>(total_, static_cast<std::int64_t>(ring_.size())));
  const std::size_t n = std::min(last_n, held);
  std::vector<TraceEvent> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t idx =
        (static_cast<std::size_t>(total_) - n + i) & mask_;
    out.push_back(ring_[idx]);
  }
  return out;
}

}  // namespace wormcast
