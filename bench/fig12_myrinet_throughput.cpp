// Figure 12: measured throughput (per host) vs packet size for a
// Hamiltonian circuit of eight hosts on a four-switch Myrinet.
//
// Upper curve: a single host multicasting to the other seven members;
// lower curve: all eight hosts multicasting simultaneously (received data
// rate per host, lost packets excluded). Expected shape (paper):
// throughput grows with packet size as the fixed per-packet adapter cost
// amortizes — roughly 20 Mb/s at 1 KB to ~120 Mb/s at 8 KB for the single
// sender; the all-send curve sits below it, and the gap widens as input-
// buffer losses grow (Figure 13). No loss occurs in the single-sender case.
//
// The sweep runs (packet size, sender mode) points on a SweepRunner pool
// (--jobs N); each point is an independent Network, and the CSV/JSON rows
// are bit-identical at any job count (the CI determinism gate diffs
// --jobs 1 against --jobs 4).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "myrinet_testbed.h"

using namespace wormcast;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  const Time span = args.quick ? 3'000'000 : 12'000'000;

  std::printf("# Figure 12: per-host throughput (Mb/s) vs packet size, "
              "8-host Hamiltonian circuit on 4-switch Myrinet\n");
  bench::print_header("packet_bytes", {"single_sender", "all_send_receive"});
  const std::vector<std::int64_t> sizes =
      args.quick ? std::vector<std::int64_t>{1024, 4096, 8192}
                 : std::vector<std::int64_t>{1024, 2048, 3072, 4096, 5120,
                                             6144, 7168, 8192};

  // One sweep point per (size, mode): twice the parallel width of a
  // per-size point, and the single/all runs of one size need not wait on
  // each other. Even index = single sender, odd = all-send.
  const std::size_t n_points = sizes.size() * 2;
  bench::JsonBench json("fig12_myrinet_throughput");
  json.resize_rows(sizes.size());
  bench::CheckCollector checks(args.check);
  checks.resize(n_points);
  const harness::WallTimer sweep;
  harness::SweepRunner pool(args.jobs);
  std::vector<bench::TestbedResult> results(n_points);
  const auto walls = pool.run_indexed(n_points, [&](std::size_t i) {
    const std::int64_t size = sizes[i / 2];
    const bool single = (i % 2) == 0;
    // --trace-out captures the first-size single-sender run: small enough
    // to load in Perfetto, yet it exercises every layer end to end.
    const bool traced = single && i == 0 && !args.trace_out.empty();
    char label[64];
    std::snprintf(label, sizeof label, "packet=%lld mode=%s",
                  static_cast<long long>(size), single ? "single" : "all");
    results[i] = bench::run_testbed(single ? 1 : 8, size, span,
                                    /*burst=*/true, /*tracing=*/false,
                                    traced ? args.trace_out : std::string(),
                                    args.trace_cap, &checks, i, label,
                                    args.shards);
  });

  for (std::size_t s = 0; s < sizes.size(); ++s) {
    const auto& single = results[s * 2];
    const auto& all = results[s * 2 + 1];
    std::printf("%lld,%.1f,%.1f\n", static_cast<long long>(sizes[s]),
                single.throughput_mbps, all.throughput_mbps);
    json.set_row(s, {{"packet_bytes", static_cast<double>(sizes[s])},
                     {"single_sender", single.throughput_mbps},
                     {"all_send_receive", all.throughput_mbps},
                     {"all_send_loss_rate", all.loss_rate}});
  }
  std::fflush(stdout);
  bench::stamp_sweep_meta(json, pool, walls, sweep);
  const int check_rc = checks.finalize(&json);
  json.write();
  return check_rc;
}
