#include "core/host_protocol.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "sim/trace.h"

namespace wormcast {

namespace {
/// ACK/NACK and transmit-completion bookkeeping is keyed by
/// (message, successor).
std::uint64_t send_key(std::uint64_t message_id, HostId to) {
  return message_id * 1000003ULL + static_cast<std::uint64_t>(to);
}
}  // namespace

bool HostProtocol::is_confirmation(const McastHeader& h) const {
  // A circuit worm that returned to its originator with no hop budget left
  // is the delivery confirmation (Section 5). On a serialized circuit or a
  // tree the originator's own copy can arrive mid-structure and must still
  // be forwarded.
  return scheme_uses_circuit(config_.scheme) && h.origin == host_ &&
         !h.relay_phase && h.hops_remaining <= 1;
}

HostProtocol::HostProtocol(Simulator& sim, HostAdapter& adapter,
                           const UpDownRouting& routing,
                           const GroupTables& tables, Metrics& metrics,
                           const ProtocolConfig& config, RandomStream rng,
                           int n_hosts)
    : sim_(sim),
      adapter_(adapter),
      routing_(routing),
      tables_(tables),
      metrics_(metrics),
      config_(config),
      rng_(std::move(rng)),
      host_(adapter.host()),
      pool_(config.buffer_classes ? BufferPool(config.pool_bytes, 2)
                                  : BufferPool::unpartitioned(config.pool_bytes)),
      n_hosts_(n_hosts) {
  adapter_.set_client(this);
  if (config_.scheme == Scheme::kCentralizedCredit &&
      host_ == config_.credit_manager) {
    credit_mgr_ = std::make_unique<CreditManager>();
    credit_mgr_->credits.assign(static_cast<std::size_t>(n_hosts_),
                                config_.credits_per_host);
  }
}

// --- origination -------------------------------------------------------------

void HostProtocol::originate(const Demand& demand) {
  if (dead_) return;  // a crashed application generates nothing
  maybe_arm_prober();
  if (demand.multicast)
    originate_multicast(demand);
  else
    originate_unicast(demand);
}

void HostProtocol::on_unicast_flushed(const WormPtr& worm) {
  const Time backoff =
      config_.retry_backoff +
      (config_.retry_jitter > 0 ? rng_.uniform(0, config_.retry_jitter) : 0);
  sim_.after(backoff, [this, worm] {
    if (dead_) return;
    if (removed_peers_.count(worm->dst) > 0) {
      metrics_.abandon_message(worm->message);
      return;
    }
    metrics_.on_retransmit();
    auto copy = new_worm();
    copy->id = worm->id;
    copy->kind = WormKind::kData;
    copy->src = host_;
    copy->dst = worm->dst;
    copy->payload = worm->payload;
    copy->header = worm->header;
    routing_.route_into(host_, worm->dst, copy->route);
    copy->mcast = worm->mcast;
    copy->message = worm->message;
    copy->created_at = worm->created_at;
    adapter_.send(std::move(copy));
  });
}

void HostProtocol::originate_unicast(const Demand& d) {
  auto ctx = metrics_.create_message(host_, kNoGroup, d.length, 1, sim_.now());
  ctx->unicast_dst = d.dst;
  if (removed_peers_.count(d.dst) > 0) {
    // The application addressed a host the network already declared dead.
    metrics_.abandon_message(ctx);
    return;
  }
  auto worm = new_worm();
  worm->kind = WormKind::kData;
  worm->src = host_;
  worm->dst = d.dst;
  worm->payload = d.length;
  routing_.route_into(host_, d.dst, worm->route);
  worm->message = ctx;
  worm->created_at = ctx->created_at;
  worm->id = ctx->message_id;
  adapter_.send(std::move(worm));
}

void HostProtocol::originate_multicast(const Demand& d) {
  const CircuitTable& circuit = tables_.circuit(d.group);
  // Under churn the static traffic generator keeps picking hosts that have
  // since left the group; a departed member simply has nothing to send.
  if (!circuit.contains(host_)) return;
  const int members = circuit.size();
  const int dests = members - 1;
  auto ctx =
      metrics_.create_message(host_, d.group, d.length, dests, sim_.now());
  if (dests == 0) return;

  if (config_.scheme == Scheme::kRepeatedUnicast) {
    // Myrinet's stock behaviour: one plain unicast per member, back to back
    // out of the source adapter.
    for (const HostId m : circuit.order()) {
      if (m == host_) continue;
      auto worm = new_worm();
      worm->kind = WormKind::kData;
      worm->src = host_;
      worm->dst = m;
      worm->payload = d.length;
      routing_.route_into(host_, m, worm->route);
      worm->message = ctx;
      worm->created_at = ctx->created_at;
      worm->id = ctx->message_id;
      adapter_.send(std::move(worm));
    }
    return;
  }

  auto task = std::make_shared<Task>();
  task->ctx = ctx;
  task->group = d.group;
  task->message_id = ctx->message_id;
  task->origin = host_;
  task->payload = d.length;
  task->rx_complete = true;  // the originator holds the payload in host memory
  task->delivered = true;    // the originator is not a destination
  task->originator = true;
  origin_tasks_.emplace(task->message_id, task);

  if (config_.scheme == Scheme::kCentralizedCredit) {
    // [VLB96]: obtain a cumulative buffer credit for every destination from
    // the manager before transmitting anything.
    if (host_ == config_.credit_manager) {
      credit_mgr_->pending.push_back(
          CreditManager::Pending{ctx->message_id, d.group, host_});
      try_credit_grants();
    } else {
      adapter_.send_control(make_credit_worm(CreditOp::kRequest,
                                             config_.credit_manager, d.group,
                                             ctx->message_id, -1));
    }
    return;
  }

  begin_serialized_dispatch(task);
}

void HostProtocol::begin_serialized_dispatch(const TaskPtr& task) {
  const bool serialized =
      scheme_uses_tree(config_.scheme)
          ? config_.scheme != Scheme::kTreeBroadcast
          : config_.total_ordering;
  const HostId serializer = scheme_uses_tree(config_.scheme)
                                ? tables_.tree(task->group).root()
                                : tables_.circuit(task->group).lowest();

  if (serialized && host_ != serializer) {
    // Relay to the serializer; the multicast proper starts there.
    Task::Send relay;
    relay.to = serializer;
    relay.header.group = task->group;
    relay.header.message_id = task->message_id;
    relay.header.origin = host_;
    relay.header.seq = task->seq;
    relay.header.relay_phase = true;
    relay.header.buffer_class = 1;  // the one "reversal" class (Section 4)
    task->sends.push_back(relay);
    metrics_.on_relay();
    issue_send(task, task->sends.front(), /*cut_through=*/false);
    return;
  }

  if (serialized && task->seq < 0) {
    task->seq = seq_counters_[task->group]++;
  }
  task->sends = plan_successors(task->group, host_, task->message_id,
                                task->seq,
                                /*hops_remaining=*/0, /*incoming_class=*/0,
                                /*at_serializer=*/serialized, kNoHost);
  launch_sends(task, /*allow_cut_through=*/false);
  maybe_release(task);
}

// --- successor planning ------------------------------------------------------

std::vector<HostProtocol::Task::Send> HostProtocol::plan_successors(
    GroupId group, HostId origin, std::uint64_t message_id, std::int64_t seq,
    int hops_remaining, int incoming_class, bool at_serializer,
    HostId from) const {
  std::vector<Task::Send> sends;
  const auto base_header = [&](HostId to) {
    McastHeader h;
    h.group = group;
    h.message_id = message_id;
    h.origin = origin;
    h.seq = seq;
    (void)to;
    return h;
  };

  if (scheme_uses_circuit(config_.scheme)) {
    const CircuitTable& circuit = tables_.circuit(group);
    const int members = circuit.size();
    int hops;
    if (from == kNoHost) {
      // Start of the circuit (originator or serializer).
      if (at_serializer) {
        hops = members - 1;
        // Skip the final hop when it would only return the message to its
        // originator (who already has the payload).
        if (origin == circuit.highest() && origin != host_) --hops;
      } else {
        hops = members - 1 + (config_.circuit_confirm ? 1 : 0);
      }
    } else {
      hops = hops_remaining - 1;
    }
    if (hops >= 1) {
      const HostId to = circuit.next(host_);
      Task::Send s;
      s.to = to;
      s.header = base_header(to);
      s.header.hops_remaining = hops;
      // Class 0 while host IDs ascend; class 1 from the wrap-around on
      // (the single ID-order reversal, Figure 7).
      s.header.buffer_class = (to > host_) ? incoming_class : 1;
      sends.push_back(s);
    }
    return sends;
  }

  // Tree schemes.
  const TreeTable& tree = tables_.tree(group);
  const auto add_child = [&](HostId child, int cls) {
    // A leaf child that is the message's originator needs no copy.
    if (child == origin && tree.children(child).empty()) return;
    Task::Send s;
    s.to = child;
    s.header = base_header(child);
    s.header.buffer_class = cls;
    sends.push_back(s);
  };

  if (config_.scheme == Scheme::kTreeBroadcast) {
    // Flood away from `from`: climb copies use class 0, descents class 1
    // (one class while climbing, the other while descending; Section 6).
    const bool arrived_from_child = (from != kNoHost && from > host_);
    const bool at_origin = (from == kNoHost);
    if ((at_origin || arrived_from_child) && host_ != tree.root()) {
      Task::Send s;
      s.to = tree.parent(host_);
      s.header = base_header(s.to);
      s.header.buffer_class = 0;
      sends.push_back(s);
    }
    const bool descending = (from != kNoHost && from < host_);
    for (const HostId child : tree.children(host_)) {
      if (child == from) continue;
      if (descending || at_origin || arrived_from_child) add_child(child, 1);
    }
    return sends;
  }

  // Root-serialized tree: pure descent, single class.
  for (const HostId child : tree.children(host_)) add_child(child, 0);
  return sends;
}

// --- sending machinery -------------------------------------------------------

WormPtr HostProtocol::make_data_worm(const TaskPtr& task,
                                     const Task::Send& send) const {
  auto worm = new_worm();
  worm->kind = WormKind::kData;
  worm->src = host_;
  worm->dst = send.to;
  worm->payload = task->payload;
  worm->header = config_.mcast_header_bytes;
  routing_.route_into(host_, send.to, worm->route);
  worm->mcast = send.header;
  worm->message = task->ctx;
  worm->created_at = task->ctx->created_at;
  worm->id = task->message_id;
  return worm;
}

WormPtr HostProtocol::make_control_worm(WormKind kind,
                                        const WormPtr& data_worm) const {
  // Every ACK/NACK this host emits goes through here — the single choke
  // point is the natural trace site.
  if (kind == WormKind::kAck)
    WORMTRACE(sim_, kProtoAckSent, host_, -1, data_worm->id, data_worm->src);
  else if (kind == WormKind::kNack)
    WORMTRACE(sim_, kProtoNackSent, host_, -1, data_worm->id, data_worm->src);
  auto worm = new_worm();
  worm->kind = kind;
  worm->src = host_;
  worm->dst = data_worm->src;
  worm->payload = config_.control_payload;
  worm->header = config_.mcast_header_bytes;
  routing_.route_into(host_, data_worm->src, worm->route);
  worm->mcast = data_worm->mcast;
  worm->message = data_worm->message;
  worm->id = data_worm->id;
  return worm;
}

void HostProtocol::launch_sends(const TaskPtr& task, bool allow_cut_through) {
  for (std::size_t i = 0; i < task->sends.size(); ++i) {
    Task::Send& send = task->sends[i];
    if (send.started) continue;
    const bool ct = allow_cut_through && scheme_cut_through(config_.scheme) &&
                    !task->rx_complete;
    // Strict total ordering also constrains the retransmission path: at most
    // one un-ACKed send per (group, successor) so a NACKed message cannot be
    // overtaken. Costs pipelining, so only when the application asked.
    const bool ordered = config_.total_ordering && serialized_scheme() &&
                         !send.header.relay_phase;
    if (ordered)
      window_push(task, i, ct);
    else
      issue_send(task, send, ct);
    if (ct) break;  // cut-through starts the first successor only
  }
}

void HostProtocol::issue_send(const TaskPtr& task, Task::Send& send,
                              bool cut_through) {
  assert(!send.started);
  send.started = true;
  send.first_tx = sim_.now();
  WormPtr worm = make_data_worm(task, send);
  ack_wait_.emplace(send_key(task->message_id, send.to), task);
  if (cut_through && task->rx != nullptr && !task->rx->complete)
    adapter_.send_cut_through(std::move(worm), task->rx);
  else
    adapter_.send(std::move(worm));
  if (recovery_enabled())
    arm_ack_timer(task,
                  static_cast<std::size_t>(&send - task->sends.data()));
}

void HostProtocol::retransmit_later(const TaskPtr& task,
                                    std::size_t send_index) {
  // Exponential back-off (capped) keeps NACK storms from starving each
  // other under extreme contention; the jitter breaks retry lockstep.
  Task::Send& pending = task->sends[send_index];
  if (pending.retry_pending) return;  // a NACK crossed a fired timer
  pending.retry_pending = true;
  const Time backoff = retry_backoff_delay(config_, pending.attempts++, rng_);
  sim_.after(backoff, [this, task, send_index] {
    Task::Send& send = task->sends[send_index];
    send.retry_pending = false;
    // The send may have resolved during the back-off: a slow ACK arrived,
    // the send was abandoned, the whole task was torn down, or this host
    // crashed. A repair may also have retargeted `send.to` meanwhile — the
    // worm below is built from the mutated send, so the retransmission
    // automatically takes the healed structure and route.
    if (send.acked || send.failed || task->aborted || dead_) return;
    assert(send.started);
    metrics_.on_retransmit();
    WORMTRACE(sim_, kProtoRetransmit, host_, -1, task->message_id, send.to);
    WormPtr worm = make_data_worm(task, send);
    // The retransmission streams from the (possibly still arriving)
    // reception; when reception has finished this is a plain buffered send.
    if (task->rx != nullptr && !task->rx->complete)
      adapter_.send_cut_through(std::move(worm), task->rx);
    else
      adapter_.send(std::move(worm));
    if (recovery_enabled()) arm_ack_timer(task, send_index);
  });
}

void HostProtocol::arm_ack_timer(const TaskPtr& task, std::size_t send_index) {
  Task::Send& send = task->sends[send_index];
  send.timer = sim_.after(config_.ack_timeout, [this, task, send_index] {
    on_ack_timeout(task, send_index);
  });
}

void HostProtocol::on_ack_timeout(const TaskPtr& task, std::size_t send_index) {
  Task::Send& send = task->sends[send_index];
  if (send.acked || send.failed || send.retry_pending || task->aborted || dead_)
    return;
  metrics_.on_ack_timeout();
  WORMTRACE(sim_, kProtoAckTimeout, host_, -1, task->message_id, send.to);
  // Suspicion: the send has been un-ACKed past the suspicion timeout AND
  // the peer has been totally silent for as long — an overdue send alone
  // can be our own congestion (the retransmissions queued behind a local
  // TX backlog), so a peer that is still talking is never accused.
  // Declare it dead; the network's repair retargets this very send (so no
  // retransmission is scheduled here).
  // NOTE: the listener repairs the structures, which can reallocate
  // task->sends — `send` must not be touched after the call.
  if (suspicion_enabled() && failure_listener_ &&
      removed_peers_.count(send.to) == 0 && send.first_tx != kTimeNever &&
      sim_.now() - send.first_tx >= config_.suspicion_timeout &&
      peer_silent(send.to)) {
    const HostId suspect = send.to;
    metrics_.on_suspicion(sim_.now());
    WORMTRACE(sim_, kProtoSuspect, host_, -1, task->message_id, suspect);
    failure_listener_(suspect);
    return;
  }
  if (config_.max_attempts > 0 && send.attempts + 1 >= config_.max_attempts) {
    fail_send(task, send_index);
    return;
  }
  retransmit_later(task, send_index);
}

void HostProtocol::fail_send(const TaskPtr& task, std::size_t send_index) {
  Task::Send& send = task->sends[send_index];
  assert(send.started && !send.acked && !send.failed);
  send.failed = true;
  ack_wait_.erase(send_key(task->message_id, send.to));
  metrics_.on_delivery_failed(task->ctx);
  WORMTRACE(sim_, kProtoSendFailed, host_, -1, task->message_id, send.to);
  if (config_.total_ordering && serialized_scheme() && !send.header.relay_phase)
    window_advance(task->group, send.to);
  maybe_release(task);
}

void HostProtocol::abort_task(const TaskPtr& task) {
  assert(!task->aborted);
  task->aborted = true;
  for (Task::Send& s : task->sends) {
    if (!s.started || s.acked || s.failed) continue;
    if (s.timer.valid()) {
      sim_.cancel(s.timer);
      s.timer = EventHandle{};
    }
    ack_wait_.erase(send_key(task->message_id, s.to));
    if (config_.total_ordering && serialized_scheme() && !s.header.relay_phase)
      window_advance(task->group, s.to);
  }
  if (task->reserved > 0) {
    WORMTRACE(sim_, kProtoRelease, host_, -1, task->message_id, task->reserved);
    pool_.release(task->cls, task->reserved);
    task->reserved = 0;
    if (config_.scheme == Scheme::kCentralizedCredit) ++freed_credits_;
  }
  (task->originator ? origin_tasks_ : tasks_).erase(task->message_id);
}

DedupWindow& HostProtocol::dedup_for(GroupId g) {
  auto it = done_.find(g);
  if (it == done_.end())
    it = done_
             .emplace(g, DedupWindow(static_cast<std::size_t>(
                             std::max(config_.dedup_window, 1))))
             .first;
  return it->second;
}

void HostProtocol::remember_done(GroupId g, std::uint64_t key) {
  dedup_for(g).insert(key);
}

void HostProtocol::maybe_release(const TaskPtr& task) {
  if (!task->delivered || !task->rx_complete) return;
  for (const Task::Send& s : task->sends)
    if (!s.started || (!s.acked && !s.failed)) return;
  if (task->reserved > 0) {
    WORMTRACE(sim_, kProtoRelease, host_, -1, task->message_id, task->reserved);
    pool_.release(task->cls, task->reserved);
    task->reserved = 0;
    // Credit scheme: the freed slot rides home on the next token visit.
    if (config_.scheme == Scheme::kCentralizedCredit) ++freed_credits_;
  }
  (task->originator ? origin_tasks_ : tasks_).erase(task->message_id);
}

// --- reception ---------------------------------------------------------------

RxDecision HostProtocol::on_rx_head(const WormPtr& worm,
                                    const std::shared_ptr<RxProgress>& rx) {
  if (dead_) return RxDecision::kDrop;  // a crashed LANai ACKs nothing
  note_heard(worm->src);
  maybe_arm_prober();
  if (worm->kind == WormKind::kAck || worm->kind == WormKind::kNack ||
      worm->kind == WormKind::kProbe || worm->kind == WormKind::kProbeAck)
    return RxDecision::kAccept;
  if (!worm->mcast.has_value()) return RxDecision::kAccept;  // plain unicast
  if (worm->mcast->credit != CreditOp::kNone)
    return RxDecision::kAccept;  // credit control traffic

  const McastHeader& h = *worm->mcast;
  const bool recovery = recovery_enabled();
  if (recovery) {
    // Duplicate suppression: a retransmitted copy whose predecessor's ACK
    // was lost must be re-ACKed — its sender is still waiting — but never
    // re-delivered or re-forwarded.
    if (dedup_for(h.group).contains(dedup_key(h.message_id, h.relay_phase))) {
      metrics_.on_duplicate();
      WORMTRACE(sim_, kProtoDuplicate, host_, -1, worm->id, worm->src);
      adapter_.send_control(make_control_worm(WormKind::kAck, worm));
      return RxDecision::kDrop;
    }
    // A copy of a message this host already has a task for. If the first
    // copy has fully arrived (the task lingers only for its own forwards —
    // common right after a repair retargets senders) re-ACK so the sender
    // stops retrying; while it is still arriving the sender's timeout was
    // merely premature, so drop silently — the ACK goes out when the first
    // copy completes.
    const auto existing = tasks_.find(h.message_id);
    if (!is_confirmation(h) && existing != tasks_.end()) {
      metrics_.on_duplicate();
      WORMTRACE(sim_, kProtoDuplicate, host_, -1, worm->id, worm->src);
      if (existing->second->rx_complete)
        adapter_.send_control(make_control_worm(WormKind::kAck, worm));
      return RxDecision::kDrop;
    }
  }
  if (is_confirmation(h)) {
    // Circuit-confirmation copy returning to its originator; terminates
    // here, no forwarding buffer needed. In recovery mode the ACK waits for
    // full reception (an ACK-on-head could vouch for a truncated worm).
    if (config_.reservation && !recovery)
      adapter_.send_control(make_control_worm(WormKind::kAck, worm));
    return RxDecision::kAccept;
  }

  if (!tables_.is_member(h.group, host_)) {
    // Not (or no longer) a member: a copy raced a voluntary leave. ACK it
    // away so the sender stops retrying — the membership repair already
    // retargeted the structure past this host — and never buffer it.
    if (config_.reservation)
      adapter_.send_control(make_control_worm(WormKind::kAck, worm));
    return RxDecision::kDrop;
  }

  const int cls = config_.buffer_classes ? h.buffer_class : 0;
  const std::int64_t reserve_bytes =
      std::max(worm->payload, config_.input_slot_bytes);
  if (!pool_.try_reserve(cls, reserve_bytes)) {
    if (config_.reservation) {
      metrics_.on_nack();
      adapter_.send_control(make_control_worm(WormKind::kNack, worm));
    } else {
      metrics_.on_mcast_drop();
    }
    return RxDecision::kDrop;
  }
  WORMTRACE(sim_, kProtoReserve, host_, -1, worm->id, reserve_bytes);

  auto task = std::make_shared<Task>();
  task->ctx = worm->message;
  task->group = h.group;
  task->message_id = h.message_id;
  task->origin = h.origin;
  task->payload = worm->payload;
  task->seq = h.seq;
  task->hops_remaining = h.hops_remaining;
  task->rx = rx;
  task->cls = cls;
  task->reserved = reserve_bytes;
  assert(tasks_.find(task->message_id) == tasks_.end() &&
         "duplicate task for message at this adapter");
  tasks_.emplace(task->message_id, task);

  if (config_.reservation && !recovery)
    adapter_.send_control(make_control_worm(WormKind::kAck, worm));

  if (!h.relay_phase) {
    task->sends = plan_successors(h.group, h.origin, h.message_id, h.seq,
                                  h.hops_remaining, h.buffer_class,
                                  /*at_serializer=*/false, worm->src);
    // Cut-through: start forwarding to the first successor immediately,
    // while the worm is still arriving (Sections 5-6).
    if (scheme_cut_through(config_.scheme) && config_.reservation)
      launch_sends(task, /*allow_cut_through=*/true);
  }
  return RxDecision::kAccept;
}

void HostProtocol::on_rx_complete(const WormPtr& worm,
                                  std::int64_t payload_bytes) {
  if (dead_) return;
  note_heard(worm->src);
  switch (worm->kind) {
    case WormKind::kAck:
      handle_ack(worm);
      return;
    case WormKind::kNack:
      handle_nack(worm);
      return;
    case WormKind::kProbe:
      adapter_.send_control(make_probe_worm(worm->src, WormKind::kProbeAck));
      return;
    case WormKind::kProbeAck:
      return;  // note_heard above is the whole point
    case WormKind::kSwitchMcast: {
      // Fabric-replicated delivery: reassemble fragments per message and
      // deliver once the full payload has arrived. The source's own flood
      // copy (broadcast reaches every host) is not a delivery.
      const auto& ctx = worm->message;
      if (worm->src == host_) return;
      std::int64_t& got = switch_mcast_rx_[ctx->message_id];
      got += payload_bytes;
      assert(got <= ctx->payload && "switch mcast over-delivery");
      if (got == ctx->payload) {
        switch_mcast_rx_.erase(ctx->message_id);
        WORMTRACE(sim_, kProtoDeliver, host_, -1, ctx->message_id, ctx->origin);
        metrics_.on_delivered(ctx, host_, sim_.now());
        if (ctx->group != kNoGroup)
          metrics_.record_order(host_, ctx->group, ctx->message_id);
      }
      return;
    }
    case WormKind::kData:
      break;
  }
  if (!worm->mcast.has_value()) {
    // Plain unicast delivery (includes the repeated-unicast baseline).
    WORMTRACE(sim_, kProtoDeliver, host_, -1, worm->id, worm->src);
    metrics_.on_delivered(worm->message, host_, sim_.now());
    if (worm->message->group != kNoGroup)
      metrics_.record_order(host_, worm->message->group, worm->message->message_id);
    return;
  }
  handle_mcast_data(worm);
}

void HostProtocol::handle_mcast_data(const WormPtr& worm) {
  if (worm->mcast->credit != CreditOp::kNone) {
    handle_credit_op(worm);
    return;
  }
  const McastHeader& h = *worm->mcast;
  // Recovery mode acknowledges on *full* reception, now that the worm
  // provably survived the fabric, and remembers the completion so a
  // retransmitted duplicate is re-ACKed instead of re-processed.
  if (is_confirmation(h)) {
    if (recovery_enabled()) {
      remember_done(h.group, dedup_key(h.message_id, h.relay_phase));
      adapter_.send_control(make_control_worm(WormKind::kAck, worm));
    }
    metrics_.on_confirmation(worm->message, sim_.now());
    return;
  }
  const auto it = tasks_.find(h.message_id);
  assert(it != tasks_.end() && "mcast completion without task");
  TaskPtr task = it->second;
  task->rx_complete = true;
  if (recovery_enabled()) {
    // A completed copy of the *other* phase means this host already handed
    // the payload up: a rescued relay copy can land on a new serializer
    // that received the old root's flood (and vice versa for a straggler
    // flood copy behind a processed relay). Forwarding duties remain —
    // orphaned subtrees may depend on the re-flood — but the local
    // delivery must not repeat.
    if (dedup_for(h.group).contains(dedup_key(h.message_id, !h.relay_phase)))
      task->delivered = true;
    remember_done(h.group, dedup_key(h.message_id, h.relay_phase));
    adapter_.send_control(make_control_worm(WormKind::kAck, worm));
  }

  if (h.relay_phase) {
    if (!tables_.is_member(h.group, host_)) {
      // This host left the group (and its serializer role) while the relay
      // was arriving. It still holds the full payload, so pass the relay on
      // to the current serializer rather than strand the message.
      task->delivered = true;  // an ex-member is not a destination
      Task::Send relay;
      relay.to = scheme_uses_tree(config_.scheme)
                     ? tables_.tree(h.group).root()
                     : tables_.circuit(h.group).lowest();
      relay.header = h;
      metrics_.on_relay();
      task->sends.assign(1, relay);
      issue_send(task, task->sends.front(), /*cut_through=*/false);
      return;
    }
    // We are the serializer: stamp the sequence number and start the
    // multicast proper.
    start_serialized(task);
    return;
  }

  deliver_locally(task);
  launch_sends(task, /*allow_cut_through=*/false);
  maybe_release(task);
}

void HostProtocol::start_serialized(const TaskPtr& task) {
  // Credit-scheme messages already carry the manager's sequence number.
  if (task->seq < 0) task->seq = seq_counters_[task->group]++;
  deliver_locally(task);
  auto sends = plan_successors(task->group, task->origin, task->message_id,
                               task->seq, /*hops_remaining=*/0,
                               /*incoming_class=*/0,
                               /*at_serializer=*/true, kNoHost);
  // Keep the already-finished relay bookkeeping (none: the relay send lives
  // at the origin, not here) and install the circuit/tree successors.
  task->sends = std::move(sends);
  launch_sends(task, /*allow_cut_through=*/false);
  maybe_release(task);
}

void HostProtocol::deliver_locally(const TaskPtr& task) {
  if (task->delivered) return;
  task->delivered = true;
  if (task->origin == host_) return;  // own payload came back around
  const auto floor = view_floor_.find(task->group);
  if (floor != view_floor_.end() && task->ctx->created_at < floor->second)
    return;  // pre-join message: forward-only, this host is not a destination
  WORMTRACE(sim_, kProtoDeliver, host_, -1, task->message_id, task->origin);
  metrics_.on_delivered(task->ctx, host_, sim_.now());
  metrics_.record_order(host_, task->group, task->message_id);
}

void HostProtocol::handle_ack(const WormPtr& worm) {
  const std::uint64_t key = send_key(worm->mcast->message_id, worm->src);
  const auto it = ack_wait_.find(key);
  if (it == ack_wait_.end()) {
    // Legitimate in recovery mode: the re-ACK of a duplicate crossed with
    // the original (slow) ACK, or the send was abandoned / its task aborted
    // while the ACK was in flight.
    assert(recovery_enabled() && "ACK without outstanding send");
    return;
  }
  TaskPtr task = it->second;
  ack_wait_.erase(it);
  for (Task::Send& s : task->sends) {
    if (s.to == worm->src && s.started && !s.acked && !s.failed) {
      s.acked = true;
      s.attempts = 0;  // success clears the back-off history
      if (s.timer.valid()) {
        sim_.cancel(s.timer);
        s.timer = EventHandle{};
      }
      break;
    }
  }
  if (config_.total_ordering && serialized_scheme())
    window_advance(task->group, worm->src);
  maybe_release(task);
}

void HostProtocol::handle_nack(const WormPtr& worm) {
  const std::uint64_t key = send_key(worm->mcast->message_id, worm->src);
  const auto it = ack_wait_.find(key);
  if (it == ack_wait_.end()) {
    assert(recovery_enabled() && "NACK without outstanding send");
    return;
  }
  TaskPtr task = it->second;
  for (std::size_t i = 0; i < task->sends.size(); ++i) {
    Task::Send& s = task->sends[i];
    if (s.to == worm->src && s.started && !s.acked && !s.failed) {
      if (s.timer.valid()) {
        sim_.cancel(s.timer);
        s.timer = EventHandle{};
      }
      if (config_.max_attempts > 0 && s.attempts + 1 >= config_.max_attempts) {
        fail_send(task, i);
      } else {
        retransmit_later(task, i);
      }
      return;
    }
  }
  assert(recovery_enabled() && "NACK did not match a pending send");
}

void HostProtocol::on_tx_done(const WormPtr& worm) {
  if (config_.reservation) return;
  if (worm->kind != WormKind::kData || !worm->mcast.has_value()) return;
  // Reservation-less mode (the Section 8 Myrinet implementation): the
  // forwarding buffer is freed as soon as the copy has left the adapter —
  // there is no acknowledgement.
  const std::uint64_t key = send_key(worm->mcast->message_id, worm->dst);
  const auto it = ack_wait_.find(key);
  if (it == ack_wait_.end()) return;
  TaskPtr task = it->second;
  ack_wait_.erase(it);
  for (Task::Send& s : task->sends) {
    if (s.to == worm->dst && s.started && !s.acked) {
      s.acked = true;
      break;
    }
  }
  maybe_release(task);
}

void HostProtocol::on_rx_truncated(const WormPtr& worm) {
  // A worm that lost its tail to an injected fault. The accepted bytes are
  // discarded; any forwarding state the head created is torn down so the
  // reservation drains back to the pool. The upstream sender never gets an
  // ACK (recovery mode only ACKs full receptions) and its timeout drives
  // the retransmission.
  if (worm->kind != WormKind::kData || !worm->mcast.has_value()) return;
  if (worm->mcast->credit != CreditOp::kNone) return;
  const auto it = tasks_.find(worm->mcast->message_id);
  if (it == tasks_.end()) return;  // confirmation / never-accepted copy
  const TaskPtr task = it->second;
  // Only the task created by *this* reception: a duplicate stub arriving
  // after the first copy completed must not kill the live task.
  if (task->rx == nullptr || !task->rx->truncated) return;
  abort_task(task);
}

// --- failure detection & repair ----------------------------------------------

void HostProtocol::on_crash() {
  if (dead_) return;
  dead_ = true;
  WORMTRACE(sim_, kProtoCrash, host_, -1, 0, 0);
  // Queued (uncommitted) transmissions vanish; a worm mid-DMA finishes.
  adapter_.drop_queued_tx();
  // Ordered-forwarding queues die with the host; cleared first so the task
  // teardown below cannot pop and re-issue a queued send.
  windows_.clear();
  window_busy_.clear();
  std::vector<TaskPtr> all;
  all.reserve(tasks_.size() + origin_tasks_.size());
  for (const auto& [id, t] : tasks_) all.push_back(t);
  for (const auto& [id, t] : origin_tasks_) all.push_back(t);
  for (const TaskPtr& task : all)
    if (!task->aborted) abort_task(task);
  ack_wait_.clear();
  last_heard_.clear();
  probe_sent_.clear();
  assert(pool_.total_used() == 0 && "crash must drain the buffer pool");
}

void HostProtocol::on_peer_removed(
    HostId dead, const std::vector<GroupTables::Reattachment>& adopted) {
  if (dead_ || dead == host_) return;
  if (!removed_peers_.insert(dead).second) return;
  WORMTRACE(sim_, kProtoRepair, host_, -1, 0, dead);
  last_heard_.erase(dead);
  probe_sent_.erase(dead);
  // Drop the stale TX backlog addressed to the dead host: retargeted
  // retransmissions must not queue behind worms nobody will ever ACK.
  adapter_.purge_tx_to(dead);
  // Drain every ordered window aimed at the dead successor: its queued
  // sends are retargeted below and re-enter the windows under new keys.
  for (auto& [key, queue] : windows_) {
    if (static_cast<HostId>(static_cast<std::uint32_t>(key)) != dead) continue;
    queue.clear();
    window_busy_[key] = false;
  }
  std::vector<TaskPtr> all;
  all.reserve(tasks_.size() + origin_tasks_.size());
  for (const auto& [id, t] : tasks_) all.push_back(t);
  for (const auto& [id, t] : origin_tasks_) all.push_back(t);
  for (const TaskPtr& task : all)
    if (!task->aborted) repair_task_sends(task, dead, adopted);
}

// --- membership churn --------------------------------------------------------

void HostProtocol::on_self_joined(GroupId g, bool rejoin) {
  if (dead_) return;
  view_floor_[g] = sim_.now();
  if (rejoin) {
    // Fresh dedup epoch: the old window remembers pre-leave message IDs
    // that a rejoin may legitimately re-see; without the reset those
    // deliveries would be silently swallowed as duplicates. Scoped to this
    // group — other groups' duplicate memory must survive.
    dedup_for(g).reset();
    WORMTRACE(sim_, kProtoDedupReset, host_, -1, 0, g);
  }
  maybe_arm_prober();
}

void HostProtocol::on_self_left(GroupId g) {
  if (dead_) return;
  // Finish forwarding what is already held, but never deliver it locally:
  // the network's accounting stopped counting this host as a destination
  // the moment the leave was applied.
  std::vector<TaskPtr> held;
  for (const auto& [id, t] : tasks_)
    if (t->group == g && !t->aborted) held.push_back(t);
  for (const TaskPtr& t : held) {
    t->delivered = true;
    maybe_release(t);  // delivery may have been the task's last duty
  }
}

void HostProtocol::on_member_joined(GroupId g, HostId joiner) {
  if (dead_ || joiner == host_) return;
  // Tree joins move no existing edge (the joiner attaches as a leaf, or
  // adopts the old root as its only child), so in-flight tree sends need
  // no patching. Circuit joins add one stop: any unresolved send whose
  // remaining hop window now spans the joiner must grow its budget by one,
  // or the members behind the joiner would be starved of their copy.
  if (!scheme_uses_circuit(config_.scheme)) return;
  const CircuitTable& circuit = tables_.circuit(g);
  const auto patch = [&](const TaskPtr& task) {
    if (task->group != g || task->aborted) return;
    for (Task::Send& s : task->sends) {
      if (s.acked || s.failed || s.header.relay_phase) continue;
      // The copy addressed to s.to covers hops_remaining consecutive stops
      // starting at s.to on the (already spliced) circuit.
      HostId cur = s.to;
      for (int k = 0; k < s.header.hops_remaining; ++k) {
        if (cur == joiner) {
          ++s.header.hops_remaining;
          break;
        }
        cur = circuit.next(cur);
      }
    }
  };
  for (const auto& [id, t] : tasks_) patch(t);
  for (const auto& [id, t] : origin_tasks_) patch(t);
}

void HostProtocol::on_member_left(
    HostId leaver, GroupId g,
    const std::vector<GroupTables::Reattachment>& adopted) {
  if (dead_ || leaver == host_) return;
  // A voluntary leave is not a failure: the leaver stays alive (no
  // removed_peers_ entry, no TX purge, no suspicion-state burn) and only
  // this group's structure was repaired. Sends aimed at the leaver are
  // retargeted along the repaired structure exactly like a crash repair,
  // scoped to this group's tasks.
  const std::uint64_t key = window_key(g, leaver);
  const auto wit = windows_.find(key);
  if (wit != windows_.end()) wit->second.clear();
  window_busy_[key] = false;
  std::vector<TaskPtr> affected;
  affected.reserve(tasks_.size() + origin_tasks_.size());
  for (const auto& [id, t] : tasks_)
    if (t->group == g) affected.push_back(t);
  for (const auto& [id, t] : origin_tasks_)
    if (t->group == g) affected.push_back(t);
  for (const TaskPtr& task : affected)
    if (!task->aborted) repair_task_sends(task, leaver, adopted);
}

void HostProtocol::dispatch_send(const TaskPtr& task, std::size_t send_index) {
  Task::Send& send = task->sends[send_index];
  if (send.started) return;
  const bool ordered = config_.total_ordering && serialized_scheme() &&
                       !send.header.relay_phase;
  if (ordered)
    window_push(task, send_index, /*cut_through=*/false);
  else
    issue_send(task, send, /*cut_through=*/false);
}

void HostProtocol::repair_task_sends(
    const TaskPtr& task, HostId dead,
    const std::vector<GroupTables::Reattachment>& adopted) {
  bool touched = false;
  std::vector<std::size_t> to_dispatch;
  for (std::size_t i = 0; i < task->sends.size(); ++i) {
    Task::Send& s = task->sends[i];
    if (s.to != dead || s.acked || s.failed) continue;
    touched = true;
    if (s.timer.valid()) {
      sim_.cancel(s.timer);
      s.timer = EventHandle{};
    }
    const bool was_started = s.started;
    if (was_started) ack_wait_.erase(send_key(task->message_id, s.to));
    metrics_.on_send_rerouted();

    if (s.header.relay_phase) {
      // The serializer died. Relay to its successor — unless that is us.
      const HostId serializer = scheme_uses_tree(config_.scheme)
                                    ? tables_.tree(task->group).root()
                                    : tables_.circuit(task->group).lowest();
      if (serializer == host_) {
        task->sends.clear();
        begin_serialized_dispatch(task);
        return;
      }
      s.to = serializer;
    } else if (scheme_uses_circuit(config_.scheme)) {
      // The splice removed one stop, so the hop budget shrinks with it.
      const CircuitTable& circuit = tables_.circuit(task->group);
      const int hops = s.header.hops_remaining - 1;
      if (hops <= 0 || circuit.size() < 2) {
        s.started = true;  // resolved: the repaired circuit ends here
        s.acked = true;
        continue;
      }
      // successor_of, not next: this host may itself be an ex-member
      // still relaying (its own leave keeps in-flight duties alive), so
      // its position on the repaired circuit is positional, not a lookup.
      const HostId to = circuit.successor_of(host_);
      // Two-buffer-class rule on the repaired circuit: still class 0 while
      // IDs keep ascending past the splice; the wrap turns it to class 1.
      if (s.header.buffer_class == 0 && to < host_) s.header.buffer_class = 1;
      s.header.hops_remaining = hops;
      s.to = to;
    } else {
      // Tree schemes. A dead child's subtree was re-parented (its adoptive
      // parent's pass below covers it); a dead parent means this subtree
      // re-attached — climb to the new parent unless we became the root.
      const TreeTable& tree = tables_.tree(task->group);
      if (dead > host_ || host_ == tree.root()) {
        s.started = true;  // resolved
        s.acked = true;
        continue;
      }
      // An ex-member still relaying has no tree position any more: hand
      // the upward copy to the root, which floods the whole repaired
      // tree (already-holding members re-ACK the duplicates away).
      s.to = tree.contains(host_) ? tree.parent(host_) : tree.root();
    }
    s.attempts = 0;  // fresh back-off history toward the new target
    s.first_tx = sim_.now();
    if (was_started) {
      ack_wait_.emplace(send_key(task->message_id, s.to), task);
      retransmit_later(task, i);
    } else {
      to_dispatch.push_back(i);
    }
  }

  // Adoption pass (tree schemes): a subtree this host adopted in the
  // repair needs copies of every message still held here — and ONLY the
  // adopted ones: a pre-existing child absent from the sends means the
  // message arrived *from* that child (flood direction), not that it was
  // missed. Receivers that already hold a copy ACK the duplicate away.
  if (scheme_uses_tree(config_.scheme) && !task->aborted) {
    bool is_relay_task = false;
    for (const Task::Send& s : task->sends)
      if (s.header.relay_phase) is_relay_task = true;
    if (!is_relay_task) {
      for (const GroupTables::Reattachment& r : adopted) {
        if (r.group != task->group || r.new_parent != host_) continue;
        bool have = false;
        for (const Task::Send& s : task->sends)
          if (s.to == r.orphan) have = true;
        // The origin's subtree already has the message by construction.
        if (have || r.orphan == task->origin) continue;
        Task::Send s;
        s.to = r.orphan;
        s.header.group = task->group;
        s.header.message_id = task->message_id;
        s.header.origin = task->origin;
        s.header.seq = task->seq;
        // Descent copy: the broadcast flood's descending class is 1, the
        // root-serialized descent's single class is 0.
        s.header.buffer_class =
            config_.scheme == Scheme::kTreeBroadcast ? 1 : 0;
        task->sends.push_back(s);
        to_dispatch.push_back(task->sends.size() - 1);
        touched = true;
        metrics_.on_send_rerouted();
      }
    }
  }

  // Not-yet-received tasks launch their sends when reception completes;
  // everything already complete dispatches now.
  if (task->rx_complete)
    for (const std::size_t i : to_dispatch) dispatch_send(task, i);
  if (touched) maybe_release(task);
}

bool HostProtocol::peer_silent(HostId peer) const {
  const auto it = last_heard_.find(peer);
  return it == last_heard_.end() ||
         sim_.now() - it->second >= config_.suspicion_timeout;
}

void HostProtocol::note_heard(HostId peer) {
  if (!suspicion_enabled() || peer == host_ || peer == kNoHost) return;
  last_heard_[peer] = sim_.now();
  probe_sent_.erase(peer);
}

void HostProtocol::maybe_arm_prober() {
  if (!suspicion_enabled() || dead_ || prober_armed_) return;
  prober_armed_ = true;
  sim_.after(probe_interval(), [this] { probe_tick(); });
}

void HostProtocol::probe_tick() {
  prober_armed_ = false;
  if (dead_) return;
  // Probe only while a silent death could wedge in-flight traffic. With
  // the network quiescent, go dormant instead of probing: a probe would
  // arm the receiver's prober, which would probe *its* successor, and the
  // cascade around the circuit would keep the simulation alive forever.
  if (metrics_.outstanding() == 0 && ack_wait_.empty()) return;
  const Time now = sim_.now();
  for (const HostId n : probe_targets()) {
    if (removed_peers_.count(n) > 0) continue;  // removed earlier this tick
    const auto heard = last_heard_.find(n);
    if (heard == last_heard_.end()) {
      // First tick this neighbour matters: start its clock, probe later.
      last_heard_.emplace(n, now);
      continue;
    }
    if (now - heard->second < probe_interval()) continue;  // recently heard
    auto sent = probe_sent_.find(n);
    if (sent != probe_sent_.end() &&
        now - sent->second.last > 2 * probe_interval()) {
      // Continuity broken: the prober went dormant, or this peer dropped
      // out of the neighbor set (membership churn) and came back. The
      // stale pending probe is no evidence — restart the maturity clock
      // from a fresh probe instead of accusing on ancient history.
      sent->second.first = now;
    }
    if (sent != probe_sent_.end() &&
        now - sent->second.first >= config_.suspicion_timeout) {
      metrics_.on_suspicion(now);
      WORMTRACE(sim_, kProtoSuspect, host_, -1, 0, n);
      if (failure_listener_) failure_listener_(n);
      continue;
    }
    if (sent == probe_sent_.end())
      sent = probe_sent_.emplace(n, ProbeClock{now, now}).first;
    sent->second.last = now;
    try {
      WORMTRACE(sim_, kProtoProbe, host_, -1, 0, n);
      adapter_.send_control(make_probe_worm(n, WormKind::kProbe));
    } catch (const std::logic_error&) {
      // Unreachable after a partitioning link death: keep the clock
      // running; the unanswered probe matures into a suspicion.
    }
  }
  // Keep ticking while traffic is in flight that a silent death could
  // wedge; otherwise go quiescent (the next origination re-arms).
  if (metrics_.outstanding() > 0 || !ack_wait_.empty()) maybe_arm_prober();
}

std::vector<HostId> HostProtocol::probe_targets() const {
  std::vector<HostId> out;
  for (const GroupId g : tables_.groups_containing(host_)) {
    if (scheme_uses_circuit(config_.scheme)) {
      const CircuitTable& c = tables_.circuit(g);
      if (c.size() > 1) out.push_back(c.next(host_));
    } else if (scheme_uses_tree(config_.scheme)) {
      const TreeTable& t = tables_.tree(g);
      if (host_ != t.root()) out.push_back(t.parent(host_));
      const std::vector<HostId>& kids = t.children(host_);
      out.insert(out.end(), kids.begin(), kids.end());
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  out.erase(std::remove_if(
                out.begin(), out.end(),
                [this](HostId h) { return removed_peers_.count(h) > 0; }),
            out.end());
  return out;
}

WormPtr HostProtocol::make_probe_worm(HostId dst, WormKind kind) const {
  auto worm = new_worm();
  worm->kind = kind;
  worm->src = host_;
  worm->dst = dst;
  worm->payload = config_.control_payload;
  worm->header = config_.mcast_header_bytes;
  routing_.route_into(host_, dst, worm->route);
  return worm;
}

HostProtocol::DebugSnapshot HostProtocol::debug_snapshot() const {
  DebugSnapshot snap;
  const auto add_task = [&snap](const TaskPtr& task) {
    TaskDebug t;
    t.message_id = task->message_id;
    t.origin = task->origin;
    t.group = task->group;
    t.reserved = task->reserved;
    t.rx_complete = task->rx_complete;
    t.delivered = task->delivered;
    t.originator = task->originator;
    for (const Task::Send& s : task->sends)
      t.sends.push_back(
          SendDebug{s.to, s.started, s.acked, s.failed, s.attempts});
    snap.tasks.push_back(std::move(t));
  };
  for (const auto& [id, task] : tasks_) add_task(task);
  for (const auto& [id, task] : origin_tasks_) add_task(task);
  std::sort(snap.tasks.begin(), snap.tasks.end(),
            [](const TaskDebug& a, const TaskDebug& b) {
              return a.message_id < b.message_id;
            });
  snap.pool_used = pool_.total_used();
  for (const auto& [key, task] : ack_wait_) snap.ack_wait_keys.push_back(key);
  std::sort(snap.ack_wait_keys.begin(), snap.ack_wait_keys.end());
  return snap;
}

// --- [VLB96] centralized credit scheme ---------------------------------------

WormPtr HostProtocol::make_credit_worm(CreditOp op, HostId dst, GroupId group,
                                       std::uint64_t message_id,
                                       std::int64_t seq) const {
  auto worm = new_worm();
  worm->kind = WormKind::kData;
  worm->src = host_;
  worm->dst = dst;
  worm->payload = config_.control_payload;
  worm->header = config_.mcast_header_bytes;
  routing_.route_into(host_, dst, worm->route);
  McastHeader h;
  h.group = group;
  h.message_id = message_id;
  h.origin = host_;
  h.seq = seq;
  h.credit = op;
  worm->mcast = h;
  worm->id = message_id;
  return worm;
}

void HostProtocol::handle_credit_op(const WormPtr& worm) {
  const McastHeader& h = *worm->mcast;
  switch (h.credit) {
    case CreditOp::kRequest: {
      assert(credit_mgr_ != nullptr && "credit request at a non-manager host");
      credit_mgr_->pending.push_back(
          CreditManager::Pending{h.message_id, h.group, h.origin});
      try_credit_grants();
      return;
    }
    case CreditOp::kGrant: {
      const auto it = origin_tasks_.find(h.message_id);
      assert(it != origin_tasks_.end() && "grant for unknown message");
      apply_grant(it->second, h.seq);
      return;
    }
    case CreditOp::kToken: {
      if (host_ == config_.credit_manager) {
        // The token came home: bank the collected credits (including the
        // manager's own freed slots) and regrant.
        assert(credit_mgr_ != nullptr);
        for (std::size_t i = 0; i < credit_mgr_->credits.size(); ++i)
          credit_mgr_->credits[i] += (*worm->token_counts)[i];
        credit_mgr_->credits[host_] += freed_credits_;
        freed_credits_ = 0;
        token_active_ = false;
        try_credit_grants();
      } else {
        forward_token(worm);
      }
      return;
    }
    case CreditOp::kNone:
      break;
  }
  assert(false && "unhandled credit operation");
}

void HostProtocol::apply_grant(const TaskPtr& task, std::int64_t seq) {
  task->seq = seq;
  begin_serialized_dispatch(task);
}

std::vector<HostId> HostProtocol::credit_slots_needed(GroupId group,
                                                      HostId origin) const {
  // One worm slot at every host that will hold the message for forwarding
  // or delivery: the root buffers the relay (when the origin is not the
  // root); every other member buffers its tree copy — except the origin
  // itself when it is a leaf (its copy is skipped entirely).
  const TreeTable& tree = tables_.tree(group);
  std::vector<HostId> hosts;
  for (const HostId m : tree.members()) {
    if (m == tree.root()) {
      if (origin != tree.root()) hosts.push_back(m);
      continue;
    }
    if (m == origin && tree.children(m).empty()) continue;
    hosts.push_back(m);
  }
  return hosts;
}

void HostProtocol::try_credit_grants() {
  assert(credit_mgr_ != nullptr);
  while (!credit_mgr_->pending.empty()) {
    const CreditManager::Pending& req = credit_mgr_->pending.front();
    const std::vector<HostId> slots =
        credit_slots_needed(req.group, req.origin);
    bool enough = true;
    for (const HostId m : slots) {
      if (credit_mgr_->credits[m] < 1) {
        enough = false;
        break;
      }
    }
    // Grants are sequenced, so requests are served strictly FIFO.
    if (!enough) break;
    for (const HostId m : slots) --credit_mgr_->credits[m];
    const std::int64_t seq = seq_counters_[req.group]++;
    if (req.origin == host_) {
      const auto it = origin_tasks_.find(req.message_id);
      assert(it != origin_tasks_.end());
      apply_grant(it->second, seq);
    } else {
      adapter_.send_control(make_credit_worm(CreditOp::kGrant, req.origin,
                                             req.group, req.message_id, seq));
    }
    credit_mgr_->pending.pop_front();
  }
  maybe_start_token();
}

void HostProtocol::maybe_start_token() {
  assert(credit_mgr_ != nullptr);
  if (token_active_ || n_hosts_ < 2) return;
  // Circulate only while credits are out in the field or requests wait —
  // this keeps the simulation quiescent when the network is idle.
  std::int64_t total = 0;
  for (const std::int64_t c : credit_mgr_->credits) total += c;
  const std::int64_t full =
      static_cast<std::int64_t>(config_.credits_per_host) * n_hosts_;
  if (credit_mgr_->pending.empty() && total >= full) return;
  token_active_ = true;
  sim_.after(config_.token_interval, [this] { emit_token(); });
}

void HostProtocol::emit_token() {
  assert(credit_mgr_ != nullptr && n_hosts_ > 1);
  const auto next = static_cast<HostId>((host_ + 1) % n_hosts_);
  WormPtr token = make_credit_worm(CreditOp::kToken, next, kNoGroup, 0, -1);
  token->token_counts =
      std::make_shared<std::vector<std::int64_t>>(n_hosts_, 0);
  adapter_.send_control(std::move(token));
}

void HostProtocol::forward_token(const WormPtr& token) {
  (*token->token_counts)[host_] += freed_credits_;
  freed_credits_ = 0;
  const auto next = static_cast<HostId>((host_ + 1) % n_hosts_);
  WormPtr hop = make_credit_worm(CreditOp::kToken, next, kNoGroup, 0, -1);
  hop->token_counts = token->token_counts;
  adapter_.send_control(std::move(hop));
}

// --- ordered forwarding window ----------------------------------------------

std::uint64_t HostProtocol::window_key(GroupId g, HostId to) const {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(g)) << 32) |
         static_cast<std::uint32_t>(to);
}

void HostProtocol::window_push(const TaskPtr& task, std::size_t send_index,
                               bool cut_through) {
  const std::uint64_t key = window_key(task->group, task->sends[send_index].to);
  if (window_busy_[key]) {
    windows_[key].push_back(WindowEntry{task, send_index, cut_through});
    return;
  }
  window_busy_[key] = true;
  issue_send(task, task->sends[send_index], cut_through);
}

void HostProtocol::window_advance(GroupId g, HostId to) {
  const std::uint64_t key = window_key(g, to);
  auto& queue = windows_[key];
  while (!queue.empty()) {
    WindowEntry entry = std::move(queue.front());
    queue.pop_front();
    if (entry.task->aborted) continue;  // torn down while queued
    issue_send(entry.task, entry.task->sends[entry.send_index],
               entry.cut_through);
    return;
  }
  window_busy_[key] = false;
}

}  // namespace wormcast
