#include "net/channel.h"

#include <algorithm>
#include <cassert>

namespace wormcast {

void Channel::set_cross_executor(ShardBus* bus, int tx_exec, int rx_exec,
                                 Simulator* rx_sim) {
  assert(bus_ == nullptr && "cross-executor mode set twice");
  assert(rx_sim != nullptr && tx_exec != rx_exec);
  bus_ = bus;
  tx_exec_ = tx_exec;
  rx_exec_ = rx_exec;
  rx_sim_ = rx_sim;
}

void Channel::publish_rx_budget() {
  assert(sink_ != nullptr);
  rx_dirty_ = false;
  budget_left_ = sink_->rx_burst_budget() - (tx_committed_ - rx_delivered_);
}

void Channel::attach_feed(ByteFeed* feed) {
  assert(feed_ == nullptr && "channel already has a feed");
  feed_ = feed;
  kick();
}

void Channel::detach_feed() {
  assert(feed_ != nullptr);
  feed_ = nullptr;
}

void Channel::kick() {
  if (feed_ == nullptr || stopped_ || pump_scheduled_) return;
  schedule_pump();
}

void Channel::schedule_pump() {
  // Respect the one-byte-per-byte-time line rate. After a burst committed
  // through last_send_, the next pump lands right after the run.
  const Time when = std::max(sim_.now(), last_send_ + 1);
  pump_scheduled_ = true;
  // Late class: a pump scheduled a whole burst ahead must still run after
  // the same-tick deliveries and protocol events, exactly like a per-byte
  // pump scheduled one byte-time ahead would.
  sim_.at_late(when, [this] { pump(); });
}

std::int64_t Channel::bytes_sent() const {
  // A burst committed at t counts its bytes at logical times t..t+n-1;
  // subtract the not-yet-logically-sent tail so mid-run reads (the
  // utilization window edges) match per-byte stepping exactly.
  const Time pending = std::max<Time>(0, last_send_ - sim_.now());
  return bytes_sent_ - (last_run_swallowed_ ? 0 : pending);
}

std::int64_t Channel::bytes_swallowed() const {
  const Time pending = std::max<Time>(0, last_send_ - sim_.now());
  return bytes_swallowed_ - (last_run_swallowed_ ? pending : 0);
}

void Channel::pump() {
  pump_scheduled_ = false;
  if (feed_ == nullptr || stopped_) return;
  if (last_send_ >= sim_.now()) {
    // This tick is already claimed (a burst's logical run extends through
    // last_send_, or a byte went out this tick): hold the line rate and
    // resume right after the run.
    if (!pump_scheduled_) schedule_pump();
    return;
  }
  if (!feed_->byte_available()) {
    // Starved either for a kick (feed will call kick() when ready) or only
    // by bytes that have not logically arrived yet — in the latter case no
    // kick will ever come, so self-schedule at the next logical arrival.
    const Time next = feed_->next_byte_time();
    if (next != kTimeNever) {
      pump_scheduled_ = true;
      sim_.at_late(std::max(next, last_send_ + 1), [this] { pump(); });
    }
    return;
  }

  if (burst_ && try_burst()) return;

  // Claim this tick before calling into the feed: take_byte() can free
  // slack-buffer space and re-entrantly kick() this channel, and that kick
  // must see last_send_ current so it schedules the next tick, not this one.
  last_send_ = sim_.now();
  const TxByte b = feed_->take_byte();
  if (b.head) {
    burst_ok_ = b.worm == nullptr || b.worm->kind != WormKind::kSwitchMcast;
    if (faults_ != nullptr && faults_->armed()) classify_fault(b);
  }
#if !defined(WORMCAST_TRACE_DISABLED)
  if (sim_.tracer().enabled()) {
    if (b.head) {
      trace_worm_ = b.worm != nullptr ? b.worm->id : 0;
      sim_.tracer().record(sim_.now(), TraceEventType::kChanHead, trace_node_,
                           trace_port_, trace_worm_, b.wire_len);
      if (fault_mode_ == FaultMode::kSwallow)
        sim_.tracer().record(sim_.now(), TraceEventType::kChanSwallow,
                             trace_node_, trace_port_, trace_worm_, 0);
    }
    if (b.tail)
      sim_.tracer().record(sim_.now(), TraceEventType::kChanTail, trace_node_,
                           trace_port_, trace_worm_, 0);
  }
#endif

  bool deliver = true;
  bool synth_tail = false;
  switch (fault_mode_) {
    case FaultMode::kNone:
      break;
    case FaultMode::kSwallow:
      deliver = false;
      break;
    case FaultMode::kTruncate:
      if (fault_pass_left_ > 0) {
        --fault_pass_left_;
        synth_tail = (fault_pass_left_ == 0);
      } else {
        deliver = false;
      }
      break;
  }
  if (deliver) {
    ++bytes_sent_;
    last_run_swallowed_ = false;
    if (bus_ != nullptr) {
      --budget_left_;  // may go negative; per-byte never consults it
      post_delivery(
          InFlight{b.head, b.tail || synth_tail, b.worm, b.wire_len, 1});
    } else {
      in_flight_.push_back(
          InFlight{b.head, b.tail || synth_tail, b.worm, b.wire_len, 1});
      ++in_flight_bytes_;
      sim_.after(delay_, [this] { deliver_front(); });
    }
  } else {
    // Swallowed bytes still count as global progress: the transmitter is
    // draining, so the network is not deadlocked, merely lossy.
    ++bytes_swallowed_;
    last_run_swallowed_ = true;
    sim_.note_progress(1);
  }

  if (b.tail) {
    fault_mode_ = FaultMode::kNone;
    ByteFeed* done = feed_;
    feed_ = nullptr;
    done->on_tail_sent();  // may attach a new feed (re-entrant safe)
  } else if (!pump_scheduled_) {  // a re-entrant kick may have scheduled
    schedule_pump();
  }
}

bool Channel::try_burst() {
  // A burst may cover only plain body bytes of an already-classified worm:
  // burst_available() excludes heads and tails by contract, and the fault
  // mode was fixed when this worm's head went through per-byte.
  if (!burst_ok_) return false;
  std::int64_t cap = feed_->burst_available();
  if (cap <= 1) return false;
  if (fault_mode_ == FaultMode::kTruncate) {
    // The synthesized-tail byte (and everything after it) steps per-byte.
    cap = std::min(cap, fault_pass_left_ - 1);
    if (cap <= 1) return false;
  }
  if (fault_mode_ != FaultMode::kSwallow) {
    // Flow-control safety: never let (in flight + this burst) reach the
    // receiver's STOP decision point, so no STOP/GO signal can move. In
    // cross-executor mode the sink is on another thread, so the budget is
    // the conservative barrier-published snapshot instead of a live read.
    cap = std::min(cap, bus_ != nullptr
                            ? budget_left_
                            : sink_->rx_burst_budget() - in_flight_bytes_);
    if (cap <= 1) return false;
  }

  last_send_ = sim_.now();  // claim the tick across the re-entrant window
  const std::int64_t n = feed_->take_bytes(cap);
  assert(n >= 1 && n <= cap);
  last_send_ = sim_.now() + n - 1;  // logical sends at now .. now+n-1
  WORMTRACE(sim_, kChanBurst, trace_node_, trace_port_, trace_worm_, n);
  if (fault_mode_ == FaultMode::kSwallow) {
    bytes_swallowed_ += n;
    last_run_swallowed_ = true;
    sim_.note_progress(n);
  } else {
    if (fault_mode_ == FaultMode::kTruncate) fault_pass_left_ -= n;
    bytes_sent_ += n;
    last_run_swallowed_ = false;
    if (bus_ != nullptr) {
      budget_left_ -= n;
      post_delivery(InFlight{false, false, nullptr, 0, n});
    } else {
      in_flight_.push_back(InFlight{false, false, nullptr, 0, n});
      in_flight_bytes_ += n;
      sim_.after(delay_, [this] { deliver_front(); });
    }
  }
  if (!pump_scheduled_) schedule_pump();
  return true;
}

void Channel::classify_fault(const TxByte& b) {
  fault_mode_ = FaultMode::kNone;
  const WormPtr& w = b.worm;
  if (faults_->link_down(this, sim_.now())) {
    faults_->note_outage_drop();  // this head byte IS a discarded worm
    fault_mode_ = FaultMode::kSwallow;
    return;
  }
  if (w->kind == WormKind::kAck || w->kind == WormKind::kNack ||
      w->kind == WormKind::kProbe || w->kind == WormKind::kProbeAck) {
    if (faults_->should_drop_control(w->id, sim_.now()))
      fault_mode_ = FaultMode::kSwallow;
    return;
  }
  // Only plain data worms are eligible for mid-flight kills: switch-level
  // multicast worms (advisory framing, no end-to-end recovery protocol) and
  // credit-scheme control worms are exempt.
  if (w->kind != WormKind::kData) return;
  if (w->mcast.has_value() && w->mcast->credit != CreditOp::kNone) return;
  if (w->truncated) return;  // already killed upstream
  // A truncated stub must stay frameable: each remaining switch strips one
  // route byte and the final adapter still needs a head and a tail byte.
  // Subtract in signed space: an offset past the route end must fail loudly,
  // not wrap to a huge hop count.
  const std::int64_t remaining_hops =
      static_cast<std::int64_t>(w->route.size()) -
      static_cast<std::int64_t>(w->route_offset);
  assert(remaining_hops >= 0 && "route offset past end of route");
  const std::int64_t min_len = remaining_hops + 2;
  if (b.wire_len - 1 < min_len) return;  // too short to kill cleanly
  if (!faults_->should_kill_worm(w->dst, w->id, sim_.now())) return;
  w->truncated = true;
  fault_mode_ = FaultMode::kTruncate;
  fault_pass_left_ =
      faults_->pick_truncation(min_len, b.wire_len - 1, w->id, sim_.now());
}

void Channel::post_delivery(InFlight b) {
  tx_committed_ += b.count;
  bus_->post(tx_exec_, rx_exec_, sim_.now() + delay_, /*late=*/false,
             [this, b = std::move(b)] { deliver_remote(b); });
}

void Channel::deliver_remote(const InFlight& b) {
  rx_delivered_ += b.count;
  rx_sim_->note_progress(b.count);
  // Landed bytes change the sink-side headroom: have the next barrier
  // republish the burst budget (once, however many runs land this window).
  if (!rx_dirty_) {
    rx_dirty_ = true;
    bus_->enqueue_barrier_task(
        rx_exec_, ShardBus::BarrierTask{
                      [](void* arg) {
                        static_cast<Channel*>(arg)->publish_rx_budget();
                      },
                      this});
  }
  assert(sink_ != nullptr && "channel delivered into the void");
  if (b.head)
    sink_->on_head(b.worm, b.wire_len, b.tail);
  else if (b.count > 1)
    sink_->on_body_burst(b.count, /*tail=*/false);
  else
    sink_->on_body(b.tail);
}

void Channel::deliver_front() {
  assert(!in_flight_.empty());
  const InFlight b = std::move(in_flight_.front());
  in_flight_.pop_front();
  in_flight_bytes_ -= b.count;
  sim_.note_progress(b.count);
  assert(sink_ != nullptr && "channel delivered into the void");
  if (b.head)
    sink_->on_head(b.worm, b.wire_len, b.tail);
  else if (b.count > 1)
    sink_->on_body_burst(b.count, /*tail=*/false);
  else
    sink_->on_body(b.tail);
}

void Channel::signal_stop() {
  // Called from the receiver side. In cross-executor mode that is the RX
  // thread, so the transmitter-state flip travels as a boundary message
  // stamped off the *receiver's* clock (the caller's frame of reference —
  // in classic mode the two clocks are the same object).
  if (bus_ != nullptr) {
    bus_->post(rx_exec_, tx_exec_, rx_sim_->now() + delay_, /*late=*/false,
               [this] {
                 stopped_ = true;
                 WORMTRACE(sim_, kChanStop, trace_node_, trace_port_,
                           trace_worm_, 0);
               });
    return;
  }
  sim_.after(delay_, [this] {
    stopped_ = true;
    WORMTRACE(sim_, kChanStop, trace_node_, trace_port_, trace_worm_, 0);
  });
}

void Channel::signal_go() {
  if (bus_ != nullptr) {
    bus_->post(rx_exec_, tx_exec_, rx_sim_->now() + delay_, /*late=*/false,
               [this] {
                 stopped_ = false;
                 WORMTRACE(sim_, kChanGo, trace_node_, trace_port_,
                           trace_worm_, 0);
                 kick();
               });
    return;
  }
  sim_.after(delay_, [this] {
    stopped_ = false;
    WORMTRACE(sim_, kChanGo, trace_node_, trace_port_, trace_worm_, 0);
    kick();
  });
}

}  // namespace wormcast
