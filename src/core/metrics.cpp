#include "core/metrics.h"

#include <cassert>

namespace wormcast {

namespace {
std::uint64_t order_key(HostId host, GroupId group) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(host)) << 32) |
         static_cast<std::uint32_t>(group);
}
}  // namespace

std::shared_ptr<MessageContext> Metrics::create_message(HostId origin,
                                                        GroupId group,
                                                        std::int64_t payload,
                                                        int destinations,
                                                        Time now) {
  auto ctx = std::make_shared<MessageContext>();
  ctx->message_id = next_id_++;
  ctx->origin = origin;
  ctx->group = group;
  ctx->payload = payload;
  ctx->destinations_total = destinations;
  ctx->created_at = now;
  ++created_;
  if (destinations > 0)
    outstanding_.emplace(ctx->message_id, ctx);
  else
    ++completed_;
  return ctx;
}

bool Metrics::on_delivered(const std::shared_ptr<MessageContext>& ctx,
                           HostId /*member*/, Time now) {
  assert(ctx->destinations_reached < ctx->destinations_total);
  ++ctx->destinations_reached;
  const bool in_window = ctx->created_at >= window_start_;
  const auto latency = static_cast<double>(now - ctx->created_at);
  if (in_window) {
    payload_delivered_ += ctx->payload;
    if (ctx->group == kNoGroup)
      unicast_latency_.add(latency);
    else
      mcast_latency_.add(latency);
  }
  if (ctx->destinations_reached == ctx->destinations_total) {
    if (in_window && ctx->group != kNoGroup) mcast_completion_.add(latency);
    // A message abandoned at repair time may still drain its in-flight
    // copies; it was already tallied as disrupted, not completed.
    if (outstanding_.erase(ctx->message_id) > 0) {
      ++completed_;
      last_completion_ = now;
      if (message_closed_hook_) message_closed_hook_(ctx);
    }
    return true;
  }
  return false;
}

void Metrics::on_delivery_failed(const std::shared_ptr<MessageContext>& ctx) {
  ++deliveries_failed_;
  if (outstanding_.erase(ctx->message_id) > 0 && message_closed_hook_)
    message_closed_hook_(ctx);
}

void Metrics::abandon_message(const std::shared_ptr<MessageContext>& ctx) {
  if (outstanding_.erase(ctx->message_id) > 0) {
    ++messages_disrupted_;
    if (message_closed_hook_) message_closed_hook_(ctx);
  }
}

bool Metrics::shrink_destinations(const std::shared_ptr<MessageContext>& ctx,
                                  Time now) {
  if (outstanding_.count(ctx->message_id) == 0) return false;
  assert(ctx->destinations_total > ctx->destinations_reached);
  --ctx->destinations_total;
  if (ctx->destinations_reached == ctx->destinations_total) {
    outstanding_.erase(ctx->message_id);
    ++completed_;
    last_completion_ = now;
    if (message_closed_hook_) message_closed_hook_(ctx);
    return true;
  }
  return false;
}

std::vector<std::shared_ptr<MessageContext>> Metrics::outstanding_messages()
    const {
  std::vector<std::shared_ptr<MessageContext>> out;
  out.reserve(outstanding_.size());
  for (const auto& [id, ctx] : outstanding_) out.push_back(ctx);
  return out;
}

void Metrics::on_confirmation(const std::shared_ptr<MessageContext>& /*ctx*/,
                              Time /*now*/) {
  // Circuit confirmation (the worm returned to its originator); counted via
  // the completion samples already, kept as a hook for tests.
}

void Metrics::record_order(HostId host, GroupId group,
                           std::uint64_t message_id) {
  orders_[order_key(host, group)].push_back(message_id);
}

const std::vector<std::uint64_t>* Metrics::order_of(HostId host,
                                                    GroupId group) const {
  const auto it = orders_.find(order_key(host, group));
  return it == orders_.end() ? nullptr : &it->second;
}

Time Metrics::oldest_outstanding_age(Time now) const {
  Time oldest = now;
  for (const auto& [id, ctx] : outstanding_)
    oldest = std::min(oldest, ctx->created_at);
  return now - oldest;
}

}  // namespace wormcast
