// Deterministic random streams for workload generation.
#pragma once

#include <cstdint>
#include <random>
#include <utility>
#include <vector>

#include "sim/types.h"

namespace wormcast {

/// A seeded random stream. Every stochastic component owns its own stream
/// (derived from the experiment seed) so that runs are reproducible and the
/// draw order of one component cannot perturb another.
class RandomStream {
 public:
  explicit RandomStream(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  /// Creates an independent child stream; deterministic in (seed, salt).
  [[nodiscard]] RandomStream fork(std::uint64_t salt) const {
    return RandomStream(seed_mix(seed_, salt));
  }

  /// Exponential inter-arrival gap with the given mean, rounded up to at
  /// least 1 byte-time (Poisson worm generation, Section 7.1).
  Time exp_interval(double mean);

  /// Geometrically distributed worm length with the given mean, at least
  /// `min_len` bytes (Section 7.1: "lengths were geometrically distributed").
  std::int64_t geometric_length(double mean, std::int64_t min_len = 1);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi);

  /// True with probability p.
  bool chance(double p);

  // Keyed (stateless) draws: deterministic in (stream seed, k1, k2, k3) and
  // independent of call order. Hot-path consumers (the channel fault hooks)
  // use these so that the *set* of events in a run — not the order the
  // simulator happens to interleave same-time events — decides each outcome.

  /// True with probability p; pure function of the seed and keys.
  [[nodiscard]] bool keyed_chance(double p, std::uint64_t k1, std::uint64_t k2,
                                  std::uint64_t k3 = 0) const;

  /// Uniform integer in [lo, hi]; pure function of the seed and keys.
  [[nodiscard]] std::int64_t keyed_uniform(std::int64_t lo, std::int64_t hi,
                                           std::uint64_t k1, std::uint64_t k2,
                                           std::uint64_t k3 = 0) const;

  /// Uniformly selects one element of `items` (must be non-empty).
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    return items[static_cast<std::size_t>(
        uniform(0, static_cast<std::int64_t>(items.size()) - 1))];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j =
          static_cast<std::size_t>(uniform(0, static_cast<std::int64_t>(i) - 1));
      std::swap(items[i - 1], items[j]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

  /// Splitmix-style seed derivation: an independent, well-mixed seed that
  /// is a pure function of (a, b). Components fork per-entity streams with
  /// it, and the sweep harness derives per-point seeds from the experiment
  /// base seed (harness::point_seed) so parallel sweep points never share
  /// or perturb each other's randomness.
  static std::uint64_t seed_mix(std::uint64_t a, std::uint64_t b);

 private:
  [[nodiscard]] std::uint64_t keyed_hash(std::uint64_t k1, std::uint64_t k2,
                                         std::uint64_t k3) const;

  std::mt19937_64 engine_;
  std::uint64_t seed_ = 0;
};

}  // namespace wormcast
