#include "net/mcast_route_builder.h"

#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>

namespace wormcast {

namespace {

struct TrieNode {
  // Ordered by port so the encoding (and thus traffic) is deterministic.
  std::map<PortId, std::unique_ptr<TrieNode>> children;
  // The destination whose path terminates exactly here (kNoHost if none).
  HostId terminal = kNoHost;
};

/// Any destination terminating in `node`'s subtree (for diagnostics).
HostId any_terminal(const TrieNode& node) {
  if (node.terminal != kNoHost) return node.terminal;
  for (const auto& [port, child] : node.children) {
    const HostId h = any_terminal(*child);
    if (h != kNoHost) return h;
  }
  return kNoHost;
}

[[noreturn]] void throw_prefix_conflict(HostId shorter, HostId longer) {
  std::ostringstream why;
  why << "multicast route for host " << shorter
      << " is a prefix of the route for host " << longer
      << " (interior-node delivery unsupported; hosts must be topology "
         "leaves)";
  throw std::invalid_argument(why.str());
}

void insert_path(TrieNode& root, const HostPath& path) {
  TrieNode* at = &root;
  for (const PortId p : path.ports) {
    if (at->terminal != kNoHost && at->terminal != path.host)
      throw_prefix_conflict(at->terminal, path.host);
    auto& slot = at->children[p];
    if (!slot) slot = std::make_unique<TrieNode>();
    at = slot.get();
  }
  if (!at->children.empty()) {
    const HostId below = any_terminal(*at);
    if (below != path.host)
      throw_prefix_conflict(path.host, below != kNoHost ? below : path.host);
  }
  at->terminal = path.host;
}

std::vector<McastRouteTree> to_branches(const TrieNode& node) {
  std::vector<McastRouteTree> out;
  for (const auto& [port, child] : node.children) {
    McastRouteTree t;
    t.port = port;
    t.children = to_branches(*child);
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace

std::vector<McastRouteTree> merge_host_paths(
    const std::vector<HostPath>& paths) {
  TrieNode root;
  for (const HostPath& p : paths) insert_path(root, p);
  if (root.children.empty())
    throw std::invalid_argument("multicast with no destinations");
  return to_branches(root);
}

std::vector<McastRouteTree> build_mcast_branches(
    const UpDownRouting& routing, HostId src,
    const std::vector<HostId>& dests) {
  std::vector<HostPath> paths;
  paths.reserve(dests.size());
  for (const HostId d : dests) {
    if (d == src) continue;
    paths.push_back(HostPath{d, routing.route(src, d).ports()});
  }
  return merge_host_paths(paths);
}

}  // namespace wormcast
