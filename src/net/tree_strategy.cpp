#include "net/tree_strategy.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "net/mcast_route_builder.h"
#include "net/tree_strategy_impl.h"

namespace wormcast {

const char* tree_strategy_name(TreeStrategyKind k) {
  switch (k) {
    case TreeStrategyKind::kSingleRoot: return "single-root";
    case TreeStrategyKind::kPartitionMerge: return "partition-merge";
    case TreeStrategyKind::kLoadAware: return "load-aware";
    case TreeStrategyKind::kMultiRoot: return "multi-root";
  }
  return "?";
}

bool parse_tree_strategy(std::string_view name, TreeStrategyKind* out) {
  std::string canon(name);
  std::replace(canon.begin(), canon.end(), '_', '-');
  for (int k = 0; k < kNumTreeStrategies; ++k) {
    const auto kind = static_cast<TreeStrategyKind>(k);
    if (canon == tree_strategy_name(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

int TreeStrategy::attach_cost(GroupId g, HostId parent, HostId child) const {
  (void)g;
  return base_routing_.hop_count(parent, child);
}

namespace detail {

// --- SingleRootStrategy ----------------------------------------------------

SingleRootStrategy::SingleRootStrategy(const Topology& topo,
                                       const UpDownRouting& base,
                                       const UpDownOptions& base_opts)
    : TreeStrategy(topo, base),
      tree_(std::make_unique<UpDownRouting>(topo, owned_tree_opts(base, base_opts))) {}

McastPlan SingleRootStrategy::plan_multicast(
    GroupId g, HostId src, const std::vector<HostId>& dests) const {
  (void)g;
  McastPlan plan;
  McastPartition part;
  for (const HostId d : dests)
    if (d != src) part.dests.push_back(d);
  part.branches = build_mcast_branches(*tree_, src, dests);
  plan.partitions.push_back(std::move(part));
  ++worms_planned_;
  return plan;
}

// --- PartitionMergeStrategy ------------------------------------------------

PartitionMergeStrategy::PartitionMergeStrategy(const TreeStrategyConfig& cfg,
                                               const Topology& topo,
                                               const UpDownRouting& base,
                                               const UpDownOptions& base_opts)
    : TreeStrategy(topo, base),
      max_worms_(std::max(1, cfg.max_worms)),
      tree_(std::make_unique<UpDownRouting>(topo, owned_tree_opts(base, base_opts))) {}

McastPlan PartitionMergeStrategy::plan_multicast(
    GroupId g, HostId src, const std::vector<HostId>& dests) const {
  (void)g;
  std::vector<HostPath> paths;
  paths.reserve(dests.size());
  for (const HostId d : dests) {
    if (d == src) continue;
    paths.push_back(HostPath{d, tree_->route(src, d).ports()});
  }
  if (paths.empty())
    throw std::invalid_argument("multicast with no destinations");
  // Lexicographic route order puts shared prefixes next to each other, so
  // partitions are contiguous runs and merging adjacent runs maximizes the
  // prefix a merged worm can share. Ties break on host id: deterministic.
  std::sort(paths.begin(), paths.end(),
            [](const HostPath& a, const HostPath& b) {
              return a.ports != b.ports ? a.ports < b.ports : a.host < b.host;
            });
  // Partition boundaries: start index of each partition in `paths`.
  std::vector<std::size_t> starts(paths.size());
  for (std::size_t i = 0; i < paths.size(); ++i) starts[i] = i;
  const auto common_prefix = [](const std::vector<PortId>& a,
                                const std::vector<PortId>& b) {
    std::size_t n = 0;
    while (n < a.size() && n < b.size() && a[n] == b[n]) ++n;
    return n;
  };
  while (starts.size() > static_cast<std::size_t>(max_worms_)) {
    // Merge the adjacent pair whose merged run keeps the longest shared
    // prefix (first such pair on ties — deterministic).
    std::size_t best = 0;
    std::size_t best_cp = 0;
    bool have = false;
    for (std::size_t i = 0; i + 1 < starts.size(); ++i) {
      const std::size_t last =
          (i + 2 < starts.size() ? starts[i + 2] : paths.size()) - 1;
      const std::size_t cp =
          common_prefix(paths[starts[i]].ports, paths[last].ports);
      if (!have || cp > best_cp) {
        best = i;
        best_cp = cp;
        have = true;
      }
    }
    starts.erase(starts.begin() + static_cast<std::ptrdiff_t>(best) + 1);
    ++partitions_merged_;
  }
  McastPlan plan;
  for (std::size_t i = 0; i < starts.size(); ++i) {
    const std::size_t end = i + 1 < starts.size() ? starts[i + 1] : paths.size();
    McastPartition part;
    std::vector<HostPath> run(paths.begin() + static_cast<std::ptrdiff_t>(starts[i]),
                              paths.begin() + static_cast<std::ptrdiff_t>(end));
    for (const HostPath& p : run) part.dests.push_back(p.host);
    std::sort(part.dests.begin(), part.dests.end());
    part.branches = merge_host_paths(run);
    plan.partitions.push_back(std::move(part));
    ++worms_planned_;
  }
  return plan;
}

// --- PerGroupStrategy ------------------------------------------------------

namespace {

std::unique_ptr<TreeStrategy> make_one(TreeStrategyKind kind,
                                       const TreeStrategyConfig& cfg,
                                       const Topology& topo,
                                       const UpDownRouting& base,
                                       const UpDownOptions& base_opts) {
  switch (kind) {
    case TreeStrategyKind::kSingleRoot:
      return std::make_unique<SingleRootStrategy>(topo, base, base_opts);
    case TreeStrategyKind::kPartitionMerge:
      return std::make_unique<PartitionMergeStrategy>(cfg, topo, base,
                                                      base_opts);
    case TreeStrategyKind::kLoadAware:
      return std::make_unique<LoadAwareStrategy>(cfg, topo, base, base_opts);
    case TreeStrategyKind::kMultiRoot:
      return std::make_unique<MultiRootStrategy>(cfg, topo, base, base_opts);
  }
  throw std::invalid_argument("unknown tree strategy kind");
}

}  // namespace

PerGroupStrategy::PerGroupStrategy(const TreeStrategyConfig& cfg,
                                   const Topology& topo,
                                   const UpDownRouting& base,
                                   const UpDownOptions& base_opts)
    : TreeStrategy(topo, base), default_kind_(cfg.kind) {
  instances_.resize(kNumTreeStrategies);
  const auto ensure = [&](TreeStrategyKind k) {
    auto& slot = instances_[static_cast<std::size_t>(k)];
    if (!slot) slot = make_one(k, cfg, topo, base, base_opts);
  };
  ensure(cfg.kind);
  for (const auto& [g, k] : cfg.per_group) {
    overrides_[g] = k;
    ensure(k);
  }
}

TreeStrategy& PerGroupStrategy::strategy_for(GroupId g) const {
  const auto it = overrides_.find(g);
  return strategy_for_kind(it == overrides_.end() ? default_kind_ : it->second);
}

void PerGroupStrategy::fail_link(LinkId l) {
  for (auto& s : instances_)
    if (s) s->fail_link(l);
}

void PerGroupStrategy::on_root_migrated(NodeId new_root) {
  for (auto& s : instances_)
    if (s) s->on_root_migrated(new_root);
}

void PerGroupStrategy::set_load_probe(LoadProbe probe) {
  for (auto& s : instances_)
    if (s) s->set_load_probe(probe);
}

bool PerGroupStrategy::replan() {
  bool changed = false;
  for (auto& s : instances_)
    if (s) changed = s->replan() || changed;
  return changed;
}

std::int64_t PerGroupStrategy::worms_planned() const {
  std::int64_t n = 0;
  for (const auto& s : instances_)
    if (s) n += s->worms_planned();
  return n;
}

std::int64_t PerGroupStrategy::partitions_merged() const {
  std::int64_t n = 0;
  for (const auto& s : instances_)
    if (s) n += s->partitions_merged();
  return n;
}

std::int64_t PerGroupStrategy::replans() const {
  std::int64_t n = 0;
  for (const auto& s : instances_)
    if (s) n += s->replans();
  return n;
}

}  // namespace detail

std::unique_ptr<TreeStrategy> make_tree_strategy(
    const TreeStrategyConfig& config, const Topology& topo,
    const UpDownRouting& base_routing, const UpDownOptions& base_opts) {
  if (!config.per_group.empty())
    return std::make_unique<detail::PerGroupStrategy>(config, topo,
                                                      base_routing, base_opts);
  return detail::make_one(config.kind, config, topo, base_routing, base_opts);
}

}  // namespace wormcast
