// Simulation hot-path benchmark: how fast does the simulator itself run?
//
// Two sections, both on the shared Myrinet testbed harness:
//
//  1. Fig12-scale mode matrix (8 hosts, 8 KB packets): burst fast path,
//     forced per-byte, and burst with the flight recorder enabled. All
//     modes produce bit-for-bit identical simulation results (pinned by
//     the burst_equivalence ctest); only event counts and wall time move.
//
//  2. Scale point (32x32 torus, 1024 hosts, LAN at rest): every host
//     runs a rate-limited app multicasting a 512-byte packet to its own
//     4-host group once per 10M byte-times. The engine matrix — (heap
//     queue + legacy 512-bt app polling) as the pre-hot-path baseline vs
//     the calendar queue and idle fast-forward. At this scale and duty
//     cycle the 512-byte-time app-poll grid IS the event stream: a
//     thousand mostly-idle hosts burn ~2 events per byte-time asking
//     "anything to do?" while the actual traffic contributes a fraction
//     of that. Fast-forward parks those polls and jumps the clock across
//     the gaps (sim/idle_poller.h); the calendar queue makes what
//     remains O(1) per event. The headline `hotpath_speedup_wall` row is
//     the hot-path acceptance number (target: >= 5x sim-bytes per
//     wall-second, equivalently wall clock, at this point).
//
// Timing discipline: each mode runs one discarded warm-up (page cache,
// allocator, branch predictors) and then best-of-K timed repetitions, so
// the reported walls measure the steady state, not cold-start order.
// The matrices run on a SweepRunner (--jobs N) like every other sweep;
// note that with --jobs > 1 the modes time each other's cache and core
// contention, so scaling studies should keep the default --jobs 1 for
// this bench and spend their cores on the *sweep* benches instead.
//
// CI runs `--quick` as a smoke test and archives BENCH_sim_hotpath.json;
// tools/perf_gate.py compares the deterministic columns exactly and the
// wall-ratio columns within a band (see bench/baselines/README.md).
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "myrinet_testbed.h"

using namespace wormcast;

namespace {

constexpr int kRepetitions = 3;  // best-of-K after one warm-up

struct Timed {
  bench::TestbedResult result;
  double wall_ms = 0.0;      // best full-run wall of `reps`
  double sim_wall_ms = 0.0;  // best event-loop wall of `reps`
};

Timed timed_run(const bench::TestbedOptions& opts, int reps) {
  Timed t;
  // Warm-up: identical run, result and time discarded.
  bench::run_testbed(opts);
  t.wall_ms = -1.0;
  t.sim_wall_ms = -1.0;
  for (int k = 0; k < reps; ++k) {
    const auto t0 = std::chrono::steady_clock::now();
    auto result = bench::run_testbed(opts);
    const auto t1 = std::chrono::steady_clock::now();
    const double wall =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (t.sim_wall_ms < 0 || result.sim_wall_ms < t.sim_wall_ms)
      t.sim_wall_ms = result.sim_wall_ms;
    if (t.wall_ms < 0 || wall < t.wall_ms) {
      t.wall_ms = wall;
      t.result = std::move(result);
    }
  }
  return t;
}

double per_sec(double count, double wall_ms) {
  return wall_ms > 0 ? count / (wall_ms / 1000.0) : 0.0;
}

void report(const char* mode, const Timed& t, bench::JsonBench& json,
            std::size_t row, bool burst, bool tracing) {
  const double events_per_s =
      per_sec(static_cast<double>(t.result.events_dispatched), t.wall_ms);
  const double bytes_per_s =
      per_sec(static_cast<double>(t.result.bytes_on_wire), t.wall_ms);
  std::printf("%s,%.1f,%lld,%.3g,%lld,%.3g,%lld,%.1f\n", mode, t.wall_ms,
              static_cast<long long>(t.result.events_dispatched), events_per_s,
              static_cast<long long>(t.result.bytes_on_wire), bytes_per_s,
              static_cast<long long>(t.result.event_queue_peak),
              t.result.throughput_mbps);
  json.set_row(row,
               {{"burst", burst ? 1.0 : 0.0},
                {"tracing", tracing ? 1.0 : 0.0},
                {"wall_ms", t.wall_ms},
                {"events", static_cast<double>(t.result.events_dispatched)},
                {"events_per_sec", events_per_s},
                {"sim_bytes", static_cast<double>(t.result.bytes_on_wire)},
                {"sim_bytes_per_wall_sec", bytes_per_s},
                {"event_queue_peak",
                 static_cast<double>(t.result.event_queue_peak)},
                {"throughput_mbps", t.result.throughput_mbps}});
}

void report_engine(const char* mode, const Timed& t, bench::JsonBench& json,
                   std::size_t row, const bench::TestbedOptions& opts) {
  const double bytes_per_s =
      per_sec(static_cast<double>(t.result.bytes_on_wire), t.sim_wall_ms);
  std::printf("%s,%.1f,%.1f,%lld,%lld,%.3g,%lld,%lld,%lld,%.2f\n", mode,
              t.sim_wall_ms, t.wall_ms,
              static_cast<long long>(t.result.events_dispatched),
              static_cast<long long>(t.result.app_polls), bytes_per_s,
              static_cast<long long>(t.result.event_queue_peak),
              static_cast<long long>(t.result.pool_fresh),
              static_cast<long long>(t.result.pool_reused),
              t.result.throughput_mbps);
  json.set_row(row,
               {{"calendar", opts.queue == EventQueueKind::kCalendar ? 1.0 : 0.0},
                {"fast_forward", opts.fast_forward ? 1.0 : 0.0},
                {"sim_wall_ms", t.sim_wall_ms},
                {"wall_ms", t.wall_ms},
                {"events", static_cast<double>(t.result.events_dispatched)},
                {"app_polls", static_cast<double>(t.result.app_polls)},
                {"sim_bytes", static_cast<double>(t.result.bytes_on_wire)},
                {"sim_bytes_per_wall_sec", bytes_per_s},
                {"event_queue_peak",
                 static_cast<double>(t.result.event_queue_peak)},
                {"pool_fresh", static_cast<double>(t.result.pool_fresh)},
                {"pool_reused", static_cast<double>(t.result.pool_reused)},
                {"throughput_mbps", t.result.throughput_mbps}});
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  const Time span = args.quick ? 600'000 : 3'000'000;
  const std::int64_t packet = 8 * 1024;

  std::printf("# Simulation hot path: fig12-scale all-send run (8 hosts, "
              "%lld-byte packets, %lld byte-times, warm-up + best of %d)\n",
              static_cast<long long>(packet), static_cast<long long>(span),
              kRepetitions);
  bench::print_header("mode", {"wall_ms", "events", "events_per_sec",
                               "sim_bytes", "sim_bytes_per_wall_sec",
                               "event_queue_peak", "throughput_mbps"});
  bench::JsonBench json("sim_hotpath");

  // --- Section 1: fig12-scale mode matrix (burst, tracing). The third
  // mode is the overhead guard — the same burst run with the flight
  // recorder on. The runtime-disabled path must stay within noise; the
  // enabled path's cost is reported so regressions are visible.
  struct Mode {
    const char* name;
    bool burst;
    bool tracing;
  };
  const std::vector<Mode> modes = {{"burst", true, false},
                                   {"per_byte", false, false},
                                   {"burst_traced", true, true}};

  // --- Section 2: the 1k-host engine matrix (LAN at rest; see header).
  struct EngineMode {
    const char* name;
    EventQueueKind queue;
    bool fast_forward;
  };
  const std::vector<EngineMode> engine_modes = {
      {"heap_poll", EventQueueKind::kHeap, false},  // pre-hot-path baseline
      {"cal_poll", EventQueueKind::kCalendar, false},
      {"cal_ff", EventQueueKind::kCalendar, true}};  // shipping default
  const int torus = 32;  // 1024 hosts
  const std::int64_t scale_packet = 512;
  const int scale_group = 4;
  const Time scale_period = 10'000'000;
  const Time scale_span = args.quick ? 9'000'000 : 20'000'000;
  const int scale_reps = args.quick ? 2 : kRepetitions;

  // Rows: modes, mode-ratio row, engine modes, engine-ratio row.
  const std::size_t engine_base = modes.size() + 1;
  json.resize_rows(engine_base + engine_modes.size() + 1);

  const harness::WallTimer sweep;
  harness::SweepRunner pool(args.jobs);
  std::vector<Timed> timed(modes.size());
  std::vector<Timed> engine_timed(engine_modes.size());
  const std::size_t n_points = modes.size() + engine_modes.size();
  const auto walls = pool.run_indexed(n_points, [&](std::size_t i) {
    if (i < modes.size()) {
      bench::TestbedOptions opts;
      opts.senders = 8;
      opts.packet_size = packet;
      opts.span = span;
      opts.burst_channels = modes[i].burst;
      opts.tracing = modes[i].tracing;
      opts.trace_cap = args.trace_cap;
      opts.shards = args.shards;
      timed[i] = timed_run(opts, kRepetitions);
    } else {
      const EngineMode& m = engine_modes[i - modes.size()];
      bench::TestbedOptions opts;
      opts.torus = torus;
      opts.senders = torus * torus;
      opts.packet_size = scale_packet;
      opts.span = scale_span;
      opts.group_size = scale_group;
      opts.inject_period = scale_period;
      opts.queue = m.queue;
      opts.fast_forward = m.fast_forward;
      opts.shards = args.shards;
      engine_timed[i - modes.size()] = timed_run(opts, scale_reps);
    }
  });
  for (std::size_t i = 0; i < modes.size(); ++i)
    report(modes[i].name, timed[i], json, i, modes[i].burst, modes[i].tracing);

  const Timed& burst = timed[0];
  const Timed& per_byte = timed[1];
  const Timed& traced = timed[2];
  const double speedup =
      burst.wall_ms > 0 ? per_byte.wall_ms / burst.wall_ms : 0.0;
  const double event_ratio =
      burst.result.events_dispatched > 0
          ? static_cast<double>(per_byte.result.events_dispatched) /
                static_cast<double>(burst.result.events_dispatched)
          : 0.0;
  const double tracing_overhead =
      burst.wall_ms > 0 ? traced.wall_ms / burst.wall_ms : 0.0;
  std::printf("# burst speedup: %.2fx wall clock, %.2fx fewer events\n",
              speedup, event_ratio);
  std::printf("# tracing overhead: %.2fx wall clock, %lld events recorded "
              "(%lld dropped; raise --trace-cap to keep them)\n",
              tracing_overhead,
              static_cast<long long>(traced.result.trace_events),
              static_cast<long long>(traced.result.trace_dropped));
  if (burst.result.throughput_mbps != per_byte.result.throughput_mbps)
    std::printf("# WARNING: modes disagree on throughput — burst bug!\n");
  if (burst.result.throughput_mbps != traced.result.throughput_mbps)
    std::printf("# WARNING: tracing changed the results — observer bug!\n");
  json.set_row(modes.size(),
               {{"speedup_wall", speedup},
                {"event_ratio", event_ratio},
                {"tracing_overhead_wall", tracing_overhead},
                {"best_of", static_cast<double>(kRepetitions)},
                {"trace_events",
                 static_cast<double>(traced.result.trace_events)},
                {"trace_dropped",
                 static_cast<double>(traced.result.trace_dropped)}});

  std::printf("# Engine matrix: %dx%d torus at rest (%d hosts, %lld-byte "
              "packets to %d-host groups every %lld byte-times, %lld "
              "byte-times, warm-up + best of %d)\n",
              torus, torus, torus * torus,
              static_cast<long long>(scale_packet), scale_group,
              static_cast<long long>(scale_period),
              static_cast<long long>(scale_span), scale_reps);
  bench::print_header("engine", {"sim_wall_ms", "wall_ms", "events",
                                 "app_polls", "sim_bytes_per_wall_sec",
                                 "event_queue_peak", "pool_fresh",
                                 "pool_reused", "throughput_mbps"});
  for (std::size_t i = 0; i < engine_modes.size(); ++i) {
    bench::TestbedOptions o;
    o.queue = engine_modes[i].queue;
    o.fast_forward = engine_modes[i].fast_forward;
    report_engine(engine_modes[i].name, engine_timed[i], json, engine_base + i,
                  o);
  }
  const Timed& baseline = engine_timed[0];
  const Timed& cal_poll = engine_timed[1];
  const Timed& cal_ff = engine_timed[2];
  // Speedups compare event-loop wall (sim_wall_ms): network construction
  // is identical across engines and amortizes out at real spans anyway.
  const double hot_speedup =
      cal_ff.sim_wall_ms > 0 ? baseline.sim_wall_ms / cal_ff.sim_wall_ms : 0.0;
  const double queue_speedup =
      cal_poll.sim_wall_ms > 0 ? baseline.sim_wall_ms / cal_poll.sim_wall_ms
                               : 0.0;
  const double hot_event_ratio =
      cal_ff.result.events_dispatched > 0
          ? static_cast<double>(baseline.result.events_dispatched) /
                static_cast<double>(cal_ff.result.events_dispatched)
          : 0.0;
  const double poll_ratio =
      cal_ff.result.app_polls > 0
          ? static_cast<double>(baseline.result.app_polls) /
                static_cast<double>(cal_ff.result.app_polls)
          : 0.0;
  // The three engines must agree bit-for-bit on the physics: calendar vs
  // heap is pinned by the queue_equivalence ctest, fast-forward vs legacy
  // polling by idle_poller_test — this is the end-to-end restatement.
  const bool agree =
      baseline.result.throughput_mbps == cal_ff.result.throughput_mbps &&
      baseline.result.throughput_mbps == cal_poll.result.throughput_mbps &&
      baseline.result.bytes_on_wire == cal_ff.result.bytes_on_wire &&
      baseline.result.loss_rate == cal_ff.result.loss_rate;
  std::printf("# hot-path speedup at 1k hosts: %.2fx wall clock "
              "(queue alone: %.2fx), %.2fx fewer events, %.1fx fewer polls\n",
              hot_speedup, queue_speedup, hot_event_ratio, poll_ratio);
  if (!agree)
    std::printf("# WARNING: engine modes disagree on results — queue or "
                "fast-forward bug!\n");
  json.set_row(engine_base + engine_modes.size(),
               {{"hotpath_speedup_wall", hot_speedup},
                {"queue_speedup_wall", queue_speedup},
                {"hotpath_event_ratio", hot_event_ratio},
                {"hotpath_poll_ratio", poll_ratio},
                {"engines_agree", agree ? 1.0 : 0.0},
                {"best_of", static_cast<double>(scale_reps)}});

  json.set_counters(traced.result.counters);
  bench::stamp_sweep_meta(json, pool, walls, sweep);
  json.write();
  return agree ? 0 : 1;
}
