file(REMOVE_RECURSE
  "CMakeFiles/fig10_torus_latency.dir/fig10_torus_latency.cpp.o"
  "CMakeFiles/fig10_torus_latency.dir/fig10_torus_latency.cpp.o.d"
  "fig10_torus_latency"
  "fig10_torus_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_torus_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
