// Up/down routing: legality (no down->up transition), reachability,
// determinism, spanning-tree restriction. Property-style sweeps over
// several topologies.
#include "net/updown.h"

#include <gtest/gtest.h>

#include <memory>

#include "net/topologies.h"
#include "sim/random.h"

namespace wormcast {
namespace {

/// Walks a source route through the topology and returns the node sequence
/// (switches) it traverses; EXPECTs it ends at `dst`'s host node.
std::vector<NodeId> walk_route(const Topology& t, HostId src, HostId dst,
                               const SourceRoute& route) {
  std::vector<NodeId> nodes;
  NodeId at = t.switch_of_host(src);
  for (std::size_t i = 0; i < route.size(); ++i) {
    nodes.push_back(at);
    at = t.neighbor_via(at, route.at(i));
  }
  EXPECT_EQ(at, t.node_of_host(dst)) << "route does not end at destination";
  return nodes;
}

/// Asserts the up/down rule: zero or more up traversals then zero or more
/// down traversals, never up after down.
void expect_legal(const Topology& t, const UpDownRouting& r, HostId src,
                  HostId dst) {
  const SourceRoute route = r.route(src, dst);
  ASSERT_GE(route.size(), 1u);
  NodeId at = t.switch_of_host(src);
  bool gone_down = false;
  for (std::size_t i = 0; i + 1 < route.size(); ++i) {  // last hop = host link
    const LinkId l = t.link_at(at, route.at(i));
    const bool up = r.is_up_traversal(l, at);
    if (up) EXPECT_FALSE(gone_down) << "up traversal after down";
    if (!up) gone_down = true;
    at = t.neighbor_via(at, route.at(i));
  }
}

struct TopoCase {
  const char* name;
  Topology topo;
};

class UpDownPropertyTest : public ::testing::TestWithParam<int> {
 protected:
  static Topology make(int which) {
    RandomStream rng(99);
    switch (which) {
      case 0: return make_torus(4, 4);
      case 1: return make_bidir_shufflenet(2, 3);
      case 2: return make_myrinet_testbed();
      case 3: return make_line(5);
      case 4: return make_star(6);
      default: return make_random_mesh(10, 3.0, rng);
    }
  }
};

TEST_P(UpDownPropertyTest, AllPairsLegalAndTerminate) {
  const Topology t = make(GetParam());
  const UpDownRouting r(t);
  for (HostId s = 0; s < t.num_hosts(); ++s) {
    for (HostId d = 0; d < t.num_hosts(); ++d) {
      if (s == d) continue;
      expect_legal(t, r, s, d);
      walk_route(t, s, d, r.route(s, d));
    }
  }
}

TEST_P(UpDownPropertyTest, RoutesAreDeterministic) {
  const Topology t = make(GetParam());
  const UpDownRouting r1(t);
  const UpDownRouting r2(t);
  for (HostId s = 0; s < t.num_hosts(); ++s)
    for (HostId d = 0; d < t.num_hosts(); ++d) {
      if (s == d) continue;
      EXPECT_EQ(r1.route(s, d).ports(), r2.route(s, d).ports());
    }
}

TEST_P(UpDownPropertyTest, HopCountSymmetryBounds) {
  const Topology t = make(GetParam());
  const UpDownRouting r(t);
  for (HostId s = 0; s < t.num_hosts(); ++s)
    for (HostId d = s + 1; d < t.num_hosts(); ++d) {
      const int ab = r.hop_count(s, d);
      const int ba = r.hop_count(d, s);
      EXPECT_GE(ab, 2);
      // Legal shortest paths in both directions have equal length (the
      // reverse of a legal up*down* path is legal).
      EXPECT_EQ(ab, ba);
    }
}

TEST_P(UpDownPropertyTest, TreeOnlyRoutesStayOnTree) {
  const Topology t = make(GetParam());
  UpDownRouting::Options opts;
  opts.tree_links_only = true;
  const UpDownRouting r(t, opts);
  const UpDownRouting full(t);
  for (HostId s = 0; s < t.num_hosts(); ++s)
    for (HostId d = 0; d < t.num_hosts(); ++d) {
      if (s == d) continue;
      const SourceRoute route = r.route(s, d);
      NodeId at = t.switch_of_host(s);
      for (std::size_t i = 0; i + 1 < route.size(); ++i) {
        const LinkId l = t.link_at(at, route.at(i));
        EXPECT_TRUE(r.on_tree(l));
        at = t.neighbor_via(at, route.at(i));
      }
      // Tree-only paths can never be shorter than unrestricted ones.
      EXPECT_GE(r.hop_count(s, d), full.hop_count(s, d));
    }
}

std::string topo_case_name(const ::testing::TestParamInfo<int>& info) {
  static const char* const names[] = {"torus4x4", "shufflenet", "myrinet",
                                      "line5",    "star6",      "random_mesh"};
  return names[info.param];
}

INSTANTIATE_TEST_SUITE_P(Topologies, UpDownPropertyTest, ::testing::Range(0, 6),
                         topo_case_name);

TEST(UpDown, RootSelectionPrefersHighestDegree) {
  const Topology t = make_star(4);  // hub has degree 4
  const UpDownRouting r(t);
  EXPECT_EQ(r.root(), 0);  // the hub switch
  EXPECT_EQ(r.level(r.root()), 0);
}

TEST(UpDown, ExplicitRootIsHonoured) {
  const Topology t = make_line(4);
  UpDownRouting::Options opts;
  opts.root = 2;
  const UpDownRouting r(t, opts);
  EXPECT_EQ(r.root(), 2);
  EXPECT_EQ(r.level(2), 0);
  EXPECT_EQ(r.level(0), 2);
}

TEST(UpDown, UpEndIsCloserToRoot) {
  const Topology t = make_torus(4, 4);
  const UpDownRouting r(t);
  for (LinkId l = 0; l < t.num_links(); ++l) {
    const NodeId up = r.up_end(l);
    const NodeId down = t.peer(l, up);
    EXPECT_LE(r.level(up), r.level(down));
    if (r.level(up) == r.level(down)) EXPECT_LT(up, down);
  }
}

TEST(UpDown, DownTreePortsPointAwayFromRoot) {
  const Topology t = make_line(3);
  const UpDownRouting r(t);
  const NodeId root = r.root();
  for (const PortId p : r.down_tree_ports(root)) {
    const LinkId l = t.link_at(root, p);
    EXPECT_TRUE(r.on_tree(l));
    EXPECT_EQ(r.up_end(l), root);
  }
  // Every node except the root hangs off exactly one up tree link, so the
  // down-tree ports across all switches + hosts cover n-1 links.
  std::size_t covered = 0;
  for (NodeId n = 0; n < t.num_nodes(); ++n)
    if (t.node(n).kind == NodeKind::kSwitch)
      covered += r.down_tree_ports(n).size();
  EXPECT_EQ(covered, static_cast<std::size_t>(t.num_nodes() - 1));
}

TEST(UpDown, RouteToRootEndsAtRoot) {
  const Topology t = make_torus(3, 3);
  const UpDownRouting r(t);
  for (HostId h = 0; h < t.num_hosts(); ++h) {
    const SourceRoute route = r.route_to_root(h);
    NodeId at = t.switch_of_host(h);
    for (std::size_t i = 0; i < route.size(); ++i)
      at = t.neighbor_via(at, route.at(i));
    EXPECT_EQ(at, r.root());
  }
}

TEST(UpDown, RouteToSelfThrows) {
  const Topology t = make_star(2);
  const UpDownRouting r(t);
  EXPECT_THROW(r.route(1, 1), std::logic_error);
}

TEST(UpDown, SetRootRecomputesInPlaceToFreshEquivalent) {
  const Topology t = make_torus(4, 4);
  UpDownRouting migrated(t);
  const NodeId new_root = t.switch_of_host(10);
  ASSERT_NE(migrated.root(), new_root);
  migrated.set_root(new_root);
  EXPECT_EQ(migrated.root(), new_root);

  // In-place migration matches a routing built at the new root directly.
  UpDownRouting::Options opts;
  opts.root = new_root;
  const UpDownRouting fresh(t, opts);
  for (HostId s = 0; s < t.num_hosts(); ++s)
    for (HostId d = 0; d < t.num_hosts(); ++d) {
      if (s == d) continue;
      EXPECT_EQ(migrated.route(s, d).ports(), fresh.route(s, d).ports());
    }
  for (NodeId n = 0; n < t.num_nodes(); ++n)
    EXPECT_EQ(migrated.level(n), fresh.level(n));
}

TEST(UpDown, SetRootAllPairsStayLegal) {
  RandomStream rng(5);
  const Topology t = make_random_mesh(10, 3.0, rng);
  UpDownRouting r(t);
  for (HostId h = 0; h < t.num_hosts(); h += 3) {
    r.set_root(t.switch_of_host(h));
    for (HostId s = 0; s < t.num_hosts(); ++s)
      for (HostId d = 0; d < t.num_hosts(); ++d) {
        if (s == d) continue;
        expect_legal(t, r, s, d);
        walk_route(t, s, d, r.route(s, d));
      }
  }
}

TEST(UpDown, SetRootToHostThrows) {
  const Topology t = make_star(3);
  UpDownRouting r(t);
  EXPECT_THROW(r.set_root(t.node_of_host(0)), std::logic_error);
}

TEST(UpDown, LevelOverrideMustLabelEveryNode) {
  std::vector<int> levels;
  const Topology t = make_clos(2, 3, 2, kDefaultLinkDelay, kDefaultLinkDelay,
                               &levels);
  UpDownOptions opts;
  opts.level_override = {0, 1};  // too short: hosts must be labelled too
  EXPECT_THROW(UpDownRouting(t, opts), std::logic_error);
}

TEST(UpDown, LevelOverridePicksLowestStageRoot) {
  // On a Clos the degree heuristic would root at a leaf (leaf degree =
  // spines + hosts > spine degree = leaves); stage labels must put the
  // root in the spine stage instead.
  std::vector<int> levels;
  const Topology t = make_clos(2, 4, 3, kDefaultLinkDelay, kDefaultLinkDelay,
                               &levels);
  const UpDownRouting plain(t);
  EXPECT_GE(plain.root(), 2) << "degree heuristic roots at a leaf";
  UpDownOptions opts;
  opts.level_override = levels;
  const UpDownRouting staged(t, opts);
  EXPECT_EQ(staged.root(), 0) << "lowest (stage, id) switch";
}

TEST(UpDown, LevelOverrideOrientsLinksByStage) {
  std::vector<int> levels;
  const Topology t = make_clos(3, 3, 1, kDefaultLinkDelay, kDefaultLinkDelay,
                               &levels);
  UpDownOptions opts;
  opts.level_override = levels;
  const UpDownRouting r(t, opts);
  for (LinkId l = 0; l < t.num_links(); ++l) {
    const NodeId up = r.up_end(l);
    const NodeId down = t.peer(l, up);
    // The up end always carries the smaller (stage, id): every spine-leaf
    // link points up at the spine, every host link up at the leaf.
    EXPECT_LT(std::make_pair(levels[up], up),
              std::make_pair(levels[down], down))
        << "link " << l;
  }
  // All host pairs remain routable through any spine orientation.
  for (HostId s = 0; s < t.num_hosts(); ++s)
    for (HostId d = 0; d < t.num_hosts(); ++d)
      if (s != d) EXPECT_NO_THROW(r.route(s, d));
}

}  // namespace
}  // namespace wormcast
