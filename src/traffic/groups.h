// Multicast group membership (Section 7: groups are specified with the
// topology; members are chosen at random).
#pragma once

#include <vector>

#include "sim/random.h"
#include "sim/types.h"

namespace wormcast {

struct MulticastGroupSpec {
  GroupId id = kNoGroup;
  std::vector<HostId> members;  // distinct hosts, any order
};

/// `n_groups` groups of `group_size` distinct members drawn uniformly from
/// `n_hosts` hosts (hosts may belong to several groups). Deterministic in
/// the stream state. Figure 10 uses 10 groups x 10 members on 64 hosts;
/// Figure 11 uses 4 groups x 6 members on 24 hosts.
std::vector<MulticastGroupSpec> make_random_groups(int n_groups, int group_size,
                                                   int n_hosts,
                                                   RandomStream& rng);

/// One group containing every host (broadcast-style workloads and the
/// Section 8.2 testbed measurements).
MulticastGroupSpec make_full_group(int n_hosts, GroupId id = 0);

}  // namespace wormcast
