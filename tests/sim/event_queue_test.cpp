#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace wormcast {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(30, [&] { fired.push_back(3); });
  q.schedule(10, [&] { fired.push_back(1); });
  q.schedule(20, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) q.schedule(5, [&fired, i] { fired.push_back(i); });
  while (!q.empty()) q.pop().action();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NextTimeReportsEarliestLiveEvent) {
  EventQueue q;
  EXPECT_EQ(q.next_time(), kTimeNever);
  auto h = q.schedule(7, [] {});
  q.schedule(9, [] {});
  EXPECT_EQ(q.next_time(), 7);
  q.cancel(h);
  EXPECT_EQ(q.next_time(), 9);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  auto h = q.schedule(1, [&] { ran = true; });
  q.cancel(h);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceIsHarmless) {
  EventQueue q;
  auto h = q.schedule(1, [] {});
  q.cancel(h);
  q.cancel(h);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelAfterFireIsHarmless) {
  EventQueue q;
  auto h = q.schedule(1, [] {});
  q.pop().action();
  q.cancel(h);  // must not corrupt later events
  bool ran = false;
  q.schedule(2, [&] { ran = true; });
  q.pop().action();
  EXPECT_TRUE(ran);
}

TEST(EventQueue, DefaultHandleIsInvalidAndIgnored) {
  EventQueue q;
  EventHandle h;
  EXPECT_FALSE(h.valid());
  q.cancel(h);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SizeCountsLiveEventsOnly) {
  EventQueue q;
  auto a = q.schedule(1, [] {});
  q.schedule(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, InterleavedCancelAndPop) {
  EventQueue q;
  std::vector<int> fired;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 100; ++i)
    handles.push_back(q.schedule(i, [&fired, i] { fired.push_back(i); }));
  for (int i = 0; i < 100; i += 2) q.cancel(handles[static_cast<std::size_t>(i)]);
  while (!q.empty()) q.pop().action();
  ASSERT_EQ(fired.size(), 50u);
  for (std::size_t i = 0; i < fired.size(); ++i)
    EXPECT_EQ(fired[i], static_cast<int>(2 * i + 1));
}

}  // namespace
}  // namespace wormcast
