file(REMOVE_RECURSE
  "CMakeFiles/ablation_updown.dir/ablation_updown.cpp.o"
  "CMakeFiles/ablation_updown.dir/ablation_updown.cpp.o.d"
  "ablation_updown"
  "ablation_updown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_updown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
