#include "check/wormcheck.h"

#include <algorithm>
#include <array>
#include <map>
#include <sstream>

#include "sim/trace_export.h"

namespace wormcast::check {

// The checker reads the builder's internals through this accessor so the
// fluent surface of Expectation stays the only public API.
struct CheckerAccess {
  using Mode = Expectation::Mode;
  using Probe = Expectation::Probe;
  static bool active(const Expectation& e) { return e.active_ && e.has_trigger_; }
  static TraceEventType trigger(const Expectation& e) { return e.trigger_; }
  static const Filter& filter(const Expectation& e) { return e.filter_; }
  static Mode mode(const Expectation& e) { return e.mode_; }
  static Time window(const Expectation& e) { return e.window_; }
  static const std::vector<Probe>& probes(const Expectation& e) {
    return e.probes_;
  }
  static const std::vector<Probe>& excuses(const Expectation& e) {
    return e.excuses_;
  }
  static const std::string& detail(const Expectation& e) { return e.detail_; }
};

namespace {

constexpr std::size_t kNumEventTypes =
    static_cast<std::size_t>(TraceEventType::kProtoDedupReset) + 1;

/// Positions (into the snapshot) of every event of one type, in record
/// order, with a parallel time vector for binary-searching windows — the
/// snapshot is time-ordered, so each per-type list is too.
struct TypeIndex {
  std::vector<std::size_t> pos;
  std::vector<Time> t;

  /// Indices of events with time in [lo, hi], as a [first, last) range
  /// into `pos`.
  [[nodiscard]] std::pair<std::size_t, std::size_t> range(Time lo,
                                                         Time hi) const {
    const auto first = std::lower_bound(t.begin(), t.end(), lo) - t.begin();
    const auto last = std::upper_bound(t.begin(), t.end(), hi) - t.begin();
    return {static_cast<std::size_t>(first), static_cast<std::size_t>(last)};
  }
};

/// A trace excerpt for the violation report: events inside the window
/// causally related to the trigger (same worm, or same node for id-less
/// triggers), capped so a flood of violations stays readable.
std::vector<TraceEvent> gather_context(const std::vector<TraceEvent>& events,
                                       const std::vector<Time>& times,
                                       const TraceEvent& trig, Time lo,
                                       Time hi) {
  constexpr std::size_t kMaxContext = 12;
  std::vector<TraceEvent> out;
  auto it = std::lower_bound(times.begin(), times.end(), lo);
  for (auto i = static_cast<std::size_t>(it - times.begin());
       i < events.size() && events[i].t <= hi; ++i) {
    const TraceEvent& e = events[i];
    const bool related = trig.worm != 0 ? e.worm == trig.worm
                                        : e.node == trig.node;
    if (!related) continue;
    out.push_back(e);
    if (out.size() >= kMaxContext) break;
  }
  return out;
}

}  // namespace

std::vector<WormPath> reconstruct_paths(const std::vector<TraceEvent>& events) {
  std::map<std::uint64_t, WormPath> paths;
  for (const TraceEvent& e : events) {
    if (e.worm == 0) continue;  // probes, repairs, crashes, flow control
    WormPath& p = paths[e.worm];
    if (p.events.empty()) {
      p.worm = e.worm;
      p.first_t = e.t;
    }
    p.attempt.push_back(p.retransmissions);
    p.events.push_back(e);
    p.last_t = e.t;
    switch (e.type) {
      case TraceEventType::kProtoRetransmit:
        ++p.retransmissions;
        break;
      case TraceEventType::kProtoReserve:
        ++p.open_reservations;
        break;
      case TraceEventType::kProtoRelease:
        if (p.open_reservations > 0) --p.open_reservations;
        break;
      default:
        break;
    }
  }
  std::vector<WormPath> out;
  out.reserve(paths.size());
  for (auto& [id, p] : paths) out.push_back(std::move(p));
  return out;
}

CheckReport run_checks(const std::vector<TraceEvent>& events,
                       const std::vector<Expectation>& rules) {
  using Access = CheckerAccess;
  using Mode = Access::Mode;

  CheckReport rep;
  rep.usable = true;
  rep.events_checked = static_cast<std::int64_t>(events.size());

  // The snapshot comes out of the ring oldest-first with non-decreasing
  // times; fall back to a stable sort if a hand-built test vector isn't.
  const std::vector<TraceEvent>* ev = &events;
  std::vector<TraceEvent> sorted;
  if (!std::is_sorted(events.begin(), events.end(),
                      [](const TraceEvent& a, const TraceEvent& b) {
                        return a.t < b.t;
                      })) {
    sorted = events;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                       return a.t < b.t;
                     });
    ev = &sorted;
  }

  const Time first_t = ev->empty() ? 0 : ev->front().t;
  const Time horizon = ev->empty() ? 0 : ev->back().t;

  std::array<TypeIndex, kNumEventTypes> index;
  std::vector<Time> times;
  times.reserve(ev->size());
  for (std::size_t i = 0; i < ev->size(); ++i) {
    const TraceEvent& e = (*ev)[i];
    TypeIndex& ti = index[static_cast<std::size_t>(e.type)];
    ti.pos.push_back(i);
    ti.t.push_back(e.t);
    times.push_back(e.t);
  }

  // Any probe of `probes` matching inside [lo, hi]? `before` restricts the
  // match to events recorded before the trigger (lookback modes).
  const auto find_match = [&](const std::vector<Access::Probe>& probes,
                              const TraceEvent& trig, std::size_t trig_pos,
                              Time lo, Time hi, bool before,
                              const TraceEvent** hit) {
    for (const Access::Probe& p : probes) {
      const TypeIndex& ti = index[static_cast<std::size_t>(p.type)];
      const auto [first, last] = ti.range(lo, hi);
      for (std::size_t k = first; k < last; ++k) {
        const std::size_t cand_pos = ti.pos[k];
        if (cand_pos == trig_pos) continue;
        if (before && cand_pos > trig_pos) continue;
        const TraceEvent& cand = (*ev)[cand_pos];
        if (p.matcher && !p.matcher(trig, cand)) continue;
        if (hit != nullptr) *hit = &cand;
        return true;
      }
    }
    return false;
  };

  for (const Expectation& rule : rules) {
    if (!Access::active(rule)) continue;
    ++rep.rules_evaluated;
    const Time window = Access::window(rule);
    const Mode mode = Access::mode(rule);
    const TypeIndex& triggers =
        index[static_cast<std::size_t>(Access::trigger(rule))];

    for (const std::size_t trig_pos : triggers.pos) {
      const TraceEvent& trig = (*ev)[trig_pos];
      if (Access::filter(rule) && !Access::filter(rule)(trig)) continue;
      ++rep.obligations;

      // Excuses waive the obligation; they may precede their trigger (a
      // send can fail before the NACK that would have demanded a retry).
      if (find_match(Access::excuses(rule), trig, trig_pos, trig.t - window,
                     trig.t + window, /*before=*/false, nullptr))
        continue;

      Time lo = trig.t;
      Time hi = trig.t;
      const TraceEvent* offender = nullptr;
      bool violated = false;
      bool judged_short = false;  // window not covered by the snapshot
      switch (mode) {
        case Mode::kRequire:
          hi = trig.t + window;
          violated = !find_match(Access::probes(rule), trig, trig_pos, lo, hi,
                                 /*before=*/false, nullptr);
          judged_short = hi > horizon;
          break;
        case Mode::kPrecededBy:
          lo = trig.t - window;
          violated = !find_match(Access::probes(rule), trig, trig_pos, lo, hi,
                                 /*before=*/true, nullptr);
          judged_short = lo < first_t;
          break;
        case Mode::kNeverWithin:
          // Forbidden history: strict left edge, so an event at exactly
          // trigger.t - window (e.g. data precisely one idle threshold
          // before a flush) is still legal.
          lo = trig.t - window + 1;
          violated = find_match(Access::probes(rule), trig, trig_pos, lo, hi,
                                /*before=*/true, &offender);
          break;
      }
      if (!violated) continue;
      if (mode != Mode::kNeverWithin && judged_short) {
        // The obligation's window runs past what the recording covers:
        // unterminated, not violated.
        ++rep.unterminated;
        continue;
      }

      Violation v;
      v.rule = rule.name();
      v.worm = trig.worm;
      v.trigger = trig;
      v.window_begin = offender != nullptr ? offender->t : lo;
      v.window_end = hi;
      v.detail = Access::detail(rule);
      v.context = gather_context(*ev, times, trig, v.window_begin, hi);
      rep.violations.push_back(std::move(v));
    }
  }
  return rep;
}

std::string CheckReport::format(std::size_t max_violations) const {
  std::ostringstream out;
  if (!usable) {
    out << "wormcheck: REFUSED -- " << refusal << '\n';
    return out.str();
  }
  out << "wormcheck: " << (violations.empty() ? "OK" : "FAIL") << " -- "
      << violations.size() << " violation(s), " << rules_evaluated
      << " rule(s), " << obligations << " obligation(s) over "
      << events_checked << " event(s), " << unterminated
      << " unterminated at horizon";
  if (events_dropped > 0)
    out << " [" << events_dropped << " event(s) lost to ring wrap]";
  out << '\n';
  const std::size_t shown = std::min(violations.size(), max_violations);
  for (std::size_t i = 0; i < shown; ++i) {
    const Violation& v = violations[i];
    out << "[" << v.rule << "] worm=" << v.worm << " window=["
        << v.window_begin << ", " << v.window_end << "]";
    if (!v.detail.empty()) out << " -- " << v.detail;
    out << '\n';
    out << "  trigger: " << format_trace_line(v.trigger) << '\n';
    for (const TraceEvent& e : v.context)
      out << "    " << format_trace_line(e) << '\n';
  }
  if (violations.size() > shown)
    out << "  ... " << (violations.size() - shown)
        << " more violation(s) elided\n";
  return out.str();
}

std::vector<Expectation> standard_rules(const CheckConfig& cfg) {
  using T = TraceEventType;
  const bool recovery = cfg.ack_timeout > 0;
  const bool bounded = recovery && cfg.max_attempts > 0;

  // Matchers. The protocol traces ACK/NACK at the refusing/accepting
  // receiver with arg = the hop sender; timeouts/retransmissions/failures
  // at the sender with arg = the successor host. "Counterparty" relates
  // the two sites of one hop send.
  const auto same_site = [](const TraceEvent& t, const TraceEvent& c) {
    return c.worm == t.worm && c.node == t.node && c.arg == t.arg;
  };
  const auto counterparty = [](const TraceEvent& t, const TraceEvent& c) {
    return c.worm == t.worm && c.node == t.arg && c.arg == t.node;
  };
  const auto same_peer_pair = [](const TraceEvent& t, const TraceEvent& c) {
    return c.node == t.node && c.arg == t.arg;
  };
  const auto either_endpoint_crashed = [](const TraceEvent& t,
                                          const TraceEvent& c) {
    return c.node == t.node || c.node == t.arg;
  };
  const auto either_endpoint_repaired = [](const TraceEvent& t,
                                           const TraceEvent& c) {
    return c.arg == t.node || c.arg == t.arg;
  };
  const auto same_worm_same_node = [](const TraceEvent& t,
                                      const TraceEvent& c) {
    return c.worm == t.worm && c.node == t.node;
  };
  const auto same_track = [](const TraceEvent& t, const TraceEvent& c) {
    return c.node == t.node && c.port == t.port;
  };
  const auto has_worm = [](const TraceEvent& e) { return e.worm != 0; };

  // Derived windows. A NACK's retransmission can hide behind one full
  // timeout round at the sender (the NACK itself may be slow); a timeout's
  // response is one capped back-off away; a suspicion's evidence (probe or
  // timeout) is at most one probing/timeout period older than the
  // suspicion timeout itself.
  const Time w_nack = cfg.ack_timeout + cfg.backoff_cap() + cfg.slack;
  const Time w_timeout = cfg.backoff_cap() + cfg.slack;
  const Time l_suspect = cfg.suspicion_timeout +
                         std::max(cfg.probe_interval, cfg.ack_timeout) +
                         cfg.slack;
  // Worst honest hold: the full attempt budget of timeout+back-off rounds,
  // doubled because a repair resets the attempt counter once per dead
  // peer, plus the suspicion wait and repair grace. Unbounded retry
  // configs legitimately hold forever, so their deadline is "never" —
  // open holds then surface as unterminated, not violations.
  const Time round = cfg.ack_timeout + cfg.backoff_cap();
  const Time b_hold = bounded ? 2 * (cfg.max_attempts + 2) * round +
                                    cfg.suspicion_timeout + cfg.repair_grace +
                                    cfg.slack
                              : Expectation::kEver;

  std::vector<Expectation> rules;

  rules.push_back(
      expect("nack-retransmit")
          .on(T::kProtoNackSent, has_worm)
          .within(w_nack)
          .followed_by(T::kProtoRetransmit, counterparty)
          .or_by(T::kProtoAckSent, same_site)  // a later copy was accepted
          .unless(T::kProtoSendFailed, counterparty)  // attempts exhausted
          .unless(T::kProtoRelease,
                  [](const TraceEvent& t, const TraceEvent& c) {
                    return c.worm == t.worm && c.node == t.arg;
                  })  // the sender's task resolved/aborted meanwhile
          .unless(T::kProtoCrash, either_endpoint_crashed)
          .unless(T::kProtoRepair, either_endpoint_repaired)
          .detail("a refused copy must be retried within one timeout plus "
                  "the back-off cap")
          .active_if(recovery));

  rules.push_back(
      expect("timeout-response")
          .on(T::kProtoAckTimeout, has_worm)
          .within(w_timeout)
          .followed_by(T::kProtoRetransmit, same_site)
          .or_by(T::kProtoSendFailed, same_site)
          .or_by(T::kProtoSuspect, same_peer_pair)
          .unless(T::kProtoAckSent, counterparty)  // slow ACK raced the timer
          .unless(T::kProtoRelease, same_worm_same_node)
          .unless(T::kProtoCrash, either_endpoint_crashed)
          .unless(T::kProtoRepair,
                  [](const TraceEvent& t, const TraceEvent& c) {
                    return c.arg == t.arg;
                  })  // repair retargeted this very send
          .unless(T::kProtoLeave,
                  [](const TraceEvent& t, const TraceEvent& c) {
                    return c.node == t.arg;
                  })  // the awaited destination voluntarily left; the
                      // leave triage shrank or retargeted this send
          .detail("an ACK timeout must resolve into a retransmission, a "
                  "send failure, or a suspicion within the back-off cap")
          .active_if(recovery));

  rules.push_back(
      expect("dedup-delivery")
          .on(T::kProtoDeliver, has_worm)
          .never_within(T::kProtoDeliver, same_worm_same_node)
          .detail("a payload must reach the application at most once per "
                  "host (duplicate slipped the dedup window)"));

  rules.push_back(
      expect("suspect-evidence")
          .on(T::kProtoSuspect)
          .within(l_suspect)
          .preceded_by(T::kProtoProbe, same_peer_pair)
          .or_by(T::kProtoAckTimeout, same_peer_pair)
          .detail("no accusation without evidence: a suspicion needs a "
                  "probe of, or an ACK timeout toward, the suspect"));

  rules.push_back(
      expect("repair-grace")
          .on(T::kProtoSuspect)
          .within(cfg.repair_grace)
          .followed_by(T::kProtoRepair,
                       [](const TraceEvent& t, const TraceEvent& c) {
                         return c.arg == t.arg;
                       })
          .unless(T::kProtoCrash,
                  [](const TraceEvent& t, const TraceEvent& c) {
                    return c.node == t.node;
                  })
          .detail("every suspicion must complete a structure repair within "
                  "repair_grace"));

  rules.push_back(
      expect("idle-flush")
          .on(T::kMcastIdleFlush)
          .never_within(T::kChanHead, same_track, cfg.idle_flush_threshold)
          .or_by(T::kChanBurst, same_track)
          .or_by(T::kChanTail, same_track)
          .detail("scheme (c) flushed a blocked unicast while the multicast "
                  "port moved data inside the idle threshold")
          .active_if(cfg.idle_flush_threshold > 0));

  rules.push_back(
      expect("hold-bound")
          .on(T::kProtoReserve, has_worm)
          .within(b_hold)
          .followed_by(T::kProtoRelease, same_worm_same_node)
          .detail("a reserved forwarding buffer must be returned within the "
                  "retry budget's worst case"));

  // Membership churn. Join/leave events carry worm = 0, node = the member,
  // arg = the group; a suspicion carries node = accuser, arg = suspect.
  rules.push_back(
      expect("join-grace")
          .on(T::kProtoJoinRequest)
          .within(cfg.join_grace + cfg.slack)
          .followed_by(T::kProtoJoinApplied, same_site)
          .or_by(T::kProtoJoinShed, same_site)
          .unless(T::kProtoCrash,
                  [](const TraceEvent& t, const TraceEvent& c) {
                    return c.node == t.node;
                  })  // the joiner died while queued
          .detail("a join must be applied or explicitly shed within "
                  "join_grace; it may not dangle in the coordinator queue")
          .active_if(cfg.join_grace > 0));

  rules.push_back(
      expect("leave-no-suspect")
          .on(T::kProtoSuspect)
          .never_within(T::kProtoLeave,
                        [](const TraceEvent& t, const TraceEvent& c) {
                          return c.node == t.arg;
                        },
                        l_suspect)
          .unless(T::kProtoCrash,
                  [](const TraceEvent& t, const TraceEvent& c) {
                    return c.node == t.arg;
                  })  // a genuine crash after the leave is fair game
          .detail("a voluntary leave is a clean departure: it must never be "
                  "mistaken for a failure by the suspicion machinery"));

  rules.push_back(
      expect("rejoin-fresh-dedup")
          .on(T::kProtoRejoin)
          .within(cfg.slack)
          .followed_by(T::kProtoDedupReset, same_site)
          .detail("a rejoining member must reset the group's dedup epoch, or "
                  "stale window state could swallow its first deliveries"));

  return rules;
}

}  // namespace wormcast::check
