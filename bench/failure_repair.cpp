// Failure detection + self-healing repair: time from a *silent* crash-stop
// host failure to the completed in-place structure repair (circuit splice,
// tree re-parenting), as a function of the suspicion timeout, on the
// Section 8.2 testbed under steady multicast traffic.
//
// The crash is never announced: survivors must notice it through ACK
// timeouts (active senders) or unanswered liveness probes (idle
// neighbours), accuse the host, and repair around it. Expected shape:
// repair latency tracks the suspicion timeout roughly linearly (the
// detector cannot accuse before the timeout matures), while rerouted
// sends and disrupted messages stay flat — they depend on what was in
// flight at the crash, not on how long detection took.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "net/topologies.h"

using namespace wormcast;

namespace {

struct Point {
  double repair_latency = 0.0;  // crash -> structures healed (byte-times)
  bool detected = false;        // false: the detector never fired
  double rerouted = 0.0;        // sends retargeted by the repair
  double disrupted = 0.0;       // messages written off at repair time
  double delivered = 0.0;       // completed / created over the whole run
};

Point run_crash(Scheme scheme, Time suspicion, Time measure,
                std::uint64_t seed) {
  // Load 0.02: sustainable by both schemes on this testbed. (The
  // root-serialized tree saturates its root link near 0.05 even without
  // faults — the serializer bottleneck of Section 6 — which would swamp
  // the repair signal this bench measures.)
  ExperimentConfig cfg = bench::sim_defaults(scheme, 0.02, 1.0, seed);
  cfg.protocol.ack_timeout = 10'000;
  cfg.protocol.retry_backoff = 2'000;
  cfg.protocol.retry_jitter = 1'000;
  cfg.protocol.max_attempts = 10;
  cfg.protocol.suspicion_timeout = suspicion;
  auto group = make_full_group(8);
  Network net(make_myrinet_testbed(), {group}, cfg);
  bench::arm_watchdog(net);

  const Time crash_at = 2'000 + measure / 2;
  net.crash_host(3, crash_at);
  net.run(/*warmup=*/2'000, measure, /*drain_cap=*/600'000);

  const Network::Summary s = net.summary();
  Point p;
  p.detected = s.hosts_removed > 0;
  p.repair_latency = p.detected
                         ? static_cast<double>(s.last_repair_time - crash_at)
                         : -1.0;  // CSV sentinel; the JSON cell goes null
  p.rerouted = static_cast<double>(s.sends_rerouted);
  p.disrupted = static_cast<double>(s.messages_disrupted);
  if (s.messages > 0)
    p.delivered = static_cast<double>(s.messages_completed) /
                  static_cast<double>(s.messages);
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const Time measure = quick ? 300'000 : 1'000'000;

  std::printf("# Silent crash-stop repair on the 8-host testbed: detection + "
              "repair latency vs suspicion timeout\n");
  std::printf("# (host 3 crashes mid-run; ack_timeout=10k, max_attempts=10; "
              "latency in byte-times)\n");
  bench::print_header("suspicion_timeout",
                      {"circuit_repair_latency", "circuit_rerouted",
                       "circuit_disrupted", "circuit_delivered",
                       "tree_repair_latency", "tree_rerouted",
                       "tree_disrupted", "tree_delivered"});
  const std::vector<Time> timeouts =
      quick ? std::vector<Time>{60'000}
            : std::vector<Time>{30'000, 60'000, 120'000};
  bench::JsonBench json("failure_repair");
  for (const Time suspicion : timeouts) {
    const Point circuit =
        run_crash(Scheme::kHamiltonianSF, suspicion, measure, 11);
    const Point tree = run_crash(Scheme::kTreeSF, suspicion, measure, 11);
    std::printf("%lld,%.0f,%.0f,%.0f,%.4f,%.0f,%.0f,%.0f,%.4f\n",
                static_cast<long long>(suspicion), circuit.repair_latency,
                circuit.rerouted, circuit.disrupted, circuit.delivered,
                tree.repair_latency, tree.rerouted, tree.disrupted,
                tree.delivered);
    std::fflush(stdout);
    json.add_row(
        {{"suspicion_timeout", static_cast<double>(suspicion)},
         {"circuit_repair_latency",
          bench::opt(circuit.repair_latency, circuit.detected)},
         {"circuit_rerouted", circuit.rerouted},
         {"circuit_disrupted", circuit.disrupted},
         {"circuit_delivered", circuit.delivered},
         {"tree_repair_latency", bench::opt(tree.repair_latency, tree.detected)},
         {"tree_rerouted", tree.rerouted},
         {"tree_disrupted", tree.disrupted},
         {"tree_delivered", tree.delivered}});
  }
  json.write();
  return 0;
}
