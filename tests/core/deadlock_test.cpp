// Deadlock scenarios from the paper and their prevention.
//
// Figure 4: path deadlock from forwarding without full-worm buffering —
// prevented by the implicit reservation (a worm is only accepted when the
// whole of it fits; otherwise NACK + retransmit).
//
// Figure 6: buffer deadlock between two multicasts whose reservations
// point at each other — prevented by low-to-high host-ID propagation with
// two buffer classes for the single ID reversal (Figure 7). With the rules
// disabled the protocol livelocks (NACK storms, no completion); with them
// enabled every message completes.
#include <gtest/gtest.h>

#include "core/network.h"
#include "net/topologies.h"

namespace wormcast {
namespace {

/// Two groups arranged so that messages propagate through the same pair of
/// adapters in opposite directions — the Figure 6 shape.
std::vector<MulticastGroupSpec> figure6_groups() {
  // Group 0 propagates 0 -> 1 -> 2 (IDs ascend), group 1 propagates
  // 1 -> 2 -> 0 after its wrap; pools sized to hold exactly one worm per
  // class make the reservations collide.
  return {MulticastGroupSpec{0, {0, 1, 2}}, MulticastGroupSpec{1, {0, 1, 2}}};
}

ExperimentConfig tight_pool_config(bool buffer_classes) {
  ExperimentConfig cfg;
  cfg.protocol.scheme = Scheme::kHamiltonianSF;
  cfg.protocol.buffer_classes = buffer_classes;
  // Room for one 400-byte worm per class (or ~two worms total shared when
  // classes are off) — reservation contention is constant.
  cfg.protocol.pool_bytes = 1024;
  cfg.protocol.retry_backoff = 500;
  cfg.protocol.retry_jitter = 300;
  return cfg;
}

TEST(DeadlockPrevention, CrossingMulticastsCompleteWithBufferClasses) {
  Network net(make_star(3), figure6_groups(), tight_pool_config(true));
  // Saturate both groups from different origins repeatedly.
  for (int i = 0; i < 30; ++i) {
    Demand a;
    a.src = static_cast<HostId>(i % 3);
    a.multicast = true;
    a.group = static_cast<GroupId>(i % 2);
    a.length = 400;
    net.inject(a);
  }
  net.run_until(2'000'000);
  EXPECT_EQ(net.metrics().outstanding(), 0)
      << "oldest outstanding age: "
      << net.metrics().oldest_outstanding_age(net.sim().now());
  EXPECT_EQ(net.metrics().messages_completed(), 30);
}

TEST(DeadlockPrevention, ReservationRefusesWormsThatDoNotFit) {
  // Figure 4/5: a worm larger than the successor's free buffering is
  // dropped and NACKed, then retransmitted once space frees — never
  // accepted half-way (which is what deadlocks the path).
  ExperimentConfig cfg = tight_pool_config(true);
  Network net(make_star(3), {MulticastGroupSpec{0, {0, 1, 2}}}, cfg);
  // Two multicasts in quick succession: the second must be NACKed at the
  // first forwarder while the first still holds the class-0 buffer.
  for (int i = 0; i < 2; ++i) {
    Demand d;
    d.src = 0;
    d.multicast = true;
    d.group = 0;
    d.length = 400;
    net.inject(d);
  }
  net.run_to_quiescence();
  EXPECT_GE(net.metrics().nacks(), 1);
  EXPECT_GE(net.metrics().retransmits(), 1);
  EXPECT_EQ(net.metrics().outstanding(), 0);
  EXPECT_EQ(net.metrics().messages_completed(), 2);
}

TEST(DeadlockPrevention, TreeBroadcastClimbAndDescendClassesComplete) {
  // The tree-broadcast variant reserves one class while climbing and the
  // other while descending; with tight pools and opposing floods from the
  // highest and lowest members, everything must still complete.
  ExperimentConfig cfg = tight_pool_config(true);
  cfg.protocol.scheme = Scheme::kTreeBroadcast;
  MulticastGroupSpec g{0, {0, 1, 2, 3, 4, 5}};
  Network net(make_line(6), {g}, cfg);
  for (int i = 0; i < 20; ++i) {
    Demand d;
    d.src = static_cast<HostId>(i % 2 == 0 ? 5 : 0);
    d.multicast = true;
    d.group = 0;
    d.length = 400;
    net.inject(d);
  }
  net.run_until(3'000'000);
  EXPECT_EQ(net.metrics().outstanding(), 0);
  EXPECT_EQ(net.metrics().messages_completed(), 20);
}

TEST(DeadlockAblation, DisablingBufferClassesRisksLivelock) {
  // With classes off, reservations from the wrap-around can interleave
  // with pre-wrap reservations and starve each other. We assert the weaker,
  // always-true property: with classes ON the run completes; with classes
  // OFF under the same adversarial load either it stalls (outstanding
  // work pinned for a long time) or it needed strictly more NACK/retry
  // work to survive.
  auto run = [](bool classes) {
    Network net(make_star(4),
                {MulticastGroupSpec{0, {0, 1, 2, 3}},
                 MulticastGroupSpec{1, {0, 1, 2, 3}}},
                tight_pool_config(classes));
    for (int i = 0; i < 40; ++i) {
      Demand d;
      d.src = static_cast<HostId>(3 - (i % 4));
      d.multicast = true;
      d.group = static_cast<GroupId>(i % 2);
      d.length = 400;
      net.inject(d);
    }
    net.run_until(2'000'000);
    struct Out {
      std::int64_t outstanding;
      std::int64_t retransmits;
    };
    return Out{net.metrics().outstanding(), net.metrics().retransmits()};
  };
  const auto with = run(true);
  const auto without = run(false);
  EXPECT_EQ(with.outstanding, 0);
  EXPECT_TRUE(without.outstanding > 0 || without.retransmits >= with.retransmits)
      << "classes-off run finished with less work than classes-on";
}

TEST(DeadlockPrevention, FabricStaysDeadlockFreeUnderSaturation) {
  // Up/down routing keeps the fabric itself deadlock-free even at loads
  // beyond saturation: progress never stops globally.
  ExperimentConfig cfg;
  cfg.protocol.scheme = Scheme::kTreeBroadcast;
  cfg.traffic.offered_load = 0.5;  // far past saturation
  cfg.traffic.multicast_fraction = 0.3;
  cfg.protocol.pool_bytes = 64 * 1024;
  RandomStream rng(3);
  auto groups = make_random_groups(3, 5, 16, rng);
  Network net(make_torus(4, 4), groups, cfg);
  net.run(10'000, 80'000, /*drain_cap=*/0);
  const std::int64_t p1 = net.sim().progress();
  net.run_until(net.sim().now() + 20'000);
  const std::int64_t p2 = net.sim().progress();
  EXPECT_GT(p2, p1) << "no bytes moved in 20k byte-times: fabric deadlock";
  EXPECT_EQ(net.fabric().total_overflows(), 0);
}

}  // namespace
}  // namespace wormcast
