// Generators for the topologies used in the paper's evaluation, plus a few
// generic shapes for tests and examples.
#pragma once

#include <cstdint>

#include "net/topology.h"
#include "sim/random.h"
#include "sim/types.h"

namespace wormcast {

/// k-ary 2-D torus of switches (rows x cols), `hosts_per_switch` hosts on
/// each switch. Figure 10 uses make_torus(8, 8, 1).
Topology make_torus(int rows, int cols, int hosts_per_switch = 1,
                    Time link_delay = kDefaultLinkDelay,
                    Time host_link_delay = kDefaultLinkDelay);

/// Bidirectional (p, k) shufflenet: k columns of p^k switches; switch
/// (c, r) links to ((c+1) mod k, r*p + d mod p^k) for d in [0, p); links are
/// full duplex (the "bidirectional" of [PLG95]). One host per switch.
/// Figure 11 uses make_bidir_shufflenet(2, 3, ...): 24 nodes.
Topology make_bidir_shufflenet(int p, int k,
                               Time link_delay = kDefaultLinkDelay,
                               Time host_link_delay = kDefaultLinkDelay);

/// The measurement testbed of Section 8.2: four switches in a line, eight
/// hosts (two per switch).
Topology make_myrinet_testbed(Time link_delay = kDefaultLinkDelay,
                              Time host_link_delay = kDefaultLinkDelay);

/// A single switch with n hosts (degenerate star; useful in unit tests).
Topology make_star(int n_hosts, Time link_delay = kDefaultLinkDelay);

/// A line of n switches, one host each.
Topology make_line(int n_switches, Time link_delay = kDefaultLinkDelay,
                   Time host_link_delay = kDefaultLinkDelay);

/// Random connected mesh: n switches, one host each, average switch degree
/// ~degree (a spanning tree plus random extra links). Used by property
/// tests to exercise routing on irregular LAN topologies.
Topology make_random_mesh(int n_switches, double degree, RandomStream& rng,
                          Time link_delay = kDefaultLinkDelay);

}  // namespace wormcast
