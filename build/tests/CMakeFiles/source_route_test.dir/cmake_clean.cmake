file(REMOVE_RECURSE
  "CMakeFiles/source_route_test.dir/net/source_route_test.cpp.o"
  "CMakeFiles/source_route_test.dir/net/source_route_test.cpp.o.d"
  "source_route_test"
  "source_route_test.pdb"
  "source_route_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/source_route_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
