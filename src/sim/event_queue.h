// A cancellable discrete-event queue ordered by (time, insertion sequence).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/types.h"

namespace wormcast {

/// Handle returned by EventQueue::schedule; can be used to cancel the event.
/// Value-semantic and cheap to copy. A default-constructed handle is invalid.
///
/// Internally the handle names a reusable slot plus the generation the slot
/// had when the event was scheduled; a stale handle (its event fired or was
/// cancelled and the slot was reused) no longer matches the slot's current
/// generation, so cancelling it is a guaranteed no-op.
class EventHandle {
 public:
  EventHandle() = default;
  [[nodiscard]] bool valid() const { return slot_ != kNoSlot; }

 private:
  friend class EventQueue;
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;
  EventHandle(std::uint32_t slot, std::uint32_t gen) : slot_(slot), gen_(gen) {}
  std::uint32_t slot_ = kNoSlot;
  std::uint32_t gen_ = 0;
};

/// Min-heap of timestamped callbacks. Events at equal times fire in
/// insertion order, which makes runs fully deterministic.
///
/// Cancellation is lazy: a cancelled event's slot is stamped dead in O(1)
/// and the heap entry is skipped later — except when the cancelled entry is
/// the current heap head, in which case it (and any dead entries it was
/// shadowing) is removed immediately. That maintains the invariant that the
/// heap head is always live, so next_time() is a pure read. When dead
/// entries ever outnumber live ones the heap is compacted in one pass, so a
/// workload that schedules and cancels millions of timers (ACK timeouts on
/// a faulted run) holds O(live) memory, not O(ever scheduled).
class EventQueue {
 public:
  using Action = std::function<void()>;

  EventQueue();

  /// Schedules `action` at absolute time `when`. Events with `late` set
  /// fire after every same-time normal event regardless of insertion
  /// order; within a class, insertion order still breaks ties. Channel
  /// pump self-schedules use the late class so that a pump scheduled far
  /// ahead (the burst fast path) and one scheduled one byte-time ahead
  /// (per-byte stepping) land at the same position in the tick.
  EventHandle schedule(Time when, Action action, bool late = false);

  /// Cancels a previously scheduled event. Cancelling an already-fired or
  /// already-cancelled event is a harmless no-op.
  void cancel(EventHandle handle);

  [[nodiscard]] bool empty() const { return live_count_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_count_; }

  /// Time of the earliest live event; kTimeNever when empty. Pure read:
  /// the head-is-live invariant means no cleanup is ever needed here.
  [[nodiscard]] Time next_time() const {
    return heap_.empty() ? kTimeNever : heap_.front().time;
  }

  /// Removes and returns the earliest live event. Precondition: !empty().
  struct Popped {
    Time time = 0;
    Action action;
  };
  Popped pop();

  /// High-water mark of heap occupancy (live + lazily-cancelled entries);
  /// the hot-path bench reports it as the queue's peak memory proxy.
  [[nodiscard]] std::size_t peak_size() const { return peak_size_; }
  /// Dead entries currently parked in the heap awaiting a skip/compaction.
  [[nodiscard]] std::size_t cancelled_in_heap() const { return cancelled_in_heap_; }

 private:
  struct Entry {
    Time time = 0;
    std::uint64_t seq = 0;   // insertion order; breaks (time, late) ties
    std::uint32_t slot = 0;  // cancellation identity
    std::uint32_t gen = 0;   // slot generation at schedule time
    bool late = false;       // fires after same-time normal events
    Action action;
  };
  /// std::push_heap/pop_heap build a max-heap w.r.t. this comparator, so
  /// "later is greater" puts the earliest (time, late, seq) at the front.
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.late != b.late) return a.late;
      return a.seq > b.seq;
    }
  };
  struct Slot {
    std::uint32_t gen = 1;
    bool live = false;
  };

  /// The generation check matters: a cancelled entry stays parked in the
  /// heap while its slot may be reused by a newer event, and slot liveness
  /// alone would make that stale entry look alive again.
  [[nodiscard]] bool entry_live(const Entry& e) const {
    const Slot& s = slots_[e.slot];
    return s.live && s.gen == e.gen;
  }
  std::uint32_t acquire_slot();
  void retire_slot(std::uint32_t slot);
  /// Pops dead entries off the heap head until it is live (or empty).
  void drop_dead_head();
  /// Rebuilds the heap without its dead entries.
  void compact();

  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_count_ = 0;
  std::size_t cancelled_in_heap_ = 0;
  std::uint64_t next_seq_ = 1;
  std::size_t peak_size_ = 0;
};

}  // namespace wormcast
