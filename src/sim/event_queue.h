// A cancellable discrete-event queue ordered by (time, late, sequence).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/action.h"
#include "sim/types.h"

namespace wormcast {

/// Which pending-event structure backs an EventQueue.
///
/// Both structures fire events in exactly the same order — the comparator
/// (time, late, insertion sequence) is a total order, so any correct
/// priority queue yields the identical event sequence bit for bit (the
/// queue-equivalence suite pins this on full experiment sweeps). They
/// differ only in cost: the flat binary heap pays O(log n) per operation
/// on one big array; the calendar queue pays amortized O(1) by hashing
/// events into time-bucketed mini-heaps, which wins once thousand-host
/// fabrics keep tens of thousands of events pending.
enum class EventQueueKind : std::uint8_t {
  kCalendar,  // bucketed calendar queue (default)
  kHeap,      // flat binary heap (PR 3's structure; equivalence + debugging)
};

[[nodiscard]] const char* to_string(EventQueueKind kind);
/// Parses "calendar" / "heap" (bench --queue flag). Returns false on junk.
bool parse_event_queue_kind(const char* name, EventQueueKind* out);

/// Handle returned by EventQueue::schedule; can be used to cancel the event.
/// Value-semantic and cheap to copy. A default-constructed handle is invalid.
///
/// Internally the handle names a reusable slot plus the generation the slot
/// had when the event was scheduled; a stale handle (its event fired or was
/// cancelled and the slot was reused) no longer matches the slot's current
/// generation, so cancelling it is a guaranteed no-op. Generations are
/// 64-bit: a uint32 would wrap after 2^32 retire/reuse cycles of one slot,
/// at which point a hoarded stale handle would alias a live event and
/// cancel() would kill it. 2^64 cycles is unreachable (centuries at a
/// billion events per wall-second), so a handle can be held forever.
class EventHandle {
 public:
  EventHandle() = default;
  [[nodiscard]] bool valid() const { return slot_ != kNoSlot; }

 private:
  friend class EventQueue;
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;
  EventHandle(std::uint32_t slot, std::uint64_t gen) : slot_(slot), gen_(gen) {}
  std::uint32_t slot_ = kNoSlot;
  std::uint64_t gen_ = 0;
};

/// Priority queue of timestamped callbacks. Events at equal times fire in
/// insertion order (late-class events after every same-time normal event),
/// which makes runs fully deterministic.
///
/// Allocation discipline: actions are InlineActions stored in the slot
/// arena (a recycled vector indexed by the handle's slot), and the
/// pending-event entries are 32-byte PODs — so schedule()/cancel()/pop()
/// never allocate in steady state, whatever the capture size, and heap
/// sift/bucket moves shuffle PODs instead of closures.
///
/// Cancellation is lazy: a cancelled event's slot is stamped dead in O(1)
/// (its action is destroyed immediately, releasing captured shared_ptrs)
/// and the parked POD entry is skipped when it surfaces — except when the
/// cancelled entry is the current head, in which case it is removed
/// immediately so the head-is-live invariant holds and next_time() stays a
/// pure read. When dead entries outnumber live ones the structure is
/// compacted in one pass, so a workload that schedules and cancels
/// millions of timers holds O(live) memory, not O(ever scheduled).
class EventQueue {
 public:
  using Action = InlineAction;

  explicit EventQueue(EventQueueKind kind = EventQueueKind::kCalendar);

  [[nodiscard]] EventQueueKind kind() const { return kind_; }

  /// Schedules `action` at absolute time `when`. Events with `late` set
  /// fire after every same-time normal event regardless of insertion
  /// order; within a class, insertion order still breaks ties. Channel
  /// pump self-schedules use the late class so that a pump scheduled far
  /// ahead (the burst fast path) and one scheduled one byte-time ahead
  /// (per-byte stepping) land at the same position in the tick.
  EventHandle schedule(Time when, Action action, bool late = false);

  /// Cancels a previously scheduled event. Cancelling an already-fired or
  /// already-cancelled event is a harmless no-op.
  void cancel(EventHandle handle);

  [[nodiscard]] bool empty() const { return live_count_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_count_; }

  /// Time of the earliest live event; kTimeNever when empty. Pure read:
  /// the head-is-live invariant means no cleanup is ever needed here.
  [[nodiscard]] Time next_time() const {
    return live_count_ == 0 ? kTimeNever : head_time_;
  }

  /// Removes and returns the earliest live event. Precondition: !empty().
  struct Popped {
    Time time = 0;
    Action action;
  };
  Popped pop();

  /// High-water mark of queue occupancy (live + lazily-cancelled entries);
  /// the hot-path bench reports it as the queue's peak memory proxy.
  [[nodiscard]] std::size_t peak_size() const { return peak_size_; }
  /// Dead entries currently parked awaiting a skip/compaction.
  [[nodiscard]] std::size_t cancelled_in_heap() const { return dead_parked_; }
  /// Calendar-mode bucket count (1 in heap mode); resize-policy telemetry.
  [[nodiscard]] std::size_t bucket_count() const {
    return kind_ == EventQueueKind::kCalendar ? buckets_.size() : 1;
  }

  /// Estimated heap bytes behind the queue (slot arena, heap/bucket
  /// storage). Capacity-based, so it is deterministic for a given event
  /// sequence — the memory audit's mem_queue_bytes counter.
  [[nodiscard]] std::size_t heap_bytes_estimate() const {
    std::size_t bytes = slots_.capacity() * sizeof(Slot) +
                        free_slots_.capacity() * sizeof(std::uint32_t) +
                        heap_.capacity() * sizeof(Entry) +
                        buckets_.capacity() * sizeof(std::vector<Entry>);
    for (const auto& b : buckets_) bytes += b.capacity() * sizeof(Entry);
    return bytes;
  }

 private:
  /// POD pending-event entry. `key` packs the tie-break: bit 63 is the
  /// late flag (late fires after every same-time normal event) and the low
  /// 63 bits are the insertion sequence — so ordering by (time, key)
  /// equals ordering by (time, late, seq). The action itself lives in the
  /// slot arena, so sift and bucket moves shuffle 32 trivially-copyable
  /// bytes, never a closure.
  struct Entry {
    Time time = 0;
    std::uint64_t key = 0;
    std::uint32_t slot = 0;
    std::uint64_t gen = 0;  // slot generation at schedule time
  };
  /// std::push_heap/pop_heap build a max-heap w.r.t. this comparator, so
  /// "later is greater" puts the earliest (time, key) at the front.
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.key > b.key;
    }
  };
  /// One arena cell: the scheduled action plus the generation stamp that
  /// invalidates stale handles and stale parked entries.
  struct Slot {
    Action action;
    std::uint64_t gen = 1;
    bool live = false;
  };

  /// The generation check matters: a cancelled entry stays parked while
  /// its slot may be reused by a newer event, and slot liveness alone
  /// would make that stale entry look alive again.
  [[nodiscard]] bool entry_live(const Entry& e) const {
    const Slot& s = slots_[e.slot];
    return s.live && s.gen == e.gen;
  }
  std::uint32_t acquire_slot(Action action);
  void retire_slot(std::uint32_t slot);

  // --- flat-heap structure ---------------------------------------------
  void heap_insert(const Entry& e);
  void heap_drop_dead_head();
  void heap_compact();
  Entry heap_take();

  // --- calendar structure ----------------------------------------------
  [[nodiscard]] std::size_t bucket_of(Time t) const {
    return static_cast<std::size_t>(static_cast<std::uint64_t>(t) >>
                                    width_log2_) &
           bucket_mask_;
  }
  [[nodiscard]] Time window_end_of(Time t) const {
    const Time width = Time{1} << width_log2_;
    return (t & ~(width - 1)) + width;
  }
  void cal_insert(const Entry& e);
  Entry cal_take();
  /// Drops dead entries off bucket `b`'s heap head.
  void cal_clean_head(std::vector<Entry>& b);
  /// Re-establishes the head cache: positions the cursor on the bucket
  /// holding the earliest live event and records its (time, key). The
  /// cursor walks forward window by window; if a full rotation finds
  /// nothing (sparse far-future events), it jumps straight to the global
  /// minimum across bucket heads instead of walking empty years.
  void cal_find_head();
  /// Rebuilds the calendar with `count` buckets and a width fitted to the
  /// current live population (power-of-two; deterministic in the queue
  /// contents). Dead parked entries are dropped in passing.
  void cal_resize(std::size_t count);
  void cal_compact() { cal_resize(buckets_.size()); }
  void cal_maybe_resize();

  EventQueueKind kind_;

  // Slot arena (both modes).
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;

  // Flat-heap state.
  std::vector<Entry> heap_;

  // Calendar state. Buckets are mini-heaps ordered by Later; the head
  // cache (head_time_/head_key_/head_slot_) always names the earliest
  // live event, which sits at buckets_[cursor_].front().
  std::vector<std::vector<Entry>> buckets_;
  std::size_t bucket_mask_ = 0;
  unsigned width_log2_ = 4;
  std::size_t cursor_ = 0;
  Time window_end_ = 0;
  std::size_t entries_parked_ = 0;  // live + dead across all buckets

  // Head cache (calendar mode; the heap keeps its head at heap_[0]).
  Time head_time_ = kTimeNever;
  std::uint64_t head_key_ = 0;
  std::uint32_t head_slot_ = 0;

  std::size_t live_count_ = 0;
  std::size_t dead_parked_ = 0;
  std::uint64_t next_seq_ = 1;
  std::size_t peak_size_ = 0;
};

}  // namespace wormcast
