// Bounded duplicate-suppression window: a set for O(1) membership plus a
// FIFO of insertion order so the memory footprint stays proportional to the
// configured window, not to the total message count. The invariant the unit
// tests pin: the set and the FIFO always describe the same keys — evicting
// the oldest FIFO entry removes exactly that key from the set.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <unordered_set>

namespace wormcast {

class DedupWindow {
 public:
  explicit DedupWindow(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Records `key` as seen. Returns false (and changes nothing) if the key
  /// is already inside the window; returns true after inserting it, evicting
  /// the oldest entries as needed to stay within capacity.
  bool insert(std::uint64_t key) {
    if (!keys_.insert(key).second) return false;
    order_.push_back(key);
    while (order_.size() > capacity_) {
      keys_.erase(order_.front());
      order_.pop_front();
    }
    return true;
  }

  [[nodiscard]] bool contains(std::uint64_t key) const {
    return keys_.count(key) != 0;
  }

  [[nodiscard]] std::size_t size() const { return order_.size(); }
  [[nodiscard]] std::size_t set_size() const { return keys_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Forgets every key and opens a new epoch. The rejoin path: a member
  /// that left and came back may legitimately re-see worm IDs its old
  /// window had recorded (recycled IDs, or pre-leave traffic it must not
  /// confuse with fresh sends) — without the reset those deliveries would
  /// be silently swallowed as duplicates.
  void reset() {
    keys_.clear();
    order_.clear();
    ++epoch_;
  }

  /// Number of resets since construction (0 = the original epoch).
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

 private:
  std::size_t capacity_;
  std::uint64_t epoch_ = 0;
  std::unordered_set<std::uint64_t> keys_;
  std::deque<std::uint64_t> order_;
};

}  // namespace wormcast
