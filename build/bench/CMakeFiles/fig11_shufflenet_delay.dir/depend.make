# Empty dependencies file for fig11_shufflenet_delay.
# This may be replaced when dependencies are built.
