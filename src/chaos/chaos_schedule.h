// Composable scripted fault patterns ("chaos schedules") over a Network.
//
// Each pattern is a deterministic function of (schedule seed, pattern
// arguments): link choices, stagger offsets, and flap windows all come
// from keyed RandomStream draws, never from call interleaving, so a
// schedule applied to a sweep point is bit-identical at any --jobs. All
// patterns use *recovering* faults (windowed outages or membership
// leave/rejoin) — the permanent-failure paths (crash_host, fail_link)
// stay what they are: separate, non-recovering events.
#pragma once

#include <cstdint>
#include <vector>

#include "core/network.h"
#include "sim/random.h"

namespace wormcast {

/// Scripted chaos over one Network. Construct per experiment point with a
/// seed forked from the point seed; every method only *schedules* faults
/// (on the injector or the membership coordinator), so all of them can be
/// called before Network::run.
class ChaosSchedule {
 public:
  ChaosSchedule(Network& net, std::uint64_t seed)
      : net_(net), rng_(seed) {}

  /// Pattern: flapping links. Picks `n` distinct links (keyed draw) and
  /// gives each flap cycles through [from, until) — alternating keyed
  /// down/up windows around the given means; every window recovers.
  /// Returns the total down-windows scheduled.
  int flap_random_links(int n, Time from, Time until, Time mean_down,
                        Time mean_up);

  /// Pattern: correlated multi-link failure. One switch (keyed draw)
  /// loses `n` of its links for the *same* window [at, at + span) — the
  /// shared-cause burst (a rebooting switch, a yanked cable tray) that
  /// independent per-link faults never produce. Links recover at
  /// at + span; routing is never recomputed. Returns the links taken down.
  int correlated_link_outage(int n, Time at, Time span);

  /// Pattern: rolling host outages. Each host of `hosts`, staggered
  /// `stagger` apart starting at `from`, voluntarily leaves every group
  /// it belongs to and requests rejoin `dwell` later (a rolling restart,
  /// expressed as clean churn rather than crashes). Returns the number of
  /// leave/rejoin pairs requested.
  int rolling_host_outages(const std::vector<HostId>& hosts, Time from,
                           Time stagger, Time dwell);

  /// Pattern: partition-then-heal. Cuts the fabric in two halves (BFS
  /// over switches from the up/down root; the first half of the switches
  /// is one side) by taking every crossing link down for
  /// [at, at + span), then heals everything at once. Returns the number
  /// of links in the cut.
  int partition_then_heal(Time at, Time span);

 private:
  Network& net_;
  RandomStream rng_;
};

}  // namespace wormcast
