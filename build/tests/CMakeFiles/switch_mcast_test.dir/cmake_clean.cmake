file(REMOVE_RECURSE
  "CMakeFiles/switch_mcast_test.dir/net/switch_mcast_test.cpp.o"
  "CMakeFiles/switch_mcast_test.dir/net/switch_mcast_test.cpp.o.d"
  "switch_mcast_test"
  "switch_mcast_test.pdb"
  "switch_mcast_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switch_mcast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
