// End-to-end smoke tests: full stack (fabric + adapters + protocols) on
// small topologies, checked for exact delivery and sane latencies.
#include <gtest/gtest.h>

#include "core/network.h"
#include "net/topologies.h"

namespace wormcast {
namespace {

ExperimentConfig quiet_config(Scheme scheme) {
  ExperimentConfig cfg;
  cfg.protocol.scheme = scheme;
  return cfg;
}

TEST(EndToEnd, UnicastAcrossOneSwitch) {
  Network net(make_star(2), {}, quiet_config(Scheme::kHamiltonianSF));
  Demand d;
  d.src = 0;
  d.dst = 1;
  d.length = 100;
  net.inject(d);
  net.run_to_quiescence();
  EXPECT_EQ(net.metrics().messages_completed(), 1);
  EXPECT_EQ(net.adapter(1).worms_received(), 1);
  EXPECT_EQ(net.adapter(1).payload_bytes_received(), 100);
  EXPECT_EQ(net.metrics().unicast_latency().count(), 1);
  // Lower bound: tx overhead + wire length + propagation over two links.
  EXPECT_GT(net.metrics().unicast_latency().mean(), 100.0);
  EXPECT_LT(net.metrics().unicast_latency().mean(), 400.0);
}

TEST(EndToEnd, UnicastAcrossLineOfSwitches) {
  Network net(make_line(4), {}, quiet_config(Scheme::kHamiltonianSF));
  Demand d;
  d.src = 0;
  d.dst = 3;
  d.length = 500;
  net.inject(d);
  net.run_to_quiescence();
  EXPECT_EQ(net.metrics().messages_completed(), 1);
  EXPECT_EQ(net.adapter(3).payload_bytes_received(), 500);
  EXPECT_EQ(net.fabric().total_overflows(), 0);
}

TEST(EndToEnd, ManyUnicastsAllDelivered) {
  Network net(make_torus(4, 4), {}, quiet_config(Scheme::kHamiltonianSF));
  for (HostId s = 0; s < net.num_hosts(); ++s) {
    Demand d;
    d.src = s;
    d.dst = (s + 5) % net.num_hosts();
    d.length = 200 + s;
    net.inject(d);
  }
  net.run_to_quiescence();
  EXPECT_EQ(net.metrics().messages_completed(), net.num_hosts());
  EXPECT_EQ(net.metrics().outstanding(), 0);
  EXPECT_EQ(net.fabric().total_overflows(), 0);
}

class McastSchemeTest : public ::testing::TestWithParam<Scheme> {};

TEST_P(McastSchemeTest, SingleMulticastReachesAllMembers) {
  MulticastGroupSpec group;
  group.id = 0;
  group.members = {0, 2, 3, 5, 6};
  Network net(make_torus(3, 3), {group}, quiet_config(GetParam()));
  Demand d;
  d.src = 3;
  d.multicast = true;
  d.group = 0;
  d.length = 256;
  net.inject(d);
  net.run_to_quiescence();
  EXPECT_EQ(net.metrics().messages_completed(), 1)
      << "outstanding=" << net.metrics().outstanding();
  // Every member but the origin received the payload exactly once.
  for (const HostId m : group.members) {
    if (m == 3) continue;
    EXPECT_EQ(net.adapter(m).payload_bytes_received(), 256) << "member " << m;
  }
  EXPECT_EQ(net.metrics().mcast_latency().count(), 4);
  EXPECT_EQ(net.fabric().total_overflows(), 0);
}

TEST_P(McastSchemeTest, BackToBackMulticastsComplete) {
  MulticastGroupSpec group;
  group.id = 0;
  group.members = {0, 1, 2, 3, 4, 5, 6, 7};
  Network net(make_torus(3, 3), {group}, quiet_config(GetParam()));
  for (int i = 0; i < 10; ++i) {
    Demand d;
    d.src = static_cast<HostId>((i * 3) % 8);
    d.multicast = true;
    d.group = 0;
    d.length = 64 + i;
    net.inject(d);
  }
  net.run_to_quiescence();
  EXPECT_EQ(net.metrics().messages_completed(), 10)
      << "outstanding=" << net.metrics().outstanding();
  EXPECT_EQ(net.metrics().outstanding(), 0);
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, McastSchemeTest,
                         ::testing::Values(Scheme::kRepeatedUnicast,
                                           Scheme::kHamiltonianSF,
                                           Scheme::kHamiltonianCT,
                                           Scheme::kTreeSF, Scheme::kTreeCT,
                                           Scheme::kTreeBroadcast),
                         [](const auto& info) {
                           std::string n = scheme_name(info.param);
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

TEST(EndToEnd, TrafficDrivenRunDeliversEverything) {
  RandomStream rng(42);
  auto groups = make_random_groups(3, 4, 16, rng);
  ExperimentConfig cfg = quiet_config(Scheme::kTreeSF);
  cfg.traffic.offered_load = 0.02;
  cfg.traffic.multicast_fraction = 0.2;
  cfg.traffic.mean_worm_len = 200.0;
  Network net(make_torus(4, 4), groups, cfg);
  net.run(/*warmup=*/20'000, /*measure=*/100'000);
  const auto s = net.summary();
  EXPECT_GT(s.messages, 50);
  EXPECT_EQ(s.outstanding, 0) << "oldest age " << s.oldest_outstanding_age;
  EXPECT_EQ(s.fabric_overflows, 0);
  EXPECT_GT(s.mcast_latency_mean, 0.0);
  EXPECT_GT(s.unicast_latency_mean, 0.0);
}

}  // namespace
}  // namespace wormcast
