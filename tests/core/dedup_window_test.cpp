// DedupWindow: the set and the eviction FIFO must describe the same keys
// at every step, and the memory footprint must stay bounded by capacity.
#include "core/dedup_window.h"

#include <gtest/gtest.h>

namespace wormcast {
namespace {

TEST(DedupWindow, InsertAndContains) {
  DedupWindow w(4);
  EXPECT_EQ(w.capacity(), 4u);
  EXPECT_FALSE(w.contains(1));
  EXPECT_TRUE(w.insert(1));
  EXPECT_TRUE(w.contains(1));
  EXPECT_FALSE(w.insert(1));  // duplicate: reports already-present
  EXPECT_EQ(w.size(), 1u);
  EXPECT_EQ(w.set_size(), 1u);
}

TEST(DedupWindow, AtCapacityNewKeyEvictsOldest) {
  DedupWindow w(3);
  for (std::uint64_t k = 1; k <= 3; ++k) EXPECT_TRUE(w.insert(k));
  EXPECT_EQ(w.size(), 3u);
  EXPECT_TRUE(w.insert(4));  // evicts 1
  EXPECT_EQ(w.size(), 3u);
  EXPECT_EQ(w.set_size(), 3u);
  EXPECT_FALSE(w.contains(1));
  EXPECT_TRUE(w.contains(2));
  EXPECT_TRUE(w.contains(3));
  EXPECT_TRUE(w.contains(4));
}

TEST(DedupWindow, ReInsertingExistingKeyDoesNotGrowOrEvict) {
  DedupWindow w(2);
  EXPECT_TRUE(w.insert(10));
  EXPECT_TRUE(w.insert(20));
  // 10 is already remembered: no FIFO entry is added, so nothing evicts.
  EXPECT_FALSE(w.insert(10));
  EXPECT_EQ(w.size(), 2u);
  EXPECT_TRUE(w.contains(10));
  EXPECT_TRUE(w.contains(20));
}

TEST(DedupWindow, EvictedKeyIsInsertableAgain) {
  DedupWindow w(2);
  w.insert(1);
  w.insert(2);
  w.insert(3);  // evicts 1
  EXPECT_FALSE(w.contains(1));
  EXPECT_TRUE(w.insert(1));  // forgotten, so it counts as new again
  EXPECT_TRUE(w.contains(1));
  EXPECT_FALSE(w.contains(2));  // 2 was the oldest and got evicted
}

TEST(DedupWindow, SetAndFifoStayCoherentUnderChurn) {
  DedupWindow w(8);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    w.insert(k % 13);  // mix of fresh inserts and duplicates
    EXPECT_EQ(w.size(), w.set_size());
    EXPECT_LE(w.size(), w.capacity());
  }
}

TEST(DedupWindow, ResetForgetsEverythingAndOpensNewEpoch) {
  DedupWindow w(4);
  EXPECT_EQ(w.epoch(), 0u);
  w.insert(1);
  w.insert(2);
  w.reset();
  EXPECT_EQ(w.epoch(), 1u);
  EXPECT_EQ(w.size(), 0u);
  EXPECT_EQ(w.set_size(), 0u);
  EXPECT_FALSE(w.contains(1));
  // A key the old epoch had recorded counts as new again — the rejoin
  // guarantee: pre-leave IDs must not swallow post-rejoin deliveries.
  EXPECT_TRUE(w.insert(1));
  EXPECT_TRUE(w.contains(1));
}

TEST(DedupWindow, ResetKeepsCapacityAndInvariants) {
  DedupWindow w(2);
  w.insert(1);
  w.insert(2);
  w.insert(3);  // evicts 1
  w.reset();
  w.reset();  // idempotent on empty state, still bumps the epoch
  EXPECT_EQ(w.epoch(), 2u);
  EXPECT_EQ(w.capacity(), 2u);
  for (std::uint64_t k = 0; k < 10; ++k) {
    w.insert(k % 3);
    EXPECT_EQ(w.size(), w.set_size());
    EXPECT_LE(w.size(), w.capacity());
  }
}

TEST(DedupWindow, ZeroCapacityIsClampedToOne) {
  DedupWindow w(0);
  EXPECT_EQ(w.capacity(), 1u);
  EXPECT_TRUE(w.insert(1));
  EXPECT_TRUE(w.insert(2));  // evicts 1
  EXPECT_EQ(w.size(), 1u);
  EXPECT_FALSE(w.contains(1));
  EXPECT_TRUE(w.contains(2));
}

}  // namespace
}  // namespace wormcast
