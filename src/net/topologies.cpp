#include "net/topologies.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

namespace wormcast {

Topology make_torus(int rows, int cols, int hosts_per_switch, Time link_delay,
                    Time host_link_delay) {
  if (rows < 2 || cols < 2) throw std::invalid_argument("torus needs >= 2x2");
  Topology t;
  std::vector<NodeId> sw(static_cast<std::size_t>(rows * cols));
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      sw[static_cast<std::size_t>(r * cols + c)] =
          t.add_switch("sw" + std::to_string(r) + "_" + std::to_string(c));
  const auto at = [&](int r, int c) {
    return sw[static_cast<std::size_t>(((r + rows) % rows) * cols +
                                       (c + cols) % cols)];
  };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      // Right and down neighbours; wrap-around covered by modular indexing.
      // A 2-wide dimension would create duplicate links, so guard it.
      if (cols > 2 || c + 1 < cols) t.connect(at(r, c), at(r, c + 1), link_delay);
      if (rows > 2 || r + 1 < rows) t.connect(at(r, c), at(r + 1, c), link_delay);
    }
  }
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c)
      for (int h = 0; h < hosts_per_switch; ++h)
        t.connect(t.add_host(), at(r, c), host_link_delay);
  t.validate();
  return t;
}

Topology make_bidir_shufflenet(int p, int k, Time link_delay,
                               Time host_link_delay) {
  if (p < 2 || k < 1) throw std::invalid_argument("shufflenet needs p>=2, k>=1");
  const int col_size = static_cast<int>(std::pow(p, k));
  Topology t;
  std::vector<std::vector<NodeId>> sw(static_cast<std::size_t>(k));
  for (int c = 0; c < k; ++c)
    for (int r = 0; r < col_size; ++r)
      sw[static_cast<std::size_t>(c)].push_back(
          t.add_switch("sw" + std::to_string(c) + "_" + std::to_string(r)));
  // Perfect-shuffle links from column c to column (c+1) mod k. Collapse
  // duplicate pairs (possible when k == 1) into a single full-duplex link.
  std::set<std::pair<NodeId, NodeId>> made;
  for (int c = 0; c < k; ++c) {
    for (int r = 0; r < col_size; ++r) {
      for (int d = 0; d < p; ++d) {
        const int r2 = (r * p + d) % col_size;
        NodeId a = sw[static_cast<std::size_t>(c)][static_cast<std::size_t>(r)];
        NodeId b = sw[static_cast<std::size_t>((c + 1) % k)]
                     [static_cast<std::size_t>(r2)];
        if (a == b) continue;
        const auto key = std::minmax(a, b);
        if (!made.insert({key.first, key.second}).second) continue;
        t.connect(a, b, link_delay);
      }
    }
  }
  for (int c = 0; c < k; ++c)
    for (int r = 0; r < col_size; ++r)
      t.connect(t.add_host(),
                sw[static_cast<std::size_t>(c)][static_cast<std::size_t>(r)],
                host_link_delay);
  t.validate();
  return t;
}

namespace {
/// Fills `levels_out` (when requested) with one stage label per node.
/// Switch labels come from `switch_level`; every host gets `host_level`.
void emit_stage_levels(const Topology& t,
                       const std::vector<int>& switch_level, int host_level,
                       std::vector<int>* levels_out) {
  if (levels_out == nullptr) return;
  levels_out->assign(static_cast<std::size_t>(t.num_nodes()), host_level);
  for (std::size_t n = 0; n < switch_level.size(); ++n)
    (*levels_out)[n] = switch_level[n];
}
}  // namespace

Topology make_clos(int spines, int leaves, int hosts_per_leaf, Time link_delay,
                   Time host_link_delay, std::vector<int>* levels_out) {
  if (spines < 1 || leaves < 2 || hosts_per_leaf < 1)
    throw std::invalid_argument("clos needs >= 1 spine, >= 2 leaves, >= 1 host/leaf");
  Topology t;
  std::vector<int> sw_level;
  std::vector<NodeId> spine_sw, leaf_sw;
  for (int s = 0; s < spines; ++s) {
    spine_sw.push_back(t.add_switch("spine" + std::to_string(s)));
    sw_level.push_back(0);
  }
  for (int l = 0; l < leaves; ++l) {
    leaf_sw.push_back(t.add_switch("leaf" + std::to_string(l)));
    sw_level.push_back(1);
  }
  for (const NodeId leaf : leaf_sw)
    for (const NodeId spine : spine_sw) t.connect(spine, leaf, link_delay);
  for (const NodeId leaf : leaf_sw)
    for (int h = 0; h < hosts_per_leaf; ++h)
      t.connect(t.add_host(), leaf, host_link_delay);
  t.validate();
  emit_stage_levels(t, sw_level, /*host_level=*/2, levels_out);
  return t;
}

Topology make_fat_tree(int k, Time link_delay, Time host_link_delay,
                       std::vector<int>* levels_out) {
  if (k < 2 || k % 2 != 0)
    throw std::invalid_argument("fat tree needs an even k >= 2");
  const int half = k / 2;
  Topology t;
  std::vector<int> sw_level;
  std::vector<NodeId> cores;
  for (int c = 0; c < half * half; ++c) {
    cores.push_back(t.add_switch("core" + std::to_string(c)));
    sw_level.push_back(0);
  }
  std::vector<std::vector<NodeId>> edges(static_cast<std::size_t>(k));
  for (int p = 0; p < k; ++p) {
    std::vector<NodeId> aggs;
    for (int a = 0; a < half; ++a) {
      aggs.push_back(
          t.add_switch("agg" + std::to_string(p) + "_" + std::to_string(a)));
      sw_level.push_back(1);
    }
    for (int e = 0; e < half; ++e) {
      edges[static_cast<std::size_t>(p)].push_back(
          t.add_switch("edge" + std::to_string(p) + "_" + std::to_string(e)));
      sw_level.push_back(2);
    }
    // Aggregation switch a serves core group [a*half, (a+1)*half).
    for (int a = 0; a < half; ++a)
      for (int i = 0; i < half; ++i)
        t.connect(cores[static_cast<std::size_t>(a * half + i)],
                  aggs[static_cast<std::size_t>(a)], link_delay);
    for (const NodeId agg : aggs)
      for (const NodeId edge : edges[static_cast<std::size_t>(p)])
        t.connect(agg, edge, link_delay);
  }
  for (int p = 0; p < k; ++p)
    for (const NodeId edge : edges[static_cast<std::size_t>(p)])
      for (int h = 0; h < half; ++h)
        t.connect(t.add_host(), edge, host_link_delay);
  t.validate();
  emit_stage_levels(t, sw_level, /*host_level=*/3, levels_out);
  return t;
}

Topology make_myrinet_testbed(Time link_delay, Time host_link_delay) {
  Topology t;
  std::vector<NodeId> sw;
  for (int i = 0; i < 4; ++i) sw.push_back(t.add_switch());
  for (int i = 0; i + 1 < 4; ++i) t.connect(sw[i], sw[i + 1], link_delay);
  for (int h = 0; h < 8; ++h) t.connect(t.add_host(), sw[h / 2], host_link_delay);
  t.validate();
  return t;
}

Topology make_star(int n_hosts, Time link_delay) {
  if (n_hosts < 1) throw std::invalid_argument("star needs >= 1 host");
  Topology t;
  const NodeId hub = t.add_switch("hub");
  for (int h = 0; h < n_hosts; ++h) t.connect(t.add_host(), hub, link_delay);
  t.validate();
  return t;
}

Topology make_line(int n_switches, Time link_delay, Time host_link_delay) {
  if (n_switches < 1) throw std::invalid_argument("line needs >= 1 switch");
  Topology t;
  std::vector<NodeId> sw;
  for (int i = 0; i < n_switches; ++i) sw.push_back(t.add_switch());
  for (int i = 0; i + 1 < n_switches; ++i)
    t.connect(sw[i], sw[i + 1], link_delay);
  for (int i = 0; i < n_switches; ++i) t.connect(t.add_host(), sw[i], host_link_delay);
  t.validate();
  return t;
}

Topology make_random_mesh(int n_switches, double degree, RandomStream& rng,
                          Time link_delay) {
  if (n_switches < 2) throw std::invalid_argument("mesh needs >= 2 switches");
  Topology t;
  std::vector<NodeId> sw;
  for (int i = 0; i < n_switches; ++i) sw.push_back(t.add_switch());
  std::set<std::pair<NodeId, NodeId>> made;
  // Keyed (stateless) draws throughout: the mesh is a pure function of the
  // stream's seed, bit-identical regardless of how many draws the caller
  // consumed before (or consumes between) calls — required for --jobs
  // replay where worker threads interleave stream use.
  // Random spanning tree: attach each switch to a random earlier one.
  for (int i = 1; i < n_switches; ++i) {
    const auto j = static_cast<int>(
        rng.keyed_uniform(0, i - 1, 0x4D35A1ull, static_cast<std::uint64_t>(i)));
    t.connect(sw[static_cast<std::size_t>(j)], sw[static_cast<std::size_t>(i)],
              link_delay);
    made.insert({sw[static_cast<std::size_t>(std::min(i, j))],
                 sw[static_cast<std::size_t>(std::max(i, j))]});
  }
  // Extra cross links up to the requested average degree, capped at the
  // simple-graph maximum so a high requested degree can't loop forever
  // asking for duplicate or self links that don't exist.
  const auto n64 = static_cast<std::int64_t>(n_switches);
  const std::int64_t max_extra = n64 * (n64 - 1) / 2 - (n64 - 1);
  const auto target_links =
      static_cast<std::int64_t>(degree * n_switches / 2.0);
  std::int64_t extra = std::min(target_links - (n_switches - 1), max_extra);
  std::int64_t attempts = n64 * n64;
  for (std::uint64_t tick = 0; extra > 0 && attempts > 0; ++tick, --attempts) {
    const auto a = static_cast<std::size_t>(
        rng.keyed_uniform(0, n_switches - 1, 0x4D35A2ull, tick, 0));
    const auto b = static_cast<std::size_t>(
        rng.keyed_uniform(0, n_switches - 1, 0x4D35A2ull, tick, 1));
    if (a == b) continue;
    const auto key = std::minmax(sw[a], sw[b]);
    if (!made.insert({key.first, key.second}).second) continue;
    t.connect(sw[a], sw[b], link_delay);
    --extra;
  }
  // Near the complete graph, rejection sampling mostly redraws existing
  // pairs; finish deterministically so the requested degree is honoured.
  for (int i = 0; i < n_switches && extra > 0; ++i) {
    for (int j = i + 1; j < n_switches && extra > 0; ++j) {
      if (!made.insert({sw[static_cast<std::size_t>(i)],
                        sw[static_cast<std::size_t>(j)]})
               .second)
        continue;
      t.connect(sw[static_cast<std::size_t>(i)],
                sw[static_cast<std::size_t>(j)], link_delay);
      --extra;
    }
  }
  for (int i = 0; i < n_switches; ++i)
    t.connect(t.add_host(), sw[static_cast<std::size_t>(i)], link_delay);
  t.validate();
  return t;
}

}  // namespace wormcast
