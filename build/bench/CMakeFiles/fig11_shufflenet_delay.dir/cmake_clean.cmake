file(REMOVE_RECURSE
  "CMakeFiles/fig11_shufflenet_delay.dir/fig11_shufflenet_delay.cpp.o"
  "CMakeFiles/fig11_shufflenet_delay.dir/fig11_shufflenet_delay.cpp.o.d"
  "fig11_shufflenet_delay"
  "fig11_shufflenet_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_shufflenet_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
