// Shared helpers for the figure-regeneration benches.
//
// Each bench binary regenerates one figure of the paper: it sweeps the
// figure's x-axis, runs the simulator at each point, and prints the same
// series the paper plots as CSV rows (plus a human-readable header).
#pragma once

#include <cstdio>
#include <string>

#include "core/network.h"

namespace wormcast::bench {

/// Prints a CSV header line: x_name,series1,series2,...
inline void print_header(const std::string& x_name,
                         const std::vector<std::string>& series) {
  std::printf("%s", x_name.c_str());
  for (const auto& s : series) std::printf(",%s", s.c_str());
  std::printf("\n");
}

/// Common experiment defaults shared by the simulation figures
/// (Section 7.1): geometric worm lengths with mean 400 bytes.
inline ExperimentConfig sim_defaults(Scheme scheme, double load,
                                     double mcast_fraction,
                                     std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.protocol.scheme = scheme;
  cfg.traffic.offered_load = load;
  cfg.traffic.multicast_fraction = mcast_fraction;
  cfg.traffic.mean_worm_len = 400.0;
  // Ample forwarding buffers: the paper's simulations study latency, not
  // loss; reservations virtually always succeed (NACKs stay possible).
  cfg.protocol.pool_bytes = 128 * 1024;
  cfg.seed = seed;
  return cfg;
}

}  // namespace wormcast::bench
