#include "sim/random.h"

#include <gtest/gtest.h>

#include <cmath>

namespace wormcast {
namespace {

TEST(RandomStream, ExpIntervalHasRequestedMean) {
  RandomStream rng(1);
  const double mean = 500.0;
  double total = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += static_cast<double>(rng.exp_interval(mean));
  EXPECT_NEAR(total / n, mean, mean * 0.05);
}

TEST(RandomStream, ExpIntervalNeverBelowOne) {
  RandomStream rng(2);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.exp_interval(1.5), 1);
}

TEST(RandomStream, GeometricLengthHasRequestedMeanAndFloor) {
  RandomStream rng(3);
  const double mean = 400.0;
  const std::int64_t min_len = 16;
  double total = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto len = rng.geometric_length(mean, min_len);
    EXPECT_GE(len, min_len);
    total += static_cast<double>(len);
  }
  EXPECT_NEAR(total / n, mean, mean * 0.05);
}

TEST(RandomStream, UniformCoversRangeInclusive) {
  RandomStream rng(4);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= (v == 3);
    saw_hi |= (v == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomStream, ChanceRespectsProbability) {
  RandomStream rng(5);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.1) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.1, 0.01);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(RandomStream, SameSeedSameSequence) {
  RandomStream a(77);
  RandomStream b(77);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform(0, 1000), b.uniform(0, 1000));
}

TEST(RandomStream, ForkedStreamsAreIndependentAndDeterministic) {
  RandomStream base(9);
  RandomStream f1 = base.fork(1);
  RandomStream f2 = base.fork(2);
  RandomStream f1_again = RandomStream(9).fork(1);
  bool all_equal = true;
  for (int i = 0; i < 50; ++i) {
    const auto a = f1.uniform(0, 1 << 30);
    const auto b = f2.uniform(0, 1 << 30);
    if (a != b) all_equal = false;
    EXPECT_EQ(a, f1_again.uniform(0, 1 << 30));
  }
  EXPECT_FALSE(all_equal);
}

TEST(RandomStream, ShuffleIsAPermutation) {
  RandomStream rng(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RandomStream, PickReturnsContainedElement) {
  RandomStream rng(12);
  const std::vector<int> v{10, 20, 30};
  for (int i = 0; i < 100; ++i) {
    const int x = rng.pick(v);
    EXPECT_TRUE(x == 10 || x == 20 || x == 30);
  }
}

}  // namespace
}  // namespace wormcast
