# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/event_queue_test[1]_include.cmake")
include("/root/repo/build/tests/simulator_test[1]_include.cmake")
include("/root/repo/build/tests/random_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/watchdog_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/updown_test[1]_include.cmake")
include("/root/repo/build/tests/source_route_test[1]_include.cmake")
include("/root/repo/build/tests/buffer_pool_test[1]_include.cmake")
include("/root/repo/build/tests/groups_test[1]_include.cmake")
include("/root/repo/build/tests/group_tables_test[1]_include.cmake")
include("/root/repo/build/tests/end_to_end_test[1]_include.cmake")
include("/root/repo/build/tests/switch_mcast_test[1]_include.cmake")
include("/root/repo/build/tests/deadlock_test[1]_include.cmake")
include("/root/repo/build/tests/ordering_test[1]_include.cmake")
include("/root/repo/build/tests/channel_test[1]_include.cmake")
include("/root/repo/build/tests/switch_test[1]_include.cmake")
include("/root/repo/build/tests/host_adapter_test[1]_include.cmake")
include("/root/repo/build/tests/ip_mapping_test[1]_include.cmake")
include("/root/repo/build/tests/generator_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_test[1]_include.cmake")
include("/root/repo/build/tests/figure3_deadlock_test[1]_include.cmake")
include("/root/repo/build/tests/credit_scheme_test[1]_include.cmake")
