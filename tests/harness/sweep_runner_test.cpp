// SweepRunner: order-stable parallel execution of independent sweep
// points, deterministic seeds, and replication merges that are identical
// at any job count. These tests run under the TSan CI job.
#include "harness/sweep_runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <stdexcept>
#include <vector>

#include "sim/random.h"

namespace wormcast::harness {
namespace {

TEST(SweepRunner, RunsEveryPointExactlyOnce) {
  SweepRunner pool(4);
  std::vector<std::atomic<int>> hits(97);
  pool.run_indexed(hits.size(), [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(SweepRunner, MapKeepsResultsInPointOrder) {
  SweepRunner pool(8);
  const auto out = pool.map<int>(
      50, [](std::size_t i) { return static_cast<int>(i * i); });
  ASSERT_EQ(out.size(), 50u);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i], static_cast<int>(i * i));
}

TEST(SweepRunner, ResultsIdenticalAcrossJobCounts) {
  auto compute = [](std::size_t i) {
    // A float-heavy computation whose result would expose any
    // job-count-dependent evaluation.
    RandomStream rng(point_seed(42, i));
    double acc = 0.0;
    for (int k = 0; k < 100; ++k) acc += rng.uniform(0, 1'000'000) * 1e-3;
    return acc;
  };
  const auto seq = SweepRunner(1).map<double>(23, compute);
  const auto par = SweepRunner(7).map<double>(23, compute);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) EXPECT_EQ(seq[i], par[i]);
}

TEST(SweepRunner, HandlesZeroPointsAndMoreJobsThanPoints) {
  SweepRunner pool(16);
  EXPECT_TRUE(pool.run_indexed(0, [](std::size_t) {}).empty());
  const auto out =
      pool.map<int>(3, [](std::size_t i) { return static_cast<int>(i) + 1; });
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
}

TEST(SweepRunner, ReportsPerPointWallClock) {
  SweepRunner pool(2);
  const auto walls = pool.run_indexed(5, [](std::size_t) {
    volatile double sink = 0;
    for (int i = 0; i < 10'000; ++i) sink = sink + i;
  });
  ASSERT_EQ(walls.size(), 5u);
  for (const double w : walls) EXPECT_GE(w, 0.0);
}

TEST(SweepRunner, RethrowsFirstPointException) {
  SweepRunner pool(4);
  EXPECT_THROW(pool.run_indexed(10,
                                [](std::size_t i) {
                                  if (i == 3)
                                    throw std::runtime_error("point 3");
                                }),
               std::runtime_error);
}

TEST(PointSeed, IndexZeroKeepsBaseSeed) {
  EXPECT_EQ(point_seed(1234, 0), 1234u);
}

TEST(PointSeed, DerivedSeedsAreDistinctAndStable) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const std::uint64_t s = point_seed(7, i);
    EXPECT_EQ(s, point_seed(7, i));  // pure function
    seen.insert(s);
  }
  EXPECT_EQ(seen.size(), 1000u);  // no collisions across a sweep
  EXPECT_NE(point_seed(7, 1), point_seed(8, 1));
}

TEST(Replicate, MatchesSequentialMergeBitForBit) {
  auto rep_stats = [](std::uint64_t seed, int) {
    RandomStream rng(seed);
    RunningStat a, b;
    for (int k = 0; k < 50; ++k) {
      a.add(static_cast<double>(rng.uniform(0, 1000)));
      b.add(rng.chance(0.5) ? 1.0 : 0.0);
    }
    return std::vector<RunningStat>{a, b};
  };

  // Reference: sequential merge in replication order.
  std::vector<RunningStat> expect = rep_stats(point_seed(99, 0), 0);
  for (int r = 1; r < 6; ++r) {
    const auto rep = rep_stats(point_seed(99, r), r);
    for (std::size_t s = 0; s < expect.size(); ++s) expect[s].merge(rep[s]);
  }

  for (const int jobs : {1, 4}) {
    const auto merged = SweepRunner(jobs).replicate(99, 6, rep_stats);
    ASSERT_EQ(merged.size(), expect.size());
    for (std::size_t s = 0; s < merged.size(); ++s) {
      EXPECT_EQ(merged[s].count(), expect[s].count());
      EXPECT_EQ(merged[s].mean(), expect[s].mean());
      EXPECT_EQ(merged[s].variance(), expect[s].variance());
      EXPECT_EQ(merged[s].min(), expect[s].min());
      EXPECT_EQ(merged[s].max(), expect[s].max());
    }
  }
}

}  // namespace
}  // namespace wormcast::harness
