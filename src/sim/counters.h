// Uniform counter serialization.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace wormcast {

/// A registry of named numeric getters. Components register their counters
/// once (Network::register_counters wires up Metrics, the fabric, the
/// multicast engine, the simulator and the tracer); bench emitters then
/// snapshot every registered counter into their JSON without knowing each
/// component's accessors — new counters show up in every BENCH_*.json
/// automatically.
class CounterRegistry {
 public:
  using Getter = std::function<double()>;

  void add(std::string name, Getter getter) {
    entries_.emplace_back(std::move(name), std::move(getter));
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Evaluates every getter now: (name, value) in registration order.
  [[nodiscard]] std::vector<std::pair<std::string, double>> snapshot() const {
    std::vector<std::pair<std::string, double>> out;
    out.reserve(entries_.size());
    for (const auto& [name, get] : entries_) out.emplace_back(name, get());
    return out;
  }

 private:
  std::vector<std::pair<std::string, Getter>> entries_;
};

}  // namespace wormcast
