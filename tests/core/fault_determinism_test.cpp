// Seed stability under fault injection: the injector draws from its own
// forked stream, so the same seed must reproduce the same faults, the same
// recoveries and the same statistics, bit for bit.
#include <gtest/gtest.h>

#include "core/network.h"
#include "net/topologies.h"

namespace wormcast {
namespace {

Network::Summary run_faulted(std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.protocol.scheme = Scheme::kHamiltonianSF;
  cfg.protocol.ack_timeout = 20'000;
  cfg.protocol.retry_backoff = 2'000;
  cfg.protocol.retry_jitter = 1'000;
  cfg.protocol.pool_bytes = 128 * 1024;
  cfg.faults.worm_kill_rate = 0.05;
  cfg.faults.ctrl_loss_rate = 0.05;
  cfg.faults.rx_drop_rate = 0.02;
  cfg.traffic.offered_load = 0.05;
  cfg.traffic.multicast_fraction = 0.3;
  cfg.seed = seed;
  MulticastGroupSpec group;
  group.id = 0;
  for (HostId h = 0; h < 8; ++h) group.members.push_back(h);
  Network net(make_myrinet_testbed(), {group}, cfg);
  net.run(/*warmup=*/2'000, /*measure=*/30'000, /*drain_cap=*/300'000);
  return net.summary();
}

TEST(FaultDeterminism, SameSeedSameStatistics) {
  const Network::Summary a = run_faulted(1234);
  const Network::Summary b = run_faulted(1234);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.messages_completed, b.messages_completed);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.ack_timeouts, b.ack_timeouts);
  EXPECT_EQ(a.duplicates_suppressed, b.duplicates_suppressed);
  EXPECT_EQ(a.retransmits, b.retransmits);
  EXPECT_EQ(a.nacks, b.nacks);
  EXPECT_EQ(a.drops, b.drops);
  EXPECT_EQ(a.deliveries_failed, b.deliveries_failed);
  EXPECT_EQ(a.outstanding, b.outstanding);
  // Latencies are sums of integer byte-times; identical runs give bitwise
  // identical doubles.
  EXPECT_EQ(a.mcast_latency_mean, b.mcast_latency_mean);
  EXPECT_EQ(a.mcast_latency_p95, b.mcast_latency_p95);
  EXPECT_EQ(a.mcast_completion_mean, b.mcast_completion_mean);
  EXPECT_EQ(a.throughput_per_host, b.throughput_per_host);
  EXPECT_GT(a.faults_injected, 0) << "scenario must actually exercise faults";
}

// link_down() is a pure predicate: callers may query it any number of
// times (e.g. once per byte) without inflating the drop counter; only the
// site that actually discards a worm calls note_outage_drop().
TEST(FaultDeterminism, LinkDownQueryNeverCounts) {
  FaultInjector faults(RandomStream(1));
  const int channel_tag = 0;  // address used as the channel identity key
  faults.schedule_outage(&channel_tag, 10, 20);
  EXPECT_FALSE(faults.link_down(&channel_tag, 5));
  EXPECT_TRUE(faults.link_down(&channel_tag, 15));
  EXPECT_TRUE(faults.link_down(&channel_tag, 15));  // double query, no effect
  EXPECT_FALSE(faults.link_down(&channel_tag, 25));
  EXPECT_EQ(faults.outage_drops(), 0);
  faults.note_outage_drop();
  EXPECT_EQ(faults.outage_drops(), 1);
  // Permanent death: an outage that never ends, counted separately.
  faults.kill_link(&channel_tag);
  EXPECT_TRUE(faults.link_down(&channel_tag, 1'000'000'000));
  EXPECT_EQ(faults.links_killed(), 1);
  EXPECT_EQ(faults.outage_drops(), 1);
}

TEST(FaultDeterminism, DifferentSeedDifferentFaults) {
  const Network::Summary a = run_faulted(1234);
  const Network::Summary b = run_faulted(987654321);
  // With tens of fault rolls per run the chance of a full collision across
  // these fields is negligible.
  EXPECT_TRUE(a.faults_injected != b.faults_injected ||
              a.mcast_latency_mean != b.mcast_latency_mean ||
              a.messages != b.messages);
}

}  // namespace
}  // namespace wormcast
