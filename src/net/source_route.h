// Myrinet-style source routes.
//
// A unicast source route is the list of switch output-port numbers on the
// path from source host to destination host; each switch consumes (strips)
// the leading byte. A multicast source route (Section 3 / Figure 2 of the
// paper) is a depth-first linearization of the delivery *tree*: at each
// switch the header holds one or more (port, pointer) pairs, where the
// pointer is a byte count to the start of the next subtree's route and the
// bytes in between form the leftmost subtree's route; `E` marks the end of
// a branch list.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.h"

namespace wormcast {

/// Linear (unicast) source route: output port to take at each switch.
class SourceRoute {
 public:
  SourceRoute() = default;
  explicit SourceRoute(std::vector<PortId> ports) : ports_(std::move(ports)) {}

  [[nodiscard]] std::size_t size() const { return ports_.size(); }
  [[nodiscard]] bool empty() const { return ports_.empty(); }
  /// Empties the route but keeps the allocation (worm-recycling path).
  void clear() { ports_.clear(); }
  [[nodiscard]] PortId at(std::size_t hop) const { return ports_[hop]; }
  [[nodiscard]] const std::vector<PortId>& ports() const { return ports_; }

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<PortId> ports_;
};

/// A multicast route tree: the output port taken at a switch plus the
/// subtrees hanging off the downstream switch. A leaf edge is the final hop
/// to a destination host's port.
struct McastRouteTree {
  PortId port = kNoPort;
  std::vector<McastRouteTree> children;  // subtrees at the *next* switch

  friend bool operator==(const McastRouteTree&, const McastRouteTree&) = default;
};

/// Encoded multicast source route (Figure 2): a byte string of
/// port / pointer / end-marker entries as carried in the worm header.
///
/// Encoding grammar per switch:  branch* E  where
///   branch := PORT POINTER subroute     (POINTER = byte distance from the
///             position after the pointer to the next branch's PORT)
/// A leaf branch has an empty subroute (its pointer points at the next
/// branch or at the terminating E).
class EncodedMcastRoute {
 public:
  EncodedMcastRoute() = default;

  /// Builds the wire encoding for a list of branches leaving the first
  /// switch (the forest hanging off the injection switch).
  static EncodedMcastRoute encode(const std::vector<McastRouteTree>& branches);

  /// Wraps raw wire bytes (e.g. received off the link); validity is checked
  /// lazily by split()/decode().
  static EncodedMcastRoute from_bytes(std::vector<std::uint8_t> bytes) {
    return EncodedMcastRoute(std::move(bytes));
  }

  /// Splits the route at a switch: returns, for each branch leaving this
  /// switch, the output port and the encoded route to stamp on the copy
  /// exiting that port. Throws std::invalid_argument on malformed input.
  [[nodiscard]] std::vector<struct McastBranch> split() const;

  /// Decodes the full tree (inverse of encode); used by tests and tools.
  [[nodiscard]] std::vector<McastRouteTree> decode() const;

  [[nodiscard]] std::size_t size_bytes() const { return bytes_.size(); }
  [[nodiscard]] bool empty() const;
  /// Empties the route but keeps the allocation (worm-recycling path).
  void clear() { bytes_.clear(); }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const EncodedMcastRoute&, const EncodedMcastRoute&) = default;

 private:
  explicit EncodedMcastRoute(std::vector<std::uint8_t> bytes)
      : bytes_(std::move(bytes)) {}

  static void encode_level(const std::vector<McastRouteTree>& branches,
                           std::vector<std::uint8_t>& out);

  // Wire bytes. Values 0..kMaxPort are ports; kEndMarker terminates a
  // branch list; pointers are raw byte counts.
  std::vector<std::uint8_t> bytes_;
};

/// One branch leaving a switch, as produced by EncodedMcastRoute::split().
struct McastBranch {
  PortId port = kNoPort;
  EncodedMcastRoute subroute;
};

/// Port values must leave room for the end marker in the 8-bit space.
inline constexpr std::uint8_t kRouteEndMarker = 0xFF;
inline constexpr int kMaxEncodablePort = 0xFE;

}  // namespace wormcast
