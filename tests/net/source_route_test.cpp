// Multicast source-route encoding (Figure 2): round-trip, split semantics,
// malformed input rejection, randomized property sweep.
#include "net/source_route.h"

#include <gtest/gtest.h>

#include "sim/random.h"

namespace wormcast {
namespace {

McastRouteTree leaf(PortId p) { return McastRouteTree{p, {}}; }
McastRouteTree node(PortId p, std::vector<McastRouteTree> kids) {
  return McastRouteTree{p, std::move(kids)};
}

TEST(SourceRoute, ToStringAndAccess) {
  const SourceRoute r({3, 1, 4});
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(r.at(0), 3);
  EXPECT_EQ(r.at(2), 4);
  EXPECT_EQ(r.to_string(), "3.1.4");
  EXPECT_TRUE(SourceRoute{}.empty());
}

TEST(EncodedMcastRoute, SingleLeafRoundTrips) {
  const std::vector<McastRouteTree> tree{leaf(5)};
  const auto enc = EncodedMcastRoute::encode(tree);
  EXPECT_EQ(enc.decode(), tree);
  const auto branches = enc.split();
  ASSERT_EQ(branches.size(), 1u);
  EXPECT_EQ(branches[0].port, 5);
  EXPECT_TRUE(branches[0].subroute.empty());
}

TEST(EncodedMcastRoute, PaperFigure2Shape) {
  // The Figure 2 example: at the first switch the worm forks to ports 1 and
  // 3; the port-1 copy continues via port 2 then port 5; the port-3 copy
  // forks to ports 4 (then 1) and 7.
  const std::vector<McastRouteTree> tree{
      node(1, {node(2, {leaf(5)})}),
      node(3, {node(4, {leaf(1)}), leaf(7)}),
  };
  const auto enc = EncodedMcastRoute::encode(tree);
  EXPECT_EQ(enc.decode(), tree);

  const auto top = enc.split();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].port, 1);
  EXPECT_EQ(top[1].port, 3);

  // Copy leaving port 1 carries "2 ... 5 ..." — one branch to port 2.
  const auto left = top[0].subroute.split();
  ASSERT_EQ(left.size(), 1u);
  EXPECT_EQ(left[0].port, 2);
  const auto left2 = left[0].subroute.split();
  ASSERT_EQ(left2.size(), 1u);
  EXPECT_EQ(left2[0].port, 5);
  EXPECT_TRUE(left2[0].subroute.empty());

  // Copy leaving port 3 carries branches to ports 4 and 7.
  const auto right = top[1].subroute.split();
  ASSERT_EQ(right.size(), 2u);
  EXPECT_EQ(right[0].port, 4);
  EXPECT_EQ(right[1].port, 7);
  EXPECT_TRUE(right[1].subroute.empty());
}

TEST(EncodedMcastRoute, EncodeRejectsBadPorts) {
  EXPECT_THROW(EncodedMcastRoute::encode({leaf(-1)}), std::invalid_argument);
  EXPECT_THROW(EncodedMcastRoute::encode({leaf(255)}), std::invalid_argument);
  EXPECT_THROW(EncodedMcastRoute::encode({}), std::invalid_argument);
}

TEST(EncodedMcastRoute, SplitRejectsMalformedBytes) {
  const auto enc = EncodedMcastRoute::encode({node(1, {leaf(2)})});
  EXPECT_NO_THROW(enc.split());

  auto truncated = enc.bytes();
  truncated.pop_back();  // drop the end marker
  EXPECT_THROW(EncodedMcastRoute::from_bytes(truncated).split(),
               std::invalid_argument);

  auto lying_pointer = enc.bytes();
  lying_pointer[1] = 0xFF;  // subroute length overruns the buffer
  lying_pointer[2] = 0x00;
  EXPECT_THROW(EncodedMcastRoute::from_bytes(lying_pointer).split(),
               std::invalid_argument);

  auto trailing = enc.bytes();
  trailing.push_back(3);  // bytes after the end marker
  EXPECT_THROW(EncodedMcastRoute::from_bytes(trailing).split(),
               std::invalid_argument);
}

TEST(EncodedMcastRoute, RandomTreesRoundTrip) {
  RandomStream rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    // Random tree with bounded depth/fanout.
    std::function<McastRouteTree(int)> gen = [&](int depth) {
      McastRouteTree t;
      t.port = static_cast<PortId>(rng.uniform(0, 30));
      if (depth < 3) {
        const auto kids = rng.uniform(0, depth == 0 ? 3 : 2);
        for (int k = 0; k < kids; ++k) t.children.push_back(gen(depth + 1));
      }
      return t;
    };
    std::vector<McastRouteTree> forest;
    const auto roots = rng.uniform(1, 3);
    for (int i = 0; i < roots; ++i) forest.push_back(gen(0));
    const auto enc = EncodedMcastRoute::encode(forest);
    EXPECT_EQ(enc.decode(), forest);
  }
}

TEST(EncodedMcastRoute, SizeGrowsLinearlyWithNodes) {
  // Each tree node costs 3 bytes (port + 2-byte pointer) + an end marker
  // per internal branch list + 1 top-level end marker.
  const auto enc1 = EncodedMcastRoute::encode({leaf(1)});
  EXPECT_EQ(enc1.size_bytes(), 4u);  // 1 node * 3 + 1 end
  const auto enc2 = EncodedMcastRoute::encode({node(1, {leaf(2)})});
  EXPECT_EQ(enc2.size_bytes(), 8u);  // 2*3 + inner end + outer end
}

}  // namespace
}  // namespace wormcast
