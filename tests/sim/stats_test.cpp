#include "sim/stats.h"

#include <gtest/gtest.h>

#include <vector>

namespace wormcast {
namespace {

TEST(RunningStat, BasicMoments) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStat, MergeMatchesCombinedStream) {
  RunningStat a;
  RunningStat b;
  RunningStat combined;
  for (int i = 0; i < 50; ++i) {
    const double x = i * 0.7;
    (i % 2 == 0 ? a : b).add(x);
    combined.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), combined.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
}

TEST(RunningStat, MergeWithEmptySides) {
  RunningStat a;
  RunningStat b;
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  RunningStat empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1);
}

TEST(RunningStat, MergeEmptyWithEmpty) {
  RunningStat a;
  RunningStat empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 0);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 0.0);
  EXPECT_DOUBLE_EQ(a.max(), 0.0);
}

TEST(RunningStat, MergePreservesVarianceOnUnevenSplits) {
  // Chan's parallel-variance update vs the single-pass reference, across
  // splits where one side dominates (1/99, 10/90, 50/50).
  const auto value = [](int i) {
    return 100.0 + 17.0 * (i % 13) - 0.25 * i;  // non-trivial spread
  };
  for (const int cut : {1, 10, 50, 99}) {
    RunningStat a;
    RunningStat b;
    RunningStat reference;
    for (int i = 0; i < 100; ++i) {
      (i < cut ? a : b).add(value(i));
      reference.add(value(i));
    }
    a.merge(b);
    EXPECT_EQ(a.count(), reference.count()) << "cut=" << cut;
    EXPECT_NEAR(a.mean(), reference.mean(), 1e-9) << "cut=" << cut;
    EXPECT_NEAR(a.variance(), reference.variance(), 1e-9) << "cut=" << cut;
    EXPECT_DOUBLE_EQ(a.min(), reference.min());
    EXPECT_DOUBLE_EQ(a.max(), reference.max());
  }
}

TEST(SampleSet, ExactPercentiles) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.percentile(50), 50.5, 0.01);
  EXPECT_NEAR(s.percentile(95), 95.05, 0.01);
}

TEST(SampleSet, PercentileAfterInterleavedAdds) {
  SampleSet s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 5.0);
  s.add(1.0);  // must re-sort
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 5.0);
}

TEST(SampleSet, EmptyPercentileIsZero) {
  SampleSet s;
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
}

TEST(SampleSet, PercentileClampsOutOfRangeP) {
  SampleSet s;
  for (int i = 1; i <= 10; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(-5.0), 1.0);     // below 0 -> min
  EXPECT_DOUBLE_EQ(s.percentile(150.0), 10.0);   // above 100 -> max
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 10.0);   // exact top edge
  SampleSet one;
  one.add(42.0);
  EXPECT_DOUBLE_EQ(one.percentile(1e9), 42.0);
}

TEST(SampleSet, SortedValuesAscendingAfterInterleavedAdds) {
  SampleSet s;
  s.add(3.0);
  s.add(1.0);
  const std::vector<double>& first = s.sorted_values();
  EXPECT_EQ(first, (std::vector<double>{1.0, 3.0}));
  // Repeated calls return the same cached vector (no re-sort, same storage).
  EXPECT_EQ(&s.sorted_values(), &first);
  s.add(2.0);  // invalidates the cache
  EXPECT_EQ(s.sorted_values(), (std::vector<double>{1.0, 2.0, 3.0}));
  // Stats are computed at add() time and unaffected by the in-place sort.
  EXPECT_EQ(s.count(), 3);
  EXPECT_DOUBLE_EQ(s.percentile(50), 2.0);
}

TEST(RateMeter, RateOverWindow) {
  RateMeter m;
  m.start_window(1000);
  m.add(50);
  m.add(50);
  EXPECT_DOUBLE_EQ(m.rate(2000), 0.1);
  EXPECT_EQ(m.total(), 100);
  m.start_window(2000);
  EXPECT_EQ(m.total(), 0);
  EXPECT_DOUBLE_EQ(m.rate(2000), 0.0);
}

}  // namespace
}  // namespace wormcast
