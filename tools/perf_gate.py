#!/usr/bin/env python3
"""CI perf-regression gate: compare BENCH_*.json against checked-in baselines.

The benches are deterministic simulations, so almost every metric they emit
(event counts, simulated bytes, throughput, loss, queue peaks) must match
the baseline bit-for-bit -- any drift means the simulation changed, which
either is a bug or requires a deliberate baseline update (see
EXPERIMENTS.md, "Updating perf baselines"). Wall-clock metrics are the
exception: absolute walls (.*wall.*, .*per_sec.*, ns_per_op) vary with the
host and are skipped entirely, while within-run wall *ratios* -- the
speedup/overhead guards the hot-path work is gated on -- are compared
against the baseline with a tolerance band, because a ratio of two walls
from the same process is stable enough to gate on even on a noisy runner.

Usage:
  tools/perf_gate.py --baselines bench/baselines --results build [--band 0.4]

Exit status 0 = gate green; 1 = regression (delta table on stdout).
"""

import argparse
import json
import os
import re
import sys

# Absolute wall-derived metrics: host-dependent, never gated.
SKIP_PAT = re.compile(r"(wall|per_sec|ns_per_op|_ms$)")
# Wall-ratio guards: gated with a band. "lower" = regression when the value
# drops below baseline*(1-band) (speedups must not shrink); "upper" =
# regression when it rises above baseline*(1+band) (overheads must not grow).
RATIO_RULES = {
    "speedup_wall": "lower",
    "queue_speedup_wall": "lower",
    "hotpath_speedup_wall": "lower",
    "tracing_overhead_wall": "upper",
}
# Relative tolerance for deterministic metrics: %.17g round-trips exactly,
# so this only forgives last-ulp parser differences.
EXACT_RTOL = 1e-9


def classify(name):
    if name in RATIO_RULES:
        return RATIO_RULES[name]
    if SKIP_PAT.search(name):
        return "skip"
    return "exact"


def close(a, b):
    if a == b:
        return True
    return abs(a - b) <= EXACT_RTOL * max(abs(a), abs(b), 1e-12)


def compare_cells(bench, where, base_cells, got_cells, failures):
    """base_cells/got_cells: dict name -> value (float or None)."""
    for name, base in base_cells.items():
        kind = classify(name)
        if kind == "skip":
            continue
        if name not in got_cells:
            failures.append((bench, where, name, base, None, "metric missing"))
            continue
        got = got_cells[name]
        if base is None or got is None:
            if base is not got:
                failures.append((bench, where, name, base, got, "null mismatch"))
            continue
        if kind == "exact":
            if not close(base, got):
                delta = (got - base) / base * 100.0 if base else float("inf")
                failures.append(
                    (bench, where, name, base, got, f"{delta:+.4g}%"))
        elif kind == "lower":
            if got < base * (1.0 - compare_cells.band):
                failures.append(
                    (bench, where, name, base, got,
                     f"below {base * (1.0 - compare_cells.band):.3g}"))
        elif kind == "upper":
            if got > base * (1.0 + compare_cells.band):
                failures.append(
                    (bench, where, name, base, got,
                     f"above {base * (1.0 + compare_cells.band):.3g}"))
    for name in got_cells:
        if name not in base_cells and classify(name) != "skip":
            failures.append(
                (bench, where, name, None, got_cells[name],
                 "missing baseline key — run tools/rebaseline"))


def row_cells(row):
    # JsonBench rows are flat {metric: number-or-null} objects.
    return row


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--baselines", default="bench/baselines")
    ap.add_argument("--results", default=".")
    ap.add_argument("--band", type=float, default=0.4,
                    help="tolerance band for wall-ratio guards (default 0.4)")
    args = ap.parse_args()
    compare_cells.band = args.band

    def bench_jsons(directory):
        try:
            entries = os.listdir(directory)
        except FileNotFoundError:
            return None
        return sorted(f for f in entries
                      if f.startswith("BENCH_") and f.endswith(".json"))

    names = bench_jsons(args.baselines)
    if names is None:
        print(f"perf_gate: baseline directory {args.baselines} does not "
              f"exist — run tools/rebaseline to create it", file=sys.stderr)
        return 1
    if not names:
        print(f"perf_gate: no baselines in {args.baselines} — run "
              f"tools/rebaseline", file=sys.stderr)
        return 1

    failures = []
    checked = 0
    # A result with no baseline is a new bench that was never baselined:
    # fail loudly instead of silently skipping it (the gate would otherwise
    # go green on a bench it never looked at).
    for fname in bench_jsons(args.results) or []:
        if fname not in names:
            failures.append((fname[len("BENCH_"):-len(".json")], "-", "-",
                             None, None,
                             "missing baseline — run tools/rebaseline"))
    for fname in names:
        bench = fname[len("BENCH_"):-len(".json")]
        with open(os.path.join(args.baselines, fname)) as f:
            base = json.load(f)
        got_path = os.path.join(args.results, fname)
        if not os.path.exists(got_path):
            failures.append((bench, "-", "-", None, None, "result file missing"))
            continue
        with open(got_path) as f:
            got = json.load(f)

        base_rows = base.get("rows", [])
        got_rows = got.get("rows", [])
        if len(base_rows) != len(got_rows):
            failures.append((bench, "rows", "count", len(base_rows),
                             len(got_rows), "row count changed"))
            continue
        for i, (br, gr) in enumerate(zip(base_rows, got_rows)):
            compare_cells(bench, f"row {i}", row_cells(br), row_cells(gr),
                          failures)
            checked += 1
        compare_cells(bench, "counters",
                      dict(base.get("counters", {})),
                      dict(got.get("counters", {})), failures)

    if failures:
        print(f"perf_gate: FAIL ({len(failures)} deltas, band ±{args.band})")
        widths = ("bench", "where", "metric", "baseline", "actual", "delta")
        table = [widths] + [
            (b, w, m,
             "-" if bv is None else f"{bv:.10g}",
             "-" if gv is None else f"{gv:.10g}", d)
            for b, w, m, bv, gv, d in failures
        ]
        cols = [max(len(str(r[c])) for r in table) for c in range(6)]
        for r in table:
            print("  " + "  ".join(str(r[c]).ljust(cols[c]) for c in range(6)))
        print("perf_gate: a deterministic-metric delta means the simulation "
              "changed; if intentional, run tools/rebaseline to regenerate "
              "bench/baselines (see EXPERIMENTS.md).")
        return 1
    print(f"perf_gate: OK ({len(names)} benches, {checked} rows, "
          f"band ±{args.band} on wall ratios)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
