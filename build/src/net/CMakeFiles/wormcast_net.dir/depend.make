# Empty dependencies file for wormcast_net.
# This may be replaced when dependencies are built.
