// An 'nv'-style video conference (Section 8.1 demonstrates the Myrinet
// multicast with nv): periodic CBR video frames multicast from several
// senders; what matters is per-frame latency and jitter, so the example
// contrasts the Hamiltonian circuit with cut-through against the tree.
#include <cmath>
#include <cstdio>

#include "core/network.h"
#include "net/topologies.h"
#include "sim/random.h"
#include "traffic/groups.h"

using namespace wormcast;

namespace {

struct ConferenceResult {
  double mean_latency_bt = 0.0;
  double p95_latency_bt = 0.0;
  double jitter_bt = 0.0;  // stddev of per-frame latency
};

ConferenceResult run_conference(Scheme scheme) {
  // 24-host LAN; 6 conference participants; each sends a 1400-byte video
  // packet every 4000 byte-times (~ a 2 Mb/s stream per sender).
  MulticastGroupSpec conf;
  conf.id = 0;
  conf.members = {2, 5, 9, 13, 17, 21};

  ExperimentConfig cfg;
  cfg.protocol.scheme = scheme;
  // Plus background unicast chatter from everyone.
  cfg.traffic.offered_load = 0.02;
  cfg.traffic.multicast_fraction = 0.0;

  Network net(make_bidir_shufflenet(2, 3), {conf}, cfg);

  const Time horizon = 400'000;
  const Time frame_interval = 4000;
  for (const HostId sender : conf.members) {
    for (Time t = 500 + sender * 100; t < horizon; t += frame_interval) {
      net.sim().at(t, [&net, sender] {
        Demand d;
        d.src = sender;
        d.multicast = true;
        d.group = 0;
        d.length = 1400;
        net.inject(d);
      });
    }
  }
  net.run(/*warmup=*/50'000, /*measure=*/horizon - 50'000);

  ConferenceResult out;
  out.mean_latency_bt = net.metrics().mcast_latency().mean();
  out.p95_latency_bt = net.metrics().mcast_latency().percentile(95);
  out.jitter_bt = net.metrics().mcast_latency().stat().stddev();
  return out;
}

}  // namespace

int main() {
  std::printf("video conference: 6 senders x 2 Mb/s CBR on a 24-node LAN\n");
  std::printf("=========================================================\n\n");
  std::printf("%-18s %12s %12s %12s\n", "scheme", "mean (us)", "p95 (us)",
              "jitter (us)");
  for (const Scheme s : {Scheme::kRepeatedUnicast, Scheme::kHamiltonianSF,
                         Scheme::kHamiltonianCT, Scheme::kTreeBroadcast}) {
    const auto r = run_conference(s);
    std::printf("%-18s %12.1f %12.1f %12.1f\n", scheme_name(s),
                r.mean_latency_bt * 0.0125, r.p95_latency_bt * 0.0125,
                r.jitter_bt * 0.0125);
  }
  std::printf("\n(1 byte-time = 12.5 ns at Myrinet's 640 Mb/s)\n");
  return 0;
}
