// Failure detection + self-healing repair: time from a *silent* crash-stop
// host failure to the completed in-place structure repair (circuit splice,
// tree re-parenting), as a function of the suspicion timeout, on the
// Section 8.2 testbed under steady multicast traffic.
//
// The crash is never announced: survivors must notice it through ACK
// timeouts (active senders) or unanswered liveness probes (idle
// neighbours), accuse the host, and repair around it. Expected shape:
// repair latency tracks the suspicion timeout roughly linearly (the
// detector cannot accuse before the timeout matures), while rerouted
// sends and disrupted messages stay flat — they depend on what was in
// flight at the crash, not on how long detection took.
//
// Sweep points (timeout x scheme x replication) run on a SweepRunner pool
// (--jobs N); --reps N merges N seeds per point with RunningStat::merge.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "net/topologies.h"

using namespace wormcast;

namespace {

constexpr std::uint64_t kBaseSeed = 11;

struct Point {
  double repair_latency = 0.0;  // crash -> structures healed (byte-times)
  bool detected = false;        // false: the detector never fired
  double rerouted = 0.0;        // sends retargeted by the repair
  double disrupted = 0.0;       // messages written off at repair time
  double delivered = 0.0;       // completed / created over the whole run
};

Point run_crash(Scheme scheme, Time suspicion, Time measure,
                std::uint64_t seed, std::size_t trace_cap,
                bench::CheckCollector& checks, std::size_t slot,
                std::string label) {
  // Load 0.02: sustainable by both schemes on this testbed. (The
  // root-serialized tree saturates its root link near 0.05 even without
  // faults — the serializer bottleneck of Section 6 — which would swamp
  // the repair signal this bench measures.)
  ExperimentConfig cfg = bench::sim_defaults(scheme, 0.02, 1.0, seed);
  cfg.protocol.ack_timeout = 10'000;
  cfg.protocol.retry_backoff = 2'000;
  cfg.protocol.retry_jitter = 1'000;
  cfg.protocol.max_attempts = 10;
  cfg.protocol.suspicion_timeout = suspicion;
  auto group = make_full_group(8);
  Network net(make_myrinet_testbed(), {group}, cfg);
  if (checks.enabled()) net.enable_tracing(trace_cap);
  bench::arm_watchdog(net);

  const Time crash_at = 2'000 + measure / 2;
  net.crash_host(3, crash_at);
  net.run(/*warmup=*/2'000, measure, /*drain_cap=*/600'000);
  checks.collect(slot, net, std::move(label));

  const Network::Summary s = net.summary();
  Point p;
  p.detected = s.hosts_removed > 0;
  p.repair_latency = p.detected
                         ? static_cast<double>(s.last_repair_time - crash_at)
                         : -1.0;  // CSV sentinel; the JSON cell goes null
  p.rerouted = static_cast<double>(s.sends_rerouted);
  p.disrupted = static_cast<double>(s.messages_disrupted);
  if (s.messages > 0)
    p.delivered = static_cast<double>(s.messages_completed) /
                  static_cast<double>(s.messages);
  return p;
}

/// Replication-merged view of one sweep point (merge order = rep order).
struct Merged {
  RunningStat repair_latency;  // over the replications that detected
  RunningStat rerouted;
  RunningStat disrupted;
  RunningStat delivered;
};

Merged merge_reps(const std::vector<Point>& reps) {
  Merged m;
  for (const Point& p : reps) {
    RunningStat rerouted, disrupted, delivered;
    rerouted.add(p.rerouted);
    disrupted.add(p.disrupted);
    delivered.add(p.delivered);
    m.rerouted.merge(rerouted);
    m.disrupted.merge(disrupted);
    m.delivered.merge(delivered);
    if (p.detected) {
      RunningStat latency;
      latency.add(p.repair_latency);
      m.repair_latency.merge(latency);
    }
  }
  return m;
}

/// CSV keeps the historical -1 sentinel when no replication detected.
double latency_or_sentinel(const Merged& m) {
  return m.repair_latency.count() > 0 ? m.repair_latency.mean() : -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  const Time measure = args.quick ? 300'000 : 1'000'000;

  std::printf("# Silent crash-stop repair on the 8-host testbed: detection + "
              "repair latency vs suspicion timeout\n");
  std::printf("# (host 3 crashes mid-run; ack_timeout=10k, max_attempts=10; "
              "latency in byte-times; %d rep(s)/point)\n", args.reps);
  bench::print_header("suspicion_timeout",
                      {"circuit_repair_latency", "circuit_rerouted",
                       "circuit_disrupted", "circuit_delivered",
                       "tree_repair_latency", "tree_rerouted",
                       "tree_disrupted", "tree_delivered"});
  const std::vector<Time> timeouts =
      args.quick ? std::vector<Time>{60'000}
                 : std::vector<Time>{30'000, 60'000, 120'000};

  const std::size_t reps = static_cast<std::size_t>(args.reps);
  const std::size_t n_points = timeouts.size() * 2;
  const std::size_t n_tasks = n_points * reps;
  std::vector<Point> raw(n_tasks);
  bench::JsonBench json("failure_repair");
  json.resize_rows(timeouts.size());
  bench::CheckCollector checks(args.check);
  checks.resize(n_tasks);
  const harness::WallTimer sweep;
  harness::SweepRunner pool(args.jobs);
  const auto walls = pool.run_indexed(n_tasks, [&](std::size_t i) {
    const std::size_t point = i / reps;
    const std::size_t rep = i % reps;
    const Time suspicion = timeouts[point / 2];
    const Scheme scheme =
        (point % 2) == 0 ? Scheme::kHamiltonianSF : Scheme::kTreeSF;
    char label[64];
    std::snprintf(label, sizeof label, "suspicion=%lld scheme=%s rep=%zu",
                  static_cast<long long>(suspicion),
                  (point % 2) == 0 ? "circuit" : "tree", rep);
    raw[i] = run_crash(scheme, suspicion, measure,
                       harness::point_seed(kBaseSeed, rep), args.trace_cap,
                       checks, i, label);
  });

  for (std::size_t t = 0; t < timeouts.size(); ++t) {
    auto reps_of = [&](std::size_t point) {
      return std::vector<Point>(
          raw.begin() + static_cast<std::ptrdiff_t>(point * reps),
          raw.begin() + static_cast<std::ptrdiff_t>((point + 1) * reps));
    };
    const Merged circuit = merge_reps(reps_of(t * 2));
    const Merged tree = merge_reps(reps_of(t * 2 + 1));
    std::printf("%lld,%.0f,%.0f,%.0f,%.4f,%.0f,%.0f,%.0f,%.4f\n",
                static_cast<long long>(timeouts[t]),
                latency_or_sentinel(circuit), circuit.rerouted.mean(),
                circuit.disrupted.mean(), circuit.delivered.mean(),
                latency_or_sentinel(tree), tree.rerouted.mean(),
                tree.disrupted.mean(), tree.delivered.mean());
    json.set_row(
        t, {{"suspicion_timeout", static_cast<double>(timeouts[t])},
            {"circuit_repair_latency",
             bench::opt(circuit.repair_latency.mean(),
                        circuit.repair_latency.count() > 0)},
            {"circuit_rerouted", circuit.rerouted.mean()},
            {"circuit_disrupted", circuit.disrupted.mean()},
            {"circuit_delivered", circuit.delivered.mean()},
            {"tree_repair_latency",
             bench::opt(tree.repair_latency.mean(),
                        tree.repair_latency.count() > 0)},
            {"tree_rerouted", tree.rerouted.mean()},
            {"tree_disrupted", tree.disrupted.mean()},
            {"tree_delivered", tree.delivered.mean()}});
  }
  std::fflush(stdout);
  bench::stamp_sweep_meta(json, pool, walls, sweep);
  json.set_meta("reps", static_cast<double>(args.reps));
  const int check_rc = checks.finalize(&json);
  json.write();
  return check_rc;
}
