// Switch-level multicasting (Section 3): fabric replication along the
// encoded tree, root-flood broadcast, scheme (b) fragmentation, and
// scheme (c) flushing of unicasts blocked on multicast-IDLE ports.
#include <gtest/gtest.h>

#include "core/network.h"
#include "net/mcast_route_builder.h"
#include "net/topologies.h"

namespace wormcast {
namespace {

ExperimentConfig switch_cfg(SwitchMcastScheme scheme) {
  ExperimentConfig cfg;
  cfg.switch_mcast.scheme = scheme;
  // Scheme (a) requires every worm to stay on the up/down spanning tree.
  cfg.routing.tree_links_only = true;
  return cfg;
}

TEST(McastRouteBuilder, PathsMergeIntoATree) {
  const Topology topo = make_torus(4, 4);
  UpDownOptions opts;
  opts.tree_links_only = true;
  const UpDownRouting routing(topo, opts);
  const auto branches =
      build_mcast_branches(routing, 0, {0, 3, 7, 11, 14});
  // Encodes and splits without error; total leaf count = 4 destinations.
  const auto enc = EncodedMcastRoute::encode(branches);
  std::function<int(const std::vector<McastRouteTree>&)> leaves =
      [&](const std::vector<McastRouteTree>& ts) {
        int n = 0;
        for (const auto& t : ts)
          n += t.children.empty() ? 1 : leaves(t.children);
        return n;
      };
  EXPECT_EQ(leaves(enc.decode()), 4);
}

TEST(McastRouteBuilder, NoDestinationsThrows) {
  const Topology topo = make_star(3);
  const UpDownRouting routing(topo);
  EXPECT_THROW(build_mcast_branches(routing, 1, {1}),
               std::invalid_argument);
}

class SwitchMcastSchemeTest
    : public ::testing::TestWithParam<SwitchMcastScheme> {};

TEST_P(SwitchMcastSchemeTest, MulticastReachesExactlyTheGroup) {
  MulticastGroupSpec group;
  group.id = 0;
  group.members = {1, 3, 4, 6};
  Network net(make_torus(3, 3), {group}, switch_cfg(GetParam()));
  auto ctx = net.send_switch_multicast(1, 0, 300);
  net.run_to_quiescence();
  EXPECT_EQ(ctx->destinations_reached, 3);
  for (HostId h = 0; h < net.num_hosts(); ++h) {
    const bool member = h == 3 || h == 4 || h == 6;
    EXPECT_EQ(net.adapter(h).payload_bytes_received(), member ? 300 : 0)
        << "host " << h;
  }
  EXPECT_EQ(net.fabric().total_overflows(), 0);
  EXPECT_GE(net.switch_mcast_engine().connections_opened(), 1);
}

TEST_P(SwitchMcastSchemeTest, BroadcastReachesEveryOtherHost) {
  Network net(make_torus(3, 3), {}, switch_cfg(GetParam()));
  auto ctx = net.send_switch_broadcast(4, 250);
  net.run_to_quiescence();
  EXPECT_EQ(ctx->destinations_reached, 8);
  for (HostId h = 0; h < net.num_hosts(); ++h) {
    if (h == 4) continue;
    EXPECT_EQ(net.adapter(h).payload_bytes_received(), 250) << "host " << h;
  }
  EXPECT_EQ(net.metrics().outstanding(), 0);
}

TEST_P(SwitchMcastSchemeTest, BackToBackBroadcastsAllComplete) {
  Network net(make_torus(3, 3), {}, switch_cfg(GetParam()));
  for (int i = 0; i < 6; ++i)
    net.send_switch_broadcast(static_cast<HostId>(i % 9), 100 + i);
  net.run_to_quiescence();
  EXPECT_EQ(net.metrics().outstanding(), 0);
  EXPECT_EQ(net.metrics().messages_completed(), 6);
}

TEST_P(SwitchMcastSchemeTest, MulticastCompetingWithUnicastTraffic) {
  MulticastGroupSpec group;
  group.id = 0;
  group.members = {0, 2, 3};
  Network net(make_line(4), {group}, switch_cfg(GetParam()));
  // A long unicast occupies the s2->s3 link, stalling one multicast branch.
  Demand uni;
  uni.src = 2;
  uni.dst = 3;
  uni.length = 3000;
  net.inject(uni);
  net.run_until(100);
  auto ctx = net.send_switch_multicast(0, 0, 500);
  // A later unicast that needs the port the multicast branch holds.
  net.run_until(400);
  Demand blocked;
  blocked.src = 1;
  blocked.dst = 2;
  blocked.length = 2000;
  net.inject(blocked);
  net.run_to_quiescence();
  // Everything is eventually delivered under every scheme.
  EXPECT_EQ(ctx->destinations_reached, 2);
  EXPECT_EQ(net.metrics().outstanding(), 0)
      << "undelivered with scheme " << static_cast<int>(GetParam());
  EXPECT_EQ(net.fabric().total_overflows(), 0);
}

INSTANTIATE_TEST_SUITE_P(Schemes, SwitchMcastSchemeTest,
                         ::testing::Values(SwitchMcastScheme::kIdleFill,
                                           SwitchMcastScheme::kInterrupt,
                                           SwitchMcastScheme::kFlushUnicast),
                         [](const auto& info) {
                           switch (info.param) {
                             case SwitchMcastScheme::kIdleFill:
                               return "idle_fill";
                             case SwitchMcastScheme::kInterrupt:
                               return "interrupt";
                             case SwitchMcastScheme::kFlushUnicast:
                               return "flush_unicast";
                           }
                           return "unknown";
                         });

TEST(SwitchMcast, FlushUnicastActuallyFlushes) {
  MulticastGroupSpec group;
  group.id = 0;
  group.members = {0, 2, 3};
  ExperimentConfig cfg = switch_cfg(SwitchMcastScheme::kFlushUnicast);
  cfg.switch_mcast.idle_flush_threshold = 64;
  Network net(make_line(4), {group}, cfg);
  // Stall the multicast branch toward host 3 with a long unicast.
  Demand uni;
  uni.src = 2;
  uni.dst = 3;
  uni.length = 6000;
  net.inject(uni);
  net.run_until(100);
  net.send_switch_multicast(0, 0, 800);
  // While the multicast idles on the s2->h2 port, a unicast to host 2
  // arrives and must be flushed, then retransmitted and delivered.
  net.run_until(600);
  Demand blocked;
  blocked.src = 1;
  blocked.dst = 2;
  blocked.length = 2000;
  net.inject(blocked);
  net.run_to_quiescence();
  EXPECT_GE(net.switch_mcast_engine().unicasts_flushed(), 1);
  EXPECT_GE(net.metrics().retransmits(), 1);
  EXPECT_EQ(net.metrics().outstanding(), 0);
  // The flushed unicast was still delivered exactly once.
  EXPECT_EQ(net.adapter(2).payload_bytes_received(), 800 + 2000);
}

// Scheme (c)'s flush handler with the fault-injection subsystem armed: the
// switch-side flush is the only fault that fires, so the flushed unicast
// must be retransmitted exactly once, delivered exactly once, and the
// engine's flush counter must agree with the run summary.
TEST(SwitchMcast, FlushedUnicastUnderArmedFaultsRetransmitsOnce) {
  MulticastGroupSpec group;
  group.id = 0;
  group.members = {0, 2, 3};
  ExperimentConfig cfg = switch_cfg(SwitchMcastScheme::kFlushUnicast);
  cfg.switch_mcast.idle_flush_threshold = 64;
  cfg.protocol.retry_jitter = 0;
  // Back off past the stalling unicast so the single retry finds the port
  // clean instead of being flushed a second time.
  cfg.protocol.retry_backoff = 8'000;
  Network net(make_line(4), {group}, cfg);
  // Arm the injector without any probabilistic fault: a momentary outage
  // window before traffic exists keeps every hook site live for the run.
  net.faults().schedule_outage(nullptr, 0, 1);
  Demand uni;
  uni.src = 2;
  uni.dst = 3;
  uni.length = 6000;
  net.inject(uni);
  net.run_until(100);
  net.send_switch_multicast(0, 0, 800);
  net.run_until(600);
  Demand blocked;
  blocked.src = 1;
  blocked.dst = 2;
  blocked.length = 2000;
  net.inject(blocked);
  net.run_to_quiescence();

  ASSERT_TRUE(net.faults().armed());
  const Network::Summary s = net.summary();
  EXPECT_EQ(s.unicasts_flushed, 1);
  EXPECT_EQ(net.switch_mcast_engine().unicasts_flushed(), 1)
      << "summary must mirror the engine counter";
  EXPECT_EQ(s.retransmits, 1) << "the flush retry, and only it";
  EXPECT_EQ(s.outstanding, 0);
  // Exactly once: the multicast copy plus the one retried unicast.
  EXPECT_EQ(net.adapter(2).payload_bytes_received(), 800 + 2000);
}

TEST(SwitchMcast, InterruptProducesFragmentsUnderContention) {
  MulticastGroupSpec group;
  group.id = 0;
  group.members = {0, 2, 3};
  ExperimentConfig cfg = switch_cfg(SwitchMcastScheme::kInterrupt);
  cfg.switch_mcast.interrupt_check = 16;
  Network net(make_line(4), {group}, cfg);
  Demand uni;
  uni.src = 2;
  uni.dst = 3;
  uni.length = 6000;
  net.inject(uni);
  net.run_until(100);
  auto ctx = net.send_switch_multicast(0, 0, 800);
  net.run_to_quiescence();
  EXPECT_EQ(ctx->destinations_reached, 2);
  // The stalled branch forced at least one extra fragment beyond the
  // initial per-branch fragments.
  EXPECT_GT(net.switch_mcast_engine().fragments_sent(),
            net.switch_mcast_engine().connections_opened());
  EXPECT_EQ(net.metrics().outstanding(), 0);
}

}  // namespace
}  // namespace wormcast
