// Ablation A: what the two-buffer-class rule buys (Figures 6 and 7).
//
// The paper's closing section reports "work in progress" on measuring
// buffer contention and the probability of deadlocks. A saturated steady
// state cannot distinguish deadlock from backlog, so this bench uses a
// burst design: every member of every group injects one multicast at t=0,
// then the network drains with *no further arrivals*. With the class rule
// (and low-to-high ID propagation) reservation waits are acyclic, so the
// burst always drains completely. With the rule disabled, reservations can
// cycle (two adapters holding full pools NACK each other forever,
// Figure 6): those runs end with messages that never complete no matter
// how long the drain — a permanent livelock. We report, per configuration:
// runs that wedged, messages still undelivered at the horizon, and the
// NACK/retry churn spent.
//
// Every (burst, classes, seed) run is an independent sweep point on a
// SweepRunner pool (--jobs N); per-configuration outcomes merge in seed
// order, and the diagnostic dump for a wedged configuration always comes
// from its lowest wedged seed — deterministic at any job count.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "net/topologies.h"
#include "sim/random.h"
#include "sim/trace_export.h"
#include "traffic/groups.h"

using namespace wormcast;

namespace {

struct RunResult {
  bool wedged = false;
  std::int64_t undelivered = 0;
  std::int64_t nacks = 0;
  Time drain_time = 0;        // valid when !wedged
  std::string wedge_report;   // debug report + trace tail when wedged
};

RunResult run_one(bool classes, int burst_per_member, int seed, Time horizon,
                  std::size_t trace_cap, bench::CheckCollector& checks,
                  std::size_t slot, std::string label) {
  RandomStream grng(7000 + seed);
  auto groups = make_random_groups(6, 8, 16, grng);
  ExperimentConfig cfg;
  cfg.protocol.scheme = Scheme::kHamiltonianSF;
  cfg.protocol.buffer_classes = classes;
  // Two max-size worms of memory in both configurations; the ablation
  // removes only the class discipline, not capacity.
  cfg.protocol.pool_bytes = 1800;
  cfg.protocol.retry_backoff = 1500;
  cfg.protocol.retry_jitter = 1000;
  cfg.traffic.offered_load = 1e-9;  // burst only
  cfg.seed = static_cast<std::uint64_t>(seed);
  Network net(make_torus(4, 4), groups, cfg);
  // Flight recorder + watchdog: a wedged run (the classes-off livelock
  // this bench exists to show) dumps per-host state AND the trace tail,
  // so the stall explains *how* it happened, not just where it stands.
  // Under --check the ring must hold the whole run (a wrapped ring makes
  // the checker refuse), so it takes the checking capacity instead.
  net.enable_tracing(checks.enabled() ? trace_cap : 8192);
  bench::arm_watchdog(net, 400'000);

  RandomStream lens(200 + static_cast<std::uint64_t>(seed));
  for (const auto& g : groups) {
    for (const HostId m : g.members) {
      for (int i = 0; i < burst_per_member; ++i) {
        const Time when = 1 + lens.uniform(0, 500);
        const auto len = lens.geometric_length(400.0, 16);
        net.sim().at(when, [&net, m, g = g.id, len] {
          Demand d;
          d.src = m;
          d.multicast = true;
          d.group = g;
          d.length = std::min<std::int64_t>(len, 850);
          net.inject(d);
        });
      }
    }
  }
  net.run_until(horizon);
  checks.collect(slot, net, std::move(label));
  const auto s = net.summary();
  RunResult r;
  r.nacks = s.nacks;
  if (s.outstanding > 0) {
    // A wedged run explains itself: per-host state plus the recorder's
    // last decisions. The NACK livelock keeps *events* flowing, so the
    // stall watchdog stays quiet — capture at the horizon instead. The
    // caller prints one report per configuration; the rest just count.
    r.wedged = true;
    r.undelivered = s.outstanding;
    r.wedge_report =
        net.debug_report() + format_trace_tail(net.sim().tracer());
  } else {
    r.drain_time = net.metrics().last_completion_time();
  }
  return r;
}

struct Outcome {
  int wedged_runs = 0;
  std::int64_t undelivered = 0;
  std::int64_t nacks = 0;
  double mean_drain_time = 0.0;  // over runs that completed
  int completed_runs = 0;
};

/// Folds per-seed results in seed order; prints the first wedged seed's
/// diagnostic dump (one per configuration is enough to diagnose).
Outcome merge_seeds(const std::vector<RunResult>& runs, bool classes,
                    int first_seed) {
  Outcome out;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    if (r.wedged) {
      if (out.wedged_runs == 0)
        std::fprintf(stderr,
                     "# wedged run (classes=%d seed=%d): %lld undelivered\n%s",
                     classes ? 1 : 0, first_seed + static_cast<int>(i),
                     static_cast<long long>(r.undelivered),
                     r.wedge_report.c_str());
      ++out.wedged_runs;
      out.undelivered += r.undelivered;
    } else {
      ++out.completed_runs;
      out.mean_drain_time += static_cast<double>(r.drain_time);
    }
    out.nacks += r.nacks;
  }
  if (out.completed_runs > 0) out.mean_drain_time /= out.completed_runs;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  const int seeds = args.quick ? 2 : 5;
  const Time horizon = args.quick ? 1'500'000 : 2'500'000;
  std::printf("# Ablation A: burst drain with the two-buffer-class rule "
              "on/off (equal memory; 6 groups x 8 members on 16 hosts; "
              "%d seeds)\n",
              seeds);
  bench::print_header("burst_per_member",
                      {"on_wedged_runs", "on_undelivered", "on_nacks",
                       "on_drain_bt", "off_wedged_runs", "off_undelivered",
                       "off_nacks", "off_drain_bt"});
  const std::vector<int> bursts =
      args.quick ? std::vector<int>{2} : std::vector<int>{1, 2, 4};

  // Task layout: for each burst intensity, `seeds` classes-on runs then
  // `seeds` classes-off runs. Seeds are the historical 1..seeds.
  const std::size_t per_cfg = static_cast<std::size_t>(seeds);
  const std::size_t n_tasks = bursts.size() * 2 * per_cfg;
  std::vector<RunResult> raw(n_tasks);
  bench::JsonBench json("ablation_deadlock");
  json.resize_rows(bursts.size());
  bench::CheckCollector checks(args.check);
  checks.resize(n_tasks);
  const harness::WallTimer sweep;
  harness::SweepRunner pool(args.jobs);
  const auto walls = pool.run_indexed(n_tasks, [&](std::size_t i) {
    const std::size_t cfg_idx = i / per_cfg;
    const int seed = 1 + static_cast<int>(i % per_cfg);
    const int burst = bursts[cfg_idx / 2];
    const bool classes = (cfg_idx % 2) == 0;
    char label[64];
    std::snprintf(label, sizeof label, "burst=%d classes=%s seed=%d", burst,
                  classes ? "on" : "off", seed);
    raw[i] = run_one(classes, burst, seed, horizon, args.trace_cap, checks, i,
                     label);
  });

  for (std::size_t b = 0; b < bursts.size(); ++b) {
    auto cfg_runs = [&](std::size_t cfg_idx) {
      return std::vector<RunResult>(
          raw.begin() + static_cast<std::ptrdiff_t>(cfg_idx * per_cfg),
          raw.begin() + static_cast<std::ptrdiff_t>((cfg_idx + 1) * per_cfg));
    };
    const Outcome on = merge_seeds(cfg_runs(b * 2), true, 1);
    const Outcome off = merge_seeds(cfg_runs(b * 2 + 1), false, 1);
    std::printf("%d,%d,%lld,%lld,%.0f,%d,%lld,%lld,%.0f\n", bursts[b],
                on.wedged_runs, static_cast<long long>(on.undelivered),
                static_cast<long long>(on.nacks), on.mean_drain_time,
                off.wedged_runs, static_cast<long long>(off.undelivered),
                static_cast<long long>(off.nacks), off.mean_drain_time);
    json.set_row(b,
                 {{"burst_per_member", static_cast<double>(bursts[b])},
                  {"on_wedged_runs", static_cast<double>(on.wedged_runs)},
                  {"on_undelivered", static_cast<double>(on.undelivered)},
                  {"on_nacks", static_cast<double>(on.nacks)},
                  {"on_drain_bt", on.mean_drain_time},
                  {"off_wedged_runs", static_cast<double>(off.wedged_runs)},
                  {"off_undelivered", static_cast<double>(off.undelivered)},
                  {"off_nacks", static_cast<double>(off.nacks)},
                  {"off_drain_bt", off.mean_drain_time}});
  }
  std::fflush(stdout);
  bench::stamp_sweep_meta(json, pool, walls, sweep);
  const int check_rc = checks.finalize(&json);
  json.write();
  return check_rc;
}
