// Idle fast-forward for fixed-period pollers.
//
// The engine itself is event-driven, but workload drivers (the saturating
// and rate-limited applications in the testbed benches) poll on a fixed
// grid: "is the adapter drained / has the next send deadline passed? then
// inject the next message". When the fabric or the deadline is the
// bottleneck, most polls find the condition false and burn an event for
// nothing — at a 512-byte-time period that dead air dominates the event
// count at 1k-host scale. IdlePoller removes it: the body returns a lower
// bound on when it could next have work, and the poller either jumps the
// grid straight to that time or — when the bound is kTimeNever, i.e. the
// condition is event-driven — parks until an explicit wake() (called from
// the event that makes the condition true again, e.g. the adapter's drain
// notification) re-arms the poll at the next grid point.
//
// Correctness argument (why fast-forward matches naive polling): polls
// only ever happen at grid points first + k*period. While the condition
// is false a naive poll is a pure no-op, so skipping it cannot change
// simulation state. There are two ways the condition becomes true:
//
//  * Time passes (a deadline): the body returned a valid lower bound t,
//    and the poller re-arms at the first grid point >= t. Every naive
//    poll before that grid point would have observed condition-false, so
//    both modes next run the body productively at the same grid point.
//    (If the condition is still false there — the bound was conservative —
//    the body simply returns a new bound; still a no-op, still aligned.)
//
//  * An event E calls wake(): wake() re-arms at the first grid point
//    strictly after E — exactly the first grid point at which a naive
//    poll would have observed the new state, because a naive poll queued
//    at E's own timestamp was inserted before E and fires ahead of it,
//    still seeing the old state. (wake() no-ops while a poll is armed:
//    an armed grid point came from a valid lower bound or an earlier
//    wake, and the naive poller would act no earlier.)
//
// Hence both modes run the body productively at identical times. (The
// parked period shifts event insertion order, so same-tick ordering
// against unrelated events can differ; the protocol stack is insensitive
// to that, which idle_poller_test pins on the testbed.)
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "sim/simulator.h"
#include "sim/types.h"

namespace wormcast {

/// Polls `body` on the grid first + k*period (while the grid point is
/// <= stop_at). `body` returns the earliest time it could have work again:
/// kTimeNever parks the poller until wake() (fast-forward) or simply keeps
/// polling (legacy); any time <= now means "poll again next period"; a
/// future time lets fast-forward jump the grid across the gap.
class IdlePoller {
 public:
  enum class Mode : std::uint8_t {
    kFastForward,  // park on idle, wake()/time-bound re-arms (default)
    kLegacy,       // reschedule every period regardless (equivalence tests)
  };

  IdlePoller(Simulator& sim, Time first, Time period, Mode mode,
             std::function<Time()> body, Time stop_at = kTimeNever)
      : sim_(sim),
        body_(std::move(body)),
        first_(first),
        period_(period),
        stop_at_(stop_at),
        mode_(mode) {}
  IdlePoller(const IdlePoller&) = delete;
  IdlePoller& operator=(const IdlePoller&) = delete;
  ~IdlePoller() { stop(); }

  void start() {
    if (first_ <= stop_at_) arm(first_);
  }

  /// Tells a parked poller its condition may be true again. No-op while a
  /// poll is already pending, so callers can invoke it unconditionally
  /// from every potentially-unblocking event.
  void wake() {
    if (!parked_) return;
    const Time next = next_grid_after(sim_.now());
    if (next > stop_at_) return;
    parked_ = false;
    arm(next);
  }

  void stop() {
    sim_.cancel(handle_);
    handle_ = EventHandle();
    parked_ = false;
  }

  [[nodiscard]] bool parked() const { return parked_; }
  /// Number of times the body actually ran (equal across modes only for
  /// busy polls; legacy mode additionally runs idle ones).
  [[nodiscard]] std::int64_t polls() const { return polls_; }

 private:
  void arm(Time when) {
    handle_ = sim_.at(when, [this] { fire(); });
  }

  /// First grid point strictly after `t` (see the header comment for why
  /// "strictly": a poll at t itself would have preceded the waking event).
  [[nodiscard]] Time next_grid_after(Time t) const {
    if (t < first_) return first_;
    const Time k = (t - first_) / period_;
    return first_ + (k + 1) * period_;
  }

  /// First grid point at or after `t` (time-bound jumps: a naive poll at
  /// exactly t observes the deadline as passed, so that grid point counts).
  [[nodiscard]] Time next_grid_at_or_after(Time t) const {
    if (t <= first_) return first_;
    const Time k = (t - first_ + period_ - 1) / period_;
    return first_ + k * period_;
  }

  void fire() {
    handle_ = EventHandle();
    ++polls_;
    const Time bound = body_();
    Time next;
    if (mode_ == Mode::kFastForward) {
      if (bound == kTimeNever) {
        parked_ = true;
        return;
      }
      // Polls fire on grid points only, so now is on the grid and both
      // branches land strictly in the future.
      next = bound <= sim_.now() ? sim_.now() + period_
                                 : next_grid_at_or_after(bound);
    } else {
      next = sim_.now() + period_;
    }
    if (next <= stop_at_) arm(next);
  }

  Simulator& sim_;
  std::function<Time()> body_;
  const Time first_;
  const Time period_;
  const Time stop_at_;
  const Mode mode_;
  EventHandle handle_;
  bool parked_ = false;
  std::int64_t polls_ = 0;
};

}  // namespace wormcast
