#include "net/channel.h"

#include <cassert>

namespace wormcast {

void Channel::attach_feed(ByteFeed* feed) {
  assert(feed_ == nullptr && "channel already has a feed");
  feed_ = feed;
  kick();
}

void Channel::detach_feed() {
  assert(feed_ != nullptr);
  feed_ = nullptr;
}

void Channel::kick() {
  if (feed_ == nullptr || stopped_ || pump_scheduled_) return;
  schedule_pump();
}

void Channel::schedule_pump() {
  // Respect the one-byte-per-byte-time line rate.
  const Time when = std::max(sim_.now(), last_send_ + 1);
  pump_scheduled_ = true;
  sim_.at(when, [this] { pump(); });
}

void Channel::pump() {
  pump_scheduled_ = false;
  if (feed_ == nullptr || stopped_) return;
  if (!feed_->byte_available()) return;  // feed will kick() when ready

  const TxByte b = feed_->take_byte();
  last_send_ = sim_.now();
  ++bytes_sent_;
  if (b.head && faults_ != nullptr && faults_->armed()) classify_fault(b);

  bool deliver = true;
  bool synth_tail = false;
  switch (fault_mode_) {
    case FaultMode::kNone:
      break;
    case FaultMode::kSwallow:
      deliver = false;
      break;
    case FaultMode::kTruncate:
      if (fault_pass_left_ > 0) {
        --fault_pass_left_;
        synth_tail = (fault_pass_left_ == 0);
      } else {
        deliver = false;
      }
      break;
  }
  if (deliver) {
    in_flight_.push_back(
        InFlight{b.head, b.tail || synth_tail, b.worm, b.wire_len});
    sim_.after(delay_, [this] { deliver_front(); });
  } else {
    // Swallowed bytes still count as global progress: the transmitter is
    // draining, so the network is not deadlocked, merely lossy.
    sim_.note_progress(1);
  }

  if (b.tail) {
    fault_mode_ = FaultMode::kNone;
    ByteFeed* done = feed_;
    feed_ = nullptr;
    done->on_tail_sent();  // may attach a new feed (re-entrant safe)
  } else {
    schedule_pump();
  }
}

void Channel::classify_fault(const TxByte& b) {
  fault_mode_ = FaultMode::kNone;
  const WormPtr& w = b.worm;
  if (faults_->link_down(this, sim_.now())) {
    faults_->note_outage_drop();  // this head byte IS a discarded worm
    fault_mode_ = FaultMode::kSwallow;
    return;
  }
  if (w->kind == WormKind::kAck || w->kind == WormKind::kNack ||
      w->kind == WormKind::kProbe || w->kind == WormKind::kProbeAck) {
    if (faults_->should_drop_control()) fault_mode_ = FaultMode::kSwallow;
    return;
  }
  // Only plain data worms are eligible for mid-flight kills: switch-level
  // multicast worms (advisory framing, no end-to-end recovery protocol) and
  // credit-scheme control worms are exempt.
  if (w->kind != WormKind::kData) return;
  if (w->mcast.has_value() && w->mcast->credit != CreditOp::kNone) return;
  if (w->truncated) return;  // already killed upstream
  // A truncated stub must stay frameable: each remaining switch strips one
  // route byte and the final adapter still needs a head and a tail byte.
  const auto remaining_hops =
      static_cast<std::int64_t>(w->route.size() - w->route_offset);
  const std::int64_t min_len = remaining_hops + 2;
  if (b.wire_len - 1 < min_len) return;  // too short to kill cleanly
  if (!faults_->should_kill_worm(w->dst)) return;
  w->truncated = true;
  fault_mode_ = FaultMode::kTruncate;
  fault_pass_left_ = faults_->pick_truncation(min_len, b.wire_len - 1);
}

void Channel::deliver_front() {
  assert(!in_flight_.empty());
  const InFlight b = std::move(in_flight_.front());
  in_flight_.pop_front();
  sim_.note_progress(1);
  assert(sink_ != nullptr && "channel delivered into the void");
  if (b.head)
    sink_->on_head(b.worm, b.wire_len);
  else
    sink_->on_body(b.tail);
}

void Channel::signal_stop() {
  sim_.after(delay_, [this] {
    stopped_ = true;
  });
}

void Channel::signal_go() {
  sim_.after(delay_, [this] {
    stopped_ = false;
    kick();
  });
}

}  // namespace wormcast
