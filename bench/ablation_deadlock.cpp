// Ablation A: what the two-buffer-class rule buys (Figures 6 and 7).
//
// The paper's closing section reports "work in progress" on measuring
// buffer contention and the probability of deadlocks. A saturated steady
// state cannot distinguish deadlock from backlog, so this bench uses a
// burst design: every member of every group injects one multicast at t=0,
// then the network drains with *no further arrivals*. With the class rule
// (and low-to-high ID propagation) reservation waits are acyclic, so the
// burst always drains completely. With the rule disabled, reservations can
// cycle (two adapters holding full pools NACK each other forever,
// Figure 6): those runs end with messages that never complete no matter
// how long the drain — a permanent livelock. We report, per configuration:
// runs that wedged, messages still undelivered at the horizon, and the
// NACK/retry churn spent.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "net/topologies.h"
#include "sim/random.h"
#include "sim/trace_export.h"
#include "traffic/groups.h"

using namespace wormcast;

namespace {

struct Outcome {
  int wedged_runs = 0;
  std::int64_t undelivered = 0;
  std::int64_t nacks = 0;
  double mean_drain_time = 0.0;  // over runs that completed
  int completed_runs = 0;
};

Outcome run_cases(bool classes, int burst_per_member, int seeds, Time horizon) {
  Outcome out;
  for (int seed = 1; seed <= seeds; ++seed) {
    RandomStream grng(7000 + seed);
    auto groups = make_random_groups(6, 8, 16, grng);
    ExperimentConfig cfg;
    cfg.protocol.scheme = Scheme::kHamiltonianSF;
    cfg.protocol.buffer_classes = classes;
    // Two max-size worms of memory in both configurations; the ablation
    // removes only the class discipline, not capacity.
    cfg.protocol.pool_bytes = 1800;
    cfg.protocol.retry_backoff = 1500;
    cfg.protocol.retry_jitter = 1000;
    cfg.traffic.offered_load = 1e-9;  // burst only
    cfg.seed = static_cast<std::uint64_t>(seed);
    Network net(make_torus(4, 4), groups, cfg);
    // Flight recorder + watchdog: a wedged run (the classes-off livelock
    // this bench exists to show) dumps per-host state AND the trace tail,
    // so the stall explains *how* it happened, not just where it stands.
    net.enable_tracing(8192);
    bench::arm_watchdog(net, 400'000);

    RandomStream lens(200 + static_cast<std::uint64_t>(seed));
    for (const auto& g : groups) {
      for (const HostId m : g.members) {
        for (int i = 0; i < burst_per_member; ++i) {
          const Time when = 1 + lens.uniform(0, 500);
          const auto len = lens.geometric_length(400.0, 16);
          net.sim().at(when, [&net, m, g = g.id, len] {
            Demand d;
            d.src = m;
            d.multicast = true;
            d.group = g;
            d.length = std::min<std::int64_t>(len, 850);
            net.inject(d);
          });
        }
      }
    }
    net.run_until(horizon);
    const auto s = net.summary();
    if (s.outstanding > 0) {
      // A wedged run explains itself: per-host state plus the recorder's
      // last decisions. The NACK livelock keeps *events* flowing, so the
      // stall watchdog stays quiet — dump at the horizon instead. One run
      // per configuration is enough to diagnose; the rest just count.
      if (out.wedged_runs == 0) {
        std::fprintf(stderr,
                     "# wedged run (classes=%d seed=%d): %lld undelivered\n%s%s",
                     classes ? 1 : 0, seed,
                     static_cast<long long>(s.outstanding),
                     net.debug_report().c_str(),
                     format_trace_tail(net.sim().tracer()).c_str());
      }
      ++out.wedged_runs;
      out.undelivered += s.outstanding;
    } else {
      ++out.completed_runs;
      out.mean_drain_time +=
          static_cast<double>(net.metrics().last_completion_time());
    }
    out.nacks += s.nacks;
  }
  if (out.completed_runs > 0) out.mean_drain_time /= out.completed_runs;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const int seeds = quick ? 2 : 5;
  const Time horizon = quick ? 1'500'000 : 2'500'000;
  std::printf("# Ablation A: burst drain with the two-buffer-class rule "
              "on/off (equal memory; 6 groups x 8 members on 16 hosts; "
              "%d seeds)\n",
              seeds);
  bench::print_header("burst_per_member",
                      {"on_wedged_runs", "on_undelivered", "on_nacks",
                       "on_drain_bt", "off_wedged_runs", "off_undelivered",
                       "off_nacks", "off_drain_bt"});
  const std::vector<int> bursts =
      quick ? std::vector<int>{2} : std::vector<int>{1, 2, 4};
  for (const int burst : bursts) {
    const Outcome on = run_cases(true, burst, seeds, horizon);
    const Outcome off = run_cases(false, burst, seeds, horizon);
    std::printf("%d,%d,%lld,%lld,%.0f,%d,%lld,%lld,%.0f\n", burst,
                on.wedged_runs, static_cast<long long>(on.undelivered),
                static_cast<long long>(on.nacks), on.mean_drain_time,
                off.wedged_runs, static_cast<long long>(off.undelivered),
                static_cast<long long>(off.nacks), off.mean_drain_time);
    std::fflush(stdout);
  }
  return 0;
}
