file(REMOVE_RECURSE
  "CMakeFiles/video_conference.dir/video_conference.cpp.o"
  "CMakeFiles/video_conference.dir/video_conference.cpp.o.d"
  "video_conference"
  "video_conference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_conference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
