# Empty dependencies file for updown_test.
# This may be replaced when dependencies are built.
