
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/channel.cpp" "src/net/CMakeFiles/wormcast_net.dir/channel.cpp.o" "gcc" "src/net/CMakeFiles/wormcast_net.dir/channel.cpp.o.d"
  "/root/repo/src/net/fabric.cpp" "src/net/CMakeFiles/wormcast_net.dir/fabric.cpp.o" "gcc" "src/net/CMakeFiles/wormcast_net.dir/fabric.cpp.o.d"
  "/root/repo/src/net/mcast_route_builder.cpp" "src/net/CMakeFiles/wormcast_net.dir/mcast_route_builder.cpp.o" "gcc" "src/net/CMakeFiles/wormcast_net.dir/mcast_route_builder.cpp.o.d"
  "/root/repo/src/net/source_route.cpp" "src/net/CMakeFiles/wormcast_net.dir/source_route.cpp.o" "gcc" "src/net/CMakeFiles/wormcast_net.dir/source_route.cpp.o.d"
  "/root/repo/src/net/switch_mcast.cpp" "src/net/CMakeFiles/wormcast_net.dir/switch_mcast.cpp.o" "gcc" "src/net/CMakeFiles/wormcast_net.dir/switch_mcast.cpp.o.d"
  "/root/repo/src/net/switch_mcast_engine.cpp" "src/net/CMakeFiles/wormcast_net.dir/switch_mcast_engine.cpp.o" "gcc" "src/net/CMakeFiles/wormcast_net.dir/switch_mcast_engine.cpp.o.d"
  "/root/repo/src/net/switch_rt.cpp" "src/net/CMakeFiles/wormcast_net.dir/switch_rt.cpp.o" "gcc" "src/net/CMakeFiles/wormcast_net.dir/switch_rt.cpp.o.d"
  "/root/repo/src/net/topologies.cpp" "src/net/CMakeFiles/wormcast_net.dir/topologies.cpp.o" "gcc" "src/net/CMakeFiles/wormcast_net.dir/topologies.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/net/CMakeFiles/wormcast_net.dir/topology.cpp.o" "gcc" "src/net/CMakeFiles/wormcast_net.dir/topology.cpp.o.d"
  "/root/repo/src/net/updown.cpp" "src/net/CMakeFiles/wormcast_net.dir/updown.cpp.o" "gcc" "src/net/CMakeFiles/wormcast_net.dir/updown.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/wormcast_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
