file(REMOVE_RECURSE
  "CMakeFiles/fig13_packet_loss.dir/fig13_packet_loss.cpp.o"
  "CMakeFiles/fig13_packet_loss.dir/fig13_packet_loss.cpp.o.d"
  "fig13_packet_loss"
  "fig13_packet_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_packet_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
