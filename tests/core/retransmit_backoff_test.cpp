// Retransmission backoff policy: exponential growth with a hard cap,
// jitter that stays in bounds but decorrelates senders, and the attempt
// counter resetting once a send is finally acknowledged.
#include <gtest/gtest.h>

#include <vector>

#include "core/network.h"
#include "core/protocol_config.h"
#include "net/topologies.h"
#include "sim/random.h"

namespace wormcast {
namespace {

TEST(RetryBackoff, DoublesPerAttemptWithoutJitter) {
  ProtocolConfig cfg;
  cfg.retry_backoff = 1'000;
  cfg.retry_jitter = 0;
  RandomStream rng(7);
  EXPECT_EQ(retry_backoff_delay(cfg, 0, rng), 1'000);
  EXPECT_EQ(retry_backoff_delay(cfg, 1, rng), 2'000);
  EXPECT_EQ(retry_backoff_delay(cfg, 2, rng), 4'000);
  EXPECT_EQ(retry_backoff_delay(cfg, 3, rng), 8'000);
}

TEST(RetryBackoff, CapsAtSixteenTimesBase) {
  ProtocolConfig cfg;
  cfg.retry_backoff = 1'000;
  cfg.retry_jitter = 0;
  RandomStream rng(7);
  for (int attempts = 4; attempts <= 12; ++attempts) {
    EXPECT_EQ(retry_backoff_delay(cfg, attempts, rng), 16'000)
        << "attempts=" << attempts;
  }
}

TEST(RetryBackoff, JitterStaysWithinConfiguredBound) {
  ProtocolConfig cfg;
  cfg.retry_backoff = 1'000;
  cfg.retry_jitter = 500;
  RandomStream rng(21);
  for (int i = 0; i < 200; ++i) {
    const Time d = retry_backoff_delay(cfg, 2, rng);
    EXPECT_GE(d, 4'000);
    EXPECT_LE(d, 4'500);
  }
}

// Two hosts with different RNG streams must not retry in lockstep, or a
// collision that killed both worms once will kill every retransmission too.
TEST(RetryBackoff, IndependentStreamsDecorrelate) {
  ProtocolConfig cfg;
  cfg.retry_backoff = 1'000;
  cfg.retry_jitter = 800;
  RandomStream master(99);
  RandomStream a = master.fork(1);
  RandomStream b = master.fork(2);
  std::vector<Time> da;
  std::vector<Time> db;
  for (int i = 0; i < 32; ++i) {
    da.push_back(retry_backoff_delay(cfg, i % 5, a));
    db.push_back(retry_backoff_delay(cfg, i % 5, b));
  }
  EXPECT_NE(da, db);
}

// End-to-end attempt accounting on a star: the root's send to one child is
// killed repeatedly (attempts climbs), the other child's send is killed
// once and then ACKed (attempts resets to zero on success).
TEST(RetryBackoff, AttemptsResetOnceAcked) {
  ExperimentConfig cfg;
  cfg.protocol.scheme = Scheme::kTreeSF;
  cfg.protocol.ack_timeout = 5'000;
  cfg.protocol.retry_backoff = 2'000;
  cfg.protocol.retry_jitter = 0;
  MulticastGroupSpec group;
  group.id = 0;
  group.members = {0, 1, 2};
  Network net(make_star(3), {group}, cfg);
  net.faults().force_kill_data(1, /*dst=*/1);
  net.faults().force_kill_data(3, /*dst=*/2);

  Demand d;
  d.src = 0;
  d.multicast = true;
  d.group = 0;
  d.length = 200;
  net.inject(d);

  // By t=25k the send to host 1 has been retried once and ACKed; the send
  // to host 2 is still failing (third kill lands around t=16k, next retry
  // waits out an 8k backoff).
  net.run_until(25'000);
  const HostProtocol::DebugSnapshot snap = net.protocol(0).debug_snapshot();
  ASSERT_EQ(snap.tasks.size(), 1u);
  bool saw1 = false;
  bool saw2 = false;
  for (const HostProtocol::SendDebug& s : snap.tasks[0].sends) {
    if (s.to == 1) {
      saw1 = true;
      EXPECT_TRUE(s.acked);
      EXPECT_EQ(s.attempts, 0) << "attempts must reset when the ACK arrives";
    } else if (s.to == 2) {
      saw2 = true;
      EXPECT_FALSE(s.acked);
      EXPECT_GE(s.attempts, 2);
    }
  }
  EXPECT_TRUE(saw1);
  EXPECT_TRUE(saw2);

  net.run_to_quiescence();
  EXPECT_EQ(net.metrics().messages_completed(), 1);
  EXPECT_EQ(net.metrics().outstanding(), 0);
  for (HostId h = 0; h < net.num_hosts(); ++h) {
    EXPECT_EQ(net.protocol(h).pool().total_used(), 0) << "host " << h;
    EXPECT_EQ(net.protocol(h).active_tasks(), 0u) << "host " << h;
  }
}

}  // namespace
}  // namespace wormcast
