#include "core/network.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "net/mcast_route_builder.h"
#include "sim/random.h"
#include "sim/trace_export.h"

namespace wormcast {

Network::Network(Topology topo, std::vector<MulticastGroupSpec> groups,
                 ExperimentConfig config)
    : topo_(std::move(topo)), groups_(std::move(groups)), config_(config) {
  topo_.validate();
  fabric_ = std::make_unique<Fabric>(sim_, topo_, config_.fabric);
  routing_ = std::make_unique<UpDownRouting>(topo_, config_.routing);
  UpDownOptions tree_opts = config_.routing;
  tree_opts.root = routing_->root();
  tree_opts.tree_links_only = true;
  tree_routing_ = std::make_unique<UpDownRouting>(topo_, tree_opts);
  mcast_engine_ = std::make_unique<SwitchMcastEngine>(
      sim_, topo_, *tree_routing_, config_.switch_mcast);
  fabric_->install_mcast_engine(mcast_engine_.get());
  tables_ = std::make_unique<GroupTables>(groups_, *routing_,
                                          config_.protocol.max_tree_fanout);
  RandomStream master(config_.seed);
  // The injector always exists (unarmed when no faults are configured) so
  // tests can force faults or schedule outages without rebuilding.
  faults_ = std::make_unique<FaultInjector>(master.fork(0xFA017), config_.faults);
  fabric_->install_fault_injector(faults_.get());
  const int n = topo_.num_hosts();
  adapters_.reserve(static_cast<std::size_t>(n));
  protocols_.reserve(static_cast<std::size_t>(n));
  for (HostId h = 0; h < n; ++h) {
    adapters_.push_back(
        std::make_unique<HostAdapter>(sim_, *fabric_, h, config_.adapter));
    adapters_.back()->set_fault_injector(faults_.get());
    protocols_.push_back(std::make_unique<HostProtocol>(
        sim_, *adapters_.back(), *routing_, *tables_, metrics_,
        config_.protocol, master.fork(0x5000 + static_cast<std::uint64_t>(h)),
        n));
    protocols_.back()->set_failure_listener(
        [this](HostId dead) { declare_host_dead(dead); });
  }
  traffic_ = std::make_unique<TrafficGenerator>(
      sim_, config_.traffic, groups_, n, master.fork(0x7AFF1C),
      [this](const Demand& d) { inject(d); });
  mcast_engine_->set_flush_handler([this](const WormPtr& worm) {
    protocols_[worm->src]->on_unicast_flushed(worm);
  });
}

Network::~Network() = default;

void Network::inject(const Demand& demand) {
  protocols_[demand.src]->originate(demand);
}

std::shared_ptr<MessageContext> Network::send_switch_multicast(
    HostId src, GroupId group, std::int64_t payload) {
  const CircuitTable& members = tables_->circuit(group);
  const int dests = members.size() - (members.contains(src) ? 1 : 0);
  auto ctx = metrics_.create_message(src, group, payload, dests, sim_.now());
  if (dests == 0) return ctx;
  auto worm = std::make_shared<Worm>();
  worm->id = ctx->message_id;
  worm->kind = WormKind::kSwitchMcast;
  worm->src = src;
  worm->payload = payload;
  worm->header = 0;  // metadata rides in the shared message context
  worm->mcast_route = EncodedMcastRoute::encode(
      build_mcast_branches(topo_, *tree_routing_, src, members.order()));
  worm->message = ctx;
  worm->created_at = ctx->created_at;
  adapters_[src]->send(std::move(worm));
  return ctx;
}

std::shared_ptr<MessageContext> Network::send_switch_broadcast(
    HostId src, std::int64_t payload) {
  auto ctx = metrics_.create_message(src, kBroadcastGroup, payload,
                                     topo_.num_hosts() - 1, sim_.now());
  auto worm = std::make_shared<Worm>();
  worm->id = ctx->message_id;
  worm->kind = WormKind::kSwitchMcast;
  worm->src = src;
  worm->payload = payload;
  worm->header = 0;
  worm->broadcast_flood = true;
  worm->route = tree_routing_->route_to_root(src);
  worm->message = ctx;
  worm->created_at = ctx->created_at;
  adapters_[src]->send(std::move(worm));
  return ctx;
}

void Network::crash_host(HostId h, Time when) {
  sim_.at(when, [this, h] {
    faults_->mark_host_dead(h);
    protocols_[h]->on_crash();
  });
}

void Network::fail_link(LinkId l, Time when) {
  sim_.at(when, [this, l] {
    const TopoLink& link = topo_.link(l);
    faults_->kill_link(&fabric_->channel_from(l, link.node_a));
    faults_->kill_link(&fabric_->channel_from(l, link.node_b));
    // Recompute up/down labels around the dead link; this also clears the
    // route caches, so every retransmission travels the healed paths.
    routing_->fail_link(l);
    tree_routing_->fail_link(l);
    metrics_.on_link_failed();
  });
}

void Network::declare_host_dead(HostId dead) {
  if (!removed_hosts_.insert(dead).second) return;  // already repaired
  faults_->mark_host_dead(dead);
  protocols_[dead]->on_crash();  // no-op when already crashed

  // Message-accounting triage *before* the tables forget the member: a
  // message is abandoned when its origin (or unicast destination) died;
  // a multicast merely loses one destination when a member that had not
  // yet delivered it died.
  for (const std::shared_ptr<MessageContext>& ctx :
       metrics_.outstanding_messages()) {
    if (ctx->origin == dead ||
        (ctx->group == kNoGroup && ctx->unicast_dst == dead)) {
      metrics_.abandon_message(ctx);
      continue;
    }
    if (ctx->group == kNoGroup) continue;
    const bool dead_is_dest = ctx->group == kBroadcastGroup ||
                              tables_->circuit(ctx->group).contains(dead);
    if (!dead_is_dest) continue;
    const std::vector<std::uint64_t>* order =
        metrics_.order_of(dead, ctx->group);
    const bool already_delivered =
        order != nullptr && std::find(order->begin(), order->end(),
                                      ctx->message_id) != order->end();
    if (!already_delivered) metrics_.shrink_destinations(ctx, sim_.now());
  }

  // Heal the shared group structures in place: splice the circuits,
  // re-parent orphaned subtrees, promote a new root where needed. Every
  // protocol sees the repaired tables immediately (shared by reference).
  const GroupTables::RepairStats stats = tables_->remove_member(dead);
  repair_stats_.circuits_spliced += stats.circuits_spliced;
  repair_stats_.subtrees_reparented += stats.subtrees_reparented;
  repair_stats_.roots_promoted += stats.roots_promoted;

  // Let every survivor retarget its in-flight sends onto the repaired
  // structures (the PR-1 retry machinery then redelivers them).
  for (const auto& protocol : protocols_)
    protocol->on_peer_removed(dead, stats.reattachments);
  metrics_.on_repair(sim_.now());

  // Grace sweep: copies that died *inside* the crashed member (ACKed but
  // never forwarded) leave their message outstanding forever. Give the
  // repaired structures a grace period to finish honest stragglers, then
  // write the rest off as disrupted so quiescence drains.
  const Time repaired_at = sim_.now();
  sim_.after(config_.protocol.repair_grace, [this, repaired_at] {
    for (const std::shared_ptr<MessageContext>& ctx :
         metrics_.outstanding_messages())
      if (ctx->created_at <= repaired_at) metrics_.abandon_message(ctx);
  });
}

void Network::run(Time warmup, Time measure, Time drain_cap) {
  metrics_.set_window_start(warmup);
  measure_span_ = measure;
  traffic_->start(warmup + measure);
  // Window edges are read between run_until() calls, after every event of
  // the edge tick has fired: mid-tick reads would depend on how events
  // interleave within the tick, which the burst fast path changes.
  sim_.run_until(warmup);
  egress_at_window_start_ = fabric_->host_egress_bytes();
  sim_.run_until(warmup + measure);
  egress_at_window_end_ = fabric_->host_egress_bytes();
  // Drain: let in-flight messages finish so tail latencies are recorded,
  // bounded so saturated runs terminate.
  const Time drain_deadline = warmup + measure + drain_cap;
  while (metrics_.outstanding() > 0 && sim_.now() < drain_deadline &&
         !sim_.idle()) {
    sim_.run_until(std::min(drain_deadline, sim_.now() + 10'000));
  }
}

Network::Summary Network::summary() const {
  Summary s;
  s.offered_load = config_.traffic.offered_load;
  if (measure_span_ > 0) {
    s.measured_utilization =
        static_cast<double>(egress_at_window_end_ - egress_at_window_start_) /
        static_cast<double>(measure_span_) /
        static_cast<double>(topo_.num_hosts());
  }
  s.mcast_latency_mean = metrics_.mcast_latency().mean();
  s.mcast_latency_p95 = metrics_.mcast_latency().percentile(95.0);
  s.mcast_completion_mean = metrics_.mcast_completion().mean();
  s.unicast_latency_mean = metrics_.unicast_latency().mean();
  s.mcast_samples = metrics_.mcast_latency().count();
  s.mcast_completion_samples = metrics_.mcast_completion().count();
  s.unicast_samples = metrics_.unicast_latency().count();
  const double span = measure_span_ > 0 ? static_cast<double>(measure_span_) : 1.0;
  s.throughput_per_host = static_cast<double>(metrics_.payload_delivered()) /
                          span / static_cast<double>(topo_.num_hosts());
  s.messages = metrics_.messages_created();
  s.drops = metrics_.mcast_drops();
  s.nacks = metrics_.nacks();
  s.retransmits = metrics_.retransmits();
  s.outstanding = metrics_.outstanding();
  s.oldest_outstanding_age = metrics_.oldest_outstanding_age(sim_.now());
  s.fabric_overflows = fabric_->total_overflows();
  s.faults_injected = faults_->total_injected();
  s.bytes_swallowed = fabric_->total_bytes_swallowed();
  s.ack_timeouts = metrics_.ack_timeouts();
  s.duplicates_suppressed = metrics_.duplicates_suppressed();
  s.deliveries_failed = metrics_.deliveries_failed();
  s.messages_completed = metrics_.messages_completed();
  s.suspicions = metrics_.suspicions();
  s.hosts_crashed = faults_->hosts_crashed();
  s.hosts_removed = static_cast<std::int64_t>(removed_hosts_.size());
  s.links_failed = metrics_.links_failed();
  s.sends_rerouted = metrics_.sends_rerouted();
  s.messages_disrupted = metrics_.messages_disrupted();
  s.unicasts_flushed = mcast_engine_->unicasts_flushed();
  s.last_repair_time = metrics_.last_repair_time();
  return s;
}

bool Network::write_trace(const std::string& path) const {
  return write_chrome_trace(sim_.tracer(), path);
}

check::CheckReport Network::check_expectations() const {
  const Tracer& tracer = sim_.tracer();
  check::CheckReport rep;
  if (!tracer.enabled() && tracer.recorded() == 0) {
    rep.refusal =
        "tracing is not enabled; call enable_tracing() before the run "
        "(with --check the benches do this automatically)";
    return rep;
  }
  if (tracer.dropped() > 0) {
    std::ostringstream why;
    why << "the trace ring wrapped: " << tracer.dropped() << " of "
        << tracer.recorded() << " events were overwritten (capacity "
        << tracer.capacity()
        << "), so absence of a violation proves nothing; raise the trace "
           "capacity (--trace-cap) until nothing drops";
    rep.refusal = why.str();
    rep.events_dropped = tracer.dropped();
    return rep;
  }

  check::CheckConfig ccfg;
  const ProtocolConfig& p = config_.protocol;
  ccfg.ack_timeout = p.ack_timeout;
  ccfg.retry_backoff = p.retry_backoff;
  ccfg.retry_jitter = p.retry_jitter;
  ccfg.max_attempts = p.max_attempts;
  ccfg.suspicion_timeout = p.suspicion_timeout;
  ccfg.probe_interval = p.probe_interval > 0
                            ? p.probe_interval
                            : std::max<Time>(1, p.suspicion_timeout / 4);
  ccfg.repair_grace = p.repair_grace;
  // The idle-flush rule only applies when scheme (c) can actually flush.
  ccfg.idle_flush_threshold =
      config_.switch_mcast.scheme == SwitchMcastScheme::kFlushUnicast
          ? config_.switch_mcast.idle_flush_threshold
          : 0;
  rep = check::run_checks(tracer.snapshot(), check::standard_rules(ccfg));
  rep.events_dropped = tracer.dropped();
  return rep;
}

void Network::register_counters(CounterRegistry& reg) const {
  const auto i64 = [](auto getter) {
    return [getter] { return static_cast<double>(getter()); };
  };
  reg.add("messages_created", i64([this] { return metrics_.messages_created(); }));
  reg.add("messages_completed",
          i64([this] { return metrics_.messages_completed(); }));
  reg.add("payload_delivered",
          i64([this] { return metrics_.payload_delivered(); }));
  reg.add("outstanding", i64([this] { return metrics_.outstanding(); }));
  reg.add("nacks", i64([this] { return metrics_.nacks(); }));
  reg.add("retransmits", i64([this] { return metrics_.retransmits(); }));
  reg.add("relays", i64([this] { return metrics_.relays(); }));
  reg.add("ack_timeouts", i64([this] { return metrics_.ack_timeouts(); }));
  reg.add("duplicates_suppressed",
          i64([this] { return metrics_.duplicates_suppressed(); }));
  reg.add("deliveries_failed",
          i64([this] { return metrics_.deliveries_failed(); }));
  reg.add("mcast_drops", i64([this] { return metrics_.mcast_drops(); }));
  reg.add("suspicions", i64([this] { return metrics_.suspicions(); }));
  reg.add("repairs", i64([this] { return metrics_.repairs(); }));
  reg.add("sends_rerouted", i64([this] { return metrics_.sends_rerouted(); }));
  reg.add("messages_disrupted",
          i64([this] { return metrics_.messages_disrupted(); }));
  reg.add("links_failed", i64([this] { return metrics_.links_failed(); }));
  reg.add("fabric_bytes_sent",
          i64([this] { return fabric_->fabric_bytes_sent(); }));
  reg.add("fabric_bytes_swallowed",
          i64([this] { return fabric_->total_bytes_swallowed(); }));
  reg.add("fabric_overflows", i64([this] { return fabric_->total_overflows(); }));
  reg.add("faults_injected", i64([this] { return faults_->total_injected(); }));
  reg.add("mcast_connections",
          i64([this] { return mcast_engine_->connections_opened(); }));
  reg.add("mcast_fragments",
          i64([this] { return mcast_engine_->fragments_sent(); }));
  reg.add("unicasts_flushed",
          i64([this] { return mcast_engine_->unicasts_flushed(); }));
  reg.add("events_dispatched", i64([this] { return sim_.events_dispatched(); }));
  reg.add("event_queue_peak", i64([this] { return sim_.event_queue_peak(); }));
  reg.add("trace_events_recorded",
          i64([this] { return sim_.tracer().recorded(); }));
  reg.add("trace_events_dropped",
          i64([this] { return sim_.tracer().dropped(); }));
}

DeadlockWatchdog& Network::attach_watchdog(Time interval) {
  watchdog_ = std::make_unique<DeadlockWatchdog>(
      sim_, interval, [this] { return metrics_.outstanding(); }, nullptr);
  watchdog_->set_diagnostics([this] { return debug_report(); });
  watchdog_->arm();
  return *watchdog_;
}

std::string Network::debug_report() const {
  std::ostringstream out;
  out << "t=" << sim_.now() << " outstanding=" << metrics_.outstanding()
      << " faults=" << faults_->total_injected() << '\n';
  for (HostId h = 0; h < topo_.num_hosts(); ++h) {
    const HostProtocol::DebugSnapshot snap = protocols_[h]->debug_snapshot();
    out << "host " << h << ':' << (protocols_[h]->crashed() ? " dead" : "")
        << " tasks=" << snap.tasks.size()
        << " pool_used=" << snap.pool_used
        << " ack_wait=" << snap.ack_wait_keys.size()
        << " txq=" << adapters_[h]->tx_queue_depth() << '\n';
    for (const HostProtocol::TaskDebug& t : snap.tasks) {
      out << "  msg=" << t.message_id << " origin=" << t.origin
          << " group=" << t.group << " reserved=" << t.reserved
          << (t.rx_complete ? " rx-done" : " rx-partial")
          << (t.delivered ? " delivered" : "")
          << (t.originator ? " originator" : "") << " sends=[";
      for (std::size_t i = 0; i < t.sends.size(); ++i) {
        const HostProtocol::SendDebug& sd = t.sends[i];
        if (i > 0) out << ' ';
        out << sd.to << ':'
            << (sd.failed ? "failed"
                          : (sd.acked ? "acked"
                                      : (sd.started ? "unacked" : "queued")));
        if (sd.attempts > 0) out << "(a" << sd.attempts << ')';
      }
      out << "]\n";
    }
  }
  return out.str();
}

}  // namespace wormcast
