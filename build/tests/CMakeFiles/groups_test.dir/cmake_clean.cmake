file(REMOVE_RECURSE
  "CMakeFiles/groups_test.dir/traffic/groups_test.cpp.o"
  "CMakeFiles/groups_test.dir/traffic/groups_test.cpp.o.d"
  "groups_test"
  "groups_test.pdb"
  "groups_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/groups_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
