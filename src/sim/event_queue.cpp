#include "sim/event_queue.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>

namespace wormcast {

namespace {

// Typical experiments keep a few hundred in-flight events per host; one
// up-front reservation avoids the incremental regrowth entirely.
constexpr std::size_t kInitialSlotCapacity = 1024;
// Calendar geometry bounds. 64 buckets is small enough that an idle queue
// costs nothing to rotate through and large enough that the first resize
// is not immediate; width is clamped so window arithmetic stays far from
// Time overflow even for day-long byte-time runs.
constexpr std::size_t kMinBuckets = 64;
constexpr unsigned kMinWidthLog2 = 2;
constexpr unsigned kMaxWidthLog2 = 40;

}  // namespace

const char* to_string(EventQueueKind kind) {
  switch (kind) {
    case EventQueueKind::kCalendar:
      return "calendar";
    case EventQueueKind::kHeap:
      return "heap";
  }
  return "?";
}

bool parse_event_queue_kind(const char* name, EventQueueKind* out) {
  if (std::strcmp(name, "calendar") == 0) {
    *out = EventQueueKind::kCalendar;
    return true;
  }
  if (std::strcmp(name, "heap") == 0) {
    *out = EventQueueKind::kHeap;
    return true;
  }
  return false;
}

EventQueue::EventQueue(EventQueueKind kind) : kind_(kind) {
  slots_.reserve(kInitialSlotCapacity);
  free_slots_.reserve(kInitialSlotCapacity);
  if (kind_ == EventQueueKind::kHeap) {
    heap_.reserve(kInitialSlotCapacity);
  } else {
    buckets_.resize(kMinBuckets);
    bucket_mask_ = kMinBuckets - 1;
  }
}

std::uint32_t EventQueue::acquire_slot(Action action) {
  std::uint32_t index;
  if (!free_slots_.empty()) {
    index = free_slots_.back();
    free_slots_.pop_back();
  } else {
    index = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[index];
  assert(!s.live);
  s.action = std::move(action);
  s.live = true;
  return index;
}

void EventQueue::retire_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  assert(s.live);
  s.live = false;
  // Destroy the action now, not at compaction: cancelled retransmit timers
  // capture worm shared_ptrs, and holding those until a sweep would keep
  // whole payloads alive for no reason.
  s.action.reset();
  ++s.gen;  // invalidates every outstanding handle and parked entry
  free_slots_.push_back(slot);
}

EventHandle EventQueue::schedule(Time when, Action action, bool late) {
  assert(action);
  const std::uint64_t seq = next_seq_++;
  const std::uint32_t slot = acquire_slot(std::move(action));
  Entry e;
  e.time = when;
  e.key = (static_cast<std::uint64_t>(late) << 63) | seq;
  e.slot = slot;
  e.gen = slots_[slot].gen;
  ++live_count_;
  if (kind_ == EventQueueKind::kHeap) {
    heap_insert(e);
    peak_size_ = std::max(peak_size_, heap_.size());
  } else {
    cal_insert(e);
    peak_size_ = std::max(peak_size_, entries_parked_);
  }
  return EventHandle(slot, e.gen);
}

void EventQueue::cancel(EventHandle handle) {
  if (!handle.valid() || handle.slot_ >= slots_.size()) return;
  Slot& s = slots_[handle.slot_];
  if (!s.live || s.gen != handle.gen_) return;  // already fired or cancelled
  const bool was_head =
      kind_ == EventQueueKind::kCalendar && handle.slot_ == head_slot_;
  retire_slot(handle.slot_);
  --live_count_;
  ++dead_parked_;
  if (kind_ == EventQueueKind::kHeap) {
    heap_drop_dead_head();
    if (dead_parked_ * 2 > heap_.size()) heap_compact();
  } else {
    if (was_head && live_count_ > 0) cal_find_head();
    if (dead_parked_ * 2 > entries_parked_) cal_compact();
    cal_maybe_resize();
  }
}

EventQueue::Popped EventQueue::pop() {
  assert(live_count_ > 0 && "pop() on empty EventQueue");
  Entry e = kind_ == EventQueueKind::kHeap ? heap_take() : cal_take();
  assert(entry_live(e));
  Popped out;
  out.time = e.time;
  out.action = std::move(slots_[e.slot].action);
  retire_slot(e.slot);
  --live_count_;
  if (kind_ == EventQueueKind::kCalendar) {
    cal_find_head();
    cal_maybe_resize();
  }
  return out;
  // The caller runs the action after we return, so a re-entrant schedule()
  // sees fully consistent counters and may immediately reuse this slot.
}

// --- flat heap -----------------------------------------------------------

void EventQueue::heap_insert(const Entry& e) {
  heap_.push_back(e);
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  head_time_ = heap_.front().time;
}

EventQueue::Entry EventQueue::heap_take() {
  assert(!heap_.empty() && entry_live(heap_.front()));
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry e = heap_.back();
  heap_.pop_back();
  heap_drop_dead_head();  // restore the head-is-live invariant
  return e;
}

void EventQueue::heap_drop_dead_head() {
  while (!heap_.empty() && !entry_live(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
    assert(dead_parked_ > 0);
    --dead_parked_;
  }
  if (!heap_.empty()) head_time_ = heap_.front().time;
}

void EventQueue::heap_compact() {
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                             [this](const Entry& e) { return !entry_live(e); }),
              heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  dead_parked_ = 0;
  if (!heap_.empty()) head_time_ = heap_.front().time;
}

// --- calendar ------------------------------------------------------------

void EventQueue::cal_insert(const Entry& e) {
  auto& bucket = buckets_[bucket_of(e.time)];
  bucket.push_back(e);
  std::push_heap(bucket.begin(), bucket.end(), Later{});
  ++entries_parked_;
  // live_count_ was already incremented by schedule(): ==1 means this is
  // the only live event, so the head cache must be rebuilt from it even
  // though dead entries may still be parked elsewhere.
  if (live_count_ == 1 || e.time < head_time_ ||
      (e.time == head_time_ && e.key < head_key_)) {
    cursor_ = bucket_of(e.time);
    window_end_ = window_end_of(e.time);
    head_time_ = e.time;
    head_key_ = e.key;
    head_slot_ = e.slot;
  }
  cal_maybe_resize();
}

EventQueue::Entry EventQueue::cal_take() {
  auto& bucket = buckets_[cursor_];
  // Dead entries can sort before the head within its bucket (a cancelled
  // event whose time was earlier); clear them so the front is the head.
  cal_clean_head(bucket);
  assert(!bucket.empty());
  std::pop_heap(bucket.begin(), bucket.end(), Later{});
  Entry e = bucket.back();
  bucket.pop_back();
  --entries_parked_;
  assert(e.time == head_time_ && e.key == head_key_ && e.slot == head_slot_);
  return e;
}

void EventQueue::cal_clean_head(std::vector<Entry>& b) {
  while (!b.empty() && !entry_live(b.front())) {
    std::pop_heap(b.begin(), b.end(), Later{});
    b.pop_back();
    --entries_parked_;
    assert(dead_parked_ > 0);
    --dead_parked_;
  }
}

void EventQueue::cal_find_head() {
  if (live_count_ == 0) {
    head_time_ = kTimeNever;
    return;
  }
  // The new head can only be at or after the old one (inserts earlier than
  // the head rewind the cursor in cal_insert), so scanning forward from
  // the current window is safe.
  const Time width = Time{1} << width_log2_;
  for (std::size_t scanned = 0; scanned < buckets_.size(); ++scanned) {
    auto& bucket = buckets_[cursor_];
    cal_clean_head(bucket);
    if (!bucket.empty() && bucket.front().time < window_end_) {
      const Entry& f = bucket.front();
      head_time_ = f.time;
      head_key_ = f.key;
      head_slot_ = f.slot;
      return;
    }
    cursor_ = (cursor_ + 1) & bucket_mask_;
    window_end_ += width;
  }
  // Full rotation with no hit: the next event is further away than one
  // whole calendar cycle. Jump to the global minimum across bucket heads
  // instead of walking empty windows one by one.
  const Entry* best = nullptr;
  for (auto& bucket : buckets_) {
    cal_clean_head(bucket);
    if (bucket.empty()) continue;
    const Entry& f = bucket.front();
    if (best == nullptr || f.time < best->time ||
        (f.time == best->time && f.key < best->key)) {
      best = &f;
    }
  }
  assert(best != nullptr);
  cursor_ = bucket_of(best->time);
  window_end_ = window_end_of(best->time);
  head_time_ = best->time;
  head_key_ = best->key;
  head_slot_ = best->slot;
}

void EventQueue::cal_resize(std::size_t count) {
  // Collect the live population; dead parked entries are dropped here.
  std::vector<Entry> live;
  live.reserve(live_count_);
  Time min_time = kTimeNever;
  Time max_time = 0;
  for (auto& bucket : buckets_) {
    for (const Entry& e : bucket) {
      if (!entry_live(e)) continue;
      live.push_back(e);
      min_time = std::min(min_time, e.time);
      max_time = std::max(max_time, e.time);
    }
    bucket.clear();  // keeps capacity for reuse
  }
  dead_parked_ = 0;
  entries_parked_ = live.size();
  if (count != buckets_.size()) buckets_.resize(count);
  bucket_mask_ = count - 1;

  // Fit the bucket width to the mean gap between live events so a window
  // holds O(1) of them. Pure integer math on queue contents — identical
  // runs resize identically, which the equivalence tests rely on.
  if (live.size() >= 2 && max_time > min_time) {
    const std::uint64_t gap =
        static_cast<std::uint64_t>(max_time - min_time) / live.size();
    width_log2_ = std::clamp(static_cast<unsigned>(std::bit_width(gap | 1)),
                             kMinWidthLog2, kMaxWidthLog2);
  }

  const Entry* best = nullptr;
  for (const Entry& e : live) {
    buckets_[bucket_of(e.time)].push_back(e);
    if (best == nullptr || e.time < best->time ||
        (e.time == best->time && e.key < best->key)) {
      best = &e;
    }
  }
  for (auto& bucket : buckets_) {
    std::make_heap(bucket.begin(), bucket.end(), Later{});
  }
  if (best != nullptr) {
    cursor_ = bucket_of(best->time);
    window_end_ = window_end_of(best->time);
    head_time_ = best->time;
    head_key_ = best->key;
    head_slot_ = best->slot;
  } else {
    head_time_ = kTimeNever;
  }
}

void EventQueue::cal_maybe_resize() {
  const std::size_t buckets = buckets_.size();
  if (live_count_ > buckets * 2) {
    cal_resize(buckets * 2);
  } else if (buckets > kMinBuckets && live_count_ < buckets / 8) {
    cal_resize(buckets / 2);
  }
}

}  // namespace wormcast
