// Runtime model of one crossbar switch.
//
// Input ports own slack buffers with STOP/GO thresholds (Figure 1); output
// ports arbitrate among blocked inputs in FIFO order (Myrinet's round-robin
// of blocked worms). A worm's head byte is consumed at the input port to
// select the output (source routing); the worm then holds the input→output
// crossbar connection until its tail passes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "net/channel.h"
#include "sim/lazy_deque.h"
#include "net/worm.h"
#include "sim/simulator.h"
#include "sim/types.h"

namespace wormcast {

class SwitchRt;
class McastEngine;

/// Per-switch flow-control and timing parameters.
struct SwitchConfig {
  /// Slack-buffer occupancy at which STOP is sent upstream (K_s, Figure 1).
  std::int64_t stop_threshold = 24;
  /// Occupancy at which GO re-opens the upstream transmitter (K_g).
  std::int64_t go_threshold = 8;
  /// Head routing/arbitration latency in byte-times.
  Time routing_latency = 4;
};

/// One switch input port: slack buffer plus forwarding state machine.
class InPort final : public RxSink, public ByteFeed {
 public:
  InPort(SwitchRt& sw, PortId port);

  // RxSink — bytes arriving from the upstream channel.
  void on_head(const WormPtr& worm, std::int64_t wire_len, bool tail) override;
  void on_body(bool tail) override;
  [[nodiscard]] std::int64_t rx_burst_budget() const override;
  void on_body_burst(std::int64_t n, bool tail) override;

  // ByteFeed — bytes leaving through the connected output channel.
  [[nodiscard]] bool byte_available() const override;
  TxByte take_byte() override;
  void on_tail_sent() override;
  [[nodiscard]] std::int64_t burst_available() const override;
  std::int64_t take_bytes(std::int64_t max) override;
  [[nodiscard]] Time next_byte_time() const override;

  [[nodiscard]] PortId port() const { return port_; }
  [[nodiscard]] std::int64_t buffered() const { return buffered_; }
  [[nodiscard]] bool stop_sent() const { return stop_sent_; }
  /// Worms queued in this port (front one may be mid-forward).
  [[nodiscard]] std::size_t worms_pending() const { return rx_queue_.size(); }
  /// Estimated resident bytes for this input port (memory audit).
  [[nodiscard]] std::size_t heap_bytes_estimate() const {
    return sizeof(InPort) + rx_queue_.heap_bytes_estimate();
  }
  /// Bytes of the front worm available to forward right now. Burst-delivered
  /// bytes whose logical arrival time is still in the future do not count
  /// (they become forwardable one per byte-time, exactly as if the upstream
  /// channel had stepped per-byte).
  [[nodiscard]] std::int64_t front_available() const;
  [[nodiscard]] const WormPtr& front_worm() const { return rx_queue_.front().worm; }

  /// Called by the output port when this input wins arbitration.
  void granted(PortId out_port);

  /// Consumes one buffered byte on behalf of a multicast connection (the
  /// multicast engine forwards to several outputs at once and manages its
  /// own pacing).
  void mcast_consume();
  /// Completes the front worm for the multicast engine (all branches done).
  void mcast_finish_front();
  /// Bytes of the front worm that have arrived (head included) and its
  /// declared wire length; used by the multicast engine for pacing.
  [[nodiscard]] std::int64_t front_received() const {
    return rx_queue_.front().received;
  }
  [[nodiscard]] std::int64_t front_wire_len() const {
    return rx_queue_.front().wire_len;
  }
  /// True once the front worm's tail symbol has arrived (authoritative
  /// length: front_received() is then final).
  [[nodiscard]] bool front_tail_seen() const {
    return rx_queue_.front().tail_seen;
  }
  /// The switch this port belongs to.
  [[nodiscard]] SwitchRt& owner() { return sw_; }

  /// Flushes the front worm (scheme (c), Section 3): it is discarded here —
  /// never forwarded — and drains out of the network as its remaining bytes
  /// arrive. Pre: the front worm is routed but has no output connection.
  void flush_front();

 private:
  struct RxWorm {
    WormPtr worm;
    std::int64_t wire_len = 0;  // declared length (advisory for fragments)
    std::int64_t received = 0;  // bytes physically delivered (head included)
    bool routed = false;        // routing decision issued
    bool tail_seen = false;     // tail symbol arrived (authoritative framing)
    bool discard = false;       // flushed: swallow remaining bytes
    /// Logical arrival time of the newest byte: a burst delivered at t
    /// carries arrival times t..t+n-1, so bytes with arrival > now have
    /// not "happened" yet for forwarding purposes.
    Time run_end = 0;
  };

  void begin_routing();
  void do_route();
  void after_byte_removed();
  void check_stop();

  SwitchRt& sw_;
  PortId port_;
  LazyDeque<RxWorm> rx_queue_;
  std::int64_t buffered_ = 0;  // bytes held in the slack buffer
  bool stop_sent_ = false;

  // Forwarding state for the front worm (unicast connection).
  bool connected_ = false;
  PortId out_port_ = kNoPort;
  std::int64_t forwarded_ = 0;  // bytes sent downstream for the front worm
  // When the pending output request was issued (arbitration key).
  friend class SwitchRt;
  Time request_time_ = 0;
  // True while the front worm is owned by the switch-level multicast engine.
  bool mcast_active_ = false;
};

/// One switch output port: the downstream channel plus its wait queue.
struct OutPort {
  Channel* channel = nullptr;
  bool busy = false;
  LazyDeque<InPort*> waiters;
  /// True while a same-tick arbitration event is scheduled for this port.
  bool arb_pending = false;
  /// Set while a switch-level multicast branch holds this port.
  bool held_by_mcast = false;
  /// Multicast branches waiting for the port; served before unicast
  /// waiters (invoked to claim the port when it frees).
  LazyDeque<std::function<void()>> mcast_waiters;
  /// Time at which the port last moved a data byte (multicast-IDLE
  /// detection, Section 3 scheme (c)).
  Time last_data_byte = 0;
};

/// The crossbar switch proper.
class SwitchRt {
 public:
  SwitchRt(Simulator& sim, NodeId node, int n_ports, SwitchConfig config);
  SwitchRt(const SwitchRt&) = delete;
  SwitchRt& operator=(const SwitchRt&) = delete;
  ~SwitchRt();

  /// Wires port p's channels. Must be called for every port before run.
  void set_channels(PortId p, Channel* in, Channel* out);

  /// Input port p as a receiver sink (for Fabric wiring).
  [[nodiscard]] RxSink* sink(PortId p);

  /// Requests `out` for `in`. The request is queued and resolved by an
  /// end-of-tick arbitration pass: same-tick requests are granted in a
  /// canonical (request time, in-port id) order rather than in event
  /// order, so results do not depend on how events interleave within a
  /// tick (the burst-mode fast path coalesces events and would otherwise
  /// perturb FIFO arrival order).
  void request_output(InPort& in, PortId out);
  /// Releases `out` and grants the next waiter, if any.
  void release_output(PortId out);
  /// Abandons a pending (not yet granted) request. Returns true if the
  /// request was found and removed.
  bool cancel_request(InPort& in, PortId out);
  /// True while `in` is queued waiting for `out`.
  [[nodiscard]] bool is_waiting(const InPort& in, PortId out) const {
    const auto& w = out_ports_[out].waiters;
    return std::find(w.begin(), w.end(), &in) != w.end();
  }

  /// Multicast-branch port management (switch-level multicast engine):
  /// claims the port now (returns true) or queues `on_free` to be invoked
  /// when the port becomes available.
  bool claim_output_for_mcast(PortId out, std::function<void()> on_free);
  /// Releases a port held by a multicast branch.
  void release_mcast_output(PortId out);
  /// Hands a free port to the next waiter (multicast branches first;
  /// unicast waiters in canonical (request time, in-port id) order).
  void grant_next(PortId out);

  [[nodiscard]] Simulator& sim() { return sim_; }
  [[nodiscard]] NodeId node() const { return node_; }
  [[nodiscard]] const SwitchConfig& config() const { return config_; }
  [[nodiscard]] int n_ports() const { return static_cast<int>(out_ports_.size()); }
  [[nodiscard]] OutPort& out_port(PortId p) { return out_ports_[p]; }
  [[nodiscard]] InPort& in_port(PortId p) { return *in_ports_[p]; }
  [[nodiscard]] Channel* in_channel(PortId p) { return in_channels_[p]; }
  /// Estimated resident bytes for this switch and its ports (memory
  /// audit): object + port arrays + every port queue that has ever held
  /// an element.
  [[nodiscard]] std::size_t heap_bytes_estimate() const;

  /// Installs the switch-level multicast engine (nullptr = multicast worms
  /// are a protocol error at this switch).
  void set_mcast_engine(McastEngine* engine) { mcast_engine_ = engine; }
  [[nodiscard]] McastEngine* mcast_engine() { return mcast_engine_; }

  /// Slack-buffer overflow accounting (should stay zero when thresholds
  /// and capacities are consistent; tests assert on it).
  void note_overflow() { ++overflows_; }
  [[nodiscard]] std::int64_t overflows() const { return overflows_; }
  [[nodiscard]] std::int64_t slack_capacity(PortId p) const;

 private:
  /// Schedules a zero-delay arbitration event for `out` (coalesced: at
  /// most one pending per port). Running arbitration after every event of
  /// the current tick has fired makes grant decisions a function of the
  /// request set, not of within-tick event order.
  void schedule_arbitration(PortId out);

  Simulator& sim_;
  NodeId node_;
  SwitchConfig config_;
  std::vector<std::unique_ptr<InPort>> in_ports_;
  std::vector<OutPort> out_ports_;
  std::vector<Channel*> in_channels_;
  McastEngine* mcast_engine_ = nullptr;
  std::int64_t overflows_ = 0;
};

}  // namespace wormcast
