#include "sim/simulator.h"

#include <cassert>
#include <utility>

namespace wormcast {

EventHandle Simulator::at(Time when, EventQueue::Action action) {
  assert(when >= now_ && "scheduling into the past");
  return queue_.schedule(when, std::move(action));
}

EventHandle Simulator::after(Time delay, EventQueue::Action action) {
  assert(delay >= 0 && "negative delay");
  return queue_.schedule(now_ + delay, std::move(action));
}

EventHandle Simulator::at_late(Time when, EventQueue::Action action) {
  assert(when >= now_ && "scheduling into the past");
  return queue_.schedule(when, std::move(action), /*late=*/true);
}

void Simulator::dispatch_one() {
  auto [time, action] = queue_.pop();
  assert(time >= now_);
  now_ = time;
  ++dispatched_;
  action();
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && !queue_.empty()) dispatch_one();
}

void Simulator::run_until(Time deadline) {
  stopped_ = false;
  while (!stopped_ && queue_.next_time() <= deadline) dispatch_one();
  if (!stopped_ && now_ < deadline) now_ = deadline;
}

}  // namespace wormcast
