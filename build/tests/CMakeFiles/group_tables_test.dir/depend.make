# Empty dependencies file for group_tables_test.
# This may be replaced when dependencies are built.
