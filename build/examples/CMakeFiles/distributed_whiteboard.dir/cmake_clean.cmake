file(REMOVE_RECURSE
  "CMakeFiles/distributed_whiteboard.dir/distributed_whiteboard.cpp.o"
  "CMakeFiles/distributed_whiteboard.dir/distributed_whiteboard.cpp.o.d"
  "distributed_whiteboard"
  "distributed_whiteboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_whiteboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
