#include "core/network.h"

#include <sstream>
#include <utility>

#include "net/mcast_route_builder.h"
#include "sim/random.h"

namespace wormcast {

Network::Network(Topology topo, std::vector<MulticastGroupSpec> groups,
                 ExperimentConfig config)
    : topo_(std::move(topo)), groups_(std::move(groups)), config_(config) {
  topo_.validate();
  fabric_ = std::make_unique<Fabric>(sim_, topo_, config_.fabric);
  routing_ = std::make_unique<UpDownRouting>(topo_, config_.routing);
  UpDownOptions tree_opts = config_.routing;
  tree_opts.root = routing_->root();
  tree_opts.tree_links_only = true;
  tree_routing_ = std::make_unique<UpDownRouting>(topo_, tree_opts);
  mcast_engine_ = std::make_unique<SwitchMcastEngine>(
      sim_, topo_, *tree_routing_, config_.switch_mcast);
  fabric_->install_mcast_engine(mcast_engine_.get());
  tables_ = std::make_unique<GroupTables>(groups_, *routing_,
                                          config_.protocol.max_tree_fanout);
  RandomStream master(config_.seed);
  // The injector always exists (unarmed when no faults are configured) so
  // tests can force faults or schedule outages without rebuilding.
  faults_ = std::make_unique<FaultInjector>(master.fork(0xFA017), config_.faults);
  fabric_->install_fault_injector(faults_.get());
  const int n = topo_.num_hosts();
  adapters_.reserve(static_cast<std::size_t>(n));
  protocols_.reserve(static_cast<std::size_t>(n));
  for (HostId h = 0; h < n; ++h) {
    adapters_.push_back(
        std::make_unique<HostAdapter>(sim_, *fabric_, h, config_.adapter));
    adapters_.back()->set_fault_injector(faults_.get());
    protocols_.push_back(std::make_unique<HostProtocol>(
        sim_, *adapters_.back(), *routing_, *tables_, metrics_,
        config_.protocol, master.fork(0x5000 + static_cast<std::uint64_t>(h)),
        n));
  }
  traffic_ = std::make_unique<TrafficGenerator>(
      sim_, config_.traffic, groups_, n, master.fork(0x7AFF1C),
      [this](const Demand& d) { inject(d); });
  mcast_engine_->set_flush_handler([this](const WormPtr& worm) {
    protocols_[worm->src]->on_unicast_flushed(worm);
  });
}

Network::~Network() = default;

void Network::inject(const Demand& demand) {
  protocols_[demand.src]->originate(demand);
}

std::shared_ptr<MessageContext> Network::send_switch_multicast(
    HostId src, GroupId group, std::int64_t payload) {
  const CircuitTable& members = tables_->circuit(group);
  const int dests = members.size() - (members.contains(src) ? 1 : 0);
  auto ctx = metrics_.create_message(src, group, payload, dests, sim_.now());
  if (dests == 0) return ctx;
  auto worm = std::make_shared<Worm>();
  worm->id = ctx->message_id;
  worm->kind = WormKind::kSwitchMcast;
  worm->src = src;
  worm->payload = payload;
  worm->header = 0;  // metadata rides in the shared message context
  worm->mcast_route = EncodedMcastRoute::encode(
      build_mcast_branches(topo_, *tree_routing_, src, members.order()));
  worm->message = ctx;
  worm->created_at = ctx->created_at;
  adapters_[src]->send(std::move(worm));
  return ctx;
}

std::shared_ptr<MessageContext> Network::send_switch_broadcast(
    HostId src, std::int64_t payload) {
  auto ctx = metrics_.create_message(src, kBroadcastGroup, payload,
                                     topo_.num_hosts() - 1, sim_.now());
  auto worm = std::make_shared<Worm>();
  worm->id = ctx->message_id;
  worm->kind = WormKind::kSwitchMcast;
  worm->src = src;
  worm->payload = payload;
  worm->header = 0;
  worm->broadcast_flood = true;
  worm->route = tree_routing_->route_to_root(src);
  worm->message = ctx;
  worm->created_at = ctx->created_at;
  adapters_[src]->send(std::move(worm));
  return ctx;
}

void Network::run(Time warmup, Time measure, Time drain_cap) {
  metrics_.set_window_start(warmup);
  measure_span_ = measure;
  traffic_->start(warmup + measure);
  sim_.at(warmup,
          [this] { egress_at_window_start_ = fabric_->host_egress_bytes(); });
  sim_.at(warmup + measure,
          [this] { egress_at_window_end_ = fabric_->host_egress_bytes(); });
  sim_.run_until(warmup + measure);
  // Drain: let in-flight messages finish so tail latencies are recorded,
  // bounded so saturated runs terminate.
  const Time drain_deadline = warmup + measure + drain_cap;
  while (metrics_.outstanding() > 0 && sim_.now() < drain_deadline &&
         !sim_.idle()) {
    sim_.run_until(std::min(drain_deadline, sim_.now() + 10'000));
  }
}

Network::Summary Network::summary() const {
  Summary s;
  s.offered_load = config_.traffic.offered_load;
  if (measure_span_ > 0) {
    s.measured_utilization =
        static_cast<double>(egress_at_window_end_ - egress_at_window_start_) /
        static_cast<double>(measure_span_) /
        static_cast<double>(topo_.num_hosts());
  }
  s.mcast_latency_mean = metrics_.mcast_latency().mean();
  s.mcast_latency_p95 = metrics_.mcast_latency().percentile(95.0);
  s.mcast_completion_mean = metrics_.mcast_completion().mean();
  s.unicast_latency_mean = metrics_.unicast_latency().mean();
  const double span = measure_span_ > 0 ? static_cast<double>(measure_span_) : 1.0;
  s.throughput_per_host = static_cast<double>(metrics_.payload_delivered()) /
                          span / static_cast<double>(topo_.num_hosts());
  s.messages = metrics_.messages_created();
  s.drops = metrics_.mcast_drops();
  s.nacks = metrics_.nacks();
  s.retransmits = metrics_.retransmits();
  s.outstanding = metrics_.outstanding();
  s.oldest_outstanding_age = metrics_.oldest_outstanding_age(sim_.now());
  s.fabric_overflows = fabric_->total_overflows();
  s.faults_injected = faults_->total_injected();
  s.ack_timeouts = metrics_.ack_timeouts();
  s.duplicates_suppressed = metrics_.duplicates_suppressed();
  s.deliveries_failed = metrics_.deliveries_failed();
  s.messages_completed = metrics_.messages_completed();
  return s;
}

DeadlockWatchdog& Network::attach_watchdog(Time interval) {
  watchdog_ = std::make_unique<DeadlockWatchdog>(
      sim_, interval, [this] { return metrics_.outstanding(); }, nullptr);
  watchdog_->set_diagnostics([this] { return debug_report(); });
  watchdog_->arm();
  return *watchdog_;
}

std::string Network::debug_report() const {
  std::ostringstream out;
  out << "t=" << sim_.now() << " outstanding=" << metrics_.outstanding()
      << " faults=" << faults_->total_injected() << '\n';
  for (HostId h = 0; h < topo_.num_hosts(); ++h) {
    const HostProtocol::DebugSnapshot snap = protocols_[h]->debug_snapshot();
    out << "host " << h << ": tasks=" << snap.tasks.size()
        << " pool_used=" << snap.pool_used
        << " ack_wait=" << snap.ack_wait_keys.size()
        << " txq=" << adapters_[h]->tx_queue_depth() << '\n';
    for (const HostProtocol::TaskDebug& t : snap.tasks) {
      out << "  msg=" << t.message_id << " origin=" << t.origin
          << " group=" << t.group << " reserved=" << t.reserved
          << (t.rx_complete ? " rx-done" : " rx-partial")
          << (t.delivered ? " delivered" : "")
          << (t.originator ? " originator" : "") << " sends=[";
      for (std::size_t i = 0; i < t.sends.size(); ++i) {
        const HostProtocol::SendDebug& sd = t.sends[i];
        if (i > 0) out << ' ';
        out << sd.to << ':'
            << (sd.failed ? "failed"
                          : (sd.acked ? "acked"
                                      : (sd.started ? "unacked" : "queued")));
        if (sd.attempts > 0) out << "(a" << sd.attempts << ')';
      }
      out << "]\n";
    }
  }
  return out.str();
}

}  // namespace wormcast
