file(REMOVE_RECURSE
  "CMakeFiles/group_tables_test.dir/core/group_tables_test.cpp.o"
  "CMakeFiles/group_tables_test.dir/core/group_tables_test.cpp.o.d"
  "group_tables_test"
  "group_tables_test.pdb"
  "group_tables_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/group_tables_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
