// Fundamental scalar types shared by every wormcast module.
//
// The simulation clock counts *byte-times*: the time for one byte to cross
// one link. At Myrinet's 640 Mb/s a byte-time is 12.5 ns; all latencies in
// the paper's simulation section (and in ours) are reported in byte-times.
#pragma once

#include <cstdint>
#include <limits>

namespace wormcast {

/// Simulated time in byte-times (1 byte per link per byte-time).
using Time = std::int64_t;

/// Sentinel for "no time" / "never".
inline constexpr Time kTimeNever = std::numeric_limits<Time>::max();

/// Index of a node (switch or host) in a Topology.
using NodeId = std::int32_t;
inline constexpr NodeId kNoNode = -1;

/// Host identifier. Hosts are numbered independently of NodeId; the
/// low-to-high HostId ordering is what the deadlock-prevention rules of the
/// paper (Sections 4-6) are defined over.
using HostId = std::int32_t;
inline constexpr HostId kNoHost = -1;

/// Index of a (full-duplex) link in a Topology.
using LinkId = std::int32_t;
inline constexpr LinkId kNoLink = -1;

/// A port number on a switch or host (Myrinet source routes are sequences
/// of output-port bytes, so ports must fit in a byte).
using PortId = std::int16_t;
inline constexpr PortId kNoPort = -1;

/// Unique worm identifier (assigned at injection).
using WormId = std::uint64_t;

/// Multicast group identifier. The Myrinet implementation (Section 8.1)
/// uses an 8-bit space with 255 reserved for broadcast.
using GroupId = std::int32_t;
inline constexpr GroupId kNoGroup = -1;
inline constexpr GroupId kBroadcastGroup = 255;

}  // namespace wormcast
