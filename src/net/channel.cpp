#include "net/channel.h"

#include <cassert>

namespace wormcast {

void Channel::attach_feed(ByteFeed* feed) {
  assert(feed_ == nullptr && "channel already has a feed");
  feed_ = feed;
  kick();
}

void Channel::detach_feed() {
  assert(feed_ != nullptr);
  feed_ = nullptr;
}

void Channel::kick() {
  if (feed_ == nullptr || stopped_ || pump_scheduled_) return;
  schedule_pump();
}

void Channel::schedule_pump() {
  // Respect the one-byte-per-byte-time line rate.
  const Time when = std::max(sim_.now(), last_send_ + 1);
  pump_scheduled_ = true;
  sim_.at(when, [this] { pump(); });
}

void Channel::pump() {
  pump_scheduled_ = false;
  if (feed_ == nullptr || stopped_) return;
  if (!feed_->byte_available()) return;  // feed will kick() when ready

  const TxByte b = feed_->take_byte();
  last_send_ = sim_.now();
  ++bytes_sent_;
  in_flight_.push_back(InFlight{b.head, b.tail, b.worm, b.wire_len});
  sim_.after(delay_, [this] { deliver_front(); });

  if (b.tail) {
    ByteFeed* done = feed_;
    feed_ = nullptr;
    done->on_tail_sent();  // may attach a new feed (re-entrant safe)
  } else {
    schedule_pump();
  }
}

void Channel::deliver_front() {
  assert(!in_flight_.empty());
  const InFlight b = std::move(in_flight_.front());
  in_flight_.pop_front();
  sim_.note_progress(1);
  assert(sink_ != nullptr && "channel delivered into the void");
  if (b.head)
    sink_->on_head(b.worm, b.wire_len);
  else
    sink_->on_body(b.tail);
}

void Channel::signal_stop() {
  sim_.after(delay_, [this] {
    stopped_ = true;
  });
}

void Channel::signal_go() {
  sim_.after(delay_, [this] {
    stopped_ = false;
    kick();
  });
}

}  // namespace wormcast
