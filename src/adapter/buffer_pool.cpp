#include "adapter/buffer_pool.h"

namespace wormcast {

BufferPool::BufferPool(std::int64_t total_bytes, int n_classes) {
  if (n_classes < 1) throw std::invalid_argument("need >= 1 buffer class");
  if (total_bytes < n_classes)
    throw std::invalid_argument("pool too small for class count");
  const std::int64_t per = total_bytes / n_classes;
  capacity_.assign(static_cast<std::size_t>(n_classes), per);
  used_.assign(static_cast<std::size_t>(n_classes), 0);
}

BufferPool::BufferPool(std::int64_t total_bytes) : shared_(true) {
  capacity_.assign(1, total_bytes);
  used_.assign(1, 0);
}

BufferPool BufferPool::unpartitioned(std::int64_t total_bytes) {
  return BufferPool(total_bytes);
}

bool BufferPool::try_reserve(int cls, std::int64_t bytes) {
  const std::size_t i = index(cls);
  if (bytes < 0) throw std::invalid_argument("negative reservation");
  if (used_[i] + bytes > capacity_[i]) return false;
  used_[i] += bytes;
  return true;
}

void BufferPool::release(int cls, std::int64_t bytes) {
  const std::size_t i = index(cls);
  if (bytes < 0 || bytes > used_[i])
    throw std::logic_error("buffer release does not match reservations");
  used_[i] -= bytes;
}

std::int64_t BufferPool::total_used() const {
  std::int64_t total = 0;
  for (const std::int64_t u : used_) total += u;
  return total;
}

}  // namespace wormcast
