#include "harness/sweep_runner.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "sim/random.h"

namespace wormcast::harness {

std::uint64_t point_seed(std::uint64_t base_seed, std::uint64_t index) {
  return index == 0 ? base_seed : RandomStream::seed_mix(base_seed, index);
}

SweepRunner::SweepRunner(int jobs) : jobs_(jobs < 1 ? 1 : jobs) {}

std::vector<double> SweepRunner::run_indexed(
    std::size_t n, const std::function<void(std::size_t)>& fn) {
  std::vector<double> wall_ms(n, 0.0);
  if (n == 0) return wall_ms;

  std::atomic<std::size_t> cursor{0};
  std::mutex error_mu;
  std::exception_ptr first_error;

  auto worker = [&] {
    for (;;) {
      // On a thrown point, stop handing out work: the sweep is already
      // doomed, and finishing the backlog only delays the rethrow.
      {
        std::lock_guard<std::mutex> lock(error_mu);
        if (first_error) return;
      }
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      const auto t0 = std::chrono::steady_clock::now();
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        return;
      }
      wall_ms[i] = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    }
  };

  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(jobs_), n);
  if (workers <= 1) {
    worker();  // inline: exactly the sequential pre-parallel behavior
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }
  if (first_error) std::rethrow_exception(first_error);
  return wall_ms;
}

std::vector<RunningStat> SweepRunner::replicate(
    std::uint64_t base_seed, int reps,
    const std::function<std::vector<RunningStat>(std::uint64_t, int)>& fn) {
  if (reps < 1) reps = 1;
  std::vector<std::vector<RunningStat>> per_rep(
      static_cast<std::size_t>(reps));
  run_indexed(static_cast<std::size_t>(reps), [&](std::size_t r) {
    per_rep[r] = fn(point_seed(base_seed, r), static_cast<int>(r));
  });
  // Merge strictly in replication order: floating-point merge order is
  // part of the determinism contract.
  std::vector<RunningStat> merged = std::move(per_rep[0]);
  for (int r = 1; r < reps; ++r) {
    const auto& rep = per_rep[static_cast<std::size_t>(r)];
    for (std::size_t s = 0; s < merged.size() && s < rep.size(); ++s)
      merged[s].merge(rep[s]);
  }
  return merged;
}

}  // namespace wormcast::harness
