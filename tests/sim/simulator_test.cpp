#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace wormcast {
namespace {

TEST(Simulator, ClockAdvancesToEventTimes) {
  Simulator sim;
  std::vector<Time> seen;
  sim.at(5, [&] { seen.push_back(sim.now()); });
  sim.at(12, [&] { seen.push_back(sim.now()); });
  sim.run();
  EXPECT_EQ(seen, (std::vector<Time>{5, 12}));
  EXPECT_EQ(sim.now(), 12);
}

TEST(Simulator, AfterSchedulesRelativeToNow) {
  Simulator sim;
  Time fired_at = -1;
  sim.at(10, [&] { sim.after(7, [&] { fired_at = sim.now(); }); });
  sim.run();
  EXPECT_EQ(fired_at, 17);
}

TEST(Simulator, RunUntilStopsAtDeadlineAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.at(5, [&] { ++fired; });
  sim.at(50, [&] { ++fired; });
  sim.run_until(20);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 20);
  sim.run_until(60);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 60);
}

TEST(Simulator, StopHaltsDispatch) {
  Simulator sim;
  int fired = 0;
  sim.at(1, [&] {
    ++fired;
    sim.stop();
  });
  sim.at(2, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  sim.run();  // resume
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventsCanScheduleAtCurrentTime) {
  Simulator sim;
  std::vector<int> order;
  sim.at(5, [&] {
    order.push_back(1);
    sim.after(0, [&] { order.push_back(2); });
  });
  sim.at(5, [&] { order.push_back(3); });
  sim.run();
  // The zero-delay event fires after already-queued same-time events.
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(Simulator, ProgressCounterAccumulates) {
  Simulator sim;
  sim.note_progress(3);
  sim.note_progress();
  EXPECT_EQ(sim.progress(), 4);
}

TEST(Simulator, CancelledEventDoesNotFire) {
  Simulator sim;
  bool ran = false;
  auto h = sim.at(5, [&] { ran = true; });
  sim.cancel(h);
  sim.run();
  EXPECT_FALSE(ran);
}

}  // namespace
}  // namespace wormcast
