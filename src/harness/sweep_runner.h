// Parallel sweep execution: run independent simulation points across a
// fixed-size thread pool with deterministic, order-stable results.
//
// Every experiment in the paper is a *sweep* — Figure 12 walks packet
// sizes, the fault-recovery bench walks loss rates, the deadlock ablation
// walks burst intensities — and the points share nothing at runtime: each
// builds its own Network/Simulator/RandomStream. That independence is the
// classic "independent replications" parallelism of discrete-event studies
// (Fujimoto, CACM 1990): farm whole runs out to cores rather than trying
// to parallelize inside one run.
//
// Determinism contract:
//   * Point i's result lands in pre-sized slot i; output order never
//     depends on completion order or on the number of workers.
//   * Each point derives its own seed via point_seed(base, i), so the
//     simulation a point runs is a pure function of (config, base seed, i)
//     — bit-identical at --jobs 1 and --jobs 64 (CI gates on this).
//   * Replication merges (RunningStat::merge) are applied sequentially in
//     replication order after all workers finish, so floating-point
//     accumulation order is fixed too.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/stats.h"

namespace wormcast::harness {

/// Seed for sweep point `index`, derived from the experiment's base seed
/// (splitmix-style, via RandomStream::seed_mix). Index 0 keeps the base
/// seed itself so a one-point sweep reproduces the unswept experiment.
[[nodiscard]] std::uint64_t point_seed(std::uint64_t base_seed,
                                       std::uint64_t index);

class SweepRunner {
 public:
  /// `jobs` worker threads; clamped to >= 1. 1 means run inline on the
  /// calling thread (no pool, exactly the pre-parallel behavior).
  explicit SweepRunner(int jobs);

  [[nodiscard]] int jobs() const { return jobs_; }

  /// Executes fn(0), ..., fn(n-1) across the pool (an atomic cursor hands
  /// out indices; at most min(jobs, n) threads run at once). Blocks until
  /// every point finishes. Returns each point's wall-clock in milliseconds,
  /// indexed by point. The first exception a point throws is rethrown here
  /// after all workers have stopped.
  std::vector<double> run_indexed(std::size_t n,
                                  const std::function<void(std::size_t)>& fn);

  /// Typed convenience over run_indexed: collects fn's return values into
  /// pre-sized slots so results[i] is point i's result regardless of which
  /// worker ran it. R must be default-constructible.
  template <typename R>
  std::vector<R> map(std::size_t n,
                     const std::function<R(std::size_t)>& fn,
                     std::vector<double>* point_wall_ms = nullptr) {
    std::vector<R> results(n);
    auto walls = run_indexed(n, [&](std::size_t i) { results[i] = fn(i); });
    if (point_wall_ms != nullptr) *point_wall_ms = std::move(walls);
    return results;
  }

  /// Replication mode: runs `reps` independent replications of one
  /// experiment point, each seeded with point_seed(base_seed, rep), and
  /// merges the per-replication statistic vectors slot-wise with
  /// RunningStat::merge — in replication order, after all replications
  /// complete, so the merged moments are identical at any --jobs. `fn`
  /// must return the same number of stats for every replication.
  std::vector<RunningStat> replicate(
      std::uint64_t base_seed, int reps,
      const std::function<std::vector<RunningStat>(std::uint64_t seed,
                                                   int rep)>& fn);

 private:
  int jobs_ = 1;
};

/// Wall-clock stopwatch for sweep totals (what JsonBench::set_meta wants).
class WallTimer {
 public:
  WallTimer() : t0_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point t0_;
};

}  // namespace wormcast::harness
