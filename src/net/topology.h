// Static description of a wormhole LAN: switches, hosts, full-duplex links.
#pragma once

#include <cassert>
#include <string>
#include <vector>

#include "sim/types.h"

namespace wormcast {

enum class NodeKind : std::uint8_t { kSwitch, kHost };

/// Default link propagation delay in byte-times. A 25 m Myrinet cable is
/// ~125 ns of flight time, i.e. ~10 byte-times at 640 Mb/s; short machine-
/// room cables are faster. Experiments override this (Figure 11 uses 1000).
inline constexpr Time kDefaultLinkDelay = 5;

/// A node's attachment point. Port numbers index into the node's port list
/// and are what source routes are made of.
struct TopoPort {
  LinkId link = kNoLink;
};

struct TopoNode {
  NodeKind kind = NodeKind::kSwitch;
  HostId host = kNoHost;  // valid iff kind == kHost
  std::string name;
  std::vector<TopoPort> ports;
};

/// A full-duplex link between (node_a, port_a) and (node_b, port_b).
struct TopoLink {
  NodeId node_a = kNoNode;
  PortId port_a = kNoPort;
  NodeId node_b = kNoNode;
  PortId port_b = kNoPort;
  Time delay = kDefaultLinkDelay;
};

/// Immutable-after-construction network graph. Hosts must have exactly one
/// port (they hang off a switch, as in Myrinet); switches may have any
/// number of ports.
class Topology {
 public:
  NodeId add_switch(std::string name = {});
  NodeId add_host(std::string name = {});

  /// Connects two nodes with a full-duplex link; allocates the next free
  /// port on each side. Returns the link id.
  LinkId connect(NodeId a, NodeId b, Time delay = kDefaultLinkDelay);

  [[nodiscard]] int num_nodes() const { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] int num_links() const { return static_cast<int>(links_.size()); }
  [[nodiscard]] int num_hosts() const { return static_cast<int>(host_nodes_.size()); }
  [[nodiscard]] int num_switches() const { return num_nodes() - num_hosts(); }

  [[nodiscard]] const TopoNode& node(NodeId n) const { return nodes_[n]; }
  [[nodiscard]] const TopoLink& link(LinkId l) const { return links_[l]; }

  /// Node hosting the given HostId.
  [[nodiscard]] NodeId node_of_host(HostId h) const { return host_nodes_[h]; }
  /// The switch a host hangs off.
  [[nodiscard]] NodeId switch_of_host(HostId h) const;
  [[nodiscard]] std::vector<HostId> all_hosts() const;

  /// The node on the far side of `link` from `from`.
  [[nodiscard]] NodeId peer(LinkId l, NodeId from) const;
  /// The port of `from` that `link` plugs into.
  [[nodiscard]] PortId port_on(LinkId l, NodeId from) const;
  /// The node (and its port) reached by leaving `from` through `port`.
  [[nodiscard]] NodeId neighbor_via(NodeId from, PortId port) const;
  [[nodiscard]] LinkId link_at(NodeId from, PortId port) const {
    return nodes_[from].ports[static_cast<std::size_t>(port)].link;
  }

  /// Checks structural invariants (hosts single-ported and attached to
  /// switches, link endpoints consistent, graph connected). Throws
  /// std::logic_error on violation.
  void validate() const;

 private:
  std::vector<TopoNode> nodes_;
  std::vector<TopoLink> links_;
  std::vector<NodeId> host_nodes_;  // index = HostId
};

}  // namespace wormcast
