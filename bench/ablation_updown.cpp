// Ablation B: the cost of routing restrictions.
//
// Scheme (a) of Section 3 requires *every* worm to stay on the up/down
// spanning tree, giving up the crosslinks. The paper warns the available
// bandwidth is "much reduced". This bench measures unicast saturation:
// delivered throughput and latency with full up/down routing vs
// spanning-tree-only routing on an 8x8 torus.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "net/topologies.h"

using namespace wormcast;

namespace {

struct Point {
  double throughput = 0.0;  // delivered payload B/bt/host
  double latency = 0.0;
};

Point run_case(bool tree_only, double load, Time warmup, Time measure) {
  ExperimentConfig cfg;
  cfg.protocol.scheme = Scheme::kHamiltonianSF;
  cfg.traffic.offered_load = load;
  cfg.traffic.multicast_fraction = 0.0;  // pure unicast
  cfg.routing.tree_links_only = tree_only;
  Network net(make_torus(8, 8), {}, cfg);
  net.run(warmup, measure, /*drain_cap=*/0);
  const auto s = net.summary();
  return Point{s.throughput_per_host, s.unicast_latency_mean};
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const Time warmup = quick ? 10'000 : 30'000;
  const Time measure = quick ? 50'000 : 150'000;
  std::printf("# Ablation B: full up/down routing vs spanning-tree-only "
              "(scheme (a)'s restriction), unicast on 8x8 torus\n");
  bench::print_header("offered_load", {"updown_thr", "updown_lat",
                                       "tree_only_thr", "tree_only_lat"});
  const std::vector<double> loads =
      quick ? std::vector<double>{0.05, 0.15}
            : std::vector<double>{0.02, 0.05, 0.08, 0.11, 0.14, 0.17, 0.20};
  for (const double load : loads) {
    const Point full = run_case(false, load, warmup, measure);
    const Point tree = run_case(true, load, warmup, measure);
    std::printf("%.2f,%.4f,%.0f,%.4f,%.0f\n", load, full.throughput,
                full.latency, tree.throughput, tree.latency);
    std::fflush(stdout);
  }
  return 0;
}
