#include "sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace wormcast {

namespace {
// Typical experiments keep a few hundred in-flight events per host; one
// up-front reservation avoids the incremental heap regrowth entirely.
constexpr std::size_t kInitialCapacity = 1024;
}  // namespace

EventQueue::EventQueue() {
  heap_.reserve(kInitialCapacity);
  slots_.reserve(kInitialCapacity);
  free_slots_.reserve(kInitialCapacity);
}

std::uint32_t EventQueue::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot].live = true;
    return slot;
  }
  slots_.push_back(Slot{1, true});
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::retire_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.live = false;
  ++s.gen;  // invalidates every outstanding handle to this slot
  free_slots_.push_back(slot);
}

EventHandle EventQueue::schedule(Time when, Action action, bool late) {
  const std::uint32_t slot = acquire_slot();
  const std::uint32_t gen = slots_[slot].gen;
  heap_.push_back(Entry{when, next_seq_++, slot, gen, late, std::move(action)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_count_;
  peak_size_ = std::max(peak_size_, heap_.size());
  return EventHandle{slot, gen};
}

void EventQueue::cancel(EventHandle handle) {
  if (!handle.valid() || handle.slot_ >= slots_.size()) return;
  Slot& s = slots_[handle.slot_];
  if (!s.live || s.gen != handle.gen_) return;  // already fired or cancelled
  retire_slot(handle.slot_);
  --live_count_;
  ++cancelled_in_heap_;
  if (!heap_.empty() && !entry_live(heap_.front())) drop_dead_head();
  if (cancelled_in_heap_ * 2 > heap_.size()) compact();
}

void EventQueue::drop_dead_head() {
  while (!heap_.empty() && !entry_live(heap_.front())) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
    --cancelled_in_heap_;
  }
}

void EventQueue::compact() {
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(),
                             [this](const Entry& e) { return !entry_live(e); }),
              heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  cancelled_in_heap_ = 0;
}

EventQueue::Popped EventQueue::pop() {
  assert(!heap_.empty() && entry_live(heap_.front()) &&
         "pop() on empty EventQueue");
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry& back = heap_.back();
  Popped out{back.time, std::move(back.action)};
  retire_slot(back.slot);
  heap_.pop_back();
  --live_count_;
  drop_dead_head();  // restore the head-is-live invariant for next_time()
  return out;
}

}  // namespace wormcast
