// wormtrace: a flight-recorder tracing layer for the simulator.
//
// A `Tracer` is a fixed-capacity ring buffer of small POD `TraceEvent`
// records. Components call the WORMTRACE macro at decision points (STOP/GO
// transitions, arbitration grants, multicast scheme decisions, protocol
// timers); when tracing is disabled the macro costs one predicted branch,
// and with -DWORMCAST_TRACE_DISABLED (CMake -DWORMCAST_TRACE=OFF) it
// compiles out entirely — the burst-equivalence CI job builds that way to
// pin bit-for-bit results and the zero-overhead claim.
//
// The ring never allocates after enable(): a full ring overwrites the
// oldest events, so at any moment it holds the *last N* decisions — what
// the deadlock watchdog dumps when a run wedges, and what trace_export
// turns into Chrome trace-event JSON (Perfetto-viewable).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.h"

namespace wormcast {

/// Typed trace events. Grouped by the component that records them; the
/// group determines the export track (see trace_track_of).
enum class TraceEventType : std::uint8_t {
  // Channel (track: the transmitter end, "chan <node>.<port>").
  kChanStop,      // STOP took effect at the transmitter
  kChanGo,        // GO took effect at the transmitter
  kChanHead,      // worm head byte committed; arg = wire_len
  kChanTail,      // worm tail byte committed (span close for kChanHead)
  kChanBurst,     // burst commit; arg = bytes in the run
  kChanSwallow,   // fault classification swallowed this worm's bytes

  // Switch output port (track: "sw <node>.out<port>").
  kArbGrant,        // arbitration winner; arg = winning input port
  kMcastHold,       // branch waiting to claim a busy port (hold decision)
  kMcastFragOpen,   // branch fragment opened on this port
  kMcastFragClose,  // branch fragment closed / released; arg = 1 if final
  kMcastIdleFlush,  // scheme (c): blocked unicast flushed; arg = worm src

  // Switch input port (track: "sw <node>.in<port>").
  kMcastStart,      // replication connection opened; arg = branch count
  kMcastInterrupt,  // scheme (b): open branches told to end their fragments
  kMcastFinish,     // replication connection complete (span close)

  // Host adapter (track: "adapter h<host>").
  kAdpTxStart,      // worm transmission began; arg = wire_len
  kAdpTxDone,       // worm fully transmitted (span close)
  kAdpRxHead,       // reception began; arg = wire_len
  kAdpRxDone,       // reception ended (span close); arg = payload bytes
  kAdpRxDrop,       // worm dropped at the head; arg = 1 fault, 0 client
  kAdpRxTruncated,  // reception ended short (fault-injected kill)

  // Host protocol (track: "host h<host>").
  kProtoReserve,     // buffer reservation succeeded; arg = bytes
  kProtoAckSent,     // ACK control worm queued
  kProtoNackSent,    // NACK control worm queued (reservation refused)
  kProtoAckTimeout,  // ACK timer fired un-ACKed; arg = successor host
  kProtoRetransmit,  // backoff elapsed, copy re-sent; arg = successor host
  kProtoSendFailed,  // max_attempts exhausted; arg = successor host
  kProtoDuplicate,   // duplicate copy suppressed (re-ACKed)
  kProtoSuspect,     // failure detector accused a peer; arg = suspect
  kProtoProbe,       // liveness probe queued; arg = target host
  kProtoRepair,      // peer declared dead, structures repaired; arg = peer
  kProtoDeliver,     // payload handed to the application; arg = origin host
  kProtoRelease,     // forwarding reservation returned; arg = bytes freed
  kProtoCrash,       // this host crash-stopped (silent to its peers)

  // Membership churn (track: "host h<host>"; arg = group id unless noted).
  kProtoJoinRequest,  // join submitted to the membership coordinator
  kProtoJoinApplied,  // join spliced into the group structures
  kProtoJoinShed,     // join shed under overload (retry may follow)
  kProtoLeave,        // voluntary departure applied (clean, not a failure)
  kProtoRejoin,       // join recognized as a rejoin of a former member
  kProtoDedupReset,   // rejoin epoch: the group's dedup window was reset
};

/// Export track families (one Perfetto thread per (track, node, port)).
enum class TraceTrack : std::uint8_t {
  kChannel,
  kSwitchOut,
  kSwitchIn,
  kAdapter,
  kHost,
};

[[nodiscard]] const char* trace_event_name(TraceEventType type);
[[nodiscard]] TraceTrack trace_track_of(TraceEventType type);

/// One recorded decision. POD, fixed size: recording is a store, never an
/// allocation.
struct TraceEvent {
  Time t = 0;                 // byte-time of the decision
  std::uint64_t worm = 0;     // worm/message id, 0 when not applicable
  std::int64_t arg = 0;       // type-specific detail (see the enum)
  TraceEventType type = TraceEventType::kChanStop;
  std::int32_t node = -1;     // switch node / host id (track identity)
  std::int32_t port = -1;     // port id, -1 for per-host tracks
};

/// The flight recorder: last-N ring of TraceEvents, runtime-enabled.
class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

  /// Allocates the ring (rounded up to a power of two) and starts
  /// recording. Re-enabling with a different capacity discards the ring.
  void enable(std::size_t capacity = kDefaultCapacity);
  void disable() { enabled_ = false; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Hot path: one store into the ring. Caller must check enabled().
  void record(Time t, TraceEventType type, std::int32_t node,
              std::int32_t port, std::uint64_t worm, std::int64_t arg) {
    TraceEvent& e = ring_[static_cast<std::size_t>(total_) & mask_];
    e.t = t;
    e.worm = worm;
    e.arg = arg;
    e.type = type;
    e.node = node;
    e.port = port;
    ++total_;
  }

  /// Events recorded since enable() (including ones the ring overwrote).
  [[nodiscard]] std::int64_t recorded() const { return total_; }
  /// Events lost to ring wrap-around.
  [[nodiscard]] std::int64_t dropped() const {
    const auto cap = static_cast<std::int64_t>(ring_.size());
    return total_ > cap ? total_ - cap : 0;
  }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }

  /// The last min(last_n, recorded, capacity) events, oldest first.
  [[nodiscard]] std::vector<TraceEvent> snapshot(
      std::size_t last_n = kDefaultCapacity * 16) const;

 private:
  bool enabled_ = false;
  std::size_t mask_ = 0;
  std::int64_t total_ = 0;
  std::vector<TraceEvent> ring_;
};

}  // namespace wormcast

// The instrumentation macro. `sim` is a Simulator&; arguments after `type`
// are (node, port, worm_id, arg) and are NOT evaluated unless tracing is
// both compiled in and runtime-enabled.
#if !defined(WORMCAST_TRACE_DISABLED)
#define WORMTRACE(sim, type, node, port, worm, arg)                       \
  do {                                                                    \
    ::wormcast::Tracer& wormtrace_tr_ = (sim).tracer();                   \
    if (wormtrace_tr_.enabled())                                          \
      wormtrace_tr_.record((sim).now(), ::wormcast::TraceEventType::type, \
                           static_cast<std::int32_t>(node),               \
                           static_cast<std::int32_t>(port),               \
                           static_cast<std::uint64_t>(worm),              \
                           static_cast<std::int64_t>(arg));               \
  } while (0)
#else
#define WORMTRACE(sim, type, node, port, worm, arg) \
  do {                                              \
  } while (0)
#endif
