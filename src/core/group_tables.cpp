#include "core/group_tables.h"

#include <algorithm>
#include <stdexcept>

namespace wormcast {

CircuitTable::CircuitTable(std::vector<HostId> members)
    : order_(std::move(members)) {
  if (order_.empty()) throw std::invalid_argument("empty multicast group");
  std::sort(order_.begin(), order_.end());
  if (std::adjacent_find(order_.begin(), order_.end()) != order_.end())
    throw std::invalid_argument("duplicate member in multicast group");
}

bool CircuitTable::contains(HostId h) const {
  return std::binary_search(order_.begin(), order_.end(), h);
}

HostId CircuitTable::next(HostId h) const {
  const auto it = std::lower_bound(order_.begin(), order_.end(), h);
  if (it == order_.end() || *it != h)
    throw std::invalid_argument("host not in group");
  const auto next_it = it + 1;
  return next_it == order_.end() ? order_.front() : *next_it;
}

HostId CircuitTable::successor_of(HostId h) const {
  const auto it = std::upper_bound(order_.begin(), order_.end(), h);
  return it == order_.end() ? order_.front() : *it;
}

bool CircuitTable::remove(HostId h) {
  const auto it = std::lower_bound(order_.begin(), order_.end(), h);
  if (it == order_.end() || *it != h) return false;
  if (order_.size() == 1)
    throw std::logic_error("cannot splice the last circuit member");
  order_.erase(it);  // sorted order (and hence the one wrap reversal) survives
  return true;
}

HostId CircuitTable::insert(HostId h) {
  const auto it = std::lower_bound(order_.begin(), order_.end(), h);
  if (it != order_.end() && *it == h) return kNoHost;
  const auto idx = static_cast<std::size_t>(it - order_.begin());
  order_.insert(it, h);
  // Predecessor on the circuit: the element before the insertion point,
  // wrapping to the (new) highest when the joiner became the lowest.
  return idx == 0 ? order_.back() : order_[idx - 1];
}

int CircuitTable::circuit_hop_length(const UpDownRouting& routing) const {
  if (order_.size() < 2) return 0;
  int total = 0;
  for (std::size_t i = 0; i < order_.size(); ++i) {
    const HostId from = order_[i];
    const HostId to = order_[(i + 1) % order_.size()];
    total += routing.hop_count(from, to);
  }
  return total;
}

namespace {

TreeTable::EdgeCost hop_cost(const UpDownRouting& routing) {
  return [&routing](HostId parent, HostId child) {
    return routing.hop_count(parent, child);
  };
}

}  // namespace

TreeTable::TreeTable(std::vector<HostId> members, const EdgeCost& cost,
                     int max_fanout)
    : members_(std::move(members)) {
  if (members_.empty()) throw std::invalid_argument("empty multicast group");
  std::sort(members_.begin(), members_.end());
  if (std::adjacent_find(members_.begin(), members_.end()) != members_.end())
    throw std::invalid_argument("duplicate member in multicast group");
  root_ = members_.front();
  parent_[root_] = kNoHost;
  children_[root_] = {};
  for (std::size_t i = 1; i < members_.size(); ++i) {
    const HostId m = members_[i];
    HostId best = kNoHost;
    int best_cost = 0;
    for (std::size_t j = 0; j < i; ++j) {
      const HostId candidate = members_[j];
      if (max_fanout > 0 &&
          static_cast<int>(children_[candidate].size()) >= max_fanout)
        continue;
      const int c = cost(candidate, m);
      if (best == kNoHost || c < best_cost) {
        best = candidate;
        best_cost = c;
      }
    }
    if (best == kNoHost)
      throw std::logic_error("tree fanout cap leaves no eligible parent");
    parent_[m] = best;
    children_[best].push_back(m);
    children_[m] = {};
  }
  // Children naturally accumulate in ascending ID order (insertion order).
}

TreeTable::TreeTable(std::vector<HostId> members, const UpDownRouting& routing,
                     int max_fanout)
    : TreeTable(std::move(members), hop_cost(routing), max_fanout) {}

bool TreeTable::contains(HostId h) const {
  return std::binary_search(members_.begin(), members_.end(), h);
}

HostId TreeTable::parent(HostId h) const {
  const auto it = parent_.find(h);
  if (it == parent_.end()) throw std::invalid_argument("host not in group");
  return it->second;
}

const std::vector<HostId>& TreeTable::children(HostId h) const {
  const auto it = children_.find(h);
  if (it == children_.end()) throw std::invalid_argument("host not in group");
  return it->second;
}

TreeTable::RemovalResult TreeTable::remove_member(HostId h,
                                                  const UpDownRouting& routing,
                                                  int max_fanout) {
  return remove_member(h, hop_cost(routing), max_fanout);
}

TreeTable::RemovalResult TreeTable::remove_member(HostId h,
                                                  const EdgeCost& cost,
                                                  int max_fanout) {
  RemovalResult result;
  const auto it = std::lower_bound(members_.begin(), members_.end(), h);
  if (it == members_.end() || *it != h) return result;
  if (members_.size() == 1)
    throw std::logic_error("cannot remove the last tree member");
  result.removed = true;
  members_.erase(it);

  std::vector<HostId> orphans = children_[h];
  children_.erase(h);
  if (h == root_) {
    // The new root is the lowest surviving ID. Its old parent had an even
    // lower ID, and only the dead root qualified — so the new root is
    // always a direct child of the dead root and already orphaned.
    root_ = members_.front();
    parent_[root_] = kNoHost;
    orphans.erase(std::find(orphans.begin(), orphans.end(), root_));
    result.root_promoted = true;
  } else {
    // Detach the dead node from its parent's child list.
    std::vector<HostId>& siblings = children_[parent_.at(h)];
    siblings.erase(std::find(siblings.begin(), siblings.end(), h));
  }
  parent_.erase(h);

  // Re-attach each orphaned subtree at its (surviving) root: greedy
  // min-hop parent among lower-ID members with fanout slack, exactly the
  // construction rule, so parent < child keeps holding.
  for (const HostId o : orphans) {
    HostId best = kNoHost;
    int best_cost = 0;
    for (bool relax_cap : {false, true}) {
      for (const HostId candidate : members_) {
        if (candidate >= o) break;  // members_ ascending; need parent < child
        if (!relax_cap && max_fanout > 0 &&
            static_cast<int>(children_[candidate].size()) >= max_fanout)
          continue;
        const int c = cost(candidate, o);
        if (best == kNoHost || c < best_cost) {
          best = candidate;
          best_cost = c;
        }
      }
      if (best != kNoHost) break;  // cap relaxed only when every slot is full
    }
    parent_[o] = best;
    std::vector<HostId>& kids = children_[best];
    kids.insert(std::lower_bound(kids.begin(), kids.end(), o), o);
    result.reattached.emplace_back(o, best);
    ++result.subtrees_reparented;
  }
  return result;
}

TreeTable::AddResult TreeTable::add_member(HostId h,
                                           const UpDownRouting& routing,
                                           int max_fanout) {
  return add_member(h, hop_cost(routing), max_fanout);
}

TreeTable::AddResult TreeTable::add_member(HostId h, const EdgeCost& cost,
                                           int max_fanout) {
  AddResult result;
  const auto it = std::lower_bound(members_.begin(), members_.end(), h);
  if (it != members_.end() && *it == h) return result;
  members_.insert(it, h);
  result.added = true;
  children_[h] = {};
  if (h < root_) {
    // New-root adoption: the joiner takes the root slot and the old root
    // becomes its only child. Every existing parent/child edge survives,
    // so in-flight relays through the old root still reach its subtree.
    parent_[h] = kNoHost;
    parent_[root_] = h;
    children_[h].push_back(root_);
    root_ = h;
    result.became_root = true;
    return result;
  }
  // Greedy construction rule: min-hop lower-ID parent with fanout slack;
  // the cap is relaxed only when every candidate is full.
  HostId best = kNoHost;
  int best_cost = 0;
  for (bool relax_cap : {false, true}) {
    for (const HostId candidate : members_) {
      if (candidate >= h) break;  // members_ ascending; need parent < child
      if (!relax_cap && max_fanout > 0 &&
          static_cast<int>(children_[candidate].size()) >= max_fanout)
        continue;
      const int c = cost(candidate, h);
      if (best == kNoHost || c < best_cost) {
        best = candidate;
        best_cost = c;
      }
    }
    if (best != kNoHost) break;
  }
  parent_[h] = best;
  std::vector<HostId>& kids = children_[best];
  kids.insert(std::lower_bound(kids.begin(), kids.end(), h), h);
  result.parent = best;
  return result;
}

int TreeTable::depth() const {
  int max_depth = 0;
  for (const HostId m : members_) {
    int d = 0;
    for (HostId n = m; n != root_; n = parent_.at(n)) ++d;
    max_depth = std::max(max_depth, d);
  }
  return max_depth;
}

GroupTables::GroupTables(const std::vector<MulticastGroupSpec>& specs,
                         const UpDownRouting& routing, int max_tree_fanout,
                         const TreeStrategy* strategy)
    : routing_(routing), max_tree_fanout_(max_tree_fanout),
      strategy_(strategy) {
  for (const MulticastGroupSpec& spec : specs) {
    circuits_.emplace(spec.id, CircuitTable(spec.members));
    trees_.emplace(spec.id, TreeTable(spec.members, edge_cost(spec.id),
                                      max_tree_fanout));
  }
}

TreeTable::EdgeCost GroupTables::edge_cost(GroupId g) const {
  if (strategy_ == nullptr) {
    return [this](HostId parent, HostId child) {
      return routing_.hop_count(parent, child);
    };
  }
  return [this, g](HostId parent, HostId child) {
    return strategy_->attach_cost(g, parent, child);
  };
}

std::vector<GroupId> GroupTables::groups_containing(HostId h) const {
  std::vector<GroupId> out;
  for (const auto& [g, circuit] : circuits_)
    if (circuit.contains(h)) out.push_back(g);
  std::sort(out.begin(), out.end());
  return out;
}

GroupTables::RepairStats GroupTables::remove_member(HostId h) {
  RepairStats stats;
  for (auto& [g, circuit] : circuits_) {
    if (!circuit.contains(h)) continue;
    const RepairStats one = remove_member_from(g, h);
    stats.circuits_spliced += one.circuits_spliced;
    stats.subtrees_reparented += one.subtrees_reparented;
    stats.roots_promoted += one.roots_promoted;
    stats.reattachments.insert(stats.reattachments.end(),
                               one.reattachments.begin(),
                               one.reattachments.end());
  }
  return stats;
}

GroupTables::RepairStats GroupTables::remove_member_from(GroupId g, HostId h) {
  RepairStats stats;
  auto it = circuits_.find(g);
  if (it == circuits_.end()) throw std::invalid_argument("unknown group");
  CircuitTable& circuit = it->second;
  if (!circuit.contains(h)) return stats;
  if (circuit.size() == 1) return stats;  // sole member: nothing left to heal
  circuit.remove(h);
  ++stats.circuits_spliced;
  const TreeTable::RemovalResult r =
      trees_.at(g).remove_member(h, edge_cost(g), max_tree_fanout_);
  stats.subtrees_reparented += r.subtrees_reparented;
  if (r.root_promoted) ++stats.roots_promoted;
  for (const auto& [orphan, parent] : r.reattached)
    stats.reattachments.push_back({g, orphan, parent});
  return stats;
}

GroupTables::JoinResult GroupTables::add_member(GroupId g, HostId h) {
  JoinResult result;
  auto it = circuits_.find(g);
  if (it == circuits_.end()) throw std::invalid_argument("unknown group");
  CircuitTable& circuit = it->second;
  if (circuit.contains(h)) return result;
  result.joined = true;
  result.circuit_pred = circuit.insert(h);
  const TreeTable::AddResult a =
      trees_.at(g).add_member(h, edge_cost(g), max_tree_fanout_);
  result.became_root = a.became_root;
  result.tree_parent = a.parent;
  return result;
}

const CircuitTable& GroupTables::circuit(GroupId g) const {
  const auto it = circuits_.find(g);
  if (it == circuits_.end()) throw std::invalid_argument("unknown group");
  return it->second;
}

const TreeTable& GroupTables::tree(GroupId g) const {
  const auto it = trees_.find(g);
  if (it == trees_.end()) throw std::invalid_argument("unknown group");
  return it->second;
}

bool GroupTables::is_member(GroupId g, HostId h) const {
  return circuit(g).contains(h);
}

int GroupTables::group_size(GroupId g) const { return circuit(g).size(); }

}  // namespace wormcast
