file(REMOVE_RECURSE
  "libwormcast_sim.a"
)
