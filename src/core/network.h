// Facade: builds a complete simulated wormhole LAN — fabric, up/down
// routing, host adapters, multicast protocol engines, traffic — and runs
// experiments over it. This is the top-level public API; the examples and
// benches are written against it.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "adapter/host_adapter.h"
#include "check/wormcheck.h"
#include "core/group_tables.h"
#include "core/host_protocol.h"
#include "core/metrics.h"
#include "core/protocol_config.h"
#include "net/fabric.h"
#include "net/switch_mcast_engine.h"
#include "net/topology.h"
#include "net/updown.h"
#include "sim/counters.h"
#include "sim/fault_injector.h"
#include "sim/simulator.h"
#include "sim/watchdog.h"
#include "traffic/generator.h"
#include "traffic/groups.h"

namespace wormcast {

struct ExperimentConfig {
  FabricConfig fabric;
  AdapterConfig adapter;
  ProtocolConfig protocol;
  TrafficConfig traffic;
  UpDownOptions routing;
  SwitchMcastConfig switch_mcast;
  /// Injected faults (all rates 0 = the lossless fabric). Pair nonzero
  /// rates with protocol.ack_timeout so senders can actually recover.
  FaultConfig faults;
  std::uint64_t seed = 1;
};

class Network {
 public:
  /// Builds the runtime network. `groups` lists the multicast groups
  /// (see traffic/groups.h for generators).
  Network(Topology topo, std::vector<MulticastGroupSpec> groups,
          ExperimentConfig config = ExperimentConfig());
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;
  ~Network();

  /// Runs a traffic-driven experiment: generate for `warmup + measure`
  /// byte-times, record samples only for messages created after `warmup`,
  /// then drain in-flight messages for up to `drain_cap` further byte-times.
  void run(Time warmup, Time measure, Time drain_cap = 500'000);

  /// Injects one application demand directly (tests and examples).
  void inject(const Demand& demand);

  /// Sends a *switch-level* multicast (Section 3): the fabric replicates
  /// the worm along a tree encoded in its header; routes are restricted to
  /// the up/down spanning tree. Returns the message context for metrics.
  std::shared_ptr<MessageContext> send_switch_multicast(HostId src, GroupId group,
                                                        std::int64_t payload);

  /// Sends a *switch-level* broadcast (Section 3, last paragraph): the
  /// worm climbs to the up/down root and floods the spanning tree's down
  /// links; every other host receives one copy.
  std::shared_ptr<MessageContext> send_switch_broadcast(HostId src,
                                                        std::int64_t payload);

  [[nodiscard]] SwitchMcastEngine& switch_mcast_engine() { return *mcast_engine_; }

  /// Advances the simulation (tests and examples drive this directly).
  void run_until(Time deadline) { sim_.run_until(deadline); }
  void run_to_quiescence() { sim_.run(); }

  [[nodiscard]] Simulator& sim() { return sim_; }
  [[nodiscard]] const Topology& topology() const { return topo_; }
  [[nodiscard]] Fabric& fabric() { return *fabric_; }
  [[nodiscard]] const UpDownRouting& routing() const { return *routing_; }
  [[nodiscard]] const GroupTables& tables() const { return *tables_; }
  [[nodiscard]] Metrics& metrics() { return metrics_; }
  [[nodiscard]] int num_hosts() const { return topo_.num_hosts(); }
  [[nodiscard]] HostAdapter& adapter(HostId h) { return *adapters_[h]; }
  [[nodiscard]] HostProtocol& protocol(HostId h) { return *protocols_[h]; }
  /// The experiment's fault injector (always present; unarmed when no
  /// faults are configured). Tests use it to force deterministic faults or
  /// schedule link outages before/while running.
  [[nodiscard]] FaultInjector& faults() { return *faults_; }

  // --- permanent faults -----------------------------------------------

  /// Schedules a crash-stop failure of host `h` at `when`: queued
  /// transmissions vanish (the worm mid-DMA finishes), every buffer is
  /// released, and the host never sends or accepts another byte. The crash
  /// is *silent* — survivors must detect it through ACK/probe suspicion
  /// and then repair the group structures around it.
  void crash_host(HostId h, Time when);

  /// Schedules the permanent death of link `l` at `when`: both directed
  /// channels swallow traffic forever and the up/down routing recomputes
  /// (tolerating a partitioned residue), invalidating every cached route
  /// so retransmissions travel the healed paths.
  void fail_link(LinkId l, Time when);

  /// Declares `dead` crashed and repairs every shared structure around it:
  /// abandons/shrinks affected message accounting, splices `dead` out of
  /// each group circuit, re-parents orphaned tree subtrees, then lets each
  /// surviving protocol retarget its in-flight sends. Idempotent; invoked
  /// automatically by the failure detector, callable directly by tests.
  void declare_host_dead(HostId dead);

  /// Cumulative structure-repair counts from declare_host_dead.
  [[nodiscard]] const GroupTables::RepairStats& repair_stats() const {
    return repair_stats_;
  }
  [[nodiscard]] bool host_removed(HostId h) const {
    return removed_hosts_.count(h) > 0;
  }

  /// One-line-per-host dump of recovery-relevant state (active tasks, pool
  /// bytes held, un-ACKed sends, adapter queue depths) — what the deadlock
  /// watchdog prints when a faulted run stalls.
  [[nodiscard]] std::string debug_report() const;

  /// Arms a deadlock watchdog over this network: if `interval` byte-times
  /// pass with messages outstanding but no byte moving, it captures
  /// debug_report() (echoed to stderr) so a hung run explains itself.
  /// Returns the watchdog for inspection; lives as long as the Network.
  DeadlockWatchdog& attach_watchdog(Time interval);

  // --- observability (wormtrace) --------------------------------------

  /// Turns on the flight recorder: every instrumented component starts
  /// appending to a ring of `capacity` events (oldest overwritten first).
  void enable_tracing(std::size_t capacity = Tracer::kDefaultCapacity) {
    sim_.tracer().enable(capacity);
  }

  /// Writes the recorded events as Chrome trace-event JSON (load the file
  /// at ui.perfetto.dev; 1 simulated byte-time is rendered as 1 us).
  [[nodiscard]] bool write_trace(const std::string& path) const;

  /// Registers every network-wide counter (protocol metrics, fabric byte
  /// totals, switch-multicast engine decisions, simulator event stats,
  /// tracer occupancy) so benches serialize them uniformly.
  void register_counters(CounterRegistry& reg) const;

  /// Post-run protocol expectation checking (wormcheck): replays the
  /// flight-recorder ring through the standard rule pack derived from this
  /// experiment's protocol and switch-multicast configuration, and returns
  /// the violation report. Refuses loudly — `usable == false`, never a
  /// silent pass — when tracing was off or the ring wrapped (a wrapped
  /// ring lost events, so "no violation found" would be meaningless);
  /// raise enable_tracing's capacity until dropped() stays 0 to check
  /// longer runs.
  [[nodiscard]] check::CheckReport check_expectations() const;

  /// Aggregate results of the last run.
  struct Summary {
    double offered_load = 0.0;             // generation-rate knob
    double measured_utilization = 0.0;     // per-host output-link utilization
                                           // over the window (paper's x-axis)
    double mcast_latency_mean = 0.0;       // per-destination (Figures 10/11)
    double mcast_latency_p95 = 0.0;
    double mcast_completion_mean = 0.0;    // whole-group
    double unicast_latency_mean = 0.0;
    // Sample counts behind the latency aggregates: a mean/percentile with a
    // zero count is not a measurement, and emitters must say null, not 0.
    std::int64_t mcast_samples = 0;
    std::int64_t mcast_completion_samples = 0;
    std::int64_t unicast_samples = 0;
    double throughput_per_host = 0.0;      // delivered payload B / bt / host
    std::int64_t messages = 0;
    std::int64_t drops = 0;
    std::int64_t nacks = 0;
    std::int64_t retransmits = 0;
    std::int64_t outstanding = 0;          // undelivered at end (stall sign)
    Time oldest_outstanding_age = 0;
    std::int64_t fabric_overflows = 0;     // must be 0
    // Fault-injection experiments.
    std::int64_t faults_injected = 0;      // kills + ctrl/rx drops + outages
    std::int64_t bytes_swallowed = 0;      // channel bytes lost to faults
                                           // (never counted as delivered)
    std::int64_t ack_timeouts = 0;
    std::int64_t duplicates_suppressed = 0;
    std::int64_t deliveries_failed = 0;    // sends abandoned (max_attempts)
    std::int64_t messages_completed = 0;
    // Permanent failures & repair.
    std::int64_t suspicions = 0;           // failure-detector accusations
    std::int64_t hosts_crashed = 0;        // crash-stop faults injected
    std::int64_t hosts_removed = 0;        // declared dead + repaired around
    std::int64_t links_failed = 0;         // permanent link deaths
    std::int64_t sends_rerouted = 0;       // sends retargeted by repair
    std::int64_t messages_disrupted = 0;   // abandoned at repair time
    std::int64_t unicasts_flushed = 0;     // scheme (c) switch-side flushes
    Time last_repair_time = 0;
  };
  [[nodiscard]] Summary summary() const;

 private:
  Topology topo_;
  std::vector<MulticastGroupSpec> groups_;
  ExperimentConfig config_;
  Simulator sim_;
  Metrics metrics_;
  std::unique_ptr<Fabric> fabric_;
  std::unique_ptr<FaultInjector> faults_;
  std::unique_ptr<UpDownRouting> routing_;
  std::unique_ptr<UpDownRouting> tree_routing_;  // spanning-tree-only paths
  std::unique_ptr<SwitchMcastEngine> mcast_engine_;
  std::unique_ptr<GroupTables> tables_;
  std::vector<std::unique_ptr<HostAdapter>> adapters_;
  std::vector<std::unique_ptr<HostProtocol>> protocols_;
  std::unique_ptr<TrafficGenerator> traffic_;
  std::unique_ptr<DeadlockWatchdog> watchdog_;
  std::unordered_set<HostId> removed_hosts_;
  GroupTables::RepairStats repair_stats_;
  Time measure_span_ = 0;
  std::int64_t egress_at_window_start_ = 0;
  std::int64_t egress_at_window_end_ = 0;
};

}  // namespace wormcast
