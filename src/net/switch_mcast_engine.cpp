#include "net/switch_mcast_engine.h"

#include <cassert>

#include "net/channel.h"
#include "net/switch_rt.h"
#include "sim/trace.h"

namespace wormcast {

/// Pulls bytes for one branch of a connection.
class SwitchMcastEngine::BranchFeed final : public ByteFeed {
 public:
  BranchFeed(SwitchMcastEngine& engine, Conn& conn, std::size_t idx)
      : engine_(engine), conn_(conn), idx_(idx) {}

  [[nodiscard]] bool byte_available() const override {
    return engine_.branch_byte_available(conn_, idx_);
  }
  TxByte take_byte() override { return engine_.branch_take(conn_, idx_); }
  void on_tail_sent() override { engine_.branch_tail_sent(conn_, idx_); }

 private:
  SwitchMcastEngine& engine_;
  Conn& conn_;
  std::size_t idx_;
};

struct SwitchMcastEngine::Branch {
  PortId port = kNoPort;
  std::vector<std::uint8_t> prefix;  // re-sent at the start of each fragment
  bool to_host = false;              // the port leads to a host adapter
  WormPtr frag_worm;                 // current fragment's worm object
  std::int64_t body_taken = 0;       // cumulative body bytes sent
  std::int64_t frag_prefix_sent = 0;
  std::int64_t frag_sent = 0;        // bytes sent in the current fragment
  bool holding_port = false;
  bool open = false;     // fragment in progress
  bool closing = false;  // next byte is the synthetic fragment trailer
  bool claim_pending = false;
  bool done = false;
  std::unique_ptr<BranchFeed> feed;
};

struct SwitchMcastEngine::Conn {
  SwitchRt* sw = nullptr;
  InPort* in = nullptr;
  WormPtr worm;
  bool flood = false;
  std::int64_t in_wire = 0;          // declared (advisory for fragments)
  std::int64_t encoding_len = 0;     // route prefix bytes on the input
  std::int64_t prefix_consumed = 1;  // do_route consumed the first byte
  std::int64_t body_consumed = 0;    // input bytes released to GO signalling
  std::vector<Branch> branches;
  bool check_scheduled = false;

  /// Body bytes that have arrived so far on the input.
  [[nodiscard]] std::int64_t body_arrived() const {
    return std::max<std::int64_t>(0, in->front_received() - encoding_len);
  }
  /// True once the input tail arrived: body_arrived() is then final.
  [[nodiscard]] bool body_final() const { return in->front_tail_seen(); }
};

SwitchMcastEngine::SwitchMcastEngine(Simulator& sim, const Topology& topo,
                                     const UpDownRouting& routing,
                                     SwitchMcastConfig config)
    : sim_(sim), topo_(topo), routing_(routing), config_(config) {}

SwitchMcastEngine::~SwitchMcastEngine() = default;

void SwitchMcastEngine::start(InPort& in) {
  auto conn = std::make_unique<Conn>();
  Conn& c = *conn;
  c.in = &in;
  c.worm = in.front_worm();
  c.in_wire = in.front_wire_len();
  c.flood = c.worm->broadcast_flood;
  ++connections_;

  c.sw = &in.owner();

  if (c.flood) {
    c.encoding_len = 1;  // the broadcast marker byte
    for (const PortId p : routing_.down_tree_ports(c.sw->node())) {
      Branch b;
      b.port = p;
      const NodeId peer = topo_.neighbor_via(c.sw->node(), p);
      b.to_host = topo_.node(peer).kind == NodeKind::kHost;
      // Switch-bound copies regenerate the broadcast marker so the worm
      // does not shrink as it floods; host-bound copies carry body only.
      if (!b.to_host) b.prefix.push_back(0);  // marker placeholder byte
      c.branches.push_back(std::move(b));
    }
  } else {
    c.encoding_len = static_cast<std::int64_t>(c.worm->mcast_route.size_bytes());
    for (const McastBranch& br : c.worm->mcast_route.split()) {
      Branch b;
      b.port = br.port;
      b.prefix = br.subroute.bytes();
      const NodeId peer = topo_.neighbor_via(c.sw->node(), b.port);
      b.to_host = topo_.node(peer).kind == NodeKind::kHost;
      assert((b.to_host == b.prefix.empty()) &&
             "leaf branches must carry empty subroutes");
      c.branches.push_back(std::move(b));
    }
  }
  assert(!c.branches.empty() && "multicast with no branches");

  Conn* raw = conn.get();
  conns_.emplace(&in, std::move(conn));
  WORMTRACE(sim_, kMcastStart, c.sw->node(), in.port(), c.worm->id,
            c.branches.size());
  consume_prefix(*raw);
  for (std::size_t i = 0; i < raw->branches.size(); ++i) open_fragment(*raw, i);
  if (config_.scheme == SwitchMcastScheme::kInterrupt &&
      !raw->check_scheduled) {
    raw->check_scheduled = true;
    InPort* key = &in;
    sim_.after(config_.interrupt_check, [this, key] { periodic_check(key); });
  }
}

void SwitchMcastEngine::on_input_bytes(InPort& in) {
  const auto it = conns_.find(&in);
  if (it == conns_.end()) return;
  Conn& c = *it->second;
  consume_prefix(c);
  kick_all(c);
}

void SwitchMcastEngine::consume_prefix(Conn& c) {
  // Encoding bytes are consumed as they arrive (parsed by the switch).
  while (c.prefix_consumed < c.encoding_len &&
         c.prefix_consumed < c.in->front_received()) {
    c.in->mcast_consume();
    ++c.prefix_consumed;
  }
}

void SwitchMcastEngine::open_fragment(Conn& c, std::size_t idx) {
  Branch& b = c.branches[idx];
  assert(!b.open && !b.done);
  if (b.claim_pending) return;
  if (!b.holding_port) {
    Conn* conn_ptr = &c;
    const bool got = c.sw->claim_output_for_mcast(
        b.port, [this, conn_ptr, idx] { claim_complete(*conn_ptr, idx); });
    if (!got) {
      // Hold decision: the branch waits for the port while its siblings
      // (scheme-dependent) keep or yield theirs.
      WORMTRACE(sim_, kMcastHold, c.sw->node(), b.port, c.worm->id, idx);
      b.claim_pending = true;
      return;
    }
    b.holding_port = true;
  }
  claim_complete(c, idx);
}

void SwitchMcastEngine::claim_complete(Conn& c, std::size_t idx) {
  Branch& b = c.branches[idx];
  b.claim_pending = false;
  b.holding_port = true;
  b.open = true;
  b.closing = false;
  b.frag_prefix_sent = 0;
  b.frag_sent = 0;
  ++fragments_;
  WORMTRACE(sim_, kMcastFragOpen, c.sw->node(), b.port, c.worm->id, idx);
  // Fresh worm object per fragment: downstream treats each fragment as an
  // independent worm carrying its own (re-prepended) route.
  auto frag = worm_pool_ != nullptr ? worm_pool_->make()
                                    : std::make_shared<Worm>();
  frag->id = c.worm->id;
  frag->kind = WormKind::kSwitchMcast;
  frag->src = c.worm->src;
  frag->payload = c.worm->payload;
  frag->header = 0;
  frag->broadcast_flood = c.flood;
  if (!c.flood && !b.prefix.empty())
    frag->mcast_route = EncodedMcastRoute::from_bytes(b.prefix);
  frag->message = c.worm->message;
  frag->created_at = c.worm->created_at;
  frag->mcast = c.worm->mcast;
  b.frag_worm = std::move(frag);

  Channel* ch = c.sw->out_port(b.port).channel;
  b.feed = std::make_unique<BranchFeed>(*this, c, idx);
  ch->attach_feed(b.feed.get());
}

bool SwitchMcastEngine::branch_byte_available(const Conn& c,
                                              std::size_t idx) const {
  const Branch& b = c.branches[idx];
  if (b.done || !b.open || !b.holding_port) return false;
  // The whole route encoding must have arrived before copies flow.
  if (c.in->front_received() < c.encoding_len) return false;
  if (b.frag_prefix_sent < static_cast<std::int64_t>(b.prefix.size()))
    return true;
  if (b.closing) return true;
  const std::int64_t i = b.body_taken;
  if (i >= c.body_arrived()) return false;
  return i == min_body_taken(c);  // lockstep: only the laggard(s) advance
}

TxByte SwitchMcastEngine::branch_take(Conn& c, std::size_t idx) {
  Branch& b = c.branches[idx];
  TxByte out;
  out.head = (b.frag_sent == 0);
  if (out.head) {
    out.worm = b.frag_worm;
    // Advisory length: remaining declared body plus the stamped prefix.
    out.wire_len = static_cast<std::int64_t>(b.prefix.size()) +
                   std::max<std::int64_t>(2, c.in_wire - c.encoding_len -
                                                 b.body_taken);
  }
  ++b.frag_sent;
  c.sw->out_port(b.port).last_data_byte = sim_.now();
  if (b.frag_prefix_sent < static_cast<std::int64_t>(b.prefix.size())) {
    ++b.frag_prefix_sent;
    return out;
  }
  if (b.closing) {
    // Synthetic fragment trailer.
    out.tail = true;
    b.closing = false;
    return out;
  }
  ++b.body_taken;
  if (c.body_final() && b.body_taken == c.body_arrived()) {
    out.tail = true;
    b.done = true;
  }
  after_body_take(c);
  return out;
}

void SwitchMcastEngine::after_body_take(Conn& c) {
  const std::int64_t m = min_body_taken(c);
  bool advanced = false;
  while (c.body_consumed < m) {
    c.in->mcast_consume();
    ++c.body_consumed;
    advanced = true;
  }
  if (advanced) kick_all(c);
}

void SwitchMcastEngine::kick_all(Conn& c) {
  for (Branch& b : c.branches) {
    if (b.open && b.holding_port)
      c.sw->out_port(b.port).channel->kick();
  }
}

void SwitchMcastEngine::branch_tail_sent(Conn& c, std::size_t idx) {
  Branch& b = c.branches[idx];
  assert(b.open && b.holding_port);
  b.open = false;
  b.holding_port = false;
  b.feed.reset();
  WORMTRACE(sim_, kMcastFragClose, c.sw->node(), b.port, c.worm->id,
            b.done ? 1 : 0);
  c.sw->release_mcast_output(b.port);
  if (!b.done) return;  // fragment closed; reopened by periodic_check
  for (const Branch& br : c.branches)
    if (!br.done) return;
  finish(c);
}

void SwitchMcastEngine::finish(Conn& c) {
  InPort* key = c.in;
  WORMTRACE(sim_, kMcastFinish, c.sw->node(), c.in->port(), c.worm->id, 0);
  // Release any input bytes not yet consumed.
  while (c.body_consumed < c.body_arrived()) {
    c.in->mcast_consume();
    ++c.body_consumed;
  }
  c.in->mcast_finish_front();
  conns_.erase(key);
}

std::int64_t SwitchMcastEngine::min_body_taken(const Conn& c) const {
  assert(!c.branches.empty());
  std::int64_t m = c.branches.front().body_taken;
  for (const Branch& b : c.branches) m = std::min(m, b.body_taken);
  return m;
}

bool SwitchMcastEngine::any_branch_stopped(const Conn& c) const {
  for (const Branch& b : c.branches) {
    if (b.done) continue;
    // A branch that cannot even claim its output port (Figure 3: another
    // worm holds it) blocks the multicast just like backpressure does.
    if (b.claim_pending) return true;
    if (!b.open) continue;
    if (c.sw->out_port(b.port).channel->tx_stopped()) return true;
  }
  return false;
}

void SwitchMcastEngine::close_fragment(Conn& c, std::size_t idx) {
  Branch& b = c.branches[idx];
  assert(b.open);
  if (b.frag_sent == 0) {
    // Nothing sent yet: release silently (no downstream framing started).
    Channel* ch = c.sw->out_port(b.port).channel;
    ch->detach_feed();
    b.feed.reset();
    b.open = false;
    b.holding_port = false;
    WORMTRACE(sim_, kMcastFragClose, c.sw->node(), b.port, c.worm->id, 0);
    c.sw->release_mcast_output(b.port);
    return;
  }
  b.closing = true;
  c.sw->out_port(b.port).channel->kick();
}

void SwitchMcastEngine::periodic_check(InPort* key) {
  const auto it = conns_.find(key);
  if (it == conns_.end()) return;  // connection finished
  Conn& c = *it->second;
  if (config_.scheme == SwitchMcastScheme::kInterrupt) {
    if (any_branch_stopped(c)) {
      // Interrupt: non-blocked branches give up their paths (Section 3,
      // variant (b)) so other traffic can use them.
      WORMTRACE(sim_, kMcastInterrupt, c.sw->node(), c.in->port(),
                c.worm->id, 0);
      for (std::size_t i = 0; i < c.branches.size(); ++i) {
        Branch& b = c.branches[i];
        if (!b.open || b.done || b.closing) continue;
        if (c.sw->out_port(b.port).channel->tx_stopped()) continue;
        close_fragment(c, i);
      }
    } else {
      for (std::size_t i = 0; i < c.branches.size(); ++i) {
        Branch& b = c.branches[i];
        if (!b.open && !b.done) open_fragment(c, i);
      }
    }
  }
  sim_.after(config_.interrupt_check, [this, key] { periodic_check(key); });
}

bool SwitchMcastEngine::maybe_flush_unicast(SwitchRt& sw, InPort& in,
                                            PortId out) {
  if (config_.scheme != SwitchMcastScheme::kFlushUnicast) return false;
  const WormPtr& worm = in.front_worm();
  if (worm->kind != WormKind::kData) return false;
  const OutPort& op = sw.out_port(out);
  if (sim_.now() - op.last_data_byte >= config_.idle_flush_threshold) {
    ++flushed_;
    WormPtr flushed_worm = worm;
    WORMTRACE(sim_, kMcastIdleFlush, sw.node(), out, flushed_worm->id,
              flushed_worm->src);
    in.flush_front();
    if (flush_handler_) flush_handler_(flushed_worm);
    return true;
  }
  // Not yet multicast-IDLE: let the unicast queue, and keep watching until
  // either the port goes multicast-IDLE (flush) or the wait resolves.
  watch_for_flush(&sw, &in, out);
  return false;
}

void SwitchMcastEngine::watch_for_flush(SwitchRt* sw, InPort* in, PortId out) {
  sim_.after(config_.idle_flush_threshold, [this, sw, in, out] {
    OutPort& port = sw->out_port(out);
    if (!port.held_by_mcast) return;      // the multicast released the port
    if (!sw->is_waiting(*in, out)) return;  // the unicast got through
    if (sim_.now() - port.last_data_byte >= config_.idle_flush_threshold) {
      sw->cancel_request(*in, out);
      WormPtr flushed_worm = in->front_worm();
      WORMTRACE(sim_, kMcastIdleFlush, sw->node(), out, flushed_worm->id,
                flushed_worm->src);
      in->flush_front();
      ++flushed_;
      if (flush_handler_) flush_handler_(flushed_worm);
      return;
    }
    watch_for_flush(sw, in, out);
  });
}

}  // namespace wormcast
