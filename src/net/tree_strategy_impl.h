// Concrete TreeStrategy implementations (internal header: the factory in
// tree_strategy.cpp is the public entry point; tests may include this to
// poke strategy internals).
#pragma once

#include <map>
#include <unordered_map>
#include <vector>

#include "net/tree_strategy.h"

namespace wormcast::detail {

/// Key for per-(group, source) plan caches.
[[nodiscard]] inline std::uint64_t plan_key(GroupId g, HostId src) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(g)) << 32) |
         static_cast<std::uint32_t>(src);
}

/// Options for a strategy-owned routing: the experiment's routing options
/// pinned to the general routing's root and (by default) restricted to the
/// spanning tree, exactly like the pre-strategy tree_routing_.
[[nodiscard]] inline UpDownOptions owned_tree_opts(const UpDownRouting& base,
                                                   const UpDownOptions& base_opts,
                                                   bool tree_links_only = true) {
  UpDownOptions opts = base_opts;
  opts.root = base.root();
  opts.tree_links_only = tree_links_only;
  return opts;
}

/// The paper's scheme: one tree-restricted routing, one worm per
/// multicast. Byte-identical to the pre-strategy hard-wired path.
class SingleRootStrategy : public TreeStrategy {
 public:
  SingleRootStrategy(const Topology& topo, const UpDownRouting& base,
                     const UpDownOptions& base_opts);

  [[nodiscard]] TreeStrategyKind kind() const override {
    return TreeStrategyKind::kSingleRoot;
  }
  [[nodiscard]] const UpDownRouting& primary_routing() const override {
    return *tree_;
  }
  [[nodiscard]] const UpDownRouting& group_routing(GroupId) const override {
    return *tree_;
  }
  void plan_group(GroupId, const std::vector<HostId>&) override {}
  [[nodiscard]] McastPlan plan_multicast(
      GroupId g, HostId src, const std::vector<HostId>& dests) const override;
  void fail_link(LinkId l) override { tree_->fail_link(l); }
  void on_root_migrated(NodeId new_root) override { tree_->set_root(new_root); }

 private:
  std::unique_ptr<UpDownRouting> tree_;  // spanning-tree-only paths
};

/// Route-disjoint partitions merged by longest shared route prefix, one
/// worm per partition, bounded by the configured worm budget.
class PartitionMergeStrategy : public TreeStrategy {
 public:
  PartitionMergeStrategy(const TreeStrategyConfig& cfg, const Topology& topo,
                         const UpDownRouting& base,
                         const UpDownOptions& base_opts);

  [[nodiscard]] TreeStrategyKind kind() const override {
    return TreeStrategyKind::kPartitionMerge;
  }
  [[nodiscard]] const UpDownRouting& primary_routing() const override {
    return *tree_;
  }
  [[nodiscard]] const UpDownRouting& group_routing(GroupId) const override {
    return *tree_;
  }
  void plan_group(GroupId, const std::vector<HostId>&) override {}
  [[nodiscard]] McastPlan plan_multicast(
      GroupId g, HostId src, const std::vector<HostId>& dests) const override;
  void fail_link(LinkId l) override { tree_->fail_link(l); }
  void on_root_migrated(NodeId new_root) override { tree_->set_root(new_root); }

 private:
  int max_worms_ = 4;
  std::unique_ptr<UpDownRouting> tree_;
};

/// Per-send delivery trees over the full up/down graph with per-switch
/// penalties (observed load + static capacity), steering branch points away
/// from hot or multicast-poor switches.
class LoadAwareStrategy : public TreeStrategy {
 public:
  LoadAwareStrategy(const TreeStrategyConfig& cfg, const Topology& topo,
                    const UpDownRouting& base, const UpDownOptions& base_opts);

  [[nodiscard]] TreeStrategyKind kind() const override {
    return TreeStrategyKind::kLoadAware;
  }
  [[nodiscard]] const UpDownRouting& primary_routing() const override {
    return *tree_;
  }
  /// Worm paths are planned on the full up/down graph, so their legality
  /// reference is the *general* routing, not the tree-restricted one.
  [[nodiscard]] const UpDownRouting& group_routing(GroupId) const override {
    return base_routing_;
  }
  void plan_group(GroupId g, const std::vector<HostId>& members) override;
  [[nodiscard]] McastPlan plan_multicast(
      GroupId g, HostId src, const std::vector<HostId>& dests) const override;
  [[nodiscard]] int attach_cost(GroupId g, HostId parent,
                                HostId child) const override;
  void fail_link(LinkId l) override;
  void on_root_migrated(NodeId new_root) override;
  void set_load_probe(LoadProbe probe) override { probe_ = std::move(probe); }
  bool replan() override;

  /// Current detour penalty (hops) charged for routing through `sw`.
  [[nodiscard]] std::int64_t penalty(NodeId sw) const {
    return penalty_[static_cast<std::size_t>(sw)];
  }

 private:
  /// Penalized shortest legal up/down port paths from `src` to each dest.
  [[nodiscard]] std::vector<std::pair<HostId, std::vector<PortId>>>
  penalized_paths(HostId src, GroupId g,
                  const std::vector<HostId>& dests) const;
  void recompute_static_penalties();

  int load_penalty_hops_ = 4;
  int capacity_penalty_hops_ = 1;
  std::unique_ptr<UpDownRouting> tree_;  // broadcast flood + root anchor
  LoadProbe probe_;
  std::vector<std::int64_t> penalty_;  // by switch NodeId (hosts stay 0)
  mutable std::unordered_map<std::uint64_t, McastPlan> plan_cache_;
};

/// k spanning trees; each group rides the root minimizing its members'
/// depth sum.
class MultiRootStrategy : public TreeStrategy {
 public:
  MultiRootStrategy(const TreeStrategyConfig& cfg, const Topology& topo,
                    const UpDownRouting& base, const UpDownOptions& base_opts);

  [[nodiscard]] TreeStrategyKind kind() const override {
    return TreeStrategyKind::kMultiRoot;
  }
  [[nodiscard]] const UpDownRouting& primary_routing() const override {
    return *routings_.front();
  }
  [[nodiscard]] const UpDownRouting& group_routing(GroupId g) const override;
  void plan_group(GroupId g, const std::vector<HostId>& members) override;
  [[nodiscard]] McastPlan plan_multicast(
      GroupId g, HostId src, const std::vector<HostId>& dests) const override;
  void fail_link(LinkId l) override;
  void on_root_migrated(NodeId new_root) override;

  /// Worms ride the assigned candidate root's orientation. Candidate 0 is
  /// the base root, so it shares orientation 0 with every single-root
  /// strategy.
  [[nodiscard]] int plan_orientation(GroupId g) const override {
    return static_cast<int>(assignment(g));
  }

  [[nodiscard]] const std::vector<NodeId>& candidate_roots() const {
    return roots_;
  }
  /// The candidate index group `g` is assigned to (0 when unknown).
  [[nodiscard]] std::size_t assignment(GroupId g) const;

 private:
  /// Depth-sum-minimizing candidate for `members` (index into routings_).
  [[nodiscard]] std::size_t best_root(const std::vector<HostId>& members) const;

  std::vector<NodeId> roots_;
  std::vector<std::unique_ptr<UpDownRouting>> routings_;
  std::unordered_map<GroupId, std::size_t> assignment_;
  std::unordered_map<GroupId, std::vector<HostId>> members_;
};

/// Per-group dispatcher: one instance per referenced kind, groups routed
/// by the TreeStrategyConfig::per_group override table.
class PerGroupStrategy : public TreeStrategy {
 public:
  PerGroupStrategy(const TreeStrategyConfig& cfg, const Topology& topo,
                   const UpDownRouting& base, const UpDownOptions& base_opts);

  [[nodiscard]] TreeStrategyKind kind() const override { return default_kind_; }
  [[nodiscard]] const UpDownRouting& primary_routing() const override {
    return strategy_for_kind(default_kind_).primary_routing();
  }
  [[nodiscard]] const UpDownRouting& group_routing(GroupId g) const override {
    return strategy_for(g).group_routing(g);
  }
  void plan_group(GroupId g, const std::vector<HostId>& members) override {
    strategy_for(g).plan_group(g, members);
  }
  [[nodiscard]] McastPlan plan_multicast(
      GroupId g, HostId src, const std::vector<HostId>& dests) const override {
    return strategy_for(g).plan_multicast(g, src, dests);
  }
  [[nodiscard]] int attach_cost(GroupId g, HostId parent,
                                HostId child) const override {
    return strategy_for(g).attach_cost(g, parent, child);
  }
  // All kinds but multi-root plan under the base root (orientation 0), and
  // multi-root's candidate 0 is the base root too, so forwarding yields a
  // consistent orientation space across the dispatched instances.
  [[nodiscard]] int plan_orientation(GroupId g) const override {
    return strategy_for(g).plan_orientation(g);
  }
  void fail_link(LinkId l) override;
  void on_root_migrated(NodeId new_root) override;
  void set_load_probe(LoadProbe probe) override;
  bool replan() override;
  [[nodiscard]] std::int64_t worms_planned() const override;
  [[nodiscard]] std::int64_t partitions_merged() const override;
  [[nodiscard]] std::int64_t replans() const override;

 private:
  [[nodiscard]] TreeStrategy& strategy_for_kind(TreeStrategyKind k) const {
    return *instances_.at(static_cast<std::size_t>(k));
  }
  [[nodiscard]] TreeStrategy& strategy_for(GroupId g) const;

  TreeStrategyKind default_kind_;
  std::unordered_map<GroupId, TreeStrategyKind> overrides_;
  // Indexed by TreeStrategyKind; null for kinds no group uses.
  std::vector<std::unique_ptr<TreeStrategy>> instances_;
};

}  // namespace wormcast::detail
