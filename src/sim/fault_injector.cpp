#include "sim/fault_injector.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace wormcast {

FaultInjector::FaultInjector(RandomStream rng, FaultConfig config)
    : rng_(std::move(rng)), config_(config) {
  assert(config_.worm_kill_rate >= 0.0 && config_.worm_kill_rate <= 1.0);
  assert(config_.ctrl_loss_rate >= 0.0 && config_.ctrl_loss_rate <= 1.0);
  assert(config_.rx_drop_rate >= 0.0 && config_.rx_drop_rate <= 1.0);
  rearm();
}

void FaultInjector::rearm() {
  armed_ = config_.any() || !outages_.empty() || !forced_kills_.empty() ||
           forced_ctrl_drops_ > 0 || forced_rx_drops_ > 0;
}

namespace {
// Per-draw-type salts so the same (worm, time) key cannot correlate the
// kill, truncation-length, control-drop, and rx-drop decisions.
constexpr std::uint64_t kKillSalt = 0x4B114ull;
constexpr std::uint64_t kTruncSalt = 0x72C47ull;
constexpr std::uint64_t kCtrlSalt = 0xC7121ull;
constexpr std::uint64_t kRxSalt = 0x52D20ull;
constexpr std::uint64_t kFlapSalt = 0xF1A9ull;

std::uint64_t draw_key(std::uint64_t salt, WormId id, Time now) {
  return salt ^ (id * 0x9e3779b97f4a7c15ULL) ^ static_cast<std::uint64_t>(now);
}
}  // namespace

bool FaultInjector::should_kill_worm(HostId dst, WormId id, Time now) {
  for (auto it = forced_kills_.begin(); it != forced_kills_.end(); ++it) {
    if (it->dst != kNoHost && it->dst != dst) continue;
    forced_kills_.erase(it);
    ++worms_killed_;
    rearm();
    return true;
  }
  if (config_.worm_kill_rate > 0.0 &&
      rng_.keyed_chance(config_.worm_kill_rate, draw_key(kKillSalt, id, now),
                        id, static_cast<std::uint64_t>(now))) {
    ++worms_killed_;
    return true;
  }
  return false;
}

bool FaultInjector::should_drop_control(WormId id, Time now) {
  if (forced_ctrl_drops_ > 0) {
    --forced_ctrl_drops_;
    ++controls_dropped_;
    rearm();
    return true;
  }
  if (config_.ctrl_loss_rate > 0.0 &&
      rng_.keyed_chance(config_.ctrl_loss_rate, draw_key(kCtrlSalt, id, now),
                        id, static_cast<std::uint64_t>(now))) {
    ++controls_dropped_;
    return true;
  }
  return false;
}

std::int64_t FaultInjector::pick_truncation(std::int64_t min_len,
                                            std::int64_t max_len, WormId id,
                                            Time now) {
  assert(min_len >= 1 && min_len <= max_len);
  return rng_.keyed_uniform(min_len, max_len, draw_key(kTruncSalt, id, now),
                            id, static_cast<std::uint64_t>(now));
}

bool FaultInjector::should_drop_rx(WormId id, HostId host, Time now) {
  if (forced_rx_drops_ > 0) {
    --forced_rx_drops_;
    ++rx_dropped_;
    rearm();
    return true;
  }
  if (config_.rx_drop_rate > 0.0 &&
      rng_.keyed_chance(config_.rx_drop_rate, draw_key(kRxSalt, id, now),
                        id ^ static_cast<std::uint64_t>(host),
                        static_cast<std::uint64_t>(now))) {
    ++rx_dropped_;
    return true;
  }
  return false;
}

void FaultInjector::schedule_outage(const void* channel, Time from, Time until) {
  assert(from < until);
  outages_.push_back(Outage{channel, from, until});
  rearm();
}

bool FaultInjector::link_down(const void* channel, Time now) const {
  for (const Outage& o : outages_) {
    if (o.channel != nullptr && o.channel != channel) continue;
    if (now >= o.from && now < o.until) return true;
  }
  return false;
}

int FaultInjector::schedule_flaps(const void* channel, Time from, Time horizon,
                                  Time mean_down, Time mean_up,
                                  std::uint64_t key) {
  assert(mean_down >= 2 && mean_up >= 2 && from < horizon);
  int windows = 0;
  Time t = from;
  std::uint64_t i = 0;
  while (t < horizon) {
    // Each interval is keyed by (key, index): the schedule depends only on
    // the injector seed and the caller's key, never on call interleaving.
    const Time down = rng_.keyed_uniform(
        mean_down / 2, mean_down + mean_down / 2,
        draw_key(kFlapSalt, key, static_cast<Time>(2 * i)), key, 2 * i);
    const Time up = rng_.keyed_uniform(
        mean_up / 2, mean_up + mean_up / 2,
        draw_key(kFlapSalt, key, static_cast<Time>(2 * i + 1)), key, 2 * i + 1);
    const Time until = std::min(t + down, horizon);
    if (until > t) {
      outages_.push_back(Outage{channel, t, until});
      ++windows;
    }
    t = until + up;
    ++i;
  }
  flap_windows_ += windows;
  rearm();
  return windows;
}

void FaultInjector::kill_link(const void* channel) {
  outages_.push_back(Outage{channel, 0, kTimeNever});
  ++links_killed_;
  rearm();
}

void FaultInjector::mark_host_dead(HostId h) { dead_hosts_.insert(h); }

void FaultInjector::force_kill_data(int count, HostId dst) {
  for (int i = 0; i < count; ++i) forced_kills_.push_back(ForcedKill{dst});
  rearm();
}

void FaultInjector::force_drop_control(int count) {
  forced_ctrl_drops_ += count;
  rearm();
}

void FaultInjector::force_drop_rx(int count) {
  forced_rx_drops_ += count;
  rearm();
}

}  // namespace wormcast
