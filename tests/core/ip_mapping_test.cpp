#include "core/ip_mapping.h"

#include <gtest/gtest.h>

namespace wormcast {
namespace {

TEST(IpMapping, ClassDDetection) {
  EXPECT_TRUE(is_class_d(ipv4(224, 0, 0, 1)));
  EXPECT_TRUE(is_class_d(ipv4(239, 255, 255, 255)));
  EXPECT_FALSE(is_class_d(ipv4(223, 255, 255, 255)));
  EXPECT_FALSE(is_class_d(ipv4(240, 0, 0, 0)));
  EXPECT_FALSE(is_class_d(ipv4(10, 0, 0, 1)));
}

TEST(IpMapping, LowEightBitsSelectTheGroup) {
  EXPECT_EQ(myrinet_group_of(ipv4(224, 2, 127, 61)), 61);
  EXPECT_EQ(myrinet_group_of(ipv4(239, 9, 9, 0)), 0);
  EXPECT_EQ(myrinet_group_of(ipv4(224, 0, 0, 254)), 254);
}

TEST(IpMapping, Group255IsBroadcast) {
  EXPECT_EQ(myrinet_group_of(ipv4(224, 0, 0, 255)), kBroadcastGroup);
}

TEST(IpMapping, NonMulticastThrows) {
  EXPECT_THROW(myrinet_group_of(ipv4(192, 168, 0, 1)), std::invalid_argument);
}

TEST(IpMapping, CollisionsAreDetected) {
  // Nonunique low 8 bits are allowed; receivers filter (Section 8.1).
  EXPECT_TRUE(groups_collide(ipv4(224, 1, 1, 7), ipv4(225, 9, 9, 7)));
  EXPECT_FALSE(groups_collide(ipv4(224, 1, 1, 7), ipv4(224, 1, 1, 8)));
  EXPECT_FALSE(groups_collide(ipv4(224, 1, 1, 7), ipv4(224, 1, 1, 7)));
}

}  // namespace
}  // namespace wormcast
