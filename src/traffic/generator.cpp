#include "traffic/generator.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace wormcast {

TrafficGenerator::TrafficGenerator(Simulator& sim, TrafficConfig config,
                                   std::vector<MulticastGroupSpec> groups,
                                   int n_hosts, RandomStream rng, Sink sink)
    : sim_(sim),
      config_(config),
      groups_(std::move(groups)),
      n_hosts_(n_hosts),
      sink_(std::move(sink)) {
  assert(config_.offered_load > 0.0);
  groups_of_host_.resize(static_cast<std::size_t>(n_hosts_));
  for (const MulticastGroupSpec& g : groups_)
    for (const HostId h : g.members)
      groups_of_host_[static_cast<std::size_t>(h)].push_back(g.id);
  rngs_.reserve(static_cast<std::size_t>(n_hosts_));
  for (HostId h = 0; h < n_hosts_; ++h)
    rngs_.push_back(rng.fork(static_cast<std::uint64_t>(h) + 1));
}

void TrafficGenerator::start(Time until) {
  until_ = until;
  for (HostId h = 0; h < n_hosts_; ++h) schedule_next(h);
}

void TrafficGenerator::schedule_next(HostId h) {
  RandomStream& rng = rngs_[static_cast<std::size_t>(h)];
  const double mean_gap = config_.mean_worm_len / config_.offered_load;
  const Time gap = rng.exp_interval(mean_gap);
  if (sim_.now() + gap > until_) return;
  sim_.after(gap, [this, h] { fire(h); });
}

void TrafficGenerator::fire(HostId h) {
  RandomStream& rng = rngs_[static_cast<std::size_t>(h)];
  Demand d;
  d.src = h;
  d.length = std::min(config_.max_worm_len,
                      rng.geometric_length(config_.mean_worm_len,
                                           config_.min_worm_len));
  const auto& my_groups = groups_of_host_[static_cast<std::size_t>(h)];
  if (!my_groups.empty() && rng.chance(config_.multicast_fraction)) {
    d.multicast = true;
    d.group = rng.pick(my_groups);
  } else if (n_hosts_ > 1) {
    d.multicast = false;
    do {
      d.dst = static_cast<HostId>(rng.uniform(0, n_hosts_ - 1));
    } while (d.dst == h);
  } else {
    schedule_next(h);
    return;
  }
  ++issued_;
  sink_(d);
  schedule_next(h);
}

}  // namespace wormcast
