file(REMOVE_RECURSE
  "libwormcast_net.a"
)
