// Generators for the topologies used in the paper's evaluation, plus a few
// generic shapes for tests and examples.
#pragma once

#include <cstdint>
#include <vector>

#include "net/topology.h"
#include "sim/random.h"
#include "sim/types.h"

namespace wormcast {

/// k-ary 2-D torus of switches (rows x cols), `hosts_per_switch` hosts on
/// each switch. Figure 10 uses make_torus(8, 8, 1).
Topology make_torus(int rows, int cols, int hosts_per_switch = 1,
                    Time link_delay = kDefaultLinkDelay,
                    Time host_link_delay = kDefaultLinkDelay);

/// Bidirectional (p, k) shufflenet: k columns of p^k switches; switch
/// (c, r) links to ((c+1) mod k, r*p + d mod p^k) for d in [0, p); links are
/// full duplex (the "bidirectional" of [PLG95]). One host per switch.
/// Figure 11 uses make_bidir_shufflenet(2, 3, ...): 24 nodes.
Topology make_bidir_shufflenet(int p, int k,
                               Time link_delay = kDefaultLinkDelay,
                               Time host_link_delay = kDefaultLinkDelay);

/// Three-stage folded Clos (spine/leaf): `spines` top-stage switches, each
/// of the `leaves` bottom-stage switches linked to every spine, and
/// `hosts_per_leaf` hosts per leaf. Switch ids run spines first, then
/// leaves (stage-major — the sharded engine bands switches by id, so a
/// band stays within one or two stages). When `levels_out` is non-null it
/// receives the stage label of every node (spines 0, leaves 1, hosts 2) —
/// pass it as UpDownOptions::level_override so *every* spine can turn a
/// route around (the BFS labels would funnel all traffic through the root
/// spine; the degree-based default root would even pick a leaf, since a
/// leaf's degree is spines + hosts_per_leaf).
Topology make_clos(int spines, int leaves, int hosts_per_leaf,
                   Time link_delay = kDefaultLinkDelay,
                   Time host_link_delay = kDefaultLinkDelay,
                   std::vector<int>* levels_out = nullptr);

/// k-ary fat tree (the three-stage Clos folded once more): (k/2)^2 core
/// switches, k pods of k/2 aggregation + k/2 edge switches, k/2 hosts per
/// edge — k^3/4 hosts total. k must be even and >= 2. Aggregation switch j
/// of every pod links to cores [j*k/2, (j+1)*k/2); every edge links to
/// every aggregation switch in its pod. Switch ids run cores first, then
/// pod by pod (aggs, then edges). `levels_out` receives stage labels
/// (cores 0, aggs 1, edges 2, hosts 3) for UpDownOptions::level_override.
Topology make_fat_tree(int k, Time link_delay = kDefaultLinkDelay,
                       Time host_link_delay = kDefaultLinkDelay,
                       std::vector<int>* levels_out = nullptr);

/// The measurement testbed of Section 8.2: four switches in a line, eight
/// hosts (two per switch).
Topology make_myrinet_testbed(Time link_delay = kDefaultLinkDelay,
                              Time host_link_delay = kDefaultLinkDelay);

/// A single switch with n hosts (degenerate star; useful in unit tests).
Topology make_star(int n_hosts, Time link_delay = kDefaultLinkDelay);

/// A line of n switches, one host each.
Topology make_line(int n_switches, Time link_delay = kDefaultLinkDelay,
                   Time host_link_delay = kDefaultLinkDelay);

/// Random connected mesh: n switches, one host each, average switch degree
/// ~degree (a spanning tree plus random extra links). Used by property
/// tests to exercise routing on irregular LAN topologies.
Topology make_random_mesh(int n_switches, double degree, RandomStream& rng,
                          Time link_delay = kDefaultLinkDelay);

}  // namespace wormcast
