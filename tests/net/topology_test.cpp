#include "net/topology.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "net/topologies.h"
#include "net/updown.h"
#include "sim/random.h"

namespace wormcast {
namespace {

TEST(Topology, ConnectAssignsSequentialPorts) {
  Topology t;
  const NodeId a = t.add_switch();
  const NodeId b = t.add_switch();
  const NodeId c = t.add_switch();
  const LinkId ab = t.connect(a, b);
  const LinkId ac = t.connect(a, c);
  EXPECT_EQ(t.link(ab).port_a, 0);
  EXPECT_EQ(t.link(ac).port_a, 1);
  EXPECT_EQ(t.peer(ab, a), b);
  EXPECT_EQ(t.peer(ab, b), a);
  EXPECT_EQ(t.port_on(ab, b), 0);
  EXPECT_EQ(t.neighbor_via(a, 1), c);
}

TEST(Topology, HostBookkeeping) {
  Topology t;
  const NodeId sw = t.add_switch();
  const NodeId h0 = t.add_host();
  const NodeId h1 = t.add_host();
  t.connect(h0, sw);
  t.connect(h1, sw);
  EXPECT_EQ(t.num_hosts(), 2);
  EXPECT_EQ(t.node_of_host(0), h0);
  EXPECT_EQ(t.node_of_host(1), h1);
  EXPECT_EQ(t.switch_of_host(0), sw);
  EXPECT_EQ(t.switch_of_host(1), sw);
  EXPECT_NO_THROW(t.validate());
}

TEST(Topology, ValidateRejectsMultiPortHost) {
  Topology t;
  const NodeId sw1 = t.add_switch();
  const NodeId sw2 = t.add_switch();
  t.connect(sw1, sw2);
  const NodeId h = t.add_host();
  t.connect(h, sw1);
  t.connect(h, sw2);
  EXPECT_THROW(t.validate(), std::logic_error);
}

TEST(Topology, ValidateRejectsDisconnected) {
  Topology t;
  t.add_switch();
  t.add_switch();
  EXPECT_THROW(t.validate(), std::logic_error);
}

TEST(Topology, RejectsSelfLinkAndBadDelay) {
  Topology t;
  const NodeId a = t.add_switch();
  const NodeId b = t.add_switch();
  EXPECT_THROW(t.connect(a, a), std::logic_error);
  EXPECT_THROW(t.connect(a, b, 0), std::logic_error);
}

TEST(Topologies, TorusHasExpectedShape) {
  const Topology t = make_torus(8, 8);
  EXPECT_EQ(t.num_switches(), 64);
  EXPECT_EQ(t.num_hosts(), 64);
  // 2 fabric links per switch (right+down with wraparound) + 1 host link.
  EXPECT_EQ(t.num_links(), 64 * 2 + 64);
  for (NodeId n = 0; n < t.num_nodes(); ++n) {
    if (t.node(n).kind == NodeKind::kSwitch)
      EXPECT_EQ(t.node(n).ports.size(), 5u);  // 4 mesh + 1 host
  }
}

TEST(Topologies, SmallTorusAvoidsDuplicateLinks) {
  const Topology t = make_torus(2, 2);
  // 2x2: wraparound would duplicate; expect 4 unique fabric links + hosts.
  EXPECT_EQ(t.num_links(), 4 + 4);
  EXPECT_NO_THROW(t.validate());
}

TEST(Topologies, ShufflenetShape) {
  const Topology t = make_bidir_shufflenet(2, 3);
  EXPECT_EQ(t.num_switches(), 24);  // 3 columns x 8
  EXPECT_EQ(t.num_hosts(), 24);
  EXPECT_NO_THROW(t.validate());
  // Each switch originates p=2 forward links: 48 fabric links (some pairs
  // may merge when both directions coincide).
  EXPECT_GE(t.num_links() - 24, 40);
  EXPECT_LE(t.num_links() - 24, 48);
}

TEST(Topologies, MyrinetTestbedShape) {
  const Topology t = make_myrinet_testbed();
  EXPECT_EQ(t.num_switches(), 4);
  EXPECT_EQ(t.num_hosts(), 8);
  EXPECT_EQ(t.num_links(), 3 + 8);
  // Two hosts per switch.
  for (HostId h = 0; h < 8; ++h)
    EXPECT_EQ(t.switch_of_host(h), h / 2);
}

TEST(Topologies, StarAndLine) {
  const Topology star = make_star(5);
  EXPECT_EQ(star.num_switches(), 1);
  EXPECT_EQ(star.num_hosts(), 5);
  const Topology line = make_line(3);
  EXPECT_EQ(line.num_switches(), 3);
  EXPECT_EQ(line.num_links(), 2 + 3);
}

TEST(Topologies, RandomMeshIsValidAndConnected) {
  RandomStream rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const Topology t = make_random_mesh(12, 3.0, rng);
    EXPECT_EQ(t.num_switches(), 12);
    EXPECT_EQ(t.num_hosts(), 12);
    EXPECT_NO_THROW(t.validate());
  }
}

int degree_of(const Topology& t, NodeId n) {
  return static_cast<int>(t.node(n).ports.size());
}

TEST(Topologies, ClosStageCountsAndDegrees) {
  std::vector<int> levels;
  const Topology t = make_clos(4, 8, 4, kDefaultLinkDelay, kDefaultLinkDelay,
                               &levels);
  EXPECT_NO_THROW(t.validate());
  EXPECT_EQ(t.num_switches(), 4 + 8);
  EXPECT_EQ(t.num_hosts(), 8 * 4);
  EXPECT_EQ(t.num_links(), 4 * 8 + 8 * 4);  // spine-leaf bipartite + hosts
  ASSERT_EQ(static_cast<int>(levels.size()), t.num_nodes());
  // Spines first (stage 0), then leaves (stage 1), hosts stage 2.
  for (NodeId n = 0; n < 4; ++n) {
    EXPECT_EQ(levels[n], 0) << "spine " << n;
    EXPECT_EQ(degree_of(t, n), 8) << "spine degree = leaves";
  }
  for (NodeId n = 4; n < 12; ++n) {
    EXPECT_EQ(levels[n], 1) << "leaf " << n;
    EXPECT_EQ(degree_of(t, n), 4 + 4) << "leaf degree = spines + hosts";
  }
  for (HostId h = 0; h < t.num_hosts(); ++h) {
    EXPECT_EQ(levels[t.node_of_host(h)], 2);
    // Hosts hang off leaves in id order, hosts_per_leaf at a time.
    EXPECT_EQ(t.switch_of_host(h), 4 + h / 4);
  }
}

TEST(Topologies, FatTreeStageCountsAndDegrees) {
  const int k = 4;
  std::vector<int> levels;
  const Topology t =
      make_fat_tree(k, kDefaultLinkDelay, kDefaultLinkDelay, &levels);
  EXPECT_NO_THROW(t.validate());
  const int cores = (k / 2) * (k / 2);
  EXPECT_EQ(t.num_switches(), cores + k * (k / 2) * 2);  // + aggs + edges
  EXPECT_EQ(t.num_hosts(), k * k * k / 4);
  // Every switch in a k-ary fat tree has degree k.
  for (NodeId n = 0; n < t.num_switches(); ++n)
    EXPECT_EQ(degree_of(t, n), k) << "switch " << n;
  ASSERT_EQ(static_cast<int>(levels.size()), t.num_nodes());
  for (NodeId n = 0; n < cores; ++n) EXPECT_EQ(levels[n], 0);
  int aggs = 0;
  int edges = 0;
  for (NodeId n = cores; n < t.num_switches(); ++n) {
    EXPECT_TRUE(levels[n] == 1 || levels[n] == 2);
    (levels[n] == 1 ? aggs : edges) += 1;
  }
  EXPECT_EQ(aggs, k * (k / 2));
  EXPECT_EQ(edges, k * (k / 2));
  for (HostId h = 0; h < t.num_hosts(); ++h)
    EXPECT_EQ(levels[t.node_of_host(h)], 3);
  EXPECT_THROW(make_fat_tree(3), std::invalid_argument);  // odd k
}

// Walks every host-pair route and asserts the up*/down* shape under the
// stage labels: once a hop moves to a larger (label, id) — i.e. down — no
// later hop may move up again. An up-after-down turn is exactly the cycle
// ingredient up/down routing exists to exclude (Section 2); with
// level_override the orientation comes from stage labels, so the invariant
// must be re-proven against those labels, not BFS distance.
void expect_no_down_up_turn(const Topology& t, const std::vector<int>& levels,
                            const UpDownRouting& routing) {
  const auto up = [&](NodeId from, NodeId to) {
    return std::make_pair(levels[to], to) < std::make_pair(levels[from], from);
  };
  for (HostId src = 0; src < t.num_hosts(); ++src) {
    for (HostId dst = 0; dst < t.num_hosts(); ++dst) {
      if (src == dst) continue;
      const SourceRoute r = routing.route(src, dst);
      NodeId at = t.switch_of_host(src);
      bool went_down = false;
      for (std::size_t hop = 0; hop + 1 < r.size(); ++hop) {
        // The final port exits to the destination host; the ones before
        // it are switch-to-switch traversals.
        const NodeId next = t.neighbor_via(at, r.at(hop));
        if (up(at, next)) {
          EXPECT_FALSE(went_down)
              << "illegal down->up turn on route " << src << "->" << dst
              << " at node " << at;
        } else {
          went_down = true;
        }
        at = next;
      }
      EXPECT_EQ(t.neighbor_via(at, r.at(r.size() - 1)),
                t.node_of_host(dst));
    }
  }
}

TEST(Topologies, ClosRoutesAreUpDownDeadlockFree) {
  std::vector<int> levels;
  const Topology t = make_clos(3, 4, 2, kDefaultLinkDelay, kDefaultLinkDelay,
                               &levels);
  UpDownOptions opts;
  opts.level_override = levels;
  const UpDownRouting routing(t, opts);
  // Stage labels must pick a spine as root, not the higher-degree leaves.
  EXPECT_LT(routing.root(), 3);
  expect_no_down_up_turn(t, levels, routing);
}

TEST(Topologies, FatTreeRoutesAreUpDownDeadlockFree) {
  std::vector<int> levels;
  const Topology t =
      make_fat_tree(4, kDefaultLinkDelay, kDefaultLinkDelay, &levels);
  UpDownOptions opts;
  opts.level_override = levels;
  const UpDownRouting routing(t, opts);
  EXPECT_LT(routing.root(), 4);  // a core switch
  expect_no_down_up_turn(t, levels, routing);
}

TEST(Topologies, TorusAtScaleIsConnected) {
  const Topology t = make_torus(32, 32);
  EXPECT_EQ(t.num_switches(), 32 * 32);
  EXPECT_EQ(t.num_hosts(), 32 * 32);
  EXPECT_EQ(t.num_links(), 2 * 32 * 32 + 32 * 32);  // torus mesh + host links
  EXPECT_NO_THROW(t.validate());  // includes the connectivity check
  // Every switch reaches the root: no -1 (cut-off) BFS levels.
  const UpDownRouting routing(t, UpDownOptions{});
  for (NodeId n = 0; n < t.num_nodes(); ++n)
    EXPECT_GE(routing.level(n), 0) << "node " << n;
}

}  // namespace
}  // namespace wormcast
