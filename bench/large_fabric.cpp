// Large-fabric scaling bench: thousand-host networks driven end to end,
// sweeping the sharded engine's executor count on each fabric.
//
// Two fabrics, both 1024 hosts:
//
//  - a 32x32 torus, one host per switch (the hot-path bench's scale
//    point, grown to a campus-length LAN), and
//  - a 3-stage folded Clos: 16 spines x 32 leaves x 32 hosts per leaf,
//    routed up/down with stage labels (net/topologies.h) so every spine
//    carries traffic instead of just the root.
//
// Links are 40 byte-times long — ~100 m of cable at 640 Mb/s (see
// net/topology.h's 25 m ~ 10 bt rationale), the building-scale runs the
// paper's Section 7 multi-campus discussion contemplates. The propagation
// delay is also the sharded engine's lookahead window, so these fabrics
// run ~8x more simulation per synchronization barrier than the 5-bt
// testbed links would.
//
// Workload: every host multicasts 2 KB packets to its own 8-host group on
// a fixed period — busy enough that channel/switch events dominate the
// window loop, group-local so a packet's Hamiltonian circuit stays short.
//
// Each (fabric, shards) point is one run. The physics columns of every
// row are bit-identical across the shards axis (the in-run parallelism
// contract; the CI shard gate diffs them), so the interesting outputs are
// the meta walls: shards4_speedup_wall_<fabric> is the acceptance number
// for the sharded engine (>= 2x at 4 executors on an 8-core runner; a
// starved 1-2 core container will show ~1x and that is expected).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "myrinet_testbed.h"

using namespace wormcast;

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  const Time span = args.quick ? 1'000'000 : 6'000'000;
  const Time link_delay = 40;  // byte-times; ~100 m of cable
  const std::int64_t packet = 2048;
  const int group_size = 8;
  const Time period = args.quick ? 80'000 : 40'000;

  std::vector<int> clos_levels;
  const Topology torus = make_torus(32, 32, 1, link_delay, link_delay);
  const Topology clos =
      make_clos(16, 32, 32, link_delay, link_delay, &clos_levels);
  struct Fabric {
    const char* name;
    const Topology* topo;
    const std::vector<int>* levels;
  };
  const std::vector<Fabric> fabrics = {{"torus32", &torus, nullptr},
                                       {"clos16x32", &clos, &clos_levels}};
  const std::vector<int> shard_counts = {1, 2, 4};

  std::printf("# Large fabrics: 1024 hosts (%s), %lld-byte packets to "
              "%d-host groups every %lld byte-times, %lld byte-times, "
              "%lld-bt links\n",
              "32x32 torus; 16x32x32 Clos", static_cast<long long>(packet),
              group_size, static_cast<long long>(period),
              static_cast<long long>(span), static_cast<long long>(link_delay));
  bench::print_header(
      "fabric", {"shards", "hosts", "switches", "throughput_mbps", "loss_rate",
                 "sim_bytes", "windows_ok"});

  const std::size_t n_points = fabrics.size() * shard_counts.size();
  bench::JsonBench json("large_fabric");
  json.resize_rows(n_points);
  bench::CheckCollector checks(args.check);
  checks.resize(n_points);
  const harness::WallTimer sweep;
  harness::SweepRunner pool(args.jobs);
  std::vector<bench::TestbedResult> results(n_points);
  const auto walls = pool.run_indexed(n_points, [&](std::size_t i) {
    const Fabric& f = fabrics[i / shard_counts.size()];
    const int shards = shard_counts[i % shard_counts.size()];
    bench::TestbedOptions opts;
    opts.topology = f.topo;
    opts.topology_levels = f.levels;
    opts.senders = f.topo->num_hosts();
    opts.packet_size = packet;
    opts.span = span;
    opts.group_size = group_size;
    opts.inject_period = period;
    opts.shards = shards;
    opts.trace_cap = args.trace_cap;
    opts.checks = &checks;
    opts.check_slot = i;
    opts.check_label =
        std::string(f.name) + " shards=" + std::to_string(shards);
    results[i] = bench::run_testbed(opts);
  });

  for (std::size_t i = 0; i < n_points; ++i) {
    const Fabric& f = fabrics[i / shard_counts.size()];
    const int shards = shard_counts[i % shard_counts.size()];
    const bench::TestbedResult& r = results[i];
    // Physics must not move along the shards axis; restate the contract
    // in-band so a drifting run is visible even without the CI gate.
    const bench::TestbedResult& base = results[(i / shard_counts.size()) *
                                              shard_counts.size()];
    const bool ok = r.throughput_mbps == base.throughput_mbps &&
                    r.loss_rate == base.loss_rate &&
                    r.bytes_on_wire == base.bytes_on_wire;
    std::printf("%s,%d,%d,%d,%.2f,%.4f,%lld,%d\n", f.name, shards,
                f.topo->num_hosts(), f.topo->num_switches(),
                r.throughput_mbps, r.loss_rate,
                static_cast<long long>(r.bytes_on_wire), ok ? 1 : 0);
    json.set_row(i, {{"fabric", static_cast<double>(i / shard_counts.size())},
                     {"shards", static_cast<double>(shards)},
                     {"hosts", static_cast<double>(f.topo->num_hosts())},
                     {"switches", static_cast<double>(f.topo->num_switches())},
                     {"throughput_mbps", r.throughput_mbps},
                     {"loss_rate", r.loss_rate},
                     {"sim_bytes", static_cast<double>(r.bytes_on_wire)},
                     {"windows_ok", ok ? 1.0 : 0.0}});
  }
  // Wall-clock lives in meta only (rows are diffed across runs and shard
  // counts): the sharded speedup at each fabric, from the event-loop wall.
  bool all_ok = true;
  for (std::size_t fi = 0; fi < fabrics.size(); ++fi) {
    const double base = results[fi * shard_counts.size()].sim_wall_ms;
    for (std::size_t si = 1; si < shard_counts.size(); ++si) {
      const bench::TestbedResult& r = results[fi * shard_counts.size() + si];
      const double speedup = r.sim_wall_ms > 0 ? base / r.sim_wall_ms : 0.0;
      json.set_meta("shards" + std::to_string(shard_counts[si]) +
                        "_speedup_wall_" + fabrics[fi].name,
                    speedup);
      std::printf("# %s: --shards %d speedup %.2fx (%.0f ms -> %.0f ms)\n",
                  fabrics[fi].name, shard_counts[si], speedup, base,
                  r.sim_wall_ms);
    }
  }
  for (std::size_t i = 0; i < n_points; ++i) {
    const std::size_t base_i = (i / shard_counts.size()) * shard_counts.size();
    if (results[i].throughput_mbps != results[base_i].throughput_mbps ||
        results[i].bytes_on_wire != results[base_i].bytes_on_wire)
      all_ok = false;
  }
  if (!all_ok)
    std::printf("# WARNING: shard counts disagree on results — sharded "
                "engine bug!\n");
  std::fflush(stdout);
  json.set_counters(results[0].counters);
  bench::stamp_sweep_meta(json, pool, walls, sweep);
  const int check_rc = checks.finalize(&json);
  json.write();
  return all_ok ? check_rc : 1;
}
