// Simulation hot-path benchmark: how fast does the simulator itself run?
//
// Times the Figure-12-scale end-to-end scenario (8 hosts saturating a
// 4-switch Myrinet with 8 KB multicast packets) across a mode matrix —
// burst fast path, forced per-byte, and burst with the flight recorder
// enabled — and reports events/second, simulated bytes per wall-second,
// the event-queue peak size, and the wall-clock ratios between modes.
// All modes produce bit-for-bit identical simulation results (pinned by
// the burst_equivalence ctest); only the event count and wall time differ.
//
// Timing discipline: each mode runs one discarded warm-up (page cache,
// allocator, branch predictors) and then best-of-K timed repetitions, so
// the reported walls measure the steady state, not cold-start order.
// The mode matrix runs on a SweepRunner (--jobs N) like every other
// sweep; note that with --jobs > 1 the modes time each other's cache and
// core contention, so scaling studies should keep the default --jobs 1
// for this bench and spend their cores on the *sweep* benches instead.
//
// CI runs `--quick` as a smoke test and archives BENCH_sim_hotpath.json.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "myrinet_testbed.h"

using namespace wormcast;

namespace {

constexpr int kRepetitions = 3;  // best-of-K after one warm-up

struct Timed {
  bench::TestbedResult result;
  double wall_ms = 0.0;  // best of kRepetitions
};

Timed timed_run(std::int64_t packet, Time span, bool burst, bool tracing,
                std::size_t trace_cap) {
  Timed t;
  // Warm-up: identical run, result and time discarded.
  bench::run_testbed(/*senders=*/8, packet, span, burst, tracing,
                     /*trace_out=*/{}, trace_cap);
  t.wall_ms = -1.0;
  for (int k = 0; k < kRepetitions; ++k) {
    const auto t0 = std::chrono::steady_clock::now();
    auto result = bench::run_testbed(/*senders=*/8, packet, span, burst,
                                     tracing, /*trace_out=*/{}, trace_cap);
    const auto t1 = std::chrono::steady_clock::now();
    const double wall =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (t.wall_ms < 0 || wall < t.wall_ms) {
      t.wall_ms = wall;
      t.result = std::move(result);
    }
  }
  return t;
}

void report(const char* mode, const Timed& t, bench::JsonBench& json,
            std::size_t row, bool burst, bool tracing) {
  const double wall_s = t.wall_ms / 1000.0;
  const double events_per_s =
      wall_s > 0 ? static_cast<double>(t.result.events_dispatched) / wall_s : 0;
  const double bytes_per_s =
      wall_s > 0 ? static_cast<double>(t.result.bytes_on_wire) / wall_s : 0;
  std::printf("%s,%.1f,%lld,%.3g,%lld,%.3g,%lld,%.1f\n", mode, t.wall_ms,
              static_cast<long long>(t.result.events_dispatched), events_per_s,
              static_cast<long long>(t.result.bytes_on_wire), bytes_per_s,
              static_cast<long long>(t.result.event_queue_peak),
              t.result.throughput_mbps);
  json.set_row(row,
               {{"burst", burst ? 1.0 : 0.0},
                {"tracing", tracing ? 1.0 : 0.0},
                {"wall_ms", t.wall_ms},
                {"events", static_cast<double>(t.result.events_dispatched)},
                {"events_per_sec", events_per_s},
                {"sim_bytes", static_cast<double>(t.result.bytes_on_wire)},
                {"sim_bytes_per_wall_sec", bytes_per_s},
                {"event_queue_peak",
                 static_cast<double>(t.result.event_queue_peak)},
                {"throughput_mbps", t.result.throughput_mbps}});
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  const Time span = args.quick ? 600'000 : 3'000'000;
  const std::int64_t packet = 8 * 1024;

  std::printf("# Simulation hot path: fig12-scale all-send run (8 hosts, "
              "%lld-byte packets, %lld byte-times, warm-up + best of %d)\n",
              static_cast<long long>(packet), static_cast<long long>(span),
              kRepetitions);
  bench::print_header("mode", {"wall_ms", "events", "events_per_sec",
                               "sim_bytes", "sim_bytes_per_wall_sec",
                               "event_queue_peak", "throughput_mbps"});
  bench::JsonBench json("sim_hotpath");

  // Mode matrix: (burst, tracing). The third mode is the overhead guard —
  // the same burst run with the flight recorder on. The runtime-disabled
  // path must stay within noise; the enabled path's cost is reported so
  // regressions are visible.
  struct Mode {
    const char* name;
    bool burst;
    bool tracing;
  };
  const std::vector<Mode> modes = {{"burst", true, false},
                                   {"per_byte", false, false},
                                   {"burst_traced", true, true}};
  json.resize_rows(modes.size() + 1);  // + trailing ratio row
  const harness::WallTimer sweep;
  harness::SweepRunner pool(args.jobs);
  std::vector<Timed> timed(modes.size());
  const auto walls = pool.run_indexed(modes.size(), [&](std::size_t i) {
    timed[i] = timed_run(packet, span, modes[i].burst, modes[i].tracing,
                         args.trace_cap);
  });
  for (std::size_t i = 0; i < modes.size(); ++i)
    report(modes[i].name, timed[i], json, i, modes[i].burst, modes[i].tracing);

  const Timed& burst = timed[0];
  const Timed& per_byte = timed[1];
  const Timed& traced = timed[2];
  const double speedup =
      burst.wall_ms > 0 ? per_byte.wall_ms / burst.wall_ms : 0.0;
  const double event_ratio =
      burst.result.events_dispatched > 0
          ? static_cast<double>(per_byte.result.events_dispatched) /
                static_cast<double>(burst.result.events_dispatched)
          : 0.0;
  const double tracing_overhead =
      burst.wall_ms > 0 ? traced.wall_ms / burst.wall_ms : 0.0;
  std::printf("# burst speedup: %.2fx wall clock, %.2fx fewer events\n",
              speedup, event_ratio);
  std::printf("# tracing overhead: %.2fx wall clock, %lld events recorded "
              "(%lld dropped; raise --trace-cap to keep them)\n",
              tracing_overhead,
              static_cast<long long>(traced.result.trace_events),
              static_cast<long long>(traced.result.trace_dropped));
  if (burst.result.throughput_mbps != per_byte.result.throughput_mbps)
    std::printf("# WARNING: modes disagree on throughput — burst bug!\n");
  if (burst.result.throughput_mbps != traced.result.throughput_mbps)
    std::printf("# WARNING: tracing changed the results — observer bug!\n");
  json.set_row(modes.size(),
               {{"speedup_wall", speedup},
                {"event_ratio", event_ratio},
                {"tracing_overhead_wall", tracing_overhead},
                {"best_of", static_cast<double>(kRepetitions)},
                {"trace_events",
                 static_cast<double>(traced.result.trace_events)},
                {"trace_dropped",
                 static_cast<double>(traced.result.trace_dropped)}});
  json.set_counters(traced.result.counters);
  bench::stamp_sweep_meta(json, pool, walls, sweep);
  json.write();
  return 0;
}
