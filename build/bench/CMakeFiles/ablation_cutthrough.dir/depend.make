# Empty dependencies file for ablation_cutthrough.
# This may be replaced when dependencies are built.
