// Builds the multicast delivery tree carried in a switch-level multicast
// worm's header (Section 3 / Figure 2).
//
// Per-destination port paths from one source merge into a tree of output
// ports: shared prefixes become shared trunk, divergence becomes a branch.
// Hosts are topology leaves, so no destination's path can be a prefix of
// another's (every path ends on a distinct host port); a prefix conflict
// therefore means corrupted routes and is rejected with a diagnostic
// naming the offending host pair rather than silently mis-delivering.
#pragma once

#include <vector>

#include "net/source_route.h"
#include "net/updown.h"
#include "sim/types.h"

namespace wormcast {

/// One destination host and its source-route port list (switch output
/// ports ending with the destination's host port).
struct HostPath {
  HostId host = kNoHost;
  std::vector<PortId> ports;
};

/// Merges per-destination port paths into the branch forest leaving the
/// shared source switch. Deterministic: children are ordered by port.
/// Throws std::invalid_argument, naming the offending host pair, when one
/// path is a prefix of another (interior-node delivery is unsupported:
/// a worm cannot both exit a switch and terminate there).
std::vector<McastRouteTree> merge_host_paths(const std::vector<HostPath>& paths);

/// Branch forest leaving the source host's switch that reaches every host
/// in `dests` via `routing`'s unicast paths (the source itself is skipped
/// if present). Throws std::invalid_argument when no destination remains
/// or the paths do not merge into a tree.
std::vector<McastRouteTree> build_mcast_branches(const UpDownRouting& routing,
                                                 HostId src,
                                                 const std::vector<HostId>& dests);

}  // namespace wormcast
