// A cancellable discrete-event queue ordered by (time, insertion sequence).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/types.h"

namespace wormcast {

/// Handle returned by EventQueue::schedule; can be used to cancel the event.
/// Value-semantic and cheap to copy. A default-constructed handle is invalid.
class EventHandle {
 public:
  EventHandle() = default;
  [[nodiscard]] bool valid() const { return seq_ != 0; }

 private:
  friend class EventQueue;
  explicit EventHandle(std::uint64_t seq) : seq_(seq) {}
  std::uint64_t seq_ = 0;
};

/// Min-heap of timestamped callbacks. Events at equal times fire in
/// insertion order, which makes runs fully deterministic.
///
/// Cancellation is lazy: cancelled events stay in the heap but are skipped
/// when popped. This keeps schedule O(log n) and cancel O(1) amortized.
class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedules `action` at absolute time `when`.
  EventHandle schedule(Time when, Action action);

  /// Cancels a previously scheduled event. Cancelling an already-fired or
  /// already-cancelled event is a harmless no-op.
  void cancel(EventHandle handle);

  [[nodiscard]] bool empty() const { return live_count_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_count_; }

  /// Time of the earliest live event; kTimeNever when empty.
  [[nodiscard]] Time next_time() const;

  /// Removes and returns the earliest live event. Precondition: !empty().
  struct Popped {
    Time time = 0;
    Action action;
  };
  Popped pop();

 private:
  struct Entry {
    Time time = 0;
    std::uint64_t seq = 0;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  void drop_cancelled_head();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<std::uint64_t> cancelled_;
  std::unordered_set<std::uint64_t> pending_;  // live (not yet fired) seqs
  std::size_t live_count_ = 0;
  std::uint64_t next_seq_ = 1;
};

}  // namespace wormcast
