file(REMOVE_RECURSE
  "CMakeFiles/credit_scheme_test.dir/core/credit_scheme_test.cpp.o"
  "CMakeFiles/credit_scheme_test.dir/core/credit_scheme_test.cpp.o.d"
  "credit_scheme_test"
  "credit_scheme_test.pdb"
  "credit_scheme_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/credit_scheme_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
