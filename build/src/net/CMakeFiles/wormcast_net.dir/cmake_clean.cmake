file(REMOVE_RECURSE
  "CMakeFiles/wormcast_net.dir/channel.cpp.o"
  "CMakeFiles/wormcast_net.dir/channel.cpp.o.d"
  "CMakeFiles/wormcast_net.dir/fabric.cpp.o"
  "CMakeFiles/wormcast_net.dir/fabric.cpp.o.d"
  "CMakeFiles/wormcast_net.dir/mcast_route_builder.cpp.o"
  "CMakeFiles/wormcast_net.dir/mcast_route_builder.cpp.o.d"
  "CMakeFiles/wormcast_net.dir/source_route.cpp.o"
  "CMakeFiles/wormcast_net.dir/source_route.cpp.o.d"
  "CMakeFiles/wormcast_net.dir/switch_mcast.cpp.o"
  "CMakeFiles/wormcast_net.dir/switch_mcast.cpp.o.d"
  "CMakeFiles/wormcast_net.dir/switch_mcast_engine.cpp.o"
  "CMakeFiles/wormcast_net.dir/switch_mcast_engine.cpp.o.d"
  "CMakeFiles/wormcast_net.dir/switch_rt.cpp.o"
  "CMakeFiles/wormcast_net.dir/switch_rt.cpp.o.d"
  "CMakeFiles/wormcast_net.dir/topologies.cpp.o"
  "CMakeFiles/wormcast_net.dir/topologies.cpp.o.d"
  "CMakeFiles/wormcast_net.dir/topology.cpp.o"
  "CMakeFiles/wormcast_net.dir/topology.cpp.o.d"
  "CMakeFiles/wormcast_net.dir/updown.cpp.o"
  "CMakeFiles/wormcast_net.dir/updown.cpp.o.d"
  "libwormcast_net.a"
  "libwormcast_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wormcast_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
