// The sharded in-run engine's contract (core/network.h, EngineConfig):
// at any --shards count the simulation computes bit-identical physics —
// same Summary, same byte counters, same delivery pattern — only wall
// time may move. These tests run the same small workload on the classic
// single-queue engine and on sharded engines and compare field by field,
// plus the v1 guard rails: configurations the sharded engine does not
// support yet must throw up front, not silently diverge.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/network.h"
#include "net/topologies.h"
#include "traffic/groups.h"

namespace wormcast {
namespace {

ExperimentConfig sharded_config(int shards) {
  ExperimentConfig cfg;
  cfg.engine.shards = shards;
  cfg.protocol.scheme = Scheme::kHamiltonianSF;
  cfg.traffic.offered_load = 1e-9;  // inject directly
  return cfg;
}

// A 4x4 torus with traffic crossing every shard boundary: each host
// multicasts to the all-hosts group, so worms traverse switches owned by
// different executors and the cross-executor channel path carries real
// byte/STOP-GO interaction.
Network::Summary run_all_send(int shards, std::int64_t* bytes_on_wire,
                              std::int64_t* payload_delivered) {
  Network net(make_torus(4, 4), {make_full_group(16)},
              sharded_config(shards));
  for (HostId h = 0; h < 16; ++h) {
    Demand d;
    d.src = h;
    d.multicast = true;
    d.group = 0;
    d.length = 600;
    net.inject(d);
  }
  net.run_to_quiescence();
  *bytes_on_wire = net.fabric().fabric_bytes_sent();
  *payload_delivered = net.metrics().payload_delivered();
  return net.summary();
}

TEST(ShardDeterminism, AllSendMatchesUnshardedBitForBit) {
  std::int64_t bytes1 = 0;
  std::int64_t payload1 = 0;
  const Network::Summary s1 = run_all_send(1, &bytes1, &payload1);
  ASSERT_EQ(s1.messages_completed, 16);
  ASSERT_GT(payload1, 0);
  for (const int shards : {2, 4}) {
    std::int64_t bytes = 0;
    std::int64_t payload = 0;
    const Network::Summary s = run_all_send(shards, &bytes, &payload);
    EXPECT_EQ(bytes, bytes1) << shards << " shards";
    EXPECT_EQ(payload, payload1) << shards << " shards";
    EXPECT_EQ(s.messages_completed, s1.messages_completed);
    EXPECT_EQ(s.messages, s1.messages);
    EXPECT_EQ(s.drops, s1.drops);
    EXPECT_EQ(s.nacks, s1.nacks);
    EXPECT_EQ(s.retransmits, s1.retransmits);
    EXPECT_EQ(s.outstanding, s1.outstanding);
    EXPECT_EQ(s.fabric_overflows, 0);
    EXPECT_EQ(s.mcast_samples, s1.mcast_samples);
    // Latencies are time-domain physics, not telemetry: exact match.
    EXPECT_EQ(s.mcast_latency_mean, s1.mcast_latency_mean);
    EXPECT_EQ(s.mcast_latency_p95, s1.mcast_latency_p95);
    EXPECT_EQ(s.mcast_completion_mean, s1.mcast_completion_mean);
  }
}

TEST(ShardDeterminism, MoreShardsThanSwitchesClampsAndStillMatches) {
  std::int64_t bytes1 = 0;
  std::int64_t payload1 = 0;
  const Network::Summary s1 = run_all_send(1, &bytes1, &payload1);
  // 64 executors for 16 switches: the plan clamps workers to the switch
  // count rather than creating idle executors.
  std::int64_t bytes = 0;
  std::int64_t payload = 0;
  const Network::Summary s = run_all_send(64, &bytes, &payload);
  EXPECT_EQ(bytes, bytes1);
  EXPECT_EQ(payload, payload1);
  EXPECT_EQ(s.messages_completed, s1.messages_completed);
}

TEST(ShardDeterminism, ShardsOfOneUsesClassicEngine) {
  Network net(make_torus(2, 2), {make_full_group(4)}, sharded_config(1));
  EXPECT_EQ(net.num_executors(), 1);
  EXPECT_EQ(net.engine(), nullptr);
}

TEST(ShardDeterminism, ReportsExecutorCount) {
  Network net(make_torus(4, 4), {make_full_group(16)}, sharded_config(3));
  EXPECT_EQ(net.num_executors(), 3);
  EXPECT_NE(net.engine(), nullptr);
}

TEST(ShardGuards, RejectsInvalidShardCount) {
  EXPECT_THROW(
      Network(make_torus(2, 2), {make_full_group(4)}, sharded_config(0)),
      std::invalid_argument);
}

TEST(ShardGuards, RejectsFaultInjectionUnderSharding) {
  ExperimentConfig cfg = sharded_config(2);
  cfg.faults.worm_kill_rate = 1e-6;
  cfg.protocol.ack_timeout = 50'000;
  EXPECT_THROW(Network(make_torus(2, 2), {make_full_group(4)}, cfg),
               std::logic_error);
  // The same config runs fine unsharded.
  cfg.engine.shards = 1;
  EXPECT_NO_THROW(Network(make_torus(2, 2), {make_full_group(4)}, cfg));
}

TEST(ShardGuards, RejectsLoadAwareStrategyUnderSharding) {
  ExperimentConfig cfg = sharded_config(2);
  cfg.tree.kind = TreeStrategyKind::kLoadAware;
  EXPECT_THROW(Network(make_torus(2, 2), {make_full_group(4)}, cfg),
               std::logic_error);
}

TEST(ShardGuards, RejectsRuntimeFaultEntryPoints) {
  Network net(make_torus(2, 2), {make_full_group(4)}, sharded_config(2));
  EXPECT_THROW(net.crash_host(0, 100), std::logic_error);
  EXPECT_THROW(net.fail_link(0, 100), std::logic_error);
}

// The memory-audit acceptance point: a 4k-host fabric (64x64 torus, one
// host per switch) must construct well inside 2 GiB. The capacity-based
// mem_* counters are the budget we assert on — they are deterministic,
// unlike RSS — and the LazyDeque trim (sim/lazy_deque.h) is what keeps
// the fabric term small: ~70k port/channel queues at ~600 bytes of eager
// deque chunk each used to dominate construction.
TEST(MemoryAudit, FourKHostNetworkBuildsSmall) {
  ExperimentConfig cfg;
  cfg.traffic.offered_load = 1e-9;
  std::vector<MulticastGroupSpec> groups;
  for (int g = 0; g * 8 < 64 * 64; ++g) {
    MulticastGroupSpec spec;
    spec.id = g;
    for (int m = g * 8; m < (g + 1) * 8; ++m) spec.members.push_back(m);
    groups.push_back(std::move(spec));
  }
  Network net(make_torus(64, 64), std::move(groups), cfg);
  CounterRegistry reg;
  net.register_counters(reg);
  double total = 0.0;
  double fabric = 0.0;
  for (const auto& [name, value] : reg.snapshot()) {
    if (name.rfind("mem_", 0) == 0) total += value;
    if (name == "mem_fabric_bytes") fabric = value;
  }
  EXPECT_GT(fabric, 0.0);
  // Audited subsystems stay under 256 MiB — an order of magnitude inside
  // the 2 GiB budget, with slack for the unaudited remainder (object
  // shells, closures, strings) which the RSS probe puts at ~2x.
  EXPECT_LT(total, 256.0 * 1024 * 1024);
  // The fabric term specifically: ~2.1 KiB per channel direction and
  // ~1.3 KiB per switch, not the ~16 KiB per node the eager queues cost.
  EXPECT_LT(fabric, 32.0 * 1024 * 1024);
}

}  // namespace
}  // namespace wormcast