// Ablation E: the paper's optimistic reservation vs the [VLB96]
// centralized credit scheme (Section 1's related-work comparison).
//
// The paper's claims to verify: the credit scheme pays a request/grant
// round trip on every multicast (higher latency, especially at light
// load), and its buffers are tied up until the gathering token returns
// them (throughput caps earlier as the token interval grows); the
// optimistic scheme acquires buffers as it goes.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "net/topologies.h"
#include "sim/random.h"
#include "traffic/groups.h"

using namespace wormcast;

namespace {

struct Point {
  double latency = 0.0;
  std::int64_t completed = 0;
  std::int64_t outstanding = 0;
};

Point run_case(Scheme scheme, double load, Time token_interval,
               Time warmup, Time measure) {
  RandomStream grng(501);
  auto groups = make_random_groups(4, 6, 16, grng);
  ExperimentConfig cfg;
  cfg.protocol.scheme = scheme;
  cfg.protocol.max_tree_fanout = 2;  // binary trees, as [VLB96] uses
  cfg.protocol.token_interval = token_interval;
  cfg.protocol.credits_per_host = 4;
  cfg.protocol.pool_bytes = 4 * 2 * 9 * 1024;
  cfg.traffic.offered_load = load;
  cfg.traffic.multicast_fraction = 0.3;
  Network net(make_torus(4, 4), std::move(groups), cfg);
  net.run(warmup, measure, /*drain_cap=*/1'500'000);
  Point out;
  out.latency = net.summary().mcast_latency_mean;
  out.completed = net.metrics().messages_completed();
  out.outstanding = net.summary().outstanding;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const Time warmup = quick ? 10'000 : 30'000;
  const Time measure = quick ? 60'000 : 200'000;

  std::printf("# Ablation E: optimistic reservation (tree, serialized) vs "
              "[VLB96] centralized credits; 4 groups x 6 members, 4x4 "
              "torus, binary trees\n");
  bench::print_header("offered_load",
                      {"optimistic_lat", "credit_tok2k_lat",
                       "credit_tok10k_lat", "credit_tok40k_lat"});
  const std::vector<double> loads =
      quick ? std::vector<double>{0.01, 0.03}
            : std::vector<double>{0.005, 0.01, 0.02, 0.03, 0.04};
  for (const double load : loads) {
    const Point opt =
        run_case(Scheme::kTreeSF, load, 2'000, warmup, measure);
    const Point c2k =
        run_case(Scheme::kCentralizedCredit, load, 2'000, warmup, measure);
    const Point c10k =
        run_case(Scheme::kCentralizedCredit, load, 10'000, warmup, measure);
    const Point c40k =
        run_case(Scheme::kCentralizedCredit, load, 40'000, warmup, measure);
    std::printf("%.3f,%.0f,%.0f,%.0f,%.0f\n", load, opt.latency, c2k.latency,
                c10k.latency, c40k.latency);
    std::fflush(stdout);
  }
  return 0;
}
