// The concrete switch-level multicast engine (Section 3).
//
// One engine instance serves the whole fabric. For every kSwitchMcast worm
// that reaches the head of a switch input port it builds a *connection*:
// one branch per output port named by the worm's encoded route (or, for a
// broadcast worm past its climb, one branch per down-link of the up/down
// spanning tree). Branches replicate the incoming byte stream in lockstep —
// the worm advances at the pace of the slowest branch, which is exactly the
// paper's "the time for all destinations is determined by the slowest
// path". Scheme behaviour:
//
//  * kIdleFill: branches hold their ports while stalled (IDLE fill).
//  * kInterrupt: when any branch is backpressured, the other branches end
//    their current *fragment* (a self-contained worm carrying the stamped
//    subroute) and release their ports; they re-acquire and resume with a
//    fresh fragment when the stall clears. Destination adapters reassemble.
//  * kFlushUnicast: as kIdleFill, but a port that has carried no data for
//    idle_flush_threshold byte-times while held by a multicast flags
//    multicast-IDLE; a unicast worm blocked on it is flushed from the
//    network and its source notified to retransmit after a random timeout.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/switch_mcast.h"
#include "net/topology.h"
#include "net/updown.h"
#include "net/worm.h"
#include "sim/arena.h"

namespace wormcast {

struct SwitchMcastConfig {
  SwitchMcastScheme scheme = SwitchMcastScheme::kIdleFill;
  /// Scheme (c): idle time after which a multicast-held port is flagged
  /// multicast-IDLE.
  Time idle_flush_threshold = 256;
  /// Scheme (b): stall-detection / fragment-reopen polling interval.
  Time interrupt_check = 64;
};

class SwitchMcastEngine final : public McastEngine {
 public:
  SwitchMcastEngine(Simulator& sim, const Topology& topo,
                    const UpDownRouting& routing,
                    SwitchMcastConfig config = SwitchMcastConfig());
  ~SwitchMcastEngine() override;
  SwitchMcastEngine(const SwitchMcastEngine&) = delete;
  SwitchMcastEngine& operator=(const SwitchMcastEngine&) = delete;

  void start(InPort& in) override;
  void on_input_bytes(InPort& in) override;
  bool maybe_flush_unicast(SwitchRt& sw, InPort& in, PortId out) override;

  /// Called when a unicast worm is flushed (scheme (c)); the host side
  /// schedules the retransmission.
  using FlushHandler = std::function<void(const WormPtr&)>;
  void set_flush_handler(FlushHandler handler) { flush_handler_ = std::move(handler); }

  /// Points the engine at the network's shared worm arena so per-switch
  /// fragment worms recycle instead of allocating; optional (tests).
  void set_worm_pool(RecyclePool<Worm>* pool) { worm_pool_ = pool; }

  [[nodiscard]] std::int64_t connections_opened() const { return connections_; }
  [[nodiscard]] std::int64_t fragments_sent() const { return fragments_; }
  [[nodiscard]] std::int64_t unicasts_flushed() const { return flushed_; }

 private:
  struct Conn;
  class BranchFeed;
  struct Branch;

  void open_fragment(Conn& conn, std::size_t idx);
  void claim_complete(Conn& conn, std::size_t idx);
  void close_fragment(Conn& conn, std::size_t idx);
  void branch_tail_sent(Conn& conn, std::size_t idx);
  [[nodiscard]] bool branch_byte_available(const Conn& conn, std::size_t idx) const;
  TxByte branch_take(Conn& conn, std::size_t idx);
  void after_body_take(Conn& conn);
  void consume_prefix(Conn& conn);
  void kick_all(Conn& conn);
  void periodic_check(InPort* key);
  void watch_for_flush(SwitchRt* sw, InPort* in, PortId out);
  void finish(Conn& conn);
  [[nodiscard]] std::int64_t min_body_taken(const Conn& conn) const;
  [[nodiscard]] bool any_branch_stopped(const Conn& conn) const;

  Simulator& sim_;
  const Topology& topo_;
  const UpDownRouting& routing_;
  SwitchMcastConfig config_;
  FlushHandler flush_handler_;
  RecyclePool<Worm>* worm_pool_ = nullptr;  // Network-owned; may be null
  std::unordered_map<InPort*, std::unique_ptr<Conn>> conns_;
  std::int64_t connections_ = 0;
  std::int64_t fragments_ = 0;
  std::int64_t flushed_ = 0;
};

}  // namespace wormcast
