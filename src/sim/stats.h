// Statistics accumulators used by the metric collectors.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "sim/types.h"

namespace wormcast {

/// Streaming mean/variance/min/max (Welford).
class RunningStat {
 public:
  void add(double x);

  [[nodiscard]] std::int64_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }

  /// Merges another accumulator into this one.
  void merge(const RunningStat& other);

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Sample reservoir that also supports exact percentiles (keeps all samples;
/// fine for per-run latency collections of <= a few hundred thousand values).
class SampleSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
    stat_.add(x);
  }

  [[nodiscard]] const RunningStat& stat() const { return stat_; }
  [[nodiscard]] std::int64_t count() const { return stat_.count(); }
  [[nodiscard]] double mean() const { return stat_.mean(); }

  /// Exact percentile; `p` is clamped to [0,100]. 0 when empty.
  [[nodiscard]] double percentile(double p) const;

  /// All samples in ascending order (the equivalence suite compares whole
  /// sample streams, not just their moments). Sorts in place at most once
  /// per batch of add()s — repeated calls return the cached sorted vector.
  [[nodiscard]] const std::vector<double>& sorted_values() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
    return samples_;
  }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  RunningStat stat_;
};

/// Counts events per unit time over a measurement window.
class RateMeter {
 public:
  void start_window(Time now) {
    window_start_ = now;
    total_ = 0;
  }
  void add(std::int64_t amount = 1) { total_ += amount; }

  [[nodiscard]] std::int64_t total() const { return total_; }
  /// Events per byte-time over [window_start, now].
  [[nodiscard]] double rate(Time now) const {
    const Time span = now - window_start_;
    return span > 0 ? static_cast<double>(total_) / static_cast<double>(span) : 0.0;
  }

 private:
  Time window_start_ = 0;
  std::int64_t total_ = 0;
};

}  // namespace wormcast
