file(REMOVE_RECURSE
  "CMakeFiles/cluster_barrier.dir/cluster_barrier.cpp.o"
  "CMakeFiles/cluster_barrier.dir/cluster_barrier.cpp.o.d"
  "cluster_barrier"
  "cluster_barrier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cluster_barrier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
