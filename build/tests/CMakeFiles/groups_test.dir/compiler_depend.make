# Empty compiler generated dependencies file for groups_test.
# This may be replaced when dependencies are built.
