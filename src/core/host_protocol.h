// Per-host multicast protocol engine (the paper's contribution,
// Sections 4-6), implemented as the policy client of a HostAdapter.
//
// Responsibilities:
//  * originate unicast and multicast messages handed down by the
//    application / traffic generator;
//  * run the selected multicast structure (repeated unicast, Hamiltonian
//    circuit, rooted tree) hop by hop;
//  * implicit buffer reservation: accept + ACK when the forwarding pool has
//    room for the whole worm, drop + NACK otherwise (Figure 5), with
//    retransmission after a back-off;
//  * two-buffer-class allocation so reservation waits cannot cycle
//    (Figure 7);
//  * optional total ordering by serializing through the lowest-ID member /
//    root, with per-successor in-order forwarding.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "adapter/buffer_pool.h"
#include "adapter/host_adapter.h"
#include "core/dedup_window.h"
#include "core/group_tables.h"
#include "core/metrics.h"
#include "core/protocol_config.h"
#include "net/updown.h"
#include "net/worm.h"
#include "sim/arena.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "traffic/generator.h"

namespace wormcast {

class HostProtocol final : public AdapterClient {
 public:
  HostProtocol(Simulator& sim, HostAdapter& adapter, const UpDownRouting& routing,
               const GroupTables& tables, Metrics& metrics,
               const ProtocolConfig& config, RandomStream rng, int n_hosts);
  HostProtocol(const HostProtocol&) = delete;
  HostProtocol& operator=(const HostProtocol&) = delete;

  /// Application entry point: send a unicast or multicast message.
  void originate(const Demand& demand);

  /// A unicast this host sent was flushed by a multicast-IDLE port
  /// (switch-level scheme (c)); retransmit a fresh copy after a random
  /// timeout, as the paper prescribes.
  void on_unicast_flushed(const WormPtr& worm);

  // --- failure detection & repair (crash-stop model) -------------------------

  /// Crash-stop this host: it stops originating, forwarding, ACKing and
  /// probing, drops its queued transmissions (the worm already on the wire
  /// finishes — committed DMA) and releases every buffer it held. Nothing
  /// ever resurrects it.
  void on_crash();
  [[nodiscard]] bool crashed() const { return dead_; }

  /// Called when this host suspects `suspect` has crash-stopped; the
  /// network disseminates the death and repairs the shared group tables.
  void set_failure_listener(std::function<void(HostId)> listener) {
    failure_listener_ = std::move(listener);
  }

  /// The network declared `dead` crashed and already repaired the group
  /// tables. Rescue this host's in-flight sends: every unresolved send
  /// addressed to the dead peer is retargeted along the repaired structure
  /// (circuit successor past the splice, new tree parent, adopted
  /// children), resolved when the structure ends there, and retransmitted
  /// through the PR-1 retry machinery.
  void on_peer_removed(HostId dead,
                       const std::vector<GroupTables::Reattachment>& adopted);

  // --- membership churn (join/leave/rejoin) ----------------------------------

  /// The network spliced this host into group `g`. Sets the delivery view
  /// floor — messages created before the join are forwarded but never
  /// delivered here (this host was not one of their destinations) — and, on
  /// a rejoin, opens a fresh dedup epoch for the group so a rejoin with
  /// recycled worm IDs is not silently swallowed as a duplicate.
  void on_self_joined(GroupId g, bool rejoin);

  /// The network spliced this host out of group `g` (voluntary leave, not a
  /// failure). In-flight forwarding duties still complete; pending local
  /// deliveries for the group are cancelled (the accounting already stopped
  /// counting this host as a destination).
  void on_self_left(GroupId g);

  /// Another host joined group `g`. Patches the hop budget of this host's
  /// unresolved circuit sends whose remaining window now spans the joiner
  /// (the splice added one stop), so the circuit tail is not starved.
  void on_member_joined(GroupId g, HostId joiner);

  /// Another host voluntarily left group `g`; the shared tables are already
  /// repaired. Like on_peer_removed but scoped to one group and without
  /// declaring the leaver dead: sends aimed at it are retargeted along the
  /// repaired structure, nothing is purged, no suspicion state burns.
  void on_member_left(HostId leaver, GroupId g,
                      const std::vector<GroupTables::Reattachment>& adopted);

  /// Points the protocol at the network's shared worm arena (sim/arena.h);
  /// without one (unit tests building protocols directly) worms fall back
  /// to plain make_shared.
  void set_worm_pool(RecyclePool<Worm>* pool) { worm_pool_ = pool; }

  [[nodiscard]] HostId host() const { return host_; }
  [[nodiscard]] const BufferPool& pool() const { return pool_; }
  /// Forwarding tasks currently holding buffer space.
  [[nodiscard]] std::size_t active_tasks() const { return tasks_.size(); }

  // AdapterClient.
  RxDecision on_rx_head(const WormPtr& worm,
                        const std::shared_ptr<RxProgress>& rx) override;
  void on_rx_complete(const WormPtr& worm, std::int64_t payload_bytes) override;
  void on_tx_done(const WormPtr& worm) override;
  void on_rx_truncated(const WormPtr& worm) override;

  /// Snapshot of this host's recovery-relevant state, for the watchdog's
  /// stall diagnostics and for tests that need to observe in-flight sends.
  struct SendDebug {
    HostId to = kNoHost;
    bool started = false;
    bool acked = false;
    bool failed = false;
    int attempts = 0;
  };
  struct TaskDebug {
    std::uint64_t message_id = 0;
    HostId origin = kNoHost;
    GroupId group = kNoGroup;
    std::int64_t reserved = 0;
    bool rx_complete = false;
    bool delivered = false;
    bool originator = false;
    std::vector<SendDebug> sends;
  };
  struct DebugSnapshot {
    std::vector<TaskDebug> tasks;  // forwarding + originator, by message id
    std::int64_t pool_used = 0;
    std::vector<std::uint64_t> ack_wait_keys;  // sorted
  };
  [[nodiscard]] DebugSnapshot debug_snapshot() const;

 private:
  /// One message being held at this adapter for forwarding: the reservation
  /// plus the list of successors still to be sent / acknowledged.
  struct Task {
    std::shared_ptr<MessageContext> ctx;
    GroupId group = kNoGroup;
    std::uint64_t message_id = 0;
    HostId origin = kNoHost;
    std::int64_t payload = 0;
    std::int64_t seq = -1;
    int hops_remaining = 0;  // circuit hop budget of the *received* copy
    std::shared_ptr<RxProgress> rx;  // reception progress (cut-through)
    int cls = 0;
    std::int64_t reserved = 0;  // pool bytes held (0 for originator tasks)
    /// Successor sends: target plus the header to stamp on the copy.
    struct Send {
      HostId to = kNoHost;
      McastHeader header;
      bool started = false;
      bool acked = false;
      bool failed = false;       // gave up after max_attempts
      bool retry_pending = false;  // a back-off retransmission is scheduled
      int attempts = 0;  // NACKed / timed-out tries (drives the back-off)
      EventHandle timer;  // ACK timeout (recovery mode only)
      Time first_tx = kTimeNever;  // first transmission (suspicion clock)
    };
    std::vector<Send> sends;
    bool delivered = false;    // local delivery (or none needed) finished
    bool rx_complete = false;  // full worm present at this adapter
    bool originator = false;   // task created by originate(), holds no pool
    bool aborted = false;      // torn down (truncated reception)
  };
  using TaskPtr = std::shared_ptr<Task>;

  /// All worm construction funnels through here so the arena can recycle.
  [[nodiscard]] WormPtr new_worm() const {
    return worm_pool_ != nullptr ? worm_pool_->make()
                                 : std::make_shared<Worm>();
  }

  void originate_unicast(const Demand& d);
  void originate_multicast(const Demand& d);

  /// Builds the successor list + headers for a multicast copy arriving at
  /// (or originated by) this host. `from` is the previous hop (kNoHost at
  /// the originator / serializer start).
  [[nodiscard]] std::vector<Task::Send> plan_successors(
      GroupId group, HostId origin, std::uint64_t message_id, std::int64_t seq,
      int hops_remaining, int incoming_class, bool at_serializer, HostId from) const;

  /// Serializer (lowest-ID member / root) starts the multicast proper.
  void start_serialized(const TaskPtr& task);

  void launch_sends(const TaskPtr& task, bool allow_cut_through);
  void issue_send(const TaskPtr& task, Task::Send& send, bool cut_through);
  void retransmit_later(const TaskPtr& task, std::size_t send_index);
  void maybe_release(const TaskPtr& task);

  // --- end-to-end loss recovery (ack_timeout > 0) ----------------------------
  /// Recovery changes the ACK protocol (ACK on full reception instead of on
  /// the head) so it is only meaningful with reservations on.
  [[nodiscard]] bool recovery_enabled() const {
    return config_.reservation && config_.ack_timeout > 0;
  }
  void arm_ack_timer(const TaskPtr& task, std::size_t send_index);
  void on_ack_timeout(const TaskPtr& task, std::size_t send_index);
  /// Gives up on a send (max_attempts exhausted): releases its claim on the
  /// window, abandons the message in the metrics, and lets the task drain.
  void fail_send(const TaskPtr& task, std::size_t send_index);
  /// Tears down a forwarding task whose reception was truncated: cancels
  /// timers, releases the reservation, frees its window slots.
  void abort_task(const TaskPtr& task);
  /// Duplicate-suppression memory of completed receptions.
  [[nodiscard]] static std::uint64_t dedup_key(std::uint64_t message_id,
                                               bool relay_phase) {
    return message_id * 2 + (relay_phase ? 1 : 0);
  }
  void remember_done(GroupId g, std::uint64_t key);
  /// The group's dedup window, created on first use. Per-group so a rejoin
  /// epoch reset cannot forget another group's duplicate memory.
  [[nodiscard]] DedupWindow& dedup_for(GroupId g);

  WormPtr make_data_worm(const TaskPtr& task, const Task::Send& send) const;
  WormPtr make_control_worm(WormKind kind, const WormPtr& data_worm) const;

  // --- failure detector (suspicion_timeout > 0) ------------------------------
  /// The detector piggybacks on recovery: a peer is suspected when it stays
  /// silent past the suspicion timeout despite the ACK-timeout retries, or
  /// when it ignores explicit probes while no send would expose it.
  [[nodiscard]] bool suspicion_enabled() const {
    return recovery_enabled() && config_.suspicion_timeout > 0;
  }
  [[nodiscard]] Time probe_interval() const {
    return config_.probe_interval > 0
               ? config_.probe_interval
               : std::max<Time>(1, config_.suspicion_timeout / 4);
  }
  /// Any worm from `peer` proves it was alive when it sent.
  [[nodiscard]] bool peer_silent(HostId peer) const;
  void note_heard(HostId peer);
  void maybe_arm_prober();
  void probe_tick();
  /// Protocol neighbours (circuit successor; tree parent and children) in
  /// every group this host belongs to, minus already-removed peers.
  [[nodiscard]] std::vector<HostId> probe_targets() const;
  WormPtr make_probe_worm(HostId dst, WormKind kind) const;

  /// Retargets/resolves every unresolved send of one task that addresses
  /// the (spliced-out) dead peer; appends sends for tree children adopted
  /// during the repair; dispatches what became ready.
  void repair_task_sends(const TaskPtr& task, HostId dead,
                         const std::vector<GroupTables::Reattachment>& adopted);
  /// Starts a not-yet-started send through the ordered window when total
  /// ordering demands it, directly otherwise (repair-path dispatch).
  void dispatch_send(const TaskPtr& task, std::size_t send_index);

  [[nodiscard]] bool is_confirmation(const McastHeader& h) const;
  void deliver_locally(const TaskPtr& task);
  void handle_ack(const WormPtr& worm);
  void handle_nack(const WormPtr& worm);
  void handle_mcast_data(const WormPtr& worm);

  /// Ordered-forwarding window (total ordering): at most one un-ACKed send
  /// per (group, successor); later sends queue behind it.
  [[nodiscard]] std::uint64_t window_key(GroupId g, HostId to) const;
  void window_push(const TaskPtr& task, std::size_t send_index, bool cut_through);
  void window_advance(GroupId g, HostId to);

  Simulator& sim_;
  HostAdapter& adapter_;
  const UpDownRouting& routing_;
  const GroupTables& tables_;
  Metrics& metrics_;
  ProtocolConfig config_;
  RandomStream rng_;
  HostId host_;
  BufferPool pool_;
  RecyclePool<Worm>* worm_pool_ = nullptr;  // Network-owned; may be null

  /// True when the scheme delivers in a globally agreed order (trees are
  /// root-serialized by construction; the circuit when total_ordering).
  [[nodiscard]] bool serialized_scheme() const {
    if (config_.scheme == Scheme::kTreeSF || config_.scheme == Scheme::kTreeCT)
      return true;
    return scheme_uses_circuit(config_.scheme) && config_.total_ordering;
  }

  /// Forwarding tasks by message id (at most one per message: each member
  /// appears once in the circuit/tree).
  std::unordered_map<std::uint64_t, TaskPtr> tasks_;
  /// Originator tasks by message id (kept separate: with serialization the
  /// origin may later also hold a forwarding task for the same message).
  std::unordered_map<std::uint64_t, TaskPtr> origin_tasks_;
  /// Sends awaiting ACK (or transmit completion when reservation is off),
  /// keyed by (message id, successor).
  std::unordered_map<std::uint64_t, TaskPtr> ack_wait_;
  /// Per-group sequence counter (only advanced at the serializer).
  std::unordered_map<GroupId, std::int64_t> seq_counters_;
  /// Ordered-forwarding queues (total ordering only).
  struct WindowEntry {
    TaskPtr task;
    std::size_t send_index = 0;
    bool cut_through = false;
  };
  std::unordered_map<std::uint64_t, std::deque<WindowEntry>> windows_;
  std::unordered_map<std::uint64_t, bool> window_busy_;
  /// Switch-level multicast reassembly: payload bytes received so far per
  /// message (scheme (b) delivers a message as several fragments).
  std::unordered_map<std::uint64_t, std::int64_t> switch_mcast_rx_;
  /// Recovery-mode dedup memory: keys of fully received (message, phase)
  /// pairs, bounded to config_.dedup_window entries per group. A duplicate
  /// of a remembered key is re-ACKed (its ACK was evidently lost), never
  /// re-delivered or re-forwarded. Per-group so a rejoin resets only its
  /// own group's epoch (see dedup_for / on_self_joined).
  std::unordered_map<GroupId, DedupWindow> done_;

  /// Per-group delivery view floor: messages created before this host's
  /// join time are forwarded but never delivered locally (the destination
  /// count was fixed at creation, before this host was a member).
  std::unordered_map<GroupId, Time> view_floor_;

  // --- failure detection state ----------------------------------------------
  bool dead_ = false;  // crash-stopped
  std::function<void(HostId)> failure_listener_;
  /// Peers declared dead by the network; sends are never aimed at them.
  std::unordered_set<HostId> removed_peers_;
  /// Last time any worm from a peer arrived here (suspicion clocks).
  std::unordered_map<HostId, Time> last_heard_;
  /// Unanswered-probe clock per peer; erased whenever the peer is heard.
  /// `first` anchors the suspicion maturity deadline, `last` proves the
  /// probing was continuous: a gap (prober dormant, or the peer churned
  /// out of and back into the neighbor set) restarts the clock, so an
  /// ancient pending probe can never mature into an instant accusation.
  struct ProbeClock {
    Time first = 0;
    Time last = 0;
  };
  std::unordered_map<HostId, ProbeClock> probe_sent_;
  bool prober_armed_ = false;

  // --- [VLB96] centralized credit scheme ------------------------------------
  void begin_serialized_dispatch(const TaskPtr& task);
  void handle_credit_op(const WormPtr& worm);
  void apply_grant(const TaskPtr& task, std::int64_t seq);
  void try_credit_grants();
  [[nodiscard]] std::vector<HostId> credit_slots_needed(GroupId group,
                                                        HostId origin) const;
  void emit_token();
  void forward_token(const WormPtr& token);
  WormPtr make_credit_worm(CreditOp op, HostId dst, GroupId group,
                           std::uint64_t message_id, std::int64_t seq) const;

  /// Manager-side state (allocated only on the credit-manager host).
  struct CreditManager {
    std::vector<std::int64_t> credits;  // manager's view, per host
    struct Pending {
      std::uint64_t message_id = 0;
      GroupId group = kNoGroup;
      HostId origin = kNoHost;
    };
    std::deque<Pending> pending;  // FIFO: grants are sequenced
  };
  std::unique_ptr<CreditManager> credit_mgr_;
  std::int64_t freed_credits_ = 0;  // returned by the next token visit
  bool token_active_ = false;       // a token is scheduled or circulating
  int n_hosts_ = 0;

  /// Starts token circulation if credits are outstanding or requests wait
  /// (and stops the simulation from idling when there is nothing to do).
  void maybe_start_token();
};

}  // namespace wormcast
