// The [VLB96] centralized credit scheme (the related work the paper
// contrasts its optimistic reservation against, Section 1): correctness,
// total ordering from sequenced grants, guaranteed buffer acceptance (no
// NACKs), and credit replenishment through the gathering token.
#include <gtest/gtest.h>

#include "core/network.h"
#include "net/topologies.h"

namespace wormcast {
namespace {

ExperimentConfig credit_cfg() {
  ExperimentConfig cfg;
  cfg.protocol.scheme = Scheme::kCentralizedCredit;
  cfg.protocol.max_tree_fanout = 2;  // [VLB96] uses binary trees
  cfg.protocol.token_interval = 2'000;
  cfg.protocol.credits_per_host = 4;
  // Pool sized so that credits_per_host worms always fit.
  cfg.protocol.pool_bytes = 4 * 2 * 9 * 1024;
  return cfg;
}

TEST(CreditScheme, SingleMulticastCompletes) {
  MulticastGroupSpec g{0, {0, 2, 4, 6}};
  Network net(make_torus(3, 3), {g}, credit_cfg());
  Demand d;
  d.src = 4;
  d.multicast = true;
  d.group = 0;
  d.length = 512;
  net.inject(d);
  net.run_until(500'000);
  EXPECT_EQ(net.metrics().messages_completed(), 1);
  for (const HostId m : g.members) {
    if (m == 4) continue;
    EXPECT_EQ(net.adapter(m).payload_bytes_received(), 512) << "member " << m;
  }
}

TEST(CreditScheme, ManagerOriginatedMulticastCompletes) {
  MulticastGroupSpec g{0, {0, 1, 2, 3}};
  Network net(make_star(4), {g}, credit_cfg());
  Demand d;
  d.src = 0;  // the manager itself
  d.multicast = true;
  d.group = 0;
  d.length = 256;
  net.inject(d);
  net.run_until(500'000);
  EXPECT_EQ(net.metrics().messages_completed(), 1);
}

TEST(CreditScheme, NeverNacksBecauseBuffersAreGuaranteed) {
  MulticastGroupSpec g{0, {0, 1, 2, 3, 4, 5}};
  Network net(make_torus(3, 3), {g}, credit_cfg());
  for (int i = 0; i < 20; ++i) {
    Demand d;
    d.src = static_cast<HostId>(i % 6);
    d.multicast = true;
    d.group = 0;
    d.length = 400;
    net.inject(d);
  }
  net.run_until(3'000'000);
  EXPECT_EQ(net.metrics().messages_completed(), 20);
  EXPECT_EQ(net.metrics().nacks(), 0);
  EXPECT_EQ(net.metrics().retransmits(), 0);
}

TEST(CreditScheme, DeliveryIsTotallyOrdered) {
  const std::vector<HostId> members{0, 1, 2, 3, 4, 5, 6, 7};
  MulticastGroupSpec g{0, members};
  Network net(make_torus(3, 3), {g}, credit_cfg());
  for (int i = 0; i < 16; ++i) {
    const Time when = 1 + 700 * i;
    net.sim().at(when, [&net, i] {
      Demand d;
      d.src = static_cast<HostId>((3 * i) % 8);
      d.multicast = true;
      d.group = 0;
      d.length = 300;
      net.inject(d);
    });
  }
  net.run_until(4'000'000);
  EXPECT_EQ(net.metrics().outstanding(), 0);
  // All pairs agree on the order of commonly received messages.
  for (HostId a = 0; a < 8; ++a) {
    const auto* oa = net.metrics().order_of(a, 0);
    if (oa == nullptr) continue;
    for (HostId b = a + 1; b < 8; ++b) {
      const auto* ob = net.metrics().order_of(b, 0);
      if (ob == nullptr) continue;
      auto common = [](const std::vector<std::uint64_t>& xs,
                       const std::vector<std::uint64_t>& ys) {
        std::vector<std::uint64_t> out;
        for (const auto id : xs)
          if (std::find(ys.begin(), ys.end(), id) != ys.end())
            out.push_back(id);
        return out;
      };
      EXPECT_EQ(common(*oa, *ob), common(*ob, *oa))
          << "hosts " << a << "/" << b;
    }
  }
}

TEST(CreditScheme, TokenReplenishesExhaustedCredits) {
  // More concurrent multicasts than the credit pool can cover: later ones
  // must wait for the token to return freed credits, yet all complete.
  ExperimentConfig cfg = credit_cfg();
  cfg.protocol.credits_per_host = 1;  // one slot per host
  MulticastGroupSpec g{0, {0, 1, 2, 3}};
  Network net(make_star(4), {g}, cfg);
  for (int i = 0; i < 8; ++i) {
    Demand d;
    d.src = static_cast<HostId>(i % 4);
    d.multicast = true;
    d.group = 0;
    d.length = 400;
    net.inject(d);
  }
  net.run_until(5'000'000);
  EXPECT_EQ(net.metrics().messages_completed(), 8);
  EXPECT_EQ(net.metrics().outstanding(), 0);
}

TEST(CreditScheme, RequestRoundTripAddsLatencyVersusOptimistic) {
  // The paper's criticism: "the latency is increased by the credit request
  // mechanism". One identical multicast under the credit scheme vs the
  // optimistic tree with the same structure.
  MulticastGroupSpec g{0, {0, 2, 4, 6}};
  auto run = [&](Scheme scheme) {
    ExperimentConfig cfg = credit_cfg();
    cfg.protocol.scheme = scheme;
    Network net(make_torus(3, 3), {g}, cfg);
    Demand d;
    d.src = 4;
    d.multicast = true;
    d.group = 0;
    d.length = 512;
    net.inject(d);
    net.run_until(500'000);
    return net.metrics().mcast_completion().mean();
  };
  const double credit = run(Scheme::kCentralizedCredit);
  const double optimistic = run(Scheme::kTreeSF);
  EXPECT_GT(credit, optimistic);
}

}  // namespace
}  // namespace wormcast
