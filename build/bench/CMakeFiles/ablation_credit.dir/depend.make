# Empty dependencies file for ablation_credit.
# This may be replaced when dependencies are built.
