#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace wormcast {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(30, [&] { fired.push_back(3); });
  q.schedule(10, [&] { fired.push_back(1); });
  q.schedule(20, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) q.schedule(5, [&fired, i] { fired.push_back(i); });
  while (!q.empty()) q.pop().action();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NextTimeReportsEarliestLiveEvent) {
  EventQueue q;
  EXPECT_EQ(q.next_time(), kTimeNever);
  auto h = q.schedule(7, [] {});
  q.schedule(9, [] {});
  EXPECT_EQ(q.next_time(), 7);
  q.cancel(h);
  EXPECT_EQ(q.next_time(), 9);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  auto h = q.schedule(1, [&] { ran = true; });
  q.cancel(h);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceIsHarmless) {
  EventQueue q;
  auto h = q.schedule(1, [] {});
  q.cancel(h);
  q.cancel(h);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelAfterFireIsHarmless) {
  EventQueue q;
  auto h = q.schedule(1, [] {});
  q.pop().action();
  q.cancel(h);  // must not corrupt later events
  bool ran = false;
  q.schedule(2, [&] { ran = true; });
  q.pop().action();
  EXPECT_TRUE(ran);
}

TEST(EventQueue, DefaultHandleIsInvalidAndIgnored) {
  EventQueue q;
  EventHandle h;
  EXPECT_FALSE(h.valid());
  q.cancel(h);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SizeCountsLiveEventsOnly) {
  EventQueue q;
  auto a = q.schedule(1, [] {});
  q.schedule(2, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, InterleavedCancelAndPop) {
  EventQueue q;
  std::vector<int> fired;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 100; ++i)
    handles.push_back(q.schedule(i, [&fired, i] { fired.push_back(i); }));
  for (int i = 0; i < 100; i += 2) q.cancel(handles[static_cast<std::size_t>(i)]);
  while (!q.empty()) q.pop().action();
  ASSERT_EQ(fired.size(), 50u);
  for (std::size_t i = 0; i < fired.size(); ++i)
    EXPECT_EQ(fired[i], static_cast<int>(2 * i + 1));
}

TEST(EventQueue, StaleHandleAfterSlotReuseIsIgnored) {
  EventQueue q;
  // Fire an event, then schedule a new one: the new event reuses the old
  // slot (LIFO free list), so the stale handle must not be able to kill it.
  auto stale = q.schedule(1, [] {});
  q.pop().action();
  bool ran = false;
  q.schedule(2, [&] { ran = true; });
  q.cancel(stale);
  ASSERT_FALSE(q.empty());
  q.pop().action();
  EXPECT_TRUE(ran);
}

TEST(EventQueue, StaleHandleAfterCancelAndReuseIsIgnored) {
  EventQueue q;
  auto stale = q.schedule(1, [] {});
  q.cancel(stale);
  bool ran = false;
  q.schedule(2, [&] { ran = true; });
  q.cancel(stale);  // slot was reused by the new event; must be a no-op
  ASSERT_EQ(q.size(), 1u);
  q.pop().action();
  EXPECT_TRUE(ran);
}

TEST(EventQueue, MassCancellationCompactsHeap) {
  EventQueue q;
  std::vector<EventHandle> handles;
  // One far-future survivor keeps the heap head live while thousands of
  // nearer timers get cancelled (the retransmit-timer pattern).
  bool survivor_ran = false;
  q.schedule(1'000'000, [&] { survivor_ran = true; });
  for (int i = 0; i < 4096; ++i)
    handles.push_back(q.schedule(100 + i, [] {}));
  for (auto& h : handles) q.cancel(h);
  // Compaction bounds parked dead entries to at most half the heap.
  EXPECT_LE(q.cancelled_in_heap() * 2, q.size() + q.cancelled_in_heap());
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.next_time(), 1'000'000);
  q.pop().action();
  EXPECT_TRUE(survivor_ran);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, PeakSizeTracksHighWaterMark) {
  EventQueue q;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 64; ++i) handles.push_back(q.schedule(i, [] {}));
  for (int i = 0; i < 32; ++i) q.pop().action();
  EXPECT_EQ(q.peak_size(), 64u);
  q.schedule(1000, [] {});
  EXPECT_EQ(q.peak_size(), 64u);  // never reached 65 live at once
}

// Regression: a cancelled entry parked mid-heap must stay dead even after
// its slot is reused by a newer event. Without a generation check on the
// heap entry, the stale entry pops as if live (firing a cancelled action)
// and retires the reused slot, silently dropping the newer event.
TEST(EventQueue, ParkedCancelledEntrySurvivesSlotReuse) {
  EventQueue q;
  bool cancelled_ran = false;
  bool replacement_ran = false;
  q.schedule(5, [] {});  // live head keeps the cancelled entry parked
  auto doomed = q.schedule(10, [&] { cancelled_ran = true; });
  q.cancel(doomed);  // not the head: entry stays in the heap
  // Reuses the slot just freed by the cancel.
  q.schedule(20, [&] { replacement_ran = true; });
  EXPECT_EQ(q.size(), 2u);
  while (!q.empty()) q.pop().action();
  EXPECT_FALSE(cancelled_ran);
  EXPECT_TRUE(replacement_ran);
}

TEST(EventQueue, NextTimeIsStableAcrossRepeatedCalls) {
  EventQueue q;
  auto a = q.schedule(5, [] {});
  q.schedule(8, [] {});
  q.cancel(a);
  // next_time() is a pure read; calling it many times must not change state.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(q.next_time(), 8);
  EXPECT_EQ(q.size(), 1u);
}

}  // namespace
}  // namespace wormcast
