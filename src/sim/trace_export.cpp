#include "sim/trace_export.h"

#include <cinttypes>
#include <cstdio>
#include <map>
#include <sstream>
#include <utility>

namespace wormcast {

namespace {

/// Does `type` open a span, and if so which type closes it?
bool span_open(TraceEventType type, TraceEventType* closer) {
  switch (type) {
    case TraceEventType::kChanHead:
      *closer = TraceEventType::kChanTail;
      return true;
    case TraceEventType::kAdpTxStart:
      *closer = TraceEventType::kAdpTxDone;
      return true;
    case TraceEventType::kAdpRxHead:
      *closer = TraceEventType::kAdpRxDone;
      return true;
    case TraceEventType::kMcastStart:
      *closer = TraceEventType::kMcastFinish;
      return true;
    case TraceEventType::kMcastFragOpen:
      *closer = TraceEventType::kMcastFragClose;
      return true;
    default:
      return false;
  }
}

bool span_close(TraceEventType type) {
  return type == TraceEventType::kChanTail ||
         type == TraceEventType::kAdpTxDone ||
         type == TraceEventType::kAdpRxDone ||
         type == TraceEventType::kMcastFinish ||
         type == TraceEventType::kMcastFragClose;
}

struct TrackKey {
  TraceTrack track;
  std::int32_t node;
  std::int32_t port;
  bool operator<(const TrackKey& o) const {
    if (track != o.track) return track < o.track;
    if (node != o.node) return node < o.node;
    return port < o.port;
  }
};

std::string track_name(const TrackKey& k) {
  std::ostringstream out;
  switch (k.track) {
    case TraceTrack::kChannel:
      out << "chan " << k.node << '.' << k.port;
      break;
    case TraceTrack::kSwitchOut:
      out << "sw " << k.node << ".out" << k.port;
      break;
    case TraceTrack::kSwitchIn:
      out << "sw " << k.node << ".in" << k.port;
      break;
    case TraceTrack::kAdapter:
      out << "adapter h" << k.node;
      break;
    case TraceTrack::kHost:
      out << "host h" << k.node;
      break;
  }
  return out.str();
}

void append_event(std::string* out, const char* ph, const char* name,
                  Time ts, Time dur, int tid, const TraceEvent& e,
                  bool unterminated = false) {
  char buf[256];
  if (dur >= 0) {
    std::snprintf(buf, sizeof buf,
                  ",\n{\"name\":\"%s\",\"ph\":\"%s\",\"ts\":%lld,"
                  "\"dur\":%lld,\"pid\":0,\"tid\":%d,"
                  "\"args\":{\"worm\":%" PRIu64 ",\"arg\":%lld%s}}",
                  name, ph, static_cast<long long>(ts),
                  static_cast<long long>(dur), tid, e.worm,
                  static_cast<long long>(e.arg),
                  unterminated ? ",\"unterminated\":1" : "");
  } else {
    std::snprintf(buf, sizeof buf,
                  ",\n{\"name\":\"%s\",\"ph\":\"%s\",\"s\":\"t\",\"ts\":%lld,"
                  "\"pid\":0,\"tid\":%d,"
                  "\"args\":{\"worm\":%" PRIu64 ",\"arg\":%lld}}",
                  name, ph, static_cast<long long>(ts), tid, e.worm,
                  static_cast<long long>(e.arg));
  }
  out->append(buf);
}

}  // namespace

std::string chrome_trace_json(const std::vector<TraceEvent>& events) {
  // Stable track ids in first-appearance order.
  std::map<TrackKey, int> tids;
  const auto tid_of = [&tids](const TraceEvent& e) {
    const TrackKey key{trace_track_of(e.type), e.node, e.port};
    const auto [it, fresh] =
        tids.emplace(key, static_cast<int>(tids.size()) + 1);
    (void)fresh;
    return it->second;
  };

  std::string body;
  // Open spans keyed by (tid, worm id); value = (start time, opening event).
  std::map<std::pair<int, std::uint64_t>, std::pair<Time, TraceEvent>> open;
  Time end_t = 0;
  for (const TraceEvent& e : events) {
    end_t = std::max(end_t, e.t);
    const int tid = tid_of(e);
    TraceEventType closer;
    if (span_open(e.type, &closer)) {
      const auto key = std::make_pair(tid, e.worm);
      const auto it = open.find(key);
      if (it != open.end()) {
        // A second open without a close (the ring lost the closer): emit
        // the stale span up to now so nothing silently disappears — marked
        // unterminated, because the end time is synthetic.
        append_event(&body, "X", trace_event_name(it->second.second.type),
                     it->second.first, e.t - it->second.first, tid,
                     it->second.second, /*unterminated=*/true);
        it->second = {e.t, e};
      } else {
        open.emplace(key, std::make_pair(e.t, e));
      }
      continue;
    }
    if (span_close(e.type)) {
      const auto it = open.find(std::make_pair(tid, e.worm));
      if (it != open.end()) {
        TraceEvent span = it->second.second;
        span.arg = e.arg;  // the closer's detail (e.g. payload bytes)
        const Time dur = std::max<Time>(1, e.t - it->second.first);
        append_event(&body, "X", trace_event_name(span.type),
                     it->second.first, dur, tid, span);
        open.erase(it);
      } else {
        append_event(&body, "i", trace_event_name(e.type), e.t, -1, tid, e);
      }
      continue;
    }
    append_event(&body, "i", trace_event_name(e.type), e.t, -1, tid, e);
  }
  // Spans still open at the end of the recording: the worm was in flight
  // at the horizon. Closed at the last timestamp, flagged unterminated.
  for (const auto& [key, val] : open) {
    const Time dur = std::max<Time>(1, end_t - val.first);
    append_event(&body, "X", trace_event_name(val.second.type), val.first,
                 dur, key.first, val.second, /*unterminated=*/true);
  }

  std::string out = "{\"traceEvents\":[";
  // Track-name metadata first, so viewers label every thread.
  bool first = true;
  for (const auto& [key, tid] : tids) {
    char buf[192];
    std::snprintf(buf, sizeof buf,
                  "%s\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
                  "\"tid\":%d,\"args\":{\"name\":\"%s\"}}",
                  first ? "" : ",", tid, track_name(key).c_str());
    first = false;
    out.append(buf);
  }
  if (first && !body.empty()) body.erase(0, 1);  // no metadata: drop comma
  out.append(body);
  out.append("\n]}\n");
  return out;
}

bool write_chrome_trace(const Tracer& tracer, const std::string& path) {
  const std::string json = chrome_trace_json(tracer.snapshot());
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "wormtrace: could not write %s\n", path.c_str());
    return false;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return true;
}

std::string format_trace_line(const TraceEvent& e) {
  std::ostringstream out;
  out << "t=" << e.t << ' '
      << track_name(TrackKey{trace_track_of(e.type), e.node, e.port}) << ' '
      << trace_event_name(e.type);
  if (e.worm != 0) out << " worm=" << e.worm;
  out << " arg=" << e.arg;
  return out.str();
}

std::string format_trace_tail(const Tracer& tracer, std::size_t last_n) {
  const std::vector<TraceEvent> events = tracer.snapshot(last_n);
  if (events.empty()) return {};
  std::ostringstream out;
  out << "trace tail (last " << events.size() << " of " << tracer.recorded()
      << " recorded):\n";
  for (const TraceEvent& e : events) out << "  " << format_trace_line(e) << '\n';
  return out.str();
}

}  // namespace wormcast
