# Empty dependencies file for wormcast_adapter.
# This may be replaced when dependencies are built.
