// Shared helpers for the figure-regeneration benches.
//
// Each bench binary regenerates one figure of the paper: it sweeps the
// figure's x-axis, runs the simulator at each point, and prints the same
// series the paper plots as CSV rows (plus a human-readable header).
// Sweep points are independent simulations, so every bench accepts a
// shared --jobs N flag and executes its points on a harness::SweepRunner
// thread pool; results land in pre-sized slots, so the CSV/JSON rows are
// bit-identical no matter how many workers ran them.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/network.h"
#include "harness/sweep_runner.h"

namespace wormcast::bench {

/// Command-line arguments shared by the sweep benches.
///
///   --quick           small sweep for CI smoke tests
///   --jobs N          worker threads for sweep points (default 1)
///   --reps N          replications (seeds) per sweep point, merged with
///                     RunningStat::merge (benches that support it)
///   --trace-cap N     flight-recorder ring capacity in events (benches
///                     that trace; default Tracer::kDefaultCapacity)
///   --trace-out FILE  export Chrome trace-event JSON (benches that trace)
///   --check           run wormcheck protocol expectations over every sweep
///                     point's trace; any violation (or checker refusal)
///                     fails the run with exit 1 and a deterministic report
///   --strategy NAME   tree strategy for benches that support it
///                     (single-root | partition-merge | load-aware |
///                     multi-root); rejected here so a typo fails fast
///   --queue KIND      event-queue implementation (calendar | heap);
///                     results are bit-identical either way, only timing
///                     differs (A/B runs for the hot-path work)
///   --shards N        executors for the sharded in-run engine (benches
///                     that support it; default 1 = classic single-queue).
///                     Results are bit-identical at any shard count — the
///                     CI shard gate diffs the rows — only wall time moves
struct BenchArgs {
  bool quick = false;
  bool check = false;
  int jobs = 1;
  int reps = 1;
  int shards = 1;
  std::size_t trace_cap = Tracer::kDefaultCapacity;
  /// True when --trace-cap was passed: --check then respects the user's
  /// capacity (and refuses loudly if the ring wraps) instead of auto-sizing.
  bool trace_cap_explicit = false;
  std::string trace_out;
  TreeStrategyKind strategy = TreeStrategyKind::kSingleRoot;
  bool strategy_explicit = false;
  EventQueueKind queue = EventQueueKind::kCalendar;
  bool queue_explicit = false;
};

/// Ring capacity --check auto-sizes to when --trace-cap is not given:
/// large enough that no standard sweep point wraps (a wrapped ring makes
/// the checker refuse — absence of evidence is not evidence). The busiest
/// standard point (full fig12, 8 KB all-send) records ~2.2M events; 4M
/// slots (~160 MB per concurrently-live point) leaves headroom.
inline constexpr std::size_t kCheckTraceCapacity = std::size_t{1} << 22;

/// Parses the shared flags; prints usage and exits(2) on anything else.
inline BenchArgs parse_bench_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      args.quick = true;
    } else if (arg == "--check") {
      args.check = true;
    } else if (arg == "--jobs" && i + 1 < argc) {
      args.jobs = std::atoi(argv[++i]);
      if (args.jobs < 1) args.jobs = 1;
    } else if (arg == "--reps" && i + 1 < argc) {
      args.reps = std::atoi(argv[++i]);
      if (args.reps < 1) args.reps = 1;
    } else if (arg == "--shards" && i + 1 < argc) {
      args.shards = std::atoi(argv[++i]);
      if (args.shards < 1) args.shards = 1;
    } else if (arg == "--trace-cap" && i + 1 < argc) {
      const long long cap = std::atoll(argv[++i]);
      if (cap > 0) {
        args.trace_cap = static_cast<std::size_t>(cap);
        args.trace_cap_explicit = true;
      }
    } else if (arg == "--trace-out" && i + 1 < argc) {
      args.trace_out = argv[++i];
    } else if (arg == "--strategy" && i + 1 < argc) {
      const char* name = argv[++i];
      if (!parse_tree_strategy(name, &args.strategy)) {
        std::fprintf(stderr,
                     "unknown tree strategy '%s' (expected single-root, "
                     "partition-merge, load-aware, or multi-root)\n",
                     name);
        std::exit(2);
      }
      args.strategy_explicit = true;
    } else if (arg == "--queue" && i + 1 < argc) {
      const char* name = argv[++i];
      if (!parse_event_queue_kind(name, &args.queue)) {
        std::fprintf(stderr,
                     "unknown event queue '%s' (expected calendar or heap)\n",
                     name);
        std::exit(2);
      }
      args.queue_explicit = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--quick] [--check] [--jobs N] [--reps N] "
                   "[--shards N] [--trace-cap N] "
                   "[--trace-out <file.trace.json>] "
                   "[--strategy NAME] [--queue calendar|heap]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  if (args.check && !args.trace_cap_explicit)
    args.trace_cap = kCheckTraceCapacity;
  return args;
}

/// Prints a CSV header line: x_name,series1,series2,...
inline void print_header(const std::string& x_name,
                         const std::vector<std::string>& series) {
  std::printf("%s", x_name.c_str());
  for (const auto& s : series) std::printf(",%s", s.c_str());
  std::printf("\n");
}

/// Common experiment defaults shared by the simulation figures
/// (Section 7.1): geometric worm lengths with mean 400 bytes.
inline ExperimentConfig sim_defaults(Scheme scheme, double load,
                                     double mcast_fraction,
                                     std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.protocol.scheme = scheme;
  cfg.traffic.offered_load = load;
  cfg.traffic.multicast_fraction = mcast_fraction;
  cfg.traffic.mean_worm_len = 400.0;
  // Ample forwarding buffers: the paper's simulations study latency, not
  // loss; reservations virtually always succeed (NACKs stay possible).
  cfg.protocol.pool_bytes = 128 * 1024;
  cfg.seed = seed;
  return cfg;
}

/// Arms the network's deadlock watchdog with a bench-appropriate interval:
/// a sweep point that wedges (faulted run, pathological config) dumps its
/// per-host state to stderr instead of spinning silently until the job
/// timeout. Bounded runs only — the armed watchdog keeps the simulator
/// non-idle, so never pair it with run_to_quiescence().
inline DeadlockWatchdog& arm_watchdog(Network& net, Time interval = 250'000) {
  return net.attach_watchdog(interval);
}

/// Wraps a statistic whose sample set may be empty: `has == false` turns
/// the JSON cell into an explicit null instead of a fake zero.
inline std::optional<double> opt(double v, bool has) {
  return has ? std::optional<double>(v) : std::nullopt;
}

/// Formats a double for BENCH_*.json. %.17g guarantees bit-exact
/// round-trip through any correct JSON parser (so the perf gate compares
/// values, never formatting artifacts); the decimal separator is forced
/// to '.' in case a host library dragged in a comma locale; non-finite
/// values become JSON null (Infinity/NaN are not JSON).
inline std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  for (char* c = buf; *c != '\0'; ++c)
    if (*c == ',') *c = '.';
  return std::string(buf);
}

/// Accumulates numeric result rows and writes them as BENCH_<name>.json —
/// a machine-readable mirror of the CSV stdout so CI and plotting scripts
/// need not parse the human-oriented format. A nullopt cell serializes as
/// JSON null (a statistic over zero samples is not a measurement).
///
/// Thread safety: rows live in pre-sized slots (resize_rows + set_row), so
/// parallel sweep workers each write their own slot under the mutex and
/// the serialized row order is the sweep order, never completion order.
/// Wall-clock measurements go in the "meta" object — NOT in rows — so the
/// rows stay bit-identical across --jobs values (CI gates on this).
class JsonBench {
 public:
  using Row = std::vector<std::pair<std::string, std::optional<double>>>;

  explicit JsonBench(std::string name) : name_(std::move(name)) {}

  /// Pre-sizes the row slots for a sweep of `n` points.
  void resize_rows(std::size_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    rows_.resize(n);
  }

  /// Stores point `i`'s row into its slot (race-free across workers).
  void set_row(std::size_t i, Row kv) {
    std::lock_guard<std::mutex> lock(mu_);
    if (i >= rows_.size()) rows_.resize(i + 1);
    rows_[i] = std::move(kv);
  }

  /// Appends a row (sequential emitters; takes the same lock).
  void add_row(Row kv) {
    std::lock_guard<std::mutex> lock(mu_);
    rows_.push_back(std::move(kv));
  }

  /// Attaches a uniform counter dump (see CounterRegistry::snapshot()),
  /// serialized once as a top-level "counters" object.
  void set_counters(std::vector<std::pair<std::string, double>> counters) {
    std::lock_guard<std::mutex> lock(mu_);
    counters_ = std::move(counters);
  }

  /// Run metadata (jobs, sweep wall-clock, ...): serialized as a
  /// top-level "meta" object, deliberately outside "rows" because wall
  /// times differ run to run while rows must not.
  void set_meta(const std::string& key, double value) {
    std::lock_guard<std::mutex> lock(mu_);
    meta_.emplace_back(key, value);
  }

  /// Per-point wall-clock (ms), indexed like rows; lands in meta as
  /// "point_wall_ms": [...].
  void set_point_walls(std::vector<double> wall_ms) {
    std::lock_guard<std::mutex> lock(mu_);
    point_wall_ms_ = std::move(wall_ms);
  }

  /// Writes BENCH_<name>.json in the current directory.
  void write() const {
    std::lock_guard<std::mutex> lock(mu_);
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "# could not write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\"bench\": \"%s\", \"rows\": [", name_.c_str());
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      std::fprintf(f, "%s\n  {", r == 0 ? "" : ",");
      for (std::size_t i = 0; i < rows_[r].size(); ++i) {
        std::fprintf(f, "%s\"%s\": ", i == 0 ? "" : ", ",
                     rows_[r][i].first.c_str());
        if (rows_[r][i].second.has_value())
          std::fputs(json_number(*rows_[r][i].second).c_str(), f);
        else
          std::fputs("null", f);
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "\n]");
    if (!counters_.empty()) {
      std::fprintf(f, ", \"counters\": {");
      for (std::size_t i = 0; i < counters_.size(); ++i)
        std::fprintf(f, "%s\"%s\": %s", i == 0 ? "" : ", ",
                     counters_[i].first.c_str(),
                     json_number(counters_[i].second).c_str());
      std::fprintf(f, "}");
    }
    if (!meta_.empty() || !point_wall_ms_.empty()) {
      std::fprintf(f, ", \"meta\": {");
      bool first = true;
      for (const auto& [key, value] : meta_) {
        std::fprintf(f, "%s\"%s\": %s", first ? "" : ", ", key.c_str(),
                     json_number(value).c_str());
        first = false;
      }
      if (!point_wall_ms_.empty()) {
        std::fprintf(f, "%s\"point_wall_ms\": [", first ? "" : ", ");
        for (std::size_t i = 0; i < point_wall_ms_.size(); ++i)
          std::fprintf(f, "%s%s", i == 0 ? "" : ", ",
                       json_number(point_wall_ms_[i]).c_str());
        std::fprintf(f, "]");
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::fprintf(stderr, "# wrote %s\n", path.c_str());
  }

 private:
  std::string name_;
  mutable std::mutex mu_;
  std::vector<Row> rows_;
  std::vector<std::pair<std::string, double>> counters_;
  std::vector<std::pair<std::string, double>> meta_;
  std::vector<double> point_wall_ms_;
};

/// Stamps the standard sweep metadata on a bench's JSON: worker count,
/// per-point wall-clock, and total sweep wall-clock, so BENCH_*.json
/// tracks the multi-core scaling win over time.
inline void stamp_sweep_meta(JsonBench& json, const harness::SweepRunner& pool,
                             const std::vector<double>& point_wall_ms,
                             const harness::WallTimer& sweep) {
  json.set_meta("jobs", static_cast<double>(pool.jobs()));
  json.set_point_walls(point_wall_ms);
  json.set_meta("sweep_wall_ms", sweep.elapsed_ms());
}

/// Gathers per-sweep-point wormcheck reports behind --check and renders a
/// single deterministic verdict at the end of the sweep.
///
/// Like JsonBench rows, reports live in pre-sized slots keyed by point
/// index, so the verdict (and wormcheck_report.txt) is identical no matter
/// how many --jobs workers ran the points. `collect` is called inside the
/// point body while its Network is still alive; `finalize` prints every
/// failing report to stderr, writes them to wormcheck_report.txt (the CI
/// artifact), stamps summary counts into the bench JSON meta, and returns
/// the process exit code: 0 clean, 1 on any violation or checker refusal.
class CheckCollector {
 public:
  explicit CheckCollector(bool enabled) : enabled_(enabled) {}

  [[nodiscard]] bool enabled() const { return enabled_; }

  void resize(std::size_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    reports_.resize(n);
    labels_.resize(n);
  }

  /// Checks `net`'s trace against the standard rules and stores the report
  /// in slot `i` (race-free across sweep workers).
  void collect(std::size_t i, Network& net, std::string label) {
    if (!enabled_) return;
    check::CheckReport rep = net.check_expectations();
    std::lock_guard<std::mutex> lock(mu_);
    if (i >= reports_.size()) {
      reports_.resize(i + 1);
      labels_.resize(i + 1);
    }
    reports_[i] = std::move(rep);
    labels_[i] = std::move(label);
  }

  int finalize(JsonBench* json) {
    if (!enabled_) return 0;
    std::lock_guard<std::mutex> lock(mu_);
    std::int64_t violations = 0;
    std::int64_t obligations = 0;
    std::int64_t unterminated = 0;
    std::int64_t refused = 0;
    std::size_t checked = 0;
    std::string failures;
    for (std::size_t i = 0; i < reports_.size(); ++i) {
      if (!reports_[i].has_value()) continue;  // point not run (skipped)
      const check::CheckReport& r = *reports_[i];
      ++checked;
      obligations += r.obligations;
      unterminated += r.unterminated;
      violations += static_cast<std::int64_t>(r.violations.size());
      if (!r.usable) ++refused;
      if (!r.ok())
        failures += "== " + labels_[i] + " ==\n" + r.format() + "\n";
    }
    if (json != nullptr) {
      json->set_meta("check_points", static_cast<double>(checked));
      json->set_meta("check_obligations", static_cast<double>(obligations));
      json->set_meta("check_unterminated", static_cast<double>(unterminated));
      json->set_meta("check_violations", static_cast<double>(violations));
      json->set_meta("check_refused", static_cast<double>(refused));
    }
    if (failures.empty()) {
      std::fprintf(stderr,
                   "# wormcheck: OK -- %zu point(s) clean, %lld obligation(s)"
                   ", %lld unterminated at horizon\n",
                   checked, static_cast<long long>(obligations),
                   static_cast<long long>(unterminated));
      return 0;
    }
    std::fprintf(stderr, "%s", failures.c_str());
    std::FILE* f = std::fopen("wormcheck_report.txt", "w");
    if (f != nullptr) {
      std::fwrite(failures.data(), 1, failures.size(), f);
      std::fclose(f);
    }
    std::fprintf(stderr,
                 "# wormcheck: FAIL -- %lld violation(s), %lld refusal(s) "
                 "across %zu point(s); wrote wormcheck_report.txt\n",
                 static_cast<long long>(violations),
                 static_cast<long long>(refused), checked);
    return 1;
  }

 private:
  bool enabled_;
  std::mutex mu_;
  std::vector<std::optional<check::CheckReport>> reports_;
  std::vector<std::string> labels_;
};

}  // namespace wormcast::bench
