#include "sim/shard.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <utility>

namespace wormcast {

namespace {

/// Sub-window barriers are sub-microsecond events; spin a little before
/// conceding the core so an 8-core runner never pays a futex round-trip
/// per window. A third tier sleeps outright: workers parked across a long
/// gap (the engine is alive but the main thread is off summarizing or
/// between bench points) must not pin a core.
template <typename Pred>
void spin_until(Pred pred) {
  for (std::int64_t spins = 0; !pred(); ++spins) {
    if (spins >= 1 << 20) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    } else if (spins >= 4096) {
      std::this_thread::yield();
    }
  }
}

}  // namespace

ShardBus::ShardBus(int n_execs)
    : outboxes_(static_cast<std::size_t>(n_execs)) {}

void ShardBus::post(int src, int target, Time time, bool late,
                    InlineAction action) {
  Outbox& box = outboxes_[static_cast<std::size_t>(src)];
  box.posts.push_back(Posted{time, box.next_seq++, target, src, late,
                             std::move(action)});
}

void ShardBus::enqueue_barrier_task(int exec, BarrierTask task) {
  outboxes_[static_cast<std::size_t>(exec)].tasks.push_back(task);
}

void ShardBus::drain_into(const std::vector<Simulator*>& sims) {
  merge_.clear();
  for (Outbox& box : outboxes_) {
    for (Posted& p : box.posts) merge_.push_back(std::move(p));
    box.posts.clear();
  }
  // Canonical order: (time, late, src, seq) is a total order because
  // (src, seq) is unique, so the insertion sequence each target queue
  // assigns to same-time messages is reproducible run to run.
  std::sort(merge_.begin(), merge_.end(), [](const Posted& a, const Posted& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.late != b.late) return !a.late;
    if (a.src != b.src) return a.src < b.src;
    return a.seq < b.seq;
  });
  for (Posted& p : merge_) {
    Simulator* sim = sims[static_cast<std::size_t>(p.target)];
    if (p.late)
      sim->at_late(p.time, std::move(p.action));
    else
      sim->at(p.time, std::move(p.action));
  }
  merge_.clear();
  for (Outbox& box : outboxes_) {
    for (const BarrierTask& t : box.tasks) t.fn(t.arg);
    box.tasks.clear();
  }
}

ShardedEngine::ShardedEngine(std::vector<Simulator*> sims, Time lookahead)
    : sims_(std::move(sims)),
      lookahead_(lookahead),
      bus_(static_cast<int>(sims_.size())) {
  assert(!sims_.empty());
  assert(lookahead_ >= 1 && "lookahead window must cover at least one tick");
  workers_.reserve(sims_.size() - 1);
  for (std::size_t i = 1; i < sims_.size(); ++i)
    workers_.emplace_back([this, i] { worker_main(static_cast<int>(i)); });
}

ShardedEngine::~ShardedEngine() {
  shutdown_.store(true, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
  for (std::thread& w : workers_) w.join();
}

void ShardedEngine::worker_main(int idx) {
  std::uint64_t seen = 0;
  for (;;) {
    spin_until(
        [&] { return epoch_.load(std::memory_order_acquire) != seen; });
    seen = epoch_.load(std::memory_order_acquire);
    if (shutdown_.load(std::memory_order_relaxed)) return;
    sims_[static_cast<std::size_t>(idx)]->run_until(window_end_);
    done_.fetch_add(1, std::memory_order_release);
  }
}

void ShardedEngine::run_window(Time end) {
  window_end_ = end;
  done_.store(0, std::memory_order_relaxed);
  epoch_.fetch_add(1, std::memory_order_release);
  sims_[0]->run_until(end);
  const int need = static_cast<int>(workers_.size());
  spin_until([&] { return done_.load(std::memory_order_acquire) == need; });
  ++windows_;
}

Time ShardedEngine::next_event_time() const {
  Time next = kTimeNever;
  for (const Simulator* sim : sims_)
    next = std::min(next, sim->next_event_time());
  return next;
}

void ShardedEngine::run_until(Time deadline) {
  for (;;) {
    const Time next = next_event_time();
    if (next > deadline) break;  // also covers kTimeNever
    run_window(std::min(deadline, next + lookahead_ - 1));
    bus_.drain_into(sims_);
  }
  // No executor holds an event at or before `deadline` and the bus is
  // drained, so aligning the clocks dispatches nothing.
  for (Simulator* sim : sims_) sim->run_until(deadline);
}

void ShardedEngine::run_to_quiescence() {
  for (;;) {
    const Time next = next_event_time();
    if (next == kTimeNever) break;
    run_window(next + lookahead_ - 1);
    bus_.drain_into(sims_);
  }
}

bool ShardedEngine::idle() const {
  for (const Simulator* sim : sims_)
    if (!sim->idle()) return false;
  return true;
}

std::int64_t ShardedEngine::events_dispatched() const {
  std::int64_t total = 0;
  for (const Simulator* sim : sims_) total += sim->events_dispatched();
  return total;
}

std::int64_t ShardedEngine::progress() const {
  std::int64_t total = 0;
  for (const Simulator* sim : sims_) total += sim->progress();
  return total;
}

std::size_t ShardedEngine::event_queue_peak() const {
  std::size_t total = 0;
  for (const Simulator* sim : sims_) total += sim->event_queue_peak();
  return total;
}

std::size_t ShardedEngine::pending_events() const {
  std::size_t total = 0;
  for (const Simulator* sim : sims_) total += sim->pending_events();
  return total;
}

}  // namespace wormcast
