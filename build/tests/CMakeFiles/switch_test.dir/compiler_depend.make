# Empty compiler generated dependencies file for switch_test.
# This may be replaced when dependencies are built.
