#include "core/group_tables.h"

#include <gtest/gtest.h>

#include "net/topologies.h"
#include "sim/random.h"

namespace wormcast {
namespace {

class GroupTablesTest : public ::testing::Test {
 protected:
  GroupTablesTest() : topo_(make_torus(4, 4)), routing_(topo_) {}
  Topology topo_;
  UpDownRouting routing_;
};

TEST_F(GroupTablesTest, CircuitOrdersByIncreasingId) {
  CircuitTable c({9, 3, 12, 7});
  EXPECT_EQ(c.order(), (std::vector<HostId>{3, 7, 9, 12}));
  EXPECT_EQ(c.lowest(), 3);
  EXPECT_EQ(c.highest(), 12);
  EXPECT_EQ(c.next(3), 7);
  EXPECT_EQ(c.next(9), 12);
  EXPECT_EQ(c.next(12), 3);  // wrap-around: the one ID reversal
  EXPECT_TRUE(c.contains(7));
  EXPECT_FALSE(c.contains(8));
  EXPECT_THROW(c.next(8), std::invalid_argument);
}

TEST_F(GroupTablesTest, CircuitRejectsBadGroups) {
  EXPECT_THROW(CircuitTable(std::vector<HostId>{}), std::invalid_argument);
  EXPECT_THROW(CircuitTable(std::vector<HostId>{1, 1}), std::invalid_argument);
}

TEST_F(GroupTablesTest, CircuitHopLengthSumsLegs) {
  CircuitTable c({0, 1});
  const int expected = routing_.hop_count(0, 1) + routing_.hop_count(1, 0);
  EXPECT_EQ(c.circuit_hop_length(routing_), expected);
  EXPECT_EQ(CircuitTable({5}).circuit_hop_length(routing_), 0);
}

TEST_F(GroupTablesTest, TreeRootIsLowestAndParentsHaveLowerIds) {
  TreeTable t({11, 2, 8, 5, 14}, routing_);
  EXPECT_EQ(t.root(), 2);
  EXPECT_EQ(t.parent(2), kNoHost);
  for (const HostId m : t.members()) {
    if (m == t.root()) continue;
    EXPECT_LT(t.parent(m), m) << "child " << m;
    // Child lists are consistent with parents.
    const auto& sibs = t.children(t.parent(m));
    EXPECT_NE(std::find(sibs.begin(), sibs.end(), m), sibs.end());
  }
}

TEST_F(GroupTablesTest, TreeSpansAllMembers) {
  TreeTable t({0, 3, 6, 9, 12, 15}, routing_);
  int reached = 0;
  std::vector<HostId> stack{t.root()};
  while (!stack.empty()) {
    const HostId h = stack.back();
    stack.pop_back();
    ++reached;
    for (const HostId c : t.children(h)) stack.push_back(c);
  }
  EXPECT_EQ(reached, t.size());
}

TEST_F(GroupTablesTest, FanoutCapIsRespected) {
  TreeTable t({0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, routing_, /*max_fanout=*/2);
  for (const HostId m : t.members())
    EXPECT_LE(t.children(m).size(), 2u);
  EXPECT_GE(t.depth(), 2);  // 10 members in a binary tree need depth >= 3
}

TEST_F(GroupTablesTest, UnlimitedFanoutGivesShallowerOrEqualTree) {
  const std::vector<HostId> members{0, 2, 4, 6, 8, 10, 12, 14};
  TreeTable capped(members, routing_, 2);
  TreeTable open(members, routing_, 0);
  EXPECT_LE(open.depth(), capped.depth());
}

TEST_F(GroupTablesTest, ChildrenAscendById) {
  TreeTable t({0, 1, 2, 3, 4, 5, 6, 7}, routing_);
  for (const HostId m : t.members()) {
    const auto& kids = t.children(m);
    EXPECT_TRUE(std::is_sorted(kids.begin(), kids.end()));
  }
}

TEST_F(GroupTablesTest, GroupTablesLookups) {
  MulticastGroupSpec g0{0, {1, 4, 7}};
  MulticastGroupSpec g1{1, {0, 2, 4, 6}};
  GroupTables tables({g0, g1}, routing_);
  EXPECT_EQ(tables.group_size(0), 3);
  EXPECT_EQ(tables.group_size(1), 4);
  EXPECT_TRUE(tables.is_member(0, 4));
  EXPECT_FALSE(tables.is_member(0, 0));
  EXPECT_EQ(tables.tree(1).root(), 0);
  EXPECT_EQ(tables.circuit(0).lowest(), 1);
  EXPECT_THROW(tables.circuit(9), std::invalid_argument);
}

TEST_F(GroupTablesTest, SingleMemberGroup) {
  TreeTable t({5}, routing_);
  EXPECT_EQ(t.root(), 5);
  EXPECT_TRUE(t.children(5).empty());
  EXPECT_EQ(t.depth(), 0);
}

}  // namespace
}  // namespace wormcast
