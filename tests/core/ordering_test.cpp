// Total ordering (Sections 5 and 6): serialized schemes deliver every
// group's messages in the same order at every member; the repeated-unicast
// baseline cannot enforce it (the paper's criticism).
#include <gtest/gtest.h>

#include "core/network.h"
#include "net/topologies.h"

namespace wormcast {
namespace {

/// Injects `n` multicasts from rotating origins at staggered times.
void blast(Network& net, GroupId group, const std::vector<HostId>& members,
           int n) {
  for (int i = 0; i < n; ++i) {
    const Time when = 1 + 950 * i;  // overlapping but distinct start times
    net.sim().at(when, [&net, group, &members, i] {
      Demand d;
      d.src = members[static_cast<std::size_t>(i) % members.size()];
      d.multicast = true;
      d.group = group;
      d.length = 300;
      net.inject(d);
    });
  }
}

void expect_identical_orders(Network& net, GroupId group,
                             const std::vector<HostId>& members) {
  const std::vector<std::uint64_t>* reference = nullptr;
  HostId ref_host = kNoHost;
  for (const HostId m : members) {
    const auto* order = net.metrics().order_of(m, group);
    if (order == nullptr) continue;  // a member that only originated
    if (reference == nullptr) {
      reference = order;
      ref_host = m;
      continue;
    }
    // Members that originated some messages see fewer entries; orders must
    // agree on the common subsequence of messages both delivered.
    std::vector<std::uint64_t> a = *reference;
    std::vector<std::uint64_t> b = *order;
    std::vector<std::uint64_t> a_common;
    std::vector<std::uint64_t> b_common;
    for (const auto id : a)
      if (std::find(b.begin(), b.end(), id) != b.end()) a_common.push_back(id);
    for (const auto id : b)
      if (std::find(a.begin(), a.end(), id) != a.end()) b_common.push_back(id);
    EXPECT_EQ(a_common, b_common)
        << "hosts " << ref_host << " and " << m << " disagree on order";
  }
}

class OrderedSchemeTest : public ::testing::TestWithParam<Scheme> {};

TEST_P(OrderedSchemeTest, AllMembersSeeTheSameOrder) {
  const std::vector<HostId> members{0, 2, 4, 5, 7, 8};
  MulticastGroupSpec g{0, members};
  ExperimentConfig cfg;
  cfg.protocol.scheme = GetParam();
  cfg.protocol.total_ordering = true;
  Network net(make_torus(3, 3), {g}, cfg);
  blast(net, 0, members, 24);
  net.run_to_quiescence();
  EXPECT_EQ(net.metrics().outstanding(), 0);
  expect_identical_orders(net, 0, members);
}

TEST_P(OrderedSchemeTest, OrderingHoldsUnderBufferPressure) {
  const std::vector<HostId> members{0, 1, 2, 3, 4, 5};
  MulticastGroupSpec g{0, members};
  ExperimentConfig cfg;
  cfg.protocol.scheme = GetParam();
  cfg.protocol.total_ordering = true;
  cfg.protocol.pool_bytes = 1400;  // forces NACKs and retransmissions
  cfg.protocol.retry_backoff = 600;
  Network net(make_torus(3, 3), {g}, cfg);
  blast(net, 0, members, 24);
  net.run_until(3'000'000);
  EXPECT_EQ(net.metrics().outstanding(), 0);
  // Retransmissions occurred, yet the order is still total.
  expect_identical_orders(net, 0, members);
}

INSTANTIATE_TEST_SUITE_P(Schemes, OrderedSchemeTest,
                         ::testing::Values(Scheme::kHamiltonianSF,
                                           Scheme::kHamiltonianCT,
                                           Scheme::kTreeSF, Scheme::kTreeCT),
                         [](const auto& info) {
                           std::string n = scheme_name(info.param);
                           for (char& c : n)
                             if (c == '-') c = '_';
                           return n;
                         });

TEST(Ordering, SerializerAssignsMonotoneSequenceNumbers) {
  MulticastGroupSpec g{0, {0, 1, 2, 3}};
  ExperimentConfig cfg;
  cfg.protocol.scheme = Scheme::kTreeSF;
  Network net(make_star(4), {g}, cfg);
  blast(net, 0, g.members, 10);
  net.run_to_quiescence();
  EXPECT_EQ(net.metrics().messages_completed(), 10);
  EXPECT_EQ(net.metrics().outstanding(), 0);
}

TEST(Ordering, UnorderedHamiltonianStillDeliversEverything) {
  // Without serialization the circuit starts at the originator: delivery
  // order may differ between members, but reliability is unaffected.
  MulticastGroupSpec g{0, {0, 1, 2, 3, 4, 5}};
  ExperimentConfig cfg;
  cfg.protocol.scheme = Scheme::kHamiltonianSF;
  cfg.protocol.total_ordering = false;
  Network net(make_torus(3, 3), {g}, cfg);
  blast(net, 0, g.members, 24);
  net.run_to_quiescence();
  EXPECT_EQ(net.metrics().outstanding(), 0);
  EXPECT_EQ(net.metrics().messages_completed(), 24);
}

TEST(Ordering, CircuitConfirmModeReturnsWormToOriginator) {
  MulticastGroupSpec g{0, {0, 1, 2, 3}};
  ExperimentConfig cfg;
  cfg.protocol.scheme = Scheme::kHamiltonianSF;
  cfg.protocol.circuit_confirm = true;
  Network net(make_star(4), {g}, cfg);
  Demand d;
  d.src = 1;
  d.multicast = true;
  d.group = 0;
  d.length = 200;
  net.inject(d);
  net.run_to_quiescence();
  EXPECT_EQ(net.metrics().messages_completed(), 1);
  // The originator received its own worm back (the confirmation copy).
  EXPECT_EQ(net.adapter(1).worms_received(), 1);
}

}  // namespace
}  // namespace wormcast
