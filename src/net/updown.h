// Deadlock-free up/down routing (Autonet / Myrinet style, Section 2).
//
// A root switch is chosen and a BFS spanning tree computed. Every link
// (tree link or cross link) is labelled: its "up" end is the endpoint
// closer to the root, with node id breaking ties. A legal route traverses
// zero or more up links followed by zero or more down links; this breaks
// every circular wait and hence prevents fabric deadlock.
//
// Autonet's raison d'être was reconfiguration after component failure:
// fail_link() removes a link permanently and recomputes the spanning tree
// and labels over the surviving links, invalidating the route/hop caches so
// the next retransmission uses the healed paths.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/source_route.h"
#include "net/topology.h"
#include "sim/types.h"

namespace wormcast {

struct UpDownOptions {
  /// Root switch; kNoNode selects the highest-degree switch (lowest id on
  /// ties), mimicking Autonet's preference for a central root — unless
  /// `level_override` is set, in which case the lowest (level, id) switch
  /// wins (a Clos leaf out-degrees a spine, so the degree heuristic would
  /// root the tree in the wrong stage).
  NodeId root = kNoNode;
  /// Restrict routes to spanning-tree links only (switch-level multicast
  /// scheme 1 requires this of *all* worms; Section 3).
  bool tree_links_only = false;
  /// Stage labels by NodeId (must cover every node, hosts included, when
  /// non-empty): the up end of each link becomes the endpoint with the
  /// smaller label, id breaking ties, instead of the BFS-distance rule.
  /// Any total (level, id) order keeps up*/down* deadlock-free (it is an
  /// acyclic orientation, so no circular wait survives); what the stage
  /// labels buy is *path diversity* on multi-stage fabrics — with BFS
  /// levels only the root spine of a Clos sits above the leaves and every
  /// route funnels through it, while stage labels make every leaf->spine
  /// traversal "up" so any spine can turn a route around. Generators emit
  /// these via their `levels_out` parameter (see net/topologies.h).
  std::vector<int> level_override;
};

class UpDownRouting {
 public:
  using Options = UpDownOptions;

  explicit UpDownRouting(const Topology& topo, Options opts = Options());

  [[nodiscard]] NodeId root() const { return root_; }
  /// BFS distance of a node from the root; -1 if the node was cut off by
  /// permanent link deaths (routing to/from it throws).
  [[nodiscard]] int level(NodeId n) const { return levels_[n]; }
  /// The endpoint of `l` that is "up" (closer to the root / lower id).
  [[nodiscard]] NodeId up_end(LinkId l) const { return up_end_[l]; }
  /// True if `l` belongs to the BFS spanning tree.
  [[nodiscard]] bool on_tree(LinkId l) const { return on_tree_[l]; }
  /// True if traversing `l` out of `from` moves toward the root.
  [[nodiscard]] bool is_up_traversal(LinkId l, NodeId from) const {
    return up_end_[l] != from;
  }

  /// Removes `l` from the topology as seen by this routing instance and
  /// recomputes the spanning tree, labels and (lazily) all routes over the
  /// surviving links. The root is kept if still reachable. Nodes cut off
  /// entirely get level -1; routing to them throws. Idempotent per link.
  void fail_link(LinkId l);
  [[nodiscard]] bool link_alive(LinkId l) const { return !link_dead_[l]; }
  [[nodiscard]] std::int64_t links_failed() const { return links_failed_; }

  /// Migrates the root to `new_root` (must be a switch; throws otherwise)
  /// and recomputes the spanning tree, labels and route/hop caches in
  /// place. Routes handed out before the call reflect the old labels;
  /// callers holding plans must re-plan (Network::migrate_root does).
  void set_root(NodeId new_root);

  /// Source route (switch output ports) from one host to another. The path
  /// is the shortest legal up/down path, with deterministic tie-breaking,
  /// so exactly one path per pair is ever used (as in the paper's
  /// simulations). Throws if src == dst or no surviving legal path exists.
  [[nodiscard]] SourceRoute route(HostId src, HostId dst) const;

  /// Copies route(src, dst) into `out` instead of returning a fresh
  /// vector; recycled worms pass their previous route here so the copy
  /// reuses the existing allocation (vector copy-assignment).
  void route_into(HostId src, HostId dst, SourceRoute& out) const;

  /// Number of switch-to-switch hops on route(src, dst) plus host links;
  /// the "hop count" metric used to weigh host-connectivity edges
  /// (Section 5, Figure 8).
  [[nodiscard]] int hop_count(HostId src, HostId dst) const;

  /// Node path (switches only) underlying route(src, dst); for tests.
  [[nodiscard]] std::vector<NodeId> switch_path(HostId src, HostId dst) const;

  /// Port to take at `sw` to reach the root's direction is not meaningful
  /// in general; what broadcast needs is the set of *down* tree links at a
  /// switch. Returns output ports of `sw` that are tree links going down.
  [[nodiscard]] std::vector<PortId> down_tree_ports(NodeId sw) const;

  /// Source route from a host up to the root switch (used by the
  /// root-serialized switch-level schemes).
  [[nodiscard]] SourceRoute route_to_root(HostId src) const;

 private:
  struct PathResult {
    std::vector<NodeId> nodes;  // sw path: switch sequence src_sw..dst_sw
    std::vector<LinkId> links;  // links between consecutive switches
  };
  /// (Re)computes root, BFS levels, tree membership and up/down labels over
  /// the links still alive. `allow_partial` tolerates disconnected nodes
  /// (post-failure); the constructor passes false so a malformed topology
  /// still fails loudly.
  void rebuild(bool allow_partial);
  [[nodiscard]] PathResult shortest_legal_path(NodeId from_sw, NodeId to_sw) const;
  [[nodiscard]] SourceRoute path_to_route(HostId src, const PathResult& path,
                                          NodeId final_dest_node) const;
  [[nodiscard]] static std::uint64_t pair_key(HostId src, HostId dst) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
           static_cast<std::uint32_t>(dst);
  }

  const Topology& topo_;
  NodeId root_ = kNoNode;
  NodeId preferred_root_ = kNoNode;  // survives rebuilds while reachable
  bool tree_links_only_ = false;
  std::vector<int> level_override_;  // empty = BFS-distance labels
  std::vector<int> levels_;       // by NodeId
  std::vector<NodeId> up_end_;    // by LinkId
  std::vector<bool> on_tree_;     // by LinkId
  std::vector<bool> link_dead_;   // by LinkId
  std::int64_t links_failed_ = 0;
  // Per-pair memoization; fail_link() clears both so retransmissions pick
  // up the recomputed paths.
  mutable std::unordered_map<std::uint64_t, SourceRoute> route_cache_;
  mutable std::unordered_map<std::uint64_t, int> hop_cache_;
};

}  // namespace wormcast
