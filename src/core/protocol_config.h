// Configuration of the host-adapter multicast protocols (Sections 4-6).
#pragma once

#include <cstdint>

#include "sim/random.h"
#include "sim/types.h"

namespace wormcast {

/// Which multicast scheme the hosts run.
enum class Scheme : std::uint8_t {
  /// Myrinet's stock behaviour: the source unicasts a copy to every member
  /// (Section 2, "multicopy unicasting"). The baseline the paper criticizes.
  kRepeatedUnicast,
  /// Hamiltonian circuit, store-and-forward at each member (Section 5).
  kHamiltonianSF,
  /// Hamiltonian circuit with cut-through at each member when the adapter
  /// transmitter is free (Section 5 / Figure 10's middle curve).
  kHamiltonianCT,
  /// Rooted tree, store-and-forward, serialized through the root
  /// (Section 6; also gives total ordering).
  kTreeSF,
  /// Rooted tree with cut-through toward the first child.
  kTreeCT,
  /// Rooted tree, originator broadcasts on the tree (climb + descend with
  /// the two-buffer-class rule; lower latency, no total ordering).
  kTreeBroadcast,
  /// The [VLB96] centralized credit scheme the paper contrasts against
  /// (Section 1): before multicasting, the source obtains a cumulative
  /// buffer credit for all destinations from a designated credit-manager
  /// host; sequenced grants give total ordering; the manager replenishes
  /// its pool through a circulating credit-gathering token. Buffers are
  /// never oversubscribed (no NACKs), but latency grows by the
  /// request/grant round trip and buffers sit idle until the token
  /// returns them.
  kCentralizedCredit,
};

[[nodiscard]] constexpr bool scheme_uses_tree(Scheme s) {
  return s == Scheme::kTreeSF || s == Scheme::kTreeCT ||
         s == Scheme::kTreeBroadcast || s == Scheme::kCentralizedCredit;
}
[[nodiscard]] constexpr bool scheme_uses_circuit(Scheme s) {
  return s == Scheme::kHamiltonianSF || s == Scheme::kHamiltonianCT;
}
[[nodiscard]] constexpr bool scheme_cut_through(Scheme s) {
  return s == Scheme::kHamiltonianCT || s == Scheme::kTreeCT;
}

[[nodiscard]] const char* scheme_name(Scheme s);

struct ProtocolConfig {
  Scheme scheme = Scheme::kHamiltonianSF;

  /// Serialize multicasts through the lowest-ID member (circuit) or the
  /// root (tree) so every member receives every message in the same order.
  /// kTreeSF/kTreeCT are root-serialized by construction; this flag applies
  /// the same discipline to the Hamiltonian circuit (Section 5, last par.).
  bool total_ordering = false;

  /// Hamiltonian circuit only: retransmit until the worm returns to its
  /// originator, confirming delivery (Section 5's first method).
  bool circuit_confirm = false;

  /// Implicit buffer reservation with ACK/NACK (Figure 5). When false the
  /// adapters behave like the Section 8 Myrinet implementation: worms that
  /// do not fit in the input pool are silently dropped (Figure 13's loss).
  bool reservation = true;

  /// Two-buffer-class deadlock prevention (Figure 7). Disabling it (while
  /// keeping reservation) is the ablation that exhibits buffer deadlock.
  bool buffer_classes = true;

  /// Forwarding pool per adapter: LANai SRAM (~25 KB in Myrinet) plus any
  /// host-DMA extension [VLB96]. Split across classes when enabled.
  std::int64_t pool_bytes = 50 * 1024;

  /// When nonzero, receptions reserve fixed-size slots of this many bytes
  /// instead of the exact payload — the Myrinet control program manages a
  /// handful of MTU-sized receive buffers, so a 1 KB packet occupies a
  /// whole slot. Used by the Section 8.2 testbed reproduction.
  std::int64_t input_slot_bytes = 0;

  /// Multicast header bytes added to each hop copy (group, hop count,
  /// class, message id, sequence).
  std::int64_t mcast_header_bytes = 8;
  /// Payload of ACK/NACK control worms.
  std::int64_t control_payload = 8;

  /// Retransmission back-off after a NACK, plus uniform jitter.
  Time retry_backoff = 4000;
  Time retry_jitter = 2000;

  /// End-to-end loss recovery (used with a FaultInjector, see
  /// ExperimentConfig::faults). When > 0 every un-ACKed send arms a timer:
  /// expiry retransmits with the same capped exponential back-off as a
  /// NACK. Receivers then defer their ACK from the worm's head to its full
  /// reception (an ACK-on-head could acknowledge a worm whose tail is later
  /// lost) and deduplicate retransmitted copies by message id. 0 = off:
  /// the lossless-fabric behaviour, a lost worm would wedge its sender.
  Time ack_timeout = 0;

  /// Give up on a send after this many transmissions (timer expiries and
  /// NACKs both count): the reservation is released and the miss is counted
  /// as a `deliveries_failed`. 0 = retry forever (a recoverable fault
  /// pattern then guarantees eventual delivery).
  int max_attempts = 0;

  /// Receivers remember this many recently completed (message, phase) keys
  /// for duplicate suppression; a duplicate whose ACK was lost is re-ACKed
  /// from this memory instead of being re-delivered or re-forwarded.
  int dedup_window = 4096;

  // --- failure detection & repair (crash-stop hosts) ------------------------
  /// When > 0 (requires recovery, i.e. reservation + ack_timeout), a peer
  /// that has stayed silent for this long past a send's first transmission
  /// despite retries — or that ignores explicit liveness probes — is
  /// suspected crash-stopped: the suspicion is disseminated and every
  /// circuit/tree containing the peer is repaired in place. 0 = off.
  Time suspicion_timeout = 0;

  /// Gap between explicit liveness probes of a host's protocol neighbours
  /// (circuit successor, tree parent and children) while it has traffic in
  /// flight; probes catch dead peers that no pending send would expose.
  /// 0 derives suspicion_timeout / 4 (minimum 1).
  Time probe_interval = 0;

  /// After a repair, in-flight messages that may have lost a hop copy
  /// inside the dead member (received and ACKed but not yet forwarded) get
  /// this long to finish before being abandoned as disrupted.
  Time repair_grace = 100'000;

  /// Cap children per node in the rooted tree (0 = unlimited; 2 mimics the
  /// binary trees of [VLB96]).
  int max_tree_fanout = 0;

  // --- kCentralizedCredit ([VLB96]) parameters ------------------------------
  /// Host adapter acting as the credit manager.
  HostId credit_manager = 0;
  /// Worm-buffer slots the manager believes each host has.
  int credits_per_host = 4;
  /// Gap between credit-gathering token circulations.
  Time token_interval = 5'000;
};

/// Delay before retransmission number `prior_attempts + 1`: exponential
/// back-off, capped at 16x the base so a long-outage survivor still probes
/// at a bounded rate, plus uniform jitter so hosts never retry in lockstep.
/// Shared by the NACK and ACK-timeout paths (and unit-tested directly).
[[nodiscard]] Time retry_backoff_delay(const ProtocolConfig& config,
                                       int prior_attempts, RandomStream& rng);

}  // namespace wormcast
