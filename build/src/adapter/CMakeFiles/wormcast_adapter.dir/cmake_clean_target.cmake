file(REMOVE_RECURSE
  "libwormcast_adapter.a"
)
