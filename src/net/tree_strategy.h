// Pluggable multicast tree strategies.
//
// The paper serializes every switch-level multicast through one fixed
// up/down spanning tree rooted at a single switch (Section 3). That is the
// structural bottleneck at scale: the root switch carries a share of every
// worm and the slowest branch paces the whole destination set. A
// TreeStrategy owns the group-structure construction instead — which
// routing a group's worms ride, how a destination set is partitioned into
// worms, and what the host-level greedy tree pays per edge — so alternative
// builders (partition-merge, load-aware branching avoidance, multi-root
// up/down) plug in per run or per group without touching the engine.
//
// Strategies own their tree-restricted UpDownRouting instances; the Network
// keeps the general routing for host-level unicast (splitting unicast
// across roots would void the single-order deadlock argument). All owned
// routings are mutated in place (set_root / fail_link), never re-created:
// the switch-multicast engine holds a reference to primary_routing() for
// the lifetime of the network.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "net/source_route.h"
#include "net/topology.h"
#include "net/updown.h"
#include "sim/types.h"

namespace wormcast {

enum class TreeStrategyKind : std::uint8_t {
  /// The paper's scheme: one spanning tree, one worm per multicast.
  /// Reproduces the pre-strategy behaviour exactly (the parity baseline).
  kSingleRoot,
  /// Splits the destination set into route-disjoint partitions and emits
  /// one worm per partition, greedily merging partitions whose up/down
  /// routes share the longest port prefixes until the worm budget holds
  /// (dynamic partition merging, after the NoC partition-merge literature).
  /// Bounded worm count trades against shared-fate coupling: each worm
  /// paces only its own partition's slowest branch.
  kPartitionMerge,
  /// Builds per-send delivery trees over the *full* up/down graph with
  /// per-switch penalties — observed forwarding load plus a static
  /// low-port-capacity surcharge — steering branch points away from hot or
  /// multicast-poor switches (branching-node avoidance, after the WDM
  /// literature). Pair with the interrupt/flush switch schemes: off-tree
  /// branches void the idle-fill scheme's single-tree deadlock argument.
  kLoadAware,
  /// k candidate roots, each with its own spanning tree; every group is
  /// assigned the root minimizing its members' depth sum, spreading root
  /// serialization across the fabric.
  kMultiRoot,
};

inline constexpr int kNumTreeStrategies = 4;

/// Stable lowercase name ("single-root", "partition-merge", ...).
[[nodiscard]] const char* tree_strategy_name(TreeStrategyKind k);
/// Parses a tree_strategy_name (or its underscore variant). Returns false
/// and leaves `out` untouched on an unknown name.
[[nodiscard]] bool parse_tree_strategy(std::string_view name,
                                       TreeStrategyKind* out);

struct TreeStrategyConfig {
  TreeStrategyKind kind = TreeStrategyKind::kSingleRoot;
  /// kPartitionMerge: worm budget per multicast (>= 1). Partitions merge
  /// greedily by longest shared route prefix until the budget holds.
  int max_worms = 4;
  /// kMultiRoot: candidate root count (clamped to the switch count). The
  /// general routing's root is always candidate 0.
  int candidate_roots = 4;
  /// kLoadAware: detour penalty (in hops) charged for routing through the
  /// hottest switch; cooler switches scale down linearly. 0 disables the
  /// observed-load term.
  int load_penalty_hops = 4;
  /// kLoadAware: extra hops charged per port a switch falls short of the
  /// fabric's maximum switch degree (static "multicast port capacity").
  int capacity_penalty_hops = 1;
  /// Per-group strategy overrides: listed groups use their own kind, all
  /// others use `kind`. Each override kind is instantiated once and shares
  /// the run's topology and base routing.
  std::vector<std::pair<GroupId, TreeStrategyKind>> per_group;
};

/// One worm of a multicast plan: the destinations it covers and the branch
/// forest leaving the source host's switch that reaches exactly them.
struct McastPartition {
  std::vector<HostId> dests;
  std::vector<McastRouteTree> branches;
};

/// A multicast send as one or more worms. Partitions are host-disjoint and
/// together cover every requested destination (the source excluded).
struct McastPlan {
  std::vector<McastPartition> partitions;
};

class TreeStrategy {
 public:
  /// Deterministic per-switch load snapshot (e.g. forwarded bytes).
  using LoadProbe = std::function<std::int64_t(NodeId)>;

  TreeStrategy(const Topology& topo, const UpDownRouting& base_routing)
      : topo_(topo), base_routing_(base_routing) {}
  virtual ~TreeStrategy() = default;
  TreeStrategy(const TreeStrategy&) = delete;
  TreeStrategy& operator=(const TreeStrategy&) = delete;

  [[nodiscard]] virtual TreeStrategyKind kind() const = 0;
  [[nodiscard]] const char* name() const { return tree_strategy_name(kind()); }

  /// The routing whose spanning tree carries switch-level *broadcasts*
  /// (climb to root, flood the down-tree links) and the default for
  /// unassigned groups. Mutated in place, never replaced — the multicast
  /// engine references it for the network's lifetime.
  [[nodiscard]] virtual const UpDownRouting& primary_routing() const = 0;

  /// The routing group `g`'s switch-level worms are planned against (and
  /// the one their paths are legal under). primary_routing() for unknown
  /// groups.
  [[nodiscard]] virtual const UpDownRouting& group_routing(GroupId g) const = 0;

  /// Registers or re-plans a group against its current member list. Called
  /// at construction for every group and again after membership changes
  /// (join/leave/repair), invalidating any cached per-group plans.
  virtual void plan_group(GroupId g, const std::vector<HostId>& members) = 0;

  /// Plans one switch-level multicast from `src` to `dests` (the source is
  /// skipped if present). Throws std::invalid_argument when no destination
  /// remains.
  [[nodiscard]] virtual McastPlan plan_multicast(
      GroupId g, HostId src, const std::vector<HostId>& dests) const = 0;

  /// Which up/down orientation (candidate root) group `g`'s switch-level
  /// worms are planned under. Informational — tests and tools use it to
  /// identify the routing a group rides; deadlock safety between concurrent
  /// worms is enforced structurally by the Network's multicast admission
  /// gate (tree-disjointness, see Network::send_switch_multicast), which
  /// makes mixing orientations safe. Single-orientation strategies return
  /// 0 for every group.
  [[nodiscard]] virtual int plan_orientation(GroupId g) const {
    (void)g;
    return 0;
  }

  /// Edge cost the host-level greedy tree construction (GroupTables) pays
  /// for attaching `child` under `parent` in group `g`. The default is the
  /// general routing's unicast hop count — exactly the pre-strategy rule.
  [[nodiscard]] virtual int attach_cost(GroupId g, HostId parent,
                                        HostId child) const;

  /// A link died permanently: recompute every owned routing and drop
  /// cached plans. The Network forwards its fail_link here after the
  /// general routing has recomputed.
  virtual void fail_link(LinkId l) = 0;

  /// The up/down root migrated to `new_root` on the general routing:
  /// follow it on the owned primary routing and drop cached plans.
  virtual void on_root_migrated(NodeId new_root) = 0;

  /// Installs the observed-load snapshot source (used by kLoadAware).
  virtual void set_load_probe(LoadProbe probe) { (void)std::move(probe); }

  /// Re-plans trees against the current load snapshot. Returns true when
  /// any penalty (and hence any future plan) changed. Default: nothing to
  /// re-plan.
  virtual bool replan() { return false; }

  // Counters (serialized by Network::register_counters).
  [[nodiscard]] virtual std::int64_t worms_planned() const {
    return worms_planned_;
  }
  [[nodiscard]] virtual std::int64_t partitions_merged() const {
    return partitions_merged_;
  }
  [[nodiscard]] virtual std::int64_t replans() const { return replans_; }

 protected:
  const Topology& topo_;
  /// The network-wide general up/down routing (host-level unicast paths);
  /// also the default attach-cost metric.
  const UpDownRouting& base_routing_;
  mutable std::int64_t worms_planned_ = 0;
  mutable std::int64_t partitions_merged_ = 0;
  std::int64_t replans_ = 0;
};

/// Builds the configured strategy (or a per-group dispatcher when
/// `config.per_group` is non-empty). `base_routing` must outlive the
/// strategy; `base_opts` seeds the owned tree-restricted routings (their
/// root defaults to base_routing.root()).
std::unique_ptr<TreeStrategy> make_tree_strategy(
    const TreeStrategyConfig& config, const Topology& topo,
    const UpDownRouting& base_routing, const UpDownOptions& base_opts);

}  // namespace wormcast
