// Facade: builds a complete simulated wormhole LAN — fabric, up/down
// routing, host adapters, multicast protocol engines, traffic — and runs
// experiments over it. This is the top-level public API; the examples and
// benches are written against it.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "adapter/host_adapter.h"
#include "check/wormcheck.h"
#include "core/group_tables.h"
#include "core/host_protocol.h"
#include "core/metrics.h"
#include "core/protocol_config.h"
#include "net/fabric.h"
#include "net/switch_mcast_engine.h"
#include "net/topology.h"
#include "net/tree_strategy.h"
#include "net/updown.h"
#include "net/worm.h"
#include "sim/arena.h"
#include "sim/counters.h"
#include "sim/fault_injector.h"
#include "sim/shard.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "sim/watchdog.h"
#include "traffic/generator.h"
#include "traffic/groups.h"

namespace wormcast {

/// Knobs of the membership-churn coordinator. Joins and leaves flow
/// through one bounded queue paced at `op_cost` byte-times per operation
/// (the control-plane cost of a splice); a join arriving at a full queue
/// is *shed* and retried with capped exponential back-off plus jitter
/// (the same discipline as NACK retransmission). Leaves are never shed:
/// a departure must not be deniable, or the leaver would keep receiving
/// traffic it no longer wants.
struct MembershipConfig {
  /// Maximum queued operations before joins are shed. 0 disables
  /// shedding (an unbounded queue).
  int queue_limit = 64;
  /// Byte-times of coordinator work per queued operation.
  Time op_cost = 2'000;
  /// Total tries per join intent (initial + retries after sheds); once
  /// exhausted the shed is final and the join is abandoned.
  int max_join_attempts = 5;
  /// Back-off base/jitter between a shed and its retry (doubles per
  /// attempt, capped at 16x the base).
  Time retry_backoff = 8'000;
  Time retry_jitter = 4'000;
  /// Obligation window: a join request must be applied or shed within
  /// this long (wormcheck's join-grace rule), and a freshly applied join
  /// gives pre-join in-flight messages this long to finish before the
  /// settle sweep writes them off (mirrors repair_grace: a worm already
  /// in a channel carries a hop budget sized for the pre-join circuit).
  Time join_grace = 150'000;
};

/// Simulator-engine knobs. These pick implementations, not behavior: any
/// queue kind produces bit-identical results (queue_equivalence_test pins
/// it), so benches can flip them freely for A/B timing.
struct EngineConfig {
  EventQueueKind queue = EventQueueKind::kCalendar;
  /// Executors for the sharded parallel engine: 1 = the classic
  /// single-queue simulator (code path for code path); S > 1 = executor 0
  /// runs the whole protocol plane (hosts, adapters, protocols, traffic,
  /// metrics) on the calling thread and S-1 workers own contiguous bands
  /// of switches, synchronized in conservative lookahead windows (see
  /// sim/shard.h). Same contract as the queue kind: results are
  /// bit-identical at any shard count (the shard-determinism gate pins
  /// Summary, BENCH rows and check verdicts across --shards 1/2/4).
  /// Fault injection, membership-independent switch multicast and the
  /// load-aware strategy are v1-unsupported under sharding (the ctor and
  /// the entry points throw).
  int shards = 1;
};

struct ExperimentConfig {
  EngineConfig engine;
  FabricConfig fabric;
  AdapterConfig adapter;
  ProtocolConfig protocol;
  TrafficConfig traffic;
  UpDownOptions routing;
  SwitchMcastConfig switch_mcast;
  /// How group structures and switch-level multicast trees are built
  /// (single-root baseline, partition-merge, load-aware, multi-root;
  /// per-run or per-group).
  TreeStrategyConfig tree;
  /// Injected faults (all rates 0 = the lossless fabric). Pair nonzero
  /// rates with protocol.ack_timeout so senders can actually recover.
  FaultConfig faults;
  MembershipConfig membership;
  std::uint64_t seed = 1;
};

class Network {
 public:
  /// Builds the runtime network. `groups` lists the multicast groups
  /// (see traffic/groups.h for generators).
  Network(Topology topo, std::vector<MulticastGroupSpec> groups,
          ExperimentConfig config = ExperimentConfig());
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;
  ~Network();

  /// Runs a traffic-driven experiment: generate for `warmup + measure`
  /// byte-times, record samples only for messages created after `warmup`,
  /// then drain in-flight messages for up to `drain_cap` further byte-times.
  void run(Time warmup, Time measure, Time drain_cap = 500'000);

  /// Injects one application demand directly (tests and examples).
  void inject(const Demand& demand);

  /// Sends a *switch-level* multicast (Section 3): the fabric replicates
  /// the worm along a tree encoded in its header; routes are restricted to
  /// the group's strategy-chosen up/down spanning tree. Returns the message
  /// context for metrics.
  ///
  /// Admission gate: the paper's scheme (b) deadlock argument requires
  /// switch-level multicasts to be *serialized* (every worm climbs through
  /// the one root, whose arbitration orders them); two concurrent worms
  /// whose trees overlap can otherwise form a port-claim/backpressure
  /// cycle that no interrupt can break — a stopped branch cannot even send
  /// its closing trailer. The gate generalizes that rule to arbitrary tree
  /// strategies: a multicast dispatches immediately iff its planned tree is
  /// node-disjoint from every in-flight multicast (disjoint trees share no
  /// channels, so neither can ever wait on the other, whatever their
  /// orientations); otherwise it queues FIFO and is released as conflicting
  /// messages close. Under the single-root strategy every tree contains the
  /// root, so the gate degenerates to exactly the paper's serialization;
  /// the alternative strategies regain concurrency precisely where their
  /// trees do not collide. Queue wait counts toward message latency.
  std::shared_ptr<MessageContext> send_switch_multicast(HostId src, GroupId group,
                                                        std::int64_t payload);

  /// Sends a *switch-level* broadcast (Section 3, last paragraph): the
  /// worm climbs to the up/down root and floods the spanning tree's down
  /// links; every other host receives one copy.
  std::shared_ptr<MessageContext> send_switch_broadcast(HostId src,
                                                        std::int64_t payload);

  [[nodiscard]] SwitchMcastEngine& switch_mcast_engine() { return *mcast_engine_; }

  /// Switch-level multicasts queued behind the admission gate (their tree
  /// overlaps an in-flight one). Tests observe serialization through this.
  [[nodiscard]] std::size_t mcast_gate_depth() const {
    return gate_queue_.size();
  }

  /// Advances the simulation (tests and examples drive this directly).
  /// Sharded runs advance every executor and leave all clocks aligned at
  /// `deadline`, so observable state reads the same as the classic path.
  void run_until(Time deadline) {
    if (engine_) {
      engine_->run_until(deadline);
    } else {
      sim_.run_until(deadline);
    }
  }
  void run_to_quiescence() {
    if (engine_) {
      engine_->run_to_quiescence();
    } else {
      sim_.run();
    }
  }

  [[nodiscard]] Simulator& sim() { return sim_; }
  /// The sharded engine, null on classic (shards = 1) runs.
  [[nodiscard]] const ShardedEngine* engine() const { return engine_.get(); }
  /// Executors actually running (1 on the classic path; config shards may
  /// be clamped when there are fewer switches than worker slots).
  [[nodiscard]] int num_executors() const {
    return engine_ ? engine_->num_executors() : 1;
  }
  /// Events dispatched / deepest queue across all executors (the classic
  /// single-Simulator numbers when unsharded) — benches read these instead
  /// of sim().events_dispatched() so telemetry covers every shard.
  [[nodiscard]] std::int64_t events_dispatched() const {
    return engine_ ? engine_->events_dispatched() : sim_.events_dispatched();
  }
  [[nodiscard]] std::size_t event_queue_peak() const {
    return engine_ ? engine_->event_queue_peak() : sim_.event_queue_peak();
  }
  /// Flight-recorder totals summed over every executor's ring.
  [[nodiscard]] std::int64_t trace_recorded() const;
  [[nodiscard]] std::int64_t trace_dropped() const;
  /// The shared worm arena (see sim/arena.h); benches read its counters.
  [[nodiscard]] const RecyclePool<Worm>& worm_pool() const {
    return worm_pool_;
  }
  [[nodiscard]] const Topology& topology() const { return topo_; }
  [[nodiscard]] Fabric& fabric() { return *fabric_; }
  [[nodiscard]] const UpDownRouting& routing() const { return *routing_; }
  /// The active tree strategy (group-structure construction policy).
  [[nodiscard]] const TreeStrategy& tree_strategy() const { return *strategy_; }
  [[nodiscard]] const GroupTables& tables() const { return *tables_; }
  [[nodiscard]] Metrics& metrics() { return metrics_; }
  [[nodiscard]] int num_hosts() const { return topo_.num_hosts(); }
  [[nodiscard]] HostAdapter& adapter(HostId h) { return *adapters_[h]; }
  [[nodiscard]] HostProtocol& protocol(HostId h) { return *protocols_[h]; }
  /// The experiment's fault injector (always present; unarmed when no
  /// faults are configured). Tests use it to force deterministic faults or
  /// schedule link outages before/while running.
  [[nodiscard]] FaultInjector& faults() { return *faults_; }

  // --- permanent faults -----------------------------------------------

  /// Schedules a crash-stop failure of host `h` at `when`: queued
  /// transmissions vanish (the worm mid-DMA finishes), every buffer is
  /// released, and the host never sends or accepts another byte. The crash
  /// is *silent* — survivors must detect it through ACK/probe suspicion
  /// and then repair the group structures around it.
  void crash_host(HostId h, Time when);

  /// Schedules the permanent death of link `l` at `when`: both directed
  /// channels swallow traffic forever and the up/down routing recomputes
  /// (tolerating a partitioned residue), invalidating every cached route
  /// so retransmissions travel the healed paths.
  void fail_link(LinkId l, Time when);

  /// Schedules *flap cycles* on link `l` between `from` and `until`: both
  /// directed channels go down and come back together, with keyed-random
  /// down/up windows around the given means. Unlike fail_link the link
  /// recovers, so routing is deliberately NOT recomputed — cached routes
  /// stay valid and retransmissions bridge the outage windows. The
  /// schedule is a pure function of (seed, link id): bit-identical at any
  /// --jobs. Returns the number of down-windows scheduled.
  int flap_link(LinkId l, Time from, Time until, Time mean_down, Time mean_up);

  /// Schedules an up/down root migration to `new_root` at `when`: the
  /// general routing re-anchors (rebuilding its spanning tree and caches)
  /// and the tree strategy follows (re-rooting owned routings, dropping
  /// cached multicast plans, re-assigning multi-root groups). Worms already
  /// in flight carry their old routes and finish under the old labels.
  void migrate_root(NodeId new_root, Time when);

  /// Re-plans strategy trees against the current load snapshot (the
  /// load-aware strategy's refresh hook; a no-op for static strategies).
  /// Returns true when any future plan changed.
  bool replan_trees() { return strategy_->replan(); }

  // --- membership churn -------------------------------------------------

  /// Asks the membership coordinator to add `h` to group `g` at `when`.
  /// The join queues behind earlier operations (op_cost pacing); under
  /// overload it is shed and retried with back-off up to
  /// membership.max_join_attempts. A join of a current member is applied
  /// idempotently; a join of a former member is a *rejoin* and resets the
  /// group's dedup epoch at the joiner.
  void request_join(GroupId g, HostId h, Time when);

  /// Asks the coordinator to remove `h` from group `g` at `when` — a
  /// clean, voluntary departure: no suspicion, no repair-grace burn, and
  /// the leaver finishes forwarding what it already holds. Leaves queue
  /// like joins but are never shed.
  void request_leave(GroupId g, HostId h, Time when);

  /// Deepest the membership queue ever got (overload indicator).
  [[nodiscard]] std::int64_t membership_queue_peak() const {
    return membership_queue_peak_;
  }

  /// Declares `dead` crashed and repairs every shared structure around it:
  /// abandons/shrinks affected message accounting, splices `dead` out of
  /// each group circuit, re-parents orphaned tree subtrees, then lets each
  /// surviving protocol retarget its in-flight sends. Idempotent; invoked
  /// automatically by the failure detector, callable directly by tests.
  void declare_host_dead(HostId dead);

  /// Cumulative structure-repair counts from declare_host_dead.
  [[nodiscard]] const GroupTables::RepairStats& repair_stats() const {
    return repair_stats_;
  }
  [[nodiscard]] bool host_removed(HostId h) const {
    return removed_hosts_.count(h) > 0;
  }

  /// One-line-per-host dump of recovery-relevant state (active tasks, pool
  /// bytes held, un-ACKed sends, adapter queue depths) — what the deadlock
  /// watchdog prints when a faulted run stalls.
  [[nodiscard]] std::string debug_report() const;

  /// Arms a deadlock watchdog over this network: if `interval` byte-times
  /// pass with messages outstanding but no byte moving, it captures
  /// debug_report() (echoed to stderr) so a hung run explains itself.
  /// Returns the watchdog for inspection; lives as long as the Network.
  DeadlockWatchdog& attach_watchdog(Time interval);

  // --- observability (wormtrace) --------------------------------------

  /// Turns on the flight recorder: every instrumented component starts
  /// appending to a ring of `capacity` events (oldest overwritten first).
  /// Sharded runs give every executor its own ring of this capacity (a
  /// component records on its owning executor's tracer); write_trace and
  /// check_expectations see the canonical time-merged stream.
  void enable_tracing(std::size_t capacity = Tracer::kDefaultCapacity);

  /// Writes the recorded events as Chrome trace-event JSON (load the file
  /// at ui.perfetto.dev; 1 simulated byte-time is rendered as 1 us).
  [[nodiscard]] bool write_trace(const std::string& path) const;

  /// Registers every network-wide counter (protocol metrics, fabric byte
  /// totals, switch-multicast engine decisions, simulator event stats,
  /// tracer occupancy) so benches serialize them uniformly.
  void register_counters(CounterRegistry& reg) const;

  /// Post-run protocol expectation checking (wormcheck): replays the
  /// flight-recorder ring through the standard rule pack derived from this
  /// experiment's protocol and switch-multicast configuration, and returns
  /// the violation report. Refuses loudly — `usable == false`, never a
  /// silent pass — when tracing was off or the ring wrapped (a wrapped
  /// ring lost events, so "no violation found" would be meaningless);
  /// raise enable_tracing's capacity until dropped() stays 0 to check
  /// longer runs.
  [[nodiscard]] check::CheckReport check_expectations() const;

  /// Aggregate results of the last run.
  struct Summary {
    double offered_load = 0.0;             // generation-rate knob
    double measured_utilization = 0.0;     // per-host output-link utilization
                                           // over the window (paper's x-axis)
    double mcast_latency_mean = 0.0;       // per-destination (Figures 10/11)
    double mcast_latency_p95 = 0.0;
    double mcast_completion_mean = 0.0;    // whole-group
    double unicast_latency_mean = 0.0;
    // Sample counts behind the latency aggregates: a mean/percentile with a
    // zero count is not a measurement, and emitters must say null, not 0.
    std::int64_t mcast_samples = 0;
    std::int64_t mcast_completion_samples = 0;
    std::int64_t unicast_samples = 0;
    double throughput_per_host = 0.0;      // delivered payload B / bt / host
    std::int64_t messages = 0;
    std::int64_t drops = 0;
    std::int64_t nacks = 0;
    std::int64_t retransmits = 0;
    std::int64_t outstanding = 0;          // undelivered at end (stall sign)
    Time oldest_outstanding_age = 0;
    std::int64_t fabric_overflows = 0;     // must be 0
    // Fault-injection experiments.
    std::int64_t faults_injected = 0;      // kills + ctrl/rx drops + outages
    std::int64_t bytes_swallowed = 0;      // channel bytes lost to faults
                                           // (never counted as delivered)
    std::int64_t ack_timeouts = 0;
    std::int64_t duplicates_suppressed = 0;
    std::int64_t deliveries_failed = 0;    // sends abandoned (max_attempts)
    std::int64_t messages_completed = 0;
    // Permanent failures & repair.
    std::int64_t suspicions = 0;           // failure-detector accusations
    std::int64_t hosts_crashed = 0;        // crash-stop faults injected
    std::int64_t hosts_removed = 0;        // declared dead + repaired around
    std::int64_t links_failed = 0;         // permanent link deaths
    std::int64_t sends_rerouted = 0;       // sends retargeted by repair
    std::int64_t messages_disrupted = 0;   // abandoned at repair time
    std::int64_t unicasts_flushed = 0;     // scheme (c) switch-side flushes
    Time last_repair_time = 0;
    // Membership churn (joins/leaves/rejoins + overload shedding).
    std::int64_t joins_requested = 0;      // distinct join intents
    std::int64_t joins_applied = 0;
    std::int64_t joins_shed = 0;           // shed events (retries may follow)
    std::int64_t joins_abandoned = 0;      // sheds with no retry budget left
    std::int64_t rejoins = 0;
    std::int64_t leaves = 0;
    double join_latency_mean = 0.0;        // request -> applied, byte-times
    double join_latency_p95 = 0.0;
    std::int64_t join_samples = 0;
    std::int64_t membership_queue_peak = 0;
    std::int64_t flap_windows = 0;         // recovering link outages scheduled
  };
  [[nodiscard]] Summary summary() const;

 private:
  /// One switch-level multicast admitted to the orientation gate but not
  /// yet dispatched (its plan is computed at dispatch time, so membership
  /// changes while queued are honored).
  struct GatedSend {
    HostId src = kNoHost;
    GroupId group = kNoGroup;
    std::int64_t payload = 0;
    bool broadcast = false;
    std::shared_ptr<MessageContext> ctx;
  };

  /// Every node (switches and host endpoints) the send's worms would touch
  /// if planned right now — the resource set the gate claims.
  [[nodiscard]] std::vector<NodeId> gate_footprint(const GatedSend& send) const;
  /// True iff none of `nodes` is claimed by an in-flight multicast.
  [[nodiscard]] bool gate_admissible(const std::vector<NodeId>& nodes) const;
  /// Admits a switch-level multicast: dispatch if its tree is disjoint from
  /// everything in flight (and nothing is queued ahead — strict FIFO),
  /// else queue.
  void gate_admit(GatedSend send);
  /// Claims the footprint and injects the send's worms into the fabric.
  void gate_dispatch(GatedSend send, std::vector<NodeId> nodes);
  /// Builds and sends the worm(s) for this multicast (plans at this
  /// moment, so membership changes while queued are honored).
  void gate_inject(const GatedSend& send);
  /// Metrics message-closed hook: releases the message's claimed nodes and
  /// pumps newly admissible queued sends.
  void on_message_closed(std::uint64_t message_id);
  void gate_pump();

  /// One queued membership operation. `requested_at` is the *first*
  /// request time, so join latency includes time lost to sheds.
  struct MembershipOp {
    bool join = false;
    GroupId group = kNoGroup;
    HostId host = kNoHost;
    Time requested_at = 0;
    int attempts = 0;  // tries consumed (sheds included)
  };
  void enqueue_join(GroupId g, HostId h, Time requested_at, int attempts);
  void pump_membership();
  void apply_join(const MembershipOp& op);
  void apply_leave(const MembershipOp& op);

  /// Builds the sharded engine (worker simulators, node->executor map,
  /// lookahead) when config_.engine.shards > 1; returns the plan the
  /// Fabric places channels and switches with (empty => classic path).
  [[nodiscard]] ShardPlan build_shard_plan();
  /// Throws when `what` is attempted on a sharded run (v1 limits: the
  /// feature mutates or reads worker-owned state mid-window).
  void require_unsharded(const char* what) const;
  /// All executors' trace events merged into one canonical stream
  /// (stable-sorted by time; per-executor recording order preserved).
  [[nodiscard]] std::vector<TraceEvent> merged_trace_snapshot() const;

  Topology topo_;
  std::vector<MulticastGroupSpec> groups_;
  ExperimentConfig config_;
  Simulator sim_;
  /// Executors 1..E-1 of a sharded run (empty, and engine_ null, at
  /// shards = 1). Declared before fabric_ so channels outlive nothing
  /// they reference and after sim_ so exec0 outlives the workers.
  std::vector<std::unique_ptr<Simulator>> worker_sims_;
  std::unique_ptr<ShardedEngine> engine_;
  RecyclePool<Worm> worm_pool_;
  Metrics metrics_;
  std::unique_ptr<Fabric> fabric_;
  std::unique_ptr<FaultInjector> faults_;
  std::unique_ptr<UpDownRouting> routing_;
  std::unique_ptr<TreeStrategy> strategy_;  // owns the tree-restricted routings
  std::unique_ptr<SwitchMcastEngine> mcast_engine_;
  std::unique_ptr<GroupTables> tables_;
  std::vector<std::unique_ptr<HostAdapter>> adapters_;
  std::vector<std::unique_ptr<HostProtocol>> protocols_;
  std::unique_ptr<TrafficGenerator> traffic_;
  std::unique_ptr<DeadlockWatchdog> watchdog_;
  std::unordered_set<HostId> removed_hosts_;
  // Multicast admission-gate state (see send_switch_multicast).
  std::deque<GatedSend> gate_queue_;            // FIFO, conflicting sends
  std::vector<std::int32_t> gate_node_claims_;  // by NodeId: in-flight users
  std::unordered_map<std::uint64_t, std::vector<NodeId>> gated_nodes_;
  // Membership coordinator state.
  std::deque<MembershipOp> membership_q_;
  bool membership_pump_armed_ = false;
  std::int64_t membership_queue_peak_ = 0;
  RandomStream membership_rng_{0};  // retry-jitter draws (reseeded in ctor)
  /// (group << 32 | host) keys of members that left — a later join of such
  /// a pair is a *rejoin* (the group's dedup state must reset).
  std::unordered_set<std::uint64_t> former_members_;
  /// Join time of members added after construction; a message created
  /// before a member's join never counted it as a destination, so a later
  /// leave must not shrink that message's destination set.
  std::unordered_map<std::uint64_t, Time> joined_at_;
  GroupTables::RepairStats repair_stats_;
  Time measure_span_ = 0;
  std::int64_t egress_at_window_start_ = 0;
  std::int64_t egress_at_window_end_ = 0;
};

}  // namespace wormcast
