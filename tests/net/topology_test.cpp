#include "net/topology.h"

#include <gtest/gtest.h>

#include "net/topologies.h"
#include "sim/random.h"

namespace wormcast {
namespace {

TEST(Topology, ConnectAssignsSequentialPorts) {
  Topology t;
  const NodeId a = t.add_switch();
  const NodeId b = t.add_switch();
  const NodeId c = t.add_switch();
  const LinkId ab = t.connect(a, b);
  const LinkId ac = t.connect(a, c);
  EXPECT_EQ(t.link(ab).port_a, 0);
  EXPECT_EQ(t.link(ac).port_a, 1);
  EXPECT_EQ(t.peer(ab, a), b);
  EXPECT_EQ(t.peer(ab, b), a);
  EXPECT_EQ(t.port_on(ab, b), 0);
  EXPECT_EQ(t.neighbor_via(a, 1), c);
}

TEST(Topology, HostBookkeeping) {
  Topology t;
  const NodeId sw = t.add_switch();
  const NodeId h0 = t.add_host();
  const NodeId h1 = t.add_host();
  t.connect(h0, sw);
  t.connect(h1, sw);
  EXPECT_EQ(t.num_hosts(), 2);
  EXPECT_EQ(t.node_of_host(0), h0);
  EXPECT_EQ(t.node_of_host(1), h1);
  EXPECT_EQ(t.switch_of_host(0), sw);
  EXPECT_EQ(t.switch_of_host(1), sw);
  EXPECT_NO_THROW(t.validate());
}

TEST(Topology, ValidateRejectsMultiPortHost) {
  Topology t;
  const NodeId sw1 = t.add_switch();
  const NodeId sw2 = t.add_switch();
  t.connect(sw1, sw2);
  const NodeId h = t.add_host();
  t.connect(h, sw1);
  t.connect(h, sw2);
  EXPECT_THROW(t.validate(), std::logic_error);
}

TEST(Topology, ValidateRejectsDisconnected) {
  Topology t;
  t.add_switch();
  t.add_switch();
  EXPECT_THROW(t.validate(), std::logic_error);
}

TEST(Topology, RejectsSelfLinkAndBadDelay) {
  Topology t;
  const NodeId a = t.add_switch();
  const NodeId b = t.add_switch();
  EXPECT_THROW(t.connect(a, a), std::logic_error);
  EXPECT_THROW(t.connect(a, b, 0), std::logic_error);
}

TEST(Topologies, TorusHasExpectedShape) {
  const Topology t = make_torus(8, 8);
  EXPECT_EQ(t.num_switches(), 64);
  EXPECT_EQ(t.num_hosts(), 64);
  // 2 fabric links per switch (right+down with wraparound) + 1 host link.
  EXPECT_EQ(t.num_links(), 64 * 2 + 64);
  for (NodeId n = 0; n < t.num_nodes(); ++n) {
    if (t.node(n).kind == NodeKind::kSwitch)
      EXPECT_EQ(t.node(n).ports.size(), 5u);  // 4 mesh + 1 host
  }
}

TEST(Topologies, SmallTorusAvoidsDuplicateLinks) {
  const Topology t = make_torus(2, 2);
  // 2x2: wraparound would duplicate; expect 4 unique fabric links + hosts.
  EXPECT_EQ(t.num_links(), 4 + 4);
  EXPECT_NO_THROW(t.validate());
}

TEST(Topologies, ShufflenetShape) {
  const Topology t = make_bidir_shufflenet(2, 3);
  EXPECT_EQ(t.num_switches(), 24);  // 3 columns x 8
  EXPECT_EQ(t.num_hosts(), 24);
  EXPECT_NO_THROW(t.validate());
  // Each switch originates p=2 forward links: 48 fabric links (some pairs
  // may merge when both directions coincide).
  EXPECT_GE(t.num_links() - 24, 40);
  EXPECT_LE(t.num_links() - 24, 48);
}

TEST(Topologies, MyrinetTestbedShape) {
  const Topology t = make_myrinet_testbed();
  EXPECT_EQ(t.num_switches(), 4);
  EXPECT_EQ(t.num_hosts(), 8);
  EXPECT_EQ(t.num_links(), 3 + 8);
  // Two hosts per switch.
  for (HostId h = 0; h < 8; ++h)
    EXPECT_EQ(t.switch_of_host(h), h / 2);
}

TEST(Topologies, StarAndLine) {
  const Topology star = make_star(5);
  EXPECT_EQ(star.num_switches(), 1);
  EXPECT_EQ(star.num_hosts(), 5);
  const Topology line = make_line(3);
  EXPECT_EQ(line.num_switches(), 3);
  EXPECT_EQ(line.num_links(), 2 + 3);
}

TEST(Topologies, RandomMeshIsValidAndConnected) {
  RandomStream rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const Topology t = make_random_mesh(12, 3.0, rng);
    EXPECT_EQ(t.num_switches(), 12);
    EXPECT_EQ(t.num_hosts(), 12);
    EXPECT_NO_THROW(t.validate());
  }
}

}  // namespace
}  // namespace wormcast
