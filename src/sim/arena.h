// Object recycling for the simulator's hot allocators.
//
// A saturated fig12-style run creates and destroys one Worm per fabric
// traversal — hundreds of thousands of shared_ptr<Worm> allocations, each
// dragging two or three vector allocations (route, mcast route) along.
// RecyclePool intercepts the destruction: instead of freeing, the object
// is reset in place (T::recycle() clears fields but keeps vector
// capacities) and parked on a free list, so steady state reuses warm
// objects whose internal buffers are already the right size. What remains
// per acquisition is one small shared_ptr control-block allocation — the
// aliasing deleter must live in a control block — which is an order of
// magnitude less work than the fresh-object path.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace wormcast {

/// Pool of reusable heap objects handed out as shared_ptr<T>. T must
/// provide `void recycle()` restoring the just-constructed state while
/// preserving internal buffer capacities.
///
/// Lifetime: handed-out objects may outlive the pool (metric collectors
/// keep worm references past Network teardown). The deleter holds the
/// pool's shared state; once the pool itself is destroyed the state is
/// marked closed and late returns simply free their object.
///
/// Thread safety: make() is only called from executor 0 (all worm
/// construction lives in the protocol plane), but under a sharded engine
/// the *last* reference to a worm can be dropped by a delivery closure
/// running on a worker executor, so the free list is guarded by a mutex.
/// The lock is uncontended in the single-shard case and held for a
/// vector push/pop otherwise. Consequence: with shards > 1 the
/// fresh/reused split depends on worker timing (recycle() restores the
/// as-constructed state, so physics never sees the difference) — the
/// shard-determinism gate excludes pool telemetry for exactly this
/// reason.
template <typename T>
class RecyclePool {
 public:
  RecyclePool() : state_(std::make_shared<State>()) {}
  RecyclePool(const RecyclePool&) = delete;
  RecyclePool& operator=(const RecyclePool&) = delete;
  ~RecyclePool() {
    if (state_ != nullptr) {
      const std::lock_guard<std::mutex> lock(state_->mu);
      state_->open = false;
    }
  }

  /// Returns a recycled object if one is parked, else allocates fresh.
  [[nodiscard]] std::shared_ptr<T> make() {
    State& st = *state_;
    std::unique_ptr<T> obj;
    {
      const std::lock_guard<std::mutex> lock(st.mu);
      if (!st.free.empty()) {
        obj = std::move(st.free.back());
        st.free.pop_back();
        ++st.reused;
      } else {
        ++st.fresh;
      }
    }
    if (obj != nullptr) {
      obj->recycle();
      return std::shared_ptr<T>(obj.release(), Deleter{state_});
    }
    return std::shared_ptr<T>(new T(), Deleter{state_});
  }

  /// Objects currently parked awaiting reuse.
  [[nodiscard]] std::size_t parked() const {
    const std::lock_guard<std::mutex> lock(state_->mu);
    return state_->free.size();
  }
  /// Allocation telemetry (hot-path bench counters).
  [[nodiscard]] std::uint64_t fresh_allocs() const {
    const std::lock_guard<std::mutex> lock(state_->mu);
    return state_->fresh;
  }
  [[nodiscard]] std::uint64_t reuses() const {
    const std::lock_guard<std::mutex> lock(state_->mu);
    return state_->reused;
  }

 private:
  struct State {
    mutable std::mutex mu;
    std::vector<std::unique_ptr<T>> free;
    std::uint64_t fresh = 0;
    std::uint64_t reused = 0;
    bool open = true;
  };
  struct Deleter {
    std::shared_ptr<State> state;
    void operator()(T* obj) const {
      std::unique_lock<std::mutex> lock(state->mu);
      if (state->open) {
        state->free.emplace_back(obj);
      } else {
        lock.unlock();
        delete obj;
      }
    }
  };

  std::shared_ptr<State> state_;
};

}  // namespace wormcast
