
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/traffic/groups_test.cpp" "tests/CMakeFiles/groups_test.dir/traffic/groups_test.cpp.o" "gcc" "tests/CMakeFiles/groups_test.dir/traffic/groups_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/wormcast_core.dir/DependInfo.cmake"
  "/root/repo/build/src/adapter/CMakeFiles/wormcast_adapter.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/wormcast_net.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/wormcast_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wormcast_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
