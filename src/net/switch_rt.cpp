#include "net/switch_rt.h"

#include <iterator>
#include <cassert>
#include <stdexcept>

#include "net/switch_mcast.h"
#include "net/topology.h"
#include "sim/trace.h"

namespace wormcast {

InPort::InPort(SwitchRt& sw, PortId port) : sw_(sw), port_(port) {}

void InPort::on_head(const WormPtr& worm, std::int64_t wire_len, bool tail) {
  assert(wire_len >= 2 && "worm must carry at least payload + trailer");
  // Single-byte worms are trailer-only multicast fragments; they occur only
  // on host-bound ports (switch-bound fragments always lead with at least
  // one route byte the next switch consumes).
  assert(!tail && "single-byte worm at a switch input");
  (void)tail;
  rx_queue_.push_back(RxWorm{worm, wire_len, 1, false});
  rx_queue_.back().run_end = sw_.sim().now();
  ++buffered_;
  if (buffered_ > sw_.slack_capacity(port_)) sw_.note_overflow();
  check_stop();
  if (rx_queue_.size() == 1) begin_routing();
}

void InPort::on_body(bool tail) {
  assert(!rx_queue_.empty());
  RxWorm& rx = rx_queue_.back();
  ++rx.received;
  rx.run_end = sw_.sim().now();
  if (tail) rx.tail_seen = true;
  if (rx.discard) {
    // Flushed worm: swallow the byte. When fully drained and it is still
    // the front, retire it.
    if (tail && &rx == &rx_queue_.front()) {
      rx_queue_.pop_front();
      if (!rx_queue_.empty()) begin_routing();
    }
    return;
  }
  ++buffered_;
  if (buffered_ > sw_.slack_capacity(port_)) sw_.note_overflow();
  check_stop();
  if (connected_ && &rx == &rx_queue_.front()) {
    sw_.out_port(out_port_).channel->kick();
  } else if (mcast_active_ && &rx == &rx_queue_.front()) {
    sw_.mcast_engine()->on_input_bytes(*this);
  }
}

void InPort::begin_routing() {
  assert(!rx_queue_.empty() && !rx_queue_.front().routed);
  sw_.sim().after(sw_.config().routing_latency, [this] { do_route(); });
}

void InPort::do_route() {
  assert(!rx_queue_.empty());
  RxWorm& front = rx_queue_.front();
  assert(!front.routed);
  front.routed = true;
  // The route byte is consumed (stripped) by the routing decision.
  --buffered_;
  after_byte_removed();

  if (front.worm->kind == WormKind::kSwitchMcast &&
      front.worm->route_offset >= front.worm->route.size()) {
    // Tree-encoded multicast, or a broadcast worm that has finished its
    // climb to the flood point: hand over to the multicast engine.
    McastEngine* engine = sw_.mcast_engine();
    if (engine == nullptr)
      throw std::logic_error("switch-level multicast worm but no engine installed");
    mcast_active_ = true;
    engine->start(*this);
    return;
  }

  // Unicast forwarding (also the climb phase of a broadcast worm).
  const SourceRoute& route = front.worm->route;
  assert(front.worm->route_offset < route.size() && "source route exhausted");
  const PortId out = route.at(front.worm->route_offset++);
  assert(out >= 0 && out < static_cast<PortId>(sw_.n_ports()));
  sw_.request_output(*this, out);
}

bool InPort::byte_available() const {
  if (!connected_ || rx_queue_.empty()) return false;
  return front_available() > 0;
}

std::int64_t InPort::front_available() const {
  const RxWorm& front = rx_queue_.front();
  const Time pending = std::max<Time>(0, front.run_end - sw_.sim().now());
  return (front.received - pending - 1) - forwarded_;
}

std::int64_t InPort::rx_burst_budget() const {
  // Bytes this slack buffer can absorb without the STOP threshold becoming
  // reachable even in per-byte stepping (whose transient peak during a
  // matched arrive/drain run is one byte above the committed total).
  if (stop_sent_) return 0;
  return std::max<std::int64_t>(0, sw_.config().stop_threshold - 1 - buffered_);
}

void InPort::on_body_burst(std::int64_t n, bool tail) {
  assert(n >= 2 && !tail && "tails are always delivered per-byte");
  assert(!rx_queue_.empty());
  RxWorm& rx = rx_queue_.back();
  rx.received += n;
  rx.run_end = sw_.sim().now() + n - 1;
  if (rx.discard) return;  // flushed worm: the per-byte tail retires it
  buffered_ += n;
  if (buffered_ > sw_.slack_capacity(port_)) sw_.note_overflow();
  check_stop();
  if (connected_ && &rx == &rx_queue_.front()) {
    sw_.out_port(out_port_).channel->kick();
  } else if (mcast_active_ && &rx == &rx_queue_.front()) {
    sw_.mcast_engine()->on_input_bytes(*this);
  }
}

std::int64_t InPort::burst_available() const {
  if (!connected_ || rx_queue_.empty() || forwarded_ < 1) return 0;
  if (front_available() < 1) return 0;  // need one logically-arrived byte
  const RxWorm& front = rx_queue_.front();
  // All physically buffered bytes of the front worm are committable once one
  // has logically arrived: pending bytes arrive exactly one per byte-time,
  // matching the send rate. The tail byte always steps per-byte.
  std::int64_t n = (front.received - 1) - forwarded_;
  if (front.tail_seen) --n;
  // Drain-side flow-control guards: the run must neither cross the GO
  // threshold (when stopped upstream) nor let per-byte stepping's transient
  // peak reach STOP (when not stopped) — otherwise a signal would fire
  // mid-run in one mode but not the other.
  if (stop_sent_) {
    n = std::min(n, buffered_ - sw_.config().go_threshold - 1);
  } else if (buffered_ > sw_.config().stop_threshold - 2) {
    return 0;
  }
  return std::max<std::int64_t>(0, n);
}

std::int64_t InPort::take_bytes(std::int64_t max) {
  const std::int64_t n = std::min(max, burst_available());
  assert(n >= 1);
  forwarded_ += n;
  buffered_ -= n;
  after_byte_removed();
  // The run's newest byte leaves at now + n - 1 (multicast-IDLE detection
  // compares against "last activity", so a future stamp is conservative
  // and exact once the run completes).
  sw_.out_port(out_port_).last_data_byte = sw_.sim().now() + n - 1;
  return n;
}

Time InPort::next_byte_time() const {
  if (!connected_ || rx_queue_.empty()) return kTimeNever;
  const RxWorm& front = rx_queue_.front();
  const std::int64_t physical = (front.received - 1) - forwarded_;
  // Starved only by bytes that are buffered but not logically arrived: one
  // becomes forwardable every byte-time, and no kick will announce it.
  if (physical > 0 && front_available() <= 0) return sw_.sim().now() + 1;
  return kTimeNever;
}

TxByte InPort::take_byte() {
  assert(byte_available());
  RxWorm& front = rx_queue_.front();
  TxByte b;
  b.head = (forwarded_ == 0);
  if (b.head) {
    b.worm = front.worm;
    b.wire_len = front.wire_len - 1;  // route byte stripped at this switch
  }
  ++forwarded_;
  // Framing is tail-driven: the incoming tail symbol is authoritative (the
  // declared wire length is advisory — scheme (b) fragments end early).
  b.tail = front.tail_seen && (forwarded_ == front.received - 1);
  --buffered_;
  after_byte_removed();
  sw_.out_port(out_port_).last_data_byte = sw_.sim().now();
  return b;
}

void InPort::on_tail_sent() {
  assert(connected_ && !rx_queue_.empty());
  assert(rx_queue_.front().tail_seen);
  rx_queue_.pop_front();
  connected_ = false;
  const PortId done = out_port_;
  out_port_ = kNoPort;
  forwarded_ = 0;
  sw_.release_output(done);
  if (!rx_queue_.empty()) begin_routing();
}

void InPort::granted(PortId out_port) {
  assert(!connected_);
  connected_ = true;
  out_port_ = out_port;
  forwarded_ = 0;
}

void InPort::mcast_consume() {
  --buffered_;
  after_byte_removed();
}

void InPort::flush_front() {
  assert(!rx_queue_.empty());
  RxWorm& front = rx_queue_.front();
  assert(front.routed && !connected_ && !mcast_active_ &&
         "can only flush a worm waiting for an output");
  front.worm->flushed = true;
  // Drop the bytes already buffered; the rest of the worm drains out of the
  // network as it arrives and is swallowed byte by byte.
  const std::int64_t held = front.received - 1;  // route byte already consumed
  buffered_ -= held;
  after_byte_removed();
  if (front.tail_seen) {
    rx_queue_.pop_front();
    if (!rx_queue_.empty()) begin_routing();
  } else {
    front.discard = true;
  }
}

void InPort::mcast_finish_front() {
  assert(mcast_active_ && !rx_queue_.empty());
  rx_queue_.pop_front();
  mcast_active_ = false;
  if (!rx_queue_.empty()) begin_routing();
}

void InPort::after_byte_removed() {
  if (stop_sent_ && buffered_ <= sw_.config().go_threshold) {
    stop_sent_ = false;
    sw_.in_channel(port_)->signal_go();
  }
}

void InPort::check_stop() {
  if (!stop_sent_ && buffered_ >= sw_.config().stop_threshold) {
    stop_sent_ = true;
    sw_.in_channel(port_)->signal_stop();
  }
}

// --- SwitchRt ---------------------------------------------------------------

SwitchRt::SwitchRt(Simulator& sim, NodeId node, int n_ports, SwitchConfig config)
    : sim_(sim), node_(node), config_(config) {
  if (config_.go_threshold >= config_.stop_threshold)
    throw std::logic_error("GO threshold must be below STOP threshold");
  in_ports_.reserve(static_cast<std::size_t>(n_ports));
  for (PortId p = 0; p < n_ports; ++p)
    in_ports_.push_back(std::make_unique<InPort>(*this, p));
  out_ports_.resize(static_cast<std::size_t>(n_ports));
  in_channels_.resize(static_cast<std::size_t>(n_ports), nullptr);
}

SwitchRt::~SwitchRt() = default;

void SwitchRt::set_channels(PortId p, Channel* in, Channel* out) {
  in_channels_[p] = in;
  out_ports_[p].channel = out;
  in->set_sink(in_ports_[p].get());
}

RxSink* SwitchRt::sink(PortId p) { return in_ports_[p].get(); }

void SwitchRt::request_output(InPort& in, PortId out) {
  OutPort& op = out_ports_[out];
  if (op.held_by_mcast && mcast_engine_ != nullptr &&
      mcast_engine_->maybe_flush_unicast(*this, in, out)) {
    return;  // the unicast was flushed; nothing to queue
  }
  in.request_time_ = sim_.now();
  op.waiters.push_back(&in);
  if (!op.busy && !op.held_by_mcast) schedule_arbitration(out);
}

void SwitchRt::schedule_arbitration(PortId out) {
  OutPort& op = out_ports_[out];
  if (op.arb_pending) return;
  op.arb_pending = true;
  sim_.after(0, [this, out] {
    out_ports_[out].arb_pending = false;
    grant_next(out);
  });
}

void SwitchRt::grant_next(PortId out) {
  OutPort& op = out_ports_[out];
  if (op.busy || op.held_by_mcast) return;
  // Multicast branches re-acquire first (they resume an in-flight worm).
  if (!op.mcast_waiters.empty()) {
    auto claim = std::move(op.mcast_waiters.front());
    op.mcast_waiters.pop_front();
    op.held_by_mcast = true;
    claim();
    return;
  }
  if (op.waiters.empty()) return;
  // Canonical winner: earliest request, in-port id breaking same-tick
  // ties. Requests that raced within one tick resolve identically no
  // matter which event happened to enqueue first.
  auto best = op.waiters.begin();
  for (auto it = std::next(best); it != op.waiters.end(); ++it) {
    if ((*it)->request_time_ < (*best)->request_time_ ||
        ((*it)->request_time_ == (*best)->request_time_ &&
         (*it)->port() < (*best)->port()))
      best = it;
  }
  InPort* next = *best;
  op.waiters.erase(best);
  op.busy = true;
  WORMTRACE(sim_, kArbGrant, node_, out,
            next->front_worm() != nullptr ? next->front_worm()->id : 0,
            next->port());
  next->granted(out);
  op.channel->attach_feed(next);
}

void SwitchRt::release_output(PortId out) {
  OutPort& op = out_ports_[out];
  assert(op.busy);
  op.busy = false;
  // Deferred like requests: a release and a request landing on the same
  // tick must resolve the same way regardless of which event ran first.
  schedule_arbitration(out);
}

bool SwitchRt::claim_output_for_mcast(PortId out, std::function<void()> on_free) {
  OutPort& op = out_ports_[out];
  if (!op.busy && !op.held_by_mcast) {
    op.held_by_mcast = true;
    return true;
  }
  op.mcast_waiters.push_back(std::move(on_free));
  return false;
}

void SwitchRt::release_mcast_output(PortId out) {
  OutPort& op = out_ports_[out];
  assert(op.held_by_mcast);
  op.held_by_mcast = false;
  schedule_arbitration(out);
}

bool SwitchRt::cancel_request(InPort& in, PortId out) {
  auto& waiters = out_ports_[out].waiters;
  for (auto it = waiters.begin(); it != waiters.end(); ++it) {
    if (*it == &in) {
      waiters.erase(it);
      return true;
    }
  }
  return false;
}

std::int64_t SwitchRt::slack_capacity(PortId p) const {
  const Channel* in = in_channels_[p];
  const Time delay = in != nullptr ? in->delay() : kDefaultLinkDelay;
  return config_.stop_threshold + 2 * delay + 4;
}

std::size_t SwitchRt::heap_bytes_estimate() const {
  std::size_t bytes = sizeof(SwitchRt) +
                      in_ports_.capacity() * sizeof(std::unique_ptr<InPort>) +
                      out_ports_.capacity() * sizeof(OutPort) +
                      in_channels_.capacity() * sizeof(Channel*);
  for (const auto& in : in_ports_)
    if (in) bytes += in->heap_bytes_estimate();
  for (const auto& out : out_ports_)
    bytes += out.waiters.heap_bytes_estimate() +
             out.mcast_waiters.heap_bytes_estimate();
  return bytes;
}

}  // namespace wormcast
