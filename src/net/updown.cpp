#include "net/updown.h"

#include <algorithm>
#include <array>
#include <queue>
#include <stdexcept>
#include <utility>

namespace wormcast {

UpDownRouting::UpDownRouting(const Topology& topo, Options opts)
    : topo_(topo),
      tree_links_only_(opts.tree_links_only),
      level_override_(std::move(opts.level_override)) {
  if (!level_override_.empty() &&
      level_override_.size() != static_cast<std::size_t>(topo_.num_nodes()))
    throw std::logic_error(
        "level_override must label every node (hosts included)");
  // Root: requested; else the lowest (stage, id) switch when stage labels
  // are given; else the highest-degree switch (lowest id on ties).
  preferred_root_ = opts.root;
  if (preferred_root_ == kNoNode && !level_override_.empty()) {
    for (NodeId n = 0; n < topo_.num_nodes(); ++n) {
      if (topo_.node(n).kind != NodeKind::kSwitch) continue;
      if (preferred_root_ == kNoNode ||
          level_override_[static_cast<std::size_t>(n)] <
              level_override_[static_cast<std::size_t>(preferred_root_)])
        preferred_root_ = n;
    }
  }
  if (preferred_root_ == kNoNode) {
    std::size_t best_degree = 0;
    for (NodeId n = 0; n < topo_.num_nodes(); ++n) {
      if (topo_.node(n).kind != NodeKind::kSwitch) continue;
      if (preferred_root_ == kNoNode ||
          topo_.node(n).ports.size() > best_degree) {
        preferred_root_ = n;
        best_degree = topo_.node(n).ports.size();
      }
    }
  }
  if (preferred_root_ == kNoNode ||
      topo_.node(preferred_root_).kind != NodeKind::kSwitch)
    throw std::logic_error("up/down routing requires a switch root");
  link_dead_.assign(static_cast<std::size_t>(topo_.num_links()), false);
  rebuild(/*allow_partial=*/false);
}

void UpDownRouting::rebuild(bool allow_partial) {
  root_ = preferred_root_;

  // BFS levels from the root over the surviving links.
  levels_.assign(static_cast<std::size_t>(topo_.num_nodes()), -1);
  on_tree_.assign(static_cast<std::size_t>(topo_.num_links()), false);
  std::queue<NodeId> frontier;
  levels_[root_] = 0;
  frontier.push(root_);
  while (!frontier.empty()) {
    const NodeId n = frontier.front();
    frontier.pop();
    for (const TopoPort& p : topo_.node(n).ports) {
      if (link_dead_[p.link]) continue;
      const NodeId m = topo_.peer(p.link, n);
      if (levels_[m] == -1) {
        levels_[m] = levels_[n] + 1;
        on_tree_[p.link] = true;
        frontier.push(m);
      }
    }
  }
  if (!allow_partial) {
    for (int lv : levels_)
      if (lv == -1) throw std::logic_error("topology disconnected from root");
  }

  // Up/down labels: the up end is the endpoint with the smaller level;
  // node id breaks ties (lower id counts as higher in the tree). Dead and
  // disconnected links keep kNoNode, and no route may use them. With a
  // level_override the *stage* labels replace the BFS distances (still a
  // total (level, id) order, so still acyclic and deadlock-free); BFS
  // levels keep deciding connectivity either way.
  up_end_.assign(static_cast<std::size_t>(topo_.num_links()), kNoNode);
  for (LinkId l = 0; l < topo_.num_links(); ++l) {
    if (link_dead_[l]) continue;
    const TopoLink& lk = topo_.link(l);
    if (levels_[lk.node_a] == -1 || levels_[lk.node_b] == -1) continue;
    const int la = level_override_.empty()
                       ? levels_[lk.node_a]
                       : level_override_[static_cast<std::size_t>(lk.node_a)];
    const int lb = level_override_.empty()
                       ? levels_[lk.node_b]
                       : level_override_[static_cast<std::size_t>(lk.node_b)];
    if (la != lb)
      up_end_[l] = la < lb ? lk.node_a : lk.node_b;
    else
      up_end_[l] = std::min(lk.node_a, lk.node_b);
  }

  // Every rebuild (failure, root migration) invalidates memoized paths:
  // stale entries would silently route under the old labels.
  route_cache_.clear();
  hop_cache_.clear();
}

void UpDownRouting::fail_link(LinkId l) {
  if (link_dead_[l]) return;
  link_dead_[l] = true;
  ++links_failed_;
  rebuild(/*allow_partial=*/true);
}

void UpDownRouting::set_root(NodeId new_root) {
  if (new_root < 0 || new_root >= topo_.num_nodes() ||
      topo_.node(new_root).kind != NodeKind::kSwitch)
    throw std::logic_error("up/down root must be a switch");
  if (new_root == preferred_root_ && new_root == root_) return;
  preferred_root_ = new_root;
  rebuild(/*allow_partial=*/links_failed_ > 0);
}

UpDownRouting::PathResult UpDownRouting::shortest_legal_path(NodeId from_sw,
                                                             NodeId to_sw) const {
  // BFS over (node, phase): phase 0 = may still go up; phase 1 = has gone
  // down (only down traversals remain legal). Deterministic neighbour order
  // (port index) fixes one path per pair.
  const auto n_nodes = static_cast<std::size_t>(topo_.num_nodes());
  struct Pred {
    NodeId node = kNoNode;
    int phase = -1;
    LinkId link = kNoLink;
  };
  std::vector<std::array<int, 2>> dist(n_nodes, {-1, -1});
  std::vector<std::array<Pred, 2>> pred(n_nodes);
  std::queue<std::pair<NodeId, int>> frontier;
  dist[from_sw][0] = 0;
  frontier.push({from_sw, 0});
  while (!frontier.empty()) {
    const auto [n, ph] = frontier.front();
    frontier.pop();
    for (const TopoPort& p : topo_.node(n).ports) {
      const LinkId l = p.link;
      if (link_dead_[l] || up_end_[l] == kNoNode) continue;
      if (tree_links_only_ && !on_tree_[l]) continue;
      const NodeId m = topo_.peer(l, n);
      if (topo_.node(m).kind != NodeKind::kSwitch) continue;  // hosts are leaves
      const bool up = is_up_traversal(l, n);
      if (up && ph == 1) continue;  // down->up is illegal
      const int nph = up ? 0 : 1;
      if (dist[m][nph] != -1) continue;
      dist[m][nph] = dist[n][ph] + 1;
      pred[m][nph] = Pred{n, ph, l};
      frontier.push({m, nph});
    }
  }
  int end_phase = -1;
  if (dist[to_sw][0] != -1 &&
      (dist[to_sw][1] == -1 || dist[to_sw][0] <= dist[to_sw][1]))
    end_phase = 0;
  else if (dist[to_sw][1] != -1)
    end_phase = 1;
  if (from_sw == to_sw) end_phase = 0;
  if (end_phase == -1) throw std::logic_error("no legal up/down path");

  PathResult out;
  NodeId n = to_sw;
  int ph = end_phase;
  while (!(n == from_sw && dist[n][ph] == 0)) {
    const Pred& pr = pred[n][ph];
    out.nodes.push_back(n);
    out.links.push_back(pr.link);
    n = pr.node;
    ph = pr.phase;
  }
  out.nodes.push_back(from_sw);
  std::reverse(out.nodes.begin(), out.nodes.end());
  std::reverse(out.links.begin(), out.links.end());
  return out;
}

SourceRoute UpDownRouting::path_to_route(HostId src, const PathResult& path,
                                         NodeId final_dest_node) const {
  (void)src;
  std::vector<PortId> ports;
  ports.reserve(path.links.size() + 1);
  for (std::size_t i = 0; i < path.links.size(); ++i)
    ports.push_back(topo_.port_on(path.links[i], path.nodes[i]));
  // Last switch: exit toward the destination host.
  const NodeId last_sw = path.nodes.back();
  const TopoNode& dest = topo_.node(final_dest_node);
  ports.push_back(topo_.port_on(dest.ports[0].link, last_sw));
  return SourceRoute(std::move(ports));
}

SourceRoute UpDownRouting::route(HostId src, HostId dst) const {
  if (src == dst) throw std::logic_error("route to self");
  const std::uint64_t key = pair_key(src, dst);
  if (const auto it = route_cache_.find(key); it != route_cache_.end())
    return it->second;
  const NodeId from_sw = topo_.switch_of_host(src);
  const NodeId to_sw = topo_.switch_of_host(dst);
  if (levels_[from_sw] == -1 || levels_[to_sw] == -1)
    throw std::logic_error("no legal up/down path");
  const PathResult path = shortest_legal_path(from_sw, to_sw);
  SourceRoute out = path_to_route(src, path, topo_.node_of_host(dst));
  route_cache_.emplace(key, out);
  return out;
}

void UpDownRouting::route_into(HostId src, HostId dst, SourceRoute& out) const {
  if (src == dst) throw std::logic_error("route to self");
  const std::uint64_t key = pair_key(src, dst);
  const auto it = route_cache_.find(key);
  if (it != route_cache_.end()) {
    out = it->second;  // vector copy-assign reuses out's allocation
    return;
  }
  out = route(src, dst);
}

int UpDownRouting::hop_count(HostId src, HostId dst) const {
  if (src == dst) return 0;
  const std::uint64_t key = pair_key(src, dst);
  if (const auto it = hop_cache_.find(key); it != hop_cache_.end())
    return it->second;
  const NodeId from_sw = topo_.switch_of_host(src);
  const NodeId to_sw = topo_.switch_of_host(dst);
  if (levels_[from_sw] == -1 || levels_[to_sw] == -1)
    throw std::logic_error("no legal up/down path");
  const PathResult path = shortest_legal_path(from_sw, to_sw);
  // Host link out, switch-to-switch links, host link in.
  const int hops = static_cast<int>(path.links.size()) + 2;
  hop_cache_.emplace(key, hops);
  return hops;
}

std::vector<NodeId> UpDownRouting::switch_path(HostId src, HostId dst) const {
  const NodeId from_sw = topo_.switch_of_host(src);
  const NodeId to_sw = topo_.switch_of_host(dst);
  return shortest_legal_path(from_sw, to_sw).nodes;
}

std::vector<PortId> UpDownRouting::down_tree_ports(NodeId sw) const {
  std::vector<PortId> out;
  const TopoNode& node = topo_.node(sw);
  for (std::size_t p = 0; p < node.ports.size(); ++p) {
    const LinkId l = node.ports[p].link;
    if (link_dead_[l]) continue;
    if (on_tree_[l] && up_end_[l] == sw) out.push_back(static_cast<PortId>(p));
  }
  return out;
}

SourceRoute UpDownRouting::route_to_root(HostId src) const {
  const NodeId from_sw = topo_.switch_of_host(src);
  if (from_sw == root_) return SourceRoute{};
  if (levels_[from_sw] == -1)
    throw std::logic_error("no legal up/down path");
  const PathResult path = shortest_legal_path(from_sw, root_);
  std::vector<PortId> ports;
  ports.reserve(path.links.size());
  for (std::size_t i = 0; i < path.links.size(); ++i)
    ports.push_back(topo_.port_on(path.links[i], path.nodes[i]));
  return SourceRoute(std::move(ports));
}

}  // namespace wormcast
