// Switch-level multicasting (Section 3 of the paper).
//
// A kSwitchMcast worm carries its delivery tree as an EncodedMcastRoute
// (Figure 2). At each switch the engine splits the branch list, claims one
// output port per branch, and replicates the incoming byte stream onto all
// of them. Three deadlock-avoidance schemes are modeled:
//
//  * kIdleFill (scheme a): the worm advances at the pace of the *slowest*
//    branch; non-blocked branches hold their paths and idle (IDLE fills).
//    Deadlock freedom requires every worm — unicast included — to be routed
//    on the up/down spanning tree only; the route construction enforces it.
//  * kInterrupt (scheme b): multicasts are serialized through the up/down
//    root; when any branch blocks, the non-blocked branches *terminate
//    their current fragment* and release their ports, resuming (with a
//    fresh header) when the blockage clears. Destinations reassemble
//    fragments; total ordering makes reassembly unambiguous.
//  * kFlushUnicast (scheme c): branches idle as in scheme (a), but a port
//    that has idled on behalf of a blocked multicast for longer than
//    `idle_flush_threshold` is flagged multicast-IDLE; a unicast worm
//    arriving at such a port is flushed from the network (backward reset)
//    and its source retransmits after a random timeout.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/channel.h"
#include "net/switch_rt.h"
#include "net/worm.h"
#include "sim/simulator.h"
#include "sim/types.h"

namespace wormcast {

enum class SwitchMcastScheme : std::uint8_t {
  kIdleFill,      // scheme (a): hold all branches, fill with IDLEs
  kInterrupt,     // scheme (b): release non-blocked branches, fragment
  kFlushUnicast,  // scheme (c): flush unicasts blocked on multicast-IDLE ports
};

/// Hook interface the switch input port calls into; implemented by
/// SwitchMcastEngine. One engine instance serves a whole fabric.
class McastEngine {
 public:
  virtual ~McastEngine() = default;
  /// The front worm of `in` is a routed kSwitchMcast worm; take it over.
  virtual void start(InPort& in) = 0;
  /// More bytes of the front worm arrived at `in`.
  virtual void on_input_bytes(InPort& in) = 0;
  /// A unicast worm at `in` requested output `out`, which a multicast
  /// branch holds. Return true to flush the unicast (scheme (c)); false to
  /// let it wait in the arbitration queue.
  virtual bool maybe_flush_unicast(SwitchRt& sw, InPort& in, PortId out) {
    (void)sw;
    (void)in;
    (void)out;
    return false;
  }
};

}  // namespace wormcast
