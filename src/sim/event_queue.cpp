#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace wormcast {

EventHandle EventQueue::schedule(Time when, Action action) {
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{when, seq, std::move(action)});
  pending_.insert(seq);
  ++live_count_;
  return EventHandle{seq};
}

void EventQueue::cancel(EventHandle handle) {
  if (!handle.valid()) return;
  if (pending_.erase(handle.seq_) == 0) return;  // already fired or cancelled
  cancelled_.insert(handle.seq_);
  --live_count_;
}

void EventQueue::drop_cancelled_head() {
  while (!heap_.empty()) {
    const auto it = cancelled_.find(heap_.top().seq);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    heap_.pop();
  }
}

Time EventQueue::next_time() const {
  // const_cast-free variant: scan past cancelled entries without mutating.
  // We accept the tiny cost of letting pop() do the real cleanup.
  auto* self = const_cast<EventQueue*>(this);
  self->drop_cancelled_head();
  return heap_.empty() ? kTimeNever : heap_.top().time;
}

EventQueue::Popped EventQueue::pop() {
  drop_cancelled_head();
  assert(!heap_.empty() && "pop() on empty EventQueue");
  // priority_queue::top() is const; move out via const_cast, then pop.
  auto& top = const_cast<Entry&>(heap_.top());
  Popped out{top.time, std::move(top.action)};
  pending_.erase(top.seq);
  heap_.pop();
  --live_count_;
  return out;
}

}  // namespace wormcast
