// Byte-level channel mechanics: line rate, propagation delay, framing,
// STOP/GO timing (Figure 1 semantics).
#include "net/channel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "sim/fault_injector.h"
#include "sim/simulator.h"

namespace wormcast {
namespace {

/// Feeds a single worm of `len` bytes.
class OneWormFeed final : public ByteFeed {
 public:
  OneWormFeed(WormPtr worm, std::int64_t len) : worm_(std::move(worm)), len_(len) {}

  [[nodiscard]] bool byte_available() const override { return sent_ < len_; }
  TxByte take_byte() override {
    TxByte b;
    b.head = sent_ == 0;
    if (b.head) {
      b.worm = worm_;
      b.wire_len = len_;
    }
    ++sent_;
    b.tail = sent_ == len_;
    return b;
  }
  void on_tail_sent() override { tail_sent_ = true; }

  [[nodiscard]] std::int64_t sent() const { return sent_; }
  [[nodiscard]] bool tail_sent() const { return tail_sent_; }

 private:
  WormPtr worm_;
  std::int64_t len_;
  std::int64_t sent_ = 0;
  bool tail_sent_ = false;
};

/// Records arrival times of every byte.
class RecordSink final : public RxSink {
 public:
  explicit RecordSink(Simulator& sim) : sim_(sim) {}
  void on_head(const WormPtr& worm, std::int64_t wire_len, bool) override {
    head_worm = worm;
    head_len = wire_len;
    times.push_back(sim_.now());
  }
  void on_body(bool tail) override {
    times.push_back(sim_.now());
    if (tail) tail_at = sim_.now();
  }

  Simulator& sim_;
  WormPtr head_worm;
  std::int64_t head_len = 0;
  std::vector<Time> times;
  Time tail_at = kTimeNever;
};

WormPtr worm_of(std::int64_t payload) {
  auto w = std::make_shared<Worm>();
  w->payload = payload;
  return w;
}

TEST(Channel, DeliversAtLineRateAfterPropagation) {
  Simulator sim;
  Channel ch(sim, /*delay=*/7);
  RecordSink sink(sim);
  ch.set_sink(&sink);
  OneWormFeed feed(worm_of(9), 10);
  ch.attach_feed(&feed);
  sim.run();
  ASSERT_EQ(sink.times.size(), 10u);
  EXPECT_EQ(sink.times.front(), 7);   // head: sent at 0, +7 propagation
  EXPECT_EQ(sink.times.back(), 16);   // one byte per byte-time thereafter
  for (std::size_t i = 1; i < sink.times.size(); ++i)
    EXPECT_EQ(sink.times[i] - sink.times[i - 1], 1);
  EXPECT_EQ(sink.head_len, 10);
  EXPECT_TRUE(feed.tail_sent());
  EXPECT_EQ(ch.bytes_sent(), 10);
}

TEST(Channel, StopHaltsSenderAfterPropagationDelay) {
  Simulator sim;
  Channel ch(sim, 5);
  RecordSink sink(sim);
  ch.set_sink(&sink);
  OneWormFeed feed(worm_of(99), 100);
  ch.attach_feed(&feed);
  // Receiver signals STOP at t=10; it takes effect at the sender at t=15,
  // before the t=15 byte goes out (control symbols win same-time ties).
  sim.at(10, [&] { ch.signal_stop(); });
  sim.run_until(40);
  // Sender sent bytes at t=0..14 (15 bytes), then froze.
  EXPECT_EQ(feed.sent(), 15);
  EXPECT_TRUE(ch.tx_stopped());
  // GO at 50 (arrives 55) resumes transmission.
  sim.at(50, [&] { ch.signal_go(); });
  sim.run();
  EXPECT_EQ(feed.sent(), 100);
  EXPECT_EQ(sink.times.size(), 100u);
}

TEST(Channel, BytesInFlightStillArriveAfterStop) {
  Simulator sim;
  Channel ch(sim, 5);
  RecordSink sink(sim);
  ch.set_sink(&sink);
  OneWormFeed feed(worm_of(50), 51);
  ch.attach_feed(&feed);
  sim.at(10, [&] { ch.signal_stop(); });
  sim.run_until(30);
  // All bytes sent before the freeze (t<=14) arrive by t=19.
  EXPECT_EQ(sink.times.size(), 15u);
  EXPECT_EQ(sink.times.back(), 19);
}

TEST(Channel, KickAfterFeedStarvationResumes) {
  Simulator sim;
  Channel ch(sim, 3);
  RecordSink sink(sim);
  ch.set_sink(&sink);

  // Feed that has a gap: bytes 0-4 available immediately, 5-9 at t=100.
  class GappyFeed final : public ByteFeed {
   public:
    explicit GappyFeed(WormPtr w) : worm_(std::move(w)) {}
    bool byte_available() const override {
      return sent_ < available_;
    }
    TxByte take_byte() override {
      TxByte b;
      b.head = sent_ == 0;
      if (b.head) {
        b.worm = worm_;
        b.wire_len = 10;
      }
      ++sent_;
      b.tail = sent_ == 10;
      return b;
    }
    void on_tail_sent() override {}
    WormPtr worm_;
    std::int64_t sent_ = 0;
    std::int64_t available_ = 5;
  } feed{worm_of(9)};

  ch.attach_feed(&feed);
  sim.at(100, [&] {
    feed.available_ = 10;
    ch.kick();
  });
  sim.run();
  ASSERT_EQ(sink.times.size(), 10u);
  EXPECT_EQ(sink.times[4], 7);    // fifth byte: sent t=4, +3
  EXPECT_EQ(sink.times[5], 103);  // resumed at t=100
}

TEST(Channel, SequentialWormsKeepOneByteSpacing) {
  Simulator sim;
  Channel ch(sim, 4);
  RecordSink sink(sim);
  ch.set_sink(&sink);
  OneWormFeed first(worm_of(3), 4);
  OneWormFeed second(worm_of(3), 4);
  ch.attach_feed(&first);
  // Attach the second feed just after the first's tail went out at t=3.
  sim.at(4, [&] { ch.attach_feed(&second); });
  sim.run();
  ASSERT_EQ(sink.times.size(), 8u);
  // Second worm's head leaves at t=4 (line rate respected across worms).
  EXPECT_EQ(sink.times[4], 8);
}

/// A OneWormFeed that also advertises bursts (everything but head and tail).
class BurstWormFeed final : public ByteFeed {
 public:
  BurstWormFeed(WormPtr worm, std::int64_t len)
      : worm_(std::move(worm)), len_(len) {}
  [[nodiscard]] bool byte_available() const override { return sent_ < len_; }
  TxByte take_byte() override {
    TxByte b;
    b.head = sent_ == 0;
    if (b.head) {
      b.worm = worm_;
      b.wire_len = len_;
    }
    ++sent_;
    b.tail = sent_ == len_;
    return b;
  }
  [[nodiscard]] std::int64_t burst_available() const override {
    if (sent_ == 0) return 0;
    return len_ - 1 - sent_;  // everything but the tail byte
  }
  std::int64_t take_bytes(std::int64_t max) override {
    const std::int64_t n = std::min(max, burst_available());
    sent_ += n;
    return n;
  }
  void on_tail_sent() override { tail_sent_ = true; }
  [[nodiscard]] bool tail_sent() const { return tail_sent_; }

 private:
  WormPtr worm_;
  std::int64_t len_;
  std::int64_t sent_ = 0;
  bool tail_sent_ = false;
};

/// RecordSink that also absorbs bursts (unbounded budget).
class BurstRecordSink final : public RxSink {
 public:
  explicit BurstRecordSink(Simulator& sim) : sim_(sim) {}
  void on_head(const WormPtr&, std::int64_t, bool) override { bytes += 1; }
  void on_body(bool tail) override {
    bytes += 1;
    if (tail) tail_at = sim_.now();
  }
  [[nodiscard]] std::int64_t rx_burst_budget() const override { return 1 << 20; }
  void on_body_burst(std::int64_t n, bool) override {
    bytes += n;
    ++burst_events;
  }
  Simulator& sim_;
  std::int64_t bytes = 0;
  std::int64_t burst_events = 0;
  Time tail_at = kTimeNever;
};

// The burst fast path must deliver the same bytes with the same framing
// timing as per-byte stepping — in far fewer events — and bytes_sent()
// must read identically mid-run in both modes (logical send times).
TEST(Channel, BurstModeMatchesPerByteWithFewerEvents) {
  struct Run {
    std::int64_t events = 0;
    std::int64_t bytes = 0;
    std::int64_t sent_at_4 = 0;
    std::int64_t sent_at_12 = 0;
    Time tail_at = kTimeNever;
    std::int64_t burst_events = 0;
  };
  const auto run_mode = [](bool burst) {
    Simulator sim;
    Channel ch(sim, /*delay=*/7);
    ch.set_burst_enabled(burst);
    BurstRecordSink sink(sim);
    ch.set_sink(&sink);
    BurstWormFeed feed(worm_of(15), 16);
    ch.attach_feed(&feed);
    Run r;
    sim.run_until(4);
    r.sent_at_4 = ch.bytes_sent();
    sim.run_until(12);
    r.sent_at_12 = ch.bytes_sent();
    sim.run();
    r.events = sim.events_dispatched();
    r.bytes = sink.bytes;
    r.tail_at = sink.tail_at;
    r.burst_events = sink.burst_events;
    EXPECT_TRUE(feed.tail_sent());
    EXPECT_EQ(ch.bytes_sent(), 16);
    return r;
  };
  const Run b = run_mode(true);
  const Run p = run_mode(false);
  EXPECT_EQ(b.bytes, p.bytes);
  EXPECT_EQ(b.tail_at, p.tail_at);
  EXPECT_EQ(b.sent_at_4, p.sent_at_4);
  EXPECT_EQ(b.sent_at_12, p.sent_at_12);
  EXPECT_GT(b.burst_events, 0);
  EXPECT_EQ(p.burst_events, 0);
  EXPECT_LT(b.events, p.events);
}

// Bytes a fault swallows must not count as sent (utilization would be
// inflated by traffic that never arrived); they are tracked separately.
TEST(Channel, SwallowedBytesCountedSeparatelyFromSent) {
  Simulator sim;
  Channel ch(sim, /*delay=*/3);
  RecordSink sink(sim);
  ch.set_sink(&sink);
  FaultInjector faults{RandomStream(1)};
  faults.schedule_outage(nullptr, 0, 1'000'000);
  ch.set_fault_injector(&faults);
  auto w = worm_of(9);
  w->kind = WormKind::kData;
  OneWormFeed feed(w, 10);
  ch.attach_feed(&feed);
  sim.run();
  EXPECT_TRUE(feed.tail_sent());  // the transmitter still drained
  EXPECT_EQ(sink.times.size(), 0u);
  EXPECT_EQ(ch.bytes_sent(), 0);
  EXPECT_EQ(ch.bytes_swallowed(), 10);
}

// A feed whose take path re-entrantly kicks the channel (as InPort does when
// forwarding a byte frees slack space) must not spawn a second pump chain:
// that would break the one-byte-per-byte-time line rate.
TEST(Channel, ReentrantKickFromTakePathKeepsLineRate) {
  Simulator sim;
  Channel ch(sim, /*delay=*/2);
  RecordSink sink(sim);
  ch.set_sink(&sink);

  class KickingFeed final : public ByteFeed {
   public:
    KickingFeed(Channel& ch, WormPtr w) : ch_(ch), worm_(std::move(w)) {}
    bool byte_available() const override { return sent_ < 12; }
    TxByte take_byte() override {
      TxByte b;
      b.head = sent_ == 0;
      if (b.head) {
        b.worm = worm_;
        b.wire_len = 12;
      }
      ++sent_;
      b.tail = sent_ == 12;
      ch_.kick();  // mid-take kick, exactly like InPort::after_byte_removed
      return b;
    }
    void on_tail_sent() override {}
    Channel& ch_;
    WormPtr worm_;
    std::int64_t sent_ = 0;
  } feed{ch, worm_of(11)};

  ch.attach_feed(&feed);
  sim.run();
  ASSERT_EQ(sink.times.size(), 12u);
  for (std::size_t i = 1; i < sink.times.size(); ++i)
    EXPECT_EQ(sink.times[i] - sink.times[i - 1], 1) << "at byte " << i;
}

TEST(Channel, DetachFeedStopsTransmissionSilently) {
  Simulator sim;
  Channel ch(sim, 2);
  RecordSink sink(sim);
  ch.set_sink(&sink);
  OneWormFeed feed(worm_of(99), 100);
  ch.attach_feed(&feed);
  sim.run_until(10);
  ch.detach_feed();
  sim.run_until(200);
  EXPECT_FALSE(ch.feed_attached());
  EXPECT_LT(sink.times.size(), 100u);
  EXPECT_FALSE(feed.tail_sent());
}

}  // namespace
}  // namespace wormcast
