// Crossbar switch mechanics: source-route stripping, output arbitration,
// slack-buffer backpressure bounds, wormhole pipelining.
#include <gtest/gtest.h>

#include "core/network.h"
#include "net/topologies.h"

namespace wormcast {
namespace {

ExperimentConfig basic() {
  ExperimentConfig cfg;
  cfg.protocol.scheme = Scheme::kHamiltonianSF;
  return cfg;
}

TEST(Switch, WormholePipeliningBeatsStoreAndForwardAcrossSwitches) {
  // End-to-end latency across 4 switches should be roughly transmission
  // time + per-hop latencies, NOT 4x transmission time (wormhole, not
  // store-and-forward in the fabric).
  Network net(make_line(4), {}, basic());
  Demand d;
  d.src = 0;
  d.dst = 3;
  d.length = 2000;
  net.inject(d);
  net.run_to_quiescence();
  const double lat = net.metrics().unicast_latency().mean();
  // Store-and-forward at each of 4 switches would cost > 4 * 2000.
  EXPECT_LT(lat, 2.0 * 2000);
  EXPECT_GT(lat, 2000);
}

TEST(Switch, ContendersForOnePortAreServedInArrivalOrder) {
  // Hosts 1..4 all send to host 0 on a star: the hub serializes them.
  Network net(make_star(5), {}, basic());
  for (HostId h = 1; h <= 4; ++h) {
    Demand d;
    d.src = h;
    d.dst = 0;
    d.length = 500;
    // Stagger injections slightly so arrival order is deterministic.
    net.sim().at(h, [&net, d] { net.inject(d); });
  }
  net.run_to_quiescence();
  EXPECT_EQ(net.adapter(0).worms_received(), 4);
  EXPECT_EQ(net.adapter(0).payload_bytes_received(), 2000);
  // Completion takes at least 4 serialized transmissions.
  EXPECT_GT(net.sim().now(), 4 * 500);
  EXPECT_EQ(net.fabric().total_overflows(), 0);
}

TEST(Switch, SlackBuffersNeverOverflowUnderHeavyContention) {
  ExperimentConfig cfg = basic();
  cfg.traffic.offered_load = 0.6;  // way past saturation
  cfg.traffic.multicast_fraction = 0.0;
  Network net(make_torus(4, 4), {}, cfg);
  net.run(5'000, 60'000, /*drain_cap=*/0);
  EXPECT_EQ(net.fabric().total_overflows(), 0);
}

TEST(Switch, BlockedWormOccupiesBoundedSlack) {
  // Host 1 sends a long worm to host 2 while host 0's long worm holds the
  // path: host 1's worm must wait with only a slack-bounded prefix inside
  // the fabric (the rest backpressured into the source adapter).
  Network net(make_line(3), {}, basic());
  Demand a;
  a.src = 0;
  a.dst = 2;
  a.length = 4000;
  net.inject(a);
  net.sim().at(50, [&] {
    Demand b;
    b.src = 1;
    b.dst = 2;
    b.length = 4000;
    net.inject(b);
  });
  // Mid-flight: worm B is blocked at switch 1 (output toward switch 2 is
  // busy); its buffered prefix must respect the slack capacity.
  net.run_until(2'000);
  SwitchRt& sw1 = net.fabric().switch_at(net.topology().switch_of_host(1));
  std::int64_t max_buffered = 0;
  for (PortId p = 0; p < static_cast<PortId>(sw1.n_ports()); ++p)
    max_buffered = std::max(max_buffered, sw1.in_port(p).buffered());
  EXPECT_GT(max_buffered, 0);
  EXPECT_LE(max_buffered, sw1.slack_capacity(0));
  net.run_to_quiescence();
  EXPECT_EQ(net.adapter(2).payload_bytes_received(), 8000);
  EXPECT_EQ(net.fabric().total_overflows(), 0);
}

TEST(Switch, RouteStrippingConservesPayload) {
  // Whatever the path length, the payload delivered equals the payload
  // sent (one route byte consumed and one checksum appended per hop).
  for (int n_switches : {2, 4, 8}) {
    Network net(make_line(n_switches), {}, basic());
    Demand d;
    d.src = 0;
    d.dst = static_cast<HostId>(n_switches - 1);
    d.length = 777;
    net.inject(d);
    net.run_to_quiescence();
    EXPECT_EQ(net.adapter(d.dst).payload_bytes_received(), 777)
        << n_switches << " switches";
  }
}

TEST(Switch, LongerPathsCostMoreLatency) {
  Network net(make_line(6), {}, basic());
  Demand near;
  near.src = 0;
  near.dst = 1;
  near.length = 400;
  net.inject(near);
  net.run_to_quiescence();
  const double lat_near = net.metrics().unicast_latency().mean();

  Network net2(make_line(6), {}, basic());
  Demand far;
  far.src = 0;
  far.dst = 5;
  far.length = 400;
  net2.inject(far);
  net2.run_to_quiescence();
  const double lat_far = net2.metrics().unicast_latency().mean();
  EXPECT_GT(lat_far, lat_near);
  // But only by per-hop latency, not by full retransmissions.
  EXPECT_LT(lat_far, lat_near + 400);
}

}  // namespace
}  // namespace wormcast
