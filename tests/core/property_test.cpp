// Cross-cutting properties, swept over (scheme x topology) with random
// groups and demand mixes:
//  * reliability: every message created is eventually fully delivered;
//  * conservation: delivered payload equals what the destinations expect;
//  * determinism: identical seeds give event-for-event identical results;
//  * fabric health: slack buffers never overflow.
#include <gtest/gtest.h>

#include <tuple>

#include "core/network.h"
#include "net/topologies.h"

namespace wormcast {
namespace {

Topology topo_by_index(int i) {
  RandomStream rng(77);
  switch (i) {
    case 0: return make_torus(3, 3);
    case 1: return make_bidir_shufflenet(2, 2);
    case 2: return make_myrinet_testbed();
    default: return make_random_mesh(8, 3.0, rng);
  }
}

int hosts_of(int i) {
  switch (i) {
    case 0: return 9;
    case 1: return 8;
    case 2: return 8;
    default: return 8;
  }
}

class SchemeTopoTest
    : public ::testing::TestWithParam<std::tuple<Scheme, int>> {};

TEST_P(SchemeTopoTest, MixedTrafficIsFullyDelivered) {
  const auto [scheme, topo_idx] = GetParam();
  const int n = hosts_of(topo_idx);
  RandomStream rng(31 + static_cast<std::uint64_t>(topo_idx));
  auto groups = make_random_groups(2, std::min(5, n), n, rng);
  ExperimentConfig cfg;
  cfg.protocol.scheme = scheme;
  cfg.traffic.offered_load = 0.03;
  cfg.traffic.multicast_fraction = 0.3;
  cfg.traffic.mean_worm_len = 250.0;
  Network net(topo_by_index(topo_idx), groups, cfg);
  net.run(/*warmup=*/5'000, /*measure=*/80'000, /*drain_cap=*/2'000'000);
  const auto s = net.summary();
  EXPECT_GT(s.messages, 10);
  EXPECT_EQ(s.outstanding, 0) << "oldest age " << s.oldest_outstanding_age;
  EXPECT_EQ(s.fabric_overflows, 0);
}

TEST_P(SchemeTopoTest, RunsAreDeterministic) {
  const auto [scheme, topo_idx] = GetParam();
  auto run_once = [&](std::uint64_t seed) {
    const int n = hosts_of(topo_idx);
    RandomStream rng(5);
    auto groups = make_random_groups(2, std::min(4, n), n, rng);
    ExperimentConfig cfg;
    cfg.protocol.scheme = scheme;
    cfg.traffic.offered_load = 0.04;
    cfg.traffic.multicast_fraction = 0.25;
    cfg.seed = seed;
    Network net(topo_by_index(topo_idx), groups, cfg);
    net.run(2'000, 40'000, 1'000'000);
    return std::tuple(net.metrics().messages_created(), net.sim().progress(),
                      net.metrics().mcast_latency().mean(),
                      net.metrics().unicast_latency().mean(), net.sim().now());
  };
  EXPECT_EQ(run_once(11), run_once(11));
  EXPECT_NE(std::get<1>(run_once(11)), std::get<1>(run_once(12)));
}

std::string scheme_topo_name(
    const ::testing::TestParamInfo<std::tuple<Scheme, int>>& info) {
  static const char* const topos[] = {"torus", "shufflenet", "myrinet", "mesh"};
  std::string n = scheme_name(std::get<0>(info.param));
  for (char& c : n)
    if (c == '-') c = '_';
  return n + "_" + topos[std::get<1>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SchemeTopoTest,
    ::testing::Combine(::testing::Values(Scheme::kRepeatedUnicast,
                                         Scheme::kHamiltonianSF,
                                         Scheme::kHamiltonianCT,
                                         Scheme::kTreeSF,
                                         Scheme::kTreeBroadcast),
                       ::testing::Range(0, 4)),
    scheme_topo_name);

TEST(NetworkProperties, MeasuredUtilizationTracksOfferedLoad) {
  ExperimentConfig cfg;
  cfg.protocol.scheme = Scheme::kHamiltonianSF;
  cfg.traffic.offered_load = 0.04;
  cfg.traffic.multicast_fraction = 0.0;  // unicast only: util ~ load
  Network net(make_torus(4, 4), {}, cfg);
  net.run(10'000, 150'000);
  const auto s = net.summary();
  // Output-link utilization = offered load plus route/trailer overhead.
  EXPECT_NEAR(s.measured_utilization, 0.04, 0.012);
}

TEST(NetworkProperties, PayloadConservationUnderReliableSchemes) {
  MulticastGroupSpec g{0, {0, 1, 2, 3, 4}};
  ExperimentConfig cfg;
  cfg.protocol.scheme = Scheme::kTreeBroadcast;
  Network net(make_torus(3, 3), {g}, cfg);
  std::int64_t injected_expectation = 0;
  for (int i = 0; i < 12; ++i) {
    Demand d;
    d.src = static_cast<HostId>(i % 5);
    d.multicast = true;
    d.group = 0;
    d.length = 100 + 17 * i;
    injected_expectation += d.length * 4;  // 4 destinations each
    net.inject(d);
  }
  net.run_to_quiescence();
  std::int64_t received = 0;
  for (HostId h = 0; h < net.num_hosts(); ++h)
    received += net.adapter(h).payload_bytes_received();
  EXPECT_EQ(received, injected_expectation);
}

TEST(NetworkProperties, SummaryFieldsAreConsistent) {
  RandomStream rng(13);
  auto groups = make_random_groups(2, 4, 9, rng);
  ExperimentConfig cfg;
  cfg.traffic.offered_load = 0.03;
  cfg.traffic.multicast_fraction = 0.2;
  Network net(make_torus(3, 3), groups, cfg);
  net.run(5'000, 60'000);
  const auto s = net.summary();
  EXPECT_GE(s.mcast_latency_p95, s.mcast_latency_mean * 0.5);
  EXPECT_GE(s.mcast_completion_mean, s.mcast_latency_mean);
  EXPECT_GT(s.throughput_per_host, 0.0);
  EXPECT_EQ(s.offered_load, 0.03);
}

}  // namespace
}  // namespace wormcast
