# Empty compiler generated dependencies file for wormcast_traffic.
# This may be replaced when dependencies are built.
