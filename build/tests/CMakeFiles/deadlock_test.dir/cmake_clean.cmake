file(REMOVE_RECURSE
  "CMakeFiles/deadlock_test.dir/core/deadlock_test.cpp.o"
  "CMakeFiles/deadlock_test.dir/core/deadlock_test.cpp.o.d"
  "deadlock_test"
  "deadlock_test.pdb"
  "deadlock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadlock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
