// The discrete-event simulation engine.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>

#include "sim/event_queue.h"
#include "sim/trace.h"
#include "sim/types.h"

namespace wormcast {

/// Discrete-event simulator with a byte-time clock.
///
/// Components schedule callbacks with `at` (absolute) or `after` (relative)
/// and the engine fires them in timestamp order. The engine also maintains a
/// global *progress counter* that components bump whenever payload moves;
/// the DeadlockWatchdog uses it to distinguish "quiescent" from "deadlocked".
class Simulator {
 public:
  explicit Simulator(EventQueueKind queue_kind = EventQueueKind::kCalendar)
      : queue_(queue_kind) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `action` at absolute time `when >= now()`.
  EventHandle at(Time when, EventQueue::Action action);

  /// Schedules `action` at `now() + delay`, `delay >= 0`.
  EventHandle after(Time delay, EventQueue::Action action);

  /// Late-class variant of at(): fires after every same-time normal event
  /// no matter when it was inserted. Used for channel pump self-schedules
  /// so burst-mode (scheduled a whole run ahead) and per-byte (scheduled
  /// one byte-time ahead) pumps occupy the same slot within a tick.
  EventHandle at_late(Time when, EventQueue::Action action);

  void cancel(EventHandle handle) { queue_.cancel(handle); }

  /// Runs until the queue drains or `stop()` is called.
  void run();

  /// Runs events with time <= `deadline`; the clock ends at `deadline`
  /// (or at the stop point) even if the queue drained earlier.
  void run_until(Time deadline);

  /// Stops the run loop after the current event completes.
  void stop() { stopped_ = true; }
  [[nodiscard]] bool stopped() const { return stopped_; }

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

  /// Time of the earliest pending event; kTimeNever when idle. The sharded
  /// engine polls this at window boundaries to pick the next lookahead
  /// window start.
  [[nodiscard]] Time next_event_time() const { return queue_.next_time(); }

  /// Total events fired since construction (hot-path bench instrumentation).
  [[nodiscard]] std::int64_t events_dispatched() const { return dispatched_; }
  /// High-water mark of the event queue (live + lazily-cancelled entries).
  [[nodiscard]] std::size_t event_queue_peak() const {
    return queue_.peak_size();
  }
  [[nodiscard]] EventQueueKind queue_kind() const { return queue_.kind(); }
  /// Estimated heap bytes behind the event queue (memory audit).
  [[nodiscard]] std::size_t event_queue_heap_bytes() const {
    return queue_.heap_bytes_estimate();
  }

  /// Progress accounting: bumped by components when a byte of payload moves
  /// anywhere in the network. Monotone; used for deadlock detection. Relaxed
  /// atomic so the watchdog (running on executor 0 of a sharded engine) can
  /// read another executor's counter mid-window without a data race; the
  /// counter orders nothing, it only has to move when payload moves.
  void note_progress(std::int64_t amount = 1) {
    progress_.fetch_add(amount, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t progress() const {
    return progress_.load(std::memory_order_relaxed);
  }

  /// The wormtrace flight recorder (disabled until Tracer::enable); every
  /// component reaches it through its Simulator reference via WORMTRACE.
  [[nodiscard]] Tracer& tracer() { return tracer_; }
  [[nodiscard]] const Tracer& tracer() const { return tracer_; }

 private:
  void dispatch_one();

  EventQueue queue_;
  Tracer tracer_;
  Time now_ = 0;
  bool stopped_ = false;
  std::atomic<std::int64_t> progress_{0};
  std::int64_t dispatched_ = 0;
};

}  // namespace wormcast
