# Empty dependencies file for source_route_test.
# This may be replaced when dependencies are built.
