# Empty dependencies file for figure3_deadlock_test.
# This may be replaced when dependencies are built.
