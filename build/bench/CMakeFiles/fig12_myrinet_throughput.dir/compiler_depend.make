# Empty compiler generated dependencies file for fig12_myrinet_throughput.
# This may be replaced when dependencies are built.
