// Figure 11: average delay vs offered load for varying multicast
// proportions on a 24-node bidirectional shufflenet.
//
// Paper setup (Section 7.1): (p=2, k=3) bidirectional shufflenet, 24
// switches with one host each; 4 multicast groups of 6 members; link
// propagation delay 1000 byte-times (an optical-backbone setting); mean
// worm 400 bytes; multicast proportion in {0.05, 0.10, 0.15, 0.20};
// offered load (generation rate per host) 0.03 - 0.07.
//
// Expected shape (paper): the tree sits below the Hamiltonian circuit for
// every proportion; delay grows with the multicast proportion (each
// multicast is re-transmitted several times, so the actual throughput
// rises with the proportion); both schemes carry the same total traffic.
//
// The sweep runs (load, proportion, scheme) points on a SweepRunner pool
// (--jobs N); each point is an independent Network, and the CSV/JSON rows
// are bit-identical at any job count.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "net/topologies.h"
#include "sim/random.h"
#include "traffic/groups.h"

using namespace wormcast;

namespace {

constexpr Time kPropDelay = 1000;  // byte-times per link (Section 7.1)

double run_point(Scheme scheme, double load, double proportion,
                 std::uint64_t seed, Time warmup, Time measure) {
  RandomStream group_rng(1100 + seed);
  auto groups = make_random_groups(4, 6, 24, group_rng);
  ExperimentConfig cfg = bench::sim_defaults(scheme, load, proportion, seed);
  // The 1000 byte-time propagation delay applies to the backbone links;
  // hosts sit next to their switch (default short attachment).
  Network net(make_bidir_shufflenet(2, 3, kPropDelay, kDefaultLinkDelay),
              std::move(groups), cfg);
  net.run(warmup, measure, /*drain_cap=*/200'000);
  return net.summary().mcast_latency_mean;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  const Time warmup = args.quick ? 30'000 : 80'000;
  const Time measure = args.quick ? 80'000 : 300'000;

  std::printf("# Figure 11: average multicast delay (byte-times) vs offered "
              "load, 24-node bidirectional shufflenet\n");
  std::printf("# 4 groups x 6 members, propagation delay 1000 byte-times, "
              "mean worm 400 B\n");
  bench::print_header("offered_load",
                      {"prop0.05_tree", "prop0.05_hc", "prop0.10_tree",
                       "prop0.10_hc", "prop0.15_tree", "prop0.15_hc",
                       "prop0.20_tree", "prop0.20_hc"});
  const std::vector<double> loads =
      args.quick ? std::vector<double>{0.03, 0.05, 0.065}
                 : std::vector<double>{0.030, 0.035, 0.040, 0.045, 0.050,
                                       0.055, 0.060, 0.065, 0.070};
  const std::vector<double> props{0.05, 0.10, 0.15, 0.20};

  // Point index = ((load, proportion), scheme); even = tree, odd = HC.
  const std::size_t per_load = props.size() * 2;
  const std::size_t n_points = loads.size() * per_load;
  bench::JsonBench json("fig11_shufflenet_delay");
  json.resize_rows(loads.size());
  const harness::WallTimer sweep;
  harness::SweepRunner pool(args.jobs);
  std::vector<double> results(n_points);
  const auto walls = pool.run_indexed(n_points, [&](std::size_t i) {
    const double load = loads[i / per_load];
    const double prop = props[(i % per_load) / 2];
    const Scheme scheme =
        (i % 2) == 0 ? Scheme::kTreeBroadcast : Scheme::kHamiltonianSF;
    results[i] = run_point(scheme, load, prop, 1, warmup, measure);
  });

  for (std::size_t l = 0; l < loads.size(); ++l) {
    std::printf("%.3f", loads[l]);
    std::vector<std::pair<std::string, std::optional<double>>> row;
    row.emplace_back("offered_load", loads[l]);
    for (std::size_t p = 0; p < props.size(); ++p) {
      const double tree = results[l * per_load + p * 2];
      const double hc = results[l * per_load + p * 2 + 1];
      std::printf(",%.0f,%.0f", tree, hc);
      char key[32];
      std::snprintf(key, sizeof key, "prop%.2f_tree", props[p]);
      row.emplace_back(key, tree);
      std::snprintf(key, sizeof key, "prop%.2f_hc", props[p]);
      row.emplace_back(key, hc);
    }
    std::printf("\n");
    json.set_row(l, std::move(row));
  }
  std::fflush(stdout);
  bench::stamp_sweep_meta(json, pool, walls, sweep);
  json.write();
  return 0;
}
