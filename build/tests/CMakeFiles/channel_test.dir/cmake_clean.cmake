file(REMOVE_RECURSE
  "CMakeFiles/channel_test.dir/net/channel_test.cpp.o"
  "CMakeFiles/channel_test.dir/net/channel_test.cpp.o.d"
  "channel_test"
  "channel_test.pdb"
  "channel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/channel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
