// A std::deque that defers its first allocation until the first push.
//
// libstdc++'s deque eagerly allocates its map array plus one ~512-byte
// element chunk at construction. That is invisible in ones and tens, but
// the fabric instantiates queues per switch port and per channel
// direction: a 64x64 torus carries ~70k of them (input-buffer worm
// queues, output-port waiter lists, channel in-flight windows), most of
// which never hold an element in a given run — at 4k hosts the empty
// chunks alone were ~55 MiB, the single worst per-entity overhead in the
// memory audit (mem_* counters, core/network.cpp). LazyDeque keeps the
// empty state at one pointer and materializes the real deque on first
// use; a queue that has been touched keeps its chunk (working-set
// behavior — draining back to empty does not free, so hot-path
// push/pop never re-allocates).
//
// The interface is the slice of std::deque the fabric uses. Reference
// stability matches std::deque (push at the ends never invalidates
// references, which SwitchRt's `&rx == &rx_queue_.front()` identity
// checks rely on). begin()/end() of a never-touched queue return
// value-initialized iterators, which compare equal on the toolchains we
// build with (their internal pointers are all null).
#pragma once

#include <cstddef>
#include <deque>
#include <memory>
#include <utility>

namespace wormcast {

template <typename T>
class LazyDeque {
 public:
  using iterator = typename std::deque<T>::iterator;
  using const_iterator = typename std::deque<T>::const_iterator;

  [[nodiscard]] bool empty() const { return q_ == nullptr || q_->empty(); }
  [[nodiscard]] std::size_t size() const { return q_ ? q_->size() : 0; }

  T& front() { return q_->front(); }
  const T& front() const { return q_->front(); }
  T& back() { return q_->back(); }
  const T& back() const { return q_->back(); }

  void push_back(const T& v) { inner().push_back(v); }
  void push_back(T&& v) { inner().push_back(std::move(v)); }
  template <typename... Args>
  T& emplace_back(Args&&... args) {
    return inner().emplace_back(std::forward<Args>(args)...);
  }
  void pop_front() { q_->pop_front(); }
  void clear() {
    if (q_) q_->clear();
  }

  iterator begin() { return q_ ? q_->begin() : iterator{}; }
  iterator end() { return q_ ? q_->end() : iterator{}; }
  [[nodiscard]] const_iterator begin() const {
    return q_ ? q_->begin() : const_iterator{};
  }
  [[nodiscard]] const_iterator end() const {
    return q_ ? q_->end() : const_iterator{};
  }
  iterator erase(iterator pos) { return q_->erase(pos); }
  iterator erase(iterator first, iterator last) {
    return q_ ? q_->erase(first, last) : iterator{};
  }

  /// Estimated heap bytes behind this queue (the memory audit's unit of
  /// account): zero until first touched, then the deque's bookkeeping
  /// plus one element chunk — the dominant term; a queue deep enough to
  /// span several chunks is transient and not worth modeling.
  [[nodiscard]] std::size_t heap_bytes_estimate() const {
    if (!q_) return 0;
    return sizeof(std::deque<T>) + kChunkBytes +
           (q_->size() > kChunkBytes / sizeof(T)
                ? q_->size() * sizeof(T)
                : 0);
  }

 private:
  static constexpr std::size_t kChunkBytes = 512;  // libstdc++'s node size

  std::deque<T>& inner() {
    if (!q_) q_ = std::make_unique<std::deque<T>>();
    return *q_;
  }

  std::unique_ptr<std::deque<T>> q_;
};

}  // namespace wormcast
