// The host network-interface model (Myrinet's LANai card, Section 2).
//
// Mechanism only: a transmit engine with a worm queue (control worms take
// priority), a receive engine that always drains the link at line rate
// (the adapter never backpressures the fabric — matching both the paper's
// simulator and the Myrinet implementation), and per-worm processing
// overheads. *Policy* — what to do with a received worm, reservations,
// ACK/NACK, retransmission — lives in an AdapterClient implemented by the
// multicast protocols in src/core.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

#include "net/channel.h"
#include "sim/lazy_deque.h"
#include "net/fabric.h"
#include "net/worm.h"
#include "sim/simulator.h"
#include "sim/types.h"

namespace wormcast {

/// Reception progress of the worm currently arriving; shared with transmit
/// plans that cut through (forward while receiving).
struct RxProgress {
  std::int64_t payload_total = 0;
  /// Payload bytes physically delivered (a burst lands all at once).
  std::int64_t payload_received = 0;
  bool complete = false;
  bool dropped = false;
  /// The worm lost its tail to an injected fault: fewer bytes arrived than
  /// declared. Set together with `complete` (the synthesized tail ends the
  /// reception); cut-through transmit plans following this reception close
  /// out early so the stub propagates instead of wedging the channel.
  bool truncated = false;
  /// Logical arrival time of the newest delivered byte (a burst delivered
  /// at t carries arrival times t..t+n-1).
  Time run_end = 0;

  /// Payload bytes *logically* arrived by `now` — what per-byte stepping
  /// would have delivered. Pending bytes are always the newest of the
  /// stream, and payload follows the header, so subtracting the pending
  /// count from the physical payload count is exact.
  [[nodiscard]] std::int64_t payload_arrived(Time now) const {
    const Time pending = std::max<Time>(0, run_end - now);
    return std::max<std::int64_t>(0, payload_received - pending);
  }
};

enum class RxDecision : std::uint8_t { kAccept, kDrop };

/// Protocol hooks; implemented by the schemes in src/core.
class AdapterClient {
 public:
  virtual ~AdapterClient() = default;

  /// Head of a worm arrived. Decide whether to accept it (reserving any
  /// buffers the protocol needs) or to drop it (the paper's implicit
  /// reservation refuses worms that do not fit; Figure 5). `rx` can be held
  /// to start a cut-through forward.
  virtual RxDecision on_rx_head(const WormPtr& worm,
                                const std::shared_ptr<RxProgress>& rx) = 0;

  /// An accepted worm has been fully received. `payload_bytes` is the
  /// actual payload delivered: worm->payload for ordinary worms, the
  /// measured byte count for switch-level multicast fragments (whose
  /// declared length is advisory).
  virtual void on_rx_complete(const WormPtr& worm,
                              std::int64_t payload_bytes) = 0;

  /// A queued worm has completely left the adapter (tail on the wire).
  virtual void on_tx_done(const WormPtr& worm) = 0;

  /// An *accepted* worm turned out to be truncated (fault-injected loss):
  /// its bytes are discarded, on_rx_complete will not fire. The protocol
  /// must roll back whatever on_rx_head set up (reservations, forwarding
  /// state); the upstream sender's ACK timeout drives the retransmission.
  virtual void on_rx_truncated(const WormPtr& worm) { (void)worm; }
};

struct AdapterConfig {
  /// Per-worm processing overhead (route lookup, header build, DMA setup)
  /// inserted before each transmission. The Myrinet-testbed benches
  /// calibrate this to SPARCstation-5-era LANai/driver costs.
  Time tx_overhead = 16;
  /// Processing between full reception and earliest possible retransmission
  /// (store-and-forward path only; cut-through bypasses it).
  Time rx_overhead = 8;
};

/// One host's network interface card.
class HostAdapter final : public ByteFeed, public RxSink {
 public:
  HostAdapter(Simulator& sim, Fabric& fabric, HostId host,
              AdapterConfig config = AdapterConfig());
  HostAdapter(const HostAdapter&) = delete;
  HostAdapter& operator=(const HostAdapter&) = delete;

  void set_client(AdapterClient* client) { client_ = client; }
  /// Attaches the experiment's fault injector (null = no RX-drop faults).
  void set_fault_injector(FaultInjector* faults) { faults_ = faults; }

  [[nodiscard]] HostId host() const { return host_; }
  [[nodiscard]] Simulator& sim() { return sim_; }
  [[nodiscard]] const AdapterConfig& config() const { return config_; }

  /// Queues a fully buffered worm for transmission (store-and-forward).
  void send(WormPtr worm);
  /// Queues a worm whose payload streams from an in-progress reception
  /// (cut-through): transmission proceeds as bytes arrive.
  void send_cut_through(WormPtr worm, std::shared_ptr<RxProgress> follow);
  /// Queues a control worm (ACK/NACK) ahead of data worms.
  void send_control(WormPtr worm);

  [[nodiscard]] std::size_t tx_queue_depth() const {
    return tx_queue_.size() + control_queue_.size();
  }

  /// Estimated resident bytes for this adapter (memory audit).
  [[nodiscard]] std::size_t heap_bytes_estimate() const {
    return sizeof(HostAdapter) + control_queue_.heap_bytes_estimate() +
           tx_queue_.heap_bytes_estimate();
  }
  /// Data worms queued or transmitting that this host *originated* (as
  /// opposed to copies it forwards for others). Saturating applications use
  /// this to model "send the next packet as soon as the previous own packet
  /// left the card".
  [[nodiscard]] std::size_t queued_own_originations() const;
  [[nodiscard]] bool tx_idle() const {
    return !tx_active_ && tx_queue_.empty() && control_queue_.empty();
  }

  /// Fires whenever a transmitted tail leaves queued_own_originations() at
  /// zero — the wake signal for fast-forwarded saturating applications
  /// (sim/idle_poller.h). Only covers the transmit path: a crash or purge
  /// can also drain the queue without a tail, so drivers that inject
  /// faults should poll in legacy mode instead.
  void set_drain_listener(std::function<void()> listener) {
    drain_listener_ = std::move(listener);
  }

  /// Crash-stop support: discard every queued (not yet started) worm. The
  /// active plan finishes — its DMA is committed to the wire — but nothing
  /// queued behind it ever leaves a dead host.
  void drop_queued_tx() {
    control_queue_.clear();
    tx_queue_.clear();
  }

  /// Repair support: discard queued worms addressed to `dst` (a host the
  /// network declared dead). Retargeted retransmissions would otherwise
  /// queue behind this stale backlog and arrive too late to matter. The
  /// active plan is never touched (committed DMA). Returns the count.
  std::size_t purge_tx_to(HostId dst);

  // Counters. "Worms" are data worms; ACK/NACK arrivals are counted
  // separately as control traffic.
  [[nodiscard]] std::int64_t worms_sent() const { return worms_sent_; }
  [[nodiscard]] std::int64_t worms_received() const { return worms_received_; }
  [[nodiscard]] std::int64_t worms_dropped() const { return worms_dropped_; }
  [[nodiscard]] std::int64_t worms_truncated() const { return worms_truncated_; }
  [[nodiscard]] std::int64_t control_received() const { return control_received_; }
  [[nodiscard]] std::int64_t payload_bytes_received() const {
    return payload_bytes_received_;
  }

  // ByteFeed (transmit side; called by the host's uplink channel).
  [[nodiscard]] bool byte_available() const override;
  TxByte take_byte() override;
  void on_tail_sent() override;
  [[nodiscard]] std::int64_t burst_available() const override;
  std::int64_t take_bytes(std::int64_t max) override;
  [[nodiscard]] Time next_byte_time() const override;

  // RxSink (receive side; called by the host's downlink channel).
  void on_head(const WormPtr& worm, std::int64_t wire_len, bool tail) override;
  void on_body(bool tail) override;
  /// Tail-byte completion: closes the in-progress reception (also invoked
  /// straight from on_head for single-byte trailer-only fragments).
  void finish_rx();
  [[nodiscard]] std::int64_t rx_burst_budget() const override;
  void on_body_burst(std::int64_t n, bool tail) override;

 private:
  struct TxPlan {
    WormPtr worm;
    std::shared_ptr<RxProgress> follow;  // cut-through source, or null
    std::int64_t wire_len = 0;
    std::int64_t sent = 0;
  };

  void enqueue(TxPlan plan, bool priority);
  void start_next();
  [[nodiscard]] bool done_is_switch_mcast() const;
  [[nodiscard]] const TxPlan* active_plan() const;
  /// Bytes of the plan sendable by now under per-byte semantics (a
  /// cut-through follow only exposes logically-arrived payload).
  [[nodiscard]] std::int64_t sendable_bytes(const TxPlan& plan) const;
  /// Bytes sendable counting physically-buffered payload too — the burst
  /// commitment bound (pending bytes arrive one per byte-time, matching
  /// the send rate, so they are committable once one byte has arrived).
  [[nodiscard]] std::int64_t sendable_bytes_physical(const TxPlan& plan) const;
  [[nodiscard]] bool follow_closed(const TxPlan& plan) const;

  Simulator& sim_;
  Channel& tx_channel_;
  HostId host_;
  AdapterConfig config_;
  AdapterClient* client_ = nullptr;
  FaultInjector* faults_ = nullptr;
  std::function<void()> drain_listener_;

  // Transmit state.
  LazyDeque<TxPlan> control_queue_;
  LazyDeque<TxPlan> tx_queue_;
  bool tx_active_ = false;   // a plan is attached to the channel
  bool tx_gap_ = false;      // waiting out the per-worm overhead
  TxPlan current_;

  // Receive state.
  WormPtr rx_worm_;
  std::shared_ptr<RxProgress> rx_progress_;
  std::int64_t rx_wire_len_ = 0;
  std::int64_t rx_received_ = 0;
  bool rx_accepted_ = false;

  // Counters.
  std::int64_t worms_sent_ = 0;
  std::int64_t worms_received_ = 0;
  std::int64_t worms_dropped_ = 0;
  std::int64_t worms_truncated_ = 0;
  std::int64_t control_received_ = 0;
  std::int64_t payload_bytes_received_ = 0;
};

}  // namespace wormcast
