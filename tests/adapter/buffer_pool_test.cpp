#include "adapter/buffer_pool.h"

#include <gtest/gtest.h>

#include "core/network.h"
#include "net/topologies.h"

namespace wormcast {
namespace {

TEST(BufferPool, PartitionsEvenly) {
  BufferPool p(1000, 2);
  EXPECT_EQ(p.n_classes(), 2);
  EXPECT_EQ(p.capacity(0), 500);
  EXPECT_EQ(p.capacity(1), 500);
  EXPECT_EQ(p.free_in(0), 500);
}

TEST(BufferPool, ClassesAreIndependent) {
  BufferPool p(1000, 2);
  EXPECT_TRUE(p.try_reserve(0, 500));
  EXPECT_FALSE(p.try_reserve(0, 1));
  EXPECT_TRUE(p.try_reserve(1, 500));
  EXPECT_EQ(p.total_used(), 1000);
  p.release(0, 500);
  EXPECT_TRUE(p.try_reserve(0, 100));
}

TEST(BufferPool, FailedReserveLeavesStateUnchanged) {
  BufferPool p(100, 1);
  EXPECT_TRUE(p.try_reserve(0, 60));
  EXPECT_FALSE(p.try_reserve(0, 50));
  EXPECT_EQ(p.used(0), 60);
  EXPECT_TRUE(p.try_reserve(0, 40));
}

TEST(BufferPool, UnpartitionedSharesAcrossClasses) {
  BufferPool p = BufferPool::unpartitioned(1000);
  EXPECT_TRUE(p.try_reserve(0, 600));
  // Class 1 maps onto the same region: only 400 left.
  EXPECT_FALSE(p.try_reserve(1, 500));
  EXPECT_TRUE(p.try_reserve(1, 400));
  p.release(0, 600);
  EXPECT_EQ(p.total_used(), 400);
}

TEST(BufferPool, ReleaseValidation) {
  BufferPool p(100, 2);
  EXPECT_TRUE(p.try_reserve(0, 30));
  EXPECT_THROW(p.release(0, 40), std::logic_error);
  EXPECT_THROW(p.release(0, -1), std::logic_error);
  p.release(0, 30);
  EXPECT_EQ(p.used(0), 0);
}

TEST(BufferPool, ClassIndexValidation) {
  BufferPool p(100, 2);
  EXPECT_THROW((void)p.try_reserve(2, 1), std::out_of_range);
  EXPECT_THROW((void)p.try_reserve(-1, 1), std::out_of_range);
  EXPECT_THROW(BufferPool(100, 0), std::invalid_argument);
}

TEST(BufferPool, NegativeReservationRejected) {
  BufferPool p(100, 1);
  EXPECT_THROW((void)p.try_reserve(0, -5), std::invalid_argument);
}

TEST(BufferPool, ZeroByteReservationAlwaysFits) {
  BufferPool p(10, 2);
  EXPECT_TRUE(p.try_reserve(0, 5));
  EXPECT_TRUE(p.try_reserve(0, 0));
  EXPECT_EQ(p.used(0), 5);
}

// --- Pool accounting under injected faults ---------------------------------
// A worm that never fully arrives must not strand the bytes it reserved:
// whether it is refused at the head (RX drop fault) or cut off mid-flight
// (worm kill), every pool in the network has to read zero once the run
// settles.

ExperimentConfig faulted_pool_config() {
  ExperimentConfig cfg;
  cfg.protocol.scheme = Scheme::kHamiltonianSF;
  cfg.protocol.ack_timeout = 10'000;
  cfg.protocol.retry_backoff = 2'000;
  cfg.protocol.retry_jitter = 0;
  return cfg;
}

MulticastGroupSpec star_group(int n) {
  MulticastGroupSpec group;
  group.id = 0;
  for (HostId h = 0; h < n; ++h) group.members.push_back(h);
  return group;
}

void inject_one(Network& net, std::int64_t length) {
  Demand d;
  d.src = 0;
  d.multicast = true;
  d.group = 0;
  d.length = length;
  net.inject(d);
}

void expect_pools_empty(Network& net) {
  for (HostId h = 0; h < net.num_hosts(); ++h) {
    EXPECT_EQ(net.protocol(h).pool().total_used(), 0) << "host " << h;
    EXPECT_EQ(net.protocol(h).active_tasks(), 0u) << "host " << h;
  }
}

TEST(BufferPool, RxDropFaultLeavesEveryPoolEmpty) {
  Network net(make_star(4), {star_group(4)}, faulted_pool_config());
  // The first data reception at any adapter is refused before the pool is
  // touched; the retransmission then lands normally.
  net.faults().force_drop_rx(1);
  inject_one(net, 400);
  net.run_to_quiescence();
  EXPECT_EQ(net.summary().faults_injected, 1);
  EXPECT_EQ(net.metrics().messages_completed(), 1);
  expect_pools_empty(net);
}

TEST(BufferPool, TruncatedWormReleasesItsReservation) {
  Network net(make_star(4), {star_group(4)}, faulted_pool_config());
  // Kill the first data worm mid-flight: the receiver has already reserved
  // pool space for the declared length and must give it back on discard.
  net.faults().force_kill_data(1);
  inject_one(net, 400);
  net.run_to_quiescence();
  EXPECT_EQ(net.summary().faults_injected, 1);
  EXPECT_EQ(net.metrics().messages_completed(), 1);
  expect_pools_empty(net);
}

TEST(BufferPool, RepeatedTruncationStillDrainsToZero) {
  Network net(make_star(4), {star_group(4)}, faulted_pool_config());
  net.faults().force_kill_data(5);
  inject_one(net, 600);
  net.run_to_quiescence();
  EXPECT_EQ(net.summary().faults_injected, 5);
  EXPECT_EQ(net.metrics().messages_completed(), 1);
  expect_pools_empty(net);
}

}  // namespace
}  // namespace wormcast
