// Loss-recovery sweep: delivered fraction and tail latency vs injected
// link loss on the Section 8.2 testbed, for the Hamiltonian circuit and
// rooted-tree reservation schemes.
//
// Worm kills and control-worm loss are applied at the same per-link rate;
// senders recover via ACK timeouts with capped exponential backoff and a
// bounded retry budget. Expected shape: delivered fraction starts at 1.0
// and decays monotonically as loss grows (retry budget exhaustion), while
// p99 per-destination latency climbs as more deliveries need one or more
// timeout+retransmit rounds.
//
// Sweep points (loss rate x scheme x replication) run on a SweepRunner
// pool (--jobs N). --reps N runs N independent seeds per point
// (harness::point_seed-derived) and merges them with RunningStat::merge in
// replication order, so the reported means are identical at any job count.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "net/topologies.h"

using namespace wormcast;

namespace {

constexpr std::uint64_t kBaseSeed = 7;

struct Point {
  double delivered = 0.0;  // completed / created
  double p99 = 0.0;        // per-destination mcast latency
  bool has_p99 = false;    // false: no mcast delivery was sampled
  double retx_per_msg = 0.0;
};

Point run_lossy(Scheme scheme, double loss, Time measure, std::uint64_t seed,
                std::size_t trace_cap, bench::CheckCollector& checks,
                std::size_t slot, std::string label) {
  ExperimentConfig cfg = bench::sim_defaults(scheme, 0.05, 0.3, seed);
  cfg.protocol.ack_timeout = 20'000;
  cfg.protocol.retry_backoff = 2'000;
  cfg.protocol.retry_jitter = 1'000;
  cfg.protocol.max_attempts = 8;
  cfg.faults.worm_kill_rate = loss;
  cfg.faults.ctrl_loss_rate = loss;
  MulticastGroupSpec group;
  group.id = 0;
  for (HostId h = 0; h < 8; ++h) group.members.push_back(h);
  Network net(make_myrinet_testbed(), {group}, cfg);
  if (checks.enabled()) net.enable_tracing(trace_cap);
  bench::arm_watchdog(net);
  net.run(/*warmup=*/2'000, measure, /*drain_cap=*/500'000);
  checks.collect(slot, net, std::move(label));
  const Network::Summary s = net.summary();
  Point p;
  if (s.messages > 0) {
    p.delivered = static_cast<double>(s.messages_completed) /
                  static_cast<double>(s.messages);
    p.retx_per_msg =
        static_cast<double>(s.retransmits) / static_cast<double>(s.messages);
  }
  p.has_p99 = net.metrics().mcast_latency().count() > 0;
  p.p99 = net.metrics().mcast_latency().percentile(99.0);
  return p;
}

/// Replication-merged view of one sweep point. Merge order is replication
/// order (RunningStat::merge is sequential after the sweep completes), so
/// the means are a pure function of (point, reps) — never of scheduling.
struct Merged {
  RunningStat delivered;
  RunningStat p99;  // over the replications that sampled a delivery
  RunningStat retx;
};

Merged merge_reps(const std::vector<Point>& reps) {
  Merged m;
  for (const Point& p : reps) {
    RunningStat delivered, p99, retx;
    delivered.add(p.delivered);
    retx.add(p.retx_per_msg);
    m.delivered.merge(delivered);
    m.retx.merge(retx);
    if (p.has_p99) {
      p99.add(p.p99);
      m.p99.merge(p99);
    }
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  const Time measure = args.quick ? 200'000 : 1'500'000;

  std::printf("# Loss recovery on the 8-host testbed: delivered fraction and "
              "p99 latency vs per-link fault rate\n");
  std::printf("# (worm kill + ctrl loss at equal rates; ack_timeout=20k, "
              "max_attempts=8; %d rep(s)/point)\n", args.reps);
  bench::print_header("loss_rate",
                      {"circuit_delivered", "circuit_p99", "circuit_retx",
                       "tree_delivered", "tree_p99", "tree_retx"});
  const std::vector<double> rates =
      args.quick ? std::vector<double>{0.0, 0.05, 0.10}
                 : std::vector<double>{0.0, 0.01, 0.02, 0.05, 0.10, 0.15};

  // Flattened task list: (rate, scheme, replication). Rep r of every point
  // uses harness::point_seed(kBaseSeed, r) — rep 0 is the historical
  // single-seed run, so --reps 1 output matches the pre-replication bench.
  const std::size_t reps = static_cast<std::size_t>(args.reps);
  const std::size_t n_points = rates.size() * 2;
  const std::size_t n_tasks = n_points * reps;
  std::vector<Point> raw(n_tasks);
  bench::JsonBench json("fault_recovery");
  json.resize_rows(rates.size());
  bench::CheckCollector checks(args.check);
  checks.resize(n_tasks);
  const harness::WallTimer sweep;
  harness::SweepRunner pool(args.jobs);
  const auto walls = pool.run_indexed(n_tasks, [&](std::size_t i) {
    const std::size_t point = i / reps;
    const std::size_t rep = i % reps;
    const double rate = rates[point / 2];
    const Scheme scheme =
        (point % 2) == 0 ? Scheme::kHamiltonianSF : Scheme::kTreeSF;
    char label[64];
    std::snprintf(label, sizeof label, "loss=%.2f scheme=%s rep=%zu", rate,
                  (point % 2) == 0 ? "circuit" : "tree", rep);
    raw[i] = run_lossy(scheme, rate, measure,
                       harness::point_seed(kBaseSeed, rep), args.trace_cap,
                       checks, i, label);
  });

  for (std::size_t r = 0; r < rates.size(); ++r) {
    auto reps_of = [&](std::size_t point) {
      return std::vector<Point>(raw.begin() + static_cast<std::ptrdiff_t>(point * reps),
                                raw.begin() + static_cast<std::ptrdiff_t>((point + 1) * reps));
    };
    const Merged circuit = merge_reps(reps_of(r * 2));
    const Merged tree = merge_reps(reps_of(r * 2 + 1));
    std::printf("%.2f,%.4f,%.0f,%.2f,%.4f,%.0f,%.2f\n", rates[r],
                circuit.delivered.mean(), circuit.p99.mean(),
                circuit.retx.mean(), tree.delivered.mean(), tree.p99.mean(),
                tree.retx.mean());
    json.set_row(
        r, {{"loss_rate", rates[r]},
            {"circuit_delivered", circuit.delivered.mean()},
            {"circuit_p99",
             bench::opt(circuit.p99.mean(), circuit.p99.count() > 0)},
            {"circuit_retx", circuit.retx.mean()},
            {"tree_delivered", tree.delivered.mean()},
            {"tree_p99", bench::opt(tree.p99.mean(), tree.p99.count() > 0)},
            {"tree_retx", tree.retx.mean()}});
  }
  std::fflush(stdout);
  bench::stamp_sweep_meta(json, pool, walls, sweep);
  json.set_meta("reps", static_cast<double>(args.reps));
  const int check_rc = checks.finalize(&json);
  json.write();
  return check_rc;
}
