// Failure detection + self-healing structures: crash-stop hosts are
// detected through ACK/probe suspicion, spliced out of every Hamiltonian
// circuit, re-parented around in every rooted tree, and permanent link
// deaths force an up/down recompute — all while in-flight traffic is
// rescued by the end-to-end retry machinery.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/network.h"
#include "net/topologies.h"
#include "sim/random.h"

namespace wormcast {
namespace {

ExperimentConfig repair_config(Scheme scheme) {
  ExperimentConfig cfg;
  cfg.protocol.scheme = scheme;
  cfg.protocol.ack_timeout = 8'000;
  cfg.protocol.retry_backoff = 2'000;
  cfg.protocol.retry_jitter = 1'000;
  cfg.protocol.max_attempts = 10;
  cfg.protocol.suspicion_timeout = 30'000;
  cfg.protocol.pool_bytes = 128 * 1024;
  cfg.seed = 42;
  return cfg;
}

MulticastGroupSpec full_group(int n, GroupId id = 0) {
  return make_full_group(n, id);
}

void inject_group_mcast(Network& net, GroupId group, HostId src,
                        std::int64_t length) {
  Demand d;
  d.src = src;
  d.multicast = true;
  d.group = group;
  d.length = length;
  net.inject(d);
}

/// Survivors hold no buffers, no tasks, no queued transmissions; every
/// (host, group) delivery log is duplicate-free.
void expect_survivors_clean(Network& net, const std::set<HostId>& dead) {
  for (HostId h = 0; h < net.num_hosts(); ++h) {
    if (dead.count(h) > 0) continue;
    EXPECT_EQ(net.protocol(h).pool().total_used(), 0) << "host " << h;
    EXPECT_EQ(net.protocol(h).active_tasks(), 0u) << "host " << h;
    EXPECT_TRUE(net.adapter(h).tx_idle()) << "host " << h;
  }
  EXPECT_EQ(net.metrics().outstanding(), 0) << net.debug_report();
  EXPECT_EQ(net.fabric().total_overflows(), 0);
}

/// Exactly-once at every surviving member of `group`.
void expect_exactly_once(Network& net, GroupId group,
                         const std::set<HostId>& dead) {
  for (HostId h = 0; h < net.num_hosts(); ++h) {
    if (dead.count(h) > 0) continue;
    const auto* order = net.metrics().order_of(h, group);
    if (order == nullptr) continue;
    std::set<std::uint64_t> distinct(order->begin(), order->end());
    EXPECT_EQ(order->size(), distinct.size())
        << "duplicate delivery at host " << h << " group " << group;
  }
}

// --- direct repair (tables + in-flight rescue, detector bypassed) ----------

TEST(FailureRepair, CircuitSpliceKeepsAscendingOrder) {
  Network net(make_myrinet_testbed(), {full_group(8)},
              repair_config(Scheme::kHamiltonianSF));
  for (int i = 0; i < 6; ++i) inject_group_mcast(net, 0, (i * 3) % 8, 400);
  net.run_until(3'000);  // some messages mid-flight
  net.declare_host_dead(3);

  const auto& order = net.tables().circuit(0).order();
  EXPECT_EQ(order, (std::vector<HostId>{0, 1, 2, 4, 5, 6, 7}));
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()))
      << "splice must preserve the ID-order invariant";
  EXPECT_EQ(net.repair_stats().circuits_spliced, 1);
  EXPECT_TRUE(net.host_removed(3));

  // Messages injected after the repair ride the spliced circuit.
  for (int i = 0; i < 4; ++i)
    inject_group_mcast(net, 0, static_cast<HostId>(2 * i), 300);
  net.run_to_quiescence();
  expect_survivors_clean(net, {3});
  expect_exactly_once(net, 0, {3});
  EXPECT_GT(net.summary().messages_completed, 0);
}

TEST(FailureRepair, TreeReparentingPreservesParentIdInvariant) {
  Network net(make_myrinet_testbed(), {full_group(8)},
              repair_config(Scheme::kTreeSF));
  for (int i = 0; i < 6; ++i) inject_group_mcast(net, 0, (i * 3) % 8, 400);
  net.run_until(3'000);
  net.declare_host_dead(2);  // internal member: its subtree must re-attach

  const TreeTable& tree = net.tables().tree(0);
  EXPECT_FALSE(tree.contains(2));
  for (const HostId m : tree.members()) {
    if (m == tree.root()) continue;
    EXPECT_LT(tree.parent(m), m) << "child " << m;
  }
  // Every reattachment record names a surviving adopter with a lower ID.
  for (const auto& r : net.repair_stats().reattachments) {
    EXPECT_LT(r.new_parent, r.orphan);
    EXPECT_TRUE(tree.contains(r.new_parent));
  }

  for (int i = 0; i < 4; ++i) inject_group_mcast(net, 0, (i == 2) ? 5 : i, 300);
  net.run_to_quiescence();
  expect_survivors_clean(net, {2});
  expect_exactly_once(net, 0, {2});
}

TEST(FailureRepair, RootDeathPromotesLowestSurvivor) {
  Network net(make_myrinet_testbed(), {full_group(8)},
              repair_config(Scheme::kTreeSF));
  ASSERT_EQ(net.tables().tree(0).root(), 0);
  for (int i = 1; i < 5; ++i) inject_group_mcast(net, 0, i, 400);
  net.run_until(3'000);
  net.declare_host_dead(0);  // the serializer itself dies

  EXPECT_EQ(net.tables().tree(0).root(), 1);
  EXPECT_GE(net.repair_stats().roots_promoted, 1);

  for (int i = 1; i < 5; ++i) inject_group_mcast(net, 0, i + 1, 300);
  net.run_to_quiescence();
  expect_survivors_clean(net, {0});
  expect_exactly_once(net, 0, {0});
  EXPECT_GT(net.summary().messages_completed, 0);
}

TEST(FailureRepair, RepairIsIdempotent) {
  Network net(make_myrinet_testbed(), {full_group(8)},
              repair_config(Scheme::kHamiltonianSF));
  net.declare_host_dead(5);
  net.declare_host_dead(5);
  EXPECT_EQ(net.summary().hosts_removed, 1);
  EXPECT_EQ(net.repair_stats().circuits_spliced, 1);
}

// --- detection (silent crash, the suspicion machinery must notice) ----------

class CrashDetectionTest : public ::testing::TestWithParam<Scheme> {};

TEST_P(CrashDetectionTest, SilentCrashMidStreamIsDetectedAndRepaired) {
  Network net(make_myrinet_testbed(), {full_group(8)},
              repair_config(GetParam()));
  const Time crash_at = 5'000;
  net.crash_host(3, crash_at);
  // Steady stream bracketing the crash keeps senders talking to host 3 so
  // the ACK-timeout suspicion path has something to time out on.
  for (int i = 0; i < 30; ++i) {
    const HostId src = static_cast<HostId>((i * 3) % 8 == 3 ? 1 : (i * 3) % 8);
    net.sim().at(1'000 + i * 2'000,
                 [&net, src] { inject_group_mcast(net, 0, src, 300); });
  }
  net.run_to_quiescence();

  const Network::Summary s = net.summary();
  EXPECT_EQ(s.hosts_crashed, 1);
  EXPECT_EQ(s.hosts_removed, 1) << "the detector never accused the dead host";
  EXPECT_GE(s.suspicions, 1);
  EXPECT_TRUE(net.host_removed(3));
  // Detection + repair inside the budget: suspicion timeout plus retry
  // schedule slack (first_tx of the oldest wedged send may predate death).
  EXPECT_LE(s.last_repair_time,
            crash_at + 2 * repair_config(GetParam()).protocol.suspicion_timeout +
                50'000);
  expect_survivors_clean(net, {3});
  expect_exactly_once(net, 0, {3});
  EXPECT_GT(s.messages_completed, 0);
}

INSTANTIATE_TEST_SUITE_P(Schemes, CrashDetectionTest,
                         ::testing::Values(Scheme::kHamiltonianSF,
                                           Scheme::kTreeSF),
                         [](const ::testing::TestParamInfo<Scheme>& param) {
                           std::string s = scheme_name(param.param);
                           for (char& c : s)
                             if (c == '-') c = '_';
                           return s;
                         });

// --- fault x repair composition (loss recovery + crash repair together) -----

class CrashDuringBackoffTest : public ::testing::TestWithParam<Scheme> {};

// Transient faults and a permanent failure composed: heavy ACK loss keeps
// senders in retransmit back-off, and the crash lands while retry timers
// to the victim are pending. The rescue must retarget those sends onto the
// repaired structures, deliver everything to the survivors exactly once,
// and the whole causal history must satisfy the standard protocol
// expectations (NACK/timeout resolution, suspicion evidence, repair
// grace, no duplicate delivery, every reservation returned).
TEST_P(CrashDuringBackoffTest, RescueLandsOnRepairedStructureNoDuplicates) {
  ExperimentConfig cfg = repair_config(GetParam());
  cfg.faults.ctrl_loss_rate = 0.1;  // lost ACKs arm retransmit back-off
  // Loss this heavy makes live peers look silent to a 30k detector; the
  // longer deadline keeps the accusation rate at exactly the real crash.
  cfg.protocol.suspicion_timeout = 60'000;
  Network net(make_myrinet_testbed(), {full_group(8)}, cfg);
  net.enable_tracing(std::size_t{1} << 18);
  // Crash after the first ACK-timeout rounds (ack_timeout 8k) have put
  // senders into back-off: retry timers to host 3 are pending when it dies.
  const Time crash_at = 20'000;
  net.crash_host(3, crash_at);
  for (int i = 0; i < 24; ++i) {
    const HostId src = static_cast<HostId>((i * 3) % 8 == 3 ? 1 : (i * 3) % 8);
    net.sim().at(1'000 + i * 2'000,
                 [&net, src] { inject_group_mcast(net, 0, src, 300); });
  }
  net.run_to_quiescence();

  const Network::Summary s = net.summary();
  ASSERT_GT(s.retransmits, 0) << "loss recovery was never exercised";
  EXPECT_EQ(s.hosts_removed, 1) << "the detector never accused the dead host";
  EXPECT_GT(s.sends_rerouted, 0)
      << "no in-flight send was rescued onto the repaired structure";
  expect_survivors_clean(net, {3});
  expect_exactly_once(net, 0, {3});
  EXPECT_GT(s.messages_completed, 0);

  const check::CheckReport rep = net.check_expectations();
  EXPECT_TRUE(rep.ok()) << rep.format();
  EXPECT_GT(rep.obligations, 0);
}

INSTANTIATE_TEST_SUITE_P(Schemes, CrashDuringBackoffTest,
                         ::testing::Values(Scheme::kHamiltonianSF,
                                           Scheme::kTreeSF),
                         [](const ::testing::TestParamInfo<Scheme>& param) {
                           std::string s = scheme_name(param.param);
                           for (char& c : s)
                             if (c == '-') c = '_';
                           return s;
                         });

TEST(FailureRepair, ProbesDetectIdleNeighborDeath) {
  // Two groups: group 0 carries all the traffic; group 1 exchanges one
  // message and then goes idle. Host 5 (group 1 only) crashes afterwards:
  // with no pending send ever targeting it, only the explicit liveness
  // probes of its circuit neighbours can expose the death.
  ExperimentConfig cfg = repair_config(Scheme::kHamiltonianSF);
  MulticastGroupSpec busy;
  busy.id = 0;
  busy.members = {0, 1, 2, 3};
  MulticastGroupSpec idle;
  idle.id = 1;
  idle.members = {4, 5, 6, 7};
  Network net(make_myrinet_testbed(), {busy, idle}, cfg);
  net.sim().at(500, [&net] { inject_group_mcast(net, 1, 4, 200); });
  net.crash_host(5, 6'000);
  // Keep messages outstanding long enough for probes to mature: the prober
  // only runs while the network has traffic in flight.
  for (int i = 0; i < 60; ++i) {
    const HostId src = static_cast<HostId>(i % 4);
    net.sim().at(1'000 + i * 1'500,
                 [&net, src] { inject_group_mcast(net, 0, src, 300); });
  }
  net.run_to_quiescence();

  const Network::Summary s = net.summary();
  EXPECT_EQ(s.hosts_removed, 1) << "probes failed to expose the idle death";
  EXPECT_TRUE(net.host_removed(5));
  EXPECT_GE(s.suspicions, 1);
  const auto& order = net.tables().circuit(1).order();
  EXPECT_EQ(order, (std::vector<HostId>{4, 6, 7}));
  expect_survivors_clean(net, {5});
}

// --- permanent link death ---------------------------------------------------

TEST(FailureRepair, PermanentLinkDeathRecomputesRoutes) {
  // 3x3 torus, one host per switch: killing any single switch-switch link
  // leaves the fabric connected, so the up/down recompute must reroute
  // everything over the survivors.
  Topology topo = make_torus(3, 3, 1);
  LinkId victim = kNoLink;
  for (LinkId l = 0; l < topo.num_links(); ++l) {
    const TopoLink& link = topo.link(l);
    if (topo.node(link.node_a).kind == NodeKind::kSwitch &&
        topo.node(link.node_b).kind == NodeKind::kSwitch) {
      victim = l;
      break;
    }
  }
  ASSERT_NE(victim, kNoLink);

  Network net(std::move(topo), {full_group(9)},
              repair_config(Scheme::kHamiltonianSF));
  net.fail_link(victim, 2'000);
  for (int i = 0; i < 12; ++i) {
    const HostId src = static_cast<HostId>((i * 4) % 9);
    net.sim().at(500 + i * 2'500,
                 [&net, src] { inject_group_mcast(net, 0, src, 300); });
  }
  net.run_to_quiescence();

  EXPECT_FALSE(net.routing().link_alive(victim));
  EXPECT_EQ(net.summary().links_failed, 1);
  // All hosts still mutually reachable over the healed up/down labels.
  for (HostId a = 0; a < 9; ++a)
    for (HostId b = 0; b < 9; ++b)
      if (a != b) EXPECT_GT(net.routing().hop_count(a, b), 0);
  expect_survivors_clean(net, {});
  expect_exactly_once(net, 0, {});
  EXPECT_EQ(net.summary().messages_completed, 12);
}

// --- the acceptance scenario ------------------------------------------------

// 64-host torus, 10 groups x 10 members: one member of every group crashes
// mid-stream (silently) and one up/down link dies permanently. Every group
// must resume delivery to its survivors within the suspicion + repair
// budget, exactly-once must hold, and no buffer may leak.
TEST(FailureRepair, Acceptance64HostTenGroups) {
  RandomStream rng(7);
  auto groups = make_random_groups(10, 10, 64, rng);
  ExperimentConfig cfg = repair_config(Scheme::kHamiltonianSF);
  cfg.protocol.pool_bytes = 256 * 1024;

  Topology topo = make_torus(8, 8, 1);
  // A switch-switch link: its death reroutes but cannot partition a torus.
  LinkId victim = kNoLink;
  for (LinkId l = 0; l < topo.num_links(); ++l) {
    const TopoLink& link = topo.link(l);
    if (topo.node(link.node_a).kind == NodeKind::kSwitch &&
        topo.node(link.node_b).kind == NodeKind::kSwitch) {
      victim = l;
      break;
    }
  }
  ASSERT_NE(victim, kNoLink);

  Network net(std::move(topo), groups, cfg);

  // One crash victim per group (a host may cover several groups).
  std::set<HostId> dead;
  for (const auto& g : groups) dead.insert(g.members[1]);
  const Time crash_at = 20'000;
  Time t = crash_at;
  for (const HostId h : dead) net.crash_host(h, t += 700);
  const Time last_crash = t;
  net.fail_link(victim, crash_at + 5'000);

  // Streams bracketing the crashes: survivors keep multicasting in every
  // group before, during and after the failures.
  for (const auto& g : groups) {
    for (int i = 0; i < 10; ++i) {
      HostId src = g.members[static_cast<std::size_t>(i) % g.members.size()];
      if (dead.count(src) > 0) src = g.members[0];
      if (dead.count(src) > 0) src = g.members[2];
      const GroupId group = g.id;
      net.sim().at(2'000 + i * 9'000 + group * 400,
                   [&net, group, src] { inject_group_mcast(net, group, src, 256); });
    }
  }
  net.run_to_quiescence();

  const Network::Summary s = net.summary();
  EXPECT_EQ(s.hosts_crashed, static_cast<std::int64_t>(dead.size()));
  EXPECT_EQ(s.hosts_removed, static_cast<std::int64_t>(dead.size()))
      << "every silent crash must be detected and repaired";
  EXPECT_EQ(s.links_failed, 1);
  for (const HostId h : dead) EXPECT_TRUE(net.host_removed(h));

  // Every repaired circuit: dead members gone, ascending IDs (the one wrap
  // reversal lives between highest and lowest, never inside the order).
  for (const auto& g : groups) {
    const auto& order = net.tables().circuit(g.id).order();
    EXPECT_TRUE(std::is_sorted(order.begin(), order.end())) << "group " << g.id;
    for (const HostId h : order)
      EXPECT_EQ(dead.count(h), 0u) << "dead host " << h << " still on circuit";
    std::size_t survivors = 0;
    for (const HostId m : g.members)
      if (dead.count(m) == 0) ++survivors;
    EXPECT_EQ(order.size(), survivors) << "group " << g.id;
  }

  // Detection + repair bounded by the suspicion budget (plus retry slack).
  EXPECT_GT(s.last_repair_time, crash_at);
  EXPECT_LE(s.last_repair_time,
            last_crash + 2 * cfg.protocol.suspicion_timeout + 100'000);

  // Survivors resumed in every group and delivered exactly once; nothing
  // leaked.
  EXPECT_GT(s.messages_completed, 0);
  for (const auto& g : groups) expect_exactly_once(net, g.id, dead);
  expect_survivors_clean(net, dead);
}

// --- membership churn racing failures ---------------------------------------

// A host crashes while its join request is still queued in the membership
// coordinator: the apply step must notice the death and finally shed the
// join (never splicing a corpse into the circuit), and the join-grace
// expectation must still account for the request.
TEST(FailureRepair, CrashMidJoinShedsInsteadOfSplicingACorpse) {
  ExperimentConfig cfg = repair_config(Scheme::kHamiltonianSF);
  cfg.membership.op_cost = 20'000;  // the join sits queued past the crash
  MulticastGroupSpec g0{0, {0, 1, 2, 3}};
  Network net(make_myrinet_testbed(), {g0}, cfg);
  net.enable_tracing(std::size_t{1} << 18);
  net.request_join(0, 5, 1'000);
  net.crash_host(5, 5'000);  // dies with the join still in the queue
  for (int i = 0; i < 8; ++i) {
    const HostId src = static_cast<HostId>(i % 4);
    net.sim().at(1'000 + i * 2'000,
                 [&net, src] { inject_group_mcast(net, 0, src, 300); });
  }
  net.run_to_quiescence();

  const Network::Summary s = net.summary();
  EXPECT_EQ(s.joins_requested, 1);
  EXPECT_EQ(s.joins_applied, 0);
  EXPECT_EQ(s.joins_abandoned, 1) << "the dead joiner must be finally shed";
  EXPECT_FALSE(net.tables().is_member(0, 5));
  EXPECT_EQ(net.tables().circuit(0).order(), (std::vector<HostId>{0, 1, 2, 3}));
  expect_survivors_clean(net, {5});
  expect_exactly_once(net, 0, {5});

  const check::CheckReport rep = net.check_expectations();
  EXPECT_TRUE(rep.ok()) << rep.format();
}

// A voluntary leave races an in-flight failure repair: host 3 crashes
// under load (detector path), and host 5 leaves the same group while the
// suspicion/repair machinery is working on the corpse. The leave must stay
// a clean departure (never suspected), the crash must still be repaired,
// and the causal history must satisfy the full expectation pack.
TEST(FailureRepair, LeaveRacingInFlightRepairStaysClean) {
  ExperimentConfig cfg = repair_config(Scheme::kHamiltonianSF);
  cfg.protocol.suspicion_timeout = 40'000;
  Network net(make_myrinet_testbed(), {full_group(8)}, cfg);
  net.enable_tracing(std::size_t{1} << 18);
  const Time crash_at = 15'000;
  net.crash_host(3, crash_at);
  // The leave lands inside the detection window: suspicion of host 3 is
  // pending while the coordinator splices host 5 out.
  net.request_leave(0, 5, crash_at + 10'000);
  for (int i = 0; i < 24; ++i) {
    const HostId src = static_cast<HostId>((i * 3) % 8 == 3 ? 1 : (i * 3) % 8);
    net.sim().at(1'000 + i * 2'000,
                 [&net, src] { inject_group_mcast(net, 0, src, 300); });
  }
  net.run_to_quiescence();

  const Network::Summary s = net.summary();
  EXPECT_EQ(s.hosts_removed, 1) << "the real crash must still be repaired";
  EXPECT_TRUE(net.host_removed(3));
  EXPECT_FALSE(net.host_removed(5)) << "the leaver is alive, not a corpse";
  EXPECT_EQ(s.leaves, 1);
  EXPECT_FALSE(net.tables().is_member(0, 5));
  // Circuit healed around both departures, in order.
  EXPECT_EQ(net.tables().circuit(0).order(),
            (std::vector<HostId>{0, 1, 2, 4, 6, 7}));
  expect_survivors_clean(net, {3, 5});
  expect_exactly_once(net, 0, {3, 5});

  const check::CheckReport rep = net.check_expectations();
  EXPECT_TRUE(rep.ok()) << rep.format();
  EXPECT_GT(rep.obligations, 0);
}

}  // namespace
}  // namespace wormcast
