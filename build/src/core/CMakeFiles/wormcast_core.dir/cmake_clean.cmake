file(REMOVE_RECURSE
  "CMakeFiles/wormcast_core.dir/group_tables.cpp.o"
  "CMakeFiles/wormcast_core.dir/group_tables.cpp.o.d"
  "CMakeFiles/wormcast_core.dir/host_protocol.cpp.o"
  "CMakeFiles/wormcast_core.dir/host_protocol.cpp.o.d"
  "CMakeFiles/wormcast_core.dir/metrics.cpp.o"
  "CMakeFiles/wormcast_core.dir/metrics.cpp.o.d"
  "CMakeFiles/wormcast_core.dir/network.cpp.o"
  "CMakeFiles/wormcast_core.dir/network.cpp.o.d"
  "CMakeFiles/wormcast_core.dir/protocol_config.cpp.o"
  "CMakeFiles/wormcast_core.dir/protocol_config.cpp.o.d"
  "libwormcast_core.a"
  "libwormcast_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wormcast_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
