# Empty dependencies file for distributed_whiteboard.
# This may be replaced when dependencies are built.
