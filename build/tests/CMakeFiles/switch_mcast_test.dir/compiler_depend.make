# Empty compiler generated dependencies file for switch_mcast_test.
# This may be replaced when dependencies are built.
