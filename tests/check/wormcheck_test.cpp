// wormcheck: causal-path reconstruction, the expectations DSL evaluated
// over hand-built event vectors, checker refusal semantics, and end-to-end
// runs where the standard rule pack judges a real (faulted, repaired)
// simulation — including the intentionally-broken configuration that must
// produce a deterministic violation report.
#include "check/wormcheck.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/network.h"
#include "net/topologies.h"
#include "traffic/groups.h"

namespace wormcast {
namespace {

using check::CheckReport;
using check::expect;
using check::Expectation;
using check::reconstruct_paths;
using check::run_checks;
using T = TraceEventType;

TraceEvent make_event(Time t, T type, std::int32_t node, std::uint64_t worm,
                      std::int64_t arg, std::int32_t port = -1) {
  TraceEvent e;
  e.t = t;
  e.type = type;
  e.node = node;
  e.port = port;
  e.worm = worm;
  e.arg = arg;
  return e;
}

// Matchers shared by the DSL tests.
bool same_worm(const TraceEvent& t, const TraceEvent& c) {
  return c.worm == t.worm;
}
bool same_worm_same_node(const TraceEvent& t, const TraceEvent& c) {
  return c.worm == t.worm && c.node == t.node;
}

// --- reconstruction ----------------------------------------------------------

TEST(Reconstruct, GroupsEventsByWormOldestFirst) {
  std::vector<TraceEvent> events;
  events.push_back(make_event(10, T::kChanHead, 0, 7, 0));
  events.push_back(make_event(12, T::kChanHead, 0, 9, 0));
  events.push_back(make_event(20, T::kProtoProbe, 1, 0, 3));  // id-less
  events.push_back(make_event(30, T::kChanTail, 1, 7, 0));
  const auto paths = reconstruct_paths(events);
  ASSERT_EQ(paths.size(), 2u);  // worm 0 events belong to no path
  EXPECT_EQ(paths[0].worm, 7u);
  ASSERT_EQ(paths[0].events.size(), 2u);
  EXPECT_EQ(paths[0].first_t, 10);
  EXPECT_EQ(paths[0].last_t, 30);
  EXPECT_EQ(paths[1].worm, 9u);
  EXPECT_EQ(paths[1].events.size(), 1u);
}

TEST(Reconstruct, AttemptIndexCountsPriorRetransmissions) {
  std::vector<TraceEvent> events;
  events.push_back(make_event(10, T::kProtoNackSent, 2, 7, 1));
  events.push_back(make_event(20, T::kProtoRetransmit, 1, 7, 2));
  events.push_back(make_event(30, T::kProtoAckSent, 2, 7, 1));
  events.push_back(make_event(40, T::kProtoRetransmit, 1, 7, 2));
  events.push_back(make_event(50, T::kProtoAckSent, 2, 7, 1));
  const auto paths = reconstruct_paths(events);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].retransmissions, 2);
  const std::vector<int> want = {0, 0, 1, 1, 2};
  EXPECT_EQ(paths[0].attempt, want);
}

TEST(Reconstruct, OpenReservationMarksUnterminated) {
  std::vector<TraceEvent> events;
  events.push_back(make_event(10, T::kProtoReserve, 2, 7, 1024));
  events.push_back(make_event(20, T::kProtoRelease, 2, 7, 1024));
  events.push_back(make_event(30, T::kProtoReserve, 3, 7, 1024));
  const auto paths = reconstruct_paths(events);
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].open_reservations, 1);
  EXPECT_TRUE(paths[0].unterminated());
}

// --- the DSL, over hand-built vectors ---------------------------------------

std::vector<Expectation> one_rule(Expectation e) {
  std::vector<Expectation> rules;
  rules.push_back(std::move(e));
  return rules;
}

TEST(Dsl, FollowedBySatisfiedInsideWindow) {
  std::vector<TraceEvent> events;
  events.push_back(make_event(100, T::kProtoNackSent, 2, 7, 1));
  events.push_back(make_event(150, T::kProtoRetransmit, 1, 7, 2));
  events.push_back(make_event(400, T::kChanGo, 0, 0, 0));  // horizon filler
  const CheckReport rep = run_checks(
      events, one_rule(expect("r").on(T::kProtoNackSent).within(100).followed_by(
          T::kProtoRetransmit, same_worm)));
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.obligations, 1);
  EXPECT_EQ(rep.unterminated, 0);
}

TEST(Dsl, FollowedByMissingIsViolated) {
  std::vector<TraceEvent> events;
  events.push_back(make_event(100, T::kProtoNackSent, 2, 7, 1));
  events.push_back(make_event(400, T::kChanGo, 0, 0, 0));
  const CheckReport rep = run_checks(
      events, one_rule(expect("r").on(T::kProtoNackSent).within(100).followed_by(
          T::kProtoRetransmit, same_worm)));
  ASSERT_EQ(rep.violations.size(), 1u);
  EXPECT_EQ(rep.violations[0].rule, "r");
  EXPECT_EQ(rep.violations[0].worm, 7u);
  EXPECT_EQ(rep.violations[0].window_begin, 100);
  EXPECT_EQ(rep.violations[0].window_end, 200);
}

TEST(Dsl, WrongWormDoesNotSatisfy) {
  std::vector<TraceEvent> events;
  events.push_back(make_event(100, T::kProtoNackSent, 2, 7, 1));
  events.push_back(make_event(150, T::kProtoRetransmit, 1, 9, 2));  // other worm
  events.push_back(make_event(400, T::kChanGo, 0, 0, 0));
  const CheckReport rep = run_checks(
      events, one_rule(expect("r").on(T::kProtoNackSent).within(100).followed_by(
          T::kProtoRetransmit, same_worm)));
  EXPECT_EQ(rep.violations.size(), 1u);
}

TEST(Dsl, OrByAlternativeSatisfies) {
  std::vector<TraceEvent> events;
  events.push_back(make_event(100, T::kProtoAckTimeout, 1, 7, 2));
  events.push_back(make_event(150, T::kProtoSendFailed, 1, 7, 2));
  events.push_back(make_event(400, T::kChanGo, 0, 0, 0));
  const CheckReport rep = run_checks(
      events,
      one_rule(expect("r")
                   .on(T::kProtoAckTimeout)
                   .within(100)
                   .followed_by(T::kProtoRetransmit, same_worm)
                   .or_by(T::kProtoSendFailed, same_worm)));
  EXPECT_TRUE(rep.ok());
}

TEST(Dsl, UnlessWaivesEvenWhenExcusePrecedesTrigger) {
  std::vector<TraceEvent> events;
  events.push_back(make_event(80, T::kProtoSendFailed, 1, 7, 2));
  events.push_back(make_event(100, T::kProtoNackSent, 2, 7, 1));
  events.push_back(make_event(400, T::kChanGo, 0, 0, 0));
  const CheckReport rep = run_checks(
      events, one_rule(expect("r")
                           .on(T::kProtoNackSent)
                           .within(100)
                           .followed_by(T::kProtoRetransmit, same_worm)
                           .unless(T::kProtoSendFailed, same_worm)));
  EXPECT_TRUE(rep.ok());
}

TEST(Dsl, PrecededByWantsEvidenceBeforeAccusation) {
  std::vector<TraceEvent> events;
  events.push_back(make_event(100, T::kProtoProbe, 1, 0, 3));
  events.push_back(make_event(150, T::kProtoSuspect, 1, 0, 3));
  const CheckReport ok_rep = run_checks(
      events, one_rule(expect("r").on(T::kProtoSuspect).within(100).preceded_by(
          T::kProtoProbe, [](const TraceEvent& t, const TraceEvent& c) {
            return c.node == t.node && c.arg == t.arg;
          })));
  EXPECT_TRUE(ok_rep.ok());

  // The probe after the suspicion is no evidence at all. (The filler at
  // t=40 keeps the whole lookback window [50, 150] inside the recording,
  // so the miss judges as a violation rather than unterminated.)
  std::vector<TraceEvent> bad;
  bad.push_back(make_event(40, T::kChanGo, 0, 0, 0));
  bad.push_back(make_event(150, T::kProtoSuspect, 1, 0, 3));
  bad.push_back(make_event(160, T::kProtoProbe, 1, 0, 3));
  const CheckReport bad_rep = run_checks(
      bad, one_rule(expect("r").on(T::kProtoSuspect).within(100).preceded_by(
          T::kProtoProbe, [](const TraceEvent& t, const TraceEvent& c) {
            return c.node == t.node && c.arg == t.arg;
          })));
  EXPECT_EQ(bad_rep.violations.size(), 1u);
}

TEST(Dsl, NeverWithinFlagsForbiddenHistory) {
  std::vector<TraceEvent> events;
  events.push_back(make_event(100, T::kProtoDeliver, 2, 7, 1));
  events.push_back(make_event(150, T::kProtoDeliver, 2, 7, 1));  // duplicate
  const CheckReport rep = run_checks(
      events, one_rule(expect("dup").on(T::kProtoDeliver).never_within(
          T::kProtoDeliver, same_worm_same_node)));
  ASSERT_EQ(rep.violations.size(), 1u);
  EXPECT_EQ(rep.violations[0].rule, "dup");
  EXPECT_EQ(rep.violations[0].worm, 7u);
  // The offending earlier delivery opens the reported window.
  EXPECT_EQ(rep.violations[0].window_begin, 100);
}

TEST(Dsl, NeverWithinRespectsWindowAndStrictLeftEdge) {
  std::vector<TraceEvent> events;
  events.push_back(make_event(100, T::kChanHead, 5, 7, 0, 2));
  events.push_back(make_event(400, T::kMcastIdleFlush, 5, 9, 0, 2));
  // The head sits exactly one full window before the flush: legal.
  const auto rule = [] {
    return expect("flush").on(T::kMcastIdleFlush).never_within(
        T::kChanHead,
        [](const TraceEvent& t, const TraceEvent& c) {
          return c.node == t.node && c.port == t.port;
        },
        300);
  };
  EXPECT_TRUE(run_checks(events, one_rule(rule())).ok());
  events[0].t = 101;  // now inside the idle threshold: violation
  EXPECT_EQ(run_checks(events, one_rule(rule())).violations.size(), 1u);
}

TEST(Dsl, ObligationPastHorizonIsUnterminatedNotViolated) {
  std::vector<TraceEvent> events;
  events.push_back(make_event(100, T::kProtoNackSent, 2, 7, 1));
  events.push_back(make_event(120, T::kChanGo, 0, 0, 0));  // horizon = 120
  const CheckReport rep = run_checks(
      events, one_rule(expect("r").on(T::kProtoNackSent).within(100).followed_by(
          T::kProtoRetransmit, same_worm)));
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.unterminated, 1);
}

TEST(Dsl, InactiveRuleOpensNoObligations) {
  std::vector<TraceEvent> events;
  events.push_back(make_event(100, T::kProtoNackSent, 2, 7, 1));
  events.push_back(make_event(400, T::kChanGo, 0, 0, 0));
  const CheckReport rep = run_checks(
      events, one_rule(expect("r")
                           .on(T::kProtoNackSent)
                           .within(100)
                           .followed_by(T::kProtoRetransmit, same_worm)
                           .active_if(false)));
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.obligations, 0);
  EXPECT_EQ(rep.rules_evaluated, 0);
}

TEST(Dsl, FilterRestrictsTriggers) {
  std::vector<TraceEvent> events;
  events.push_back(make_event(100, T::kProtoNackSent, 2, 0, 1));  // id-less
  events.push_back(make_event(110, T::kProtoNackSent, 2, 7, 1));
  events.push_back(make_event(400, T::kChanGo, 0, 0, 0));
  const CheckReport rep = run_checks(
      events,
      one_rule(expect("r")
                   .on(T::kProtoNackSent,
                       [](const TraceEvent& e) { return e.worm != 0; })
                   .within(100)
                   .followed_by(T::kProtoRetransmit, same_worm)));
  EXPECT_EQ(rep.obligations, 1);
  EXPECT_EQ(rep.violations.size(), 1u);
}

TEST(Dsl, FormatNamesRuleWormAndWindow) {
  std::vector<TraceEvent> events;
  events.push_back(make_event(100, T::kProtoNackSent, 2, 7, 1));
  events.push_back(make_event(400, T::kChanGo, 0, 0, 0));
  const CheckReport rep = run_checks(
      events, one_rule(expect("nack-retransmit")
                           .on(T::kProtoNackSent)
                           .within(100)
                           .followed_by(T::kProtoRetransmit, same_worm)
                           .detail("must retry")));
  const std::string report = rep.format();
  EXPECT_NE(report.find("FAIL"), std::string::npos);
  EXPECT_NE(report.find("[nack-retransmit] worm=7 window=[100, 200]"),
            std::string::npos);
  EXPECT_NE(report.find("must retry"), std::string::npos);
  EXPECT_NE(report.find("proto.nack"), std::string::npos);  // trigger line
}

// --- Network::check_expectations refusal semantics ---------------------------

ExperimentConfig lossy_config(double loss, std::uint64_t seed = 42) {
  ExperimentConfig cfg;
  cfg.protocol.scheme = Scheme::kHamiltonianSF;
  cfg.protocol.ack_timeout = 20'000;
  cfg.protocol.retry_backoff = 2'000;
  cfg.protocol.retry_jitter = 1'000;
  cfg.protocol.max_attempts = 8;
  cfg.protocol.pool_bytes = 128 * 1024;
  cfg.faults.worm_kill_rate = loss;
  cfg.faults.ctrl_loss_rate = loss;
  cfg.seed = seed;
  return cfg;
}

void inject_multicasts(Network& net, int count, std::int64_t length) {
  for (int i = 0; i < count; ++i) {
    Demand d;
    d.src = static_cast<HostId>((i * 3) % net.num_hosts());
    d.multicast = true;
    d.group = 0;
    d.length = length;
    net.inject(d);
  }
}

TEST(CheckExpectations, RefusesWhenTracingOff) {
  Network net(make_myrinet_testbed(), {make_full_group(8)}, lossy_config(0.0));
  inject_multicasts(net, 2, 256);
  net.run_to_quiescence();
  const CheckReport rep = net.check_expectations();
  EXPECT_FALSE(rep.usable);
  EXPECT_FALSE(rep.ok());
  EXPECT_NE(rep.refusal.find("tracing"), std::string::npos);
  EXPECT_NE(rep.format().find("REFUSED"), std::string::npos);
}

TEST(CheckExpectations, RefusesWhenRingWrapped) {
  Network net(make_myrinet_testbed(), {make_full_group(8)}, lossy_config(0.0));
  net.enable_tracing(16);  // far too small for a full run
  inject_multicasts(net, 4, 512);
  net.run_to_quiescence();
  const CheckReport rep = net.check_expectations();
  EXPECT_FALSE(rep.usable);
  EXPECT_GT(rep.events_dropped, 0);
  EXPECT_NE(rep.refusal.find("wrapped"), std::string::npos);
}

// --- the standard rule pack, end to end --------------------------------------

TEST(CheckExpectations, CleanLossyRunPassesStandardRules) {
  Network net(make_myrinet_testbed(), {make_full_group(8)}, lossy_config(0.08));
  net.enable_tracing(std::size_t{1} << 18);
  inject_multicasts(net, 20, 512);
  net.run_to_quiescence();
  ASSERT_GT(net.summary().faults_injected, 0);
  ASSERT_GT(net.summary().retransmits, 0);  // recovery actually exercised
  const CheckReport rep = net.check_expectations();
  EXPECT_TRUE(rep.ok()) << rep.format();
  EXPECT_GT(rep.obligations, 0);
}

TEST(CheckExpectations, CrashAndRepairRunPassesStandardRules) {
  ExperimentConfig cfg = lossy_config(0.0);
  cfg.protocol.ack_timeout = 8'000;
  cfg.protocol.max_attempts = 10;
  cfg.protocol.suspicion_timeout = 30'000;
  Network net(make_myrinet_testbed(), {make_full_group(8)}, cfg);
  net.enable_tracing(std::size_t{1} << 18);
  inject_multicasts(net, 10, 512);
  net.crash_host(3, 5'000);
  net.run_to_quiescence();
  ASSERT_GT(net.summary().hosts_removed, 0);  // repair actually happened
  const CheckReport rep = net.check_expectations();
  EXPECT_TRUE(rep.ok()) << rep.format();
  EXPECT_GT(rep.obligations, 0);
}

/// Regression: a falsely-accused tree root gets removed while an origin's
/// relay-phase copy is still unACKed. The rescue retargets that copy to the
/// newly promoted serializer — which already received the old root's flood.
/// The dedup memory keys on (message, phase), so the relay copy used to slip
/// past it and deliver the payload a second time (wormcheck's dedup-delivery
/// rule caught this; the serializer now re-floods without re-delivering).
TEST(CheckExpectations, RescuedRelayAfterRootRemovalDoesNotDoubleDeliver) {
  ExperimentConfig cfg = lossy_config(0.0);
  cfg.protocol.scheme = Scheme::kTreeSF;
  cfg.protocol.ack_timeout = 8'000;
  cfg.protocol.max_attempts = 10;
  cfg.protocol.suspicion_timeout = 60'000;
  cfg.faults.ctrl_loss_rate = 0.2;  // lose ACKs, keep relay sends pending
  Network net(make_myrinet_testbed(), {make_full_group(8)}, cfg);
  net.enable_tracing(std::size_t{1} << 18);
  net.crash_host(3, 20'000);
  for (int i = 0; i < 24; ++i) {
    const HostId src = static_cast<HostId>((i * 3) % 8 == 3 ? 1 : (i * 3) % 8);
    net.sim().at(1'000 + i * 2'000, [&net, src] {
      Demand d;
      d.src = src;
      d.multicast = true;
      d.group = 0;
      d.length = 300;
      net.inject(d);
    });
  }
  net.run_to_quiescence();
  // The interesting part of the scenario is the *second* removal: heavy ACK
  // loss makes a live host (the root) look silent, so repair promotes a new
  // serializer while relay copies are still in flight toward the old one.
  ASSERT_GE(net.summary().hosts_removed, 2);
  const CheckReport rep = net.check_expectations();
  EXPECT_TRUE(rep.ok()) << rep.format();
  EXPECT_GT(rep.obligations, 0);
}

/// The acceptance scenario for the whole subsystem, part 1: a rule whose
/// window is intentionally broken (forced to ~0, as if the protocol's
/// recovery deadline were misconfigured) must flag the real trace of a
/// correct lossy run — naming the rule, the worm, and the event window —
/// and render the identical report run after run.
TEST(CheckExpectations, BrokenRuleWindowProducesDeterministicViolation) {
  const auto run_broken = [] {
    Network net(make_myrinet_testbed(), {make_full_group(8)},
                lossy_config(0.08));
    net.enable_tracing(std::size_t{1} << 18);
    inject_multicasts(net, 20, 512);
    net.run_to_quiescence();
    // A rule pack whose timeout-response deadline is zero byte-times:
    // every real ACK-timeout -> retransmission gap now "violates" it.
    // (The genuine protocol config derives a >=80k-byte-time window; see
    // standard_rules.)
    check::CheckConfig broken;
    broken.ack_timeout = 1;
    broken.retry_backoff = 0;
    broken.retry_jitter = 0;
    broken.max_attempts = 8;
    broken.slack = 0;
    return run_checks(net.sim().tracer().snapshot(),
                      check::standard_rules(broken));
  };
  const CheckReport rep = run_broken();
  ASSERT_TRUE(rep.usable);
  ASSERT_FALSE(rep.violations.empty()) << rep.format();
  bool found = false;
  for (const auto& v : rep.violations) {
    if (v.rule != "timeout-response") continue;
    found = true;
    EXPECT_NE(v.worm, 0u);
    EXPECT_LE(v.window_begin, v.window_end);
  }
  EXPECT_TRUE(found) << rep.format();
  const std::string report = rep.format();
  EXPECT_NE(report.find("[timeout-response] worm="), std::string::npos);
  // Determinism: an identical run renders the identical report.
  EXPECT_EQ(report, run_broken().format());
}

/// Part 2: a duplicate application delivery — what a dedup window forced
/// to 0 would let through — is caught by the dedup-delivery rule. The
/// simulator itself asserts on real double delivery (it is an internal
/// invariant), so the duplicate is injected into the genuine trace of a
/// recovered lossy run: the recorded stream stays real except for the one
/// event the broken protocol would have added.
TEST(CheckExpectations, DuplicateDeliveryIsCaughtByDedupRule) {
  Network net(make_myrinet_testbed(), {make_full_group(8)}, lossy_config(0.08));
  net.enable_tracing(std::size_t{1} << 18);
  inject_multicasts(net, 20, 512);
  net.run_to_quiescence();
  std::vector<TraceEvent> events = net.sim().tracer().snapshot();
  const auto cfg_rules = [&net] {
    check::CheckConfig ccfg;
    ccfg.ack_timeout = 20'000;
    ccfg.retry_backoff = 2'000;
    ccfg.retry_jitter = 1'000;
    ccfg.max_attempts = 8;
    return check::standard_rules(ccfg);
  };
  ASSERT_TRUE(run_checks(events, cfg_rules()).ok());  // the real trace is clean

  // Re-deliver the first recorded delivery a little later.
  const auto it = std::find_if(events.begin(), events.end(), [](const auto& e) {
    return e.type == T::kProtoDeliver;
  });
  ASSERT_NE(it, events.end());
  TraceEvent dup = *it;
  const Time first_delivery_t = it->t;
  dup.t = events.back().t;  // keeps the snapshot time-ordered
  events.push_back(dup);

  const CheckReport rep = run_checks(events, cfg_rules());
  ASSERT_EQ(rep.violations.size(), 1u) << rep.format();
  EXPECT_EQ(rep.violations[0].rule, "dedup-delivery");
  EXPECT_EQ(rep.violations[0].worm, dup.worm);
  EXPECT_EQ(rep.violations[0].window_begin, first_delivery_t);
  EXPECT_EQ(rep.violations[0].window_end, dup.t);
}

// --- the membership-churn rules, isolated from the standard pack ------------
// These pull the *real* rule out of standard_rules by name, so the tests
// pin the shipped wiring (matchers, windows, excuses) and not a re-typed
// copy. Membership events carry worm=0, node=member, arg=group; a suspect
// event carries node=accuser, arg=suspect.

check::CheckConfig churn_cfg() {
  check::CheckConfig cfg;
  cfg.join_grace = 1'000;
  cfg.suspicion_timeout = 500;
  cfg.slack = 100;
  return cfg;
}

std::vector<Expectation> named_rule(const check::CheckConfig& cfg,
                                    const std::string& name) {
  std::vector<Expectation> out;
  for (Expectation& r : check::standard_rules(cfg))
    if (r.name() == name) out.push_back(std::move(r));
  return out;
}

TEST(ChurnRules, JoinGraceSatisfiedByApplyOrShed) {
  const auto rules = [] { return named_rule(churn_cfg(), "join-grace"); };
  std::vector<TraceEvent> applied;
  applied.push_back(make_event(100, T::kProtoJoinRequest, 3, 0, 0));
  applied.push_back(make_event(600, T::kProtoJoinApplied, 3, 0, 0));
  applied.push_back(make_event(5'000, T::kChanGo, 0, 0, 0));  // horizon
  EXPECT_TRUE(run_checks(applied, rules()).ok());

  std::vector<TraceEvent> shed;
  shed.push_back(make_event(100, T::kProtoJoinRequest, 3, 0, 0));
  shed.push_back(make_event(600, T::kProtoJoinShed, 3, 0, 0));
  shed.push_back(make_event(5'000, T::kChanGo, 0, 0, 0));
  EXPECT_TRUE(run_checks(shed, rules()).ok());
}

TEST(ChurnRules, JoinDanglingInQueueIsViolated) {
  std::vector<TraceEvent> events;
  events.push_back(make_event(100, T::kProtoJoinRequest, 3, 0, 0));
  // Another host's join applying is no answer for host 3.
  events.push_back(make_event(600, T::kProtoJoinApplied, 5, 0, 0));
  events.push_back(make_event(5'000, T::kChanGo, 0, 0, 0));
  const CheckReport rep =
      run_checks(events, named_rule(churn_cfg(), "join-grace"));
  ASSERT_EQ(rep.violations.size(), 1u) << rep.format();
  EXPECT_EQ(rep.violations[0].rule, "join-grace");
  // Window = join_grace + slack past the request.
  EXPECT_EQ(rep.violations[0].window_end, 100 + 1'000 + 100);
}

TEST(ChurnRules, JoinWaivedWhenJoinerCrashesAndGraceZeroDisables) {
  std::vector<TraceEvent> events;
  events.push_back(make_event(100, T::kProtoJoinRequest, 3, 0, 0));
  events.push_back(make_event(400, T::kProtoCrash, 3, 0, 0));
  events.push_back(make_event(5'000, T::kChanGo, 0, 0, 0));
  EXPECT_TRUE(run_checks(events, named_rule(churn_cfg(), "join-grace")).ok());

  check::CheckConfig off = churn_cfg();
  off.join_grace = 0;  // rule inactive: the dangling request is not judged
  std::vector<TraceEvent> dangling;
  dangling.push_back(make_event(100, T::kProtoJoinRequest, 3, 0, 0));
  dangling.push_back(make_event(5'000, T::kChanGo, 0, 0, 0));
  const CheckReport rep = run_checks(dangling, named_rule(off, "join-grace"));
  EXPECT_TRUE(rep.ok());
  EXPECT_EQ(rep.obligations, 0);
}

TEST(ChurnRules, VoluntaryLeaveMustNeverBeSuspected) {
  const auto rules = [] {
    return named_rule(churn_cfg(), "leave-no-suspect");
  };
  // Host 4 leaves; host 2 accuses it shortly after: violation.
  std::vector<TraceEvent> bad;
  bad.push_back(make_event(100, T::kProtoLeave, 4, 0, 0));
  bad.push_back(make_event(300, T::kProtoSuspect, 2, 0, 4));
  const CheckReport rep = run_checks(bad, rules());
  ASSERT_EQ(rep.violations.size(), 1u) << rep.format();
  EXPECT_EQ(rep.violations[0].rule, "leave-no-suspect");

  // A suspicion with no leave in the lookback is out of scope here.
  std::vector<TraceEvent> clean;
  clean.push_back(make_event(100, T::kProtoLeave, 6, 0, 0));  // other host
  clean.push_back(make_event(300, T::kProtoSuspect, 2, 0, 4));
  EXPECT_TRUE(run_checks(clean, rules()).ok());

  // The leaver genuinely crashing afterwards makes the accusation fair.
  std::vector<TraceEvent> crashed;
  crashed.push_back(make_event(100, T::kProtoLeave, 4, 0, 0));
  crashed.push_back(make_event(200, T::kProtoCrash, 4, 0, 0));
  crashed.push_back(make_event(300, T::kProtoSuspect, 2, 0, 4));
  EXPECT_TRUE(run_checks(crashed, rules()).ok());
}

TEST(ChurnRules, RejoinMustResetTheDedupEpoch) {
  const auto rules = [] {
    return named_rule(churn_cfg(), "rejoin-fresh-dedup");
  };
  std::vector<TraceEvent> good;
  good.push_back(make_event(100, T::kProtoRejoin, 3, 0, 1));
  good.push_back(make_event(100, T::kProtoDedupReset, 3, 0, 1));
  good.push_back(make_event(5'000, T::kChanGo, 0, 0, 0));
  EXPECT_TRUE(run_checks(good, rules()).ok());

  std::vector<TraceEvent> bad;
  bad.push_back(make_event(100, T::kProtoRejoin, 3, 0, 1));
  // A reset for a *different group* at the same member does not count.
  bad.push_back(make_event(100, T::kProtoDedupReset, 3, 0, 2));
  bad.push_back(make_event(5'000, T::kChanGo, 0, 0, 0));
  const CheckReport rep = run_checks(bad, rules());
  ASSERT_EQ(rep.violations.size(), 1u) << rep.format();
  EXPECT_EQ(rep.violations[0].rule, "rejoin-fresh-dedup");
}

}  // namespace
}  // namespace wormcast
