# Empty dependencies file for switch_test.
# This may be replaced when dependencies are built.
