// Deterministic fault injection for loss-recovery experiments.
//
// The fabric and the adapters are lossless by construction, so nothing in
// the simulator could previously exercise the paper's "retransmit after
// timeout" claims (Sections 4-6): a worm, once injected, always arrived.
// The FaultInjector is a single seedable oracle, owned by Network and
// consulted by every Channel and HostAdapter, that can
//   * kill a data worm mid-flight on a link (truncation: the tail is
//     synthesized early and the rest of the worm is swallowed),
//   * swallow a control worm (ACK/NACK) whole,
//   * drop a worm at an adapter's receive engine before the protocol
//     sees it, and
//   * take a link down for a scheduled interval (every crossing worm
//     during the outage is swallowed),
//   * kill a link permanently (an outage that never ends), and
//   * record crash-stop host deaths for the failure-detection layer.
//
// All probabilistic draws come from one forked RandomStream, so a given
// (seed, config) pair injects the identical fault sequence on every run —
// the property the seed-stability ctest pins down. Tests can also force
// specific faults deterministically (force_kill_data etc.); forced faults
// are consumed before any probability is rolled.
//
// The "no faults configured" fast path: armed() is a cached bool, and the
// hook sites check it before anything else, so a fault-free simulation pays
// one pointer test plus one bool test per worm head.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_set>
#include <vector>

#include "sim/random.h"
#include "sim/types.h"

namespace wormcast {

/// Probabilities are per link crossing (a multi-hop worm rolls once per
/// channel it enters), matching how independent per-link bit errors would
/// strike a real cut-through fabric.
struct FaultConfig {
  /// Probability that a data worm entering a channel is truncated there.
  double worm_kill_rate = 0.0;
  /// Probability that an ACK/NACK entering a channel is swallowed whole.
  double ctrl_loss_rate = 0.0;
  /// Probability that an adapter receive engine discards an arriving worm
  /// at its head (models a busy/faulty LANai dropping a packet).
  double rx_drop_rate = 0.0;

  [[nodiscard]] bool any() const {
    return worm_kill_rate > 0.0 || ctrl_loss_rate > 0.0 || rx_drop_rate > 0.0;
  }
};

class FaultInjector {
 public:
  explicit FaultInjector(RandomStream rng, FaultConfig config = {});
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// False means no fault can ever fire: hook sites skip all other calls.
  [[nodiscard]] bool armed() const { return armed_; }

  // --- channel-side decisions (rolled at a worm's head byte) -----------------
  //
  // Probabilistic draws are *keyed*: each outcome is a pure function of the
  // injector seed, the worm id, and the simulation time of the decision —
  // never of the order the simulator interleaved same-time events. That
  // keeps the fault sequence identical between the burst-mode and per-byte
  // channel hot paths (which schedule different event counts and therefore
  // break same-time ties differently). `now` at a head classification is
  // unique per channel crossing and differs per retransmission attempt, so
  // a killed worm is not doomed to be killed again. Forced faults are still
  // consumed in call order, before any probability is rolled.

  /// Should the data worm currently entering a channel be truncated there?
  /// `dst` is the worm's hop destination (used to match forced kills).
  bool should_kill_worm(HostId dst, WormId id, Time now);

  /// Should the ACK/NACK currently entering a channel be swallowed?
  bool should_drop_control(WormId id, Time now);

  /// How many bytes of a killed worm to let through before synthesizing the
  /// tail, uniform in [min_len, max_len] (the caller computes min_len so the
  /// stub stays frameable through the remaining switches).
  std::int64_t pick_truncation(std::int64_t min_len, std::int64_t max_len,
                               WormId id, Time now);

  // --- adapter-side decision -------------------------------------------------

  /// Should the adapter receive engine drop the worm whose head just arrived?
  bool should_drop_rx(WormId id, HostId host, Time now);

  // --- scheduled link outages ------------------------------------------------

  /// Takes a link down for [from, until): every worm entering the channel in
  /// that window is swallowed whole. `channel` is the Channel's address
  /// (an opaque identity key); nullptr means "every channel".
  void schedule_outage(const void* channel, Time from, Time until);

  /// Is the channel inside an outage window at `now`? A pure query: call
  /// note_outage_drop() at the site that actually discards a worm, so
  /// double-querying a channel never double-counts.
  [[nodiscard]] bool link_down(const void* channel, Time now) const;

  /// Schedules a flap cycle: alternating down/up windows on `channel` from
  /// `from` until `horizon`, with each down (up) interval drawn keyed-
  /// uniform in [mean/2, 3*mean/2] around `mean_down` (`mean_up`). Unlike
  /// kill_link, every outage window ends — the link *recovers* — and no
  /// route recomputation happens, so retransmissions bridge the gaps. The
  /// windows are a pure function of (seed, key, index): bit-identical at
  /// any --jobs. Returns the number of down-windows scheduled.
  int schedule_flaps(const void* channel, Time from, Time horizon,
                     Time mean_down, Time mean_up, std::uint64_t key);

  /// Down-windows scheduled by schedule_flaps (all of them recover).
  [[nodiscard]] std::int64_t flap_windows() const { return flap_windows_; }

  /// Records one worm swallowed by an outage / dead link.
  void note_outage_drop() { ++outage_drops_; }

  // --- permanent faults (crash-stop hosts, link death) -----------------------

  /// Kills the channel forever, effective immediately: an outage with no
  /// end. Repair never resurrects it (crash-stop semantics for links).
  void kill_link(const void* channel);

  /// Declares the host crash-stopped. The injector only records the fact
  /// (for counters and queries); Network wires the behavioural side
  /// (HostProtocol::on_crash) when it schedules the crash.
  void mark_host_dead(HostId h);
  [[nodiscard]] bool host_dead(HostId h) const {
    return dead_hosts_.count(h) != 0;
  }

  // --- forced faults (deterministic test hooks) ------------------------------

  /// Kill the next `count` eligible data worms; when `dst != kNoHost` only
  /// worms headed for that hop destination match.
  void force_kill_data(int count, HostId dst = kNoHost);
  /// Swallow the next `count` ACK/NACK worms entering any channel.
  void force_drop_control(int count);
  /// Drop the next `count` worms at any adapter receive engine.
  void force_drop_rx(int count);

  // --- counters --------------------------------------------------------------

  [[nodiscard]] std::int64_t worms_killed() const { return worms_killed_; }
  [[nodiscard]] std::int64_t controls_dropped() const { return controls_dropped_; }
  [[nodiscard]] std::int64_t rx_dropped() const { return rx_dropped_; }
  [[nodiscard]] std::int64_t outage_drops() const { return outage_drops_; }
  [[nodiscard]] std::int64_t hosts_crashed() const {
    return static_cast<std::int64_t>(dead_hosts_.size());
  }
  [[nodiscard]] std::int64_t links_killed() const { return links_killed_; }
  [[nodiscard]] std::int64_t total_injected() const {
    return worms_killed_ + controls_dropped_ + rx_dropped_ + outage_drops_;
  }

 private:
  void rearm();

  RandomStream rng_;
  FaultConfig config_;
  bool armed_ = false;

  struct Outage {
    const void* channel = nullptr;  // nullptr = every channel
    Time from = 0;
    Time until = 0;
  };
  std::vector<Outage> outages_;

  struct ForcedKill {
    HostId dst = kNoHost;  // kNoHost = any destination
  };
  std::deque<ForcedKill> forced_kills_;
  int forced_ctrl_drops_ = 0;
  int forced_rx_drops_ = 0;
  std::unordered_set<HostId> dead_hosts_;

  std::int64_t worms_killed_ = 0;
  std::int64_t controls_dropped_ = 0;
  std::int64_t rx_dropped_ = 0;
  std::int64_t outage_drops_ = 0;
  std::int64_t links_killed_ = 0;
  std::int64_t flap_windows_ = 0;
};

}  // namespace wormcast
