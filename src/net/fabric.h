// The runtime fabric: channels and switches instantiated from a Topology.
#pragma once

#include <memory>
#include <vector>

#include "net/channel.h"
#include "net/switch_rt.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "sim/types.h"

namespace wormcast {

struct FabricConfig {
  SwitchConfig sw;
  /// Burst-mode channel hot path (bit-for-bit identical results; per-byte
  /// mode exists for the determinism-equivalence suite and debugging).
  bool burst_channels = true;
};

/// Owns every channel and switch of the network. Host adapters plug into
/// their attachment channels: they attach a ByteFeed to host_tx_channel()
/// and install an RxSink on host_rx_channel().
class Fabric {
 public:
  Fabric(Simulator& sim, const Topology& topo, FabricConfig config = {});
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;
  ~Fabric();

  [[nodiscard]] Simulator& sim() { return sim_; }
  [[nodiscard]] const Topology& topology() const { return topo_; }
  [[nodiscard]] const FabricConfig& config() const { return config_; }

  /// Channel carrying bytes from host `h` into its switch.
  [[nodiscard]] Channel& host_tx_channel(HostId h);
  /// Channel carrying bytes from the switch down to host `h`.
  [[nodiscard]] Channel& host_rx_channel(HostId h);

  [[nodiscard]] SwitchRt& switch_at(NodeId node);

  /// Directed channel over link `l` transmitting out of node `from`.
  [[nodiscard]] Channel& channel_from(LinkId l, NodeId from);

  /// Installs a switch-level multicast engine on every switch.
  void install_mcast_engine(McastEngine* engine);

  /// Installs the experiment's fault injector on every channel.
  void install_fault_injector(FaultInjector* faults);

  /// Sum of slack-buffer overflow events across switches (must stay 0).
  [[nodiscard]] std::int64_t total_overflows() const;

  /// Total bytes transmitted on all switch-to-switch channels (for
  /// utilization metrics).
  [[nodiscard]] std::int64_t fabric_bytes_sent() const;

  /// Total bytes transmitted out of all host adapters. The paper's
  /// "offered load" axis is this per host per byte-time (output-link
  /// utilization, which includes forwarded multicast copies).
  [[nodiscard]] std::int64_t host_egress_bytes() const;

  /// Bytes transmitted out of node `n` across all its ports: the
  /// forwarding-load signal for root-utilization metrics and the
  /// load-aware tree strategy's probe.
  [[nodiscard]] std::int64_t node_egress_bytes(NodeId n) const;

  /// Total bytes swallowed by injected faults across all channels (link
  /// outages, control drops, the cut portion of truncated worms). Kept
  /// separate from bytes_sent so utilization never counts lost bytes.
  [[nodiscard]] std::int64_t total_bytes_swallowed() const;

 private:
  Simulator& sim_;
  const Topology& topo_;
  FabricConfig config_;
  // Two directed channels per link: index 2*l (a->b) and 2*l+1 (b->a).
  std::vector<std::unique_ptr<Channel>> channels_;
  std::vector<std::unique_ptr<SwitchRt>> switches_;  // by NodeId; null for hosts
};

}  // namespace wormcast
