file(REMOVE_RECURSE
  "CMakeFiles/updown_test.dir/net/updown_test.cpp.o"
  "CMakeFiles/updown_test.dir/net/updown_test.cpp.o.d"
  "updown_test"
  "updown_test.pdb"
  "updown_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/updown_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
