// Shared harness for the Section 8.2 measurement reproduction
// (Figures 12 and 13): a simulated 4-switch / 8-host Myrinet running the
// Hamiltonian-circuit implementation *as deployed* — store-and-forward at
// every host, no reservation protocol (worms that do not fit in the input
// buffer are silently dropped), retransmission disabled.
//
// Calibration: the measured single-sender curve saturates near 120 Mb/s at
// 8 KB packets on 70 MHz SPARCstation 5 hosts. At 640 Mb/s line rate the
// per-packet adapter/driver processing cost that produces that curve is
// ~35,000 byte-times (~440 us), which also reproduces the ~20 Mb/s point
// at 1 KB. We model it as the adapter's per-worm transmit overhead.
//
// The same harness scales past the paper's testbed: `torus = N` swaps in
// an N x N torus with one host per switch (the hot-path bench's 1k-host
// point is torus = 32), keeping the calibrated adapter costs.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/network.h"
#include "net/topologies.h"
#include "sim/idle_poller.h"
#include "traffic/groups.h"

namespace wormcast::bench {

inline constexpr Time kLanaiPacketOverhead = 35'000;  // byte-times (~440 us)
inline constexpr std::int64_t kLanaiBufferBytes = 25 * 1024;  // Section 4

/// Bytes/byte-time -> Mb/s at Myrinet's 640 Mb/s line rate.
inline double to_mbps(double bytes_per_bt) { return bytes_per_bt * 640.0; }

struct TestbedResult {
  double throughput_mbps = 0.0;  // received payload rate per host
  double loss_rate = 0.0;        // input-buffer drops / arrivals, per host
  // Simulator hot-path counters (bench/sim_hotpath.cpp).
  std::int64_t events_dispatched = 0;
  std::int64_t event_queue_peak = 0;
  std::int64_t bytes_on_wire = 0;  // bytes delivered across every channel
  // App poll executions (fast-forward removes the idle ones).
  std::int64_t app_polls = 0;
  // Wall-clock of the event loop alone (run_until), excluding network
  // construction — at 1k hosts construction is a fixed ~hundreds of ms
  // that would wash out engine speedups at short spans.
  double sim_wall_ms = 0.0;
  // Worm-arena telemetry (sim/arena.h).
  std::int64_t pool_fresh = 0;   // worms allocated from the heap
  std::int64_t pool_reused = 0;  // worms recycled from the pool
  // Flight-recorder stats (zero when tracing was off).
  std::int64_t trace_events = 0;   // total recorded (including overwritten)
  std::int64_t trace_dropped = 0;  // overwritten by ring wrap
  // Uniform counter dump for JsonBench::set_counters.
  std::vector<std::pair<std::string, double>> counters;
};

/// One testbed run, fully parameterized. The defaults reproduce the
/// paper's configuration; the hot-path knobs (queue, fast_forward, torus)
/// change only how fast the simulation runs, never what it computes —
/// except that fast_forward also skips the idle app polls, which is
/// result-identical (see sim/idle_poller.h) but changes event counts.
struct TestbedOptions {
  int senders = 1;
  std::int64_t packet_size = 8 * 1024;
  Time span = 3'000'000;
  /// Channel burst fast path (results identical; hot-path bench times both).
  bool burst_channels = true;
  /// Event-queue implementation (results identical; ditto).
  EventQueueKind queue = EventQueueKind::kCalendar;
  /// Park idle app polls and wake on adapter drain, instead of polling
  /// through dead air every 512 byte-times.
  bool fast_forward = true;
  /// 0 = the paper's 4-switch / 8-host testbed; N > 0 = an N x N torus
  /// with one host per switch (N*N hosts; the 1k-host point is N = 32).
  int torus = 0;
  /// Executors for the sharded in-run engine (core/network.h): 1 = the
  /// classic single-queue simulator. Results are bit-identical at any
  /// count; only wall time moves.
  int shards = 1;
  /// Overrides the built-in testbed/torus topology entirely (the
  /// large-fabric bench's Clos and wide-torus points). When set, `torus`
  /// is ignored and the host count comes from the topology. Optional
  /// stage labels feed UpDownOptions::level_override.
  const Topology* topology = nullptr;
  const std::vector<int>* topology_levels = nullptr;
  /// 0 = saturating applications (inject whenever the previous own packet
  /// left the card). > 0 = lightly loaded: each sender injects one packet
  /// per `inject_period` byte-times — the LAN-at-rest workload where the
  /// fixed 512-byte-time app-poll grid, not the traffic, dominates the
  /// event count, which is what idle fast-forward removes.
  Time inject_period = 0;
  /// 0 = one all-hosts group; K > 0 = partition the hosts into disjoint
  /// consecutive groups of K members; sender h multicasts to its own
  /// group (a full-group Hamiltonian circuit visits every host per packet,
  /// which at 1k hosts would drown the sim in forwarding work — the scale
  /// point wants many small independent circuits instead).
  int group_size = 0;
  /// Flight recorder: on when `tracing`, a checker is attached, or
  /// `trace_out` is set; ring of `trace_cap` events (size it to the span —
  /// the default ring drops tens of thousands of events on a full fig12
  /// run); `trace_out` additionally exports Chrome trace-event JSON.
  bool tracing = false;
  std::string trace_out;
  std::size_t trace_cap = Tracer::kDefaultCapacity;
  CheckCollector* checks = nullptr;
  std::size_t check_slot = 0;
  std::string check_label;
};

/// Runs the testbed: `senders` hosts multicast `packet_size`-byte packets
/// to the all-hosts group as fast as their adapters accept them, for
/// `span` byte-times; throughput/loss are measured after a span/5 warmup.
inline TestbedResult run_testbed(const TestbedOptions& opts) {
  const int n_hosts = opts.topology != nullptr
                          ? opts.topology->num_hosts()
                          : (opts.torus > 0 ? opts.torus * opts.torus : 8);
  ExperimentConfig cfg;
  cfg.engine.queue = opts.queue;
  cfg.engine.shards = opts.shards;
  if (opts.topology_levels != nullptr)
    cfg.routing.level_override = *opts.topology_levels;
  cfg.fabric.burst_channels = opts.burst_channels;
  cfg.protocol.scheme = Scheme::kHamiltonianSF;
  cfg.protocol.reservation = false;   // the Section 8 implementation
  cfg.protocol.buffer_classes = false;
  cfg.protocol.pool_bytes = kLanaiBufferBytes;
  // The control program manages fixed-size receive buffers rather than a
  // byte-exact pool: a small packet still occupies a whole slot.
  cfg.protocol.input_slot_bytes = 4 * 1024;
  cfg.adapter.tx_overhead = kLanaiPacketOverhead;
  cfg.traffic.offered_load = 1e-9;  // generator idle; we inject directly

  std::vector<MulticastGroupSpec> groups;
  if (opts.group_size > 0) {
    for (int g = 0; g * opts.group_size < n_hosts; ++g) {
      MulticastGroupSpec spec;
      spec.id = g;
      for (int m = g * opts.group_size;
           m < (g + 1) * opts.group_size && m < n_hosts; ++m)
        spec.members.push_back(m);
      groups.push_back(std::move(spec));
    }
  } else {
    groups.push_back(make_full_group(n_hosts));
  }
  Network net(opts.topology != nullptr
                  ? *opts.topology
                  : (opts.torus > 0 ? make_torus(opts.torus, opts.torus)
                                    : make_myrinet_testbed()),
              groups, cfg);
  const bool checking = opts.checks != nullptr && opts.checks->enabled();
  if (opts.tracing || checking || !opts.trace_out.empty())
    net.enable_tracing(opts.trace_cap);

  // Saturating applications: top up each sender whenever its adapter's
  // transmit queue has drained ("sent as many packets as possible"). The
  // poller injects the next packet as soon as the previous own packet has
  // left the card (the host send buffer frees); own packets then compete
  // with forwarded traffic for the adapter engine, which is what
  // overflows the input buffer in the all-send case.
  const Time poll = 512;
  const Time span = opts.span;
  const Time period = opts.inject_period;
  const std::int64_t packet_size = opts.packet_size;
  const int group_size = opts.group_size;
  std::vector<std::unique_ptr<IdlePoller>> pollers;
  pollers.reserve(static_cast<std::size_t>(opts.senders));
  for (HostId h = 0; h < opts.senders; ++h) {
    pollers.push_back(std::make_unique<IdlePoller>(
        net.sim(), poll, poll,
        opts.fast_forward ? IdlePoller::Mode::kFastForward
                          : IdlePoller::Mode::kLegacy,
        // The body returns the poller's next-work lower bound: kTimeNever
        // while blocked on the adapter (the drain listener wakes us —
        // legacy mode ignores the bound and keeps polling), the deadline
        // while rate-limited.
        [&net, h, packet_size, span, period, group_size,
         deadline = Time{0}]() mutable -> Time {
          if (net.sim().now() >= span) return kTimeNever;
          if (net.adapter(h).queued_own_originations() > 0) return kTimeNever;
          if (period > 0 && net.sim().now() < deadline) return deadline;
          Demand d;
          d.src = h;
          d.multicast = true;
          d.group = group_size > 0 ? h / group_size : 0;
          d.length = packet_size;
          net.inject(d);
          deadline = net.sim().now() + period;
          return period > 0 ? deadline : kTimeNever;
        },
        span - 1));
    if (opts.fast_forward) {
      net.adapter(h).set_drain_listener(
          [p = pollers.back().get()] { p->wake(); });
    }
    pollers.back()->start();
  }

  // Bounded run (run_until below), so the watchdog is safe to arm: a
  // wedged configuration explains itself instead of burning the span.
  arm_watchdog(net, 200'000);

  const Time warmup = span / 5;
  net.metrics().set_window_start(warmup);
  std::vector<std::int64_t> rx_at_warmup(static_cast<std::size_t>(n_hosts), 0);
  std::vector<std::int64_t> drop_at_warmup(static_cast<std::size_t>(n_hosts), 0);
  std::vector<std::int64_t> recv_at_warmup(static_cast<std::size_t>(n_hosts), 0);
  net.sim().at(warmup, [&] {
    for (HostId h = 0; h < n_hosts; ++h) {
      rx_at_warmup[h] = net.adapter(h).payload_bytes_received();
      drop_at_warmup[h] = net.adapter(h).worms_dropped();
      recv_at_warmup[h] = net.adapter(h).worms_received();
    }
  });
  const auto run_t0 = std::chrono::steady_clock::now();
  net.run_until(span);
  const auto run_t1 = std::chrono::steady_clock::now();
  if (checking)
    opts.checks->collect(opts.check_slot, net, opts.check_label);

  TestbedResult out;
  out.sim_wall_ms =
      std::chrono::duration<double, std::milli>(run_t1 - run_t0).count();
  double rx_total = 0.0;
  double drops = 0.0;
  double arrivals = 0.0;
  int receivers = 0;
  for (HostId h = 0; h < n_hosts; ++h) {
    const double rx = static_cast<double>(
        net.adapter(h).payload_bytes_received() - rx_at_warmup[h]);
    const double dr =
        static_cast<double>(net.adapter(h).worms_dropped() - drop_at_warmup[h]);
    const double ac = static_cast<double>(net.adapter(h).worms_received() -
                                          recv_at_warmup[h]);
    // In the single-sender case the sender itself receives nothing; average
    // over the hosts that are actual receivers, as the paper does.
    if (opts.senders == 1 && h == 0) continue;
    ++receivers;
    rx_total += rx;
    drops += dr;
    arrivals += dr + ac;
  }
  const double window = static_cast<double>(span - warmup);
  out.throughput_mbps = to_mbps(rx_total / window / receivers);
  out.loss_rate = arrivals > 0.0 ? drops / arrivals : 0.0;
  out.events_dispatched = net.events_dispatched();
  out.event_queue_peak = static_cast<std::int64_t>(net.event_queue_peak());
  out.bytes_on_wire = net.fabric().fabric_bytes_sent();
  for (const auto& poller : pollers) out.app_polls += poller->polls();
  out.pool_fresh = static_cast<std::int64_t>(net.worm_pool().fresh_allocs());
  out.pool_reused = static_cast<std::int64_t>(net.worm_pool().reuses());
  out.trace_events = net.trace_recorded();
  out.trace_dropped = net.trace_dropped();
  CounterRegistry reg;
  net.register_counters(reg);
  out.counters = reg.snapshot();
  if (!opts.trace_out.empty()) {
    if (net.write_trace(opts.trace_out))
      std::fprintf(stderr, "# wrote %s (%lld events)\n",
                   opts.trace_out.c_str(),
                   static_cast<long long>(out.trace_events));
    else
      std::fprintf(stderr, "# could not write %s\n", opts.trace_out.c_str());
  }
  return out;
}

/// Positional convenience wrapper (the fig12/fig13 sweeps predate
/// TestbedOptions).
inline TestbedResult run_testbed(int senders, std::int64_t packet_size,
                                 Time span, bool burst_channels = true,
                                 bool tracing = false,
                                 const std::string& trace_out = {},
                                 std::size_t trace_cap =
                                     Tracer::kDefaultCapacity,
                                 CheckCollector* checks = nullptr,
                                 std::size_t check_slot = 0,
                                 std::string check_label = {},
                                 int shards = 1) {
  TestbedOptions opts;
  opts.senders = senders;
  opts.packet_size = packet_size;
  opts.span = span;
  opts.burst_channels = burst_channels;
  opts.shards = shards;
  opts.tracing = tracing;
  opts.trace_out = trace_out;
  opts.trace_cap = trace_cap;
  opts.checks = checks;
  opts.check_slot = check_slot;
  opts.check_label = std::move(check_label);
  return run_testbed(opts);
}

}  // namespace wormcast::bench
